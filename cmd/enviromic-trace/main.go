// Command enviromic-trace summarizes a JSONL protocol trace recorded by
// enviromic-sim or enviromic-figures with -trace: per-kind event counts,
// per-node timelines, and latency percentiles for the paired protocol
// exchanges (task request→confirm, migration batch→ack, elections,
// recordings). It can also convert the event log to Chrome trace-event
// JSON for ui.perfetto.dev.
//
// Usage:
//
//	enviromic-trace run.jsonl
//	enviromic-trace -node 7 run.jsonl         # one node's full timeline
//	enviromic-trace -perfetto run.json run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enviromic/internal/obs"
)

func main() {
	node := flag.Int("node", -1, "print this node's full event timeline instead of the per-node summary")
	perfetto := flag.String("perfetto", "", "also convert the trace to Chrome trace-event JSON at this path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: enviromic-trace [-node N] [-perfetto out.json] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-trace: %v\n", err)
		os.Exit(1)
	}
	evs, err := obs.ParseJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-trace: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if len(evs) == 0 {
		fmt.Println("trace: 0 events")
		return
	}

	timelines := obs.Timelines(evs)
	lo, hi := evs[0].At, evs[0].At
	for _, e := range evs {
		if e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
	}
	fmt.Printf("trace: %d events, %d nodes, %.3fs .. %.3fs\n",
		len(evs), len(timelines), lo.Seconds(), hi.Seconds())

	fmt.Printf("\n-- events by kind --\n")
	for _, kc := range obs.CountByKind(evs) {
		fmt.Printf("  %7d  %s\n", kc.Count, kc.Name)
	}

	fmt.Printf("\n-- latency percentiles --\n")
	fmt.Printf("  %-18s %7s %9s %9s %9s %9s %9s %9s\n",
		"exchange", "count", "p50", "p90", "p99", "min", "max", "unpaired")
	for _, st := range obs.Latencies(evs) {
		if st.Count == 0 {
			fmt.Printf("  %-18s %7d %9s %9s %9s %9s %9s %9d\n",
				st.Name, 0, "-", "-", "-", "-", "-", st.UnmatchedStarts)
			continue
		}
		fmt.Printf("  %-18s %7d %9s %9s %9s %9s %9s %9d\n",
			st.Name, st.Count, fd(st.P50), fd(st.P90), fd(st.P99), fd(st.Min), fd(st.Max), st.UnmatchedStarts)
		fmt.Printf("  %-18s %s\n", "", histogram(st))
	}

	if *node >= 0 {
		fmt.Printf("\n-- node %d timeline --\n", *node)
		found := false
		for _, tl := range timelines {
			if int(tl.Node) != *node {
				continue
			}
			found = true
			for _, e := range tl.Events {
				fmt.Printf("  %12.6fs  %-24s peer=%-3d file=%-4d v1=%-8d v2=%d\n",
					e.At.Seconds(), obs.EventName(e.Kind), e.Peer, e.File, e.V1, e.V2)
			}
		}
		if !found {
			fmt.Printf("  (no events)\n")
		}
	} else {
		fmt.Printf("\n-- per-node timelines --\n")
		for _, tl := range timelines {
			first, last := tl.Events[0], tl.Events[len(tl.Events)-1]
			fmt.Printf("  node %3d: %6d events  %9.3fs .. %9.3fs  first %-24s last %s\n",
				tl.Node, len(tl.Events), first.At.Seconds(), last.At.Seconds(),
				obs.EventName(first.Kind), obs.EventName(last.Kind))
		}
		fmt.Printf("(rerun with -node N for one node's full timeline)\n")
	}

	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-trace: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(out, evs); err == nil {
			err = out.Close()
		} else {
			out.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

// fd renders a duration compactly with millisecond-scale precision.
func fd(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// histogram renders the non-empty power-of-two latency buckets.
func histogram(st obs.LatencyStats) string {
	s := "hist(ms)"
	for i, n := range st.Buckets {
		if n == 0 {
			continue
		}
		bound := st.BucketBase << i
		if i == len(st.Buckets)-1 {
			s += fmt.Sprintf(" >=%v:%d", st.BucketBase<<(i-1), n)
		} else {
			s += fmt.Sprintf(" <%v:%d", bound, n)
		}
	}
	return s
}
