// Command enviromic-archive-load is the archive's HTTP load harness: it
// drives the real TCP + HTTP stack (not httptest in-process transports)
// with many concurrent ingest and query clients and reports throughput
// and latency percentiles as JSON — the numbers recorded in
// BENCH_archive_http.json.
//
// Modes:
//
//	enviromic-archive-load                        # self-host a store, run ingest+query phases
//	enviromic-archive-load -url http://host:8080  # aim at an already-running enviromic-archive
//	enviromic-archive-load -open-bench 1000000 -load=false
//	                                              # only build a 1M-chunk archive and time open
//	                                              # with a warm snapshot vs full rescan
//	enviromic-archive-load -urls localhost:8081,localhost:8082,localhost:8083 -out BENCH_federation.json
//	                                              # federated query storm across running stations
//
// With both -open-bench and the (default) load phases enabled, one run
// produces the complete BENCH_archive_http.json.
//
// The ingest phase runs -ingest-clients concurrent clients, each POSTing
// -batches batches of -chunks full-payload chunks under a unique origin
// (so every chunk is new). The query phase runs -clients concurrent
// clients (default 1000) mixing /query, /files/{id}, and /stats requests.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/flash"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
)

type result struct {
	Host          string  `json:"host"`
	Cores         int     `json:"cores"`
	Shards        int     `json:"shards"`
	IngestClients int     `json:"ingest_clients,omitempty"`
	IngestChunks  int     `json:"ingest_chunks,omitempty"`
	IngestSeconds float64 `json:"ingest_seconds,omitempty"`
	IngestMBs     float64 `json:"ingest_mb_s,omitempty"`

	QueryClients  int     `json:"query_clients,omitempty"`
	QueryRequests int     `json:"query_requests,omitempty"`
	QuerySeconds  float64 `json:"query_seconds,omitempty"`
	QueryQPS      float64 `json:"query_qps,omitempty"`
	QueryP50Ms    float64 `json:"query_p50_ms,omitempty"`
	QueryP95Ms    float64 `json:"query_p95_ms,omitempty"`
	QueryP99Ms    float64 `json:"query_p99_ms,omitempty"`
	// ServerP99Ms is the server-side p99 estimated from the scraped
	// /metrics endpoint histogram after the storm (0 when the target
	// serves no /metrics).
	ServerP99Ms float64 `json:"server_p99_ms,omitempty"`
	QueryErrors int64   `json:"query_errors"`

	OpenBench *openBench `json:"open_1m,omitempty"`

	Federation *fedBench `json:"federation,omitempty"`
}

// fedBench is the federated query storm's report: clients round-robin
// the federated read endpoints across every station, so each request
// fans out to the other stations behind the scenes. Recorded in
// BENCH_federation.json.
type fedBench struct {
	Stations int     `json:"stations"`
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int64   `json:"errors"`
	// PartialResponses sums enviromic_federation_partial_total across
	// stations after the storm — nonzero means some answers were served
	// degraded while a peer was unreachable.
	PartialResponses float64 `json:"partial_responses"`
}

type openBench struct {
	Chunks          int     `json:"chunks"`
	SnapshotOpenSec float64 `json:"snapshot_open_s"`
	RescanOpenSec   float64 `json:"rescan_open_s"`
	Speedup         float64 `json:"speedup"`
}

func main() {
	var (
		urls      = flag.String("urls", "", "federated query storm: comma-separated station URLs (skips the ingest phase)")
		url       = flag.String("url", "", "target an existing archive server instead of self-hosting")
		dir       = flag.String("dir", "", "archive directory for self-hosting (default: a temp dir)")
		shards    = flag.Int("shards", 8, "shard count for a self-hosted archive")
		ingesters = flag.Int("ingest-clients", 64, "concurrent ingest clients")
		batches   = flag.Int("batches", 8, "ingest batches per client")
		perBatch  = flag.Int("chunks", 64, "chunks per ingest batch")
		clients   = flag.Int("clients", 1000, "concurrent query clients")
		reqs      = flag.Int("requests", 20, "query requests per client")
		openN     = flag.Int("open-bench", 0, "also build an N-chunk archive and time snapshot vs rescan open")
		load      = flag.Bool("load", true, "run the HTTP ingest+query phases")
		out       = flag.String("out", "", "write the JSON result here as well as stdout")
		prof      = flag.String("cpuprofile", "", "write a CPU profile of the open-bench snapshot opens here")
	)
	flag.Parse()

	res := result{Host: "linux", Cores: runtime.NumCPU(), Shards: *shards}

	// Open bench first: restart latency is measured in a quiet process,
	// the way a real basestation restart would see it, not with the load
	// phases' heap and connection goroutines still settling.
	if *openN > 0 {
		obDir := *dir
		if *load {
			obDir = "" // the load phases already own -dir; use a fresh temp dir
		}
		ob, err := runOpenBench(obDir, *shards, *openN, *prof)
		if err != nil {
			fail(err)
		}
		res.OpenBench = ob
	}
	if *urls != "" {
		fb, err := runFederationStorm(*urls, *clients, *reqs)
		if err != nil {
			fail(err)
		}
		res.Federation = fb
		emit(res, *out)
		return
	}
	if *load {
		if err := runLoadPhases(&res, *url, *dir, *shards, *ingesters, *batches, *perBatch, *clients, *reqs); err != nil {
			fail(err)
		}
	}
	emit(res, *out)
}

func runLoadPhases(res *result, url, dir string, shards, ingesters, batches, perBatch, clients, reqs int) error {
	base := url
	if base == "" {
		store, ln, err := selfHost(dir, shards)
		if err != nil {
			return err
		}
		defer store.Close()
		defer ln.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "self-hosting archive on %s\n", base)
	}
	tr := &http.Transport{
		MaxIdleConns:        clients + ingesters,
		MaxIdleConnsPerHost: clients + ingesters,
	}
	// Drop the ~1k kept-alive connections when the phases end: each one
	// pins client and server goroutines whose stacks the collector would
	// otherwise keep scanning during a following -open-bench.
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	if err := runIngestPhase(client, base, ingesters, batches, perBatch, res); err != nil {
		return err
	}
	if err := runQueryPhase(client, base, clients, reqs, res); err != nil {
		return err
	}
	return crossCheckServerLatency(client, base, res)
}

// crossCheckServerLatency scrapes the target's /metrics after the storm,
// estimates the server-side p99 from the per-endpoint latency histogram
// (ingest and the scrape itself excluded), and fails on gross
// disagreement with the client-observed p99: a request's client latency
// includes the server's handler time, so the server estimate sitting far
// above the client number means mislabeled or misrecorded series. A
// target without /metrics (an older server) skips the check.
func crossCheckServerLatency(client *http.Client, base string, res *result) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		fmt.Fprintf(os.Stderr, "no /metrics on %s (status %d); skipping server-side latency cross-check\n",
			base, resp.StatusCode)
		return nil
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("scraping %s/metrics: %w", base, err)
	}
	var buckets []telemetry.Sample
	var count float64
	for _, smp := range samples {
		ep := smp.Label("endpoint")
		if ep == "/ingest" || ep == "/metrics" {
			continue
		}
		switch smp.Name {
		case "enviromic_http_request_seconds_bucket":
			buckets = append(buckets, smp)
		case "enviromic_http_request_seconds_count":
			count += smp.Value
		}
	}
	p99, ok := telemetry.HistogramQuantile(0.99, buckets)
	if !ok {
		return fmt.Errorf("server endpoint histogram is empty after %d client requests", res.QueryRequests)
	}
	res.ServerP99Ms = p99 * 1000
	if int(count) < res.QueryRequests {
		return fmt.Errorf("server histogram counted %d query requests, clients completed %d",
			int(count), res.QueryRequests)
	}
	if res.ServerP99Ms > 4*res.QueryP99Ms+5 {
		return fmt.Errorf("server p99 %.2fms grossly exceeds client p99 %.2fms",
			res.ServerP99Ms, res.QueryP99Ms)
	}
	fmt.Fprintf(os.Stderr, "latency cross-check: client p99 %.2fms vs server p99 %.2fms over %d requests\n",
		res.QueryP99Ms, res.ServerP99Ms, int(count))
	return nil
}

// runFederationStorm aims a query storm at a running federation: every
// client round-robins the federated read endpoints across all stations,
// so the latencies below include the cross-station fan-out. No ingest
// phase — the stations are expected to be loaded already (the smoke
// script loads them with a split city tour).
func runFederationStorm(spec string, clients, reqs int) (*fedBench, error) {
	var stations []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		stations = append(stations, strings.TrimRight(part, "/"))
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("-urls %q names no stations", spec)
	}
	tr := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	// Pick a real file ID off the first station so the storm exercises
	// the per-file fan-out paths too, not just listings.
	paths := []string{"/query", "/files", "/query?from=0s&to=60s", "/federation"}
	var listing []struct {
		ID uint32 `json:"id"`
	}
	if resp, err := client.Get(stations[0] + "/files"); err == nil {
		json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
	}
	if len(listing) > 0 {
		paths = append(paths,
			fmt.Sprintf("/files/%d", listing[0].ID),
			fmt.Sprintf("/files/%d/gaps", listing[0].ID))
	}

	latencies := make([][]time.Duration, clients)
	var errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, reqs)
			for i := 0; i < reqs; i++ {
				base := stations[(c+i)%len(stations)]
				t0 := time.Now()
				resp, err := client.Get(base + paths[(c+i)%len(paths)])
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCount.Add(1)
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("federation storm: every request failed (%d errors)", errCount.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	fb := &fedBench{
		Stations: len(stations),
		Clients:  clients,
		Requests: len(all),
		Seconds:  elapsed.Seconds(),
		QPS:      float64(len(all)) / elapsed.Seconds(),
		P50Ms:    pct(0.50),
		P95Ms:    pct(0.95),
		P99Ms:    pct(0.99),
		Errors:   errCount.Load(),
	}
	// Degradation tally: sum each station's partial-response counter.
	for _, base := range stations {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			continue
		}
		samples, err := telemetry.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, smp := range samples {
			if smp.Name == "enviromic_federation_partial_total" {
				fb.PartialResponses += smp.Value
			}
		}
	}
	return fb, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "enviromic-archive-load: %v\n", err)
	os.Exit(1)
}

func emit(res result, out string) {
	data, _ := json.MarshalIndent(res, "", "  ")
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fail(err)
		}
	}
}

// selfHost opens a store and serves the archive API on a real TCP socket.
func selfHost(dir string, shards int) (*archive.Store, net.Listener, error) {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "archive-load-*")
		if err != nil {
			return nil, nil, err
		}
	}
	reg := telemetry.NewRegistry()
	store, err := archive.Open(dir, archive.Options{Shards: shards, Telemetry: reg})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	// Same wiring as cmd/enviromic-archive: the API behind the endpoint
	// middleware, the registry at /metrics — so the harness exercises the
	// instrumented stack it cross-checks.
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.Middleware(reg, archive.EndpointOf, archive.NewHandler(store)))
	mux.Handle("/metrics", telemetry.Handler(reg))
	go http.Serve(ln, mux)
	return store, ln, nil
}

// mkBatch builds one client's batch: full-payload chunks under the
// client's own origin, so no two clients ever collide on a dedup key.
func mkBatch(origin int32, batch, n int) ([]byte, error) {
	payload := make([]byte, flash.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks := make([]*flash.Chunk, n)
	for i := 0; i < n; i++ {
		seq := uint32(batch*n + i)
		start := time.Duration(seq) * 83 * time.Millisecond
		chunks[i] = &flash.Chunk{
			File:   flash.FileID(int(origin)*7 + i%7 + 1),
			Origin: origin,
			Seq:    seq,
			Start:  sim.At(start),
			End:    sim.At(start + 83*time.Millisecond),
			Data:   payload,
		}
	}
	return archive.EncodeFrames(chunks)
}

func runIngestPhase(client *http.Client, base string, ingesters, batches, perBatch int, res *result) error {
	var wg sync.WaitGroup
	errs := make(chan error, ingesters)
	start := time.Now()
	for c := 0; c < ingesters; c++ {
		wg.Add(1)
		go func(origin int32) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body, err := mkBatch(origin, b, perBatch)
				if err != nil {
					errs <- err
					return
				}
				resp, err := client.Post(base+"/ingest", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(int32(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return err
	}
	total := ingesters * batches * perBatch
	res.IngestClients = ingesters
	res.IngestChunks = total
	res.IngestSeconds = elapsed.Seconds()
	res.IngestMBs = float64(total) * flash.PayloadSize / (1 << 20) / elapsed.Seconds()
	return nil
}

func runQueryPhase(client *http.Client, base string, clients, reqs int, res *result) error {
	paths := []string{
		"/query?from=0s&to=60s",
		"/files",
		"/query?origins=1,2,3",
		"/stats",
		"/files/8", // the first file ID mkBatch produces (origin 1, i 0)
	}
	latencies := make([][]time.Duration, clients)
	var errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, reqs)
			for i := 0; i < reqs; i++ {
				t0 := time.Now()
				resp, err := client.Get(base + paths[(c+i)%len(paths)])
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCount.Add(1)
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	if len(all) == 0 {
		return fmt.Errorf("query phase: every request failed (%d errors)", errCount.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	res.QueryClients = clients
	res.QueryRequests = len(all)
	res.QuerySeconds = elapsed.Seconds()
	res.QueryQPS = float64(len(all)) / elapsed.Seconds()
	res.QueryP50Ms = pct(0.50)
	res.QueryP95Ms = pct(0.95)
	res.QueryP99Ms = pct(0.99)
	res.QueryErrors = errCount.Load()
	return nil
}

// runOpenBench builds an n-chunk archive of full-payload chunks (the
// shape every mule tour produces) and times Open with the close-time
// snapshot against Open forced down the full rescan.
func runOpenBench(dir string, shards, n int, cpuprofile string) (*openBench, error) {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "archive-open-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	store, err := archive.Open(dir, archive.Options{Shards: shards})
	if err != nil {
		return nil, err
	}
	const files, batch = 512, 8192
	payload := make([]byte, flash.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	// One reusable batch of chunk structs: Ingest copies payloads into the
	// segment before replying, and a million throwaway structs would leave
	// the timed opens below fighting the garbage collector.
	pool := make([]flash.Chunk, batch)
	chunks := make([]*flash.Chunk, 0, batch)
	for seq := 0; seq < n; {
		chunks = chunks[:0]
		for len(chunks) < batch && seq < n {
			start := time.Duration(seq) * time.Millisecond
			c := &pool[len(chunks)]
			*c = flash.Chunk{
				File:   flash.FileID(seq%files + 1),
				Origin: int32(seq % 97),
				Seq:    uint32(seq),
				Start:  sim.At(start),
				End:    sim.At(start + time.Millisecond),
				Data:   payload,
			}
			chunks = append(chunks, c)
			seq++
		}
		if _, err := store.Ingest(chunks); err != nil {
			return nil, err
		}
		if seq%(batch*16) == 0 {
			fmt.Fprintf(os.Stderr, "built %d/%d chunks\r", seq, n)
		}
	}
	fmt.Fprintf(os.Stderr, "built %d chunks; closing (writes snapshots)\n", n)
	if err := store.Close(); err != nil {
		return nil, err
	}

	// Best of three: open is fast relative to ambient noise (GC from the
	// build loop, page-cache churn), so single-shot timings jitter badly.
	timeOpen := func(opts archive.Options) (float64, error) {
		best := 0.0
		for i := 0; i < 3; i++ {
			runtime.GC()
			t0 := time.Now()
			s, err := archive.Open(dir, opts)
			if err != nil {
				return 0, err
			}
			elapsed := time.Since(t0).Seconds()
			if st := s.Stats(); st.Chunks != n {
				s.Close()
				return 0, fmt.Errorf("open saw %d chunks, want %d", st.Chunks, n)
			}
			s.Close()
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, nil
	}
	if cpuprofile != "" {
		pf, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		pprof.StartCPUProfile(pf)
		defer func() { pf.Close() }()
	}
	snap, err := timeOpen(archive.Options{})
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		return nil, err
	}
	rescan, err := timeOpen(archive.Options{NoSnapshots: true})
	if err != nil {
		return nil, err
	}
	return &openBench{
		Chunks:          n,
		SnapshotOpenSec: snap,
		RescanOpenSec:   rescan,
		Speedup:         rescan / snap,
	}, nil
}
