// Command enviromic-figures regenerates every figure of the paper's
// evaluation section (§IV) from the simulated testbed and prints the data
// series (and ASCII renderings) to stdout.
//
// Usage:
//
//	enviromic-figures            # all figures at paper scale
//	enviromic-figures -fig 10    # one figure
//	enviromic-figures -quick     # reduced-scale smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"enviromic/internal/experiments"
	"enviromic/internal/obs"
	"enviromic/internal/render"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (0 = all; one of 3,6,7,8,10,11,12,13,14,16,17,18)")
	quick := flag.Bool("quick", false, "reduced-scale run (minutes of virtual time instead of hours)")
	seed := flag.Int64("seed", 1, "simulation seed")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations instead of figures")
	surv := flag.Bool("survivability", false, "run the migration-vs-dispersal survivability matrix instead of figures (exit 1 if dispersal does not win)")
	rs := flag.String("rs", "6,4", "Reed-Solomon n,k for the -survivability dispersal cells")
	parallel := flag.Int("parallel", experiments.DefaultParallel(),
		"worker goroutines for independent simulation runs (1 = serial; results are identical either way)")
	shards := flag.Int("shards", 1, "execution shards per simulation for the indoor/forest runs (1 = serial; >= 2 sharded, bit-identical figures)")
	trace := flag.Bool("trace", false, "record structured protocol events from the indoor/forest runs to -trace-out (forces -parallel 1)")
	traceOut := flag.String("trace-out", "figures.jsonl", "trace file: .jsonl = event log (read it with enviromic-trace), .json = Chrome trace for Perfetto")
	traceFlt := flag.String("trace-filter", "", "comma-separated event-kind prefixes to keep (e.g. task,storage.migrate); empty keeps all")
	flag.Parse()

	var tracer *obs.Tracer
	var traceSink obs.Sink
	if *trace {
		// Tracing interleaves events from every simulated node into one
		// sink; running the independent settings serially keeps the file
		// ordering deterministic run-to-run.
		*parallel = 1
		s, err := obs.NewFileSink(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(2)
		}
		count := obs.NewCounting(s)
		traceSink = count
		tracer = obs.New(count).SetFilter(obs.ParseFilter(*traceFlt))
		defer func() {
			if err := traceSink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", count.Total(), *traceOut)
			if count.Total() == 0 {
				fmt.Fprintln(os.Stderr, "trace: only the indoor (10-14) and forest (16-18) figures emit events")
			}
		}()
	}

	if *surv {
		survivability(*seed, *quick, *rs)
		return
	}

	if *ablations {
		var out strings.Builder
		header(&out, "Ablations — DESIGN.md §5 design choices")
		fmt.Fprintf(&out, "%-38s %12s %12s  %s\n", "knob", "with", "without", "unit")
		for _, row := range experiments.AblationsParallel(*seed, *parallel) {
			fmt.Fprintf(&out, "%-38s %12.3f %12.3f  %s\n    %s\n",
				row.Name, row.With, row.Without, row.Unit, row.Comment)
		}
		fmt.Print(out.String())
		return
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }
	var out strings.Builder

	if want(3) {
		fig3(&out, *seed)
	}
	if want(6) {
		fig6(&out, *seed, *quick, *parallel)
	}
	if want(7) {
		fig7(&out, *seed)
	}
	if want(8) {
		fig8(&out, *seed)
	}
	if want(10) || want(11) || want(12) || want(13) || want(14) {
		indoor(&out, *seed, *quick, *parallel, *shards, tracer, want)
	}
	if want(16) || want(17) || want(18) {
		forest(&out, *seed, *quick, *shards, tracer, want)
	}
	fmt.Print(out.String())
	if out.Len() == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected: -fig must be one of 3,6,7,8,10,11,12,13,14,16,17,18")
		os.Exit(2)
	}
}

func header(out *strings.Builder, title string) {
	fmt.Fprintf(out, "\n======== %s ========\n", title)
}

// survivability runs the migration-vs-dispersal matrix and gates on it:
// dispersal must keep strictly more data retrievable than migration in
// every crash scenario, with zero protocol-invariant violations in
// either mode. Exit 1 on any miss, so CI can call this directly.
func survivability(seed int64, quick bool, rs string) {
	dcfg, err := storage.ParseRS(rs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "survivability: %v\n", err)
		os.Exit(2)
	}
	opts := experiments.DefaultIndoorOpts()
	if quick {
		opts = experiments.QuickIndoorOpts()
	}
	opts.Seed = seed
	res, err := experiments.Survivability(opts, dcfg, experiments.SurvivabilityScenarios())
	if err != nil {
		fmt.Fprintf(os.Stderr, "survivability: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatSurvivability(res))

	wins, total, fail := 0, 0, false
	byScenario := map[string]map[storage.Mode]experiments.SurvivabilityCell{}
	for _, c := range res.Cells {
		if c.OtherViolations != 0 {
			fmt.Printf("survivability gate: %s/%s broke %d protocol invariant(s)\n",
				c.Scenario, c.Mode, c.OtherViolations)
			fail = true
		}
		if byScenario[c.Scenario] == nil {
			byScenario[c.Scenario] = map[storage.Mode]experiments.SurvivabilityCell{}
		}
		byScenario[c.Scenario][c.Mode] = c
	}
	for name, cells := range byScenario {
		total++
		mig, disp := cells[storage.ModeMigrate], cells[storage.ModeDisperse]
		if disp.Completeness > mig.Completeness {
			wins++
		} else {
			fmt.Printf("survivability gate: %s: dispersal %.4f does not beat migration %.4f\n",
				name, disp.Completeness, mig.Completeness)
		}
	}
	if fail || wins != total {
		fmt.Printf("survivability gate: FAIL (dispersal wins %d/%d crash scenarios)\n", wins, total)
		os.Exit(1)
	}
	fmt.Printf("survivability gate: PASS (dispersal wins %d/%d crash scenarios, advantage %+.4f)\n",
		wins, total, res.CrashAdvantage())
}

func fig3(out *strings.Builder, seed int64) {
	header(out, "Fig 3 — sampling interval vs radio activity (jiffies)")
	res := experiments.Fig3(seed, 150)
	xs := make([]float64, len(res.Quiet))
	for i := range xs {
		xs[i] = float64(i)
	}
	render.Chart(out, xs, map[string][]float64{"(a) no comm": res.Quiet}, 72, 8, "interval")
	render.Chart(out, xs, map[string][]float64{"(b) sending": res.Sending}, 72, 8, "interval")
	render.Chart(out, xs, map[string][]float64{"(c) receiving": res.Receiving}, 72, 8, "interval")
}

func fig6(out *strings.Builder, seed int64, quick bool, parallel int) {
	header(out, "Fig 6 — recording miss ratio vs expected task assignment delay")
	opts := experiments.DefaultFig6Opts()
	opts.Seed = seed
	opts.Parallel = parallel
	if quick {
		opts.Runs = 3
	}
	res := experiments.Fig6(opts)
	fmt.Fprintf(out, "%8s", "Dta(ms)")
	for _, trc := range opts.TrcList {
		fmt.Fprintf(out, "  Trc=%-4.1fs (±90%%CI)", trc.Seconds())
	}
	out.WriteByte('\n')
	for di, dta := range opts.DtaMS {
		fmt.Fprintf(out, "%8d", dta)
		for ti := range opts.TrcList {
			fmt.Fprintf(out, "  %6.3f (±%5.3f)  ", res.Mean[ti][di], res.CI90[ti][di])
		}
		out.WriteByte('\n')
	}
}

func fig7(out *strings.Builder, seed int64) {
	header(out, "Fig 7 — one instance of recording a mobile acoustic object")
	res := experiments.Fig7(seed)
	spans := make([]render.Span, len(res.Tasks))
	for i, t := range res.Tasks {
		spans[i] = render.Span{Node: t.Node, Start: t.Start, End: t.End}
	}
	fmt.Fprintf(out, "event: %.1fs .. %.1fs\n", res.EventStart.Seconds(), res.EventEnd.Seconds())
	render.TimelineChart(out, spans, res.EventStart.Add(-time.Second), res.EventEnd.Add(2*time.Second), 72)
}

func fig8(out *strings.Builder, seed int64) {
	header(out, "Fig 8 — voice of a moving human: reference vs EnviroMic")
	res := experiments.Fig8(seed)
	fmt.Fprintf(out, "stitched coverage: %.1f%%   envelope correlation: %.3f\n",
		res.Coverage*100, res.EnvelopeCorr)
	window := 512
	envRef := envelopeSeries(res.Reference, window)
	envSt := envelopeSeries(res.Stitched, window)
	xs := make([]float64, len(envRef))
	for i := range xs {
		xs[i] = float64(i*window) / res.SampleRate
	}
	render.Chart(out, xs, map[string][]float64{"reference": envRef}, 72, 8, "(a) handheld mote envelope")
	if len(envSt) > len(xs) {
		envSt = envSt[:len(xs)]
	}
	render.Chart(out, xs[:len(envSt)], map[string][]float64{"enviromic": envSt}, 72, 8, "(b) EnviroMic stitched envelope")
}

func envelopeSeries(samples []byte, window int) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := (len(samples) + window - 1) / window
	out := make([]float64, n)
	for wi := 0; wi < n; wi++ {
		lo, hi := wi*window, (wi+1)*window
		if hi > len(samples) {
			hi = len(samples)
		}
		var acc float64
		for _, b := range samples[lo:hi] {
			d := float64(b) - 128
			acc += d * d
		}
		out[wi] = acc / float64(hi-lo)
	}
	return out
}

func indoor(out *strings.Builder, seed int64, quick bool, parallel, shards int, tracer *obs.Tracer, want func(int) bool) {
	opts := experiments.DefaultIndoorOpts()
	opts.Seed = seed
	if quick {
		opts = experiments.QuickIndoorOpts()
		opts.Seed = seed
	}
	opts.Parallel = parallel
	opts.Shards = shards
	opts.Tracer = tracer
	res := experiments.Indoor(opts)
	xs := make([]float64, len(res.Miss.Times))
	for i, t := range res.Miss.Times {
		xs[i] = t.Seconds()
	}
	if want(10) {
		header(out, "Fig 10 — recording miss ratio over time")
		render.Table(out, res.Miss.Times, res.Miss.Curves, "%.3f")
		render.Chart(out, xs, res.Miss.Curves, 72, 12, "miss ratio")
	}
	if want(11) {
		header(out, "Fig 11 — recording redundancy ratio over time")
		render.Table(out, res.Redundancy.Times, res.Redundancy.Curves, "%.3f")
		render.Chart(out, xs, res.Redundancy.Curves, 72, 12, "redundancy ratio")
	}
	if want(12) {
		header(out, "Fig 12 — control messages over time")
		render.Table(out, res.Messages.Times, res.Messages.Curves, "%.0f")
		render.Chart(out, xs, res.Messages.Curves, 72, 12, "messages")
	}
	if want(13) {
		header(out, "Fig 13 — spatial distribution of storage occupancy (bytes), lb-beta2")
		net := res.Networks["lb-beta2"]
		for _, frac := range []float64{1.0 / 3, 2.0 / 3, 1.0} {
			at := sim.At(time.Duration(float64(opts.Duration) * frac))
			fmt.Fprintf(out, "t = %.0fs:\n", at.Seconds())
			render.Heatmap(out, experiments.HeatmapAt(net, at, false), "bytes")
		}
	}
	if want(14) {
		header(out, "Fig 14 — spatial distribution of load transfer overhead (frames), lb-beta2")
		net := res.Networks["lb-beta2"]
		for _, frac := range []float64{1.0 / 3, 2.0 / 3, 1.0} {
			at := sim.At(time.Duration(float64(opts.Duration) * frac))
			fmt.Fprintf(out, "t = %.0fs:\n", at.Seconds())
			render.Heatmap(out, experiments.HeatmapAt(net, at, true), "frames")
		}
	}
}

func forest(out *strings.Builder, seed int64, quick bool, shards int, tracer *obs.Tracer, want func(int) bool) {
	opts := experiments.DefaultForestOpts()
	opts.Seed = seed
	if quick {
		opts = experiments.QuickForestOpts()
		opts.Seed = seed
	}
	opts.Shards = shards
	opts.Tracer = tracer
	res := experiments.Forest(opts)
	if want(16) {
		header(out, "Fig 16 — amount of acoustic event data over time (s/minute)")
		// Bucket to 5-minute bars for readability at paper scale.
		per := res.PerMinute
		step := 5
		if quick {
			step = 1
		}
		var bars []float64
		for i := 0; i < len(per); i += step {
			s := 0.0
			for j := i; j < i+step && j < len(per); j++ {
				s += per[j]
			}
			bars = append(bars, s)
		}
		render.Histogram(out, bars, func(i int) string {
			return fmt.Sprintf("%dm", i*step)
		}, 50)
	}
	if want(17) {
		header(out, "Fig 17 — acoustic data volume by location (bytes)")
		hm := res.Net.Collector.StorageHeatmapAt(sim.At(opts.Duration), 6, 6)
		render.Heatmap(out, hm, "bytes (stored, post-balancing)")
		// Recorded-at-origin volumes show the hot-spots before balancing.
		fmt.Fprintf(out, "hottest recorder: node %d\n", res.HottestNode)
	}
	if want(18) {
		header(out, "Fig 18 — data migrated from the hottest node to the network")
		fmt.Fprintf(out, "origin: node %d at %v\n", res.HottestNode, res.Positions[res.HottestNode])
		total := 0
		holders := make([]int, 0, len(res.MigratedFromHottest))
		for holder := range res.MigratedFromHottest {
			holders = append(holders, holder)
		}
		// Sorted for deterministic output (map iteration order would
		// shuffle the listing between runs otherwise).
		sort.Ints(holders)
		for _, holder := range holders {
			chunks := res.MigratedFromHottest[holder]
			fmt.Fprintf(out, "  node %2d at %-18v holds %4d chunks (%d bytes)\n",
				holder, res.Positions[holder], chunks, chunks*256)
			total += chunks
		}
		fmt.Fprintf(out, "  total migrated chunks resident elsewhere: %d\n", total)
	}
}
