// Command enviromic-sim runs one EnviroMic scenario from command-line
// flags and prints the run's summary metrics: effective storage, miss and
// redundancy ratios, message counts, and per-node occupancy.
//
// Examples:
//
//	enviromic-sim -mode full -beta 2 -duration 20m
//	enviromic-sim -mode independent -duration 10m -events 30
//	enviromic-sim -scenario forest -duration 1h
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/workload"
)

func main() {
	var (
		modeStr  = flag.String("mode", "full", "operating mode: independent | cooperative | full")
		scenario = flag.String("scenario", "indoor", "scenario: indoor | forest")
		beta     = flag.Float64("beta", 2, "storage-balancing beta_max (full mode)")
		duration = flag.Duration("duration", 20*time.Minute, "virtual experiment duration")
		seed     = flag.Int64("seed", 1, "simulation seed")
		blocks   = flag.Int("flash", 512, "flash blocks per mote (256 B each)")
		loss     = flag.Float64("loss", 0.05, "radio frame loss probability")
		meanGap  = flag.Duration("event-gap", 20*time.Second, "mean gap between events (indoor)")
		timesync = flag.Bool("timesync", false, "enable FTSP time sync with drifting clocks")
		duty     = flag.Float64("duty", 0, "duty cycle awake fraction (0 = always on)")
		realtime = flag.Float64("realtime", 0, "pace the run against the wall clock at this speed-up factor (0 = as fast as possible)")
	)
	flag.Parse()

	var mode core.Mode
	switch *modeStr {
	case "independent":
		mode = core.ModeIndependent
	case "cooperative":
		mode = core.ModeCooperative
	case "full":
		mode = core.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	field := acoustics.NewField(1)
	field.DetectProb = 0.6
	cfg := core.Config{
		Seed:        *seed,
		Mode:        mode,
		BetaMax:     *beta,
		LossProb:    *loss,
		FlashBlocks: *blocks,
		TimeSync:    *timesync,
		DutyCycle:   *duty,
	}
	if *timesync {
		cfg.MaxClockDriftPPM = 50
	}

	var net *core.Network
	var events int
	switch *scenario {
	case "indoor":
		grid := workload.IndoorGrid()
		pcfg := workload.DefaultPoisson(grid)
		pcfg.Until = *duration
		pcfg.MeanGap = *meanGap
		events = workload.GeneratePoisson(field, grid, pcfg)
		cfg.CommRange = 6 * grid.Pitch
		net = core.NewGridNetwork(cfg, field, grid)
	case "forest":
		fcfg := workload.DefaultForest()
		fcfg.Duration = *duration
		events = workload.GenerateForest(field, fcfg)
		cfg.CommRange = 30
		net = core.NewNetwork(cfg, field, workload.ForestPositions(2006))
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	fmt.Printf("scenario=%s mode=%s events=%d nodes=%d duration=%v seed=%d\n",
		*scenario, mode, events, len(net.Nodes), *duration, *seed)
	if *realtime > 0 {
		net.Start()
		net.Sched.RunRealtime(sim.At(*duration), *realtime, nil)
	} else {
		net.Run(sim.At(*duration))
	}

	end := sim.At(*duration)
	st := net.Radio.Stats()
	fmt.Printf("\n-- results --\n")
	fmt.Printf("recordings completed : %d\n", len(net.Collector.Recordings))
	fmt.Printf("miss ratio           : %.3f\n", net.Collector.MissRatioAt(end))
	fmt.Printf("redundancy ratio     : %.3f\n", net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate))
	fmt.Printf("stored bytes (net)   : %d / %d capacity\n",
		net.TotalStoredBytes(), len(net.Nodes)**blocks*256)
	fmt.Printf("control messages     : %d frames (%d bytes on air)\n", st.TotalFrames, st.TotalBytes)
	fmt.Printf("migrations           : %d batches\n", len(net.Collector.Migrations))
	fmt.Printf("frames by kind       : %v\n", st.TxByKind)

	files := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
	fmt.Printf("retrieval            : %v\n", retrieval.Summarize(files, 500*time.Millisecond))

	fmt.Printf("\n-- per-node flash occupancy (bytes) --\n")
	for _, node := range net.Nodes {
		fmt.Printf("  node %2d @ %-16v %7d\n", node.ID, node.Pos, node.Mote.Store.BytesUsed())
	}
}
