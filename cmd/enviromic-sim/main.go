// Command enviromic-sim runs one EnviroMic scenario from command-line
// flags and prints the run's summary metrics: effective storage, miss and
// redundancy ratios, message counts, and per-node occupancy.
//
// Examples:
//
//	enviromic-sim -mode full -beta 2 -duration 20m
//	enviromic-sim -mode independent -duration 10m -events 30
//	enviromic-sim -scenario forest -duration 1h
//	enviromic-sim -runs 8 -parallel 4 -duration 10m
//	enviromic-sim -duration 2m -trace -trace-out run.jsonl
//	enviromic-sim -duration 10m -chaos crash.json -invariants
//	enviromic-sim -duration 10m -realtime 10 -http localhost:6060
//
// With -runs N the scenario is repeated for seeds seed..seed+N-1 (fanned
// across -parallel workers) and the per-run headline metrics are printed
// with an aggregate mean. Runs are bit-identical regardless of -parallel.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/experiments"
	"enviromic/internal/group"
	"enviromic/internal/mote"
	"enviromic/internal/obs"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/telemetry"
	"enviromic/internal/workload"
)

func main() {
	var (
		modeStr  = flag.String("mode", "full", "operating mode: independent | cooperative | full")
		scenario = flag.String("scenario", "indoor", "scenario: indoor | forest | city")
		shards   = flag.Int("shards", 1, "execution shards (1 = serial; >= 2 runs the spatially sharded engine, bit-identical results)")
		beta     = flag.Float64("beta", 2, "storage-balancing beta_max (full mode)")
		duration = flag.Duration("duration", 20*time.Minute, "virtual experiment duration")
		seed     = flag.Int64("seed", 1, "simulation seed")
		blocks   = flag.Int("flash", 512, "flash blocks per mote (256 B each)")
		loss     = flag.Float64("loss", 0.05, "radio frame loss probability")
		meanGap  = flag.Duration("event-gap", 20*time.Second, "mean gap between events (indoor)")
		timesync = flag.Bool("timesync", false, "enable FTSP time sync with drifting clocks")
		duty     = flag.Float64("duty", 0, "duty cycle awake fraction (0 = always on)")
		realtime = flag.Float64("realtime", 0, "pace the run against the wall clock at this speed-up factor (0 = as fast as possible)")
		runs     = flag.Int("runs", 1, "repeat the scenario for seeds seed..seed+runs-1 and aggregate")
		parallel = flag.Int("parallel", experiments.DefaultParallel(),
			"worker goroutines for -runs > 1 (1 = serial; results are identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		trace      = flag.Bool("trace", false, "record structured protocol events to -trace-out")
		traceOut   = flag.String("trace-out", "trace.jsonl", "trace file: .jsonl = event log (read it with enviromic-trace), .json = Chrome trace for Perfetto")
		traceFlt   = flag.String("trace-filter", "", "comma-separated event-kind prefixes to keep (e.g. task,storage.migrate); empty keeps all")
		httpAddr   = flag.String("http", "", "serve debug HTTP (pprof, expvar counters, /trace/tail ring) on this address; pair with -realtime to watch a live run")
		chaosFile  = flag.String("chaos", "", "inject faults from this scenario JSON file (schema: DESIGN.md §12); deterministic for a fixed seed")
		invariants = flag.Bool("invariants", false, "check protocol invariants against the trace stream and exit 1 on violation (note: -trace-filter also filters what the checker sees)")
		storMode   = flag.String("storage-mode", "migrate", "storage plane after recording (full mode): migrate | disperse (erasure-coded fragment dispersal, DESIGN.md §17)")
		rsGeom     = flag.String("rs", "6,4", "erasure geometry \"n,k\" for -storage-mode disperse (any k of n fragments reconstruct)")
	)
	flag.Parse()

	smode, err := storage.ParseMode(*storMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var dcfg storage.DisperseConfig
	if smode == storage.ModeDisperse {
		if dcfg, err = storage.ParseRS(*rsGeom); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var chaosScenario *chaos.Scenario
	if *chaosFile != "" {
		data, err := os.ReadFile(*chaosFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		chaosScenario, err = chaos.ParseScenario(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *chaosFile, err)
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var mode core.Mode
	switch *modeStr {
	case "independent":
		mode = core.ModeIndependent
	case "cooperative":
		mode = core.ModeCooperative
	case "full":
		mode = core.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	// The tracer is shared by observer wiring only; it never perturbs the
	// run, so a traced simulation is byte-identical to an untraced one.
	// The telemetry registry carries the same contract for metrics; it is
	// built only when -http asks for a /metrics endpoint.
	var (
		tracer     *obs.Tracer
		traceCount *obs.Counting
		checker    *chaos.Invariants
		registry   *telemetry.Registry
	)
	if *trace || *httpAddr != "" || *invariants {
		if *runs > 1 {
			fmt.Fprintln(os.Stderr, "-trace, -http and -invariants are incompatible with -runs > 1 (events from parallel runs would interleave)")
			os.Exit(2)
		}
		var tee obs.Tee
		if *trace {
			s, err := obs.NewFileSink(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(2)
			}
			tee = append(tee, s)
		}
		var ring *obs.Ring
		if *httpAddr != "" {
			ring = obs.NewRing(4096)
			tee = append(tee, ring)
		}
		if *invariants {
			checker = chaos.NewInvariants(chaos.InvariantsConfig{})
			tee = append(tee, checker)
		}
		var sink obs.Sink = tee
		if len(tee) == 1 {
			sink = tee[0]
		}
		traceCount = obs.NewCounting(sink)
		tracer = obs.New(traceCount).SetFilter(obs.ParseFilter(*traceFlt))
		if *httpAddr != "" {
			registry = telemetry.NewRegistry()
			serveDebug(*httpAddr, traceCount, ring, registry)
		}
	}

	// buildNet assembles a fresh field, workload, and network for one
	// seed. Every run owns its full object graph, which is what makes the
	// -runs fan-out safe and bit-identical to serial execution. When a
	// chaos scenario is loaded it is installed per network, so every seed
	// of a -runs sweep suffers the same scripted faults.
	var injector *chaos.Injector
	installChaos := func(net *core.Network) {
		if chaosScenario == nil {
			return
		}
		inj, err := chaos.Install(net, chaosScenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		if checker != nil {
			inj.SetInvariants(checker)
		}
		if *runs == 1 {
			// Only the single-run path prints the fault log; sweep workers
			// run concurrently and must not share the variable.
			injector = inj
		}
	}
	buildNet := func(seed int64) (*core.Network, int) {
		field := acoustics.NewField(1)
		field.DetectProb = 0.6
		cfg := core.Config{
			Seed:        seed,
			Shards:      *shards,
			Mode:        mode,
			BetaMax:     *beta,
			LossProb:    *loss,
			FlashBlocks: *blocks,
			TimeSync:    *timesync,
			DutyCycle:   *duty,
			Tracer:      tracer,
			Telemetry:   registry,
			StorageMode: smode,
			Disperse:    dcfg,
		}
		if *timesync {
			cfg.MaxClockDriftPPM = 50
		}
		switch *scenario {
		case "indoor":
			grid := workload.IndoorGrid()
			pcfg := workload.DefaultPoisson(grid)
			pcfg.Until = *duration
			pcfg.MeanGap = *meanGap
			events := workload.GeneratePoisson(field, grid, pcfg)
			cfg.CommRange = 6 * grid.Pitch
			net := core.NewGridNetwork(cfg, field, grid)
			installChaos(net)
			return net, events
		case "forest":
			fcfg := workload.DefaultForest()
			fcfg.Duration = *duration
			events := workload.GenerateForest(field, fcfg)
			cfg.CommRange = 30
			net := core.NewNetwork(cfg, field, workload.ForestPositions(2006))
			installChaos(net)
			return net, events
		case "city":
			ccfg := workload.DefaultCity()
			ccfg.Duration = *duration
			field.DetectProb = 0.8
			events := workload.GenerateCity(field, ccfg)
			gcfg := group.DefaultConfig()
			gcfg.PollInterval = 250 * time.Millisecond
			cfg.CommRange = 30
			cfg.Group = &gcfg
			cfg.SamplePeriod = 10 * time.Minute
			net := core.NewNetwork(cfg, field, workload.CityPositions(ccfg))
			installChaos(net)
			return net, events
		default:
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
			os.Exit(2)
			return nil, 0
		}
	}

	if *runs > 1 {
		if *realtime > 0 {
			fmt.Fprintln(os.Stderr, "-realtime is incompatible with -runs > 1")
			os.Exit(2)
		}
		runSweep(*scenario, mode, buildNet, *seed, *runs, *parallel, *duration)
		return
	}

	net, events := buildNet(*seed)
	fmt.Printf("scenario=%s mode=%s events=%d nodes=%d duration=%v seed=%d\n",
		*scenario, mode, events, len(net.Nodes), *duration, *seed)
	if *realtime > 0 {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-realtime is incompatible with -shards > 1")
			os.Exit(2)
		}
		net.Start()
		net.Sched.RunRealtime(sim.At(*duration), *realtime, nil)
	} else {
		net.Run(sim.At(*duration))
	}

	end := sim.At(*duration)
	st := net.Radio.Stats()
	fmt.Printf("\n-- results --\n")
	fmt.Printf("recordings completed : %d\n", len(net.Collector.Recordings))
	fmt.Printf("miss ratio           : %.3f\n", net.Collector.MissRatioAt(end))
	fmt.Printf("redundancy ratio     : %.3f\n", net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate))
	fmt.Printf("stored bytes (net)   : %d / %d capacity\n",
		net.TotalStoredBytes(), len(net.Nodes)**blocks*256)
	fmt.Printf("control messages     : %d frames (%d bytes on air)\n", st.TotalFrames, st.TotalBytes)
	fmt.Printf("migrations           : %d batches\n", len(net.Collector.Migrations))
	fmt.Printf("frames by kind       : %v\n", st.TxByKind)

	if smode == storage.ModeDisperse {
		// Parity carrier files would distort the plain summary; decode them
		// instead, recovering whatever the surviving k-of-n sets restore.
		files, drep := retrieval.ReassembleErasure(net.Holdings(), retrieval.Query{All: true})
		fmt.Printf("retrieval            : %v\n", retrieval.Summarize(files, 500*time.Millisecond))
		fmt.Printf("erasure decode       : rs=%d,%d groups=%d recovered=%d missing=%d\n",
			dcfg.N, dcfg.K, drep.Groups, drep.RecoveredChunks, drep.MissingChunks)
	} else {
		files := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
		fmt.Printf("retrieval            : %v\n", retrieval.Summarize(files, 500*time.Millisecond))
	}

	if len(net.Nodes) <= 64 {
		fmt.Printf("\n-- per-node flash occupancy (bytes) --\n")
		for _, node := range net.Nodes {
			fmt.Printf("  node %2d @ %-16v %7d\n", node.ID, node.Pos, node.Mote.Store.BytesUsed())
		}
	} else {
		// Thousands of rows help nobody; print the occupancy distribution.
		var used, max, occupied int
		for _, node := range net.Nodes {
			b := node.Mote.Store.BytesUsed()
			used += b
			if b > max {
				max = b
			}
			if b > 0 {
				occupied++
			}
		}
		fmt.Printf("\n-- flash occupancy (%d nodes) --\n", len(net.Nodes))
		fmt.Printf("  nodes with data : %d\n", occupied)
		fmt.Printf("  mean bytes/node : %d\n", used/len(net.Nodes))
		fmt.Printf("  max bytes/node  : %d\n", max)
	}

	if injector != nil {
		fmt.Printf("\n-- chaos (%s) --\n", chaosScenario.Name)
		for _, line := range injector.Log() {
			fmt.Printf("  %s\n", line)
		}
		if st.DroppedPartition > 0 {
			fmt.Printf("  frames cut by partitions: %d\n", st.DroppedPartition)
		}
	}
	if checker != nil {
		// End-of-run completeness check: reassembled retrieval output must
		// equal the union of surviving chunks (tolerance = one task period).
		checker.CheckHoldings(net.Sched.Now(), net.Holdings(), time.Second)
		// k-of-n fragment survivability (vacuous under migration).
		checker.CheckSurvivability(net.Sched.Now(), func(id int) bool {
			return net.Nodes[id].Mote.Endpoint.Alive()
		})
		fmt.Printf("\n%s", checker.Report())
	}

	if traceCount != nil {
		if err := traceCount.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if *trace {
			fmt.Printf("\ntrace: %d events -> %s\n", traceCount.Total(), *traceOut)
		}
	}
	if checker != nil && len(checker.Violations()) > 0 {
		os.Exit(1)
	}
}

// serveDebug exposes the standard pprof/expvar endpoints, a /trace/tail
// handler that returns the newest ring events as JSONL, and /metrics in
// Prometheus text format. It binds before returning and prints the bound
// address, so scripts can pass :0 and parse the port.
func serveDebug(addr string, counts *obs.Counting, ring *obs.Ring, reg *telemetry.Registry) {
	expvar.Publish("trace_events_total", expvar.Func(func() any { return counts.Total() }))
	expvar.Publish("trace_events_by_kind", expvar.Func(func() any { return counts.Counts() }))
	http.HandleFunc("/trace/tail", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		var buf []byte
		for _, e := range ring.Tail(n) {
			buf = obs.AppendJSONL(buf, e)
		}
		w.Write(buf)
	})
	http.Handle("/metrics", telemetry.Handler(reg))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "http: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("debug http on http://%s (endpoints: /metrics /trace/tail /debug/pprof /debug/vars)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "http: %v\n", err)
		}
	}()
}

// runSummary is one seed's headline metrics in a -runs sweep.
type runSummary struct {
	seed             int64
	events           int
	miss, redundancy float64
	stored           int
	frames           uint64
}

// runSweep repeats the scenario across seeds on the experiments pool and
// prints per-run rows plus aggregate means (miss ratio with a 90% CI).
func runSweep(scenario string, mode core.Mode, buildNet func(int64) (*core.Network, int),
	seed int64, runs, parallel int, duration time.Duration) {
	end := sim.At(duration)
	results := experiments.Map(parallel, runs, func(i int) runSummary {
		net, events := buildNet(seed + int64(i))
		net.Run(end)
		return runSummary{
			seed:       seed + int64(i),
			events:     events,
			miss:       net.Collector.MissRatioAt(end),
			redundancy: net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate),
			stored:     net.TotalStoredBytes(),
			frames:     net.Radio.Stats().TotalFrames,
		}
	})

	fmt.Printf("scenario=%s mode=%s duration=%v runs=%d parallel=%d\n",
		scenario, mode, duration, runs, parallel)
	fmt.Printf("%8s %8s %8s %8s %12s %10s\n", "seed", "events", "miss", "redund", "stored(B)", "frames")
	var miss []float64
	for _, r := range results {
		fmt.Printf("%8d %8d %8.3f %8.3f %12d %10d\n",
			r.seed, r.events, r.miss, r.redundancy, r.stored, r.frames)
		miss = append(miss, r.miss)
	}
	mean, ci := meanCI90(miss)
	fmt.Printf("\nmiss ratio mean over %d runs: %.3f (±%.3f at 90%% CI)\n", runs, mean, ci)
}

// meanCI90 mirrors the experiments package's confidence-interval helper.
func meanCI90(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.645 * sd / math.Sqrt(n)
}
