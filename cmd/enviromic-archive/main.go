// Command enviromic-archive opens a basestation chunk archive (an
// on-disk directory written by `enviromic-retrieve -archive` or by this
// binary's HTTP ingest endpoint) and either lists its contents or serves
// the concurrent HTTP query API.
//
// Examples:
//
//	enviromic-archive -dir /data/arch -ls
//	enviromic-archive -dir /data/arch -http localhost:8080
//	enviromic-archive -dir /data/a1 -http :8081 -station s1 -peers s2=localhost:8082,s3=localhost:8083
//	curl 'http://localhost:8080/query?from=10s&to=60s&origins=3,4'
//	curl 'http://localhost:8080/files/1/gaps?tolerance=250ms'
//	curl -o file1.wav 'http://localhost:8080/files/1/wav'
//
// The -http listener also exposes the standard pprof and expvar debug
// endpoints (/debug/pprof, /debug/vars), mirroring enviromic-sim's -http
// wiring; archive op counters are published as expvar "archive_stats".
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/federation"
	"enviromic/internal/telemetry"
)

func main() {
	var (
		dir      = flag.String("dir", "", "archive directory (required)")
		shards   = flag.Int("shards", 8, "shard count when creating a fresh archive")
		httpAddr = flag.String("http", "", "serve the query API on this address (e.g. localhost:8080; :0 picks a free port)")
		ls       = flag.Bool("ls", false, "list archived files and exit")
		tol      = flag.Duration("gap-tolerance", 500*time.Millisecond, "default gap tolerance for listings and /gaps")
		cacheMB  = flag.Int64("cache-mb", 16, "reassembly cache budget in MiB (negative disables)")
		syncOn   = flag.Bool("sync-ingest", false, "fsync segments after every ingest group commit")
		compact  = flag.Bool("compact", false, "compact segments (reclaim superseded bytes) and exit")
		ckptMB   = flag.Int64("checkpoint-mb", 8, "bytes appended between index snapshot checkpoints, in MiB (negative disables)")
		autoMB   = flag.Int64("auto-compact-mb", 64, "per-shard superseded bytes triggering auto compaction, in MiB (negative disables)")
		accLog   = flag.Bool("access-log", false, "log one structured line per HTTP request (slog, stderr)")

		peersSpec = flag.String("peers", "",
			"federate with these stations: comma-separated [name=]host:port list; requires -http")
		station = flag.String("station", "", "this station's name in the federation (default: the -http listen address)")
		replF   = flag.Int("replication", 0, "replication factor R: each stripe lives on R stations (0 = full mesh)")
		replInt = flag.Duration("repl-interval", 2*time.Second, "anti-entropy pull interval when caught up")
		probeI  = flag.Duration("probe-interval", time.Second, "peer health probe interval")
		fanoutT = flag.Duration("fanout-timeout", 2*time.Second, "per-peer timeout for federated fan-out and probes")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "enviromic-archive: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	mb := func(v int64) int64 {
		if v > 0 {
			return v << 20
		}
		return v
	}
	reg := telemetry.NewRegistry()
	store, err := archive.Open(*dir, archive.Options{
		Shards:           *shards,
		GapTolerance:     *tol,
		CacheBytes:       mb(*cacheMB),
		SyncOnIngest:     *syncOn,
		CheckpointBytes:  mb(*ckptMB),
		AutoCompactBytes: mb(*autoMB),
		Telemetry:        reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()

	st := store.Stats()
	fmt.Printf("archive %s: %d files, %d chunks, %d payload bytes in %d shards",
		*dir, st.Files, st.Chunks, st.Bytes, st.Shards)
	if st.RecoveredBytes > 0 {
		fmt.Printf(" (recovered: dropped %d torn bytes)", st.RecoveredBytes)
	}
	fmt.Println()

	if *ls {
		list(store)
	}
	if *compact {
		rep, err := store.Compact()
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-archive: compact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("compacted %d shards: kept %d chunks, reclaimed %d bytes (%d segment bytes now)\n",
			rep.Shards, rep.ChunksKept, rep.ReclaimedBytes, rep.SegmentBytesNow)
	}
	if *httpAddr == "" {
		return
	}

	expvar.Publish("archive_stats", expvar.Func(func() any { return store.Stats() }))
	// Flat op counters (ingest.chunks, ingest.duplicates, cache hits,
	// compact.reclaimed_bytes, ...) plus derived ratios, matching the
	// enviromic-sim debug endpoint's flat-counter style.
	expvar.Publish("archive_counters", expvar.Func(func() any { return store.Stats().Counters }))
	expvar.Publish("archive_cache_hit_ratio", expvar.Func(func() any {
		c := store.Stats().Cache
		if c.Hits+c.Misses == 0 {
			return 0.0
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}))
	// The query API is wrapped in per-endpoint metrics (served at
	// /metrics in Prometheus text format) and, with -access-log, one
	// structured log line per request.
	var logger *slog.Logger
	if *accLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
	var api http.Handler
	endpointOf := archive.EndpointOf
	if *peersSpec != "" {
		// Federated: this station answers reads from the whole
		// federation, replicates from its ring sources, and keeps serving
		// local writes (/ingest) and replication reads (/repl/*).
		peers, err := federation.ParsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
			os.Exit(1)
		}
		self := *station
		if self == "" {
			self = ln.Addr().String()
		}
		fed, err := federation.New(store, federation.Config{
			Self:              self,
			Peers:             peers,
			ReplicationFactor: *replF,
			ReplInterval:      *replInt,
			ProbeInterval:     *probeI,
			FanoutTimeout:     *fanoutT,
			CursorPath:        filepath.Join(*dir, "federation-cursors.json"),
			Telemetry:         reg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
			os.Exit(1)
		}
		fed.Start()
		defer fed.Close()
		api = fed.Handler()
		endpointOf = federation.EndpointOf
		fmt.Printf("federation: station %q, %d peers, sources %v\n",
			self, len(peers), fed.ReplicationSources())
	} else {
		api = archive.NewHandler(store)
	}
	api = telemetry.Middleware(reg, endpointOf, api)
	http.Handle("/", telemetry.AccessLog(logger, api))
	http.Handle("/metrics", telemetry.Handler(reg))
	fmt.Printf("serving on http://%s (endpoints: /files /query /stats /metrics /debug/pprof)\n", ln.Addr())
	if err := http.Serve(ln, nil); err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
}

// list prints the /files view as a table.
func list(store *archive.Store) {
	files := store.Files()
	if len(files) == 0 {
		fmt.Println("(archive is empty)")
		return
	}
	fmt.Printf("%6s %12s %12s %8s %10s %6s  %s\n",
		"file", "start", "end", "chunks", "bytes", "gaps", "origins")
	for _, fi := range files {
		fmt.Printf("%6d %12v %12v %8d %10d %6d  %v\n",
			fi.ID, fi.Start, fi.End, fi.Chunks, fi.Bytes, fi.Gaps, fi.Origins)
	}
}
