// Command enviromic-archive opens a basestation chunk archive (an
// on-disk directory written by `enviromic-retrieve -archive` or by this
// binary's HTTP ingest endpoint) and either lists its contents or serves
// the concurrent HTTP query API.
//
// Examples:
//
//	enviromic-archive -dir /data/arch -ls
//	enviromic-archive -dir /data/arch -http localhost:8080
//	curl 'http://localhost:8080/query?from=10s&to=60s&origins=3,4'
//	curl 'http://localhost:8080/files/1/gaps?tolerance=250ms'
//	curl -o file1.wav 'http://localhost:8080/files/1/wav'
//
// The -http listener also exposes the standard pprof and expvar debug
// endpoints (/debug/pprof, /debug/vars), mirroring enviromic-sim's -http
// wiring; archive op counters are published as expvar "archive_stats".
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/telemetry"
)

func main() {
	var (
		dir      = flag.String("dir", "", "archive directory (required)")
		shards   = flag.Int("shards", 8, "shard count when creating a fresh archive")
		httpAddr = flag.String("http", "", "serve the query API on this address (e.g. localhost:8080; :0 picks a free port)")
		ls       = flag.Bool("ls", false, "list archived files and exit")
		tol      = flag.Duration("gap-tolerance", 500*time.Millisecond, "default gap tolerance for listings and /gaps")
		cacheMB  = flag.Int64("cache-mb", 16, "reassembly cache budget in MiB (negative disables)")
		syncOn   = flag.Bool("sync-ingest", false, "fsync segments after every ingest group commit")
		compact  = flag.Bool("compact", false, "compact segments (reclaim superseded bytes) and exit")
		ckptMB   = flag.Int64("checkpoint-mb", 8, "bytes appended between index snapshot checkpoints, in MiB (negative disables)")
		autoMB   = flag.Int64("auto-compact-mb", 64, "per-shard superseded bytes triggering auto compaction, in MiB (negative disables)")
		accLog   = flag.Bool("access-log", false, "log one structured line per HTTP request (slog, stderr)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "enviromic-archive: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	mb := func(v int64) int64 {
		if v > 0 {
			return v << 20
		}
		return v
	}
	reg := telemetry.NewRegistry()
	store, err := archive.Open(*dir, archive.Options{
		Shards:           *shards,
		GapTolerance:     *tol,
		CacheBytes:       mb(*cacheMB),
		SyncOnIngest:     *syncOn,
		CheckpointBytes:  mb(*ckptMB),
		AutoCompactBytes: mb(*autoMB),
		Telemetry:        reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()

	st := store.Stats()
	fmt.Printf("archive %s: %d files, %d chunks, %d payload bytes in %d shards",
		*dir, st.Files, st.Chunks, st.Bytes, st.Shards)
	if st.RecoveredBytes > 0 {
		fmt.Printf(" (recovered: dropped %d torn bytes)", st.RecoveredBytes)
	}
	fmt.Println()

	if *ls {
		list(store)
	}
	if *compact {
		rep, err := store.Compact()
		if err != nil {
			fmt.Fprintf(os.Stderr, "enviromic-archive: compact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("compacted %d shards: kept %d chunks, reclaimed %d bytes (%d segment bytes now)\n",
			rep.Shards, rep.ChunksKept, rep.ReclaimedBytes, rep.SegmentBytesNow)
	}
	if *httpAddr == "" {
		return
	}

	expvar.Publish("archive_stats", expvar.Func(func() any { return store.Stats() }))
	// Flat op counters (ingest.chunks, ingest.duplicates, cache hits,
	// compact.reclaimed_bytes, ...) plus derived ratios, matching the
	// enviromic-sim debug endpoint's flat-counter style.
	expvar.Publish("archive_counters", expvar.Func(func() any { return store.Stats().Counters }))
	expvar.Publish("archive_cache_hit_ratio", expvar.Func(func() any {
		c := store.Stats().Cache
		if c.Hits+c.Misses == 0 {
			return 0.0
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}))
	// The query API is wrapped in per-endpoint metrics (served at
	// /metrics in Prometheus text format) and, with -access-log, one
	// structured log line per request.
	var logger *slog.Logger
	if *accLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	api := telemetry.Middleware(reg, archive.EndpointOf, archive.NewHandler(store))
	http.Handle("/", telemetry.AccessLog(logger, api))
	http.Handle("/metrics", telemetry.Handler(reg))
	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving on http://%s (endpoints: /files /query /stats /metrics /debug/pprof)\n", ln.Addr())
	if err := http.Serve(ln, nil); err != nil {
		fmt.Fprintf(os.Stderr, "enviromic-archive: %v\n", err)
		os.Exit(1)
	}
}

// list prints the /files view as a table.
func list(store *archive.Store) {
	files := store.Files()
	if len(files) == 0 {
		fmt.Println("(archive is empty)")
		return
	}
	fmt.Printf("%6s %12s %12s %8s %10s %6s  %s\n",
		"file", "start", "end", "chunks", "bytes", "gaps", "origins")
	for _, fi := range files {
		fmt.Printf("%6d %12v %12v %8d %10d %6d  %v\n",
			fi.ID, fi.Start, fi.End, fi.Chunks, fi.Bytes, fi.Gaps, fi.Origins)
	}
}
