package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/flash"
)

// archiveSink is where mule tours flush. The -archive flag names either
// a local archive directory (the original path, unchanged) or a
// comma-separated list of station URLs; with stations, tours round-robin
// across them — each stripe of the city lands on a different
// basestation and federation replication spreads it from there.
type archiveSink struct {
	dir    string
	store  *archive.Store
	urls   []string
	client *http.Client
}

// isStationSpec reports whether an -archive value names HTTP stations
// rather than a local directory: any URL scheme, or a comma-separated
// list.
func isStationSpec(spec string) bool {
	return strings.Contains(spec, "://") || strings.Contains(spec, ",")
}

func openSink(spec string, tol time.Duration) (*archiveSink, error) {
	if !isStationSpec(spec) {
		store, err := archive.Open(spec, archive.Options{GapTolerance: tol})
		if err != nil {
			return nil, err
		}
		return &archiveSink{dir: spec, store: store}, nil
	}
	s := &archiveSink{client: &http.Client{Timeout: 30 * time.Second}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		s.urls = append(s.urls, strings.TrimRight(part, "/"))
	}
	if len(s.urls) == 0 {
		return nil, fmt.Errorf("enviromic-retrieve: -archive %q names no stations", spec)
	}
	return s, nil
}

// target names where tour i flushes, for log lines.
func (s *archiveSink) target(tour int) string {
	if s.store != nil {
		return s.dir
	}
	return s.urls[tour%len(s.urls)]
}

// flushReport is the ingest outcome in either mode — the local
// IngestReport fields plus the server-computed re-query list.
type flushReport struct {
	Added      int              `json:"added"`
	Duplicates int              `json:"duplicates"`
	Superseded int              `json:"superseded"`
	Files      []flushFileDelta `json:"files"`
	Requery    []flash.FileID   `json:"requery_files"`
}

type flushFileDelta struct {
	File       flash.FileID `json:"file"`
	Added      int          `json:"added"`
	Duplicates int          `json:"duplicates"`
	Superseded int          `json:"superseded"`
	GapsBefore int          `json:"gaps_before"`
	GapsAfter  int          `json:"gaps_after"`
}

// flush ingests one tour's chunks: locally, or POSTed to tour's
// round-robin station as the same segment frames /ingest always took.
func (s *archiveSink) flush(tour int, chunks []*flash.Chunk) (flushReport, error) {
	if s.store != nil {
		rep, err := s.store.Ingest(chunks)
		if err != nil {
			return flushReport{}, err
		}
		out := flushReport{Added: rep.Added, Duplicates: rep.Duplicates, Superseded: rep.Superseded}
		for _, d := range rep.Files {
			out.Files = append(out.Files, flushFileDelta{
				File: d.File, Added: d.Added, Duplicates: d.Duplicates,
				Superseded: d.Superseded, GapsBefore: d.GapsBefore, GapsAfter: d.GapsAfter,
			})
		}
		for id := range rep.Requery().Files {
			out.Requery = append(out.Requery, id)
		}
		sort.Slice(out.Requery, func(i, j int) bool { return out.Requery[i] < out.Requery[j] })
		return out, nil
	}
	frames, err := archive.EncodeFrames(chunks)
	if err != nil {
		return flushReport{}, err
	}
	url := s.target(tour) + "/ingest"
	resp, err := s.client.Post(url, "application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		return flushReport{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return flushReport{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return flushReport{}, fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	var rep flushReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return flushReport{}, fmt.Errorf("POST %s: %v", url, err)
	}
	return rep, nil
}

// summary prints the post-flush archive totals: local store stats, or
// one /stats line per station.
func (s *archiveSink) summary() {
	if s.store != nil {
		st := s.store.Stats()
		fmt.Printf("    archive now: %d files, %d chunks, %d bytes (superseded on disk: %d)\n",
			st.Files, st.Chunks, st.Bytes, st.SupersededBytes)
		return
	}
	for _, u := range s.urls {
		var st archive.Stats
		resp, err := s.client.Get(u + "/stats")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err != nil {
			fmt.Printf("    station %s: stats unavailable (%v)\n", u, err)
			continue
		}
		fmt.Printf("    station %s: %d files, %d chunks, %d bytes\n", u, st.Files, st.Chunks, st.Bytes)
	}
}

func (s *archiveSink) close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}
