// Command enviromic-retrieve demonstrates the retrieval subsystem: it
// runs a short recording scenario, then retrieves the data three ways —
// physical collection (offline reassembly), a one-hop data mule, and the
// spanning-tree convergecast — and optionally exports the largest
// reassembled file as a WAV.
//
// Examples:
//
//	enviromic-retrieve -duration 2m -wav out.wav
//	enviromic-retrieve -scenario city -archive /tmp/city-archive
//	enviromic-retrieve -scenario city -archive localhost:8081,localhost:8082,localhost:8083
//
// The city scenario runs the ~200-mote quick city (the scaled-down
// sibling of the 10k-mote benchmark scenario), sends a mule tour down
// each street group, and flushes all tours into the archive
// concurrently — the pipelined group-commit ingest path under its
// natural workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/experiments"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/trace"
	"enviromic/internal/wav"
	"enviromic/internal/workload"
)

func main() {
	var (
		scenario   = flag.String("scenario", "grid", "scenario: grid (small, audio on) or city (~200 motes, mule tours)")
		duration   = flag.Duration("duration", 2*time.Minute, "recording phase duration")
		seed       = flag.Int64("seed", 1, "simulation seed")
		wavPath    = flag.String("wav", "", "write the largest reassembled file as 8-bit WAV (grid only)")
		requeryTol = flag.Duration("requery-tolerance", 500*time.Millisecond,
			"gap tolerance for the mule's follow-up gap re-query (MissingFiles)")
		archiveDir = flag.String("archive", "",
			"flush mule collections into this archive: a local directory (created), or\n"+
				"comma-separated station URLs (host:port[,host:port...]) — tours round-robin across stations")
		storMode = flag.String("storage-mode", "migrate",
			"storage plane during the recording phase: migrate | disperse (erasure-coded fragment dispersal; grid only)")
		rsGeom = flag.String("rs", "6,4", "erasure geometry \"n,k\" for -storage-mode disperse")
	)
	flag.Parse()

	smode, err := storage.ParseMode(*storMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var dcfg storage.DisperseConfig
	if smode == storage.ModeDisperse {
		if dcfg, err = storage.ParseRS(*rsGeom); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	switch *scenario {
	case "grid":
		runGrid(*duration, *seed, *wavPath, *requeryTol, *archiveDir, smode, dcfg)
	case "city":
		if smode == storage.ModeDisperse {
			fmt.Fprintln(os.Stderr, "enviromic-retrieve: -storage-mode disperse supports the grid scenario only")
			os.Exit(2)
		}
		runCity(*duration, *seed, *requeryTol, *archiveDir)
	default:
		fmt.Fprintf(os.Stderr, "enviromic-retrieve: unknown -scenario %q (want grid or city)\n", *scenario)
		os.Exit(2)
	}
}

func runGrid(duration time.Duration, seed int64, wavPath string, requeryTol time.Duration, archiveDir string,
	smode storage.Mode, dcfg storage.DisperseConfig) {
	// A small grid with a couple of bird-song events, audio synthesis on
	// so a WAV export is meaningful.
	grid := geometry.Grid{Cols: 5, Rows: 4, Pitch: 2}
	field := acoustics.NewField(1)
	loud := acoustics.LoudnessForRange(2.5*grid.Pitch, field.Threshold)
	acousticsAdd(field, 1, grid.PointAt(1, 1), sim.At(5*time.Second), 15*time.Second, loud)
	acousticsAdd(field, 2, grid.PointAt(3, 2), sim.At(30*time.Second), 20*time.Second, loud)

	net := core.NewGridNetwork(core.Config{
		Seed:            seed,
		Mode:            core.ModeFull,
		BetaMax:         2,
		CommRange:       4 * grid.Pitch,
		LossProb:        0.05,
		FlashBlocks:     1024,
		SynthesizeAudio: true,
		StorageMode:     smode,
		Disperse:        dcfg,
	}, field, grid)
	fmt.Printf("recording for %v over %d motes...\n", duration, len(net.Nodes))
	net.Run(sim.At(duration))

	// 1. Physical collection: read every mote's flash. Dispersal runs
	// decode the parity carriers too, so the summary reflects what a
	// k-of-n reassembly recovers rather than listing carrier files.
	var files map[flash.FileID]*retrieval.File
	if smode == storage.ModeDisperse {
		var drep retrieval.DecodeReport
		files, drep = retrieval.ReassembleErasure(net.Holdings(), retrieval.Query{All: true})
		fmt.Printf("\n[1] physical collection : %v\n", retrieval.Summarize(files, 500*time.Millisecond))
		fmt.Printf("    erasure decode      : rs=%d,%d groups=%d recovered=%d missing=%d\n",
			dcfg.N, dcfg.K, drep.Groups, drep.RecoveredChunks, drep.MissingChunks)
	} else {
		files = retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
		fmt.Printf("\n[1] physical collection : %v\n", retrieval.Summarize(files, 500*time.Millisecond))
	}
	ids := make([]flash.FileID, 0, len(files))
	for id := range files {
		ids = append(ids, id)
	}
	// Sorted for deterministic output (map iteration order would leak
	// into the listing otherwise).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := files[id]
		fmt.Printf("    file %d: %v..%v, %d chunks from recorders %v, %d gaps\n",
			id, f.Start(), f.End(), len(f.Chunks), f.Origins(), len(f.Gaps(500*time.Millisecond)))
	}

	// 2. One-hop mule parked at the grid center.
	mule := retrieval.NewMule(1000, grid.PointAt(2, 2), net.Radio, net.Sched)
	mule.Ask(retrieval.Query{All: true})
	net.Sched.Run(net.Sched.Now().Add(time.Minute))
	fmt.Printf("\n[2] one-hop mule        : %d chunks collected\n", len(mule.Collected))

	// 3. Spanning-tree flood from a corner (reaches multi-hop nodes).
	mule2 := retrieval.NewMule(1001, grid.PointAt(0, 0), net.Radio, net.Sched)
	mule2.Flood(retrieval.Query{All: true}, 1)
	net.Sched.Run(net.Sched.Now().Add(2 * time.Minute))
	fmt.Printf("[3] spanning-tree flood : %d chunks collected\n", len(mule2.Collected))

	if gaps := mule2.MissingFiles(requeryTol); len(gaps.Files) > 0 {
		if smode == storage.ModeDisperse {
			// Fragment-aware re-query: also ask for each gapped file's
			// parity siblings, so decoding can fill holes no surviving data
			// copy covers.
			gaps = retrieval.WithParity(gaps)
		}
		fmt.Printf("    follow-up query (tolerance %v): files=%v\n", requeryTol, keys(gaps.Files))
		mule2.Flood(gaps, 2)
		net.Sched.Run(net.Sched.Now().Add(time.Minute))
		fmt.Printf("    after re-request: %d chunks\n", len(mule2.Collected))
	} else {
		fmt.Printf("    follow-up query (tolerance %v): none — no gapped files\n", requeryTol)
	}

	if archiveDir != "" {
		sink, err := openSink(archiveDir, requeryTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n[4] archive flush -> %s\n", archiveDir)
		for i, tour := range []struct {
			name   string
			chunks []*flash.Chunk
		}{
			{"one-hop mule", mule.Collected},
			{"spanning-tree mule", mule2.Collected},
		} {
			rep, err := sink.flush(i, tour.chunks)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("    tour %d (%s) -> %s: %d added, %d duplicates\n",
				i+1, tour.name, sink.target(i), rep.Added, rep.Duplicates)
			for _, d := range rep.Files {
				fmt.Printf("      file %d: +%d chunks (%d dup), gaps %d -> %d\n",
					d.File, d.Added, d.Duplicates, d.GapsBefore, d.GapsAfter)
			}
			if len(rep.Requery) > 0 {
				fmt.Printf("      next-tour re-query: files=%v tolerance=%v\n", rep.Requery, requeryTol)
			}
		}
		sink.summary()
		if err := sink.close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if wavPath != "" {
		var best *retrieval.File
		for _, f := range files {
			if best == nil || f.Bytes() > best.Bytes() {
				best = f
			}
		}
		if best == nil {
			fmt.Fprintln(os.Stderr, "nothing recorded; no WAV written")
			os.Exit(1)
		}
		samples := trace.Stitch(best, mote.DefaultSampleRate)
		out, err := os.Create(wavPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := wav.Write(out, samples, int(mote.DefaultSampleRate)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s: %.1fs of audio (file %d, coverage %.0f%%)\n",
			wavPath, float64(len(samples))/mote.DefaultSampleRate, best.ID,
			trace.Coverage(best, mote.DefaultSampleRate)*100)
	}
}

// runCity records on the quick city (~200 street motes), then sends one
// data mule touring each street group and flushes every tour into the
// archive concurrently — overlapping tours revisit the same streets, so
// the ingest sees duplicates and (for partially-heard chunks) longer
// copies that supersede shorter ones.
func runCity(duration time.Duration, seed int64, requeryTol time.Duration, archiveDir string) {
	opts := experiments.QuickCityOpts()
	opts.Seed = seed
	opts.Duration = duration
	net, events := experiments.BuildCity(opts)
	fmt.Printf("recording for %v over %d city motes (%d events)...\n", duration, len(net.Nodes), events)
	net.Run(sim.At(duration))

	// One mule per stripe of the street grid, parked IDs well above every
	// mote ID. Tours run back to back on the shared scheduler; each stops
	// every few motes and dwells to collect one-hop replies.
	positions := workload.CityPositions(opts.City)
	muleCount := opts.City.Mules
	if muleCount < 2 {
		muleCount = 2
	}
	mules := make([]*retrieval.Mule, muleCount)
	for i := range mules {
		lo, hi := i*len(positions)/muleCount, (i+1)*len(positions)/muleCount
		var stops []geometry.Point
		for j := lo; j < hi; j += 4 {
			stops = append(stops, positions[j])
		}
		m := retrieval.NewMule(100000+i, stops[0], net.Radio, net.Sched)
		got := m.Tour(net.Sched, stops, 2*time.Second, retrieval.Query{All: true})
		fmt.Printf("[tour %d] mule %d: %d stops, %d chunks collected\n", i+1, m.ID, len(stops), got)
		mules[i] = m
	}

	if archiveDir == "" {
		fmt.Println("no -archive directory; tours not flushed")
		return
	}
	sink, err := openSink(archiveDir, requeryTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\narchive flush -> %s (%d tours, concurrent)\n", archiveDir, len(mules))
	reports := make([]flushReport, len(mules))
	errs := make([]error, len(mules))
	var wg sync.WaitGroup
	for i, m := range mules {
		wg.Add(1)
		go func(i int, chunks []*flash.Chunk) {
			defer wg.Done()
			reports[i], errs[i] = sink.flush(i, chunks)
		}(i, m.Collected)
	}
	wg.Wait()
	for i, rep := range reports {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, errs[i])
			os.Exit(1)
		}
		// Flushed counts can exceed the tour's own tally: replies still in
		// flight when a tour ends land while later tours run the scheduler.
		fmt.Printf("    tour %d -> %s: %d chunks -> %d added, %d duplicates, %d superseded\n",
			i+1, sink.target(i), len(mules[i].Collected), rep.Added, rep.Duplicates, rep.Superseded)
		if len(rep.Requery) > 0 {
			fmt.Printf("      next-tour re-query: files=%v tolerance=%v\n", rep.Requery, requeryTol)
		}
	}
	sink.summary()
	if err := sink.close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func acousticsAdd(f *acoustics.Field, id acoustics.SourceID, p geometry.Point, start sim.Time, dur time.Duration, loud float64) {
	f.AddSource(acoustics.StaticSource(id, p, start, dur, loud, acoustics.VoiceTone))
}

func keys(m map[flash.FileID]bool) []flash.FileID {
	out := make([]flash.FileID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
