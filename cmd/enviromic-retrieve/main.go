// Command enviromic-retrieve demonstrates the retrieval subsystem: it
// runs a short recording scenario, then retrieves the data three ways —
// physical collection (offline reassembly), a one-hop data mule, and the
// spanning-tree convergecast — and optionally exports the largest
// reassembled file as a WAV.
//
// Example:
//
//	enviromic-retrieve -duration 2m -wav out.wav
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/archive"
	"enviromic/internal/core"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/trace"
	"enviromic/internal/wav"
)

func main() {
	var (
		duration   = flag.Duration("duration", 2*time.Minute, "recording phase duration")
		seed       = flag.Int64("seed", 1, "simulation seed")
		wavPath    = flag.String("wav", "", "write the largest reassembled file as 8-bit WAV")
		requeryTol = flag.Duration("requery-tolerance", 500*time.Millisecond,
			"gap tolerance for the mule's follow-up gap re-query (MissingFiles)")
		archiveDir = flag.String("archive", "",
			"flush mule collections into this archive directory (creating it), one ingest per tour")
	)
	flag.Parse()

	// A small grid with a couple of bird-song events, audio synthesis on
	// so a WAV export is meaningful.
	grid := geometry.Grid{Cols: 5, Rows: 4, Pitch: 2}
	field := acoustics.NewField(1)
	loud := acoustics.LoudnessForRange(2.5*grid.Pitch, field.Threshold)
	acousticsAdd(field, 1, grid.PointAt(1, 1), sim.At(5*time.Second), 15*time.Second, loud)
	acousticsAdd(field, 2, grid.PointAt(3, 2), sim.At(30*time.Second), 20*time.Second, loud)

	net := core.NewGridNetwork(core.Config{
		Seed:            *seed,
		Mode:            core.ModeFull,
		BetaMax:         2,
		CommRange:       4 * grid.Pitch,
		LossProb:        0.05,
		FlashBlocks:     1024,
		SynthesizeAudio: true,
	}, field, grid)
	fmt.Printf("recording for %v over %d motes...\n", *duration, len(net.Nodes))
	net.Run(sim.At(*duration))

	// 1. Physical collection: read every mote's flash.
	files := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
	fmt.Printf("\n[1] physical collection : %v\n", retrieval.Summarize(files, 500*time.Millisecond))
	ids := make([]flash.FileID, 0, len(files))
	for id := range files {
		ids = append(ids, id)
	}
	// Sorted for deterministic output (map iteration order would leak
	// into the listing otherwise).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := files[id]
		fmt.Printf("    file %d: %v..%v, %d chunks from recorders %v, %d gaps\n",
			id, f.Start(), f.End(), len(f.Chunks), f.Origins(), len(f.Gaps(500*time.Millisecond)))
	}

	// 2. One-hop mule parked at the grid center.
	mule := retrieval.NewMule(1000, grid.PointAt(2, 2), net.Radio, net.Sched)
	mule.Ask(retrieval.Query{All: true})
	net.Sched.Run(net.Sched.Now().Add(time.Minute))
	fmt.Printf("\n[2] one-hop mule        : %d chunks collected\n", len(mule.Collected))

	// 3. Spanning-tree flood from a corner (reaches multi-hop nodes).
	mule2 := retrieval.NewMule(1001, grid.PointAt(0, 0), net.Radio, net.Sched)
	mule2.Flood(retrieval.Query{All: true}, 1)
	net.Sched.Run(net.Sched.Now().Add(2 * time.Minute))
	fmt.Printf("[3] spanning-tree flood : %d chunks collected\n", len(mule2.Collected))

	if gaps := mule2.MissingFiles(*requeryTol); len(gaps.Files) > 0 {
		fmt.Printf("    follow-up query (tolerance %v): files=%v\n", *requeryTol, keys(gaps.Files))
		mule2.Flood(gaps, 2)
		net.Sched.Run(net.Sched.Now().Add(time.Minute))
		fmt.Printf("    after re-request: %d chunks\n", len(mule2.Collected))
	} else {
		fmt.Printf("    follow-up query (tolerance %v): none — no gapped files\n", *requeryTol)
	}

	if *archiveDir != "" {
		arch, err := archive.Open(*archiveDir, archive.Options{GapTolerance: *requeryTol})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n[4] archive flush -> %s\n", *archiveDir)
		for i, tour := range []struct {
			name   string
			chunks []*flash.Chunk
		}{
			{"one-hop mule", mule.Collected},
			{"spanning-tree mule", mule2.Collected},
		} {
			rep, err := arch.Ingest(tour.chunks)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("    tour %d (%s): %d added, %d duplicates\n",
				i+1, tour.name, rep.Added, rep.Duplicates)
			for _, d := range rep.Files {
				fmt.Printf("      file %d: +%d chunks (%d dup), gaps %d -> %d\n",
					d.File, d.Added, d.Duplicates, d.GapsBefore, d.GapsAfter)
			}
			if rq := rep.Requery(); len(rq.Files) > 0 {
				fmt.Printf("      next-tour re-query: files=%v tolerance=%v\n", keys(rq.Files), *requeryTol)
			}
		}
		st := arch.Stats()
		fmt.Printf("    archive now: %d files, %d chunks, %d bytes\n", st.Files, st.Chunks, st.Bytes)
		if err := arch.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *wavPath != "" {
		var best *retrieval.File
		for _, f := range files {
			if best == nil || f.Bytes() > best.Bytes() {
				best = f
			}
		}
		if best == nil {
			fmt.Fprintln(os.Stderr, "nothing recorded; no WAV written")
			os.Exit(1)
		}
		samples := trace.Stitch(best, mote.DefaultSampleRate)
		out, err := os.Create(*wavPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := wav.Write(out, samples, int(mote.DefaultSampleRate)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s: %.1fs of audio (file %d, coverage %.0f%%)\n",
			*wavPath, float64(len(samples))/mote.DefaultSampleRate, best.ID,
			trace.Coverage(best, mote.DefaultSampleRate)*100)
	}
}

func acousticsAdd(f *acoustics.Field, id acoustics.SourceID, p geometry.Point, start sim.Time, dur time.Duration, loud float64) {
	f.AddSource(acoustics.StaticSource(id, p, start, dur, loud, acoustics.VoiceTone))
}

func keys(m map[flash.FileID]bool) []flash.FileID {
	out := make([]flash.FileID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
