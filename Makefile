GO ?= go

.PHONY: build test check bench bench-archive bench-city figures profile trace-smoke chaos-smoke archive-smoke shard-smoke metrics-smoke archive-load survivability federation-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge tier: vet, gofmt, build, and the full test
# suite under the race detector (exercises the parallel experiment
# pool), including the kind-registry guard test at the repo root. The
# extra -run Chaos / -run 'Erasure|Disperse' passes repeat the
# fault-injection and dispersal suites (crash soak, disperse soak,
# determinism regressions, RS property tests) under the race detector
# by name, so a rename that orphans them from the main run still fails
# loudly here. The survivability smoke gates the migration-vs-dispersal
# matrix end to end through the figures binary.
check:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run Chaos -race ./...
	$(GO) test -run 'Erasure|Disperse|Survivability' -race ./internal/erasure/ ./internal/storage/ ./internal/core/ ./internal/retrieval/ ./internal/experiments/
	$(GO) test -run ArchiveSoak -race -count=1 ./internal/archive/
	sh scripts/shard_smoke.sh
	sh scripts/metrics_smoke.sh
	sh scripts/survivability.sh
	sh scripts/federation_smoke.sh

# bench regenerates BENCH_erasure.json (erasure encode/decode benches,
# message-plane micro-benchmarks, the full-figure runs, and the
# disabled-path guards) and fails if the serial indoor figure regressed
# >2% beyond machine drift vs the BENCH_obs.json baseline.
bench:
	sh scripts/bench.sh

# survivability runs the migration-vs-dispersal head-to-head matrix
# (also part of `check`): 3 chaos scenarios x 2 storage modes; dispersal
# must keep strictly more data retrievable than migration under crashes.
survivability:
	sh scripts/survivability.sh

# trace-smoke runs a short traced indoor scenario end to end: JSONL
# schema validation, the enviromic-trace summary, and a Perfetto export.
trace-smoke:
	sh scripts/trace_smoke.sh

# chaos-smoke runs fault-injection scenarios end to end through the sim
# binary: leader crash + loss burst + partition with the invariant
# checker on, and a chaos-off determinism check.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# archive-smoke runs the basestation archive end to end: a fixed-seed
# retrieval flushed into a fresh archive, a dedup no-op re-ingest, the
# HTTP query service (files/query/gaps/wav/stats via curl), and a
# torn-tail recovery after truncating a segment file.
archive-smoke:
	sh scripts/archive_smoke.sh

# shard-smoke repeats the serial-vs-sharded byte-identity regressions
# under the race detector (also part of `check`): shard workers, deposit
# lanes, and the barrier merge with every cross-shard handoff watched.
shard-smoke:
	sh scripts/shard_smoke.sh

# metrics-smoke scrapes /metrics end to end (also part of `check`): the
# sharded sim's PDES + radio series mid-run, the archive server's HTTP +
# store series with -access-log on, and the load harness's client-vs-
# server p99 cross-check.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# bench-city regenerates BENCH_city.json: the ~10.4k-mote city scenario
# for one simulated hour on the serial and sharded engines, with a
# byte-identity check between the two. The >= 2.5x speedup gate is
# enforced only on hosts with >= 4 CPUs.
bench-city:
	sh scripts/bench_city.sh

# bench-archive regenerates BENCH_archive.json (ingest throughput,
# dedup fast path, interval queries, cold/warm reassembly, index
# rebuild on open).
bench-archive:
	sh scripts/bench_archive.sh

# federation-smoke boots a 3-station federated cluster (also part of
# `check`): split city tours vs a single-station reference, byte-for-
# byte federated read diffs, one station killed and rejoined (cursor
# catch-up), and the federated query storm into BENCH_federation.json.
federation-smoke:
	sh scripts/federation_smoke.sh

# archive-load regenerates BENCH_archive_http.json: the 1M-chunk open
# bench (snapshot vs rescan) and HTTP ingest/query load at >= 1000
# concurrent clients, then gates the in-process archive benchmarks at
# <= 2% ns/op regression vs BENCH_archive.json.
archive-load:
	sh scripts/archive_load.sh

# profile runs the indoor scenario under the CPU and allocation
# profilers; inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
profile:
	$(GO) run ./cmd/enviromic-sim -scenario indoor -duration 20m \
		-cpuprofile cpu.pprof -memprofile mem.pprof

figures:
	$(GO) run ./cmd/enviromic-figures -quick
