GO ?= go

.PHONY: build test check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge tier: vet, build, and the full test suite under
# the race detector (exercises the parallel experiment pool).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench regenerates BENCH_radio.json (radio hot path + full-figure runs).
bench:
	sh scripts/bench_radio.sh

figures:
	$(GO) run ./cmd/enviromic-figures -quick
