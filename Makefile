GO ?= go

.PHONY: build test check bench figures profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge tier: vet, build, and the full test suite under
# the race detector (exercises the parallel experiment pool), including
# the kind-registry guard test at the repo root.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench regenerates BENCH_msgplane.json (message-plane micro-benchmarks
# plus the full-figure runs; supersedes the old bench_radio.sh).
bench:
	sh scripts/bench.sh

# profile runs the indoor scenario under the CPU and allocation
# profilers; inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
profile:
	$(GO) run ./cmd/enviromic-sim -scenario indoor -duration 20m \
		-cpuprofile cpu.pprof -memprofile mem.pprof

figures:
	$(GO) run ./cmd/enviromic-figures -quick
