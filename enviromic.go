// Package enviromic is a Go reproduction of "EnviroMic: Towards
// Cooperative Storage and Retrieval in Audio Sensor Networks" (Luo, Cao,
// Huang, Abdelzaher, Stankovic, Ward — ICDCS 2007): a distributed
// acoustic monitoring, storage, and trace-retrieval system for
// disconnected sensor networks, running on a deterministic discrete-event
// simulation of a MicaZ-class mote deployment.
//
// The package is a facade over the internal modules. A typical session:
//
//	field := enviromic.NewField(1.0)
//	grid := enviromic.Grid{Cols: 8, Rows: 6, Pitch: 2}
//	enviromic.AddStaticSource(field, 1, grid.PointAt(2, 2), enviromic.At(5*time.Second),
//	    10*time.Second, 40, enviromic.VoiceTone)
//	net := enviromic.NewGridNetwork(enviromic.Config{
//	    Seed: 1, Mode: enviromic.ModeFull, CommRange: 8, BetaMax: 2,
//	}, field, grid)
//	net.Run(enviromic.At(60 * time.Second))
//	files := enviromic.Collect(net, enviromic.Query{All: true})
//
// Subsystems (paper section in parentheses):
//
//   - cooperative recording: leader election, SENSING membership, task
//     assignment with the Trc/Dta seamless-rotation scheme (§II-A);
//   - distributed storage balancing on TTL comparisons (§II-B);
//   - data retrieval: offline reassembly, one-hop mule queries, and a
//     spanning-tree convergecast (§II-C);
//   - the full substrate: discrete-event kernel, acoustic field, radio
//     with overhearing and loss, ADC timing with radio-induced jitter,
//     block flash with EEPROM checkpoints, FTSP-style time sync.
package enviromic

import (
	"io"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/metrics"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/task"
	"enviromic/internal/trace"
	"enviromic/internal/wav"
	"enviromic/internal/workload"
)

// Core simulation types.
type (
	// Time is virtual time in nanoseconds since simulation start.
	Time = sim.Time
	// Point is a deployment-plane position.
	Point = geometry.Point
	// Grid is a regular deployment layout.
	Grid = geometry.Grid
	// Path is a piecewise-linear trajectory for mobile sources.
	Path = geometry.Path

	// Field is the acoustic environment: sources plus noise floor.
	Field = acoustics.Field
	// Source is one acoustic emitter.
	Source = acoustics.Source
	// SourceID identifies a ground-truth source.
	SourceID = acoustics.SourceID
	// VoiceKind selects a synthesized waveform family.
	VoiceKind = acoustics.VoiceKind

	// Config parameterizes a network build.
	Config = core.Config
	// Mode selects independent / cooperative / full operation.
	Mode = core.Mode
	// Network is a complete simulated deployment.
	Network = core.Network
	// Node is one assembled mote.
	Node = core.Node

	// GroupConfig tunes group management (§II-A.1).
	GroupConfig = group.Config
	// TaskConfig tunes task assignment (§II-A.2).
	TaskConfig = task.Config
	// StorageConfig tunes the storage balancer (§II-B).
	StorageConfig = storage.Config

	// Chunk is the stored/migrated/retrieved data unit.
	Chunk = flash.Chunk
	// FileID identifies a distributed event file.
	FileID = flash.FileID

	// Query selects chunks for retrieval.
	Query = retrieval.Query
	// File is a reassembled distributed recording.
	File = retrieval.File
	// Mule is the in-field collector.
	Mule = retrieval.Mule
	// Collector accumulates evaluation metrics for a run.
	Collector = metrics.Collector
)

// Operating modes.
const (
	ModeIndependent = core.ModeIndependent
	ModeCooperative = core.ModeCooperative
	ModeFull        = core.ModeFull
)

// Waveform families.
const (
	VoiceTone   = acoustics.VoiceTone
	VoiceRumble = acoustics.VoiceRumble
	VoiceSpeech = acoustics.VoiceSpeech
)

// DefaultSampleRate is the paper's 2.730 kHz acoustic sampling rate.
const DefaultSampleRate = 2730.0

// At converts a duration-from-start to a simulation Time.
func At(d time.Duration) Time { return sim.At(d) }

// NewField returns an acoustic field with the given detection threshold.
func NewField(threshold float64) *Field { return acoustics.NewField(threshold) }

// AddStaticSource adds a stationary source to the field and returns it.
func AddStaticSource(f *Field, id SourceID, p Point, start Time, dur time.Duration, loudness float64, voice VoiceKind) *Source {
	s := acoustics.StaticSource(id, p, start, dur, loudness, voice)
	f.AddSource(s)
	return s
}

// AddMobileSource adds a source moving from a to b over the active
// interval and returns it.
func AddMobileSource(f *Field, id SourceID, a, b Point, start Time, dur time.Duration, loudness float64, voice VoiceKind) *Source {
	s := acoustics.MobileSource(id, a, b, start, dur, loudness, voice)
	f.AddSource(s)
	return s
}

// LoudnessForRange returns the loudness that makes a source audible out
// to range r at the given detection threshold.
func LoudnessForRange(r, threshold float64) float64 {
	return acoustics.LoudnessForRange(r, threshold)
}

// NewNetwork deploys motes at arbitrary positions.
func NewNetwork(cfg Config, field *Field, positions []Point) *Network {
	return core.NewNetwork(cfg, field, positions)
}

// NewGridNetwork deploys motes on a regular grid.
func NewGridNetwork(cfg Config, field *Field, grid Grid) *Network {
	return core.NewGridNetwork(cfg, field, grid)
}

// DefaultGroupConfig, DefaultTaskConfig and DefaultStorageConfig expose
// the paper-calibrated module defaults for customization.
func DefaultGroupConfig() GroupConfig { return group.DefaultConfig() }

// DefaultTaskConfig returns the task-management defaults (Trc = 1 s,
// Dta = 70 ms — the values §IV-A settles on).
func DefaultTaskConfig() TaskConfig { return task.DefaultConfig() }

// DefaultStorageConfig returns balancer defaults for the given βmax.
func DefaultStorageConfig(betaMax float64) StorageConfig { return storage.DefaultConfig(betaMax) }

// Collect reassembles the network's current flash contents offline — the
// "physically collect the motes" retrieval path the paper's users
// actually exercised.
func Collect(n *Network, q Query) map[FileID]*File {
	return retrieval.Reassemble(n.Holdings(), q)
}

// NewMule joins an in-field collector to the network's radio at pos. Use
// an ID above all mote IDs.
func NewMule(n *Network, id int, pos Point) *Mule {
	return retrieval.NewMule(id, pos, n.Radio, n.Sched)
}

// Stitch renders a reassembled file into a continuous 8-bit sample
// stream at the given rate, silence-filling gaps.
func Stitch(f *File, rate float64) []byte { return trace.Stitch(f, rate) }

// EnvelopeCorrelation compares two sample streams at envelope
// granularity (Fig 8's similarity measure).
func EnvelopeCorrelation(a, b []byte, window int) float64 {
	return trace.EnvelopeCorrelation(a, b, window)
}

// Segment is a detected sound event in a stitched stream (basestation
// post-processing, §II).
type Segment = trace.Segment

// SegmentConfig tunes DetectSegments.
type SegmentConfig = trace.SegmentConfig

// DetectSegments finds sound events in an 8-bit sample stream by
// envelope thresholding — the offline analysis the paper expects
// basestations to run over retrieved files.
func DetectSegments(samples []byte, cfg SegmentConfig) []Segment {
	return trace.Segments(samples, cfg)
}

// WriteWAV exports a sample stream as an 8-bit mono WAV.
func WriteWAV(w io.Writer, samples []byte, sampleRate int) error {
	return wav.Write(w, samples, sampleRate)
}

// IndoorGrid returns the paper's 48-mote indoor testbed layout.
func IndoorGrid() Grid { return workload.IndoorGrid() }

// ForestPositions returns the 36-mote outdoor deployment layout (§IV-C).
func ForestPositions(seed int64) []Point { return workload.ForestPositions(seed) }

// Workload generators for the paper's evaluation scenarios.
type (
	// PoissonConfig parameterizes the §IV-B controlled event process.
	PoissonConfig = workload.PoissonConfig
	// ForestConfig parameterizes the §IV-C outdoor soundscape.
	ForestConfig = workload.ForestConfig
)

// DefaultPoisson returns the §IV-B workload parameters for a grid.
func DefaultPoisson(grid Grid) PoissonConfig { return workload.DefaultPoisson(grid) }

// GeneratePoissonEvents populates the field with the §IV-B event process,
// returning the number of events.
func GeneratePoissonEvents(field *Field, grid Grid, cfg PoissonConfig) int {
	return workload.GeneratePoisson(field, grid, cfg)
}

// DefaultForest returns the §IV-C outdoor schedule parameters.
func DefaultForest() ForestConfig { return workload.DefaultForest() }

// GenerateForestSoundscape populates the field with the outdoor scenario
// (road traffic, trail wildlife, activity spikes), returning the number
// of sources.
func GenerateForestSoundscape(field *Field, cfg ForestConfig) int {
	return workload.GenerateForest(field, cfg)
}

// NearestNodes returns the k grid node indices closest to p (used to
// restrict event audibility the way §IV-B does).
func NearestNodes(grid Grid, p Point, k int) []int { return workload.NearestNodes(grid, p, k) }

// Reassemble groups arbitrary per-node chunk holdings into files (the
// offline retrieval path for collections not taken from a live Network).
func Reassemble(holdings map[int][]*Chunk, q Query) map[FileID]*File {
	return retrieval.Reassemble(holdings, q)
}

// SummarizeFiles computes collection-wide statistics.
func SummarizeFiles(files map[FileID]*File, gapTolerance time.Duration) retrieval.Summary {
	return retrieval.Summarize(files, gapTolerance)
}
