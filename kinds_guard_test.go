// Guard test for the interned payload-kind registry: every protocol
// module's kind must be registered exactly once (RegisterKind is
// idempotent, so "exactly once" means one ID per name), all module kind
// IDs must be pairwise distinct, and names must round-trip through
// KindName. A failure here means two modules collided on a kind name or
// a module bypassed the registry — either would cross-dispatch payloads
// at runtime.
package enviromic_test

import (
	"testing"

	"enviromic/internal/group"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/retrieval"
	"enviromic/internal/storage"
	"enviromic/internal/task"
	"enviromic/internal/timesync"
)

// moduleKinds is the authoritative list of every protocol module's
// registered kind. Add new module kinds here as they appear.
func moduleKinds() map[string]radio.KindID {
	return map[string]radio.KindID{
		"group.sensing":     group.KindSensing,
		"group.leader":      group.KindLeader,
		"group.resign":      group.KindResign,
		"group.preludekeep": group.KindPrelude,
		"task.request":      task.KindRequest,
		"task.confirm":      task.KindConfirm,
		"task.reject":       task.KindReject,
		"bulk.data":         netstack.KindBulkData,
		"bulk.ack":          netstack.KindBulkAck,
		"retr.query":        retrieval.KindQuery,
		"retr.flood":        retrieval.KindFlood,
		"storage.ttl":       storage.KindTTL,
		"timesync":          timesync.KindBeacon,
	}
}

func TestModuleKindsUniqueAndRegistered(t *testing.T) {
	byID := make(map[radio.KindID]string)
	for name, id := range moduleKinds() {
		if other, dup := byID[id]; dup {
			t.Errorf("kinds %q and %q share ID %d", name, other, id)
		}
		byID[id] = name
		if got := radio.KindName(id); got != name {
			t.Errorf("KindName(%d) = %q, want %q", id, got, name)
		}
		if got, ok := radio.LookupKind(name); !ok || got != id {
			t.Errorf("LookupKind(%q) = %d,%v, want %d,true", name, got, ok, id)
		}
	}
}

func TestRegisterKindIdempotent(t *testing.T) {
	// Multiple packages register shared test kinds ("ctl", "state"); the
	// registry must hand back the same ID rather than minting a second
	// one that would split dispatch.
	a := radio.RegisterKind("guard.idempotent")
	b := radio.RegisterKind("guard.idempotent")
	if a != b {
		t.Errorf("RegisterKind minted two IDs for one name: %d, %d", a, b)
	}
}

func TestRegistryCoversModuleKinds(t *testing.T) {
	names := radio.RegisteredKinds()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if set[n] {
			t.Errorf("RegisteredKinds lists %q twice", n)
		}
		set[n] = true
	}
	for name := range moduleKinds() {
		if !set[name] {
			t.Errorf("module kind %q missing from registry listing", name)
		}
	}
}
