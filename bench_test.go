// Benchmarks regenerating every table/figure of the paper's evaluation
// (§IV), one benchmark per figure, plus ablation benches for the design
// choices called out in DESIGN.md and micro-benchmarks of the hot
// substrate paths.
//
// The figure benches run reduced-scale variants of the experiments (the
// full-scale numbers are produced by cmd/enviromic-figures and recorded
// in EXPERIMENTS.md); each reports its headline result via
// b.ReportMetric, so `go test -bench . -benchmem` prints the same
// quantities the paper plots.
package enviromic_test

import (
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/erasure"
	"enviromic/internal/experiments"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/metrics"
	"enviromic/internal/mote"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/task"
	"enviromic/internal/telemetry"
	"enviromic/internal/workload"
)

// ---------------------------------------------------------------------
// Figure benches.
// ---------------------------------------------------------------------

func BenchmarkFig03SamplingJitter(b *testing.B) {
	var long, short float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(int64(i+1), 150)
		long, short = 0, 0
		for _, iv := range res.Sending {
			switch iv {
			case 16:
				long++
			case 9:
				short++
			}
		}
	}
	b.ReportMetric(long, "long16j/trace")
	b.ReportMetric(short, "short9j/trace")
}

func BenchmarkFig06MissVsDta(b *testing.B) {
	opts := experiments.Fig6Opts{
		Seed:    1,
		Runs:    2,
		DtaMS:   []int{10, 70, 130},
		TrcList: []time.Duration{time.Second},
	}
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		res = experiments.Fig6(opts)
	}
	b.ReportMetric(res.Mean[0][0], "miss@dta10ms")
	b.ReportMetric(res.Mean[0][1], "miss@dta70ms")
	b.ReportMetric(res.Mean[0][2], "miss@dta130ms")
}

func BenchmarkFig07TaskTimeline(b *testing.B) {
	var res experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig7(int64(i + 1))
	}
	nodes := map[int]bool{}
	for _, t := range res.Tasks {
		nodes[t.Node] = true
	}
	b.ReportMetric(float64(len(res.Tasks)), "tasks")
	b.ReportMetric(float64(len(nodes)), "recorders")
}

func BenchmarkFig08VoiceStitch(b *testing.B) {
	var res experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8(int64(i + 1))
	}
	b.ReportMetric(res.EnvelopeCorr, "envelope-corr")
	b.ReportMetric(res.Coverage, "coverage")
}

// indoorQuick runs the reduced §IV-B experiment once per benchmark run
// and reports the figure's headline metric.
func indoorQuick(b *testing.B, report func(res experiments.IndoorResult)) {
	b.Helper()
	var res experiments.IndoorResult
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickIndoorOpts()
		opts.Seed = int64(i + 1)
		res = experiments.Indoor(opts)
	}
	report(res)
}

func lastVal(s experiments.Series, name string) float64 {
	c := s.Curves[name]
	return c[len(c)-1]
}

func BenchmarkFig10MissRatio(b *testing.B) {
	indoorQuick(b, func(res experiments.IndoorResult) {
		b.ReportMetric(lastVal(res.Miss, "baseline"), "miss-baseline")
		b.ReportMetric(lastVal(res.Miss, "coop-only"), "miss-coop")
		b.ReportMetric(lastVal(res.Miss, "lb-beta2"), "miss-lb2")
	})
}

func BenchmarkFig11Redundancy(b *testing.B) {
	indoorQuick(b, func(res experiments.IndoorResult) {
		b.ReportMetric(lastVal(res.Redundancy, "baseline"), "red-baseline")
		b.ReportMetric(lastVal(res.Redundancy, "coop-only"), "red-coop")
		b.ReportMetric(lastVal(res.Redundancy, "lb-beta2"), "red-lb2")
	})
}

func BenchmarkFig12Messages(b *testing.B) {
	indoorQuick(b, func(res experiments.IndoorResult) {
		b.ReportMetric(lastVal(res.Messages, "coop-only"), "msgs-coop")
		b.ReportMetric(lastVal(res.Messages, "lb-beta2"), "msgs-lb2")
		b.ReportMetric(lastVal(res.Messages, "lb-beta4"), "msgs-lb4")
	})
}

func BenchmarkFig13StorageContour(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickIndoorOpts()
		opts.Seed = int64(i + 1)
		net := experiments.RunIndoor(experiments.IndoorSetting{
			Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2,
		}, opts)
		h := experiments.HeatmapAt(net, sim.At(opts.Duration), false)
		if max := h.Max(); max > 0 {
			spread = h.Total() / (max * float64(h.Cols*h.Rows))
		}
	}
	// Evenness of the spatial spread: 1.0 = perfectly uniform.
	b.ReportMetric(spread, "evenness")
}

func BenchmarkFig14OverheadContour(b *testing.B) {
	var corr float64
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickIndoorOpts()
		opts.Seed = int64(i + 1)
		net := experiments.RunIndoor(experiments.IndoorSetting{
			Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2,
		}, opts)
		hs := experiments.HeatmapAt(net, sim.At(opts.Duration), false)
		ho := experiments.HeatmapAt(net, sim.At(opts.Duration), true)
		corr = heatmapCorr(hs, ho)
	}
	// The paper observes message counts correlate with storage occupancy.
	b.ReportMetric(corr, "storage-overhead-corr")
}

func heatmapCorr(a, c *geometry.Heatmap) float64 {
	var sa, sc, saa, scc, sac, n float64
	for row := 0; row < a.Rows; row++ {
		for col := 0; col < a.Cols; col++ {
			x, y := a.Cell(col, row), c.Cell(col, row)
			sa += x
			sc += y
			saa += x * x
			scc += y * y
			sac += x * y
			n++
		}
	}
	num := sac - sa*sc/n
	den := (saa - sa*sa/n) * (scc - sc*sc/n)
	if den <= 0 {
		return 0
	}
	return num / sqrt(den)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func forestQuick(b *testing.B) experiments.ForestResult {
	b.Helper()
	var res experiments.ForestResult
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickForestOpts()
		opts.Seed = int64(i + 1)
		res = experiments.Forest(opts)
	}
	return res
}

func BenchmarkFig16OutdoorTimeline(b *testing.B) {
	res := forestQuick(b)
	total := 0.0
	peak := 0.0
	for _, v := range res.PerMinute {
		total += v
		if v > peak {
			peak = v
		}
	}
	b.ReportMetric(total, "recorded-s")
	b.ReportMetric(peak, "peak-s/min")
}

func BenchmarkFig17OutdoorContour(b *testing.B) {
	res := forestQuick(b)
	b.ReportMetric(float64(len(res.BytesByNode)), "recording-nodes")
	b.ReportMetric(res.BytesByNode[res.HottestNode], "hottest-bytes")
}

func BenchmarkFig18Migration(b *testing.B) {
	res := forestQuick(b)
	total := 0
	for _, n := range res.MigratedFromHottest {
		total += n
	}
	b.ReportMetric(float64(total), "migrated-chunks")
	b.ReportMetric(float64(len(res.MigratedFromHottest)), "holder-nodes")
}

// ---------------------------------------------------------------------
// Ablation benches (design choices from DESIGN.md §5).
// ---------------------------------------------------------------------

// BenchmarkAblationPrelude compares short-event coverage with and without
// the prelude optimization.
func BenchmarkAblationPrelude(b *testing.B) {
	run := func(seed int64, prelude time.Duration) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(2*time.Second),
			800*time.Millisecond, 3, acoustics.VoiceTone))
		gcfg := group.DefaultConfig()
		gcfg.Prelude = prelude
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10, Group: &gcfg,
		}, field, grid)
		net.Run(sim.At(10 * time.Second))
		return net.Collector.MissRatioAt(sim.At(10 * time.Second))
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(int64(i+1), time.Second)
		without = run(int64(i+1), 0)
	}
	b.ReportMetric(with, "miss-with-prelude")
	b.ReportMetric(without, "miss-without")
}

// BenchmarkAblationSelection compares TTL-first vs signal-first recorder
// selection on a mobile event (coverage of the crossing).
func BenchmarkAblationSelection(b *testing.B) {
	run := func(seed int64, bySignal bool) float64 {
		grid := workload.IndoorGrid()
		field := acoustics.NewField(1)
		src := workload.AddMobileCrossing(field, grid, 1, sim.At(2*time.Second))
		gcfg := group.DefaultConfig()
		gcfg.SelectBySignal = bySignal
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 3.5 * grid.Pitch,
			LossProb: 0.05, Group: &gcfg,
		}, field, grid)
		net.Run(src.End.Add(3 * time.Second))
		return net.Collector.MissRatioAt(src.End.Add(2 * time.Second))
	}
	var ttlFirst, sigFirst float64
	for i := 0; i < b.N; i++ {
		ttlFirst = run(int64(i+1), false)
		sigFirst = run(int64(i+1), true)
	}
	b.ReportMetric(ttlFirst, "miss-ttl-first")
	b.ReportMetric(sigFirst, "miss-signal-first")
}

// BenchmarkAblationBetaSchedule compares the TTL-linear β schedule with a
// fixed β = βmax.
func BenchmarkAblationBetaSchedule(b *testing.B) {
	run := func(seed int64, fixed bool) float64 {
		opts := experiments.QuickIndoorOpts()
		opts.Seed = seed
		scfg := storage.DefaultConfig(2)
		if fixed {
			scfg.BetaRefTTL = time.Nanosecond // β pinned at βmax
		}
		grid := workload.IndoorGrid()
		field := acoustics.NewField(1)
		field.DetectProb = opts.DetectProb
		pcfg := workload.DefaultPoisson(grid)
		pcfg.Until = opts.Duration
		workload.GeneratePoisson(field, grid, pcfg)
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeFull, BetaMax: 2, CommRange: 6 * grid.Pitch,
			LossProb: 0.05, FlashBlocks: opts.FlashBlocks, Storage: &scfg,
		}, field, grid)
		net.Run(sim.At(opts.Duration))
		return net.Collector.MissRatioAt(sim.At(opts.Duration))
	}
	var linear, fixed float64
	for i := 0; i < b.N; i++ {
		linear = run(int64(i+1), false)
		fixed = run(int64(i+1), true)
	}
	b.ReportMetric(linear, "miss-linear-beta")
	b.ReportMetric(fixed, "miss-fixed-beta")
}

// ---------------------------------------------------------------------
// Parallel harness benches: the same full figure run, serial vs fanned
// across GOMAXPROCS workers. The parallel variant is the acceptance
// benchmark for the run-harness speedup (≥2x on a multi-core host; on a
// single-core host the two are equal by construction).
// ---------------------------------------------------------------------

func benchIndoorFull(b *testing.B, parallel int) {
	b.Helper()
	var res experiments.IndoorResult
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickIndoorOpts()
		opts.Seed = int64(i + 1)
		opts.Parallel = parallel
		res = experiments.Indoor(opts)
	}
	b.ReportMetric(lastVal(res.Miss, "lb-beta2"), "miss-lb2")
}

func BenchmarkIndoorFigureSerial(b *testing.B)   { benchIndoorFull(b, 1) }
func BenchmarkIndoorFigureParallel(b *testing.B) { benchIndoorFull(b, experiments.DefaultParallel()) }

func benchFig6Sweep(b *testing.B, parallel int) {
	b.Helper()
	opts := experiments.Fig6Opts{
		Seed:     1,
		Runs:     4,
		DtaMS:    []int{10, 70, 130},
		TrcList:  []time.Duration{time.Second},
		Parallel: parallel,
	}
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		res = experiments.Fig6(opts)
	}
	b.ReportMetric(res.Mean[0][1], "miss@dta70ms")
}

func BenchmarkFig06SweepSerial(b *testing.B)   { benchFig6Sweep(b, 1) }
func BenchmarkFig06SweepParallel(b *testing.B) { benchFig6Sweep(b, experiments.DefaultParallel()) }

// ---------------------------------------------------------------------
// radio.Send micro-benches at the paper's deployment densities (36-node
// forest, 48-node indoor grid) plus a 200-node stress grid. Each
// iteration is one broadcast plus its batched delivery; -benchmem guards
// the per-Send allocation budget.
// ---------------------------------------------------------------------

func benchRadioSend(b *testing.B, cols, rows int) {
	b.Helper()
	s := sim.NewScheduler(1)
	grid := geometry.Grid{Cols: cols, Rows: rows, Pitch: 2}
	cfg := radio.DefaultConfig(3.5 * grid.Pitch)
	cfg.LossProb = 0.05
	net := radio.NewNetwork(s, cfg)
	eps := make([]*radio.Endpoint, grid.NumNodes())
	for i, p := range grid.Points() {
		eps[i] = net.Join(i, p)
		eps[i].SetHandler(radio.HandlerFunc(func(f *radio.Frame) {}))
	}
	payload := benchPayload{kind: kindBench, size: 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps[i%len(eps)].Send(radio.Broadcast, payload)
		s.RunAll()
	}
}

func BenchmarkRadioSend36(b *testing.B)  { benchRadioSend(b, 6, 6) }
func BenchmarkRadioSend48(b *testing.B)  { benchRadioSend(b, 8, 6) }
func BenchmarkRadioSend200(b *testing.B) { benchRadioSend(b, 20, 10) }

// BenchmarkRadioSend48BruteForce is the pre-index reference path at
// indoor density, for before/after comparison in BENCH_radio.json.
func BenchmarkRadioSend48BruteForce(b *testing.B) {
	s := sim.NewScheduler(1)
	grid := geometry.Grid{Cols: 8, Rows: 6, Pitch: 2}
	cfg := radio.DefaultConfig(3.5 * grid.Pitch)
	cfg.LossProb = 0.05
	cfg.BruteForce = true
	net := radio.NewNetwork(s, cfg)
	eps := make([]*radio.Endpoint, grid.NumNodes())
	for i, p := range grid.Points() {
		eps[i] = net.Join(i, p)
		eps[i].SetHandler(radio.HandlerFunc(func(f *radio.Frame) {}))
	}
	payload := benchPayload{kind: kindBench, size: 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps[i%len(eps)].Send(radio.Broadcast, payload)
		s.RunAll()
	}
}

// ---------------------------------------------------------------------
// Message-plane micro-benchmarks (BENCH_msgplane.json): kind dispatch
// through the netstack's dense handler table and the chunk pool's
// split/free round-trip.
// ---------------------------------------------------------------------

// BenchmarkStackDispatch is one urgent send plus its delivery and
// per-kind handler dispatch between two stacks.
func BenchmarkStackDispatch(b *testing.B) {
	s := sim.NewScheduler(1)
	cfg := radio.DefaultConfig(5)
	cfg.LossProb = 0
	net := radio.NewNetwork(s, cfg)
	a := netstack.NewStack(net.Join(0, geometry.Point{}), s)
	c := netstack.NewStack(net.Join(1, geometry.Point{X: 1}), s)
	delivered := 0
	c.Register(kindBench, func(from, to int, p radio.Payload) { delivered++ })
	payload := benchPayload{kind: kindBench, size: 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SendUrgent(radio.Broadcast, payload)
		s.RunAll()
	}
	if delivered == 0 {
		b.Fatal("no payloads dispatched")
	}
}

// BenchmarkChunkSplit segments one second of audio into pooled chunks
// and recycles them — the recording path's per-task storage cost.
func BenchmarkChunkSplit(b *testing.B) {
	samples := make([]byte, int(mote.DefaultSampleRate))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks := flash.SplitSamples(1, 2, 0, sim.At(0), sim.At(time.Second), samples)
		flash.FreeChunks(chunks)
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

func BenchmarkFlashEnqueueDequeue(b *testing.B) {
	st := flash.NewStore(2048)
	c := &flash.Chunk{File: 1, Data: make([]byte, flash.PayloadSize)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.Free() == 0 {
			if _, err := st.DequeueHead(); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Enqueue(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkMarshal(b *testing.B) {
	c := &flash.Chunk{File: 1, Origin: 3, Seq: 9, Start: 1, End: 2,
		Data: make([]byte, flash.PayloadSize)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := c.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flash.UnmarshalChunk(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntervalSetUnion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s metrics.IntervalSet
		for j := 0; j < 200; j++ {
			at := sim.Time(j*7919%1000) * sim.Time(time.Millisecond)
			s.Add(at, at+sim.Time(50*time.Millisecond))
		}
		_ = s.Union()
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := sim.NewScheduler(1)
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, "bench", reschedule)
		}
	}
	s.After(time.Microsecond, "bench", reschedule)
	b.ResetTimer()
	s.RunAll()
}

func BenchmarkAcousticSignalSynthesis(b *testing.B) {
	field := acoustics.NewField(1)
	field.NoiseAmp = 0.1
	field.AddSource(acoustics.StaticSource(1, geometry.Point{X: 1}, 0, time.Hour, 5, acoustics.VoiceSpeech))
	field.AddSource(acoustics.StaticSource(2, geometry.Point{X: 2}, 0, time.Hour, 5, acoustics.VoiceTone))
	p := geometry.Point{X: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = field.SignalAt(0, p, sim.Time(i)*sim.Time(time.Microsecond)*366)
	}
}

func BenchmarkMoteCapture1s(b *testing.B) {
	s := sim.NewScheduler(1)
	field := acoustics.NewField(1)
	field.AddSource(acoustics.StaticSource(1, geometry.Point{X: 1}, 0, time.Hour, 5, acoustics.VoiceTone))
	m := coreTestNet(s, field)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.CaptureSamples(0, sim.At(time.Second))
	}
}

// coreTestNet builds a single synthesizing mote for the capture bench.
func coreTestNet(s *sim.Scheduler, field *acoustics.Field) *mote.Mote {
	rn := radio.NewNetwork(s, radio.DefaultConfig(4))
	return mote.New(0, geometry.Point{}, s, field, rn, mote.Config{SynthesizeAudio: true, FlashBlocks: 8})
}

// BenchmarkAblationPiggyback measures the frame savings of the
// neighborhood broadcast module's piggybacking (§III-A): delay-tolerant
// payloads ride on urgent traffic instead of flying alone.
func BenchmarkAblationPiggyback(b *testing.B) {
	run := func(piggyback bool) uint64 {
		s := sim.NewScheduler(1)
		rcfg := radio.DefaultConfig(5)
		rcfg.LossProb = 0
		net := radio.NewNetwork(s, rcfg)
		stacks := make([]*netstack.Stack, 4)
		for i := range stacks {
			stacks[i] = netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
			if !piggyback {
				stacks[i].MaxPiggyback = 0
			}
		}
		// A busy period: every node emits urgent control traffic at 2 Hz
		// and delay-tolerant state at 1 Hz, for a virtual minute.
		for i, st := range stacks {
			st := st
			sim.NewTicker(s, 500*time.Millisecond, "urgent", func() {
				st.SendUrgent(radio.Broadcast, benchPayload{kind: kindBenchCtl, size: 9})
			})
			sim.NewTicker(s, time.Second, "state", func() {
				st.SendDelayTolerant(benchPayload{kind: kindBenchState, size: 6})
			})
			_ = i
		}
		s.Run(sim.At(time.Minute))
		return net.Stats().TotalFrames
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(with), "frames-piggyback")
	b.ReportMetric(float64(without), "frames-no-piggyback")
}

var (
	kindBench      = radio.RegisterKind("bench")
	kindBenchCtl   = radio.RegisterKind("ctl")
	kindBenchState = radio.RegisterKind("state")
	evBench        = obs.RegisterEvent("bench.ev")
)

// BenchmarkTracerDisabled guards the disabled-tracing fast path: every
// protocol module emits through a nil *obs.Tracer when tracing is off,
// so the nil-receiver Emit must stay allocation-free — otherwise the
// figure benches above would silently pay for tracing nobody asked for.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *obs.Tracer
	if avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(sim.At(time.Second), evBench, 1, 2, 3, 4, 5)
	}); avg != 0 {
		b.Fatalf("nil-tracer Emit allocates %v/op, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), evBench, 1, 2, 3, 4, 5)
	}
}

// BenchmarkTelemetryDisabled guards the matching fast path for metrics:
// with no registry configured every instrumented site holds nil metric
// pointers, and the nil-receiver Inc/Add/Set/Observe must stay
// allocation-free so telemetry-off runs pay only a predicted branch.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var (
		c *telemetry.Counter
		g *telemetry.Gauge
		h *telemetry.Histogram
	)
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.AddLane(3, 7)
		g.Set(1.5)
		h.Observe(0.25)
	}); avg != 0 {
		b.Fatalf("nil metric ops allocate %v/op, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.AddLane(i, int64(i))
		g.Set(float64(i))
		h.Observe(float64(i))
	}
}

type benchPayload struct {
	kind radio.KindID
	size int
}

func (p benchPayload) Kind() radio.KindID { return p.kind }
func (p benchPayload) Size() int          { return p.size }

// BenchmarkAblationOverhearing quantifies the duplicate-recording
// suppression of the TASK_REJECT optimization under loss.
func BenchmarkAblationOverhearing(b *testing.B) {
	run := func(seed int64, disable bool) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(time.Second),
			15*time.Second, 3, acoustics.VoiceTone))
		tcfg := task.DefaultConfig()
		tcfg.DisableOverhearing = disable
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10,
			LossProb: 0.25, Task: &tcfg,
		}, field, grid)
		net.Run(sim.At(18 * time.Second))
		return net.Collector.RedundancyRatioAt(sim.At(18*time.Second), mote.DefaultSampleRate)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(int64(i+1), false)
		without = run(int64(i+1), true)
	}
	b.ReportMetric(with, "redundancy-with-reject")
	b.ReportMetric(without, "redundancy-ablated")
}

// ---------------------------------------------------------------------
// Erasure-coding micro-benchmarks (BENCH_erasure.json): the dispersal
// mode's encode hot path (one recorded group -> parity fragment blobs)
// and the retrieval decode path (reconstructing erased data chunks from
// surviving fragments).
// ---------------------------------------------------------------------

func benchErasureGroup(n, k, count int) (erasure.Group, []*flash.Chunk) {
	g := erasure.Group{File: 3, Origin: 7, FirstSeq: 0, Count: uint32(count),
		Start: sim.At(0), End: sim.At(time.Duration(count) * time.Second), N: n, K: k}
	chunks := make([]*flash.Chunk, count)
	for i := range chunks {
		c := flash.NewChunk()
		c.File, c.Origin = g.File, g.Origin
		c.Seq = uint32(i)
		c.Start = sim.At(time.Duration(i) * time.Second)
		c.End = c.Start + sim.Time(time.Second)
		c.Data = c.Data[:0]
		for j := 0; j < flash.PayloadSize; j++ {
			c.Data = append(c.Data, byte(i*31+j))
		}
		chunks[i] = c
	}
	return g, chunks
}

// BenchmarkErasureEncode64 erasure-codes a 64-chunk recording into the
// default (6,4) geometry's parity blobs — the per-recording cost the
// dispersal mode adds on the recorder.
func BenchmarkErasureEncode64(b *testing.B) {
	g, chunks := benchErasureGroup(6, 4, 64)
	code, err := erasure.Cached(g.N, g.K)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := erasure.EncodeParity(code, g, chunks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureReconstruct64 rebuilds the maximum tolerable erasure
// (n-k data chunks missing) of a 64-chunk (6,4) group from its parity
// fragments — the retrieval-side decode cost.
func BenchmarkErasureReconstruct64(b *testing.B) {
	g, chunks := benchErasureGroup(6, 4, 64)
	code, err := erasure.Cached(g.N, g.K)
	if err != nil {
		b.Fatal(err)
	}
	blobs, err := erasure.EncodeParity(code, g, chunks)
	if err != nil {
		b.Fatal(err)
	}
	var carriers []*flash.Chunk
	for j, blob := range blobs {
		carriers = append(carriers, erasure.Carriers(g, g.K+j, blob)...)
	}
	byGroup, stats := erasure.CollectFragments(carriers)
	if stats.BadCarriers != 0 || stats.BadFragments != 0 || stats.Incomplete != 0 {
		b.Fatalf("clean carriers produced stats %+v", stats)
	}
	frags := byGroup[g.Key()]
	present := make(map[uint32]*flash.Chunk, len(chunks))
	for _, c := range chunks {
		if int(c.Seq)%g.K < g.K-(g.N-g.K) {
			present[c.Seq] = c // drop n-k chunks per stripe
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := erasure.ReconstructGroup(g, present, frags)
		if err != nil {
			b.Fatal(err)
		}
		flash.FreeChunks(rec)
	}
}
