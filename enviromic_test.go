// Tests of the public facade: everything a downstream user touches goes
// through the root package, so these double as executable documentation.
package enviromic_test

import (
	"bytes"
	"testing"
	"time"

	"enviromic"
)

// scenario builds the quickstart-style network used by several tests.
func scenario(t *testing.T, mode enviromic.Mode) (*enviromic.Network, *enviromic.Source) {
	t.Helper()
	field := enviromic.NewField(1.0)
	grid := enviromic.Grid{Cols: 4, Rows: 3, Pitch: 2}
	loud := enviromic.LoudnessForRange(2*grid.Pitch, 1.0)
	src := enviromic.AddStaticSource(field, 1, grid.PointAt(1, 1),
		enviromic.At(5*time.Second), 10*time.Second, loud, enviromic.VoiceTone)
	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:      1,
		Mode:      mode,
		CommRange: 5 * grid.Pitch,
		BetaMax:   2,
	}, field, grid)
	return net, src
}

func TestFacadeEndToEnd(t *testing.T) {
	net, src := scenario(t, enviromic.ModeFull)
	net.Run(enviromic.At(time.Minute))

	if len(net.Collector.Recordings) == 0 {
		t.Fatal("nothing recorded")
	}
	miss := net.Collector.MissRatioAt(enviromic.At(time.Minute))
	if miss > 0.25 {
		t.Errorf("miss ratio %.3f too high for an easy scenario", miss)
	}
	files := enviromic.Collect(net, enviromic.Query{All: true})
	if len(files) == 0 {
		t.Fatal("no files retrieved")
	}
	sum := enviromic.SummarizeFiles(files, 500*time.Millisecond)
	if sum.Bytes == 0 || sum.TotalLength <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	// The single event produced a file covering most of its duration.
	var best *enviromic.File
	for _, f := range files {
		if best == nil || f.Bytes() > best.Bytes() {
			best = f
		}
	}
	covered := best.Duration().Seconds()
	if covered < 0.7*src.End.Sub(src.Start).Seconds() {
		t.Errorf("best file covers %.1fs of a 10s event", covered)
	}
}

func TestFacadeStitchAndWAV(t *testing.T) {
	field := enviromic.NewField(1.0)
	grid := enviromic.Grid{Cols: 3, Rows: 2, Pitch: 2}
	loud := enviromic.LoudnessForRange(2*grid.Pitch, 1.0)
	enviromic.AddStaticSource(field, 1, grid.PointAt(1, 0),
		enviromic.At(3*time.Second), 6*time.Second, loud, enviromic.VoiceSpeech)
	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:            2,
		Mode:            enviromic.ModeCooperative,
		CommRange:       5 * grid.Pitch,
		SynthesizeAudio: true,
	}, field, grid)
	net.Run(enviromic.At(20 * time.Second))

	files := enviromic.Collect(net, enviromic.Query{All: true})
	var best *enviromic.File
	for _, f := range files {
		if best == nil || f.Bytes() > best.Bytes() {
			best = f
		}
	}
	if best == nil {
		t.Fatal("nothing retrieved")
	}
	samples := enviromic.Stitch(best, enviromic.DefaultSampleRate)
	if len(samples) == 0 {
		t.Fatal("empty stitch")
	}
	var buf bytes.Buffer
	if err := enviromic.WriteWAV(&buf, samples, int(enviromic.DefaultSampleRate)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44+len(samples) {
		t.Errorf("wav size %d", buf.Len())
	}
	// Self-similarity sanity for the exported helper.
	if corr := enviromic.EnvelopeCorrelation(samples, samples, 256); corr < 0.999 {
		t.Errorf("self correlation = %v", corr)
	}
}

func TestFacadeMuleRetrieval(t *testing.T) {
	net, _ := scenario(t, enviromic.ModeFull)
	net.Run(enviromic.At(time.Minute))
	physical := enviromic.Collect(net, enviromic.Query{All: true})

	mule := enviromic.NewMule(net, 500, enviromic.Point{X: 3, Y: 2})
	mule.Ask(enviromic.Query{All: true})
	net.Sched.Run(net.Sched.Now().Add(30 * time.Second))
	muleFiles := mule.Files()
	if len(muleFiles) != len(physical) {
		t.Errorf("mule retrieved %d files, physical %d", len(muleFiles), len(physical))
	}
}

func TestFacadeModesOrdering(t *testing.T) {
	// The headline claim: coordination reduces redundancy vs independent
	// recording. (The storage-capacity effect needs longer runs; it is
	// covered by the experiments package.)
	indep, _ := scenario(t, enviromic.ModeIndependent)
	indep.Run(enviromic.At(time.Minute))
	coop, _ := scenario(t, enviromic.ModeCooperative)
	coop.Run(enviromic.At(time.Minute))

	at := enviromic.At(time.Minute)
	ri := indep.Collector.RedundancyRatioAt(at, enviromic.DefaultSampleRate)
	rc := coop.Collector.RedundancyRatioAt(at, enviromic.DefaultSampleRate)
	if rc >= ri {
		t.Errorf("cooperative redundancy %.3f not below independent %.3f", rc, ri)
	}
}

func TestFacadeWorkloadGenerators(t *testing.T) {
	grid := enviromic.IndoorGrid()
	field := enviromic.NewField(1.0)
	cfg := enviromic.DefaultPoisson(grid)
	cfg.Until = 10 * time.Minute
	if n := enviromic.GeneratePoissonEvents(field, grid, cfg); n == 0 {
		t.Error("no Poisson events generated")
	}
	f2 := enviromic.NewField(1.0)
	fcfg := enviromic.DefaultForest()
	fcfg.Duration = 30 * time.Minute
	if n := enviromic.GenerateForestSoundscape(f2, fcfg); n == 0 {
		t.Error("no forest sources generated")
	}
	if len(enviromic.ForestPositions(1)) != 36 {
		t.Error("forest positions != 36")
	}
	if got := enviromic.NearestNodes(grid, grid.PointAt(0, 0), 4); len(got) != 4 {
		t.Errorf("NearestNodes = %v", got)
	}
}

func TestFacadeDefaults(t *testing.T) {
	g := enviromic.DefaultGroupConfig()
	if g.PollInterval <= 0 {
		t.Error("group defaults empty")
	}
	tc := enviromic.DefaultTaskConfig()
	if tc.Trc != time.Second || tc.Dta != 70*time.Millisecond {
		t.Errorf("task defaults = Trc %v Dta %v (paper: 1s, 70ms)", tc.Trc, tc.Dta)
	}
	sc := enviromic.DefaultStorageConfig(3)
	if sc.BetaMax != 3 {
		t.Errorf("storage defaults BetaMax = %v", sc.BetaMax)
	}
}

func TestFacadeReassembleStandalone(t *testing.T) {
	// Reassemble works on holdings not taken from a live network (e.g.
	// loaded from disk images).
	holdings := map[int][]*enviromic.Chunk{
		0: {{File: 9, Origin: 0, Seq: 0, Start: enviromic.At(time.Second), End: enviromic.At(2 * time.Second), Data: []byte{1}}},
		1: {{File: 9, Origin: 1, Seq: 0, Start: enviromic.At(2 * time.Second), End: enviromic.At(3 * time.Second), Data: []byte{2}}},
	}
	files := enviromic.Reassemble(holdings, enviromic.Query{All: true})
	if len(files) != 1 || len(files[9].Chunks) != 2 {
		t.Errorf("reassemble = %v", files)
	}
}

func TestFacadeDutyCycleAndEnvelopeDetection(t *testing.T) {
	field := enviromic.NewField(1.0)
	field.NoiseAmp = 0.5
	grid := enviromic.Grid{Cols: 3, Rows: 2, Pitch: 2}
	enviromic.AddStaticSource(field, 1, enviromic.Point{X: 2, Y: 1},
		enviromic.At(10*time.Second), 15*time.Second, 20, enviromic.VoiceTone)
	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:              9,
		Mode:              enviromic.ModeCooperative,
		CommRange:         10,
		DutyCycle:         0.7,
		DutyPeriod:        5 * time.Second,
		EnvelopeDetection: true,
	}, field, grid)
	net.Run(enviromic.At(40 * time.Second))
	if len(net.Collector.Recordings) == 0 {
		t.Error("duty-cycled envelope-detecting network recorded nothing")
	}
}

func TestFacadeSegmentsOnStitchedAudio(t *testing.T) {
	field := enviromic.NewField(1.0)
	grid := enviromic.Grid{Cols: 3, Rows: 2, Pitch: 2}
	loud := enviromic.LoudnessForRange(2*grid.Pitch, 1.0)
	enviromic.AddStaticSource(field, 1, grid.PointAt(1, 0),
		enviromic.At(3*time.Second), 5*time.Second, loud, enviromic.VoiceTone)
	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed: 2, Mode: enviromic.ModeCooperative, CommRange: 10, SynthesizeAudio: true,
	}, field, grid)
	net.Run(enviromic.At(15 * time.Second))
	files := enviromic.Collect(net, enviromic.Query{All: true})
	var best *enviromic.File
	for _, f := range files {
		if best == nil || f.Bytes() > best.Bytes() {
			best = f
		}
	}
	if best == nil {
		t.Fatal("nothing recorded")
	}
	samples := enviromic.Stitch(best, enviromic.DefaultSampleRate)
	segs := enviromic.DetectSegments(samples, enviromic.SegmentConfig{})
	if len(segs) == 0 {
		t.Error("no segments detected in a recorded tone")
	}
}
