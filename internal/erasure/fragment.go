package erasure

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// ParityFileBit marks a chunk as a parity-fragment carrier: its File is
// the data file's ID with this bit set, so parity rides the existing
// storage/retrieval machinery as an ordinary (distinct) file and never
// collides with data chunk identities. BaseFile strips the bit.
const ParityFileBit flash.FileID = 1 << 31

// IsParity reports whether the chunk carries parity-fragment bytes.
func IsParity(c *flash.Chunk) bool { return c.File&ParityFileBit != 0 }

// BaseFile returns the data file a (possibly parity) file ID refers to.
func BaseFile(id flash.FileID) flash.FileID { return id &^ ParityFileBit }

// Group identifies one dispersal unit: the chunks one recorder stored for
// one recording task (a contiguous Seq run of one file). The recorder
// erasure-codes the group into N fragments of which any K reconstruct it.
type Group struct {
	File     flash.FileID // data file ID (ParityFileBit clear)
	Origin   int32        // recording node
	FirstSeq uint32       // first data chunk sequence number
	Count    uint32       // number of data chunks (seqs FirstSeq..FirstSeq+Count-1)
	Start    sim.Time     // covered recording span (for time-range queries)
	End      sim.Time
	N, K     int
}

// Key returns the group's network-wide identity.
func (g Group) Key() GroupKey { return GroupKey{g.File, g.Origin, g.FirstSeq} }

// Stripes returns the stripe count: each stripe erasure-codes K
// consecutive data chunks (the last stripe zero-pads).
func (g Group) Stripes() int { return int((g.Count + uint32(g.K) - 1) / uint32(g.K)) }

// GroupKey is the map key for dispersal groups.
type GroupKey struct {
	File     flash.FileID
	Origin   int32
	FirstSeq uint32
}

// Fragment wire format. A parity fragment is a self-describing blob:
//
//	offset size
//	0      2   magic "EF"
//	2      1   version (1)
//	3      1   n
//	4      1   k
//	5      1   fragment index (k..n-1)
//	6      4   file ID (ParityFileBit clear)
//	10     4   origin node
//	14     4   first data seq
//	18     4   data chunk count
//	22     8   group start time (ns)
//	30     8   group end time (ns)
//	38     2   stripe record length (flash.BlockSize)
//	40     4   CRC-32 (IEEE) of the parity bytes
//	44     S×L parity records, S = ceil(count/k), L = stripe record length
//
// Record s is the fragment's Reed-Solomon share of stripe s: the coded
// combination of the 256-byte Marshal block images of data chunks
// [FirstSeq+s·k, FirstSeq+(s+1)·k) (absent tail cells count as zero
// blocks). Coding whole block images — not just payloads — is what makes
// reconstruction recover a missing chunk verbatim, metadata included.
//
// Blobs travel packetized into carrier chunks (File = file|ParityFileBit)
// whose payloads are:
//
//	offset size
//	0      2   magic "EC"
//	2      1   version (1)
//	3      1   fragment index
//	4      4   group first seq
//	8      2   carrier index
//	10     2   carrier count
//	12     2   slice length
//	14     …   blob slice (≤ CarrierCapacity bytes)
const (
	fragVersion       = 1
	fragHeaderSize    = 44
	carrierVersion    = 1
	carrierHeaderSize = 14
	// CarrierCapacity is the blob bytes one carrier chunk holds.
	CarrierCapacity = flash.PayloadSize - carrierHeaderSize
)

var zeroBlock [flash.BlockSize]byte

// EncodeParity builds the N−K parity fragment blobs for one group.
// chunks must be the group's data chunks in ascending Seq order: exactly
// Count of them, contiguous from FirstSeq. Payload contents are
// arbitrary (zero-length through PayloadSize).
func EncodeParity(code *Code, g Group, chunks []*flash.Chunk) ([][]byte, error) {
	if code.N() != g.N || code.K() != g.K {
		return nil, fmt.Errorf("erasure: code is (%d,%d), group wants (%d,%d)", code.N(), code.K(), g.N, g.K)
	}
	if uint32(len(chunks)) != g.Count || g.Count == 0 {
		return nil, fmt.Errorf("erasure: group has %d chunks, Count says %d", len(chunks), g.Count)
	}
	for i, c := range chunks {
		if c.Seq != g.FirstSeq+uint32(i) {
			return nil, fmt.Errorf("erasure: chunk %d has seq %d, want %d", i, c.Seq, g.FirstSeq+uint32(i))
		}
		if c.File != g.File || c.Origin != g.Origin {
			return nil, fmt.Errorf("erasure: chunk seq %d belongs to file %#x origin %d, group is file %#x origin %d",
				c.Seq, c.File, c.Origin, g.File, g.Origin)
		}
	}
	stripes := g.Stripes()
	parityLen := stripes * flash.BlockSize
	blobs := make([][]byte, g.N-g.K)
	for j := range blobs {
		blobs[j] = make([]byte, fragHeaderSize+parityLen)
	}
	data := make([][]byte, g.K)
	for s := 0; s < stripes; s++ {
		for col := 0; col < g.K; col++ {
			i := s*g.K + col
			if i < len(chunks) {
				img, err := chunks[i].Marshal()
				if err != nil {
					return nil, err
				}
				data[col] = img
			} else {
				data[col] = zeroBlock[:]
			}
		}
		parity, err := code.EncodeParity(data)
		if err != nil {
			return nil, err
		}
		for j := range blobs {
			copy(blobs[j][fragHeaderSize+s*flash.BlockSize:], parity[j])
		}
	}
	for j := range blobs {
		writeFragHeader(blobs[j], g, g.K+j)
	}
	return blobs, nil
}

func writeFragHeader(blob []byte, g Group, index int) {
	blob[0], blob[1], blob[2] = 'E', 'F', fragVersion
	blob[3], blob[4], blob[5] = byte(g.N), byte(g.K), byte(index)
	binary.BigEndian.PutUint32(blob[6:], uint32(g.File))
	binary.BigEndian.PutUint32(blob[10:], uint32(g.Origin))
	binary.BigEndian.PutUint32(blob[14:], g.FirstSeq)
	binary.BigEndian.PutUint32(blob[18:], g.Count)
	binary.BigEndian.PutUint64(blob[22:], uint64(g.Start))
	binary.BigEndian.PutUint64(blob[30:], uint64(g.End))
	binary.BigEndian.PutUint16(blob[38:], flash.BlockSize)
	binary.BigEndian.PutUint32(blob[40:], crc32.ChecksumIEEE(blob[fragHeaderSize:]))
}

// Fragment is one parsed parity fragment.
type Fragment struct {
	Group Group
	Index int // k..n-1
	// Stripes[s] is the fragment's share of stripe s (views into the
	// blob, flash.BlockSize bytes each).
	Stripes [][]byte
}

// ParseFragment validates and parses a reassembled fragment blob. Every
// declared size is checked against the actual blob length before any
// dependent allocation, and the parity bytes must match the stored CRC.
func ParseFragment(blob []byte) (*Fragment, error) {
	if len(blob) < fragHeaderSize {
		return nil, fmt.Errorf("erasure: fragment blob is %d bytes, header needs %d", len(blob), fragHeaderSize)
	}
	if blob[0] != 'E' || blob[1] != 'F' {
		return nil, fmt.Errorf("erasure: bad fragment magic %#x%#x", blob[0], blob[1])
	}
	if blob[2] != fragVersion {
		return nil, fmt.Errorf("erasure: fragment version %d, want %d", blob[2], fragVersion)
	}
	n, k, index := int(blob[3]), int(blob[4]), int(blob[5])
	if k < 1 || n <= k {
		return nil, fmt.Errorf("erasure: fragment geometry (%d,%d) invalid", n, k)
	}
	if index < k || index >= n {
		return nil, fmt.Errorf("erasure: parity index %d outside [%d,%d)", index, k, n)
	}
	g := Group{
		File:     flash.FileID(binary.BigEndian.Uint32(blob[6:])),
		Origin:   int32(binary.BigEndian.Uint32(blob[10:])),
		FirstSeq: binary.BigEndian.Uint32(blob[14:]),
		Count:    binary.BigEndian.Uint32(blob[18:]),
		Start:    sim.Time(binary.BigEndian.Uint64(blob[22:])),
		End:      sim.Time(binary.BigEndian.Uint64(blob[30:])),
		N:        n,
		K:        k,
	}
	if g.File&ParityFileBit != 0 {
		return nil, fmt.Errorf("erasure: fragment file %#x has the parity bit set", g.File)
	}
	if g.Count == 0 {
		return nil, fmt.Errorf("erasure: fragment declares an empty group")
	}
	if l := binary.BigEndian.Uint16(blob[38:]); l != flash.BlockSize {
		return nil, fmt.Errorf("erasure: stripe record length %d, want %d", l, flash.BlockSize)
	}
	stripes := int64(g.Stripes())
	if want := int64(fragHeaderSize) + stripes*flash.BlockSize; int64(len(blob)) != want {
		return nil, fmt.Errorf("erasure: fragment blob is %d bytes, %d chunks need %d", len(blob), g.Count, want)
	}
	if crc := crc32.ChecksumIEEE(blob[fragHeaderSize:]); crc != binary.BigEndian.Uint32(blob[40:]) {
		return nil, fmt.Errorf("erasure: fragment CRC mismatch (got %#x, stored %#x)",
			crc, binary.BigEndian.Uint32(blob[40:]))
	}
	f := &Fragment{Group: g, Index: index, Stripes: make([][]byte, stripes)}
	for s := range f.Stripes {
		f.Stripes[s] = blob[fragHeaderSize+s*flash.BlockSize : fragHeaderSize+(s+1)*flash.BlockSize]
	}
	return f, nil
}

// Carriers packetizes one parity fragment blob into carrier chunks ready
// for the bulk-transfer plane. Carrier sequence numbers are derived from
// the group (FirstSeq·256 plus the fragment's carrier offsets), which
// keeps (file|ParityFileBit, origin, seq) unique across a recorder's
// groups without any per-node counter — groups advance FirstSeq by at
// least one chunk, and a group never emits 256·Count carriers. Carrier
// Start/End spans the whole group so time-range queries fetch the parity
// alongside the data it protects.
func Carriers(g Group, fragIndex int, blob []byte) []*flash.Chunk {
	count := (len(blob) + CarrierCapacity - 1) / CarrierCapacity
	out := make([]*flash.Chunk, 0, count)
	for i := 0; i < count; i++ {
		lo := i * CarrierCapacity
		hi := lo + CarrierCapacity
		if hi > len(blob) {
			hi = len(blob)
		}
		c := flash.NewChunk()
		c.File = g.File | ParityFileBit
		c.Origin = g.Origin
		c.Seq = g.FirstSeq*256 + uint32((fragIndex-g.K)*count+i)
		c.Start = g.Start
		c.End = g.End
		var hdr [carrierHeaderSize]byte
		hdr[0], hdr[1], hdr[2], hdr[3] = 'E', 'C', carrierVersion, byte(fragIndex)
		binary.BigEndian.PutUint32(hdr[4:], g.FirstSeq)
		binary.BigEndian.PutUint16(hdr[8:], uint16(i))
		binary.BigEndian.PutUint16(hdr[10:], uint16(count))
		binary.BigEndian.PutUint16(hdr[12:], uint16(hi-lo))
		c.Data = append(c.Data[:0], hdr[:]...)
		c.Data = append(c.Data, blob[lo:hi]...)
		out = append(out, c)
	}
	return out
}

// Carrier is one parsed carrier chunk payload.
type Carrier struct {
	FragIndex     int
	GroupFirstSeq uint32
	Index, Count  int
	Slice         []byte // view into the payload
}

// DecodeCarrier parses a carrier chunk payload. Malformed headers —
// wrong magic or version, size fields disagreeing with the actual
// payload length, an index outside the declared count — are errors;
// nothing is allocated from declared sizes.
func DecodeCarrier(payload []byte) (Carrier, error) {
	if len(payload) < carrierHeaderSize {
		return Carrier{}, fmt.Errorf("erasure: carrier payload is %d bytes, header needs %d", len(payload), carrierHeaderSize)
	}
	if payload[0] != 'E' || payload[1] != 'C' {
		return Carrier{}, fmt.Errorf("erasure: bad carrier magic %#x%#x", payload[0], payload[1])
	}
	if payload[2] != carrierVersion {
		return Carrier{}, fmt.Errorf("erasure: carrier version %d, want %d", payload[2], carrierVersion)
	}
	c := Carrier{
		FragIndex:     int(payload[3]),
		GroupFirstSeq: binary.BigEndian.Uint32(payload[4:]),
		Index:         int(binary.BigEndian.Uint16(payload[8:])),
		Count:         int(binary.BigEndian.Uint16(payload[10:])),
	}
	sliceLen := int(binary.BigEndian.Uint16(payload[12:]))
	if c.Count < 1 || c.Index >= c.Count {
		return Carrier{}, fmt.Errorf("erasure: carrier index %d outside count %d", c.Index, c.Count)
	}
	if sliceLen == 0 || sliceLen != len(payload)-carrierHeaderSize {
		return Carrier{}, fmt.Errorf("erasure: carrier declares %d slice bytes, payload carries %d",
			sliceLen, len(payload)-carrierHeaderSize)
	}
	c.Slice = payload[carrierHeaderSize:]
	return c, nil
}

// CollectStats counts what CollectFragments saw and dropped.
type CollectStats struct {
	Carriers     int // parity carrier chunks examined
	BadCarriers  int // malformed or inconsistent carrier payloads
	Fragments    int // fragments successfully reassembled and parsed
	BadFragments int // complete carrier sets whose blob failed validation
	Incomplete   int // fragments missing at least one carrier
}

// fragAsm accumulates one fragment's carriers.
type fragAsm struct {
	count  int
	slices [][]byte
	have   int
	bad    bool
}

// CollectFragments reassembles parity fragments from a pile of chunks
// (non-parity chunks are ignored). Carriers with malformed headers,
// inconsistent counts, or duplicate indices are dropped (first copy
// wins, so pass chunks in a deterministic order); fragments whose blob
// fails ParseFragment — bad CRC included — are dropped whole. The
// returned fragments are grouped by dispersal group and sorted by
// fragment index.
func CollectFragments(chunks []*flash.Chunk) (map[GroupKey][]*Fragment, CollectStats) {
	var stats CollectStats
	type asmKey struct {
		key  GroupKey
		frag int
	}
	asm := make(map[asmKey]*fragAsm)
	order := make([]asmKey, 0)
	for _, c := range chunks {
		if c == nil || !IsParity(c) {
			continue
		}
		stats.Carriers++
		car, err := DecodeCarrier(c.Data)
		if err != nil {
			stats.BadCarriers++
			continue
		}
		k := asmKey{GroupKey{BaseFile(c.File), c.Origin, car.GroupFirstSeq}, car.FragIndex}
		a := asm[k]
		if a == nil {
			a = &fragAsm{count: car.Count, slices: make([][]byte, car.Count)}
			asm[k] = a
			order = append(order, k)
		}
		if a.bad {
			continue
		}
		if car.Count != a.count {
			// Carriers of one fragment disagree on the carrier count:
			// something corrupted the set; drop the fragment.
			stats.BadCarriers++
			a.bad = true
			continue
		}
		if a.slices[car.Index] != nil {
			continue // duplicate carrier (ACK-loss retransmission); first wins
		}
		a.slices[car.Index] = car.Slice
		a.have++
	}
	out := make(map[GroupKey][]*Fragment)
	for _, k := range order {
		a := asm[k]
		if a.bad {
			continue
		}
		if a.have != a.count {
			stats.Incomplete++
			continue
		}
		blob := make([]byte, 0, a.count*CarrierCapacity)
		for _, s := range a.slices {
			blob = append(blob, s...)
		}
		f, err := ParseFragment(blob)
		if err != nil {
			stats.BadFragments++
			continue
		}
		if f.Group.Key() != k.key || f.Index != k.frag {
			// Blob contents disagree with the carrier envelope.
			stats.BadFragments++
			continue
		}
		stats.Fragments++
		out[k.key] = append(out[k.key], f)
	}
	// Carrier order already yields ascending insertion per group; sort by
	// index for a deterministic decode matrix regardless.
	for _, frags := range out {
		for i := 1; i < len(frags); i++ {
			for j := i; j > 0 && frags[j].Index < frags[j-1].Index; j-- {
				frags[j], frags[j-1] = frags[j-1], frags[j]
			}
		}
	}
	return out, stats
}

// ReconstructGroup recovers a group's missing data chunks from the
// chunks present (keyed by Seq) and any parity fragments. Stripes whose
// data is complete cost nothing; a stripe decodes when its live shares —
// present data cells plus fragment records — reach K. Recovered chunks
// are drawn from the chunk pool and validated against the group before
// being returned; stripes short of K shares are skipped (their missing
// seqs are simply not in the result).
func ReconstructGroup(g Group, present map[uint32]*flash.Chunk, frags []*Fragment) ([]*flash.Chunk, error) {
	if g.Count == 0 {
		return nil, nil
	}
	code, err := Cached(g.N, g.K)
	if err != nil {
		return nil, err
	}
	var recovered []*flash.Chunk
	stripes := g.Stripes()
	for s := 0; s < stripes; s++ {
		var missing []int
		for col := 0; col < g.K; col++ {
			i := uint32(s*g.K + col)
			if i >= g.Count {
				break
			}
			if present[g.FirstSeq+i] == nil {
				missing = append(missing, col)
			}
		}
		if len(missing) == 0 {
			continue
		}
		shards := make([][]byte, g.N)
		for col := 0; col < g.K; col++ {
			i := uint32(s*g.K + col)
			if i >= g.Count {
				shards[col] = zeroBlock[:] // structural zero cell
				continue
			}
			if c := present[g.FirstSeq+i]; c != nil {
				img, err := c.Marshal()
				if err != nil {
					return recovered, err
				}
				shards[col] = img
			}
		}
		for _, f := range frags {
			if f.Group == g && s < len(f.Stripes) {
				shards[f.Index] = f.Stripes[s]
			}
		}
		liveShares := 0
		for _, sh := range shards {
			if sh != nil {
				liveShares++
			}
		}
		if liveShares < g.K {
			continue // stripe unrecoverable with what we have
		}
		if err := code.ReconstructData(shards); err != nil {
			return recovered, err
		}
		for _, col := range missing {
			seq := g.FirstSeq + uint32(s*g.K+col)
			c, err := flash.UnmarshalChunk(shards[col])
			if err != nil {
				return recovered, fmt.Errorf("erasure: stripe %d column %d decoded to a corrupt chunk: %w", s, col, err)
			}
			if c.File != g.File || c.Origin != g.Origin || c.Seq != seq {
				flash.FreeChunk(c)
				return recovered, fmt.Errorf("erasure: stripe %d column %d decoded to chunk (file %#x origin %d seq %d), want (file %#x origin %d seq %d)",
					s, col, c.File, c.Origin, c.Seq, g.File, g.Origin, seq)
			}
			recovered = append(recovered, c)
		}
	}
	return recovered, nil
}
