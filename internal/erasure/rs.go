package erasure

import (
	"fmt"
	"sync"
)

// Code is a systematic (n,k) Reed-Solomon erasure code over GF(2^8):
// k data shards plus n−k parity shards, and any k of the n shards
// reconstruct the data exactly. Systematic means the first k shards ARE
// the data — encoding leaves them untouched, which is what lets the
// dispersal mode ship original flash chunks as data fragments.
type Code struct {
	n, k int
	// parity holds the bottom n−k rows of the systematic generator
	// matrix (the top k rows are the identity by construction).
	parity [][]byte
}

// MaxShards bounds n: GF(2^8) Vandermonde points must be distinct field
// elements.
const MaxShards = 255

// New builds an (n,k) code. The generator is an n×k Vandermonde matrix
// (rows [x⁰ … x^(k−1)] for distinct points x) right-multiplied by the
// inverse of its own top k×k block, which makes the top k rows the
// identity while preserving the Vandermonde property that every k-row
// subset is invertible.
func New(n, k int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: k=%d, need at least 1 data shard", k)
	}
	if n <= k {
		return nil, fmt.Errorf("erasure: n=%d must exceed k=%d", n, k)
	}
	if n > MaxShards {
		return nil, fmt.Errorf("erasure: n=%d exceeds GF(2^8) limit %d", n, MaxShards)
	}
	v := make([][]byte, n)
	for i := 0; i < n; i++ {
		row := make([]byte, k)
		e := byte(1)
		for j := 0; j < k; j++ {
			row[j] = e
			e = gfMul(e, byte(i))
		}
		v[i] = row
	}
	topInv, ok := invertMatrix(v[:k])
	if !ok {
		// Distinct Vandermonde points guarantee invertibility.
		panic("erasure: Vandermonde top block singular")
	}
	gen := matMul(v, topInv)
	return &Code{n: n, k: k, parity: gen[k:]}, nil
}

// N returns the total shard count.
func (c *Code) N() int { return c.n }

// K returns the data shard count.
func (c *Code) K() int { return c.k }

// EncodeParity computes the n−k parity shards for k equal-length data
// shards. The data shards are not modified (the code is systematic).
func (c *Code) EncodeParity(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: %d data shards, code wants k=%d", len(data), c.k)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("erasure: shard %d is %d bytes, shard 0 is %d", i, len(d), size)
		}
	}
	out := make([][]byte, c.n-c.k)
	for r := range out {
		out[r] = make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(c.parity[r][j], data[j], out[r])
		}
	}
	return out, nil
}

// genRow returns row i of the systematic generator matrix.
func (c *Code) genRow(i int) []byte {
	if i < c.k {
		row := make([]byte, c.k)
		row[i] = 1
		return row
	}
	return c.parity[i-c.k]
}

// ReconstructData fills the nil data shards of shards (length n: indices
// [0,k) data, [k,n) parity) from any k present shards. Present shards
// must share one length; missing parity shards are left nil (the
// dispersal decoder only needs the data back). It returns an error when
// fewer than k shards are present.
func (c *Code) ReconstructData(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("erasure: %d shards passed, code has n=%d", len(shards), c.n)
	}
	missing := 0
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	// Pick k present shards, data shards first (their generator rows are
	// identity rows, keeping the matrix nearly diagonal).
	pick := make([]int, 0, c.k)
	for i := 0; i < c.n && len(pick) < c.k; i++ {
		if shards[i] != nil {
			pick = append(pick, i)
		}
	}
	if len(pick) < c.k {
		return fmt.Errorf("erasure: only %d of %d shards present, need k=%d", len(pick), c.n, c.k)
	}
	size := len(shards[pick[0]])
	for _, i := range pick {
		if len(shards[i]) != size {
			return fmt.Errorf("erasure: shard %d is %d bytes, shard %d is %d", i, len(shards[i]), pick[0], size)
		}
	}
	sub := make([][]byte, c.k)
	for r, i := range pick {
		sub[r] = c.genRow(i)
	}
	inv, ok := invertMatrix(sub)
	if !ok {
		// Cannot happen for a Vandermonde-derived generator.
		panic("erasure: singular decode submatrix")
	}
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		for r, i := range pick {
			mulAddSlice(inv[j][r], shards[i], out)
		}
		shards[j] = out
	}
	return nil
}

// codeCache interns Codes by geometry: the dispersal path builds one per
// (n,k) per process, and the decode path asks once per group.
var codeCache struct {
	mu sync.Mutex
	m  map[[2]int]*Code
}

// Cached returns the interned (n,k) code, building it on first use.
func Cached(n, k int) (*Code, error) {
	codeCache.mu.Lock()
	defer codeCache.mu.Unlock()
	if c, ok := codeCache.m[[2]int{n, k}]; ok {
		return c, nil
	}
	c, err := New(n, k)
	if err != nil {
		return nil, err
	}
	if codeCache.m == nil {
		codeCache.m = make(map[[2]int]*Code)
	}
	codeCache.m[[2]int{n, k}] = c
	return c, nil
}
