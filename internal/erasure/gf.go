// Package erasure implements the Reed-Solomon dispersal mode named in
// the ROADMAP: a systematic (n,k) code over GF(2^8) applied to
// flash.Chunk block images, so a recorder can scatter n fragments of a
// recording across its neighborhood and any k of them reconstruct the
// original chunks verbatim — metadata included. The construction follows
// the classic Vandermonde derivation (the same family of codes the
// zipa-testbed pipeline wraps); the fragment wire format that rides the
// bulk-transfer plane is defined in fragment.go.
package erasure

// GF(2^8) arithmetic with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field conventionally used by
// Reed-Solomon codes. Multiplication goes through log/exp tables built
// once at init; the exp table is doubled so products of two logs index it
// without a modulo.

var (
	gfExp [510]byte
	gfLog [256]int16
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = int16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])-int(gfLog[b])+255]
}

// mulAddSlice folds c·src into dst (dst[i] ^= c*src[i]): the inner loop
// of both encoding and reconstruction. Slices must be equal length.
func mulAddSlice(c byte, src, dst []byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// identityMatrix returns the k×k identity.
func identityMatrix(k int) [][]byte {
	m := make([][]byte, k)
	for i := range m {
		m[i] = make([]byte, k)
		m[i][i] = 1
	}
	return m
}

// invertMatrix returns the inverse of the square row-major matrix m (not
// modified), or false if m is singular. Plain Gauss-Jordan over GF(2^8);
// the matrices here are at most n×n for n ≤ 255 and tiny in practice.
func invertMatrix(m [][]byte) ([][]byte, bool) {
	k := len(m)
	work := make([][]byte, k)
	for i, row := range m {
		if len(row) != k {
			panic("erasure: invertMatrix on non-square matrix")
		}
		work[i] = append([]byte(nil), row...)
	}
	inv := identityMatrix(k)
	for col := 0; col < k; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < k; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		work[col], work[pivot] = work[pivot], work[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Scale the pivot row to 1.
		if p := work[col][col]; p != 1 {
			for j := 0; j < k; j++ {
				work[col][j] = gfDiv(work[col][j], p)
				inv[col][j] = gfDiv(inv[col][j], p)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < k; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := 0; j < k; j++ {
				work[r][j] ^= gfMul(f, work[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, true
}

// matMul returns a·b for row-major matrices (len(a[0]) must equal
// len(b)).
func matMul(a, b [][]byte) [][]byte {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		row := make([]byte, cols)
		for i := 0; i < inner; i++ {
			if f := a[r][i]; f != 0 {
				for j := 0; j < cols; j++ {
					row[j] ^= gfMul(f, b[i][j])
				}
			}
		}
		out[r] = row
	}
	return out
}
