package erasure

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// makeChunks builds count pooled chunks for one group with the given
// payload sizes (sizes[i] < 0 means a random size).
func makeChunks(t testing.TB, g Group, sizes []int, rng *rand.Rand) []*flash.Chunk {
	t.Helper()
	chunks := make([]*flash.Chunk, g.Count)
	span := (g.End - g.Start) / sim.Time(g.Count)
	for i := range chunks {
		c := flash.NewChunk()
		c.File = g.File
		c.Origin = g.Origin
		c.Seq = g.FirstSeq + uint32(i)
		c.Start = g.Start + sim.Time(i)*span
		c.End = c.Start + span
		size := sizes[i]
		if size < 0 {
			size = rng.Intn(flash.PayloadSize + 1)
		}
		c.Data = c.Data[:0]
		for j := 0; j < size; j++ {
			c.Data = append(c.Data, byte(rng.Intn(256)))
		}
		chunks[i] = c
	}
	return chunks
}

// encodeGroup runs the full dispersal encode pipeline: parity blobs,
// carrier packetization, carrier collection, fragment parse.
func encodeGroup(t testing.TB, g Group, chunks []*flash.Chunk) []*Fragment {
	t.Helper()
	code, err := Cached(g.N, g.K)
	if err != nil {
		t.Fatalf("Cached(%d,%d): %v", g.N, g.K, err)
	}
	blobs, err := EncodeParity(code, g, chunks)
	if err != nil {
		t.Fatalf("EncodeParity: %v", err)
	}
	var carriers []*flash.Chunk
	for j, blob := range blobs {
		carriers = append(carriers, Carriers(g, g.K+j, blob)...)
	}
	seen := make(map[uint32]bool)
	for _, c := range carriers {
		if !IsParity(c) || BaseFile(c.File) != g.File {
			t.Fatalf("carrier file %#x does not mark parity of %#x", c.File, g.File)
		}
		if seen[c.Seq] {
			t.Fatalf("carrier seq %d repeats within the group", c.Seq)
		}
		seen[c.Seq] = true
	}
	byGroup, stats := CollectFragments(carriers)
	if stats.BadCarriers != 0 || stats.BadFragments != 0 || stats.Incomplete != 0 {
		t.Fatalf("clean carriers produced stats %+v", stats)
	}
	frags := byGroup[g.Key()]
	if len(frags) != g.N-g.K {
		t.Fatalf("collected %d fragments, want %d", len(frags), g.N-g.K)
	}
	for _, f := range frags {
		if f.Group != g {
			t.Fatalf("fragment %d carries group %+v, want %+v", f.Index, f.Group, g)
		}
	}
	return frags
}

// checkRecovery drops every shard outside keep (data column indices and
// fragment indices), reconstructs, and verifies the recovered chunks
// match the originals byte-for-byte (block image compare, so metadata
// equality is included).
func checkRecovery(t testing.TB, g Group, chunks []*flash.Chunk, frags []*Fragment, keep map[int]bool) {
	t.Helper()
	present := make(map[uint32]*flash.Chunk)
	for i, c := range chunks {
		if keep[i%g.K] {
			present[g.FirstSeq+uint32(i)] = c
		}
	}
	var live []*Fragment
	for _, f := range frags {
		if keep[f.Index] {
			live = append(live, f)
		}
	}
	recovered, err := ReconstructGroup(g, present, live)
	if err != nil {
		t.Fatalf("ReconstructGroup(keep=%v): %v", keep, err)
	}
	defer flash.FreeChunks(recovered)
	bySeq := make(map[uint32]*flash.Chunk, len(recovered))
	for _, c := range recovered {
		bySeq[c.Seq] = c
	}
	for i, want := range chunks {
		if present[want.Seq] != nil {
			continue
		}
		got := bySeq[want.Seq]
		if got == nil {
			t.Fatalf("chunk %d (seq %d) not recovered with keep=%v", i, want.Seq, keep)
		}
		wantImg, err1 := want.Marshal()
		gotImg, err2 := got.Marshal()
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if !bytes.Equal(wantImg, gotImg) {
			t.Fatalf("chunk seq %d round-trips differently (keep=%v)", want.Seq, keep)
		}
	}
}

// TestRoundTripQuick is the dispersal round-trip property: encode a
// random group, drop any n−k fragments (keeping an arbitrary k-subset of
// data columns and parity fragments), and the decode must return the
// original chunks exactly. Geometry, chunk count, and payload sizes are
// all drawn per trial.
func TestRoundTripQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)   // 2..10
		k := 1 + rng.Intn(n-1) // 1..n-1
		count := uint32(1 + rng.Intn(3*k+2))
		g := Group{
			File:     flash.FileID(1 + rng.Intn(1<<20)),
			Origin:   int32(rng.Intn(500)),
			FirstSeq: uint32(rng.Intn(1 << 16)),
			Count:    count,
			Start:    sim.Time(rng.Int63n(int64(sim.Time(1) * 1e12))),
			N:        n,
			K:        k,
		}
		g.End = g.Start + sim.Time(int64(count)*1e9)
		sizes := make([]int, count)
		for i := range sizes {
			sizes[i] = -1
		}
		chunks := makeChunks(t, g, sizes, rng)
		defer flash.FreeChunks(chunks)
		frags := encodeGroup(t, g, chunks)
		// Keep a random k-subset of the n shard indices.
		perm := rng.Perm(n)
		keep := make(map[int]bool, k)
		for _, i := range perm[:k] {
			keep[i] = true
		}
		checkRecovery(t, g, chunks, frags, keep)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripSweep pins the corner geometries and payload sizes the
// quick test may miss: (n,k) sweep including the shipped default (6,4),
// zero-length payloads, and max-chunk payloads, each dropping every
// possible single shard and the full worst case of n−k shards.
func TestRoundTripSweep(t *testing.T) {
	geoms := [][2]int{{2, 1}, {3, 2}, {4, 2}, {6, 4}, {9, 5}, {16, 12}}
	for _, geom := range geoms {
		n, k := geom[0], geom[1]
		for _, size := range []int{0, 1, flash.PayloadSize} {
			t.Run(fmt.Sprintf("n%d_k%d_size%d", n, k, size), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n*1000 + k*10 + size)))
				count := uint32(2*k + 1) // odd tail stripe on purpose
				g := Group{
					File: 7, Origin: 3, FirstSeq: 100, Count: count,
					Start: 5e9, End: 9e9, N: n, K: k,
				}
				sizes := make([]int, count)
				for i := range sizes {
					sizes[i] = size
				}
				chunks := makeChunks(t, g, sizes, rng)
				defer flash.FreeChunks(chunks)
				frags := encodeGroup(t, g, chunks)
				// Drop each single shard in turn.
				for drop := 0; drop < n; drop++ {
					keep := make(map[int]bool)
					for i := 0; i < n; i++ {
						if i != drop {
							keep[i] = true
						}
					}
					checkRecovery(t, g, chunks, frags, keep)
				}
				// Worst case: only the last k shards survive.
				keep := make(map[int]bool)
				for i := n - k; i < n; i++ {
					keep[i] = true
				}
				checkRecovery(t, g, chunks, frags, keep)
			})
		}
	}
}

// TestSystematic asserts the code really is systematic: encoding never
// touches the data chunks, so the k data fragments ARE the originals.
func TestSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := Group{File: 1, Origin: 2, FirstSeq: 0, Count: 8, Start: 0, End: 8e9, N: 6, K: 4}
	sizes := make([]int, g.Count)
	for i := range sizes {
		sizes[i] = -1
	}
	chunks := makeChunks(t, g, sizes, rng)
	defer flash.FreeChunks(chunks)
	before := make([][]byte, len(chunks))
	for i, c := range chunks {
		img, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		before[i] = img
	}
	encodeGroup(t, g, chunks)
	for i, c := range chunks {
		img, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], img) {
			t.Fatalf("encoding modified data chunk %d", i)
		}
	}
}

// TestCorruptedFragment flips parity bytes and checks both halves of the
// contract: the CRC rejects the corrupted fragment, and decode still
// succeeds from k clean shards that exclude it.
func TestCorruptedFragment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Group{File: 9, Origin: 4, FirstSeq: 50, Count: 9, Start: 1e9, End: 10e9, N: 6, K: 4}
	sizes := make([]int, g.Count)
	for i := range sizes {
		sizes[i] = -1
	}
	chunks := makeChunks(t, g, sizes, rng)
	defer flash.FreeChunks(chunks)
	code, err := Cached(g.N, g.K)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := EncodeParity(code, g, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt fragment k (index 4) in its parity area.
	bad := append([]byte(nil), blobs[0]...)
	bad[fragHeaderSize+13] ^= 0xa5
	if _, err := ParseFragment(bad); err == nil {
		t.Fatal("ParseFragment accepted a fragment with corrupted parity bytes")
	}
	// A header flip must be rejected too (structural validation).
	badHdr := append([]byte(nil), blobs[0]...)
	badHdr[18] ^= 0xff // count field
	if _, err := ParseFragment(badHdr); err == nil {
		t.Fatal("ParseFragment accepted a fragment with a corrupted count")
	}
	// The corrupted fragment also dies inside CollectFragments.
	carriers := Carriers(g, g.K, bad)
	for j := 1; j < len(blobs); j++ {
		carriers = append(carriers, Carriers(g, g.K+j, blobs[j])...)
	}
	byGroup, stats := CollectFragments(carriers)
	if stats.BadFragments != 1 {
		t.Fatalf("stats %+v, want exactly one bad fragment", stats)
	}
	frags := byGroup[g.Key()]
	if len(frags) != g.N-g.K-1 {
		t.Fatalf("collected %d fragments, want %d clean ones", len(frags), g.N-g.K-1)
	}
	// Decode still succeeds with k clean shards avoiding the bad index:
	// keep data columns 0,1 and parity fragments 5 (clean) + col 2.
	keep := map[int]bool{0: true, 1: true, 2: true, 5: true}
	checkRecovery(t, g, chunks, frags, keep)
}

// TestReconstructShortShards verifies the failure mode: with fewer than
// k live shards for a stripe, the stripe's chunks stay missing and no
// error is invented.
func TestReconstructShortShards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Group{File: 2, Origin: 1, FirstSeq: 0, Count: 4, Start: 0, End: 4e9, N: 6, K: 4}
	sizes := []int{-1, -1, -1, -1}
	chunks := makeChunks(t, g, sizes, rng)
	defer flash.FreeChunks(chunks)
	frags := encodeGroup(t, g, chunks)
	// Only 3 shards survive (< k=4): columns 0,1 + one parity fragment.
	present := map[uint32]*flash.Chunk{0: chunks[0], 1: chunks[1]}
	recovered, err := ReconstructGroup(g, present, frags[:1])
	if err != nil {
		t.Fatalf("ReconstructGroup: %v", err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %d chunks from fewer than k shards", len(recovered))
	}
}

// TestCarrierRoundTrip pins the carrier codec against hand-checked
// fields, including the duplicate-carrier (retransmission) path.
func TestCarrierRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Group{File: 3, Origin: 8, FirstSeq: 77, Count: 6, Start: 2e9, End: 8e9, N: 6, K: 4}
	sizes := make([]int, g.Count)
	for i := range sizes {
		sizes[i] = flash.PayloadSize
	}
	chunks := makeChunks(t, g, sizes, rng)
	defer flash.FreeChunks(chunks)
	code, _ := Cached(g.N, g.K)
	blobs, err := EncodeParity(code, g, chunks)
	if err != nil {
		t.Fatal(err)
	}
	carriers := Carriers(g, g.K, blobs[0])
	var rebuilt []byte
	for i, c := range carriers {
		car, err := DecodeCarrier(c.Data)
		if err != nil {
			t.Fatalf("carrier %d: %v", i, err)
		}
		if car.FragIndex != g.K || car.GroupFirstSeq != g.FirstSeq ||
			car.Index != i || car.Count != len(carriers) {
			t.Fatalf("carrier %d decoded as %+v", i, car)
		}
		if c.Start != g.Start || c.End != g.End {
			t.Fatalf("carrier %d spans [%v,%v], want group span", i, c.Start, c.End)
		}
		rebuilt = append(rebuilt, car.Slice...)
	}
	if !bytes.Equal(rebuilt, blobs[0]) {
		t.Fatal("carrier slices do not reassemble the blob")
	}
	// Duplicate carriers (bulk-plane retransmissions) must be idempotent.
	dup := append(append([]*flash.Chunk(nil), carriers...), carriers...)
	for j := 1; j < len(blobs); j++ {
		dup = append(dup, Carriers(g, g.K+j, blobs[j])...)
	}
	byGroup, stats := CollectFragments(dup)
	if stats.BadCarriers != 0 || stats.BadFragments != 0 || stats.Incomplete != 0 {
		t.Fatalf("duplicate carriers produced stats %+v", stats)
	}
	if got := len(byGroup[g.Key()]); got != g.N-g.K {
		t.Fatalf("collected %d fragments with duplicates present, want %d", got, g.N-g.K)
	}
	// A missing carrier leaves the fragment incomplete, not corrupt.
	byGroup, stats = CollectFragments(carriers[1:])
	if stats.Incomplete != 1 || len(byGroup[g.Key()]) != 0 {
		t.Fatalf("truncated carrier set: stats %+v, groups %d", stats, len(byGroup))
	}
}

// TestCodeQuick is the shard-level property: encode random equal-length
// shards, null out any n−k of them, reconstruct, compare data bytes.
func TestCodeQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		k := 1 + rng.Intn(n-1)
		size := rng.Intn(300) // includes zero-length shards
		code, err := New(n, k)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", n, k, err)
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		parity, err := code.EncodeParity(data)
		if err != nil {
			t.Fatalf("EncodeParity: %v", err)
		}
		shards := make([][]byte, n)
		for i := 0; i < k; i++ {
			shards[i] = data[i]
		}
		copy(shards[k:], parity)
		for _, i := range rng.Perm(n)[:n-k] {
			shards[i] = nil
		}
		if err := code.ReconstructData(shards); err != nil {
			t.Fatalf("ReconstructData: %v", err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNewRejectsBadGeometry pins the constructor's validation.
func TestNewRejectsBadGeometry(t *testing.T) {
	for _, geom := range [][2]int{{1, 1}, {4, 0}, {3, 3}, {2, 5}, {256, 4}} {
		if _, err := New(geom[0], geom[1]); err == nil {
			t.Errorf("New(%d,%d) accepted invalid geometry", geom[0], geom[1])
		}
	}
	if _, err := New(MaxShards, MaxShards-1); err != nil {
		t.Errorf("New at the shard limit: %v", err)
	}
}

// TestParseFragmentLengthGate pins the over-allocation guard: a header
// declaring a huge count must be rejected by comparing the derived blob
// length against the actual one, without allocating stripe slices.
func TestParseFragmentLengthGate(t *testing.T) {
	blob := make([]byte, fragHeaderSize+flash.BlockSize)
	writeFragHeader(blob, Group{File: 1, Origin: 1, FirstSeq: 0, Count: 1, N: 3, K: 2}, 2)
	if _, err := ParseFragment(blob); err != nil {
		t.Fatalf("valid one-stripe fragment rejected: %v", err)
	}
	binary.BigEndian.PutUint32(blob[18:], 1<<31) // count → 2 billion
	if _, err := ParseFragment(blob); err == nil {
		t.Fatal("fragment declaring 2^31 chunks accepted")
	}
}
