package erasure

import (
	"encoding/binary"
	"testing"

	"enviromic/internal/flash"
)

// fuzzSeedBlob builds a small valid fragment blob for the corpus.
func fuzzSeedBlob() []byte {
	g := Group{File: 7, Origin: 3, FirstSeq: 10, Count: 3, Start: 1e9, End: 4e9, N: 4, K: 2}
	blob := make([]byte, fragHeaderSize+2*flash.BlockSize)
	for i := range blob[fragHeaderSize:] {
		blob[fragHeaderSize+i] = byte(i)
	}
	writeFragHeader(blob, g, 3)
	return blob
}

// FuzzFragmentDecode asserts the fragment wire codec's contract under
// arbitrary input (mirroring chaos.FuzzParseScenario): neither
// ParseFragment nor DecodeCarrier may panic or allocate from declared
// sizes the actual input length does not back, and anything accepted
// must be internally consistent.
func FuzzFragmentDecode(f *testing.F) {
	blob := fuzzSeedBlob()
	f.Add(blob)
	f.Add(blob[:fragHeaderSize])
	f.Add(blob[:7])
	truncCRC := append([]byte(nil), blob...)
	truncCRC[fragHeaderSize] ^= 0xff
	f.Add(truncCRC)
	hugeCount := append([]byte(nil), blob...)
	binary.BigEndian.PutUint32(hugeCount[18:], 0xffffffff)
	f.Add(hugeCount)
	badGeom := append([]byte(nil), blob...)
	badGeom[3], badGeom[4] = 2, 5 // n < k
	f.Add(badGeom)
	g := Group{File: 7, Origin: 3, FirstSeq: 10, Count: 3, Start: 1e9, End: 4e9, N: 4, K: 2}
	for _, c := range Carriers(g, 2, blob) {
		f.Add(append([]byte(nil), c.Data...))
		flash.FreeChunk(c)
	}
	f.Add([]byte("EC"))
	f.Add([]byte("EF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if frag, err := ParseFragment(data); err == nil {
			if frag == nil {
				t.Fatal("nil fragment with nil error")
			}
			gg := frag.Group
			if gg.K < 1 || gg.N <= gg.K || frag.Index < gg.K || frag.Index >= gg.N {
				t.Fatalf("accepted fragment with invalid geometry %+v index %d", gg, frag.Index)
			}
			if gg.Count == 0 || gg.File&ParityFileBit != 0 {
				t.Fatalf("accepted fragment with invalid group %+v", gg)
			}
			if len(frag.Stripes) != gg.Stripes() {
				t.Fatalf("fragment has %d stripes, group needs %d", len(frag.Stripes), gg.Stripes())
			}
			for _, s := range frag.Stripes {
				if len(s) != flash.BlockSize {
					t.Fatalf("stripe record of %d bytes", len(s))
				}
			}
		}
		if car, err := DecodeCarrier(data); err == nil {
			if car.Count < 1 || car.Index < 0 || car.Index >= car.Count {
				t.Fatalf("accepted carrier with index %d of %d", car.Index, car.Count)
			}
			if len(car.Slice) == 0 || len(car.Slice) != len(data)-carrierHeaderSize {
				t.Fatalf("accepted carrier whose slice (%d bytes) mismatches the payload", len(car.Slice))
			}
		}
	})
}
