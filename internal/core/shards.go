package core

import (
	"math"
	"sort"

	"enviromic/internal/geometry"
	"enviromic/internal/metrics"
	"enviromic/internal/sim"
)

// assignShards partitions node positions into contiguous vertical stripes
// of cell columns, balanced by node count. Columns are one CommRange
// wide — the same quantization the radio's spatial index uses — so most
// radio neighborhoods land within one shard and cross-shard deliveries
// (the only synchronization traffic) stay a minority. Correctness does
// not depend on the assignment at all: any partition is sound because
// every delivery, same-shard or not, is ordered through the deposit
// lanes; the stripes are purely a locality/balance heuristic.
func assignShards(positions []geometry.Point, commRange float64, nShards int) []int {
	colOf := make([]int, len(positions))
	counts := make(map[int]int, 64)
	for i, p := range positions {
		c := int(math.Floor(p.X / commRange))
		colOf[i] = c
		counts[c]++
	}
	cols := make([]int, 0, len(counts))
	for c := range counts {
		cols = append(cols, c)
	}
	sort.Ints(cols)

	// Greedy balanced partition of the ordered columns: close the current
	// stripe once it holds its fair share of the remaining nodes.
	shardOfCol := make(map[int]int, len(cols))
	sh, acc, used := 0, 0, 0
	for _, c := range cols {
		if sh < nShards-1 && acc > 0 {
			remaining := len(positions) - used
			target := (remaining + acc + (nShards - sh - 1)) / (nShards - sh)
			if acc >= target {
				sh++
				acc = 0
			}
		}
		shardOfCol[c] = sh
		acc += counts[c]
		used += counts[c]
	}

	out := make([]int, len(positions))
	for i, c := range colOf {
		out[i] = shardOfCol[c]
	}
	return out
}

// staged is one collector entry produced on a shard goroutine, held back
// until the next window barrier. The collector's append-only lists are
// not safe for concurrent writers, and even with locking the arrival
// order would depend on goroutine scheduling; staging restores a
// deterministic, shard-count-invariant order.
type staged struct {
	kind stageKind
	at   sim.Time
	node int
	// aux breaks (at, node, kind) ties deterministically: the file ID
	// for recordings, the destination for migrations.
	aux int64
	rec metrics.Recording
	mig metrics.Migration
}

type stageKind uint8

const (
	stageRecording stageKind = iota
	stageMigration
	stageOverflow
)

// stageBuf is one shard's staging lane, padded onto its own cache line:
// shard goroutines append concurrently during a window.
type stageBuf struct {
	entries []staged
	_       [64]byte
}

func (n *Network) stageFor(node int) *stageBuf { return &n.stage[n.shardOf[node]] }

func (n *Network) addRecording(rec metrics.Recording) {
	if n.stage == nil {
		n.Collector.AddRecording(rec)
		return
	}
	b := n.stageFor(rec.Node)
	b.entries = append(b.entries, staged{
		kind: stageRecording, at: rec.End, node: rec.Node, aux: int64(rec.File), rec: rec,
	})
}

func (n *Network) addMigration(mig metrics.Migration) {
	if n.stage == nil {
		n.Collector.AddMigration(mig)
		return
	}
	b := n.stageFor(mig.From)
	b.entries = append(b.entries, staged{
		kind: stageMigration, at: mig.At, node: mig.From, aux: int64(mig.To), mig: mig,
	})
}

func (n *Network) addOverflow(node int, at sim.Time) {
	if n.stage == nil {
		n.Collector.AddOverflow(at)
		return
	}
	b := n.stageFor(node)
	b.entries = append(b.entries, staged{kind: stageOverflow, at: at, node: node})
}

// flushStage publishes staged collector entries in (at, node, kind, aux)
// order — a key with no shard identity in it, so the collector sees the
// same sequence for every shard count. Runs at window barriers with all
// shards parked. Per-node entry order is preserved by the stable sort
// (a node's entries all sit in one shard buffer, already in its own
// emission order).
func (n *Network) flushStage() {
	total := 0
	for i := range n.stage {
		total += len(n.stage[i].entries)
	}
	if total == 0 {
		return
	}
	buf := n.stageMerge[:0]
	for i := range n.stage {
		buf = append(buf, n.stage[i].entries...)
		n.stage[i].entries = n.stage[i].entries[:0]
	}
	sort.SliceStable(buf, func(i, j int) bool {
		a, b := &buf[i], &buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.aux < b.aux
	})
	for i := range buf {
		switch e := &buf[i]; e.kind {
		case stageRecording:
			n.Collector.AddRecording(e.rec)
		case stageMigration:
			n.Collector.AddMigration(e.mig)
		case stageOverflow:
			n.Collector.AddOverflow(e.at)
		}
	}
	n.stageMerge = buf[:0]
}
