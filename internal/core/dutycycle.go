package core

import (
	"fmt"
	"time"

	"enviromic/internal/sim"
)

// dutyCycler puts a node to sleep periodically (§II-B discusses
// duty-cycling: while asleep neither flash nor energy is consumed, so
// both TTLs stretch by the same factor and the bottleneck decision is
// unaffected). Sleep phases are staggered across nodes so some neighbors
// are always awake.
//
// Sleeping means: the radio is off and acoustic polling is suspended (the
// group manager's sensor reports silence). A node that is mid-recording
// postpones its sleep until the task completes — powering down the ADC
// mid-task would corrupt the chunk.
type dutyCycler struct {
	net    *Network
	node   *Node
	period time.Duration
	awake  time.Duration

	sleeping bool
	ticker   *sim.Ticker
}

// newDutyCycler configures a node to be awake for awakeFraction of each
// period, with a per-node phase offset.
func newDutyCycler(net *Network, node *Node, period time.Duration, awakeFraction float64) *dutyCycler {
	if awakeFraction <= 0 || awakeFraction > 1 {
		panic(fmt.Sprintf("core: duty cycle fraction %v outside (0,1]", awakeFraction))
	}
	if period <= 0 {
		panic("core: non-positive duty period")
	}
	return &dutyCycler{
		net:    net,
		node:   node,
		period: period,
		awake:  time.Duration(float64(period) * awakeFraction),
	}
}

func (d *dutyCycler) start() {
	if d.awake >= d.period {
		return // always on
	}
	// Stagger: node i's cycle starts i/n of a period later.
	phase := time.Duration(int64(d.period) * int64(d.node.ID%8) / 8)
	d.node.Mote.Sched.After(d.awake+phase, fmt.Sprintf("core.sleep.%d", d.node.ID), d.trySleep)
}

// Sleeping reports whether the node is currently in its sleep phase.
func (d *dutyCycler) Sleeping() bool { return d.sleeping }

func (d *dutyCycler) trySleep() {
	if !d.node.Mote.Alive() {
		return
	}
	if d.node.Tasks != nil && (d.node.Tasks.Recording() || d.node.Tasks.Leading()) {
		// Finish the job first; check again shortly.
		d.node.Mote.Sched.After(200*time.Millisecond, fmt.Sprintf("core.sleepretry.%d", d.node.ID), d.trySleep)
		return
	}
	if d.node.Bulk != nil && d.node.Bulk.InFlight() > 0 {
		d.node.Mote.Sched.After(200*time.Millisecond, fmt.Sprintf("core.sleepretry.%d", d.node.ID), d.trySleep)
		return
	}
	d.sleeping = true
	if d.node.Stack != nil {
		d.node.Stack.Endpoint().SetRadio(false)
	} else {
		d.node.Mote.Endpoint.SetRadio(false)
	}
	d.node.Mote.Sched.After(d.period-d.awake, fmt.Sprintf("core.wake.%d", d.node.ID), d.wake)
}

func (d *dutyCycler) wake() {
	d.sleeping = false
	if !d.node.Mote.Alive() {
		return
	}
	if d.node.Stack != nil {
		d.node.Stack.Endpoint().SetRadio(true)
		d.node.Stack.RadioRestored()
	} else {
		d.node.Mote.Endpoint.SetRadio(true)
	}
	d.node.Mote.Sched.After(d.awake, fmt.Sprintf("core.sleep.%d", d.node.ID), d.trySleep)
}
