package core_test

import (
	"testing"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/erasure"
	"enviromic/internal/experiments"
	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
	"enviromic/internal/storage"
)

// TestDisperseSoakQuarterDead is the dispersal-mode counterpart of
// TestChaosSoakQuarterDead: 25% of the grid crashes mid-run while a loss
// burst degrades the bulk plane and a partition temporarily strands one
// edge of the testbed. The run uses a (16,4) code so the scripted 12
// deaths stay strictly inside the k-of-n tolerance (deaths < n-k+1 = 13
// per neighborhood — the dense indoor grid is one audible neighborhood),
// and therefore must finish with ZERO invariant violations, including
// the survivability rule: every dispersal group keeps at least k live
// fragments no matter which quarter of the network died.
func TestDisperseSoakQuarterDead(t *testing.T) {
	opts := experiments.QuickIndoorOpts()
	opts.StorageMode = storage.ModeDisperse
	opts.Disperse = storage.DisperseConfig{N: 16, K: 4}

	sc := &chaos.Scenario{Name: "disperse-quarter-dead", Seed: 5}
	// 12 of the 48 grid nodes die, staggered through the middle of the
	// run; spacing them avoids modeling a single correlated blackout.
	deadSet := map[int]bool{}
	for i := 0; i < 12; i++ {
		id := i * 4
		deadSet[id] = true
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.KindCrash,
			At:   3*time.Minute + time.Duration(i)*5*time.Second,
			Node: id,
		})
	}
	sc.Faults = append(sc.Faults,
		chaos.Fault{Kind: chaos.KindLoss, From: 3 * time.Minute, To: 6 * time.Minute, Prob: 0.15, Node: -1},
		chaos.Fault{Kind: chaos.KindPartition, From: 90 * time.Second, To: 4 * time.Minute, Node: -1,
			A: []int{1, 2, 3, 5, 6, 7}},
	)

	res, err := experiments.RunIndoorChaos(
		experiments.IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2},
		opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	net := res.Net

	// Deaths < n-k+1 per neighborhood, so every invariant — protocol and
	// k-of-n survivability alike — must hold.
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("invariants broke under quarter-death with n-k=12 slack:\n%s", res.Checker.Report())
	}
	if res.Checker.Events() == 0 {
		t.Fatal("checker saw no events; the soak is vacuous")
	}

	// The soak is only meaningful if dispersal actually ran.
	var groups, frags uint64
	for _, node := range net.Nodes {
		if node.Disperser != nil {
			groups += node.Disperser.Groups
			frags += node.Disperser.DispersedFragments
		}
	}
	if groups == 0 || frags == 0 {
		t.Fatalf("no dispersal activity (groups=%d fragments=%d); the soak is vacuous", groups, frags)
	}

	// Exactly the scripted nodes are down.
	for _, node := range net.Nodes {
		if deadSet[node.ID] == node.Mote.Alive() {
			t.Errorf("node %d alive=%v, scripted dead=%v", node.ID, node.Mote.Alive(), deadSet[node.ID])
		}
	}

	// Tier-1 soak properties, post-chaos.
	for _, node := range net.Nodes {
		if spread := node.Mote.Store.WearSpread(); spread > 1 {
			t.Errorf("node %d wear spread %d", node.ID, spread)
		}
		if rem := node.Mote.Energy.Remaining(net.Sched.Now()); rem < 0 {
			t.Errorf("node %d negative energy %v", node.ID, rem)
		}
	}

	// Erasure-aware retrieval over the survivors recovers every data
	// chunk that still sits on live flash (fragment carriers decode back
	// to data; collection skips dead motes without losing replicated or
	// reconstructable chunks).
	type key struct {
		f flash.FileID
		o int32
		s uint32
	}
	live := map[int][]*flash.Chunk{}
	liveData := map[key]bool{}
	for id, chunks := range net.Holdings() {
		if deadSet[id] {
			continue
		}
		live[id] = chunks
		for _, c := range chunks {
			if erasure.IsParity(c) {
				continue // fragment carriers are transport, not payload
			}
			liveData[key{c.File, c.Origin, c.Seq}] = true
		}
	}
	if len(liveData) == 0 {
		t.Fatal("survivors hold no data; the scenario starved the network")
	}
	files, _ := retrieval.ReassembleErasure(live, retrieval.Query{All: true})
	recovered := map[key]bool{}
	for _, f := range files {
		for _, c := range f.Chunks {
			recovered[key{c.File, c.Origin, c.Seq}] = true
		}
	}
	for k := range liveData {
		if !recovered[k] {
			t.Errorf("chunk %+v survives on live flash but is missing from survivor retrieval", k)
		}
	}
}
