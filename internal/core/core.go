// Package core assembles the EnviroMic node from its modules — mote,
// radio stack, time sync, group management, task assignment, storage
// balancing — and builds whole networks in one of three operating modes
// used by the paper's evaluation (§IV-B):
//
//   - ModeIndependent: the uncoordinated baseline. Every node records on
//     its own upon detecting an event; no radio traffic at all.
//   - ModeCooperative: cooperative recording (groups + task assignment)
//     but no storage balancing.
//   - ModeFull: cooperative recording plus TTL-based distributed storage
//     balancing.
//
// A metrics.Collector is wired into every probe point, and a periodic
// sampler snapshots storage occupancy, duplicate counts, and radio
// counters for the time-series figures.
package core

import (
	"fmt"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/metrics"
	"enviromic/internal/mote"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/task"
	"enviromic/internal/telemetry"
	"enviromic/internal/timesync"
)

// Mode selects the operating mode.
type Mode int

// Operating modes (§IV-B baselines and full system).
const (
	ModeIndependent Mode = iota + 1
	ModeCooperative
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIndependent:
		return "independent"
	case ModeCooperative:
		return "cooperative"
	case ModeFull:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a network. Zero values select the paper's
// defaults.
type Config struct {
	// Seed drives all randomness for the run.
	Seed int64
	// Shards selects the execution engine: 0 or 1 runs the serial
	// scheduler (the default); >= 2 partitions the deployment into that
	// many spatial shards executed concurrently under conservative
	// lookahead synchronization (see sim.Shards and DESIGN.md §14). The
	// result is bit-identical for every shard count >= 2 and matches the
	// serial run except for same-instant cross-node tie order in traces
	// and metrics, which the figure pipeline normalizes away.
	Shards int
	// Mode selects the operating mode; defaults to ModeFull.
	Mode Mode
	// CommRange is the radio range in deployment units (must be set).
	CommRange float64
	// LossProb is the per-receiver frame loss probability.
	LossProb float64
	// DetectThreshold is the acoustic detection amplitude (must match
	// the field's threshold); defaults to 1.
	DetectThreshold float64
	// FlashBlocks per mote; defaults to flash.DefaultBlocks.
	FlashBlocks int
	// SampleRate in Hz; defaults to mote.DefaultSampleRate (2.730 kHz).
	SampleRate float64
	// SynthesizeAudio evaluates the acoustic field per sample (needed
	// only for waveform experiments).
	SynthesizeAudio bool
	// BetaMax is the storage-balancing threshold ceiling (ModeFull).
	BetaMax float64
	// Group, Task, Storage override module configs; zero values use the
	// module defaults.
	Group   *group.Config
	Task    *task.Config
	Storage *storage.Config
	// StorageMode selects migration (the zero value, the paper's
	// balancer) or Reed-Solomon dispersal for ModeFull networks. It
	// overrides Storage.Mode when set, so `-storage-mode disperse`
	// composes with a custom Storage config.
	StorageMode storage.Mode
	// Disperse sets the dispersal geometry (zero value = (6,4)); only
	// read in ModeDisperse.
	Disperse storage.DisperseConfig
	// MaxClockDriftPPM draws each mote's oscillator drift uniformly from
	// [−max, +max]; 0 disables drift.
	MaxClockDriftPPM float64
	// TimeSync enables the FTSP module; without it nodes stamp chunks
	// with their (possibly drifting) raw clocks.
	TimeSync bool
	// SamplePeriod is the metrics snapshot cadence; defaults to 60 s.
	SamplePeriod time.Duration
	// CompressMigrations applies in-transit delta/RLE compression to
	// chunks moved by the storage balancer (§V's suggested integration).
	CompressMigrations bool
	// EnvelopeDetection switches acoustic detection from the geometric
	// audibility test to the paper's sound-activated scheme (§II): a
	// per-node running average of the background envelope, with a
	// detection when the signal exceeds it by DetectionMargin. Use with a
	// field that has a non-zero NoiseAmp so the background is realistic.
	EnvelopeDetection bool
	// DetectionMargin is the §II "sufficient margin" factor (default 3).
	DetectionMargin float64
	// DutyCycle, when in (0,1), puts each node to sleep for the
	// complementary fraction of DutyPeriod (radio off, detection
	// suspended), with per-node phase stagger. §II-B argues the TTL
	// bookkeeping is oblivious to duty-cycling; this knob lets tests and
	// ablations verify it. 0 disables.
	DutyCycle float64
	// DutyPeriod is the duty cycle's period (default 10 s).
	DutyPeriod time.Duration
	// TaskProbe and GroupProbe are optional user observer callbacks,
	// invoked in addition to the network's own metrics wiring.
	TaskProbe task.Probe
	// GroupProbe observes group-management events.
	GroupProbe group.Probe
	// Energy overrides the battery model template; nil uses defaults.
	Energy func() *mote.Energy
	// Tracer receives structured protocol events from every module (see
	// internal/obs); nil disables tracing at zero cost. The tracer is a
	// pure observer: it draws no randomness and schedules no events, so a
	// traced run is byte-identical to an untraced one.
	Tracer *obs.Tracer
	// Telemetry receives runtime metrics (see internal/telemetry): radio
	// tx/rx/drop counters, shard-coordinator window and barrier series,
	// and a run-progress heartbeat. Like the tracer it is a pure
	// observer — a fixed-seed run is byte-identical with it on or off —
	// and nil disables it at zero cost.
	Telemetry *telemetry.Registry
}

func (c *Config) applyDefaults() {
	if c.Mode == 0 {
		c.Mode = ModeFull
	}
	if c.CommRange <= 0 {
		panic("core: CommRange must be positive")
	}
	if c.DetectThreshold == 0 {
		c.DetectThreshold = 1
	}
	if c.BetaMax == 0 {
		c.BetaMax = 2
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = time.Minute
	}
	if c.DutyCycle < 0 || c.DutyCycle > 1 {
		panic(fmt.Sprintf("core: DutyCycle %v outside [0,1]", c.DutyCycle))
	}
	if c.DutyPeriod == 0 {
		c.DutyPeriod = 10 * time.Second
	}
	if c.DetectionMargin == 0 {
		c.DetectionMargin = 3
	}
	if c.Shards < 0 {
		panic(fmt.Sprintf("core: negative shard count %d", c.Shards))
	}
}

// Node is one assembled EnviroMic mote.
type Node struct {
	ID  int
	Pos geometry.Point

	Mote      *mote.Mote
	Stack     *netstack.Stack
	Bulk      *netstack.Bulk
	Clock     *timesync.Clock
	Sync      *timesync.Sync
	Tasks     *task.Service
	Group     *group.Manager
	Balancer  *storage.Balancer
	Disperser *storage.Disperser
	Responder *retrieval.Responder

	indep *independentRecorder
	duty  *dutyCycler
}

// Network is a complete simulated deployment.
type Network struct {
	// Sched is the run-level scheduler: the serial scheduler, or the
	// global lane when sharded. Samplers, chaos injection and anything
	// else that touches more than one node schedules here.
	Sched     *sim.Scheduler
	Field     *acoustics.Field
	Radio     *radio.Network
	Nodes     []*Node
	Collector *metrics.Collector

	cfg     Config
	sampler *sim.Ticker
	// Sharded execution (nil / empty when cfg.Shards <= 1).
	shards     *sim.Shards
	shardOf    []int
	shTrace    *obs.Sharded
	stage      []stageBuf
	stageMerge []staged
	// Sampling scratch, reused across takeSample calls.
	dups       metrics.DupCounter
	chunkBuf   []*flash.Chunk
	lastChunks int
	// Serial-mode run-progress heartbeat (the shard coordinator owns the
	// same gauges in sharded mode). Updated only from the sim thread;
	// gauge Set is an atomic store, safe against concurrent scrapes.
	hbTime     *telemetry.Gauge
	hbProgress *telemetry.Gauge
	hbWall     time.Time
	hbSim      sim.Time
}

// Sharding returns the shard coordinator, or nil for serial runs.
func (n *Network) Sharding() *sim.Shards { return n.shards }

// ShardOf returns the shard owning node id (0 for serial runs).
func (n *Network) ShardOf(id int) int {
	if n.shardOf == nil {
		return 0
	}
	return n.shardOf[id]
}

// schedFor returns the scheduler node id's modules run on.
func (n *Network) schedFor(id int) *sim.Scheduler {
	if n.shards == nil {
		return n.Sched
	}
	return n.shards.Shard(n.shardOf[id])
}

// tracerFor returns the tracer node id's modules emit into: the run
// tracer when serial, the node's shard-buffered tracer when sharded.
func (n *Network) tracerFor(id int) *obs.Tracer {
	if n.shards == nil {
		return n.cfg.Tracer
	}
	return n.shTrace.Shard(n.shardOf[id])
}

// NewGridNetwork deploys nodes on a regular grid (the indoor testbed).
func NewGridNetwork(cfg Config, field *acoustics.Field, grid geometry.Grid) *Network {
	return NewNetwork(cfg, field, grid.Points())
}

// NewNetwork deploys nodes at arbitrary positions (the forest).
func NewNetwork(cfg Config, field *acoustics.Field, positions []geometry.Point) *Network {
	cfg.applyDefaults()
	if len(positions) == 0 {
		panic("core: no node positions")
	}
	rcfg := radio.DefaultConfig(cfg.CommRange)
	rcfg.LossProb = cfg.LossProb
	rcfg.Seed = cfg.Seed

	var (
		sched   *sim.Scheduler
		shards  *sim.Shards
		shardOf []int
	)
	if cfg.Shards > 1 {
		shards = sim.NewShards(cfg.Seed, cfg.Shards, rcfg.Lookahead())
		sched = shards.Global()
		shardOf = assignShards(positions, cfg.CommRange, cfg.Shards)
	} else {
		sched = sim.NewScheduler(cfg.Seed)
	}
	rnet := radio.NewNetwork(sched, rcfg)
	rnet.SetTracer(cfg.Tracer)

	posByID := make(map[int]geometry.Point, len(positions))
	for i, p := range positions {
		posByID[i] = p
	}
	collector := metrics.NewCollector(field, posByID)

	n := &Network{
		Sched:     sched,
		Field:     field,
		Radio:     rnet,
		Collector: collector,
		cfg:       cfg,
		shards:    shards,
		shardOf:   shardOf,
	}
	if shards != nil {
		rnet.SetSharding(shards, func(id int) int { return shardOf[id] })
		n.shTrace = obs.NewSharded(cfg.Tracer, cfg.Shards)
		if trs := n.shTrace.Tracers(); trs != nil {
			rnet.SetShardTracers(trs)
		}
		n.stage = make([]stageBuf, cfg.Shards)
		// Barrier order matters: rebuild the spatial index first (cheap
		// no-op unless the topology changed), then publish buffered trace
		// events, then staged metrics — so by the time any global-lane
		// event runs, the trace and the collector reflect everything the
		// preceding windows did.
		shards.OnBarrier(rnet.EnsureIndex)
		shards.OnBarrier(n.shTrace.Flush)
		shards.OnBarrier(n.flushStage)
		shards.SetMetrics(cfg.Telemetry)
	} else if cfg.Telemetry != nil {
		n.hbTime = cfg.Telemetry.Gauge("enviromic_sim_time_seconds",
			"Simulated time reached by the run.")
		n.hbProgress = cfg.Telemetry.Gauge("enviromic_sim_progress",
			"Simulated seconds advanced per wall-clock second, sampled at barriers.")
	}
	// After SetSharding, so the radio's counter lanes match the shard count.
	rnet.SetMetrics(cfg.Telemetry)
	for i, pos := range positions {
		n.Nodes = append(n.Nodes, n.buildNode(i, pos))
	}
	return n
}

func (n *Network) buildNode(id int, pos geometry.Point) *Node {
	cfg := n.cfg
	// Every module of this node runs on its shard's scheduler (the serial
	// scheduler when unsharded). Build-time randomness — drift draws just
	// below — stays on the run-level scheduler, whose stream is identical
	// in serial and sharded runs.
	sched := n.schedFor(id)
	tr := n.tracerFor(id)
	m := mote.New(id, pos, sched, n.Field, n.Radio, mote.Config{
		SampleRate:      cfg.SampleRate,
		FlashBlocks:     cfg.FlashBlocks,
		SynthesizeAudio: cfg.SynthesizeAudio,
		Energy:          n.newEnergy(),
	})
	node := &Node{ID: id, Pos: pos, Mote: m}

	node.Clock = &timesync.Clock{}
	if cfg.MaxClockDriftPPM > 0 {
		node.Clock.DriftPPM = (n.Sched.Rand().Float64()*2 - 1) * cfg.MaxClockDriftPPM
		node.Clock.Offset = time.Duration(n.Sched.Rand().Int63n(int64(100 * time.Millisecond)))
	}

	sensor := &nodeSensor{net: n, m: m, node: node}
	if cfg.EnvelopeDetection {
		sensor.detector = acoustics.NewDetector(0.05, cfg.DetectionMargin)
		// Seed the background with the ambient noise floor so the first
		// polls do not misread silence as an event.
		sensor.detector.Observe(n.Field.NoiseAmp)
	}

	if cfg.Mode == ModeIndependent {
		// The baseline does not even power a protocol stack.
		node.indep = newIndependentRecorder(n, node, sensor)
		return node
	}

	node.Stack = netstack.NewStack(m.Endpoint, sched)
	node.Bulk = netstack.NewBulk(node.Stack, sched)
	node.Bulk.Compress = cfg.CompressMigrations
	node.Bulk.SetTracer(tr)

	var ts task.TimeSource
	if cfg.TimeSync {
		node.Sync = timesync.New(id, node.Clock, sched, node.Stack, timesync.DefaultConfig())
		node.Stack.Register(timesync.Beacon{}.Kind(), func(from, to int, p radio.Payload) {
			if b, ok := p.(timesync.Beacon); ok {
				node.Sync.HandleBeacon(b)
			}
		})
		ts = node.Sync
	} else {
		ts = perfectTime{sched}
	}

	tcfg := task.DefaultConfig()
	if cfg.Task != nil {
		tcfg = *cfg.Task
	}
	disperse := cfg.Mode == ModeFull &&
		(cfg.StorageMode == storage.ModeDisperse ||
			(cfg.Storage != nil && cfg.Storage.Mode == storage.ModeDisperse))
	// In dispersal mode the recorder's device is wrapped so every batch of
	// freshly stored chunks flows into the disperser (which is built a few
	// lines below; the wrapper tolerates the window). Migrate mode passes
	// the mote through untouched — the fixed-seed byte-identity contract.
	var dev task.Device = m
	if disperse {
		dev = &disperseDevice{m: m, node: node}
	}
	userTP := cfg.TaskProbe
	node.Tasks = task.NewService(id, node.Stack, sched, dev, ts, tcfg, task.Probe{
		OnAssign:      userTP.OnAssign,
		OnReject:      userTP.OnReject,
		OnRecordStart: userTP.OnRecordStart,
		OnRecordEnd: func(nid int, file flash.FileID, start, end sim.Time, stored, total int) {
			n.onRecordEnd(node, file, start, end, stored, total)
			if userTP.OnRecordEnd != nil {
				userTP.OnRecordEnd(nid, file, start, end, stored, total)
			}
		},
	})
	node.Tasks.SetTracer(tr)
	node.Tasks.SetBusyCheck(func() bool { return node.Bulk.InFlight() > 0 })
	// Hearing is raw audibility (not the probabilistic detection draw):
	// the question is whether recording would capture the event at all.
	node.Tasks.SetHearingCheck(func() bool { return m.Audible(sched.Now()) })

	gcfg := group.DefaultConfig()
	if cfg.Group != nil {
		gcfg = *cfg.Group
	}
	var ttlSrc group.TTLSource
	if cfg.Mode == ModeFull {
		scfg := storage.DefaultConfig(cfg.BetaMax)
		if cfg.Storage != nil {
			scfg = *cfg.Storage
		}
		if disperse {
			scfg.Mode = storage.ModeDisperse
		}
		node.Balancer = storage.NewBalancer(id, node.Stack, node.Bulk, sched, m.Store, m.Energy, scfg, storage.Probe{
			OnMigrateOut: func(from, to, chunks int, at sim.Time) {
				n.addMigration(metrics.Migration{From: from, To: to, Chunks: chunks, At: at})
			},
			OnOverflow: func(nid int, at sim.Time) { n.addOverflow(nid, at) },
		})
		node.Balancer.SetTracer(tr)
		ttlSrc = node.Balancer
		if disperse {
			d, err := storage.NewDisperser(id, node.Bulk, sched, m.Store, node.Balancer, cfg.Disperse)
			if err != nil {
				panic(fmt.Sprintf("core: dispersal geometry: %v", err))
			}
			d.SetTracer(tr)
			node.Disperser = d
		}
	}
	// Retrieval responder: answers mule queries and relays spanning-tree
	// convergecasts on the retrieval traffic class (the balancer keeps
	// the balancing class).
	node.Responder = retrieval.NewResponder(id, node.Stack, node.Bulk, sched, m.Store)
	node.Responder.SetTracer(tr)

	userGP := cfg.GroupProbe
	node.Group = group.NewManager(id, node.Stack, sched, sensor, ttlSrc, node.Tasks, m, gcfg, group.Probe{
		OnElected:     userGP.OnElected,
		OnHandoff:     userGP.OnHandoff,
		OnResign:      userGP.OnResign,
		OnPreludeKeep: userGP.OnPreludeKeep,
		OnHearingChanged: func(nid int, hearing bool, at sim.Time) {
			if node.Sync != nil {
				node.Sync.SetActive(hearing)
			}
			if userGP.OnHearingChanged != nil {
				userGP.OnHearingChanged(nid, hearing, at)
			}
		},
		OnPreludeStored: func(nid int, file flash.FileID, start, end sim.Time, stored, total int) {
			n.onRecordEnd(node, file, start, end, stored, total)
			if userGP.OnPreludeStored != nil {
				userGP.OnPreludeStored(nid, file, start, end, stored, total)
			}
		},
	})
	node.Group.SetTracer(tr)
	return node
}

func (n *Network) newEnergy() *mote.Energy {
	if n.cfg.Energy != nil {
		return n.cfg.Energy()
	}
	return mote.DefaultEnergy()
}

// onRecordEnd funnels every completed recording into the collector and
// the balancer's acquisition rate.
func (n *Network) onRecordEnd(node *Node, file flash.FileID, start, end sim.Time, stored, total int) {
	frac := 0.0
	if total > 0 {
		frac = float64(stored) / float64(total)
	}
	n.addRecording(metrics.Recording{
		Node: node.ID, File: file, Start: start, End: end, StoredFrac: frac,
	})
	if node.Balancer != nil {
		node.Balancer.OnAcquired(stored * flash.BlockSize)
	}
	if stored < total {
		n.addOverflow(node.ID, end)
	}
}

// Start launches every node's modules and the metrics sampler.
func (n *Network) Start() {
	// All scenario sources are registered at build time; freeze the field
	// so shard goroutines can read it concurrently (and serial runs get
	// the same indexed-query speedup).
	n.Field.Freeze()
	for _, node := range n.Nodes {
		if n.cfg.DutyCycle > 0 && n.cfg.DutyCycle < 1 {
			node.duty = newDutyCycler(n, node, n.cfg.DutyPeriod, n.cfg.DutyCycle)
			node.duty.start()
		}
		if node.indep != nil {
			node.indep.start()
			continue
		}
		if node.Sync != nil {
			node.Sync.Start()
		}
		node.Group.Start()
		if node.Balancer != nil {
			node.Balancer.Start()
		}
	}
	n.sampler = sim.NewTicker(n.Sched, n.cfg.SamplePeriod, "core.sample", n.takeSample)
}

// Run starts (if needed) and executes the simulation until the given
// time, then takes a final sample.
func (n *Network) Run(until sim.Time) {
	if n.sampler == nil {
		n.Start()
	}
	if n.shards != nil {
		n.shards.Run(until)
	} else {
		n.Sched.Run(until)
	}
	n.takeSample()
}

func (n *Network) takeSample() {
	stored := make(map[int]int, len(n.Nodes))
	for _, node := range n.Nodes {
		stored[node.ID] = node.Mote.Store.BytesUsed()
	}
	// Duplicate counting reuses the counter's identity map and a chunk
	// scratch slice across samples (sized by the previous sample's
	// holdings) instead of materializing a fresh holdings map each tick.
	n.dups.Begin(n.lastChunks)
	total := 0
	for _, node := range n.Nodes {
		n.chunkBuf = node.Mote.Store.AppendChunks(n.chunkBuf[:0])
		total += len(n.chunkBuf)
		n.dups.Add(n.chunkBuf)
	}
	n.lastChunks = total
	// Radio.Stats returns a deep-copied snapshot, so its maps can be
	// stored in the sample as-is.
	st := n.Radio.Stats()
	n.Collector.AddSample(metrics.Sample{
		At:              n.Sched.Now(),
		StoredBytes:     stored,
		DuplicateChunks: n.dups.Count(),
		TxByKind:        st.TxByKind,
		TxByNode:        st.TxByNode,
	})
	n.heartbeat()
}

// heartbeat refreshes the serial run-progress gauges (at most every 250ms
// of wall time); in sharded mode the coordinator owns these gauges and
// this is a no-op.
func (n *Network) heartbeat() {
	if n.hbTime == nil {
		return
	}
	now := n.Sched.Now()
	n.hbTime.Set(now.Seconds())
	wall := time.Now()
	if n.hbWall.IsZero() {
		n.hbWall, n.hbSim = wall, now
		return
	}
	if dt := wall.Sub(n.hbWall); dt >= 250*time.Millisecond {
		n.hbProgress.Set(now.Sub(n.hbSim).Seconds() / dt.Seconds())
		n.hbWall, n.hbSim = wall, now
	}
}

// Holdings returns every node's current flash contents.
func (n *Network) Holdings() map[int][]*flash.Chunk {
	out := make(map[int][]*flash.Chunk, len(n.Nodes))
	for _, node := range n.Nodes {
		out[node.ID] = node.Mote.Store.Chunks()
	}
	return out
}

// LiveHoldings returns flash contents of nodes whose radio is alive —
// what a mule tour could actually collect right now. The survivability
// harness compares reassembly over this against reassembly over
// Holdings (which includes dead nodes' flash, recoverable only by
// physically collecting the corpse).
func (n *Network) LiveHoldings() map[int][]*flash.Chunk {
	out := make(map[int][]*flash.Chunk, len(n.Nodes))
	for _, node := range n.Nodes {
		if node.Mote.Endpoint.Alive() {
			out[node.ID] = node.Mote.Store.Chunks()
		}
	}
	return out
}

// TotalStoredBytes sums flash occupancy across the network.
func (n *Network) TotalStoredBytes() int {
	t := 0
	for _, node := range n.Nodes {
		t += node.Mote.Store.BytesUsed()
	}
	return t
}

// Kill fails a node completely (failure injection).
func (n *Network) Kill(id int) {
	node := n.Nodes[id]
	if node.indep != nil {
		node.indep.stop()
	}
	if node.Group != nil {
		node.Group.Stop()
	}
	if node.Tasks != nil {
		// A recording in progress dies with the mote: its samples were in
		// RAM, and the deferred store must not fire on the corpse (or,
		// worse, after a crash recovery rewound the flash pointers).
		node.Tasks.AbortRecording()
	}
	if node.Balancer != nil {
		node.Balancer.Stop()
	}
	if node.Disperser != nil {
		node.Disperser.Stop()
	}
	if node.Sync != nil {
		node.Sync.Stop()
	}
	node.Mote.Kill()
}

// Reboot restores a previously Kill'ed node (chaos fault injection),
// modeling a watchdog reset: the radio rejoins the medium, but RAM state
// is lost — held/pending messages are dropped and the group manager
// reverts to power-on defaults (keeping its EEPROM-backed file-ID
// serial). Flash contents are whatever the store holds; a crash scenario
// that wants checkpoint-window data loss applies Store.Crash/Recover
// itself before rebooting. Rebooting a live node panics.
func (n *Network) Reboot(id int) {
	node := n.Nodes[id]
	if node.Mote.Endpoint.Alive() {
		panic(fmt.Sprintf("core: reboot of node %d, which is not dead", id))
	}
	node.Mote.Revive()
	if node.indep != nil {
		node.indep.start()
		return
	}
	node.Stack.DropHeld()
	node.Group.Reset()
	node.Group.Start()
	if node.Balancer != nil {
		node.Balancer.Start()
	}
	if node.Sync != nil {
		node.Sync.Start()
	}
}

// Config returns the network configuration (after defaulting).
func (n *Network) Config() Config { return n.cfg }

// disperseDevice wraps the mote's task.Device so that every batch of
// chunks a recording stores also reaches the disperser, which
// erasure-codes and scatters it. Only the stored prefix is handed over —
// chunks rejected by a full flash are recycled by the task layer and
// must not be encoded. Group prelude buffers bypass the task device and
// are therefore not dispersed (they stay purely local, like today).
type disperseDevice struct {
	m    *mote.Mote
	node *Node
}

func (d *disperseDevice) CaptureSamples(start, end sim.Time) []byte {
	return d.m.CaptureSamples(start, end)
}

func (d *disperseDevice) StoreChunks(chunks []*flash.Chunk) int {
	stored := d.m.StoreChunks(chunks)
	if stored > 0 && d.node.Disperser != nil {
		d.node.Disperser.OnRecorded(chunks[:stored])
	}
	return stored
}

// perfectTime is the TimeSource used when FTSP is disabled.
type perfectTime struct{ s *sim.Scheduler }

func (p perfectTime) GlobalTime() sim.Time       { return p.s.Now() }
func (p perfectTime) LocalNow() sim.Time         { return p.s.Now() }
func (p perfectTime) AddReference(_, _ sim.Time) {}

// nodeSensor implements group.Sensor over the mote, with the field's
// imperfect detection probability applied per poll (§IV-B notes nodes
// "may not detect the event reliably").
type nodeSensor struct {
	net      *Network
	m        *mote.Mote
	node     *Node
	detector *acoustics.Detector
}

func (s *nodeSensor) Detect(at sim.Time) bool {
	if s.node != nil && s.node.duty != nil && s.node.duty.Sleeping() {
		return false // the ADC is powered down
	}
	if s.detector != nil {
		// Sound-activated recording (§II): compare the instantaneous
		// envelope (plus ambient noise) against the running background
		// average.
		level := s.m.SenseEnvelope(at) + s.net.Field.NoiseAmp
		return s.detector.Observe(level)
	}
	if !s.m.Audible(at) {
		return false
	}
	if p := s.net.Field.DetectProb; p > 0 && p < 1 {
		// Drawn from the node's private stream so the outcome depends only
		// on this node's own poll sequence, not on global event order.
		return s.m.Endpoint.Rand().Float64() < p
	}
	return true
}

func (s *nodeSensor) Signal(at sim.Time) float64 { return s.m.SenseEnvelope(at) }
