package core

import (
	"fmt"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
	"enviromic/internal/task"
)

// independentRecorder is the §IV-B baseline: each node records a Trc-long
// clip on its own whenever it detects an acoustic event, with no
// coordination and no radio traffic. After a clip it re-polls; because
// detection is imperfect, it "may or may not detect the event again even
// if the event persists" — the effect the paper cites for the baseline's
// ~0.5 redundancy ratio.
type independentRecorder struct {
	net    *Network
	node   *Node
	sensor *nodeSensor

	pollInterval time.Duration
	trc          time.Duration

	ticker     *sim.Ticker
	recording  bool
	fileSerial uint32
	seq        uint32
	curFile    flash.FileID
}

func newIndependentRecorder(n *Network, node *Node, sensor *nodeSensor) *independentRecorder {
	tcfg := task.DefaultConfig()
	if n.cfg.Task != nil {
		tcfg = *n.cfg.Task
	}
	pollInterval := 100 * time.Millisecond
	if n.cfg.Group != nil {
		pollInterval = n.cfg.Group.PollInterval
	}
	return &independentRecorder{
		net:          n,
		node:         node,
		sensor:       sensor,
		pollInterval: pollInterval,
		trc:          tcfg.Trc,
	}
}

func (r *independentRecorder) start() {
	r.ticker = sim.NewTicker(r.node.Mote.Sched, r.pollInterval,
		fmt.Sprintf("core.indep.%d", r.node.ID), r.poll)
}

func (r *independentRecorder) stop() {
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

func (r *independentRecorder) poll() {
	if r.recording || !r.node.Mote.Alive() {
		return
	}
	now := r.node.Mote.Sched.Now()
	if !r.sensor.Detect(now) {
		// A silence gap ends the local "file": the next detection is a
		// new clip.
		r.curFile = 0
		return
	}
	r.recording = true
	if r.curFile == 0 {
		r.fileSerial++
		r.curFile = flash.FileID(uint32(r.node.ID+1)<<16 | r.fileSerial&0xFFFF)
		r.seq = 0
	}
	start := now
	r.node.Mote.Sched.After(r.trc, fmt.Sprintf("core.indep.rec.%d", r.node.ID), func() {
		end := r.node.Mote.Sched.Now()
		samples := r.node.Mote.CaptureSamples(start, end)
		chunks := flash.SplitSamples(r.curFile, int32(r.node.ID), r.seq, start, end, samples)
		r.seq += uint32(len(chunks))
		stored := r.node.Mote.StoreChunks(chunks)
		flash.FreeChunks(chunks[stored:])
		r.recording = false
		r.net.onRecordEnd(r.node, r.curFile, start, end, stored, len(chunks))
	})
}
