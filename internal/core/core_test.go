package core

import (
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

// poissonEvents injects events at two fixed spots, each audible to an
// explicit 4-node whitelist, mimicking the §IV-B indoor workload at a
// reduced scale.
func poissonEvents(field *acoustics.Field, seed int64, until time.Duration, meanGap, minDur, maxDur time.Duration, whitelists [][]int) {
	rng := sim.NewScheduler(seed).Rand() // derive a standalone deterministic stream
	var id acoustics.SourceID
	t := time.Duration(0)
	spots := []geometry.Point{{X: 1, Y: 1}, {X: 5, Y: 2}}
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		t += gap
		if t >= until {
			return
		}
		dur := minDur + time.Duration(rng.Int63n(int64(maxDur-minDur)))
		id++
		which := int(id) % len(spots)
		src := acoustics.StaticSource(id, spots[which], sim.At(t), dur, 100, acoustics.VoiceTone)
		src.Whitelist = map[int]bool{}
		for _, n := range whitelists[which] {
			src.Whitelist[n] = true
		}
		field.AddSource(src)
	}
}

// smallScenario returns a configured 8-node network with Poisson events
// restricted to two 4-node groups, tiny flash, and the given mode.
func smallScenario(t *testing.T, mode Mode, betaMax float64, dur time.Duration) *Network {
	t.Helper()
	// 16 nodes; only 8 ever hear events, the other 8 are quiet storage
	// reserve (the paper's 48-node grid has the same hot/quiet split at a
	// larger scale).
	field := acoustics.NewField(1.0)
	whitelists := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	poissonEvents(field, 77, dur, 20*time.Second, 3*time.Second, 7*time.Second, whitelists)
	grid := geometry.Grid{Cols: 4, Rows: 4, Pitch: 2}
	cfg := Config{
		Seed:         42,
		Mode:         mode,
		CommRange:    20, // everyone within one hop
		LossProb:     0.02,
		FlashBlocks:  96, // tiny flash so storage saturates mid-run
		BetaMax:      betaMax,
		SamplePeriod: 30 * time.Second,
	}
	return NewGridNetwork(cfg, field, grid)
}

func TestModeString(t *testing.T) {
	if ModeIndependent.String() != "independent" || ModeCooperative.String() != "cooperative" ||
		ModeFull.String() != "full" || Mode(9).String() != "Mode(9)" {
		t.Error("Mode.String mismatch")
	}
}

func TestIndependentBaselineRecordsWithoutTraffic(t *testing.T) {
	n := smallScenario(t, ModeIndependent, 2, 4*time.Minute)
	n.Run(sim.At(5 * time.Minute))
	if len(n.Collector.Recordings) == 0 {
		t.Fatal("baseline recorded nothing")
	}
	if got := n.Radio.Stats().TotalFrames; got != 0 {
		t.Errorf("baseline sent %d frames, want 0", got)
	}
	if n.TotalStoredBytes() == 0 {
		t.Error("baseline stored nothing")
	}
}

func TestCooperativeReducesRedundancyVsBaseline(t *testing.T) {
	dur := 6 * time.Minute
	base := smallScenario(t, ModeIndependent, 2, dur)
	base.Run(sim.At(dur + time.Minute))
	coop := smallScenario(t, ModeCooperative, 2, dur)
	coop.Run(sim.At(dur + time.Minute))

	at := sim.At(dur)
	rBase := base.Collector.RedundancyRatioAt(at, 2730)
	rCoop := coop.Collector.RedundancyRatioAt(at, 2730)
	if rBase <= rCoop {
		t.Errorf("baseline redundancy %.3f not above cooperative %.3f", rBase, rCoop)
	}
	// The paper's baseline stabilizes near 0.5 with 4 hearers.
	if rBase < 0.25 {
		t.Errorf("baseline redundancy %.3f implausibly low", rBase)
	}
	if rCoop > 0.25 {
		t.Errorf("cooperative redundancy %.3f too high", rCoop)
	}
}

func TestBalancingReducesMissVsCooperative(t *testing.T) {
	// Long enough that the 4 hearers' tiny flashes overflow; balancing
	// must shift data to the quiet nodes and keep recording.
	dur := 20 * time.Minute
	coop := smallScenario(t, ModeCooperative, 2, dur)
	coop.Run(sim.At(dur))
	full := smallScenario(t, ModeFull, 2, dur)
	full.Run(sim.At(dur))

	at := sim.At(dur)
	missCoop := coop.Collector.MissRatioAt(at)
	missFull := full.Collector.MissRatioAt(at)
	if missFull >= missCoop {
		t.Errorf("full-mode miss %.3f not below cooperative %.3f", missFull, missCoop)
	}
	if len(full.Collector.Migrations) == 0 {
		t.Error("full mode never migrated data")
	}
	// Balancing must actually use the quiet nodes' flash.
	quietBytes := 0
	for _, node := range full.Nodes {
		used := node.Mote.Store.BytesUsed()
		// Nodes that never hear an event only hold migrated data... all
		// nodes hear here; instead check total stored exceeds coop's.
		quietBytes += used
	}
	if quietBytes <= coop.TotalStoredBytes() {
		t.Errorf("full mode stored %d bytes <= cooperative %d", quietBytes, coop.TotalStoredBytes())
	}
}

func TestFullModeSendsMoreMessagesThanCooperative(t *testing.T) {
	dur := 10 * time.Minute
	coop := smallScenario(t, ModeCooperative, 2, dur)
	coop.Run(sim.At(dur))
	full := smallScenario(t, ModeFull, 2, dur)
	full.Run(sim.At(dur))
	at := sim.At(dur)
	if full.Collector.MessageCountAt(at) <= coop.Collector.MessageCountAt(at) {
		t.Errorf("full-mode messages (%d) not above cooperative (%d)",
			full.Collector.MessageCountAt(at), coop.Collector.MessageCountAt(at))
	}
}

func TestSamplesAreTaken(t *testing.T) {
	n := smallScenario(t, ModeFull, 2, 3*time.Minute)
	n.Run(sim.At(3 * time.Minute))
	// 30 s cadence over 180 s plus the final sample.
	if got := len(n.Collector.Samples); got < 6 {
		t.Errorf("only %d samples taken", got)
	}
	last := n.Collector.Samples[len(n.Collector.Samples)-1]
	if len(last.StoredBytes) != 16 {
		t.Errorf("sample covers %d nodes, want 16", len(last.StoredBytes))
	}
}

func TestKillStopsANode(t *testing.T) {
	n := smallScenario(t, ModeFull, 2, 5*time.Minute)
	n.Start()
	n.Sched.Run(sim.At(time.Minute))
	n.Kill(0)
	n.Sched.Run(sim.At(5 * time.Minute))
	// Node 0 must have recorded nothing after the kill.
	killAt := sim.At(time.Minute)
	for _, r := range n.Collector.Recordings {
		if r.Node == 0 && r.Start > killAt {
			t.Errorf("dead node recorded at %v", r.Start)
		}
	}
	if n.Nodes[0].Mote.Alive() {
		t.Error("node still alive after Kill")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int, uint64) {
		n := smallScenario(t, ModeFull, 2, 5*time.Minute)
		n.Run(sim.At(5 * time.Minute))
		return len(n.Collector.Recordings), n.TotalStoredBytes(), n.Radio.Stats().TotalFrames
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("identical configs diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestTimeSyncIntegration(t *testing.T) {
	field := acoustics.NewField(1.0)
	field.AddSource(acoustics.StaticSource(1, geometry.Point{X: 2, Y: 0}, sim.At(30*time.Second), 20*time.Second, 100, acoustics.VoiceTone))
	cfg := Config{
		Seed:             5,
		Mode:             ModeCooperative,
		CommRange:        20,
		FlashBlocks:      512,
		TimeSync:         true,
		MaxClockDriftPPM: 50,
	}
	n := NewNetwork(cfg, field, []geometry.Point{{X: 0}, {X: 2}, {X: 4}})
	n.Run(sim.At(2 * time.Minute))
	for _, node := range n.Nodes {
		if node.Sync == nil {
			t.Fatal("sync module missing")
		}
	}
	// All nodes converge on node 0 as sync root.
	for _, node := range n.Nodes {
		if node.Sync.Root() != 0 {
			t.Errorf("node %d sync root = %d", node.ID, node.Sync.Root())
		}
	}
	// Recorded chunk timestamps must be close to true time despite the
	// drifting clocks: every stamped chunk start must fall inside (a
	// slightly widened) true recording interval of its origin node.
	if len(n.Collector.Recordings) == 0 {
		t.Fatal("nothing recorded")
	}
	const tol = 150 * time.Millisecond
	for _, chunks := range n.Holdings() {
		for _, c := range chunks {
			ok := false
			for _, r := range n.Collector.Recordings {
				if r.Node != int(c.Origin) {
					continue
				}
				if c.Start >= r.Start.Add(-tol) && c.Start <= r.End.Add(tol) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("chunk stamped %v (origin %d) matches no true recording interval",
					c.Start, c.Origin)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	field := acoustics.NewField(1.0)
	for _, fn := range []func(){
		func() { NewNetwork(Config{}, field, []geometry.Point{{}}) }, // no comm range
		func() { NewNetwork(Config{CommRange: 1}, field, nil) },      // no nodes
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid network accepted")
				}
			}()
			fn()
		}()
	}
}

func TestCrashRecoveryPreservesData(t *testing.T) {
	// A mote loses power mid-run; its flash (with the EEPROM-checkpointed
	// queue pointers) survives and its data is retrievable after physical
	// collection (§III-B.3).
	n := smallScenario(t, ModeCooperative, 2, 4*time.Minute)
	n.Start()
	n.Sched.Run(sim.At(3 * time.Minute))
	// Pick the node with the most data and crash it.
	victim := n.Nodes[0]
	for _, node := range n.Nodes {
		if node.Mote.Store.Len() > victim.Mote.Store.Len() {
			victim = node
		}
	}
	before := victim.Mote.Store.Len()
	if before == 0 {
		t.Skip("no data recorded on any node (scenario too quiet)")
	}
	n.Kill(victim.ID)
	victim.Mote.Store.Crash()
	n.Sched.Run(sim.At(4 * time.Minute))

	recovered, err := victim.Mote.Store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The periodic checkpoint (every 16 mutations) bounds the loss.
	if recovered < before-16 {
		t.Errorf("recovered %d chunks of %d (checkpoint loss bound exceeded)", recovered, before)
	}
	// Recovered chunks participate in reassembly like any others.
	files := retrieval.Reassemble(n.Holdings(), retrieval.Query{All: true})
	found := false
	for _, f := range files {
		for _, c := range f.Chunks {
			if int(c.Origin) == victim.ID {
				found = true
			}
		}
	}
	if !found && recovered > 0 {
		t.Error("recovered data absent from reassembly")
	}
}

func TestCompressedMigrationsReduceAirBytes(t *testing.T) {
	run := func(compress bool) uint64 {
		field := acoustics.NewField(1.0)
		whitelists := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
		poissonEvents(field, 77, 8*time.Minute, 20*time.Second, 3*time.Second, 7*time.Second, whitelists)
		grid := geometry.Grid{Cols: 4, Rows: 4, Pitch: 2}
		net := NewGridNetwork(Config{
			Seed: 42, Mode: ModeFull, CommRange: 20, FlashBlocks: 96,
			BetaMax: 2, CompressMigrations: compress,
		}, field, grid)
		net.Run(sim.At(8 * time.Minute))
		return net.Radio.Stats().TotalBytes
	}
	plain, compressed := run(false), run(true)
	// Placeholder sample payloads are highly compressible; air bytes must
	// drop noticeably when migrations dominate traffic.
	if compressed >= plain {
		t.Errorf("compression did not reduce air bytes: %d vs %d", compressed, plain)
	}
}

func TestDutyCyclingTradesCoverageForEnergy(t *testing.T) {
	run := func(duty float64) (miss float64, drain float64) {
		field := acoustics.NewField(1.0)
		whitelists := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
		poissonEvents(field, 77, 8*time.Minute, 20*time.Second, 3*time.Second, 7*time.Second, whitelists)
		grid := geometry.Grid{Cols: 4, Rows: 4, Pitch: 2}
		net := NewGridNetwork(Config{
			Seed: 42, Mode: ModeCooperative, CommRange: 20,
			FlashBlocks: 512, DutyCycle: duty, DutyPeriod: 8 * time.Second,
		}, field, grid)
		net.Run(sim.At(8 * time.Minute))
		var total float64
		for _, node := range net.Nodes {
			total += node.Mote.Energy.CapacityJ - node.Mote.Energy.Remaining(net.Sched.Now())
		}
		return net.Collector.MissRatioAt(sim.At(8 * time.Minute)), total
	}
	missOn, drainOn := run(0) // 0 disables duty cycling: always awake
	missHalf, drainHalf := run(0.5)
	if missHalf <= missOn {
		t.Errorf("50%% duty cycle did not raise miss ratio: %.3f vs %.3f", missHalf, missOn)
	}
	// Radio-off time cuts the non-idle drain (the idle floor dominates at
	// this scale, so just require a reduction, not a factor).
	if drainHalf >= drainOn {
		t.Errorf("duty cycling did not save energy: %.1f vs %.1f J", drainHalf, drainOn)
	}
	// But the network still records: events have several hearers and the
	// staggered phases keep some awake.
	if missHalf > 0.9 {
		t.Errorf("duty-cycled network recorded almost nothing: miss %.3f", missHalf)
	}
}

func TestDutyCycleValidation(t *testing.T) {
	field := acoustics.NewField(1.0)
	defer func() {
		if recover() == nil {
			t.Error("DutyCycle > 1 accepted")
		}
	}()
	NewNetwork(Config{CommRange: 1, DutyCycle: 1.5}, field, []geometry.Point{{}})
}

func TestRandomNodeFailuresDoNotStopTheNetwork(t *testing.T) {
	// Kill a quarter of the nodes at random times; the survivors must
	// keep electing, recording, and balancing, and the run must stay
	// panic-free.
	n := smallScenario(t, ModeFull, 2, 15*time.Minute)
	n.Start()
	killAt := []time.Duration{2 * time.Minute, 5 * time.Minute, 8 * time.Minute, 11 * time.Minute}
	victims := []int{1, 5, 9, 13}
	for i, at := range killAt {
		id := victims[i]
		n.Sched.At(sim.At(at), "kill", func() { n.Kill(id) })
	}
	n.Sched.Run(sim.At(15 * time.Minute))

	// Recording continued after the last kill.
	late := 0
	for _, r := range n.Collector.Recordings {
		if r.Start > sim.At(12*time.Minute) {
			late++
		}
	}
	if late == 0 {
		t.Error("no recordings after the last node failure")
	}
	// Dead nodes recorded nothing past their deaths.
	for i, at := range killAt {
		for _, r := range n.Collector.Recordings {
			if r.Node == victims[i] && r.Start > sim.At(at)+sim.Time(2*time.Second) {
				t.Errorf("dead node %d recorded at %v (killed at %v)", victims[i], r.Start, at)
			}
		}
	}
	// The dead nodes' flash is still readable for post-collection
	// reassembly (they are part of Holdings).
	holdings := n.Holdings()
	if len(holdings) != len(n.Nodes) {
		t.Errorf("holdings covers %d nodes, want %d", len(holdings), len(n.Nodes))
	}
}

func TestMuleGapReRequestFullCycle(t *testing.T) {
	// One-hop collection with a range-limited mule misses far nodes; a
	// spanning-tree round with the gap re-request completes the files.
	field := acoustics.NewField(1.0)
	grid := geometry.Grid{Cols: 6, Rows: 1, Pitch: 2}
	loud := acoustics.LoudnessForRange(12, 1.0) // everyone hears
	field.AddSource(acoustics.StaticSource(1, grid.PointAt(2, 0), sim.At(2*time.Second),
		12*time.Second, loud, acoustics.VoiceTone))
	net := NewGridNetwork(Config{
		Seed: 4, Mode: ModeCooperative, CommRange: 4.5, // two-hop chain
	}, field, grid)
	net.Run(sim.At(30 * time.Second))

	phys := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
	var want int
	for _, f := range phys {
		want += len(f.Chunks)
	}
	if want == 0 {
		t.Skip("nothing recorded")
	}

	mule := retrieval.NewMule(900, grid.PointAt(0, 0), net.Radio, net.Sched)
	mule.Flood(retrieval.Query{All: true}, 1)
	net.Sched.Run(net.Sched.Now().Add(time.Minute))
	if len(mule.Collected) < want {
		// Gap re-request: flood the missing file IDs again.
		q := mule.MissingFiles(500 * time.Millisecond)
		if len(q.Files) > 0 {
			mule.Flood(q, 2)
			net.Sched.Run(net.Sched.Now().Add(time.Minute))
		}
	}
	if len(mule.Collected) < want*9/10 {
		t.Errorf("mule collected %d of %d chunks after gap re-request", len(mule.Collected), want)
	}
}

func TestEnvelopeDetectionRecordsOnlyLoudEvents(t *testing.T) {
	// §II sound-activated recording: with a noisy background and the
	// running-average detector, a loud event triggers recording while a
	// sub-margin one does not.
	field := acoustics.NewField(1.0)
	field.NoiseAmp = 1.0
	grid := geometry.Grid{Cols: 3, Rows: 1, Pitch: 2}
	// The source sits 3 units from the nearest mote (off the grid line),
	// so no node benefits from the near-field clamp.
	srcPos := geometry.Point{X: 2, Y: 3}
	// Quiet source: envelope ~1x noise floor at the nearest node — total
	// level ~2x background, below the 3x margin.
	field.AddSource(acoustics.StaticSource(1, srcPos, sim.At(10*time.Second),
		8*time.Second, 3, acoustics.VoiceTone))
	// Loud source later: envelope ~10x noise floor.
	field.AddSource(acoustics.StaticSource(2, srcPos, sim.At(40*time.Second),
		8*time.Second, 30, acoustics.VoiceTone))
	net := NewGridNetwork(Config{
		Seed: 3, Mode: ModeCooperative, CommRange: 10,
		EnvelopeDetection: true, DetectionMargin: 3,
	}, field, grid)
	net.Run(sim.At(60 * time.Second))

	var quietRecs, loudRecs int
	for _, r := range net.Collector.Recordings {
		switch {
		case r.Start < sim.At(30*time.Second):
			quietRecs++
		case r.Start >= sim.At(39*time.Second):
			loudRecs++
		}
	}
	if quietRecs != 0 {
		t.Errorf("sub-margin event triggered %d recordings", quietRecs)
	}
	if loudRecs == 0 {
		t.Error("loud event never recorded under envelope detection")
	}
}
