package core

import (
	"math/rand"
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/sim"
	"enviromic/internal/task"
)

// TestSoakInvariants runs randomized scenarios across seeds and checks
// system-wide invariants that must hold regardless of protocol timing,
// loss, or workload:
//
//  1. Chunk conservation: every chunk in the network was produced by a
//     recorder (unique identity count never exceeds chunks stored by
//     recording tasks plus preludes), and ACK-loss duplication stays a
//     small fraction of the stored data.
//  2. Wear levelling: every flash store's write-count spread stays <= 1.
//  3. Energy sanity: remaining energy is non-negative and decreases.
//  4. Radio accounting: delivered + lost + dropped plus out-of-range
//     non-deliveries account for every frame sent.
//  5. Chunk integrity: every stored chunk has a valid origin, a
//     non-inverted time span, and a payload within block capacity.
func TestSoakInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			dur := time.Duration(4+rng.Intn(5)) * time.Minute

			// Random mid-size grid and random event mix: static bursts and
			// mobile crossings, some overlapping.
			grid := geometry.Grid{
				Cols:  3 + rng.Intn(3),
				Rows:  2 + rng.Intn(3),
				Pitch: 2,
			}
			field := acoustics.NewField(1)
			field.DetectProb = 0.5 + rng.Float64()*0.5
			var id acoustics.SourceID
			for at := 3 * time.Second; at < dur; at += time.Duration(8+rng.Intn(25)) * time.Second {
				id++
				loud := acoustics.LoudnessForRange((0.8+rng.Float64())*grid.Pitch, 1)
				evDur := time.Duration(1+rng.Intn(8)) * time.Second
				if rng.Intn(3) == 0 {
					a := grid.PointAt(rng.Intn(grid.Cols), rng.Intn(grid.Rows))
					b := grid.PointAt(rng.Intn(grid.Cols), rng.Intn(grid.Rows))
					if a == b {
						b.X += grid.Pitch
					}
					field.AddSource(acoustics.MobileSource(id, a, b, sim.At(at), evDur, loud, acoustics.VoiceRumble))
				} else {
					p := grid.PointAt(rng.Intn(grid.Cols), rng.Intn(grid.Rows))
					field.AddSource(acoustics.StaticSource(id, p, sim.At(at), evDur, loud, acoustics.VoiceTone))
				}
			}

			gcfg := group.DefaultConfig()
			if rng.Intn(2) == 0 {
				gcfg.Prelude = time.Second
			}
			var producedChunks int
			cfg := Config{
				Seed:               seed,
				Mode:               ModeFull,
				BetaMax:            2 + float64(rng.Intn(3)),
				CommRange:          float64(3+rng.Intn(4)) * grid.Pitch,
				LossProb:           rng.Float64() * 0.3,
				FlashBlocks:        48 + rng.Intn(100),
				CompressMigrations: rng.Intn(2) == 0,
				TimeSync:           rng.Intn(2) == 0,
				MaxClockDriftPPM:   50,
				Group:              &gcfg,
				TaskProbe: task.Probe{
					OnRecordEnd: func(_ int, _ flash.FileID, _, _ sim.Time, stored, _ int) {
						producedChunks += stored
					},
				},
			}
			net := NewGridNetwork(cfg, field, grid)
			net.Run(sim.At(dur))

			// --- invariant 1: chunk conservation ------------------------
			type key struct {
				f flash.FileID
				o int32
				s uint32
			}
			copies := map[key]int{}
			stored := 0
			for _, node := range net.Nodes {
				for _, c := range node.Mote.Store.Chunks() {
					copies[key{c.File, c.Origin, c.Seq}]++
					stored++
				}
			}
			// Preludes also produce chunks outside the task probe: a kept
			// 1 s prelude is ~13 chunks, and a rare claim race can persist
			// it on two nodes.
			preludeAllowance := int(id) * 13 * 2
			if len(copies) > producedChunks+preludeAllowance {
				t.Errorf("unique chunks %d exceed produced %d (+%d prelude allowance)",
					len(copies), producedChunks, preludeAllowance)
			}
			// Duplication happens when a migration's final ACK is lost
			// after the receiver stored the chunk (each copy can then
			// duplicate again on later hops), so a per-chunk bound is
			// probabilistic, not hard. Bound total duplication instead.
			dups := 0
			for _, n := range copies {
				dups += n - 1
			}
			// At ~30% loss a migration hop duplicates with probability
			// ~6% (all ACKs of a session-chunk lost while data landed),
			// and chunks hop several times; cap the aggregate at 25%.
			if limit := stored/4 + 8; dups > limit {
				t.Errorf("%d duplicate copies among %d stored chunks (limit %d)", dups, stored, limit)
			}

			// --- invariant 2: wear levelling ----------------------------
			for _, node := range net.Nodes {
				if spread := node.Mote.Store.WearSpread(); spread > 1 {
					t.Errorf("node %d wear spread %d", node.ID, spread)
				}
			}

			// --- invariant 3: energy ------------------------------------
			for _, node := range net.Nodes {
				if rem := node.Mote.Energy.Remaining(net.Sched.Now()); rem < 0 {
					t.Errorf("node %d negative energy %v", node.ID, rem)
				}
			}

			// --- invariant 4: radio accounting --------------------------
			st := net.Radio.Stats()
			perFrameMax := uint64(len(net.Nodes)) // mule-free runs: ≤ n−1 receivers
			if st.Delivered+st.Lost+st.DroppedRadioOff > st.TotalFrames*perFrameMax {
				t.Errorf("radio accounting: %d outcomes for %d frames",
					st.Delivered+st.Lost+st.DroppedRadioOff, st.TotalFrames)
			}

			// --- invariant 5: chunk integrity ---------------------------
			for _, node := range net.Nodes {
				for _, c := range node.Mote.Store.Chunks() {
					if c.Origin < 0 || int(c.Origin) >= len(net.Nodes) {
						t.Errorf("chunk with alien origin %d", c.Origin)
					}
					if c.End < c.Start {
						t.Errorf("chunk with inverted span %v..%v", c.Start, c.End)
					}
					if len(c.Data) > flash.PayloadSize {
						t.Errorf("chunk payload %d exceeds capacity", len(c.Data))
					}
				}
			}

			if stored == 0 && producedChunks > 0 {
				t.Error("all produced chunks vanished from the network")
			}
		})
	}
}
