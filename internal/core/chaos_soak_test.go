package core_test

import (
	"testing"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/experiments"
	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
)

// TestChaosSoakQuarterDead extends the soak suite with the harshest
// scripted scenario the paper's deployment should survive: 25% of the
// nodes crash mid-run while a loss burst triples the frame loss rate.
// The run must keep every protocol invariant, satisfy the tier-1 soak
// properties (wear, energy, chunk integrity), and lose retrieval
// completeness only through chunks whose every copy sat on dead flash.
func TestChaosSoakQuarterDead(t *testing.T) {
	opts := experiments.QuickIndoorOpts()
	sc := &chaos.Scenario{Name: "quarter-dead", Seed: 5}
	// 12 of the 48 grid nodes die, staggered through the middle of the
	// run; spacing them avoids modeling a single correlated blackout.
	deadSet := map[int]bool{}
	for i := 0; i < 12; i++ {
		id := i * 4
		deadSet[id] = true
		sc.Faults = append(sc.Faults, chaos.Fault{
			Kind: chaos.KindCrash,
			At:   3*time.Minute + time.Duration(i)*5*time.Second,
			Node: id,
		})
	}
	sc.Faults = append(sc.Faults, chaos.Fault{
		Kind: chaos.KindLoss, From: 3 * time.Minute, To: 6 * time.Minute, Prob: 0.15, Node: -1,
	})

	res, err := experiments.RunIndoorChaos(
		experiments.IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2},
		opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	net := res.Net

	// Protocol invariants held through the kills and the burst.
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("invariants broke under 25%% node death:\n%s", res.Checker.Report())
	}
	if res.Checker.Events() == 0 {
		t.Fatal("checker saw no events; the soak is vacuous")
	}

	// Exactly the scripted nodes are down.
	for _, node := range net.Nodes {
		if deadSet[node.ID] == node.Mote.Alive() {
			t.Errorf("node %d alive=%v, scripted dead=%v", node.ID, node.Mote.Alive(), deadSet[node.ID])
		}
	}

	// Tier-1 soak properties, post-chaos.
	for _, node := range net.Nodes {
		if spread := node.Mote.Store.WearSpread(); spread > 1 {
			t.Errorf("node %d wear spread %d", node.ID, spread)
		}
		if rem := node.Mote.Energy.Remaining(net.Sched.Now()); rem < 0 {
			t.Errorf("node %d negative energy %v", node.ID, rem)
		}
		for _, c := range node.Mote.Store.Chunks() {
			if c.Origin < 0 || int(c.Origin) >= len(net.Nodes) {
				t.Errorf("chunk with alien origin %d", c.Origin)
			}
			if c.End < c.Start {
				t.Errorf("chunk with inverted span %v..%v", c.Start, c.End)
			}
		}
	}

	// Completeness degrades only by dead nodes' unreplicated chunks:
	// reassembling over the survivors alone must recover every chunk
	// that has at least one copy on live flash — the collection step
	// simply skips dead motes, it does not lose replicated data.
	type key struct {
		f flash.FileID
		o int32
		s uint32
	}
	full, live := net.Holdings(), map[int][]*flash.Chunk{}
	liveUnion := map[key]bool{}
	storedLive := 0
	for id, chunks := range full {
		if deadSet[id] {
			continue
		}
		live[id] = chunks
		storedLive += len(chunks)
		for _, c := range chunks {
			liveUnion[key{c.File, c.Origin, c.Seq}] = true
		}
	}
	if storedLive == 0 {
		t.Fatal("survivors hold nothing; the scenario starved the network")
	}
	recovered := map[key]bool{}
	for _, f := range retrieval.Reassemble(live, retrieval.Query{All: true}) {
		for _, c := range f.Chunks {
			recovered[key{c.File, c.Origin, c.Seq}] = true
		}
	}
	for k := range liveUnion {
		if !recovered[k] {
			t.Errorf("chunk %+v survives on live flash but is missing from survivor retrieval", k)
		}
	}
	for k := range recovered {
		if !liveUnion[k] {
			t.Errorf("survivor retrieval invented chunk %+v", k)
		}
	}
}
