package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/metrics"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
)

// shardScenario builds a 16-node 8x2 strip whose width spans several
// radio cell columns, so a sharded run actually has boundary traffic
// (CommRange 6 against a 28-unit-wide deployment gives 5 columns).
// Events fire near the two ends, each audible to a 4-node whitelist.
func shardScenario(shards int, dur time.Duration, tr *obs.Tracer) *Network {
	field := acoustics.NewField(1.0)
	spots := []geometry.Point{{X: 2, Y: 2}, {X: 26, Y: 2}}
	whitelists := [][]int{{0, 1, 8, 9}, {6, 7, 14, 15}}
	rng := sim.NewScheduler(99).Rand()
	var id acoustics.SourceID
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() * float64(20*time.Second))
		if t >= dur {
			break
		}
		id++
		which := int(id) % len(spots)
		src := acoustics.StaticSource(id, spots[which], sim.At(t),
			3*time.Second+time.Duration(rng.Int63n(int64(4*time.Second))), 100, acoustics.VoiceTone)
		src.Whitelist = map[int]bool{}
		for _, n := range whitelists[which] {
			src.Whitelist[n] = true
		}
		field.AddSource(src)
	}
	grid := geometry.Grid{Cols: 8, Rows: 2, Pitch: 4}
	cfg := Config{
		Seed:         42,
		Shards:       shards,
		Mode:         ModeFull,
		CommRange:    6,
		LossProb:     0.02,
		FlashBlocks:  96,
		BetaMax:      2,
		SamplePeriod: 30 * time.Second,
		Tracer:       tr,
	}
	return NewGridNetwork(cfg, field, grid)
}

// fingerprint serializes everything a figure could be computed from:
// flash holdings chunk by chunk, the collector's event lists, the
// periodic samples, and the radio counters.
func fingerprint(n *Network) string {
	var b strings.Builder
	// Same-instant collector entries carry no meaningful relative order —
	// serial appends in execution order, sharded in (time, node) order —
	// and every figure aggregates them per time bucket. Normalize both to
	// the sharded order so the comparison checks content, not tie order.
	recs := append([]metrics.Recording(nil), n.Collector.Recordings...)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].End != recs[j].End {
			return recs[i].End < recs[j].End
		}
		if recs[i].Node != recs[j].Node {
			return recs[i].Node < recs[j].Node
		}
		return recs[i].File < recs[j].File
	})
	migs := append([]metrics.Migration(nil), n.Collector.Migrations...)
	sort.SliceStable(migs, func(i, j int) bool {
		if migs[i].At != migs[j].At {
			return migs[i].At < migs[j].At
		}
		if migs[i].From != migs[j].From {
			return migs[i].From < migs[j].From
		}
		return migs[i].To < migs[j].To
	})
	ovfs := append([]sim.Time(nil), n.Collector.Overflows...)
	sort.SliceStable(ovfs, func(i, j int) bool { return ovfs[i] < ovfs[j] })
	for _, r := range recs {
		fmt.Fprintf(&b, "rec n=%d f=%d [%d,%d) frac=%.6f\n", r.Node, r.File, r.Start, r.End, r.StoredFrac)
	}
	for _, m := range migs {
		fmt.Fprintf(&b, "mig %d->%d x%d @%d\n", m.From, m.To, m.Chunks, m.At)
	}
	for _, at := range ovfs {
		fmt.Fprintf(&b, "ovf @%d\n", at)
	}
	for _, s := range n.Collector.Samples {
		fmt.Fprintf(&b, "sample @%d dup=%d\n", s.At, s.DuplicateChunks)
		ids := make([]int, 0, len(s.StoredBytes))
		for id := range s.StoredBytes {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "  stored %d=%d tx=%d\n", id, s.StoredBytes[id], s.TxByNode[id])
		}
		kinds := make([]string, 0, len(s.TxByKind))
		for k := range s.TxByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "  kind %s=%d\n", k, s.TxByKind[k])
		}
	}
	for _, node := range n.Nodes {
		fmt.Fprintf(&b, "node %d:\n", node.ID)
		for _, c := range node.Mote.Store.Chunks() {
			h := fnv.New64a()
			h.Write(c.Data)
			fmt.Fprintf(&b, "  chunk f=%d o=%d s=%d [%d,%d) %x\n",
				c.File, c.Origin, c.Seq, c.Start, c.End, h.Sum64())
		}
	}
	st := n.Radio.Stats()
	fmt.Fprintf(&b, "radio frames=%d bytes=%d delivered=%d lost=%d off=%d part=%d\n",
		st.TotalFrames, st.TotalBytes, st.Delivered, st.Lost, st.DroppedRadioOff, st.DroppedPartition)
	return b.String()
}

// diffLine returns the first line where two fingerprints diverge, for
// readable failures.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:  %q\n  sharded: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}

// TestShardedMatchesSerial is the keystone determinism check: the same
// scenario run serially and with 2, 4, and 8 shards must produce
// bit-identical holdings, metrics, and radio counters.
func TestShardedMatchesSerial(t *testing.T) {
	const dur = 4 * time.Minute
	serial := shardScenario(0, dur, nil)
	serial.Run(sim.At(dur))
	want := fingerprint(serial)
	if !strings.Contains(want, "chunk") {
		t.Fatal("serial run recorded nothing; scenario is too quiet to be a determinism check")
	}
	for _, shards := range []int{2, 4, 8} {
		n := shardScenario(shards, dur, nil)
		n.Run(sim.At(dur))
		if got := fingerprint(n); got != want {
			t.Errorf("shards=%d diverged from serial: %s", shards, diffLine(want, got))
		}
	}
}
