package workload

import (
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

func TestIndoorGridMatchesPaper(t *testing.T) {
	g := IndoorGrid()
	if g.NumNodes() != 48 || g.Cols != 8 || g.Rows != 6 || g.Pitch != 2 {
		t.Errorf("indoor grid = %+v", g)
	}
	if VoiceGrid().NumNodes() != 28 {
		t.Errorf("voice grid = %+v", VoiceGrid())
	}
}

func TestNearestNodes(t *testing.T) {
	g := geometry.Grid{Cols: 3, Rows: 3, Pitch: 1}
	got := NearestNodes(g, g.PointAt(1, 1), 1)
	if len(got) != 1 || got[0] != g.Index(1, 1) {
		t.Errorf("nearest = %v", got)
	}
	got = NearestNodes(g, g.PointAt(0, 0), 3)
	if len(got) != 3 || got[0] != 0 {
		t.Errorf("nearest-3 = %v", got)
	}
	// k larger than grid clamps.
	if got := NearestNodes(g, geometry.Point{}, 99); len(got) != 9 {
		t.Errorf("clamped k = %d", len(got))
	}
}

func TestGeneratePoissonStatistics(t *testing.T) {
	grid := IndoorGrid()
	field := acoustics.NewField(1)
	cfg := DefaultPoisson(grid)
	n := GeneratePoisson(field, grid, cfg)
	// E[count] = 4400/20 = 220; allow generous slack.
	if n < 170 || n > 270 {
		t.Errorf("generated %d events, expected ~220", n)
	}
	var total time.Duration
	for _, src := range field.Sources() {
		d := src.End.Sub(src.Start)
		if d < cfg.MinDur || d >= cfg.MaxDur {
			t.Fatalf("event duration %v outside [%v,%v)", d, cfg.MinDur, cfg.MaxDur)
		}
		if len(src.Whitelist) != 4 {
			t.Fatalf("event has %d hearers, want 4", len(src.Whitelist))
		}
		if src.Start >= sim.At(cfg.Until) {
			t.Fatalf("event starts after Until")
		}
		total += d
	}
	// Average total ≈ 220 × 5 s = 1100 s (25% of 4400 s).
	if total < 800*time.Second || total > 1500*time.Second {
		t.Errorf("total event time %v, expected ~1100s", total)
	}
}

func TestGeneratePoissonDeterministic(t *testing.T) {
	grid := IndoorGrid()
	f1, f2 := acoustics.NewField(1), acoustics.NewField(1)
	n1 := GeneratePoisson(f1, grid, DefaultPoisson(grid))
	n2 := GeneratePoisson(f2, grid, DefaultPoisson(grid))
	if n1 != n2 {
		t.Fatalf("event counts differ: %d vs %d", n1, n2)
	}
	for i := range f1.Sources() {
		a, b := f1.Sources()[i], f2.Sources()[i]
		if a.Start != b.Start || a.End != b.End {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratePoissonValidation(t *testing.T) {
	grid := IndoorGrid()
	cfg := DefaultPoisson(grid)
	cfg.MeanGap = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid config accepted")
		}
	}()
	GeneratePoisson(acoustics.NewField(1), grid, cfg)
}

func TestMobileCrossing(t *testing.T) {
	grid := IndoorGrid()
	field := acoustics.NewField(1)
	src := AddMobileCrossing(field, grid, 1, sim.At(time.Second))
	if src.End.Sub(src.Start) != 9*time.Second {
		t.Errorf("crossing duration = %v, want 9s", src.End.Sub(src.Start))
	}
	// Sensing range ≈ one grid length.
	if got := src.SensingRange(field.Threshold); got != grid.Pitch {
		t.Errorf("sensing range = %v, want %v", got, grid.Pitch)
	}
	// Speed = one grid length per second.
	p0 := src.PositionAt(sim.At(time.Second))
	p1 := src.PositionAt(sim.At(2 * time.Second))
	if d := p0.Dist(p1); d != grid.Pitch {
		t.Errorf("speed = %v per second, want %v", d, grid.Pitch)
	}
}

func TestVoiceWalk(t *testing.T) {
	grid := VoiceGrid()
	field := acoustics.NewField(1)
	src := AddVoiceWalk(field, grid, 1, 0)
	if src.Voice != acoustics.VoiceSpeech {
		t.Errorf("voice = %v", src.Voice)
	}
	if src.End.Sub(src.Start) != 6*time.Second {
		t.Errorf("walk duration = %v, want 6s (6 grid lengths)", src.End.Sub(src.Start))
	}
}

func TestForestPositions(t *testing.T) {
	pts := ForestPositions(2006)
	if len(pts) != ForestNodes {
		t.Fatalf("%d positions", len(pts))
	}
	for i, p := range pts {
		if p.X < 0 || p.X > ForestSide || p.Y < 0 || p.Y > ForestSide {
			t.Errorf("position %d outside deployment: %v", i, p)
		}
	}
	// Irregular: no two nodes at identical positions, and not on a grid.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i] == pts[j] {
				t.Errorf("duplicate positions %d/%d", i, j)
			}
		}
	}
	// Deterministic.
	again := ForestPositions(2006)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("positions not deterministic")
		}
	}
}

func TestGenerateForestSchedule(t *testing.T) {
	field := acoustics.NewField(1)
	cfg := DefaultForest()
	n := GenerateForest(field, cfg)
	if n < 50 {
		t.Fatalf("forest generated only %d sources", n)
	}
	var inSpike2Long int
	var maxDur time.Duration
	for _, src := range field.Sources() {
		d := src.End.Sub(src.Start)
		if d > maxDur {
			maxDur = d
		}
		if src.Start >= sim.At(cfg.Spike2Start) && src.Start < sim.At(cfg.Spike2End) && d > 30*time.Second {
			inSpike2Long++
		}
	}
	// The paper observed events up to 73 s in the machinery spike.
	if maxDur < 40*time.Second || maxDur > 73*time.Second {
		t.Errorf("max event duration = %v, expected long machinery events <= 73s", maxDur)
	}
	if inSpike2Long == 0 {
		t.Error("no long events during the machinery spike")
	}
	// Spike windows should be denser than background: compare event
	// seconds per minute inside spike 1 vs a quiet window.
	eventSecs := func(lo, hi time.Duration) float64 {
		var s float64
		for _, src := range field.Sources() {
			start, end := src.Start.Duration(), src.End.Duration()
			if end > lo && start < hi {
				a, b := start, end
				if a < lo {
					a = lo
				}
				if b > hi {
					b = hi
				}
				s += (b - a).Seconds()
			}
		}
		return s
	}
	spike := eventSecs(cfg.Spike1Start, cfg.Spike1End)
	quiet := eventSecs(10*time.Minute, 20*time.Minute)
	if spike <= quiet {
		t.Errorf("spike-1 activity (%.0fs) not above background (%.0fs)", spike, quiet)
	}
}
