package workload

import (
	"math/rand"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// Forest deployment constants (§IV-C): 36 motes over ~105×105 ft attached
// to trees at irregular positions; a road runs along the west side; a
// trail crosses the interior.
const (
	ForestNodes = 36
	ForestSide  = 105.0
)

// ForestPositions returns 36 deterministic "irregular" tree positions: a
// jittered 6×6 layout, like the hand-reconstructed map in Fig 15(a).
func ForestPositions(seed int64) []geometry.Point {
	rng := rand.New(rand.NewSource(seed))
	pitch := ForestSide / 6.0
	out := make([]geometry.Point, 0, ForestNodes)
	for row := 0; row < 6; row++ {
		for col := 0; col < 6; col++ {
			jx := (rng.Float64() - 0.5) * pitch * 0.7
			jy := (rng.Float64() - 0.5) * pitch * 0.7
			out = append(out, geometry.Point{
				X: (float64(col)+0.5)*pitch + jx,
				Y: (float64(row)+0.5)*pitch + jy,
			})
		}
	}
	return out
}

// ForestConfig parameterizes the 3-hour outdoor schedule.
type ForestConfig struct {
	Seed int64
	// Duration of the whole experiment (paper: 3 h, 10:45–13:45).
	Duration time.Duration
	// Spike1Start/End is the human-activity burst (paper: 11:30–11:40,
	// i.e. offsets 45–55 min).
	Spike1Start, Spike1End time.Duration
	// Spike2Start/End is the heavy-machinery burst with very long events
	// (paper: 12:15–12:45 with events up to 73 s).
	Spike2Start, Spike2End time.Duration
	// Threshold must match the field's detection threshold (for sensing
	// ranges).
	Threshold float64
}

// DefaultForest mirrors §IV-C.
func DefaultForest() ForestConfig {
	return ForestConfig{
		Seed:        2006,
		Duration:    3 * time.Hour,
		Spike1Start: 45 * time.Minute,
		Spike1End:   55 * time.Minute,
		Spike2Start: 90 * time.Minute,
		Spike2End:   120 * time.Minute,
		Threshold:   1,
	}
}

// GenerateForest populates the field with the outdoor soundscape:
//
//   - vehicles passing on the west road throughout the day (mobile
//     sources along x≈0), the western hot-spot of Fig 17;
//   - sporadic bird calls along the trail (the second hot-spot);
//   - the two activity spikes of Fig 16.
//
// It returns the number of sources added.
func GenerateForest(field *acoustics.Field, cfg ForestConfig) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var id acoustics.SourceID
	n := 0
	add := func(src *acoustics.Source) {
		field.AddSource(src)
		n++
	}

	// Road traffic: a vehicle every ~6 min on average, driving the west
	// edge south→north in ~15 s, audible ~25 ft.
	roadLoud := acoustics.LoudnessForRange(25, cfg.Threshold)
	for t := time.Duration(0); t < cfg.Duration; {
		t += time.Duration(rng.ExpFloat64() * float64(6*time.Minute))
		if t >= cfg.Duration {
			break
		}
		id++
		dur := 12*time.Second + time.Duration(rng.Int63n(int64(8*time.Second)))
		add(acoustics.MobileSource(id,
			geometry.Point{X: 3, Y: 0}, geometry.Point{X: 3, Y: ForestSide},
			sim.At(t), dur, roadLoud, acoustics.VoiceRumble))
	}

	// Trail wildlife: bird calls near the diagonal trail, every ~4 min,
	// 2–8 s, audible ~18 ft.
	birdLoud := acoustics.LoudnessForRange(18, cfg.Threshold)
	for t := time.Duration(0); t < cfg.Duration; {
		t += time.Duration(rng.ExpFloat64() * float64(4*time.Minute))
		if t >= cfg.Duration {
			break
		}
		id++
		f := rng.Float64()
		pos := geometry.Point{ // the trail runs from mid-south to north-east
			X: 40 + f*55 + (rng.Float64()-0.5)*10,
			Y: 10 + f*85 + (rng.Float64()-0.5)*10,
		}
		dur := 2*time.Second + time.Duration(rng.Int63n(int64(6*time.Second)))
		add(acoustics.StaticSource(id, pos, sim.At(t), dur, birdLoud, acoustics.VoiceTone))
	}

	// Spike 1: people working in the forest interior — frequent speech
	// events.
	speechLoud := acoustics.LoudnessForRange(22, cfg.Threshold)
	for t := cfg.Spike1Start; t < cfg.Spike1End; {
		t += time.Duration(rng.ExpFloat64() * float64(25*time.Second))
		if t >= cfg.Spike1End {
			break
		}
		id++
		pos := geometry.Point{X: 30 + rng.Float64()*40, Y: 30 + rng.Float64()*40}
		dur := 3*time.Second + time.Duration(rng.Int63n(int64(9*time.Second)))
		add(acoustics.StaticSource(id, pos, sim.At(t), dur, speechLoud, acoustics.VoiceSpeech))
	}

	// Spike 2: heavy agrarian machinery on the neighboring road — long
	// (up to 73 s) loud rumbles.
	machineLoud := acoustics.LoudnessForRange(40, cfg.Threshold)
	for t := cfg.Spike2Start; t < cfg.Spike2End; {
		t += time.Duration(rng.ExpFloat64() * float64(2*time.Minute))
		if t >= cfg.Spike2End {
			break
		}
		id++
		dur := 20*time.Second + time.Duration(rng.Int63n(int64(53*time.Second)))
		add(acoustics.MobileSource(id,
			geometry.Point{X: 1, Y: ForestSide}, geometry.Point{X: 1, Y: 0},
			sim.At(t), dur, machineLoud, acoustics.VoiceRumble))
	}
	return n
}
