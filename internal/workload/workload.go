// Package workload generates the acoustic scenarios of the paper's
// evaluation (§IV): the 8×6 indoor testbed grid with controlled Poisson
// events restricted to four hearers each, the mobile target crossings of
// Figs 6–7, the walking speaker of Fig 8, and the 36-mote forest
// deployment of §IV-C with its road, trail, and the two observed activity
// spikes.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// IndoorGrid is the paper's indoor testbed: 48 MicaZ motes in an 8×6 grid
// with 2 ft pitch (§IV).
func IndoorGrid() geometry.Grid {
	return geometry.Grid{Cols: 8, Rows: 6, Pitch: 2}
}

// VoiceGrid is the 7×4 grid used for the Fig 8 voice experiment.
func VoiceGrid() geometry.Grid {
	return geometry.Grid{Cols: 7, Rows: 4, Pitch: 2}
}

// NearestNodes returns the k node indices of the grid closest to p
// (deterministic tie-break by index).
func NearestNodes(grid geometry.Grid, p geometry.Point, k int) []int {
	type cand struct {
		id   int
		dist float64
	}
	pts := grid.Points()
	cands := make([]cand, len(pts))
	for i, q := range pts {
		cands[i] = cand{i, q.Dist(p)}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].dist < cands[j-1].dist ||
			(cands[j].dist == cands[j-1].dist && cands[j].id < cands[j-1].id)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// PoissonConfig parameterizes the §IV-B controlled event generator.
type PoissonConfig struct {
	// Seed drives the event process (independent of the network seed so
	// the same workload can be replayed against different modes).
	Seed int64
	// Until bounds event start times.
	Until time.Duration
	// MeanGap is the Poisson inter-arrival expectation (paper: 20 s).
	MeanGap time.Duration
	// MinDur/MaxDur bound the uniform event duration (paper: 3–7 s).
	MinDur, MaxDur time.Duration
	// Spots are the acoustic source positions (paper: two laptops).
	Spots []geometry.Point
	// HearersPerEvent restricts audibility to the k nodes nearest the
	// spot (paper: 4). Zero disables the restriction.
	HearersPerEvent int
	// Loudness of each event (defaults to 100: clearly above threshold
	// for whitelisted listeners).
	Loudness float64
	// Voice selects the waveform family (defaults to VoiceTone).
	Voice acoustics.VoiceKind
}

// DefaultPoisson mirrors §IV-B: ~220 events over 4400 s, E[gap] = 20 s,
// dur U[3,7] s, two sources, four hearers each.
func DefaultPoisson(grid geometry.Grid) PoissonConfig {
	return PoissonConfig{
		Seed:            1,
		Until:           4400 * time.Second,
		MeanGap:         20 * time.Second,
		MinDur:          3 * time.Second,
		MaxDur:          7 * time.Second,
		Spots:           []geometry.Point{grid.PointAt(1, 1), grid.PointAt(6, 4)},
		HearersPerEvent: 4,
		Loudness:        100,
		Voice:           acoustics.VoiceTone,
	}
}

// GeneratePoisson populates the field with the §IV-B event process and
// returns the number of events generated.
func GeneratePoisson(field *acoustics.Field, grid geometry.Grid, cfg PoissonConfig) int {
	if cfg.MeanGap <= 0 || cfg.MaxDur < cfg.MinDur || cfg.MinDur <= 0 {
		panic(fmt.Sprintf("workload: invalid poisson config %+v", cfg))
	}
	if cfg.Loudness == 0 {
		cfg.Loudness = 100
	}
	if cfg.Voice == 0 {
		cfg.Voice = acoustics.VoiceTone
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var id acoustics.SourceID
	t := time.Duration(0)
	n := 0
	for {
		t += time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		if t >= cfg.Until {
			return n
		}
		dur := cfg.MinDur
		if cfg.MaxDur > cfg.MinDur {
			dur += time.Duration(rng.Int63n(int64(cfg.MaxDur - cfg.MinDur)))
		}
		id++
		spot := cfg.Spots[rng.Intn(len(cfg.Spots))]
		src := acoustics.StaticSource(id, spot, sim.At(t), dur, cfg.Loudness, cfg.Voice)
		if cfg.HearersPerEvent > 0 {
			src.Whitelist = make(map[int]bool, cfg.HearersPerEvent)
			for _, node := range NearestNodes(grid, spot, cfg.HearersPerEvent) {
				src.Whitelist[node] = true
			}
		}
		field.AddSource(src)
		n++
	}
}

// AddMobileCrossing adds the Fig 6/7 workload: an acoustic target moving
// across the middle row of the grid at one grid length per second for 9
// seconds, with its volume set so the sensing range is about one grid
// length.
func AddMobileCrossing(field *acoustics.Field, grid geometry.Grid, id acoustics.SourceID, start sim.Time) *acoustics.Source {
	row := grid.Rows / 2
	from := grid.PointAt(0, row)
	to := grid.PointAt(grid.Cols-1, row)
	// Speed: one grid length per second across the row ((Cols−1) lengths),
	// then the 9 s event ends near the last column (the path pins there),
	// so the source stays audible to the grid for its entire duration as
	// in the paper's runs.
	dur := 9 * time.Second
	loud := acoustics.LoudnessForRange(grid.Pitch, field.Threshold)
	src := &acoustics.Source{
		ID: id,
		Path: geometry.NewPath(
			geometry.PathPoint{T: 0, P: from},
			geometry.PathPoint{T: float64(grid.Cols - 1), P: to},
		),
		Start:    start,
		End:      start.Add(dur),
		Loudness: loud,
		Voice:    acoustics.VoiceRumble,
	}
	field.AddSource(src)
	return src
}

// AddVoiceWalk adds the Fig 8 workload: a person reading the paper title
// while walking across the 7×4 grid at one grid length per second. The
// returned source uses the speech waveform so the stitched recording has
// recognizable syllabic structure.
func AddVoiceWalk(field *acoustics.Field, grid geometry.Grid, id acoustics.SourceID, start sim.Time) *acoustics.Source {
	row := grid.Rows / 2
	from := grid.PointAt(0, row)
	to := grid.PointAt(grid.Cols-1, row)
	dur := time.Duration(grid.Cols-1) * time.Second
	loud := acoustics.LoudnessForRange(1.5*grid.Pitch, field.Threshold)
	src := acoustics.MobileSource(id, from, to, start, dur, loud, acoustics.VoiceSpeech)
	field.AddSource(src)
	return src
}
