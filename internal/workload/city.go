package workload

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// CityConfig parameterizes the 10k-mote city scenario: a square street
// grid of Blocks×Blocks city blocks with motes mounted every Spacing
// units along the streets (lamp posts), street-corner and sidewalk
// acoustic events, and a handful of "mule" vehicles that continuously
// drive the avenues. The scenario exists to exercise the sharded engine
// at a scale the paper's testbeds never reached; its acoustics reuse the
// same source model as the indoor and forest workloads.
type CityConfig struct {
	// Seed drives the event process (independent of the network seed).
	Seed int64
	// Blocks is the number of city blocks per side (default 20).
	Blocks int
	// BlockSize is the edge length of one block in deployment units
	// (default 100).
	BlockSize float64
	// Spacing is the mote pitch along streets (default 8). The defaults
	// give (Blocks*BlockSize/Spacing+1) motes per street line and
	// 2*(Blocks+1) street lines ≈ 10.4k motes after intersection dedup.
	Spacing float64
	// Duration bounds event start times.
	Duration time.Duration
	// EventGap is the mean Poisson gap between street events
	// (default 5 s — roughly one event live at any moment).
	EventGap time.Duration
	// Mules is the number of vehicles continuously crossing the city
	// (default 4). Each drives a street end to end, rests, and goes
	// again on another street for the whole Duration.
	Mules int
	// Threshold must match the field's detection threshold.
	Threshold float64
}

// DefaultCity returns the 10k-mote configuration used by the city
// benchmark: a 20×20-block downtown, motes every 8 units of street.
func DefaultCity() CityConfig {
	return CityConfig{
		Seed:      11,
		Blocks:    20,
		BlockSize: 100,
		Spacing:   8,
		Duration:  time.Hour,
		EventGap:  5 * time.Second,
		Mules:     4,
		Threshold: 1,
	}
}

func (c *CityConfig) applyDefaults() {
	if c.Blocks == 0 {
		c.Blocks = 20
	}
	if c.BlockSize == 0 {
		c.BlockSize = 100
	}
	if c.Spacing == 0 {
		c.Spacing = 8
	}
	if c.EventGap == 0 {
		c.EventGap = 5 * time.Second
	}
	if c.Mules == 0 {
		c.Mules = 4
	}
	if c.Threshold == 0 {
		c.Threshold = 1
	}
	if c.Blocks < 1 || c.BlockSize <= 0 || c.Spacing <= 0 ||
		c.Spacing > c.BlockSize || c.Duration <= 0 {
		panic(fmt.Sprintf("workload: invalid city config %+v", *c))
	}
}

// Side returns the city's edge length.
func (c CityConfig) Side() float64 {
	c.applyDefaults()
	return float64(c.Blocks) * c.BlockSize
}

// CityPositions returns the mote positions: one mote every Spacing units
// along every street line (horizontal streets south to north, then
// vertical avenues west to east), with street intersections deduplicated.
// The order — and therefore the node-ID assignment — is deterministic.
func CityPositions(cfg CityConfig) []geometry.Point {
	cfg.applyDefaults()
	side := cfg.Side()
	steps := int(side / cfg.Spacing)
	// Lattice coordinates are products of exact multiplicands, so float
	// equality is exact and a position map dedups intersections safely.
	seen := make(map[geometry.Point]bool)
	var out []geometry.Point
	add := func(x, y float64) {
		p := geometry.Point{X: x, Y: y}
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
	}
	for row := 0; row <= cfg.Blocks; row++ {
		y := float64(row) * cfg.BlockSize
		for i := 0; i <= steps; i++ {
			add(float64(i)*cfg.Spacing, y)
		}
	}
	for col := 0; col <= cfg.Blocks; col++ {
		x := float64(col) * cfg.BlockSize
		for i := 0; i <= steps; i++ {
			add(x, float64(i)*cfg.Spacing)
		}
	}
	return out
}

// GenerateCity populates the field with the city soundscape and returns
// the number of sources added:
//
//   - street events (conversations, dogs, doors: short tonal/speech
//     bursts) at random positions along the streets, Poisson in time;
//   - Mules vehicles driving street lines end to end at ~14 units/s,
//     audible about a quarter block, all day long.
func GenerateCity(field *acoustics.Field, cfg CityConfig) int {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := cfg.Side()
	var id acoustics.SourceID
	n := 0

	// randStreet picks a random point on the street lattice: a street
	// line (horizontal or vertical) and an offset along it.
	randStreet := func() geometry.Point {
		line := float64(rng.Intn(cfg.Blocks+1)) * cfg.BlockSize
		off := rng.Float64() * side
		if rng.Intn(2) == 0 {
			return geometry.Point{X: off, Y: line}
		}
		return geometry.Point{X: line, Y: off}
	}

	// Street events: audible ~2 mote pitches, so each event has a small
	// local audience and groups stay a handful of nodes.
	eventLoud := acoustics.LoudnessForRange(2*cfg.Spacing, cfg.Threshold)
	voices := []acoustics.VoiceKind{acoustics.VoiceSpeech, acoustics.VoiceTone}
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() * float64(cfg.EventGap))
		if t >= cfg.Duration {
			break
		}
		id++
		dur := 3*time.Second + time.Duration(rng.Int63n(int64(7*time.Second)))
		field.AddSource(acoustics.StaticSource(id, randStreet(), sim.At(t), dur,
			eventLoud, voices[rng.Intn(len(voices))]))
		n++
	}

	// Mules: each crossing takes side/speed seconds; between crossings
	// the mule rests for a random minute or two, then picks another
	// street. Rumble audible about a quarter block.
	const muleSpeed = 14.0
	muleLoud := acoustics.LoudnessForRange(cfg.BlockSize/4, cfg.Threshold)
	crossing := time.Duration(side / muleSpeed * float64(time.Second))
	for m := 0; m < cfg.Mules; m++ {
		t := time.Duration(rng.Int63n(int64(30 * time.Second)))
		for t < cfg.Duration {
			line := float64(rng.Intn(cfg.Blocks+1)) * cfg.BlockSize
			var a, b geometry.Point
			if rng.Intn(2) == 0 {
				a, b = geometry.Point{X: 0, Y: line}, geometry.Point{X: side, Y: line}
			} else {
				a, b = geometry.Point{X: line, Y: 0}, geometry.Point{X: line, Y: side}
			}
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			id++
			field.AddSource(acoustics.MobileSource(id, a, b, sim.At(t), crossing,
				muleLoud, acoustics.VoiceRumble))
			n++
			t += crossing + time.Minute +
				time.Duration(rng.ExpFloat64()*float64(time.Minute))
		}
	}
	return n
}
