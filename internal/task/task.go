// Package task implements EnviroMic's recording task management
// (§II-A.2, §III-B.2). A group leader periodically selects the most
// suitable member and assigns it a fixed-length recording task with a
// TASK_REQUEST; the member answers TASK_CONFIRM and records with its radio
// off, or TASK_REJECT if it overheard another member's confirmation (the
// overhearing optimization of Fig 1). To make consecutive tasks seamless,
// the leader initiates each assignment Dta — the expected task assignment
// delay — before the previous task ends (Fig 4).
//
// One Service instance runs per node and plays both roles: the leader-side
// assigner when group management promotes the node, and the recorder side
// always.
package task

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Payload kinds (control-overhead accounting keys), interned at package
// init.
var (
	KindRequest = radio.RegisterKind("task.request")
	KindConfirm = radio.RegisterKind("task.confirm")
	KindReject  = radio.RegisterKind("task.reject")
)

// Trace event kinds (see DESIGN.md §11). request/confirm/reject/timeout
// are all leader-side (Node = leader, Peer = member), so request→confirm
// latency pairs on (Node, Peer); confirm V1 = confirmed duration in ns.
// suppress is the member-side overhearing REJECT (Peer = leader, V1 =
// overheard confirms); selfassign marks a leader recording its own task;
// record.start V1 = task duration in ns; record.end V1/V2 = stored/total
// chunks.
var (
	evRequest    = obs.RegisterEvent("task.request")
	evConfirm    = obs.RegisterEvent("task.confirm")
	evReject     = obs.RegisterEvent("task.reject")
	evTimeout    = obs.RegisterEvent("task.timeout")
	evSuppress   = obs.RegisterEvent("task.suppress")
	evSelfAssign = obs.RegisterEvent("task.selfassign")
	evRecStart   = obs.RegisterEvent("task.record.start")
	evRecEnd     = obs.RegisterEvent("task.record.end")
)

// Request is the leader's TASK_REQUEST.
type Request struct {
	File flash.FileID
	Dur  time.Duration
	// LeaderTime is the leader's global-time estimate at transmission;
	// recorders use it as an extra time-sync reference (§III-A).
	LeaderTime sim.Time
	// Copies is the controlled-redundancy factor (§VI): how many members
	// should record this task in parallel. Members use it to decide when
	// overheard confirmations justify a REJECT.
	Copies uint8
}

// Kind implements radio.Payload.
func (Request) Kind() radio.KindID { return KindRequest }

// Size implements radio.Payload.
func (Request) Size() int { return 17 }

// Confirm is the recorder's TASK_CONFIRM.
type Confirm struct {
	File flash.FileID
	Dur  time.Duration
}

// Kind implements radio.Payload.
func (Confirm) Kind() radio.KindID { return KindConfirm }

// Size implements radio.Payload.
func (Confirm) Size() int { return 8 }

// Reject is TASK_REJECT: "someone else already confirmed this round".
type Reject struct {
	File flash.FileID
}

// Kind implements radio.Payload.
func (Reject) Kind() radio.KindID { return KindReject }

// Size implements radio.Payload.
func (Reject) Size() int { return 4 }

// Device abstracts the mote functions the recorder needs.
type Device interface {
	// CaptureSamples returns the ADC stream over [start, end) of true
	// simulation time.
	CaptureSamples(start, end sim.Time) []byte
	// StoreChunks persists chunks to local flash, returning how many fit.
	StoreChunks(chunks []*flash.Chunk) int
}

// TimeSource abstracts the time-sync module.
type TimeSource interface {
	GlobalTime() sim.Time
	LocalNow() sim.Time
	AddReference(local, global sim.Time)
}

// MemberView is how the assigner sees group membership; the group manager
// implements it. BestRecorder returns the most suitable member for the
// next recording task — the paper suggests the member with the highest
// time-to-live or the best signal reception — excluding the given IDs
// (already tried this round).
type MemberView interface {
	BestRecorder(exclude map[int]bool) (id int, ok bool)
	MemberCount() int
}

// Probe carries optional observer callbacks for the metrics layer. All
// fields may be nil. Times are true simulation times.
type Probe struct {
	OnAssign      func(leader, recorder int, file flash.FileID, at sim.Time)
	OnReject      func(leader, rejecter int, file flash.FileID, at sim.Time)
	OnRecordStart func(node int, file flash.FileID, at sim.Time)
	OnRecordEnd   func(node int, file flash.FileID, start, end sim.Time, storedChunks, totalChunks int)
}

// Config holds task-management parameters.
type Config struct {
	// Trc is the recording task period (§IV-A settles on 1.0 s).
	Trc time.Duration
	// Dta is the expected task assignment delay: how far before the end
	// of the current task the leader starts assigning the next one
	// (§IV-A settles on 70 ms).
	Dta time.Duration
	// ConfirmTimeout is how long the leader waits for TASK_CONFIRM before
	// selecting another member.
	ConfirmTimeout time.Duration
	// RejectWindow is how recently a member must have overheard a
	// TASK_CONFIRM to answer a REQUEST with TASK_REJECT (Fig 1). It must
	// cover one assignment round (a few confirm timeouts) but stay well
	// under Trc − Dta, or members would wrongly reject the *next* round's
	// legitimate request.
	RejectWindow time.Duration
	// AllowSelfRecord lets a leader with no other members record the task
	// itself (required for sparse deployments where a single mote hears
	// the event).
	AllowSelfRecord bool
	// MinLeadAge delays the first self-recording after election so that
	// freshly-announced leaders hear at least the first SENSING round
	// before concluding they are alone.
	MinLeadAge time.Duration
	// SelfRecordListen is the radio-on listening gap between consecutive
	// self-recorded tasks; without it a lone leader's radio would be off
	// essentially always and it could never discover newly-arrived
	// members (or a colliding leader).
	SelfRecordListen time.Duration
	// DisableOverhearing turns off the TASK_REJECT overhearing
	// optimization of Fig 1 (ablation knob): members then always answer
	// requests with CONFIRM, so a lost CONFIRM reliably produces a
	// duplicate recorder.
	DisableOverhearing bool
	// Copies is the controlled-redundancy factor the paper leaves as
	// future work (§VI): each task is recorded by this many members in
	// parallel, so a lost or defunct mote does not lose the event.
	// Defaults to 1 (no redundancy).
	Copies int
}

// DefaultConfig uses the values the paper's evaluation settles on.
func DefaultConfig() Config {
	return Config{
		Trc:              time.Second,
		Dta:              70 * time.Millisecond,
		ConfirmTimeout:   60 * time.Millisecond,
		RejectWindow:     100 * time.Millisecond,
		AllowSelfRecord:  true,
		MinLeadAge:       150 * time.Millisecond,
		SelfRecordListen: 200 * time.Millisecond,
	}
}

func (c Config) validate() {
	if c.Trc <= 0 {
		panic("task: Trc must be positive")
	}
	if c.Dta < 0 || c.Dta >= c.Trc {
		panic(fmt.Sprintf("task: Dta %v outside [0, Trc)", c.Dta))
	}
	if c.ConfirmTimeout <= 0 || c.ConfirmTimeout > c.Dta {
		panic(fmt.Sprintf("task: ConfirmTimeout %v outside (0, Dta]", c.ConfirmTimeout))
	}
	if c.RejectWindow <= 0 || c.RejectWindow >= c.Trc-c.Dta {
		panic(fmt.Sprintf("task: RejectWindow %v outside (0, Trc-Dta)", c.RejectWindow))
	}
	if c.MinLeadAge < 0 || c.SelfRecordListen < 0 {
		panic("task: negative self-record timing")
	}
	if c.Copies < 0 {
		panic("task: negative Copies")
	}
}

type confirmSeen struct {
	file flash.FileID
	at   sim.Time
}

// Service is one node's task-management module.
type Service struct {
	cfg   Config
	id    int
	stack *netstack.Stack
	sched *sim.Scheduler
	// rng is the node's private random stream (election backoffs and
	// jitter draws must be per-node so sharded runs replay serially).
	rng   *rand.Rand
	dev   Device
	ts    TimeSource
	view  MemberView
	probe Probe
	tr    *obs.Tracer

	// Leader role.
	leading        bool
	leadSince      sim.Time
	file           flash.FileID
	assignTimer    *sim.Timer
	confirmTimer   *sim.Timer
	pending        int // member awaiting confirm, -1 when none
	tried          map[int]bool
	roundConfirmed int // confirms collected this round (controlled redundancy)
	nextAssignAt   sim.Time

	// Recorder role.
	recording      bool
	recEndTimer    *sim.Timer
	recFile        flash.FileID
	recStart       sim.Time
	recStartG      sim.Time // global-estimate start stamp
	lastConfirm    flash.FileID
	lastConfirmAt  sim.Time
	haveConfirm    bool
	recentConfirms []confirmSeen
	seqByFile      map[flash.FileID]uint32
	onDone         func()
	busy           func() bool
	hearing        func() bool
	onPeerLeader   func(from int) bool
	// curRecorder / curTaskEnd track the member believed to be recording
	// right now, so the next round neither reassigns it (its radio is
	// off) nor lets the leader self-record on top of it.
	curRecorder int
	curTaskEnd  sim.Time
}

// NewService wires a task service onto the node's stack. view may be set
// later via SetView (the group manager is constructed afterwards).
func NewService(id int, stack *netstack.Stack, sched *sim.Scheduler, dev Device, ts TimeSource, cfg Config, probe Probe) *Service {
	cfg.validate()
	s := &Service{
		cfg:         cfg,
		id:          id,
		stack:       stack,
		sched:       sched,
		rng:         stack.Endpoint().Rand(),
		dev:         dev,
		ts:          ts,
		probe:       probe,
		pending:     -1,
		curRecorder: -1,
		seqByFile:   make(map[flash.FileID]uint32),
	}
	stack.Register(KindRequest, s.handleRequest)
	stack.Register(KindConfirm, s.handleConfirm)
	stack.Register(KindReject, s.handleReject)
	return s
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (s *Service) SetTracer(tr *obs.Tracer) { s.tr = tr }

// SetView installs the membership view (called by the group manager).
func (s *Service) SetView(v MemberView) { s.view = v }

// SetOnRecordingDone installs a callback invoked after each recording task
// completes (the group manager resumes sensing there).
func (s *Service) SetOnRecordingDone(fn func()) { s.onDone = fn }

// SetBusyCheck installs a predicate that blocks new recording tasks while
// the node is otherwise engaged on the radio (e.g. a storage-balancing
// bulk transfer in flight): powering the radio down mid-session would
// abort the transfer and risk losing the in-flight chunks. An ignored
// REQUEST simply times out at the leader, which picks another member.
func (s *Service) SetBusyCheck(fn func() bool) { s.busy = fn }

// SetHearingCheck installs a predicate for "can this node hear the event
// right now". A member that can no longer hear the (moving) source
// silently declines TASK_REQUESTs — recording silence helps nobody — and
// the leader reassigns after its confirm timeout.
func (s *Service) SetHearingCheck(fn func() bool) { s.hearing = fn }

// SetOnPeerLeader installs the leadership-collision resolver: it fires
// when a node that believes itself leader of a file receives a
// TASK_REQUEST for that same file from another node (a concurrent leader
// elected while our radio was off). The callback resolves the collision
// (group management defers to the lower ID) and reports whether this node
// should proceed to handle the request as an ordinary member.
func (s *Service) SetOnPeerLeader(fn func(from int) bool) { s.onPeerLeader = fn }

// Recording reports whether a recording task is in progress on this node.
func (s *Service) Recording() bool { return s.recording }

// Leading reports whether this node is currently assigning tasks.
func (s *Service) Leading() bool { return s.leading }

// File returns the file ID being led (zero when not leading).
func (s *Service) File() flash.FileID {
	if !s.leading {
		return 0
	}
	return s.file
}

// StartLeading begins the assignment loop for file, with the first
// assignment round at firstAssignAt (a handoff passes the resigning
// leader's scheduled time; a fresh election passes the current time).
func (s *Service) StartLeading(file flash.FileID, firstAssignAt sim.Time) {
	if s.view == nil {
		panic("task: StartLeading before SetView")
	}
	if s.leading {
		panic(fmt.Sprintf("task: node %d already leading file %d", s.id, s.file))
	}
	s.leading = true
	s.file = file
	s.leadSince = s.sched.Now()
	s.tried = make(map[int]bool)
	if now := s.sched.Now(); firstAssignAt < now {
		firstAssignAt = now
	}
	s.scheduleAssign(firstAssignAt)
}

// StopLeading halts the assignment loop and returns the scheduled next
// assignment time, which the group manager embeds in its RESIGN message
// so the successor continues seamlessly (Fig 5).
func (s *Service) StopLeading() (next sim.Time) {
	if !s.leading {
		return s.sched.Now()
	}
	s.leading = false
	if s.assignTimer != nil {
		s.assignTimer.Cancel()
	}
	if s.confirmTimer != nil {
		s.confirmTimer.Cancel()
	}
	s.pending = -1
	next = s.nextAssignAt
	if now := s.sched.Now(); next < now {
		next = now
	}
	return next
}

// AbortRecording cancels an in-progress recording without storing
// anything: the mote lost power mid-capture, so the samples in RAM are
// gone and the deferred store must never run (it would write to flash
// pointers a crash recovery has since rewound). No-op when idle.
func (s *Service) AbortRecording() {
	if !s.recording {
		return
	}
	if s.recEndTimer != nil {
		s.recEndTimer.Cancel()
	}
	s.recording = false
}

func (s *Service) scheduleAssign(at sim.Time) {
	s.nextAssignAt = at
	if now := s.sched.Now(); at < now {
		at = now
	}
	s.assignTimer = s.sched.At(at, fmt.Sprintf("task.assign.%d", s.id), func() {
		s.tried = make(map[int]bool)
		s.roundConfirmed = 0
		s.assignRound()
	})
}

// assignRound selects a member and sends TASK_REQUEST, or falls back to
// recording locally when the leader is alone.
func (s *Service) assignRound() {
	if !s.leading {
		return
	}
	if s.recording {
		// Leader is mid self-recording; the round re-arms at its end.
		return
	}
	now := s.sched.Now()
	exclude := s.tried
	if s.curRecorder >= 0 && now < s.curTaskEnd && !exclude[s.curRecorder] {
		// The current task's recorder has its radio off until curTaskEnd;
		// asking it is pointless.
		exclude = make(map[int]bool, len(s.tried)+1)
		for id := range s.tried {
			exclude[id] = true
		}
		exclude[s.curRecorder] = true
	}
	member, ok := s.view.BestRecorder(exclude)
	if !ok {
		if s.cfg.AllowSelfRecord && now >= s.curTaskEnd {
			// No usable member and no recording in flight: the leader
			// covers the task itself (it hears the event, or it would
			// have resigned).
			if s.busy != nil && s.busy() {
				// Mid bulk-transfer: recording now would abort it.
				s.scheduleAssign(now.Add(s.cfg.Dta))
				return
			}
			if age := now.Sub(s.leadSince); age < s.cfg.MinLeadAge {
				// Too early to conclude we are alone: the first SENSING
				// round may still be in flight. Retry shortly.
				s.scheduleAssign(now.Add(s.cfg.MinLeadAge - age))
				return
			}
			if s.hearing != nil && !s.hearing() {
				// The source has drifted out of our own range too; wait
				// for the group layer to resign rather than record noise.
				s.scheduleAssign(now.Add(s.cfg.Dta))
				return
			}
			s.tr.Emit(now, evSelfAssign, int32(s.id), obs.NoPeer, uint32(s.file), 0, 0)
			if s.probe.OnAssign != nil {
				s.probe.OnAssign(s.id, s.id, s.file, now)
			}
			s.startRecording(s.file, s.cfg.Trc)
			return
		}
		// A recording is still in flight (or self-recording is off):
		// retry a short interval later rather than skipping a whole task
		// period.
		s.scheduleAssign(now.Add(s.cfg.Dta))
		return
	}
	s.tried[member] = true
	s.pending = member
	s.stack.SendUrgent(member, Request{
		File: s.file, Dur: s.cfg.Trc, LeaderTime: s.ts.GlobalTime(),
		Copies: uint8(s.copies()),
	})
	s.tr.Emit(now, evRequest, int32(s.id), int32(member), uint32(s.file), 0, 0)
	s.confirmTimer = s.sched.After(s.cfg.ConfirmTimeout, fmt.Sprintf("task.confirmwait.%d", s.id), func() {
		// Either the REQUEST or the CONFIRM was lost: try someone else
		// immediately (§II-A.2).
		s.tr.Emit(s.sched.Now(), evTimeout, int32(s.id), int32(s.pending), uint32(s.file), 0, 0)
		s.pending = -1
		s.assignRound()
	})
}

// confirmsWithin counts overheard confirmations for a file within the
// trailing window.
func (s *Service) confirmsWithin(file flash.FileID, window time.Duration) int {
	now := s.sched.Now()
	n := 0
	for _, cs := range s.recentConfirms {
		if cs.file == file && now.Sub(cs.at) < window {
			n++
		}
	}
	return n
}

func (s *Service) copies() int {
	if s.cfg.Copies < 1 {
		return 1
	}
	return s.cfg.Copies
}

// roundDone is invoked when the leader learns the round's task is covered
// (CONFIRM or REJECT): the next assignment is scheduled Trc − Dta away.
func (s *Service) roundDone() {
	if s.confirmTimer != nil {
		s.confirmTimer.Cancel()
	}
	s.pending = -1
	s.scheduleAssign(s.sched.Now().Add(s.cfg.Trc - s.cfg.Dta))
}

func (s *Service) handleConfirm(from, to int, p radio.Payload) {
	c, ok := p.(Confirm)
	if !ok {
		return
	}
	// Recorder-side overhearing: remember who confirmed what, so a later
	// duplicate REQUEST can be rejected (Fig 1).
	s.lastConfirm = c.File
	s.lastConfirmAt = s.sched.Now()
	s.haveConfirm = true
	s.recentConfirms = append(s.recentConfirms, confirmSeen{file: c.File, at: s.sched.Now()})
	if len(s.recentConfirms) > 16 {
		s.recentConfirms = s.recentConfirms[len(s.recentConfirms)-16:]
	}

	// Leader side: our pending member answered.
	if s.leading && to == s.id && from == s.pending && c.File == s.file {
		s.tr.Emit(s.sched.Now(), evConfirm, int32(s.id), int32(from), uint32(c.File), int64(c.Dur), 0)
		s.curRecorder = from
		s.curTaskEnd = s.sched.Now().Add(c.Dur)
		s.roundConfirmed++
		if s.roundConfirmed < s.copies() {
			// Controlled redundancy: keep assigning until the requested
			// number of members record this task in parallel.
			if s.confirmTimer != nil {
				s.confirmTimer.Cancel()
			}
			s.pending = -1
			s.assignRound()
			return
		}
		s.roundDone()
	}
}

func (s *Service) handleReject(from, to int, p radio.Payload) {
	r, ok := p.(Reject)
	if !ok {
		return
	}
	if s.leading && to == s.id && from == s.pending && r.File == s.file {
		s.tr.Emit(s.sched.Now(), evReject, int32(s.id), int32(from), uint32(r.File), 0, 0)
		if s.probe.OnReject != nil {
			s.probe.OnReject(s.id, from, r.File, s.sched.Now())
		}
		// A REJECT proves some member is already recording this round:
		// the assignment is done (overhearing optimization). We do not
		// know who records, only until roughly when.
		s.curRecorder = -1
		s.curTaskEnd = s.sched.Now().Add(s.cfg.Trc - s.cfg.Dta)
		s.roundDone()
	}
}

func (s *Service) handleRequest(from, to int, p radio.Payload) {
	req, ok := p.(Request)
	if !ok || to != s.id {
		return
	}
	if s.leading && req.File == s.file && from != s.id && s.onPeerLeader != nil {
		// A competing leader for the same event is assigning tasks: two
		// elections happened (e.g. while we recorded with the radio off).
		if !s.onPeerLeader(from) {
			return // we keep the role; the peer will hear our re-announcement
		}
		// We deferred; fall through and serve the request as a member.
	}
	if s.recording {
		// Should not happen (radio is off while recording) but guard for
		// the instant between scheduling and power-down.
		return
	}
	if s.busy != nil && s.busy() {
		// Mid bulk-transfer: stay silent; the leader will reassign.
		return
	}
	if s.hearing != nil && !s.hearing() {
		// The source moved out of our sensing range since our last
		// SENSING: decline so a node that still hears it records instead.
		return
	}
	// Extra synchronization from the leader's timestamp (§III-A).
	s.ts.AddReference(s.ts.LocalNow(), req.LeaderTime)

	// Overhearing optimization (Fig 1): if we heard enough TASK_CONFIRMs
	// for this file within the current assignment round (one normally,
	// req.Copies with controlled redundancy), the task is already covered
	// — reject so the leader stops reassigning. The window must not reach
	// back into the previous round, or we would reject the next task's
	// legitimate request.
	need := int(req.Copies)
	if need < 1 {
		need = 1
	}
	if !s.cfg.DisableOverhearing {
		if n := s.confirmsWithin(req.File, s.cfg.RejectWindow); n >= need {
			s.stack.SendUrgent(from, Reject{File: req.File})
			s.tr.Emit(s.sched.Now(), evSuppress, int32(s.id), int32(from), uint32(req.File), int64(n), 0)
			return
		}
	}
	s.stack.SendUrgent(from, Confirm{File: req.File, Dur: req.Dur})
	if s.probe.OnAssign != nil {
		s.probe.OnAssign(from, s.id, req.File, s.sched.Now())
	}
	s.startRecording(req.File, req.Dur)
}

// startRecording switches the radio off and records for dur, then stores
// the captured chunks and restores the radio (§III-B.1).
func (s *Service) startRecording(file flash.FileID, dur time.Duration) {
	if s.recording {
		panic(fmt.Sprintf("task: node %d double recording", s.id))
	}
	s.recording = true
	s.recFile = file
	s.recStart = s.sched.Now()
	s.recStartG = s.ts.GlobalTime()
	s.stack.Endpoint().SetRadio(false)
	s.tr.Emit(s.recStart, evRecStart, int32(s.id), obs.NoPeer, uint32(file), int64(dur), 0)
	if s.probe.OnRecordStart != nil {
		s.probe.OnRecordStart(s.id, file, s.recStart)
	}
	if s.leading {
		s.curRecorder = s.id
		s.curTaskEnd = s.recStart.Add(dur)
	}
	s.recEndTimer = s.sched.After(dur, fmt.Sprintf("task.recend.%d", s.id), s.finishRecording)
}

func (s *Service) finishRecording() {
	end := s.sched.Now()
	samples := s.dev.CaptureSamples(s.recStart, end)
	endG := s.recStartG.Add(end.Sub(s.recStart))
	seq := s.seqByFile[s.recFile]
	chunks := flash.SplitSamples(s.recFile, int32(s.id), seq, s.recStartG, endG, samples)
	s.seqByFile[s.recFile] = seq + uint32(len(chunks))
	stored := s.dev.StoreChunks(chunks)
	// Chunks rejected by a full flash never entered any store: recycle.
	flash.FreeChunks(chunks[stored:])
	s.recording = false
	s.stack.Endpoint().SetRadio(true)
	s.stack.RadioRestored()
	s.tr.Emit(end, evRecEnd, int32(s.id), obs.NoPeer, uint32(s.recFile), int64(stored), int64(len(chunks)))
	if s.probe.OnRecordEnd != nil {
		s.probe.OnRecordEnd(s.id, s.recFile, s.recStart, end, stored, len(chunks))
	}
	if s.leading {
		// A self-recording leader resumes assigning — after a listening
		// gap when still apparently alone, so arriving members' SENSING
		// (and any colliding leader's announcements) can be heard.
		next := s.sched.Now()
		if s.view.MemberCount() == 0 {
			// Jittered: two colliding leaders that both self-record would
			// otherwise phase-lock, each deaf whenever the other announces.
			listen := s.cfg.SelfRecordListen
			listen += time.Duration(s.rng.Int63n(int64(listen) + 1))
			next = next.Add(listen)
		}
		s.scheduleAssign(next)
	}
	if s.onDone != nil {
		s.onDone()
	}
}
