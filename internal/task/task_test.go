package task

import (
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

type identityTime struct{ s *sim.Scheduler }

func (t identityTime) GlobalTime() sim.Time       { return t.s.Now() }
func (t identityTime) LocalNow() sim.Time         { return t.s.Now() }
func (t identityTime) AddReference(_, _ sim.Time) {}

type fakeDevice struct {
	store    *flash.Store
	captures int
}

func (d *fakeDevice) CaptureSamples(start, end sim.Time) []byte {
	d.captures++
	return make([]byte, int(end.Sub(start).Seconds()*2730))
}

func (d *fakeDevice) StoreChunks(chunks []*flash.Chunk) int {
	n := 0
	for _, c := range chunks {
		if d.store.Enqueue(c) != nil {
			break
		}
		n++
	}
	return n
}

// staticView is a fixed member list.
type staticView struct{ ids []int }

func (v staticView) BestRecorder(exclude map[int]bool) (int, bool) {
	for _, id := range v.ids {
		if !exclude[id] {
			return id, true
		}
	}
	return -1, false
}

func (v staticView) MemberCount() int { return len(v.ids) }

type testNode struct {
	svc *Service
	dev *fakeDevice
}

func rig(t *testing.T, n int, loss float64, cfg Config, probes func(i int) Probe) (*sim.Scheduler, []*testNode, *radio.Network) {
	t.Helper()
	s := sim.NewScheduler(3)
	rcfg := radio.DefaultConfig(100)
	rcfg.LossProb = loss
	net := radio.NewNetwork(s, rcfg)
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		st := netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
		dev := &fakeDevice{store: flash.NewStore(256)}
		var p Probe
		if probes != nil {
			p = probes(i)
		}
		svc := NewService(i, st, s, dev, identityTime{s}, cfg, p)
		nodes[i] = &testNode{svc: svc, dev: dev}
	}
	return s, nodes, net
}

func TestPayloadContracts(t *testing.T) {
	tests := []struct {
		p    radio.Payload
		kind radio.KindID
		size int
	}{
		{Request{}, KindRequest, 17},
		{Confirm{}, KindConfirm, 8},
		{Reject{}, KindReject, 4},
	}
	for _, tt := range tests {
		if tt.p.Kind() != tt.kind || tt.p.Size() != tt.size {
			t.Errorf("%T: kind %q size %d", tt.p, radio.KindName(tt.p.Kind()), tt.p.Size())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mut := []func(*Config){
		func(c *Config) { c.Trc = 0 },
		func(c *Config) { c.Dta = -1 },
		func(c *Config) { c.Dta = c.Trc },
		func(c *Config) { c.ConfirmTimeout = 0 },
		func(c *Config) { c.ConfirmTimeout = c.Dta + 1 },
		func(c *Config) { c.RejectWindow = 0 },
		func(c *Config) { c.RejectWindow = c.Trc },
		func(c *Config) { c.MinLeadAge = -1 },
	}
	for i, m := range mut {
		cfg := base
		m(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mutation %d accepted", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestAssignConfirmRecordCycle(t *testing.T) {
	var assigns []int
	var records []int
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), func(i int) Probe {
		return Probe{
			OnAssign: func(leader, recorder int, file flash.FileID, at sim.Time) {
				assigns = append(assigns, recorder)
			},
			OnRecordEnd: func(node int, file flash.FileID, start, end sim.Time, stored, total int) {
				records = append(records, node)
			},
		}
	})
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[0].svc.StartLeading(42, s.Now())
	s.Run(sim.At(3500 * time.Millisecond))
	nodes[0].svc.StopLeading()
	s.RunAll()
	if len(records) < 3 {
		t.Fatalf("got %d completed recordings in 3.5s, want >= 3", len(records))
	}
	for _, r := range records {
		if r != 1 {
			t.Errorf("recorded by %d, want member 1", r)
		}
	}
	if nodes[1].dev.store.Len() == 0 {
		t.Error("recorder stored nothing")
	}
	// Chunks carry the led file ID and the recorder's origin.
	for _, c := range nodes[1].dev.store.Chunks() {
		if c.File != 42 || c.Origin != 1 {
			t.Errorf("chunk file/origin = %d/%d, want 42/1", c.File, c.Origin)
		}
	}
}

func TestSeamlessRotationHasNoGaps(t *testing.T) {
	type iv struct{ s, e sim.Time }
	var ivs []iv
	cfg := DefaultConfig()
	s, nodes, _ := rig(t, 3, 0, cfg, func(i int) Probe {
		return Probe{
			OnRecordEnd: func(node int, file flash.FileID, start, end sim.Time, stored, total int) {
				ivs = append(ivs, iv{start, end})
			},
		}
	})
	nodes[0].svc.SetView(staticView{ids: []int{1, 2}})
	nodes[0].svc.StartLeading(7, s.Now())
	s.Run(sim.At(8 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	if len(ivs) < 6 {
		t.Fatalf("only %d tasks completed", len(ivs))
	}
	// Sort by start and check inter-task gaps are under Dta (the paper's
	// seamless property: the next recorder confirms before the previous
	// task ends, or within the assignment delay of it).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].s < ivs[j-1].s; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	for i := 1; i < len(ivs); i++ {
		gap := ivs[i].s.Sub(ivs[i-1].e)
		if gap > cfg.Dta {
			t.Errorf("gap %v between task %d and %d exceeds Dta", gap, i-1, i)
		}
	}
}

func TestSmallDtaCausesGaps(t *testing.T) {
	// With Dta ~ 0, assignment starts only when the previous task has
	// already ended: every rotation leaves a gap (Fig 6's left side).
	type iv struct{ s, e sim.Time }
	var ivs []iv
	cfg := DefaultConfig()
	// Dta barely covers the radio round trip (~6 ms): each rotation's
	// REQUEST reaches the still-recording member too early, forcing a
	// timeout + reassignment after the boundary.
	cfg.Dta = 10 * time.Millisecond
	cfg.ConfirmTimeout = 8 * time.Millisecond
	s, nodes, _ := rig(t, 3, 0, cfg, func(i int) Probe {
		return Probe{
			OnRecordEnd: func(node int, file flash.FileID, start, end sim.Time, stored, total int) {
				ivs = append(ivs, iv{start, end})
			},
		}
	})
	nodes[0].svc.SetView(staticView{ids: []int{1, 2}})
	nodes[0].svc.StartLeading(7, s.Now())
	s.Run(sim.At(8 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	if len(ivs) < 5 {
		t.Fatalf("only %d tasks completed", len(ivs))
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].s < ivs[j-1].s; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	gaps := 0
	for i := 1; i < len(ivs); i++ {
		if ivs[i].s.Sub(ivs[i-1].e) > 0 {
			gaps++
		}
	}
	if gaps == 0 {
		t.Error("underestimated Dta produced no gaps (expected misses)")
	}
}

func TestConfirmLossTriggersReassignmentAndReject(t *testing.T) {
	// Drive the REQUEST/CONFIRM exchange manually: member 1's CONFIRM is
	// "lost" by keeping its radio... we emulate loss with a high-loss
	// medium and check the leader still fills every round via REJECT or
	// reassignment, without double recording in most rounds.
	var assigns int
	cfg := DefaultConfig()
	s, nodes, net := rig(t, 4, 0.3, cfg, func(i int) Probe {
		return Probe{
			OnAssign: func(leader, recorder int, file flash.FileID, at sim.Time) { assigns++ },
		}
	})
	nodes[0].svc.SetView(staticView{ids: []int{1, 2, 3}})
	nodes[0].svc.StartLeading(9, s.Now())
	s.Run(sim.At(60 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	if assigns < 45 {
		t.Errorf("only %d assignments in 60s under loss", assigns)
	}
	// Confirm losses must have provoked reassignments (extra REQUESTs)
	// and at least one overhearing-based REJECT.
	st := net.Stats()
	if st.TxByKind[radio.KindName(KindRequest)] <= st.TxByKind[radio.KindName(KindConfirm)] {
		t.Errorf("requests (%d) not above confirms (%d): no reassignment under loss?",
			st.TxByKind[radio.KindName(KindRequest)], st.TxByKind[radio.KindName(KindConfirm)])
	}
	if st.TxByKind[radio.KindName(KindReject)] == 0 {
		t.Error("REJECT optimization never exercised under loss")
	}
}

func TestSelfRecordWhenAlone(t *testing.T) {
	var records []int
	cfg := DefaultConfig()
	s, nodes, _ := rig(t, 1, 0, cfg, func(i int) Probe {
		return Probe{
			OnRecordEnd: func(node int, file flash.FileID, start, end sim.Time, stored, total int) {
				records = append(records, node)
			},
		}
	})
	nodes[0].svc.SetView(staticView{})
	nodes[0].svc.StartLeading(5, s.Now())
	s.Run(sim.At(5 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	if len(records) < 2 {
		t.Fatalf("lone leader self-recorded %d times, want >= 2", len(records))
	}
	// The listening gap means strictly fewer than back-to-back tasks.
	if len(records) > 5 {
		t.Errorf("self-recording without listening gaps: %d tasks in 5s", len(records))
	}
}

func TestSelfRecordDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowSelfRecord = false
	var records int
	s, nodes, _ := rig(t, 1, 0, cfg, func(i int) Probe {
		return Probe{OnRecordEnd: func(int, flash.FileID, sim.Time, sim.Time, int, int) { records++ }}
	})
	nodes[0].svc.SetView(staticView{})
	nodes[0].svc.StartLeading(5, s.Now())
	s.Run(sim.At(5 * time.Second))
	if records != 0 {
		t.Errorf("self-record happened despite being disabled: %d", records)
	}
}

func TestStopLeadingReturnsSchedule(t *testing.T) {
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[0].svc.StartLeading(3, s.Now())
	s.Run(sim.At(1500 * time.Millisecond))
	next := nodes[0].svc.StopLeading()
	if next < s.Now() {
		t.Errorf("StopLeading returned past time %v", next)
	}
	if nodes[0].svc.Leading() {
		t.Error("still leading after StopLeading")
	}
	// Idempotent-ish: stopping a non-leader returns now.
	if got := nodes[1].svc.StopLeading(); got != s.Now() {
		t.Errorf("non-leader StopLeading = %v, want now", got)
	}
}

func TestDoubleStartLeadingPanics(t *testing.T) {
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[0].svc.StartLeading(3, s.Now())
	defer func() {
		if recover() == nil {
			t.Error("double StartLeading did not panic")
		}
	}()
	nodes[0].svc.StartLeading(4, s.Now())
}

func TestStartLeadingWithoutViewPanics(t *testing.T) {
	s, nodes, _ := rig(t, 1, 0, DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Error("StartLeading without view did not panic")
		}
	}()
	nodes[0].svc.StartLeading(3, s.Now())
}

func TestRecorderRadioOffDuringTask(t *testing.T) {
	s, nodes, net := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[0].svc.StartLeading(3, s.Now())
	// Sample the recorder mid-task: it must be recording with its radio
	// off (§III-B.1), and back on after leadership stops and the final
	// task drains.
	var sampled, offDuringTask, onAfterTask bool
	s.At(sim.At(500*time.Millisecond), "mid", func() {
		ep := nodes[1].svc.stack.Endpoint()
		sampled = nodes[1].svc.Recording()
		offDuringTask = sampled && !ep.RadioOn()
	})
	s.At(sim.At(2*time.Second), "stop", func() { nodes[0].svc.StopLeading() })
	s.At(sim.At(4*time.Second), "after", func() {
		onAfterTask = nodes[1].svc.stack.Endpoint().RadioOn() && !nodes[1].svc.Recording()
	})
	s.Run(sim.At(5 * time.Second))
	_ = net
	if !sampled {
		t.Fatal("recorder was not recording at the mid-task probe point")
	}
	if !offDuringTask {
		t.Error("radio stayed on during a recording task")
	}
	if !onAfterTask {
		t.Error("radio not restored after the task")
	}
}

func TestChunkSequenceContinuesAcrossTasks(t *testing.T) {
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[0].svc.StartLeading(3, s.Now())
	s.Run(sim.At(4 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	chunks := nodes[1].dev.store.Chunks()
	if len(chunks) < 20 {
		t.Fatalf("only %d chunks", len(chunks))
	}
	for i, c := range chunks {
		if c.Seq != uint32(i) {
			t.Fatalf("chunk %d has seq %d: sequence must be continuous across tasks", i, c.Seq)
		}
	}
}

func TestControlledRedundancyRecordsCopies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Copies = 2
	type iv struct{ s, e sim.Time }
	perNode := map[int][]iv{}
	s, nodes, _ := rig(t, 4, 0, cfg, func(i int) Probe {
		return Probe{
			OnRecordEnd: func(node int, file flash.FileID, start, end sim.Time, stored, total int) {
				perNode[node] = append(perNode[node], iv{start, end})
			},
		}
	})
	nodes[0].svc.SetView(staticView{ids: []int{1, 2, 3}})
	nodes[0].svc.StartLeading(11, s.Now())
	s.Run(sim.At(5 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()
	// Every task interval must be covered by exactly two recorders: total
	// recorded time is ~2x the covered span.
	var all []iv
	for _, ivs := range perNode {
		all = append(all, ivs...)
	}
	if len(all) < 6 {
		t.Fatalf("only %d recordings", len(all))
	}
	var total time.Duration
	lo, hi := all[0].s, all[0].e
	for _, v := range all {
		total += v.e.Sub(v.s)
		if v.s < lo {
			lo = v.s
		}
		if v.e > hi {
			hi = v.e
		}
	}
	span := hi.Sub(lo)
	ratio := float64(total) / float64(span)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("redundancy factor = %.2f, want ~2 (Copies=2)", ratio)
	}
}

func TestControlledRedundancySingleCopyUnchanged(t *testing.T) {
	// Copies=0 and Copies=1 behave identically (a single recorder).
	for _, copies := range []int{0, 1} {
		cfg := DefaultConfig()
		cfg.Copies = copies
		var n int
		s, nodes, _ := rig(t, 3, 0, cfg, func(i int) Probe {
			return Probe{OnRecordEnd: func(int, flash.FileID, sim.Time, sim.Time, int, int) { n++ }}
		})
		nodes[0].svc.SetView(staticView{ids: []int{1, 2}})
		nodes[0].svc.StartLeading(3, s.Now())
		s.Run(sim.At(3 * time.Second))
		nodes[0].svc.StopLeading()
		s.RunAll()
		if n > 4 {
			t.Errorf("Copies=%d produced %d recordings in 3s (duplicates?)", copies, n)
		}
	}
}

func TestPeerLeaderCollisionResolution(t *testing.T) {
	// Two services both believe they lead file 9. When the higher ID
	// receives the lower's TASK_REQUEST, the resolver tells it to defer
	// and serve the request as a member.
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[1].svc.SetView(staticView{ids: []int{0}})

	var resolved []int
	nodes[1].svc.SetOnPeerLeader(func(from int) bool {
		resolved = append(resolved, from)
		nodes[1].svc.StopLeading()
		return true // defer to the lower ID
	})
	// The lower ID may legitimately receive requests from the stubborn
	// peer before resolution completes; it keeps its role.
	nodes[0].svc.SetOnPeerLeader(func(from int) bool { return false })

	nodes[1].svc.StartLeading(9, s.Now())
	s.Run(sim.At(100 * time.Millisecond))
	nodes[0].svc.StartLeading(9, s.Now())
	s.Run(sim.At(3 * time.Second))
	nodes[0].svc.StopLeading()
	s.RunAll()

	if len(resolved) == 0 {
		t.Fatal("collision resolver never invoked")
	}
	if nodes[1].svc.Leading() {
		t.Error("higher-ID leader did not step down")
	}
	// Having deferred, node 1 served node 0's requests as a recorder.
	if nodes[1].dev.store.Len() == 0 {
		t.Error("deferring leader never recorded for the winner")
	}
}

func TestPeerLeaderKeepRoleSuppressesRecording(t *testing.T) {
	// The resolver returning false means "we keep the role": the request
	// must not be served.
	s, nodes, _ := rig(t, 2, 0, DefaultConfig(), nil)
	nodes[0].svc.SetView(staticView{ids: []int{1}})
	nodes[1].svc.SetView(staticView{ids: []int{0}})
	nodes[0].svc.SetOnPeerLeader(func(from int) bool { return false })
	nodes[0].svc.StartLeading(9, s.Now())
	s.Run(sim.At(50 * time.Millisecond))
	// Node 1 also leads file 9 and asks node 0 to record.
	nodes[1].svc.StartLeading(9, s.Now())
	s.Run(sim.At(900 * time.Millisecond))
	if nodes[0].svc.Recording() {
		t.Error("leader that kept its role recorded for a peer")
	}
	if !nodes[0].svc.Leading() {
		t.Error("leader that kept its role stopped leading")
	}
}
