package group

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
	"enviromic/internal/task"
)

// ---- test rig ----------------------------------------------------------

// identityTime is a TimeSource with a perfect clock.
type identityTime struct{ s *sim.Scheduler }

func (t identityTime) GlobalTime() sim.Time       { return t.s.Now() }
func (t identityTime) LocalNow() sim.Time         { return t.s.Now() }
func (t identityTime) AddReference(_, _ sim.Time) {}

// fieldSensor adapts an acoustics.Field to the Sensor interface.
type fieldSensor struct {
	id    int
	pos   geometry.Point
	field *acoustics.Field
}

func (f fieldSensor) Detect(at sim.Time) bool { return f.field.Audible(f.id, f.pos, at) }
func (f fieldSensor) Signal(at sim.Time) float64 {
	total := 0.0
	for _, s := range f.field.AudibleSources(f.id, f.pos, at) {
		total += s.AmplitudeAt(f.pos, at)
	}
	return total
}

// recDevice records capture intervals and stores chunks.
type recDevice struct {
	store     *flash.Store
	intervals []struct{ start, end sim.Time }
}

func (d *recDevice) CaptureSamples(start, end sim.Time) []byte {
	d.intervals = append(d.intervals, struct{ start, end sim.Time }{start, end})
	n := int(end.Sub(start).Seconds() * 2730)
	return make([]byte, n)
}

func (d *recDevice) StoreChunks(chunks []*flash.Chunk) int {
	n := 0
	for _, c := range chunks {
		if d.store.Enqueue(c) != nil {
			break
		}
		n++
	}
	return n
}

type node struct {
	id    int
	pos   geometry.Point
	stack *netstack.Stack
	tasks *task.Service
	mgr   *Manager
	dev   *recDevice
}

type rig struct {
	sched *sim.Scheduler
	field *acoustics.Field
	net   *radio.Network
	nodes []*node

	// aggregated probe data
	elected   []int
	resigns   []int
	records   []recordEvt
	preludeTo []int
}

type recordEvt struct {
	node       int
	file       flash.FileID
	start, end sim.Time
}

type rigOpts struct {
	seed      int64
	loss      float64
	commRange float64
	groupCfg  func(*Config)
	taskCfg   func(*task.Config)
}

func buildRig(positions []geometry.Point, o rigOpts) *rig {
	if o.commRange == 0 {
		o.commRange = 3
	}
	if o.seed == 0 {
		o.seed = 3
	}
	r := &rig{
		sched: sim.NewScheduler(o.seed),
		field: acoustics.NewField(1.0),
	}
	rcfg := radio.DefaultConfig(o.commRange)
	rcfg.LossProb = o.loss
	rcfg.Seed = o.seed
	r.net = radio.NewNetwork(r.sched, rcfg)
	gcfg := DefaultConfig()
	if o.groupCfg != nil {
		o.groupCfg(&gcfg)
	}
	tcfg := task.DefaultConfig()
	if o.taskCfg != nil {
		o.taskCfg(&tcfg)
	}
	for i, pos := range positions {
		i := i
		ep := r.net.Join(i, pos)
		st := netstack.NewStack(ep, r.sched)
		dev := &recDevice{store: flash.NewStore(2048)}
		probe := task.Probe{
			OnRecordEnd: func(nid int, file flash.FileID, start, end sim.Time, stored, total int) {
				r.records = append(r.records, recordEvt{node: nid, file: file, start: start, end: end})
			},
		}
		ts := task.NewService(i, st, r.sched, dev, identityTime{r.sched}, tcfg, probe)
		gprobe := Probe{
			OnElected:     func(nid int, file flash.FileID, at sim.Time) { r.elected = append(r.elected, nid) },
			OnResign:      func(nid int, file flash.FileID, at sim.Time) { r.resigns = append(r.resigns, nid) },
			OnPreludeKeep: func(keeper int, file flash.FileID, at sim.Time) { r.preludeTo = append(r.preludeTo, keeper) },
		}
		mgr := NewManager(i, st, r.sched, fieldSensor{i, pos, r.field}, nil, ts, dev, gcfg, gprobe)
		r.nodes = append(r.nodes, &node{id: i, pos: pos, stack: st, tasks: ts, mgr: mgr, dev: dev})
	}
	for _, n := range r.nodes {
		n.mgr.Start()
	}
	return r
}

func line(n int, pitch float64) []geometry.Point {
	pts := make([]geometry.Point, n)
	for i := range pts {
		pts[i] = geometry.Point{X: float64(i) * pitch}
	}
	return pts
}

// leaders returns the nodes currently believing they lead.
func (r *rig) leaders() []int {
	var out []int
	for _, n := range r.nodes {
		if n.tasks.Leading() {
			out = append(out, n.id)
		}
	}
	return out
}

// coverage returns the union of recorded time in [from, to] across all
// nodes, plus the total (with overlap) recorded time.
func (r *rig) coverage(from, to sim.Time) (union, total time.Duration) {
	type iv struct{ s, e sim.Time }
	var ivs []iv
	for _, rec := range r.records {
		s, e := rec.start, rec.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
			total += e.Sub(s)
		}
	}
	// Merge intervals (insertion sort by start; test scale is tiny).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].s < ivs[j-1].s; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var curS, curE sim.Time
	first := true
	for _, v := range ivs {
		if first {
			curS, curE = v.s, v.e
			first = false
			continue
		}
		if v.s <= curE {
			if v.e > curE {
				curE = v.e
			}
			continue
		}
		union += curE.Sub(curS)
		curS, curE = v.s, v.e
	}
	if !first {
		union += curE.Sub(curS)
	}
	return union, total
}

// ---- tests --------------------------------------------------------------

func TestSingleLeaderElectedAmongHearers(t *testing.T) {
	// 4 nodes in a line, all within comm range; a static source audible
	// to the first three only.
	r := buildRig(line(4, 1), rigOpts{commRange: 10})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 8*time.Second, 1.6, acoustics.VoiceTone)
	r.field.AddSource(src) // range 1.6: audible at x=0,1,2 (d<=1.6), not x=3
	r.sched.Run(sim.At(4 * time.Second))

	if got := len(r.leaders()); got != 1 {
		t.Fatalf("leaders = %v, want exactly 1", r.leaders())
	}
	lead := r.leaders()[0]
	if lead == 3 {
		t.Errorf("node 3 cannot hear the event yet leads")
	}
	if len(r.elected) != 1 {
		t.Errorf("elections fired %d times, want 1", len(r.elected))
	}
	// The two non-leader hearers appear in the leader's member table.
	if got := r.nodes[lead].mgr.MemberCount(); got != 2 {
		t.Errorf("leader sees %d members, want 2", got)
	}
}

func TestRecordingRotatesAmongMembers(t *testing.T) {
	r := buildRig(line(4, 1), rigOpts{commRange: 10})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 12*time.Second, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src) // audible at x=0..3
	r.sched.Run(sim.At(14 * time.Second))

	if len(r.records) < 8 {
		t.Fatalf("only %d recording tasks in 12s of event", len(r.records))
	}
	recorders := map[int]bool{}
	var files = map[flash.FileID]bool{}
	for _, rec := range r.records {
		recorders[rec.node] = true
		files[rec.file] = true
	}
	if len(recorders) < 2 {
		t.Errorf("recording never rotated: only nodes %v recorded", recorders)
	}
	if len(files) != 1 {
		t.Errorf("a single continuous event produced %d file IDs, want 1", len(files))
	}
	// Coverage: after the startup gap the recording should be nearly
	// continuous, and redundancy (total − union) should be small.
	union, total := r.coverage(src.Start, src.End)
	dur := src.End.Sub(src.Start)
	missRatio := 1 - union.Seconds()/dur.Seconds()
	if missRatio > 0.25 {
		t.Errorf("miss ratio %.2f too high (startup should cost ~0.7s/12s)", missRatio)
	}
	redundancy := total.Seconds() - union.Seconds()
	if redundancy > 0.2*union.Seconds() {
		t.Errorf("redundant recording %.2fs vs union %.2fs", redundancy, union.Seconds())
	}
}

func TestStartupDelayMatchesPaper(t *testing.T) {
	// The paper measures first election + first assignment ≈ 0.7 s on
	// average. Check the mean over several seeds is in a sane band.
	var totalDelay float64
	const runs = 10
	for seed := int64(1); seed <= runs; seed++ {
		r := buildRig(line(4, 1), rigOpts{commRange: 10, seed: seed})
		start := sim.At(time.Second)
		src := acoustics.StaticSource(1, geometry.Point{X: 1}, start, 8*time.Second, 2.1, acoustics.VoiceTone)
		r.field.AddSource(src)
		r.sched.Run(sim.At(9 * time.Second))
		if len(r.records) == 0 {
			t.Fatalf("seed %d: nothing recorded", seed)
		}
		first := r.records[0].start
		for _, rec := range r.records {
			if rec.start < first {
				first = rec.start
			}
		}
		totalDelay += first.Sub(start).Seconds()
	}
	mean := totalDelay / runs
	if mean < 0.45 || mean > 0.95 {
		t.Errorf("mean startup delay %.2fs outside [0.45, 0.95] (paper: ~0.7s)", mean)
	}
}

func TestLeaderResignsWhenEventEnds(t *testing.T) {
	r := buildRig(line(3, 1), rigOpts{commRange: 10})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 4*time.Second, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(10 * time.Second))
	if got := len(r.leaders()); got != 0 {
		t.Errorf("leaders after event ended = %v, want none", r.leaders())
	}
	if len(r.resigns) == 0 {
		t.Error("no RESIGN was issued")
	}
	for _, n := range r.nodes {
		if n.mgr.Hearing() {
			t.Errorf("node %d still hearing after event end", n.id)
		}
	}
}

func TestLeaderHandoffPreservesFileID(t *testing.T) {
	// A mobile source crosses a 10-node line; leadership must hand off
	// and all chunks must share one file ID.
	r := buildRig(line(10, 1), rigOpts{commRange: 3.5})
	src := acoustics.MobileSource(1, geometry.Point{X: 0}, geometry.Point{X: 9},
		sim.At(time.Second), 9*time.Second, 1.3, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(12 * time.Second))

	if len(r.resigns) == 0 {
		t.Fatal("mobile source produced no leader handoff")
	}
	files := map[flash.FileID]bool{}
	recorders := map[int]bool{}
	for _, rec := range r.records {
		files[rec.file] = true
		recorders[rec.node] = true
	}
	if len(files) != 1 {
		t.Errorf("handoff broke file continuity: %d file IDs", len(files))
	}
	if len(recorders) < 3 {
		t.Errorf("mobile event recorded by only %v", recorders)
	}
	union, _ := r.coverage(src.Start, src.End)
	miss := 1 - union.Seconds()/src.End.Sub(src.Start).Seconds()
	if miss > 0.30 {
		t.Errorf("mobile-event miss ratio %.2f too high", miss)
	}
}

func TestLeaderDeathTriggersReElection(t *testing.T) {
	r := buildRig(line(3, 1), rigOpts{commRange: 10})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 20*time.Second, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(4 * time.Second))
	lead := r.leaders()
	if len(lead) != 1 {
		t.Fatalf("leaders = %v", lead)
	}
	// Kill the leader outright: no RESIGN is sent.
	dead := r.nodes[lead[0]]
	dead.mgr.Stop()
	dead.stack.Endpoint().Kill()
	r.sched.Run(sim.At(12 * time.Second))
	after := r.leaders()
	if len(after) != 1 || after[0] == dead.id {
		t.Fatalf("no failover leader: %v", after)
	}
	// Recording continued after the failover window.
	var late int
	for _, rec := range r.records {
		if rec.start > sim.At(8*time.Second) {
			late++
		}
	}
	if late == 0 {
		t.Error("no recordings after leader death")
	}
}

func TestRejectSuppressesDuplicateRecorders(t *testing.T) {
	// Under heavy loss, lost TASK_CONFIRMs make the leader reassign a
	// task someone is already recording; the overhearing REJECT (Fig 1)
	// suppresses much of the resulting duplication. Compare aggregate
	// overlap with the optimization on vs ablated, across seeds.
	run := func(disable bool) (overlap, union float64) {
		for seed := int64(1); seed <= 6; seed++ {
			r := buildRig(line(4, 1), rigOpts{
				commRange: 10, loss: 0.25, seed: seed,
				taskCfg: func(c *task.Config) { c.DisableOverhearing = disable },
			})
			src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 15*time.Second, 2.1, acoustics.VoiceTone)
			r.field.AddSource(src)
			r.sched.Run(sim.At(17 * time.Second))
			u, tot := r.coverage(src.Start, src.End)
			union += u.Seconds()
			overlap += tot.Seconds() - u.Seconds()
		}
		return overlap, union
	}
	withOpt, union := run(false)
	withoutOpt, _ := run(true)
	if union == 0 {
		t.Fatal("nothing recorded under loss")
	}
	if withOpt >= withoutOpt {
		t.Errorf("overhearing optimization did not reduce duplication: %.2fs with vs %.2fs without",
			withOpt, withoutOpt)
	}
}

func TestPreludeKeeperPersistsOpening(t *testing.T) {
	r := buildRig(line(3, 1), rigOpts{commRange: 10, groupCfg: func(c *Config) {
		c.Prelude = time.Second
	}})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 10*time.Second, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(12 * time.Second))

	if len(r.preludeTo) != 1 {
		t.Fatalf("prelude keep decisions = %d, want 1", len(r.preludeTo))
	}
	keeper := r.preludeTo[0]
	// The keeper must hold seq-0 chunks whose interval covers the event
	// opening (before any task recording could have started).
	var earliest sim.Time = 1 << 62
	for _, rec := range r.records {
		if rec.start < earliest {
			earliest = rec.start
		}
	}
	found := false
	for _, c := range r.nodes[keeper].dev.store.Chunks() {
		if c.Seq >= 1<<20 && c.Start < earliest { // prelude sequence band
			found = true
			break
		}
	}
	if !found {
		t.Error("prelude keeper stored no opening chunk predating task recordings")
	}
	// Exactly one node holds the prelude (others erased theirs).
	holders := 0
	for _, n := range r.nodes {
		for _, c := range n.dev.store.Chunks() {
			if c.Start < src.Start.Add(500*time.Millisecond) && c.End > src.Start {
				holders++
				break
			}
		}
	}
	if holders != 1 {
		t.Errorf("%d nodes hold prelude data, want 1", holders)
	}
}

func TestShortEventCapturedByPrelude(t *testing.T) {
	// A 0.8 s event ends before election completes; without the prelude
	// it would be lost entirely.
	r := buildRig(line(3, 1), rigOpts{commRange: 10, groupCfg: func(c *Config) {
		c.Prelude = time.Second
	}})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 800*time.Millisecond, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(8 * time.Second))
	stored := 0
	for _, n := range r.nodes {
		stored += n.dev.store.Len()
	}
	if stored == 0 {
		t.Error("short event completely lost despite prelude")
	}
}

func TestTwoSeparatedEventsGetTwoLeadersAndFiles(t *testing.T) {
	// Two sources far apart with a short comm range: independent groups.
	pts := append(line(3, 1), geometry.Point{X: 30}, geometry.Point{X: 31}, geometry.Point{X: 32})
	r := buildRig(pts, rigOpts{commRange: 4})
	r.field.AddSource(acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 6*time.Second, 2.1, acoustics.VoiceTone))
	r.field.AddSource(acoustics.StaticSource(2, geometry.Point{X: 31}, sim.At(time.Second), 6*time.Second, 2.1, acoustics.VoiceTone))
	r.sched.Run(sim.At(5 * time.Second))
	if got := len(r.leaders()); got != 2 {
		t.Fatalf("leaders = %v, want 2 (one per region)", r.leaders())
	}
	r.sched.Run(sim.At(10 * time.Second))
	files := map[flash.FileID]bool{}
	for _, rec := range r.records {
		files[rec.file] = true
	}
	if len(files) != 2 {
		t.Errorf("got %d file IDs, want 2", len(files))
	}
}

func TestLoneHearerSelfRecords(t *testing.T) {
	// Only one node can hear: it must lead and record itself.
	r := buildRig(line(3, 5), rigOpts{commRange: 20})
	src := acoustics.StaticSource(1, geometry.Point{X: 0}, sim.At(time.Second), 6*time.Second, 1.5, acoustics.VoiceTone)
	r.field.AddSource(src) // range 1.5 < pitch 5: only node 0 hears
	r.sched.Run(sim.At(9 * time.Second))
	if len(r.records) == 0 {
		t.Fatal("lone hearer never recorded")
	}
	for _, rec := range r.records {
		if rec.node != 0 {
			t.Errorf("node %d recorded but cannot hear", rec.node)
		}
	}
}

func TestConcurrentLeaderCollisionResolvesToLowerID(t *testing.T) {
	// Force simultaneous announcements by pinning the back-off window
	// tiny; collisions then resolve deterministically to the lower ID.
	for seed := int64(1); seed <= 5; seed++ {
		r := buildRig(line(3, 1), rigOpts{
			commRange: 10,
			seed:      seed,
			groupCfg: func(c *Config) {
				c.ElectBackoffMin = 0
				c.ElectBackoffMax = time.Millisecond
			},
		})
		src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 10*time.Second, 2.1, acoustics.VoiceTone)
		r.field.AddSource(src)
		r.sched.Run(sim.At(6 * time.Second))
		l := r.leaders()
		if len(l) != 1 {
			t.Fatalf("seed %d: leaders = %v after collision, want 1", seed, l)
		}
	}
}

func TestNoActivityNoTraffic(t *testing.T) {
	// A silent field should generate no frames at all from group/task.
	r := buildRig(line(5, 1), rigOpts{commRange: 10})
	r.sched.Run(sim.At(30 * time.Second))
	if got := r.net.Stats().TotalFrames; got != 0 {
		t.Errorf("%d frames sent in a silent network", got)
	}
	if len(r.records) != 0 {
		t.Errorf("recordings without events: %d", len(r.records))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{PollInterval: time.Second, SenseInterval: time.Second, MemberTimeout: time.Second,
			ElectBackoffMax: time.Second, HandoffBackoffMax: time.Second, SilencePolls: 0,
			LeaderTimeout: 2 * time.Second},
		{PollInterval: time.Second, SenseInterval: time.Second, MemberTimeout: time.Second,
			ElectBackoffMax: time.Second, HandoffBackoffMax: time.Second, SilencePolls: 1,
			LeaderTimeout: time.Second},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestDeterministicAcrossIdenticalRuns(t *testing.T) {
	run := func() string {
		r := buildRig(line(6, 1), rigOpts{commRange: 5, seed: 99, loss: 0.1})
		r.field.AddSource(acoustics.MobileSource(1, geometry.Point{X: 0}, geometry.Point{X: 5},
			sim.At(time.Second), 5*time.Second, 1.3, acoustics.VoiceTone))
		r.sched.Run(sim.At(8 * time.Second))
		sig := ""
		for _, rec := range r.records {
			sig += fmt.Sprintf("%d:%d:%d;", rec.node, rec.file, rec.start)
		}
		return sig
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestZeroSignalSensingRemovesMember(t *testing.T) {
	r := buildRig(line(3, 1), rigOpts{commRange: 10})
	src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 10*time.Second, 2.1, acoustics.VoiceTone)
	r.field.AddSource(src)
	r.sched.Run(sim.At(3 * time.Second))
	lead := r.leaders()
	if len(lead) != 1 {
		t.Fatalf("leaders = %v", lead)
	}
	mgr := r.nodes[lead[0]].mgr
	before := mgr.MemberCount()
	if before == 0 {
		t.Fatal("no members")
	}
	// Inject a zero-signal SENSING from one member.
	var memberID int
	for id := range mgr.members {
		if id != mgr.id {
			memberID = id
			break
		}
	}
	mgr.handleSensing(memberID, -1, Sensing{Signal: 0})
	if got := mgr.MemberCount(); got != before-1 {
		t.Errorf("member count after zero-signal = %d, want %d", got, before-1)
	}
}

func TestOrphanPreludeSingleKeeper(t *testing.T) {
	// Event so short no election can complete; the orphan-claim protocol
	// must leave exactly one prelude keeper per neighborhood.
	keepers := 0
	for seed := int64(1); seed <= 5; seed++ {
		r := buildRig(line(3, 1), rigOpts{
			commRange: 10, seed: seed,
			groupCfg: func(c *Config) { c.Prelude = time.Second },
		})
		src := acoustics.StaticSource(1, geometry.Point{X: 1}, sim.At(time.Second), 600*time.Millisecond, 2.1, acoustics.VoiceTone)
		r.field.AddSource(src)
		r.sched.Run(sim.At(8 * time.Second))
		holders := 0
		for _, n := range r.nodes {
			if n.dev.store.Len() > 0 {
				holders++
			}
		}
		if holders > 1 {
			t.Errorf("seed %d: %d prelude holders, want <= 1", seed, holders)
		}
		keepers += holders
	}
	if keepers == 0 {
		t.Error("orphaned prelude never persisted across seeds")
	}
}

func TestHundredNodeScale(t *testing.T) {
	// 100 nodes, three concurrent events in distinct regions: elections
	// stay local and every region records, within a modest event budget.
	var pts []geometry.Point
	for row := 0; row < 10; row++ {
		for col := 0; col < 10; col++ {
			pts = append(pts, geometry.Point{X: float64(col) * 2, Y: float64(row) * 2})
		}
	}
	r := buildRig(pts, rigOpts{commRange: 7})
	spots := []geometry.Point{{X: 2, Y: 2}, {X: 16, Y: 4}, {X: 8, Y: 16}}
	for i, p := range spots {
		r.field.AddSource(acoustics.StaticSource(acoustics.SourceID(i+1), p,
			sim.At(time.Second), 10*time.Second, 4.2, acoustics.VoiceTone))
	}
	r.sched.SetEventLimit(3_000_000)
	r.sched.Run(sim.At(14 * time.Second))

	files := map[flash.FileID]bool{}
	for _, rec := range r.records {
		files[rec.file] = true
	}
	if len(files) < 3 {
		t.Errorf("three separated events produced %d files, want >= 3", len(files))
	}
	// Each region achieved reasonable coverage: the three events run in
	// parallel, so the aggregate (overlap-counted) recorded time is the
	// right measure — 30 s of event time across the regions.
	_, total := r.coverage(sim.At(time.Second), sim.At(11*time.Second))
	if total < 20*time.Second {
		t.Errorf("total recorded %v across 3 parallel events, want >= 20s of 30s", total)
	}
}

// Property: BestRecorder never returns the leader itself or an excluded
// or expired member, and with equal TTLs it prefers fresher/stronger
// signals.
func TestQuickBestRecorderContract(t *testing.T) {
	f := func(ttls [6]uint8, sigs [6]uint8, ages [6]uint8, exclMask uint8) bool {
		r := buildRig(line(7, 1), rigOpts{commRange: 10})
		mgr := r.nodes[0].mgr
		now := sim.At(time.Minute)
		r.sched.Run(now)
		exclude := map[int]bool{}
		for i := 0; i < 6; i++ {
			id := i + 1
			age := time.Duration(ages[i]) * 10 * time.Millisecond
			mgr.members[id] = &member{
				lastHeard: now.Add(-age),
				ttl:       uint32(ttls[i]),
				signal:    float64(sigs[i]),
			}
			if exclMask&(1<<i) != 0 {
				exclude[id] = true
			}
		}
		mgr.members[0] = &member{lastHeard: now, ttl: 255, signal: 255} // self
		id, ok := mgr.BestRecorder(exclude)
		if !ok {
			// Acceptable only if every candidate is excluded or expired.
			for i := 0; i < 6; i++ {
				age := time.Duration(ages[i]) * 10 * time.Millisecond
				if !exclude[i+1] && age <= mgr.cfg.MemberTimeout {
					return false
				}
			}
			return true
		}
		if id == 0 || exclude[id] {
			return false
		}
		age := now.Sub(mgr.members[id].lastHeard)
		return age <= mgr.cfg.MemberTimeout
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
