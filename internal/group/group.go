// Package group implements EnviroMic's group management (§II-A.1): nodes
// that hear the same acoustic event compete with randomized back-off
// timers to elect a single-hop leader; the leader names the event (the
// file ID), drives task assignment, and hands leadership off with a
// RESIGN message carrying the file ID and the scheduled next assignment
// time when the source moves out of its sensing range. Every hearing node
// broadcasts periodic SENSING messages so leaders (and would-be leaders
// after a handoff) know the member set without extra traffic. The
// optional prelude optimization records the first second of a new event
// locally, before coordination, so short events are not lost to election
// latency.
package group

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
	"enviromic/internal/task"
)

// Payload kinds, interned at package init.
var (
	KindSensing = radio.RegisterKind("group.sensing")
	KindLeader  = radio.RegisterKind("group.leader")
	KindResign  = radio.RegisterKind("group.resign")
	KindPrelude = radio.RegisterKind("group.preludekeep")
)

// Trace event kinds (see DESIGN.md §11). V1/V2 meanings:
// elect.backoff V1 = chosen back-off in ns; elect.lost Peer = winner (-1
// when the election was abandoned, e.g. hearing ended first); handoff
// Peer = resigning leader, V1 = inherited next-assignment time in ns;
// prelude.keep Peer = chosen keeper; prelude.stored V1/V2 =
// stored/total chunks; hearing V1 = 1 began / 0 ended.
var (
	evHearing      = obs.RegisterEvent("group.hearing")
	evElectBackoff = obs.RegisterEvent("group.elect.backoff")
	evElectWon     = obs.RegisterEvent("group.elect.won")
	evElectLost    = obs.RegisterEvent("group.elect.lost")
	evResign       = obs.RegisterEvent("group.resign")
	evHandoff      = obs.RegisterEvent("group.handoff")
	evPreludeKeep  = obs.RegisterEvent("group.prelude.keep")
	evPreludeStore = obs.RegisterEvent("group.prelude.stored")
)

// Sensing is the periodic "I can hear the event" heartbeat. It carries
// the sender's time-to-live and received signal strength so the leader
// can pick the most suitable recorder, plus whether the sender holds a
// prelude buffer.
type Sensing struct {
	TTLSeconds uint32
	Signal     float64
	HasPrelude bool
}

// Kind implements radio.Payload.
func (Sensing) Kind() radio.KindID { return KindSensing }

// Size implements radio.Payload.
func (Sensing) Size() int { return 9 }

// Leader announces leadership and names the event's file ID.
type Leader struct {
	File flash.FileID
}

// Kind implements radio.Payload.
func (Leader) Kind() radio.KindID { return KindLeader }

// Size implements radio.Payload.
func (Leader) Size() int { return 4 }

// Resign hands leadership off: the file ID preserves recording
// continuity and NextAssignAt tells the successor when the next task is
// due (Fig 5).
type Resign struct {
	File         flash.FileID
	NextAssignAt sim.Time
}

// Kind implements radio.Payload.
func (Resign) Kind() radio.KindID { return KindResign }

// Size implements radio.Payload.
func (Resign) Size() int { return 12 }

// PreludeKeep tells one member to persist its prelude recording under the
// event's file ID; everyone else erases theirs (§II-A.1).
type PreludeKeep struct {
	File   flash.FileID
	Keeper int
}

// Kind implements radio.Payload.
func (PreludeKeep) Kind() radio.KindID { return KindPrelude }

// Size implements radio.Payload.
func (PreludeKeep) Size() int { return 8 }

// Sensor abstracts acoustic detection for the manager. The core layer
// wires the mote's envelope, the background-noise detector, and the
// field's detection probability into one Detect call.
type Sensor interface {
	// Detect reports whether an acoustic event is perceived right now.
	Detect(at sim.Time) bool
	// Signal returns the current received envelope (0 when silent).
	Signal(at sim.Time) float64
}

// TTLSource exposes the node's current storage time-to-live; the storage
// balancer implements it. The value rides in SENSING messages for
// recorder selection.
type TTLSource interface {
	TTLSeconds(at sim.Time) uint32
}

// PreludeDevice persists a prelude buffer; the core layer implements it
// over the mote. Separate from task.Device because the prelude is
// captured retroactively (the past interval), not during a task.
type PreludeDevice interface {
	CaptureSamples(start, end sim.Time) []byte
	StoreChunks(chunks []*flash.Chunk) int
}

// Probe carries optional observer callbacks for the metrics layer.
type Probe struct {
	OnElected     func(node int, file flash.FileID, at sim.Time)
	OnHandoff     func(from, to int, file flash.FileID, at sim.Time)
	OnResign      func(node int, file flash.FileID, at sim.Time)
	OnPreludeKeep func(keeper int, file flash.FileID, at sim.Time)
	// OnPreludeStored fires when a keeper persists its prelude buffer to
	// flash; the node layer records it as coverage like any recording.
	OnPreludeStored func(node int, file flash.FileID, start, end sim.Time, stored, total int)
	// OnHearingChanged fires on hearing-state transitions; the node layer
	// uses it to switch the time-sync beacon rate (§III-A).
	OnHearingChanged func(node int, hearing bool, at sim.Time)
}

// Config holds group-management parameters.
type Config struct {
	// PollInterval is the acoustic detection sampling cadence.
	PollInterval time.Duration
	// SenseInterval is the SENSING heartbeat period while hearing.
	SenseInterval time.Duration
	// MemberTimeout expires member-table entries without fresh SENSING.
	MemberTimeout time.Duration
	// ElectBackoffMin and ElectBackoffMax bound the initial-election
	// random back-off. The minimum gives every hearer time to broadcast
	// its first SENSING before a leader emerges, and calibrates the
	// startup delay to the paper's measured ~0.7 s average for election
	// plus first assignment ("up to one second").
	ElectBackoffMin time.Duration
	ElectBackoffMax time.Duration
	// HandoffBackoffMax bounds the (much shorter) re-election back-off
	// after a RESIGN, so handoff finishes before the next task is due.
	HandoffBackoffMax time.Duration
	// SilencePolls is how many consecutive silent polls make a leader
	// resign (or a member consider the event gone).
	SilencePolls int
	// LeaderTimeout re-triggers election when a hearing member sees no
	// leader traffic for this long (leader death).
	LeaderTimeout time.Duration
	// Prelude, when positive, enables the prelude optimization with this
	// buffer length (§II-A.1 suggests one second).
	Prelude time.Duration
	// SelectBySignal switches recorder selection from highest-TTL to
	// best-signal (both are suggested in §II-A.2; an ablation bench
	// compares them).
	SelectBySignal bool
}

// DefaultConfig mirrors the paper's testbed behaviour: the measured 0.7 s
// average to first leader election plus first assignment comes from the
// detection poll plus this election back-off window.
func DefaultConfig() Config {
	return Config{
		PollInterval:      100 * time.Millisecond,
		SenseInterval:     500 * time.Millisecond,
		MemberTimeout:     1100 * time.Millisecond,
		ElectBackoffMin:   450 * time.Millisecond,
		ElectBackoffMax:   950 * time.Millisecond,
		HandoffBackoffMax: 80 * time.Millisecond,
		SilencePolls:      3,
		LeaderTimeout:     2 * time.Second,
	}
}

func (c Config) validate() {
	if c.PollInterval <= 0 || c.SenseInterval <= 0 || c.MemberTimeout <= 0 {
		panic("group: non-positive interval")
	}
	if c.ElectBackoffMax <= 0 || c.HandoffBackoffMax <= 0 {
		panic("group: non-positive back-off window")
	}
	if c.ElectBackoffMin < 0 || c.ElectBackoffMin >= c.ElectBackoffMax {
		panic("group: ElectBackoffMin outside [0, ElectBackoffMax)")
	}
	if c.SilencePolls <= 0 {
		panic("group: SilencePolls must be >= 1")
	}
	if c.LeaderTimeout <= c.SenseInterval {
		panic("group: LeaderTimeout must exceed SenseInterval")
	}
}

type member struct {
	lastHeard  sim.Time
	ttl        uint32
	signal     float64
	hasPrelude bool
}

// Manager is one node's group-management module.
type Manager struct {
	cfg   Config
	id    int
	stack *netstack.Stack
	sched *sim.Scheduler
	// rng is the node's private random stream (election backoffs and
	// jitter draws must be per-node so sharded runs replay serially).
	rng   *rand.Rand
	sens  Sensor
	ttl   TTLSource
	tasks *task.Service
	pd    PreludeDevice
	probe Probe
	tr    *obs.Tracer

	hearing      bool
	silentPolls  int
	leaderID     int // -1 when unknown
	leaderFile   flash.FileID
	lastLeaderAt sim.Time
	electTimer   *sim.Timer
	// pendingFile carries a file ID across a handoff (from RESIGN);
	// pendingAssign the successor's first assignment time.
	pendingFile   flash.FileID
	pendingAssign sim.Time

	members    map[int]*member
	fileSerial uint32

	lastSensingAt sim.Time

	// Prelude state.
	preludeStart sim.Time
	preludeUntil sim.Time
	havePrelude  bool

	pollTicker  *sim.Ticker
	senseTicker *sim.Ticker
	started     bool
}

// NewManager wires a manager onto the node's stack and task service,
// installing itself as the task service's member view.
func NewManager(id int, stack *netstack.Stack, sched *sim.Scheduler, sens Sensor, ttl TTLSource, tasks *task.Service, pd PreludeDevice, cfg Config, probe Probe) *Manager {
	cfg.validate()
	m := &Manager{
		cfg:      cfg,
		id:       id,
		stack:    stack,
		sched:    sched,
		rng:      stack.Endpoint().Rand(),
		sens:     sens,
		ttl:      ttl,
		tasks:    tasks,
		pd:       pd,
		probe:    probe,
		leaderID: -1,
		members:  make(map[int]*member),
	}
	stack.Register(KindSensing, m.handleSensing)
	stack.Register(KindLeader, m.handleLeader)
	stack.Register(KindResign, m.handleResign)
	stack.Register(KindPrelude, m.handlePreludeKeep)
	tasks.SetView(m)
	tasks.SetOnRecordingDone(m.recordingDone)
	tasks.SetOnPeerLeader(m.resolveLeaderCollision)
	return m
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (m *Manager) SetTracer(tr *obs.Tracer) { m.tr = tr }

// resolveLeaderCollision handles a TASK_REQUEST arriving from a competing
// leader of the same event (both elected, e.g., across radio-off
// windows). The lower ID keeps the role; the return value tells the task
// layer whether to serve the request as a member.
func (m *Manager) resolveLeaderCollision(from int) bool {
	if from < m.id {
		// The peer outranks us: step down and join its group.
		if m.tasks.Leading() {
			m.tasks.StopLeading()
		}
		m.leaderID = from
		m.lastLeaderAt = m.sched.Now()
		return true
	}
	// We outrank the peer: re-assert leadership; it will step down on
	// hearing the announcement.
	m.stack.SendUrgent(radio.Broadcast, Leader{File: m.leaderFile})
	return false
}

// Start begins detection polling.
func (m *Manager) Start() {
	if m.started {
		panic(fmt.Sprintf("group: manager %d already started", m.id))
	}
	m.started = true
	m.pollTicker = sim.NewTicker(m.sched, m.cfg.PollInterval, fmt.Sprintf("group.poll.%d", m.id), m.poll)
}

// Stop halts all activity (used for failure injection).
func (m *Manager) Stop() {
	if m.pollTicker != nil {
		m.pollTicker.Stop()
	}
	if m.senseTicker != nil {
		m.senseTicker.Stop()
	}
	if m.electTimer != nil {
		m.electTimer.Cancel()
	}
	if m.tasks.Leading() {
		m.tasks.StopLeading()
	}
	m.started = false
}

// Reset clears the manager's volatile state to power-on defaults (chaos
// reboot): hearing, leadership knowledge, pending handoff, membership
// table, and prelude state all lived in RAM and are lost. fileSerial is
// deliberately kept — the paper's implementation persists the ID counter
// in EEPROM so a rebooted node never re-issues a file ID that chunks in
// the network already carry. Call while stopped, before Start.
func (m *Manager) Reset() {
	if m.started {
		panic(fmt.Sprintf("group: manager %d reset while started", m.id))
	}
	m.hearing = false
	m.silentPolls = 0
	m.leaderID = -1
	m.leaderFile = 0
	m.lastLeaderAt = 0
	m.pendingFile = 0
	m.pendingAssign = 0
	m.lastSensingAt = 0
	m.preludeStart = 0
	m.preludeUntil = 0
	m.havePrelude = false
	for id := range m.members {
		delete(m.members, id)
	}
}

// Hearing reports whether the node currently perceives an event.
func (m *Manager) Hearing() bool { return m.hearing }

// LeaderID returns the known leader (or -1). The node itself may be the
// leader.
func (m *Manager) LeaderID() int { return m.leaderID }

// CurrentFile returns the file ID of the event in progress (0 if none).
func (m *Manager) CurrentFile() flash.FileID { return m.leaderFile }

// newFileID allocates a network-unique file ID: node ID in the high bits,
// a local serial in the low bits.
func (m *Manager) newFileID() flash.FileID {
	m.fileSerial++
	return flash.FileID(uint32(m.id+1)<<16 | (m.fileSerial & 0xFFFF))
}

// poll runs every PollInterval: updates the hearing state and drives the
// election state machine.
func (m *Manager) poll() {
	now := m.sched.Now()
	if m.tasks.Recording() {
		// Sampling for a task; detection and messaging are suspended
		// (§III-B.1 — the radio is off anyway).
		return
	}
	detected := m.sens.Detect(now)
	switch {
	case detected && !m.hearing:
		m.hearingBegan(now)
	case detected:
		m.silentPolls = 0
	case m.hearing:
		m.silentPolls++
		if m.silentPolls >= m.cfg.SilencePolls {
			m.hearingEnded(now)
		}
	}
	if m.hearing && m.leaderID >= 0 && m.leaderID != m.id &&
		now.Sub(m.lastLeaderAt) > m.cfg.LeaderTimeout {
		// Leader died or moved away without resigning: re-elect, keeping
		// the file ID for continuity.
		m.leaderID = -1
		m.pendingFile = m.leaderFile
		m.pendingAssign = now
		m.startElection(0, m.cfg.HandoffBackoffMax)
	}
}

func (m *Manager) hearingBegan(now sim.Time) {
	m.hearing = true
	m.silentPolls = 0
	m.tr.Emit(now, evHearing, int32(m.id), obs.NoPeer, 0, 1, 0)
	if m.probe.OnHearingChanged != nil {
		m.probe.OnHearingChanged(m.id, true, now)
	}
	if m.cfg.Prelude > 0 && !m.havePrelude && m.leaderID < 0 {
		// Arm the prelude before the first SENSING goes out, so the
		// HasPrelude flag is advertised from the very first heartbeat.
		m.preludeStart = now
		m.preludeUntil = now.Add(m.cfg.Prelude)
		m.havePrelude = true
	}
	if m.leaderID >= 0 && now.Sub(m.lastLeaderAt) > m.cfg.LeaderTimeout {
		// The remembered leader belongs to a long-finished event (we may
		// have missed its RESIGN while recording): this detection is a
		// new event and must get its own election and file ID — the
		// paper expects temporally separated events to produce separate
		// files (§II-A.1).
		m.leaderID = -1
		m.leaderFile = 0
		m.pendingFile = 0
	}
	m.touchSelf(now)
	if m.senseTicker == nil || m.senseTicker.Stopped() {
		m.senseTicker = sim.NewTicker(m.sched, m.cfg.SenseInterval, fmt.Sprintf("group.sense.%d", m.id), m.sendSensing)
	}
	m.sendSensing()
	if m.leaderID < 0 && !m.electTimer.Pending() {
		delay := time.Duration(0)
		if m.cfg.Prelude > 0 {
			// Election waits for the prelude interval (§II-A.1).
			delay = m.cfg.Prelude
		}
		m.sched.After(delay, fmt.Sprintf("group.electstart.%d", m.id), func() {
			if m.hearing && m.leaderID < 0 {
				m.startElection(m.cfg.ElectBackoffMin, m.cfg.ElectBackoffMax)
			}
		})
	}
}

func (m *Manager) hearingEnded(now sim.Time) {
	m.hearing = false
	m.silentPolls = 0
	m.tr.Emit(now, evHearing, int32(m.id), obs.NoPeer, 0, 0, 0)
	if m.probe.OnHearingChanged != nil {
		m.probe.OnHearingChanged(m.id, false, now)
	}
	if m.senseTicker != nil {
		m.senseTicker.Stop()
	}
	if m.electTimer.Cancel() {
		// An armed back-off abandoned without a winner still closes its
		// election span in the trace.
		m.tr.Emit(now, evElectLost, int32(m.id), obs.NoPeer, uint32(m.leaderFile), 0, 0)
	}
	delete(m.members, m.id)
	// A final zero-signal SENSING removes us from neighbors' member
	// tables immediately: a leader must not assign a recording task to a
	// node that just stopped hearing the (moving) source.
	if m.stack.Endpoint().RadioOn() {
		m.stack.SendUrgent(radio.Broadcast, Sensing{Signal: 0})
	}
	if m.leaderID == m.id {
		m.resign(now)
	}
	// A member that stops hearing simply goes quiet; its table entry at
	// the leader expires. Leader identity is retained so a re-detection
	// of the same continuing event does not spawn a second leader.
	if m.havePrelude && m.leaderID < 0 {
		// The event ended before any leader emerged: the prelude is the
		// only recording of it. Compete (short back-off) to be its
		// keeper; losers hear the winner's PreludeKeep and erase.
		m.claimPrelude()
	}
}

// claimPrelude resolves ownership of an orphaned prelude (a short event
// that ended before election). The winner persists the buffer under a
// fresh file ID and announces it; holders that hear the announcement
// first discard theirs.
func (m *Manager) claimPrelude() {
	// ID-staggered back-off: slots are wider than the radio's frame
	// latency, so the winner's announcement arrives before the next
	// claimant's timer fires and exactly one keeper survives per
	// neighborhood.
	backoff := 50*time.Millisecond +
		time.Duration(m.id%16)*40*time.Millisecond +
		time.Duration(m.rng.Int63n(int64(5*time.Millisecond)))
	m.sched.After(backoff, fmt.Sprintf("group.preludeclaim.%d", m.id), func() {
		if !m.havePrelude || m.tasks.Recording() {
			return
		}
		file := m.newFileID()
		m.stack.SendUrgent(radio.Broadcast, PreludeKeep{File: file, Keeper: m.id})
		m.tr.Emit(m.sched.Now(), evPreludeKeep, int32(m.id), int32(m.id), uint32(file), 0, 0)
		if m.probe.OnPreludeKeep != nil {
			m.probe.OnPreludeKeep(m.id, file, m.sched.Now())
		}
		m.persistPrelude(file)
	})
}

// resign relinquishes leadership, broadcasting the file ID and the
// scheduled next assignment time for the successor (Fig 5).
func (m *Manager) resign(now sim.Time) {
	next := m.tasks.StopLeading()
	m.stack.SendUrgent(radio.Broadcast, Resign{File: m.leaderFile, NextAssignAt: next})
	m.tr.Emit(now, evResign, int32(m.id), obs.NoPeer, uint32(m.leaderFile), int64(next), 0)
	if m.probe.OnResign != nil {
		m.probe.OnResign(m.id, m.leaderFile, now)
	}
	m.leaderID = -1
	m.leaderFile = 0
}

// startElection arms the randomized back-off in [min, max) (§II-A.1).
func (m *Manager) startElection(min, max time.Duration) {
	if m.electTimer != nil && m.electTimer.Pending() {
		return
	}
	backoff := min + time.Duration(m.rng.Int63n(int64(max-min)))
	m.tr.Emit(m.sched.Now(), evElectBackoff, int32(m.id), obs.NoPeer, uint32(m.pendingFile), int64(backoff), 0)
	m.electTimer = m.sched.After(backoff, fmt.Sprintf("group.elect.%d", m.id), m.becomeLeader)
}

func (m *Manager) becomeLeader() {
	now := m.sched.Now()
	if !m.hearing || m.leaderID >= 0 || m.tasks.Recording() {
		m.tr.Emit(now, evElectLost, int32(m.id), obs.NoPeer, uint32(m.pendingFile), 0, 0)
		return
	}
	file := m.pendingFile
	assignAt := m.pendingAssign
	handoff := file != 0
	if file == 0 {
		file = m.newFileID()
		assignAt = now
	}
	m.pendingFile = 0
	m.leaderID = m.id
	m.leaderFile = file
	m.lastLeaderAt = now
	m.stack.SendUrgent(radio.Broadcast, Leader{File: file})
	m.tr.Emit(now, evElectWon, int32(m.id), obs.NoPeer, uint32(file), 0, 0)
	if m.probe.OnElected != nil {
		m.probe.OnElected(m.id, file, now)
	}
	m.tasks.StartLeading(file, assignAt)
	if m.cfg.Prelude > 0 && !handoff {
		m.choosePreludeKeeper(file, now)
	}
}

// choosePreludeKeeper picks the member with the strongest advertised
// signal among prelude holders (including itself) and broadcasts the
// decision; everyone else erases their buffer.
func (m *Manager) choosePreludeKeeper(file flash.FileID, now sim.Time) {
	keeper, best := -1, -1.0
	for id, mem := range m.members {
		if !mem.hasPrelude || now.Sub(mem.lastHeard) > m.cfg.MemberTimeout {
			continue
		}
		if mem.signal > best {
			keeper, best = id, mem.signal
		}
	}
	if keeper < 0 {
		if m.havePrelude {
			// No member advertised a prelude (short event, stale tables):
			// the leader keeps its own buffer rather than letting the
			// event's opening vanish.
			keeper = m.id
		} else {
			return
		}
	}
	m.stack.SendUrgent(radio.Broadcast, PreludeKeep{File: file, Keeper: keeper})
	m.tr.Emit(now, evPreludeKeep, int32(m.id), int32(keeper), uint32(file), 0, 0)
	if m.probe.OnPreludeKeep != nil {
		m.probe.OnPreludeKeep(keeper, file, now)
	}
	if keeper == m.id {
		m.persistPrelude(file)
	} else {
		m.discardPrelude()
	}
}

// persistPrelude writes the buffered opening of the event to flash under
// the event's file ID.
func (m *Manager) persistPrelude(file flash.FileID) {
	if !m.havePrelude || m.pd == nil {
		return
	}
	end := m.preludeUntil
	if now := m.sched.Now(); now < end {
		end = now
	}
	samples := m.pd.CaptureSamples(m.preludeStart, end)
	// Prelude chunks use a dedicated sequence band so they can never
	// collide with the task layer's per-file sequence numbers for the
	// same recorder (identical (file, origin, seq) identities would be
	// deduplicated away at reassembly).
	const preludeSeqBase = 1 << 20
	chunks := flash.SplitSamples(file, int32(m.id), preludeSeqBase, m.preludeStart, end, samples)
	stored := m.pd.StoreChunks(chunks)
	// Chunks rejected by a full flash never entered any store: recycle.
	flash.FreeChunks(chunks[stored:])
	m.tr.Emit(m.sched.Now(), evPreludeStore, int32(m.id), obs.NoPeer, uint32(file), int64(stored), int64(len(chunks)))
	if m.probe.OnPreludeStored != nil {
		m.probe.OnPreludeStored(m.id, file, m.preludeStart, end, stored, len(chunks))
	}
	m.discardPrelude()
}

func (m *Manager) discardPrelude() { m.havePrelude = false }

// sendSensing broadcasts the SENSING heartbeat with the current TTL and
// signal strength. The payload is delay-sensitive enough to go urgently,
// but it is also the natural carrier for piggybacked state.
func (m *Manager) sendSensing() {
	if m.tasks.Recording() || !m.stack.Endpoint().RadioOn() {
		return
	}
	now := m.sched.Now()
	if !m.hearing {
		return
	}
	m.touchSelf(now)
	var ttl uint32
	if m.ttl != nil {
		ttl = m.ttl.TTLSeconds(now)
	}
	if m.leaderID == m.id {
		// Leadership heartbeat: rides the SENSING frame as piggyback, so
		// late joiners learn the leader and colliding leaders discover
		// each other, at zero extra frames.
		m.stack.SendDelayTolerant(Leader{File: m.leaderFile})
	}
	m.lastSensingAt = now
	m.stack.SendUrgent(radio.Broadcast, Sensing{
		TTLSeconds: ttl,
		Signal:     m.sens.Signal(now),
		HasPrelude: m.havePrelude,
	})
}

// touchSelf keeps the node's own entry in its member table current, so a
// leader can consider itself... it cannot: BestRecorder excludes self
// (the leader must keep its radio on to coordinate). The entry exists so
// a handoff successor counts us immediately.
func (m *Manager) touchSelf(now sim.Time) {
	var ttl uint32
	if m.ttl != nil {
		ttl = m.ttl.TTLSeconds(now)
	}
	m.members[m.id] = &member{
		lastHeard:  now,
		ttl:        ttl,
		signal:     m.sens.Signal(now),
		hasPrelude: m.havePrelude,
	}
}

func (m *Manager) handleSensing(from, to int, p radio.Payload) {
	snd, ok := p.(Sensing)
	if !ok {
		return
	}
	now := m.sched.Now()
	if snd.Signal <= 0 {
		// The sender stopped hearing the event: drop it from the member
		// table right away.
		delete(m.members, from)
		return
	}
	m.members[from] = &member{
		lastHeard:  now,
		ttl:        snd.TTLSeconds,
		signal:     snd.Signal,
		hasPrelude: snd.HasPrelude,
	}
	if from == m.leaderID {
		// The leader also hears the event and sends SENSING; that is its
		// liveness signal — no separate leader heartbeat is needed.
		m.lastLeaderAt = now
	}
}

func (m *Manager) handleLeader(from, to int, p radio.Payload) {
	l, ok := p.(Leader)
	if !ok {
		return
	}
	now := m.sched.Now()
	if m.leaderID == m.id && from != m.id {
		// Two back-off timers fired within one propagation delay: both
		// nodes announced. Deterministic rule: the lower ID keeps the
		// role, the higher ID steps down and joins as a member.
		if from < m.id {
			m.tasks.StopLeading()
		} else {
			return // we keep leading; the peer will step down
		}
	}
	if m.electTimer.Cancel() {
		// Our back-off was still pending when the announcement arrived:
		// we lost this election to the sender.
		m.tr.Emit(now, evElectLost, int32(m.id), int32(from), uint32(l.File), 0, 0)
	}
	m.leaderID = from
	m.leaderFile = l.File
	m.lastLeaderAt = now
	m.pendingFile = 0
	// A leader announcement doubles as a membership solicitation: a
	// (re-)elected leader — or one returning from a self-recorded task —
	// has a stale or empty member table, so hearing members refresh it
	// promptly instead of waiting out the SENSING period.
	if m.hearing && !m.tasks.Recording() && now.Sub(m.lastSensingAt) > 30*time.Millisecond {
		delay := time.Duration(m.rng.Int63n(int64(80 * time.Millisecond)))
		m.sched.After(delay, fmt.Sprintf("group.solicit.%d", m.id), func() {
			if m.hearing && !m.tasks.Recording() &&
				m.sched.Now().Sub(m.lastSensingAt) > 30*time.Millisecond {
				m.sendSensing()
			}
		})
	}
}

func (m *Manager) handleResign(from, to int, p radio.Payload) {
	r, ok := p.(Resign)
	if !ok || from != m.leaderID {
		return
	}
	now := m.sched.Now()
	m.leaderID = -1
	m.leaderFile = 0
	if m.hearing {
		// Compete to succeed, preserving the file ID and schedule.
		m.pendingFile = r.File
		m.pendingAssign = r.NextAssignAt
		m.tr.Emit(now, evHandoff, int32(m.id), int32(from), uint32(r.File), int64(r.NextAssignAt), 0)
		if m.probe.OnHandoff != nil {
			m.probe.OnHandoff(from, m.id, r.File, now)
		}
		m.startElection(0, m.cfg.HandoffBackoffMax)
	}
}

func (m *Manager) handlePreludeKeep(from, to int, p radio.Payload) {
	pk, ok := p.(PreludeKeep)
	if !ok {
		return
	}
	if pk.Keeper == m.id {
		m.persistPrelude(pk.File)
	} else {
		m.discardPrelude()
	}
}

// recordingDone is the task service's completion callback: refresh our
// SENSING promptly so the (possibly new) leader sees us again.
func (m *Manager) recordingDone() {
	now := m.sched.Now()
	if m.sens.Detect(now) {
		if !m.hearing {
			m.hearingBegan(now)
		} else {
			m.silentPolls = 0
			m.sendSensing()
		}
	}
	if m.leaderID == m.id {
		// A self-recording leader was deaf for the whole task: re-announce
		// leadership so a colliding leader elected meanwhile steps down.
		m.stack.SendUrgent(radio.Broadcast, Leader{File: m.leaderFile})
	}
}

// BestRecorder implements task.MemberView: pick the most suitable live
// member, excluding the leader itself (it must keep coordinating) and the
// given exclusions. Suitability is (TTL, signal) lexicographic by default
// — the member with the most remaining storage, ties broken by acoustic
// reception — or (signal, TTL) with SelectBySignal. The signal component
// matters even in TTL mode: without a storage balancer all TTLs are
// equal, and for mobile sources picking by reception is what keeps the
// recorder near the target (§II-A.2 offers both criteria).
func (m *Manager) BestRecorder(exclude map[int]bool) (int, bool) {
	now := m.sched.Now()
	bestID := -1
	var bestTTL uint32
	var bestSig float64
	better := func(ttl uint32, sig float64, id int) bool {
		if bestID < 0 {
			return true
		}
		a1, a2 := float64(ttl), sig
		b1, b2 := float64(bestTTL), bestSig
		if m.cfg.SelectBySignal {
			a1, a2 = sig, float64(ttl)
			b1, b2 = bestSig, float64(bestTTL)
		}
		if a1 != b1 {
			return a1 > b1
		}
		if a2 != b2 {
			return a2 > b2
		}
		return id < bestID
	}
	for id, mem := range m.members {
		if id == m.id || exclude[id] {
			continue
		}
		age := now.Sub(mem.lastHeard)
		if age > m.cfg.MemberTimeout {
			continue
		}
		// Recency-discount the advertised signal: for a moving source, a
		// SENSING from a second ago describes where the source *was*. A
		// fresh moderate signal beats a stale strong one.
		sig := mem.signal * (1 - float64(age)/float64(m.cfg.MemberTimeout))
		if better(mem.ttl, sig, id) {
			bestID, bestTTL, bestSig = id, mem.ttl, sig
		}
	}
	return bestID, bestID >= 0
}

// MemberCount implements task.MemberView: live members excluding self.
func (m *Manager) MemberCount() int {
	now := m.sched.Now()
	n := 0
	for id, mem := range m.members {
		if id != m.id && now.Sub(mem.lastHeard) <= m.cfg.MemberTimeout {
			n++
		}
	}
	return n
}
