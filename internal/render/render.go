// Package render draws the experiment outputs as plain text: numbered
// series tables, ASCII line charts, grid heatmaps (the contour figures),
// and Gantt-style task timelines. It keeps the cmd binaries small and
// consistent.
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// Table prints named curves sampled at common times, one row per time.
func Table(w *strings.Builder, times []sim.Time, curves map[string][]float64, valueFmt string) {
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%10s", "t(s)")
	for _, name := range names {
		fmt.Fprintf(w, " %12s", name)
	}
	w.WriteByte('\n')
	for i, t := range times {
		fmt.Fprintf(w, "%10.0f", t.Seconds())
		for _, name := range names {
			fmt.Fprintf(w, " %12s", fmt.Sprintf(valueFmt, curves[name][i]))
		}
		w.WriteByte('\n')
	}
}

// Chart draws an ASCII line chart of one or more named curves over a
// shared x axis. Each curve gets a distinct glyph.
func Chart(w *strings.Builder, xs []float64, curves map[string][]float64, width, height int, yLabel string) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		for _, v := range c {
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 1) {
		return
	}
	if maxY == minY {
		maxY = minY + 1
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	if maxX == minX {
		maxX = minX + 1
	}

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, name := range names {
		g := glyphs[ci%len(glyphs)]
		c := curves[name]
		for i, v := range c {
			if i >= len(xs) {
				break
			}
			col := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((v-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				canvas[row][col] = g
			}
		}
	}
	fmt.Fprintf(w, "%s  (y: %.3g .. %.3g)\n", yLabel, minY, maxY)
	for _, row := range canvas {
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
	fmt.Fprintf(w, "   x: %.3g .. %.3g\n", minX, maxX)
	for ci, name := range names {
		fmt.Fprintf(w, "   %c = %s\n", glyphs[ci%len(glyphs)], name)
	}
}

// Heatmap prints a cols×rows heatmap as shaded cells plus the raw values.
func Heatmap(w *strings.Builder, h *geometry.Heatmap, unit string) {
	shades := []byte(" .:-=+*#%@")
	max := h.Max()
	fmt.Fprintf(w, "max cell = %.0f %s\n", max, unit)
	for row := h.Rows - 1; row >= 0; row-- {
		w.WriteString("  ")
		for col := 0; col < h.Cols; col++ {
			v := h.Cell(col, row)
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(shades)-1))
			}
			w.WriteByte(shades[idx])
			w.WriteByte(shades[idx]) // double width for aspect ratio
		}
		w.WriteByte('\n')
	}
	for row := h.Rows - 1; row >= 0; row-- {
		w.WriteString("  ")
		for col := 0; col < h.Cols; col++ {
			fmt.Fprintf(w, "%9.0f", h.Cell(col, row))
		}
		w.WriteByte('\n')
	}
}

// Timeline draws per-node recording spans (Fig 7) as a Gantt chart.
type Span struct {
	Node       int
	Start, End sim.Time
}

// TimelineChart renders spans between from and to across `width` columns.
func TimelineChart(w *strings.Builder, spans []Span, from, to sim.Time, width int) {
	if width < 20 {
		width = 60
	}
	nodes := map[int][]Span{}
	var ids []int
	for _, s := range spans {
		if _, seen := nodes[s.Node]; !seen {
			ids = append(ids, s.Node)
		}
		nodes[s.Node] = append(nodes[s.Node], s)
	}
	sort.Ints(ids)
	span := to.Sub(from).Seconds()
	if span <= 0 {
		return
	}
	col := func(t sim.Time) int {
		c := int(t.Sub(from).Seconds() / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	fmt.Fprintf(w, "  node  %-*s\n", width, fmt.Sprintf("%.1fs .. %.1fs", from.Seconds(), to.Seconds()))
	for _, id := range ids {
		line := []byte(strings.Repeat(".", width))
		for _, s := range nodes[id] {
			for c := col(s.Start); c <= col(s.End); c++ {
				line[c] = '#'
			}
		}
		fmt.Fprintf(w, "  %4d  %s\n", id, string(line))
	}
}

// Histogram prints value-per-bucket bars (Fig 16).
func Histogram(w *strings.Builder, values []float64, bucketLabel func(i int) string, maxBar int) {
	if maxBar <= 0 {
		maxBar = 50
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	for i, v := range values {
		bar := int(v / max * float64(maxBar))
		fmt.Fprintf(w, "  %8s %6.1f |%s\n", bucketLabel(i), v, strings.Repeat("#", bar))
	}
}
