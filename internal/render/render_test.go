package render

import (
	"strings"
	"testing"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

func TestTableLaysOutCurves(t *testing.T) {
	var b strings.Builder
	times := []sim.Time{sim.At(time.Second), sim.At(2 * time.Second)}
	Table(&b, times, map[string][]float64{
		"beta": {0.5, 0.75},
		"alfa": {0.1, 0.2},
	}, "%.2f")
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns sorted by name: alfa before beta.
	if !strings.Contains(lines[0], "alfa") || strings.Index(lines[0], "alfa") > strings.Index(lines[0], "beta") {
		t.Errorf("header ordering wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "0.10") || !strings.Contains(lines[1], "0.50") {
		t.Errorf("row values missing: %q", lines[1])
	}
}

func TestChartRendersAllCurves(t *testing.T) {
	var b strings.Builder
	xs := []float64{0, 1, 2, 3}
	Chart(&b, xs, map[string][]float64{
		"up":   {0, 1, 2, 3},
		"down": {3, 2, 1, 0},
	}, 40, 6, "value")
	out := b.String()
	if !strings.Contains(out, "* = down") || !strings.Contains(out, "o = up") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "value") {
		t.Error("y label missing")
	}
	// Both glyphs appear on the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("curve glyphs missing")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var b strings.Builder
	Chart(&b, []float64{0}, map[string][]float64{}, 10, 3, "x") // no curves
	Chart(&b, []float64{5}, map[string][]float64{"flat": {7}}, 10, 3, "x")
	if !strings.Contains(b.String(), "flat") {
		t.Error("single-point curve not rendered")
	}
}

func TestHeatmapShadesAndValues(t *testing.T) {
	h := geometry.NewHeatmap(0, 0, 2, 2, 2, 2)
	h.Add(geometry.Point{X: 0.5, Y: 0.5}, 100)
	h.Add(geometry.Point{X: 1.5, Y: 1.5}, 50)
	var b strings.Builder
	Heatmap(&b, h, "bytes")
	out := b.String()
	if !strings.Contains(out, "max cell = 100 bytes") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "@@") {
		t.Error("hottest cell not at full shade")
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "50") {
		t.Error("raw values missing")
	}
}

func TestTimelineChart(t *testing.T) {
	spans := []Span{
		{Node: 3, Start: sim.At(time.Second), End: sim.At(2 * time.Second)},
		{Node: 1, Start: sim.At(2 * time.Second), End: sim.At(3 * time.Second)},
		{Node: 3, Start: sim.At(4 * time.Second), End: sim.At(5 * time.Second)},
	}
	var b strings.Builder
	TimelineChart(&b, spans, 0, sim.At(6*time.Second), 60)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 node rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Rows sorted by node ID; both contain bars.
	if !strings.Contains(lines[1], "1") || !strings.Contains(lines[1], "#") {
		t.Errorf("node 1 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "3") || strings.Count(lines[2], "#") < 10 {
		t.Errorf("node 3 row wrong: %q", lines[2])
	}
	// Degenerate window renders nothing.
	var e strings.Builder
	TimelineChart(&e, spans, sim.At(time.Second), sim.At(time.Second), 60)
	if e.Len() != 0 {
		t.Error("zero-span timeline rendered output")
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	Histogram(&b, []float64{0, 5, 10}, func(i int) string { return "b" }, 10)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Errorf("max bar wrong: %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[0], "#") {
		t.Errorf("zero bar wrong: %q", lines[0])
	}
	// All-zero input must not divide by zero.
	var z strings.Builder
	Histogram(&z, []float64{0, 0}, func(int) string { return "z" }, 10)
}
