// Package retrieval implements EnviroMic's data retrieval subsystem
// (§II-C). The paper's final design is deliberately simple: data is
// usually retrieved exactly once, when the experiment ends and the motes
// are physically collected — the user acts as the data mule. This package
// provides that offline path (Reassemble over collected flash contents),
// the protocol path the paper describes for in-field collection — a
// single-hop query broadcast answered over the reliable bulk transfer,
// with gap detection and re-request — and the multihop spanning-tree
// variant the authors considered (flood the query, convergecast chunks
// toward the sink).
package retrieval

import (
	"fmt"
	"sort"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// Query selects chunks by time range, recording origin, and file ID. Nil
// / zero fields match everything, so the common "retrieve all files"
// query is the zero value with All set.
type Query struct {
	// All short-circuits matching: every chunk matches.
	All bool
	// From/To bound the chunk time range (inclusive overlap); both zero
	// means unbounded.
	From, To sim.Time
	// Origins restricts to chunks recorded by the listed nodes.
	Origins map[int32]bool
	// Files restricts to the listed file IDs (used for gap re-requests).
	Files map[flash.FileID]bool
}

// Matches reports whether the chunk satisfies the query.
func (q Query) Matches(c *flash.Chunk) bool {
	if q.All {
		return true
	}
	if q.From != 0 || q.To != 0 {
		if q.To != 0 && c.Start >= q.To {
			return false
		}
		if c.End <= q.From {
			return false
		}
	}
	if len(q.Origins) > 0 && !q.Origins[c.Origin] {
		return false
	}
	if len(q.Files) > 0 && !q.Files[c.File] {
		return false
	}
	return true
}

// File is one reassembled distributed file: all chunks of one event,
// possibly recorded by several motes and stored on yet other motes.
type File struct {
	ID     flash.FileID
	Chunks []*flash.Chunk // sorted by Start then Origin/Seq, deduplicated
}

// Start returns the earliest chunk start.
func (f *File) Start() sim.Time {
	if len(f.Chunks) == 0 {
		return 0
	}
	return f.Chunks[0].Start
}

// End returns the latest chunk end.
func (f *File) End() sim.Time {
	var end sim.Time
	for _, c := range f.Chunks {
		if c.End > end {
			end = c.End
		}
	}
	return end
}

// Duration returns End − Start.
func (f *File) Duration() time.Duration { return f.End().Sub(f.Start()) }

// Bytes returns the total payload size.
func (f *File) Bytes() int {
	n := 0
	for _, c := range f.Chunks {
		n += len(c.Data)
	}
	return n
}

// Gap is an uncovered stretch inside a file's time span.
type Gap struct {
	Start, End sim.Time
}

// Gaps returns uncovered stretches longer than tolerance between the
// file's first and last chunk.
func (f *File) Gaps(tolerance time.Duration) []Gap {
	if len(f.Chunks) == 0 {
		return nil
	}
	var gaps []Gap
	cursor := f.Chunks[0].End
	for _, c := range f.Chunks[1:] {
		if c.Start.Sub(cursor) > tolerance {
			gaps = append(gaps, Gap{cursor, c.Start})
		}
		if c.End > cursor {
			cursor = c.End
		}
	}
	return gaps
}

// Origins returns the set of recorder nodes contributing to the file.
func (f *File) Origins() []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, c := range f.Chunks {
		if !seen[c.Origin] {
			seen[c.Origin] = true
			out = append(out, c.Origin)
		}
	}
	return out
}

// Reassemble groups chunks into files: sorted by start time (then origin,
// then sequence) with exact duplicates — the same (file, origin, seq)
// stored on two motes after an ACK-loss retransmission or a migration
// copy — removed, so byte counts and gap math are not inflated by
// redundancy. Holdings are walked in ascending node-ID order and the
// first copy wins, making the surviving pointer set deterministic
// regardless of map iteration order.
func Reassemble(holdings map[int][]*flash.Chunk, q Query) map[flash.FileID]*File {
	type key struct {
		origin int32
		seq    uint32
	}
	nodes := make([]int, 0, len(holdings))
	for id := range holdings {
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	perFile := make(map[flash.FileID]map[key]*flash.Chunk)
	for _, id := range nodes {
		for _, c := range holdings[id] {
			if c == nil || !q.Matches(c) {
				continue
			}
			m := perFile[c.File]
			if m == nil {
				m = make(map[key]*flash.Chunk)
				perFile[c.File] = m
			}
			k := key{c.Origin, c.Seq}
			if _, dup := m[k]; !dup {
				m[k] = c
			}
		}
	}
	out := make(map[flash.FileID]*File, len(perFile))
	for id, m := range perFile {
		f := &File{ID: id, Chunks: make([]*flash.Chunk, 0, len(m))}
		for _, c := range m {
			f.Chunks = append(f.Chunks, c)
		}
		sortChunks(f.Chunks)
		out[id] = f
	}
	return out
}

// sortChunks orders by (Start, Origin, Seq) — time-major so stitching
// across recorder handoffs is direct.
func sortChunks(cs []*flash.Chunk) {
	less := func(a, b *flash.Chunk) bool {
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	}
	// Shell-ish insertion sort is fine for per-file chunk counts (tens to
	// a few thousand); retrieval is a once-per-experiment operation.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// Summary describes a reassembled collection for display.
type Summary struct {
	Files       int
	Chunks      int
	Bytes       int
	GapCount    int
	TotalLength time.Duration
}

// Summarize computes collection-wide statistics with the given gap
// tolerance.
func Summarize(files map[flash.FileID]*File, tolerance time.Duration) Summary {
	var s Summary
	for _, f := range files {
		s.Files++
		s.Chunks += len(f.Chunks)
		s.Bytes += f.Bytes()
		s.GapCount += len(f.Gaps(tolerance))
		s.TotalLength += f.Duration()
	}
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%d files, %d chunks, %d bytes, %v total audio, %d gaps",
		s.Files, s.Chunks, s.Bytes, s.TotalLength, s.GapCount)
}
