package retrieval

import (
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

func mkChunk(file flash.FileID, origin int32, seq uint32, startSec, endSec float64) *flash.Chunk {
	return &flash.Chunk{
		File: file, Origin: origin, Seq: seq,
		Start: sim.Time(startSec * float64(time.Second)),
		End:   sim.Time(endSec * float64(time.Second)),
		Data:  []byte{byte(file), byte(origin), byte(seq)},
	}
}

func TestQueryMatching(t *testing.T) {
	c := mkChunk(7, 3, 2, 10, 11)
	tests := []struct {
		name string
		q    Query
		want bool
	}{
		{"all", Query{All: true}, true},
		{"zero query matches", Query{}, true},
		{"time overlap", Query{From: sim.Time(10500 * int64(time.Millisecond)), To: sim.Time(12 * int64(time.Second))}, true},
		{"time before", Query{From: sim.Time(11 * int64(time.Second)), To: sim.Time(20 * int64(time.Second))}, false},
		{"time after", Query{From: sim.Time(1 * int64(time.Second)), To: sim.Time(10 * int64(time.Second))}, false},
		{"origin match", Query{Origins: map[int32]bool{3: true}}, true},
		{"origin mismatch", Query{Origins: map[int32]bool{4: true}}, false},
		{"file match", Query{Files: map[flash.FileID]bool{7: true}}, true},
		{"file mismatch", Query{Files: map[flash.FileID]bool{8: true}}, false},
		{"combined", Query{Origins: map[int32]bool{3: true}, Files: map[flash.FileID]bool{8: true}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.Matches(c); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestReassembleGroupsAndSorts(t *testing.T) {
	holdings := map[int][]*flash.Chunk{
		0: {mkChunk(1, 0, 1, 11, 12), mkChunk(2, 0, 0, 50, 51)},
		1: {mkChunk(1, 1, 0, 12, 13)},
		2: {mkChunk(1, 0, 0, 10, 11)},
	}
	files := Reassemble(holdings, Query{All: true})
	if len(files) != 2 {
		t.Fatalf("got %d files, want 2", len(files))
	}
	f := files[1]
	if len(f.Chunks) != 3 {
		t.Fatalf("file 1 has %d chunks, want 3", len(f.Chunks))
	}
	for i := 1; i < len(f.Chunks); i++ {
		if f.Chunks[i].Start < f.Chunks[i-1].Start {
			t.Error("chunks not time-sorted")
		}
	}
	if f.Start() != sim.Time(10*int64(time.Second)) || f.End() != sim.Time(13*int64(time.Second)) {
		t.Errorf("file span = %v..%v", f.Start(), f.End())
	}
	if f.Duration() != 3*time.Second {
		t.Errorf("Duration = %v", f.Duration())
	}
	if f.Bytes() != 9 {
		t.Errorf("Bytes = %d", f.Bytes())
	}
	origins := f.Origins()
	if len(origins) != 2 {
		t.Errorf("Origins = %v", origins)
	}
}

func TestReassembleDeduplicates(t *testing.T) {
	// The same (origin, seq) chunk stored on two nodes (migration dup).
	holdings := map[int][]*flash.Chunk{
		0: {mkChunk(1, 0, 0, 10, 11)},
		1: {mkChunk(1, 0, 0, 10, 11)},
	}
	files := Reassemble(holdings, Query{All: true})
	if got := len(files[1].Chunks); got != 1 {
		t.Errorf("deduplicated chunks = %d, want 1", got)
	}
}

func TestReassembleAppliesQuery(t *testing.T) {
	holdings := map[int][]*flash.Chunk{
		0: {mkChunk(1, 0, 0, 10, 11), mkChunk(2, 1, 0, 20, 21)},
	}
	files := Reassemble(holdings, Query{Origins: map[int32]bool{1: true}})
	if len(files) != 1 || files[2] == nil {
		t.Fatalf("query filter failed: %v", files)
	}
}

func TestFileGaps(t *testing.T) {
	f := &File{ID: 1, Chunks: []*flash.Chunk{
		mkChunk(1, 0, 0, 10, 11),
		mkChunk(1, 0, 1, 11, 12),
		mkChunk(1, 1, 0, 14, 15), // 2 s gap
	}}
	gaps := f.Gaps(100 * time.Millisecond)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	if gaps[0].Start != sim.Time(12*int64(time.Second)) || gaps[0].End != sim.Time(14*int64(time.Second)) {
		t.Errorf("gap = %+v", gaps[0])
	}
	// A generous tolerance hides the gap.
	if got := f.Gaps(3 * time.Second); len(got) != 0 {
		t.Errorf("tolerant gaps = %v", got)
	}
	var empty File
	if empty.Gaps(0) != nil {
		t.Error("empty file has gaps")
	}
}

func TestSummarize(t *testing.T) {
	holdings := map[int][]*flash.Chunk{
		0: {mkChunk(1, 0, 0, 10, 11), mkChunk(1, 0, 1, 13, 14), mkChunk(2, 1, 0, 20, 22)},
	}
	files := Reassemble(holdings, Query{All: true})
	s := Summarize(files, 100*time.Millisecond)
	if s.Files != 2 || s.Chunks != 3 || s.GapCount != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

// protocol rig: three motes with stores + a mule.
type protoRig struct {
	sched  *sim.Scheduler
	net    *radio.Network
	stores []*flash.Store
	resp   []*Responder
	mule   *Mule
}

func newProtoRig(t *testing.T, commRange float64, positions []geometry.Point) *protoRig {
	t.Helper()
	r := &protoRig{sched: sim.NewScheduler(31)}
	cfg := radio.DefaultConfig(commRange)
	cfg.LossProb = 0
	r.net = radio.NewNetwork(r.sched, cfg)
	for i, pos := range positions {
		st := netstack.NewStack(r.net.Join(i, pos), r.sched)
		bu := netstack.NewBulk(st, r.sched)
		store := flash.NewStore(256)
		resp := NewResponder(i, st, bu, r.sched, store)
		r.stores = append(r.stores, store)
		r.resp = append(r.resp, resp)
	}
	r.mule = NewMule(100, positions[0], r.net, r.sched)
	return r
}

func TestOneHopMuleCollection(t *testing.T) {
	r := newProtoRig(t, 10, []geometry.Point{{X: 0}, {X: 1}, {X: 2}})
	_ = r.stores[0].Enqueue(mkChunk(1, 0, 0, 10, 11))
	_ = r.stores[1].Enqueue(mkChunk(1, 1, 1, 11, 12))
	_ = r.stores[2].Enqueue(mkChunk(2, 2, 0, 30, 31))
	r.mule.Ask(Query{All: true})
	r.sched.RunAll()
	if len(r.mule.Collected) != 3 {
		t.Fatalf("mule collected %d chunks, want 3", len(r.mule.Collected))
	}
	files := r.mule.Files()
	if len(files) != 2 {
		t.Errorf("mule reassembled %d files, want 2", len(files))
	}
	// Stores are unchanged: retrieval is a read.
	for i, st := range r.stores {
		if st.Len() != 1 {
			t.Errorf("store %d drained by retrieval", i)
		}
	}
}

func TestOneHopQueryFilters(t *testing.T) {
	r := newProtoRig(t, 10, []geometry.Point{{X: 0}, {X: 1}})
	_ = r.stores[0].Enqueue(mkChunk(1, 0, 0, 10, 11))
	_ = r.stores[1].Enqueue(mkChunk(2, 1, 0, 100, 101))
	r.mule.Ask(Query{From: 0, To: sim.Time(50 * int64(time.Second))})
	r.sched.RunAll()
	if len(r.mule.Collected) != 1 || r.mule.Collected[0].File != 1 {
		t.Errorf("time-filtered collection = %v", r.mule.Collected)
	}
}

func TestOneHopDoesNotReachFarNodes(t *testing.T) {
	r := newProtoRig(t, 1.5, []geometry.Point{{X: 0}, {X: 1}, {X: 10}})
	_ = r.stores[1].Enqueue(mkChunk(1, 1, 0, 10, 11))
	_ = r.stores[2].Enqueue(mkChunk(2, 2, 0, 10, 11))
	r.mule.Ask(Query{All: true})
	r.sched.RunAll()
	if len(r.mule.Collected) != 1 {
		t.Errorf("collected %d chunks, want only the in-range node's 1", len(r.mule.Collected))
	}
}

func TestSpanningTreeReachesMultiHop(t *testing.T) {
	// Chain: mule at x=0; nodes at 1,2,3 with range 1.5 — node at x=3 is
	// two hops from the mule and must deliver via relays.
	r := newProtoRig(t, 1.5, []geometry.Point{{X: 1}, {X: 2}, {X: 3}})
	_ = r.stores[2].Enqueue(mkChunk(5, 2, 0, 10, 11))
	_ = r.stores[2].Enqueue(mkChunk(5, 2, 1, 11, 12))
	r.mule.Flood(Query{All: true}, 1)
	r.sched.Run(sim.At(time.Minute))
	if len(r.mule.Collected) != 2 {
		t.Fatalf("spanning tree delivered %d chunks, want 2", len(r.mule.Collected))
	}
	// Tree structure: node 0 parents to the mule; node 2 to node 1.
	if r.resp[0].Parent() != 100 {
		t.Errorf("node 0 parent = %d, want mule(100)", r.resp[0].Parent())
	}
	if r.resp[2].Parent() != 1 {
		t.Errorf("node 2 parent = %d, want 1", r.resp[2].Parent())
	}
}

func TestFloodRoundsAreIdempotent(t *testing.T) {
	r := newProtoRig(t, 10, []geometry.Point{{X: 1}, {X: 2}})
	_ = r.stores[0].Enqueue(mkChunk(1, 0, 0, 10, 11))
	r.mule.Flood(Query{All: true}, 1)
	r.sched.Run(sim.At(30 * time.Second))
	got := len(r.mule.Collected)
	// Re-flooding the same round number is ignored by responders.
	r.mule.Flood(Query{All: true}, 1)
	r.sched.Run(sim.At(60 * time.Second))
	if len(r.mule.Collected) != got {
		t.Errorf("stale flood round re-triggered responses")
	}
	// A new round collects again (mule dedupes, so count stays).
	r.mule.Flood(Query{All: true}, 2)
	r.sched.Run(sim.At(90 * time.Second))
	if len(r.mule.Collected) != got {
		t.Errorf("mule failed to dedupe repeat collection")
	}
}

func TestGapReRequest(t *testing.T) {
	r := newProtoRig(t, 10, []geometry.Point{{X: 0}, {X: 1}})
	// Node 0 has the head of file 1, node 1 the tail (with a hole we can
	// see until the second query).
	_ = r.stores[0].Enqueue(mkChunk(1, 0, 0, 10, 11))
	_ = r.stores[1].Enqueue(mkChunk(1, 0, 2, 14, 15))
	r.mule.Ask(Query{From: 0, To: sim.Time(12 * int64(time.Second))})
	r.sched.RunAll()
	missing := r.mule.MissingFiles(500 * time.Millisecond)
	// Only the head was fetched; the file has no *visible* gap yet with
	// one chunk, so instead fetch everything and check gap detection on
	// the full file.
	r.mule.Ask(Query{All: true})
	r.sched.RunAll()
	missing = r.mule.MissingFiles(500 * time.Millisecond)
	if !missing.Files[1] {
		t.Errorf("gap in file 1 not detected: %v", missing.Files)
	}
}

func TestMuleDeduplicatesAcrossResponders(t *testing.T) {
	// Two stores hold the same chunk (post-migration duplicate): the mule
	// keeps one.
	r := newProtoRig(t, 10, []geometry.Point{{X: 0}, {X: 1}})
	_ = r.stores[0].Enqueue(mkChunk(1, 0, 0, 10, 11))
	_ = r.stores[1].Enqueue(mkChunk(1, 0, 0, 10, 11))
	r.mule.Ask(Query{All: true})
	r.sched.RunAll()
	if len(r.mule.Collected) != 1 {
		t.Errorf("mule kept %d copies, want 1", len(r.mule.Collected))
	}
}

func TestMuleTourCollectsAcrossThePlain(t *testing.T) {
	// Nodes spread over 30 units with a 3-unit radio: no single stop can
	// reach everyone one-hop; a tour along the line can.
	positions := []geometry.Point{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	r := newProtoRig(t, 3, positions)
	for i := range positions {
		_ = r.stores[i].Enqueue(mkChunk(flash.FileID(i+1), int32(i), 0, float64(i*10), float64(i*10+1)))
	}
	// Parked mule: reaches only node 0 (mule was joined at positions[0]).
	r.mule.Ask(Query{All: true})
	r.sched.Run(r.sched.Now().Add(10 * time.Second))
	if len(r.mule.Collected) != 1 {
		t.Fatalf("parked mule collected %d, want 1", len(r.mule.Collected))
	}
	// Touring mule: visits each cluster.
	got := r.mule.Tour(r.sched, positions, 10*time.Second, Query{All: true})
	if got != 3 {
		t.Errorf("tour newly collected %d chunks, want the remaining 3", got)
	}
	if len(r.mule.Collected) != 4 {
		t.Errorf("total collected %d, want 4", len(r.mule.Collected))
	}
}

func TestMuleTourValidation(t *testing.T) {
	r := newProtoRig(t, 3, []geometry.Point{{X: 0}})
	defer func() {
		if recover() == nil {
			t.Error("zero dwell accepted")
		}
	}()
	r.mule.Tour(r.sched, []geometry.Point{{X: 0}}, 0, Query{All: true})
}

// at converts seconds to sim time for gap-boundary assertions.
func at(sec float64) sim.Time { return sim.Time(sec * float64(time.Second)) }

// TestReassembleDedupsMigratedCopies is the migrated-copy fixture: after
// storage balancing, the same (file, origin, seq) chunk lives on several
// motes (the original recorder and one or more migration targets). Byte
// counts, chunk counts, and gap math must not be inflated by these
// copies.
func TestReassembleDedupsMigratedCopies(t *testing.T) {
	original := mkChunk(1, 2, 0, 10, 11)
	bridge := mkChunk(1, 2, 1, 11, 12)
	tail := mkChunk(1, 2, 2, 12, 13)
	holdings := map[int][]*flash.Chunk{
		2: {original, bridge, tail},
		// Node 5 received migrated copies of the first two chunks.
		5: {original.Clone(), bridge.Clone()},
		// Node 9 holds a third copy of the bridge chunk.
		9: {bridge.Clone()},
	}
	files := Reassemble(holdings, Query{All: true})
	f := files[1]
	if f == nil {
		t.Fatal("file 1 missing")
	}
	if len(f.Chunks) != 3 {
		t.Fatalf("chunks = %d, want 3 (copies deduplicated)", len(f.Chunks))
	}
	if got := f.Bytes(); got != 9 {
		t.Fatalf("Bytes = %d, want 9 (3 chunks x 3 bytes, not inflated)", got)
	}
	if gaps := f.Gaps(100 * time.Millisecond); len(gaps) != 0 {
		t.Fatalf("gaps = %v, want none (coverage is contiguous)", gaps)
	}
	s := Summarize(files, 100*time.Millisecond)
	if s.Chunks != 3 || s.Bytes != 9 || s.GapCount != 0 {
		t.Fatalf("summary inflated by migrated copies: %v", s)
	}
}

// TestReassembleDeterministicAcrossNodeOrder: the surviving pointer for a
// duplicated key is the copy on the lowest node ID, regardless of map
// iteration order.
func TestReassembleDeterministicAcrossNodeOrder(t *testing.T) {
	a := mkChunk(1, 2, 0, 10, 11)
	b := a.Clone()
	for trial := 0; trial < 20; trial++ {
		files := Reassemble(map[int][]*flash.Chunk{7: {b}, 3: {a}}, Query{All: true})
		if files[1].Chunks[0] != a {
			t.Fatalf("trial %d: winner is node 7's copy, want node 3's", trial)
		}
	}
}

func TestGapsZeroDurationChunks(t *testing.T) {
	f := &File{ID: 1, Chunks: []*flash.Chunk{
		mkChunk(1, 0, 0, 10, 10), // zero-duration marker chunk
		mkChunk(1, 0, 1, 10, 11),
		mkChunk(1, 0, 2, 12, 12), // zero-duration inside the hole
		mkChunk(1, 0, 3, 13, 14),
	}}
	gaps := f.Gaps(500 * time.Millisecond)
	// Coverage: [10,11], point at 12, [13,14] -> holes (11,12) and (12,13).
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v, want 2", gaps)
	}
	if gaps[0].Start != at(11) || gaps[0].End != at(12) || gaps[1].Start != at(12) || gaps[1].End != at(13) {
		t.Fatalf("gap bounds = %v", gaps)
	}
	// A file that is nothing but zero-duration chunks has no gaps and no
	// duration.
	z := &File{ID: 2, Chunks: []*flash.Chunk{mkChunk(2, 0, 0, 5, 5), mkChunk(2, 0, 1, 5, 5)}}
	if gaps := z.Gaps(0); len(gaps) != 0 {
		t.Fatalf("zero-duration file gaps = %v", gaps)
	}
	if z.Duration() != 0 {
		t.Fatalf("zero-duration file duration = %v", z.Duration())
	}
}

func TestGapsExactToleranceBoundary(t *testing.T) {
	f := &File{ID: 1, Chunks: []*flash.Chunk{
		mkChunk(1, 0, 0, 0, 1),
		mkChunk(1, 0, 1, 1.5, 2.5), // hole is exactly 500ms
	}}
	if gaps := f.Gaps(500 * time.Millisecond); len(gaps) != 0 {
		t.Fatalf("hole equal to tolerance reported: %v", gaps)
	}
	if gaps := f.Gaps(500*time.Millisecond - time.Nanosecond); len(gaps) != 1 {
		t.Fatalf("hole one nanosecond over tolerance not reported")
	}
	if gaps := f.Gaps(0); len(gaps) != 1 {
		t.Fatalf("zero tolerance must report any positive hole")
	}
}

// TestGapsOutOfOrderSeqEqualTimestamps: two recorders can stamp chunks
// with identical start times (a handoff seam); sort order falls back to
// (origin, seq) and gap math must still see contiguous coverage.
func TestGapsOutOfOrderSeqEqualTimestamps(t *testing.T) {
	holdings := map[int][]*flash.Chunk{0: {
		mkChunk(1, 4, 7, 10, 11), // same start, later origin, high seq
		mkChunk(1, 2, 1, 10, 12),
		mkChunk(1, 2, 0, 9, 10),
		mkChunk(1, 4, 6, 12, 13),
	}}
	f := Reassemble(holdings, Query{All: true})[1]
	if len(f.Chunks) != 4 {
		t.Fatalf("chunks = %d", len(f.Chunks))
	}
	// Sorted: (9,2,0), (10,2,1), (10,4,7), (12,4,6).
	if f.Chunks[1].Origin != 2 || f.Chunks[2].Origin != 4 {
		t.Fatalf("equal-timestamp tie not broken by origin: %v then %v", f.Chunks[1], f.Chunks[2])
	}
	if gaps := f.Gaps(0); len(gaps) != 0 {
		t.Fatalf("gaps = %v, want none (chunk [10,12] bridges the zero-advance chunk)", gaps)
	}
	if f.Start() != at(9) || f.End() != at(13) {
		t.Fatalf("span = [%v,%v]", f.Start(), f.End())
	}
}
