package retrieval

import (
	"fmt"
	"sort"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Payload kinds, interned at package init.
var (
	KindQuery = radio.RegisterKind("retr.query")
	KindFlood = radio.RegisterKind("retr.flood")
)

// Trace event kinds (see DESIGN.md §11). query.recv/flood.recv are
// responder-side (Peer = querying node; V1 = matching chunks, flood V2 =
// tree depth); ask/flood.send are mule-side; gap fires per gapped file
// during gap detection (File, V1 = gap count); rerequest summarizes the
// follow-up query (V1 = gapped files); reassemble reports a collection
// rebuild (V1 = files, V2 = chunks).
var (
	evQueryRecv  = obs.RegisterEvent("retr.query.recv")
	evFloodRecv  = obs.RegisterEvent("retr.flood.recv")
	evAsk        = obs.RegisterEvent("retr.ask")
	evFloodSend  = obs.RegisterEvent("retr.flood.send")
	evGap        = obs.RegisterEvent("retr.gap")
	evRerequest  = obs.RegisterEvent("retr.rerequest")
	evReassemble = obs.RegisterEvent("retr.reassemble")
)

// QueryMsg is the single-hop retrieval request: nodes in range answer
// with their matching chunks over the bulk transfer (§II-C's final,
// single-hop design).
type QueryMsg struct {
	Q       Query
	ReplyTo int
}

// Kind implements radio.Payload.
func (QueryMsg) Kind() radio.KindID { return KindQuery }

// Size implements radio.Payload: range (16) + small filter sets + sink.
func (q QueryMsg) Size() int { return 20 + 4*len(q.Q.Origins) + 4*len(q.Q.Files) }

// FloodMsg is the spanning-tree variant: the query floods the network;
// each node remembers its tree parent (the neighbor it first heard the
// flood from) and convergecasts matching chunks toward the sink hop by
// hop.
type FloodMsg struct {
	Q     Query
	Round uint32
	Sink  int
	Depth uint8
}

// Kind implements radio.Payload.
func (FloodMsg) Kind() radio.KindID { return KindFlood }

// Size implements radio.Payload.
func (f FloodMsg) Size() int { return 26 + 4*len(f.Q.Origins) + 4*len(f.Q.Files) }

// Responder answers retrieval queries from a node's local store. It is
// installed on every EnviroMic node; it never removes chunks (retrieval
// is a read — the flash survives until physical collection).
type Responder struct {
	id    int
	stack *netstack.Stack
	bulk  *netstack.Bulk
	sched *sim.Scheduler
	store *flash.Store
	tr    *obs.Tracer

	// ResponseDelayPerNode staggers replies so dozens of stores do not
	// dogpile the sink at once.
	ResponseDelayPerNode time.Duration

	// RelayWindow is how long after a flood a node keeps treating
	// incoming bulk chunks as convergecast traffic to forward up the
	// tree (rather than storage-balancing data to keep).
	RelayWindow time.Duration

	// Spanning-tree state.
	round       uint32
	parent      int
	depth       uint8
	activeUntil sim.Time
	pending     []*flash.Chunk
	flushArmed  bool
}

// NewResponder wires a responder onto the node's stack, installing its
// relay logic as the bulk service's retrieval-class acceptor.
func NewResponder(id int, stack *netstack.Stack, bulk *netstack.Bulk, sched *sim.Scheduler, store *flash.Store) *Responder {
	r := &Responder{
		id:                   id,
		stack:                stack,
		bulk:                 bulk,
		sched:                sched,
		store:                store,
		ResponseDelayPerNode: 150 * time.Millisecond,
		RelayWindow:          30 * time.Second,
		parent:               -1,
	}
	stack.Register(KindQuery, r.handleQuery)
	stack.Register(KindFlood, r.handleFlood)
	bulk.SetRetrievalAccept(r.relayAccept)
	return r
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (r *Responder) SetTracer(tr *obs.Tracer) { r.tr = tr }

func (r *Responder) matching(q Query) []*flash.Chunk {
	var out []*flash.Chunk
	for _, c := range r.store.Chunks() {
		if q.Matches(c) {
			out = append(out, c.Clone())
		}
	}
	return out
}

func (r *Responder) handleQuery(from, to int, p radio.Payload) {
	msg, ok := p.(QueryMsg)
	if !ok {
		return
	}
	chunks := r.matching(msg.Q)
	r.tr.Emit(r.sched.Now(), evQueryRecv, int32(r.id), int32(from), 0, int64(len(chunks)), 0)
	if len(chunks) == 0 {
		return
	}
	delay := time.Duration(r.id%16+1) * r.ResponseDelayPerNode
	r.sched.After(delay, fmt.Sprintf("retr.reply.%d", r.id), func() {
		// The response clones exist only for this session (bulk re-clones
		// each one for the wire), so all of them recycle at done —
		// acknowledged or not.
		r.bulk.SendRetrieval(msg.ReplyTo, chunks, func(int, []*flash.Chunk) {
			flash.FreeChunks(chunks)
		})
	})
}

func (r *Responder) handleFlood(from, to int, p radio.Payload) {
	msg, ok := p.(FloodMsg)
	if !ok || msg.Round <= r.round {
		return // already part of this round's tree
	}
	r.round = msg.Round
	r.parent = from
	r.depth = msg.Depth + 1
	r.activeUntil = r.sched.Now().Add(r.RelayWindow)
	// Re-flood one hop deeper.
	fwd := msg
	fwd.Depth = r.depth
	r.stack.SendUrgent(radio.Broadcast, fwd)
	// Convergecast: ship matching chunks to the parent, staggered by
	// depth so leaves drain first and relays forward coherently.
	chunks := r.matching(msg.Q)
	r.tr.Emit(r.sched.Now(), evFloodRecv, int32(r.id), int32(from), 0, int64(len(chunks)), int64(r.depth))
	if len(chunks) == 0 {
		return
	}
	delay := time.Duration(r.id%16+1)*r.ResponseDelayPerNode +
		time.Duration(r.depth)*50*time.Millisecond
	parent := r.parent
	r.sched.After(delay, fmt.Sprintf("retr.converge.%d", r.id), func() {
		r.bulk.SendRetrieval(parent, chunks, func(int, []*flash.Chunk) {
			flash.FreeChunks(chunks)
		})
	})
}

// Parent returns the current spanning-tree parent (-1 when none); for
// tests and diagnostics.
func (r *Responder) Parent() int { return r.parent }

// Relaying reports whether a convergecast round is active, i.e. incoming
// retrieval chunks should be forwarded toward the sink.
func (r *Responder) Relaying() bool {
	return r.parent >= 0 && r.sched.Now() < r.activeUntil
}

// relayAccept is the bulk retrieval-class acceptor: chunks from tree
// children are buffered briefly and forwarded to the parent. Outside an
// active round the chunk is refused (the child keeps and may retry on
// the next round).
func (r *Responder) relayAccept(from int, c *flash.Chunk) bool {
	if !r.Relaying() {
		return false
	}
	r.pending = append(r.pending, c.Clone())
	if !r.flushArmed {
		r.flushArmed = true
		r.sched.After(100*time.Millisecond, fmt.Sprintf("retr.relay.%d", r.id), func() {
			r.flushArmed = false
			batch := r.pending
			r.pending = nil
			if len(batch) == 0 || r.parent < 0 {
				flash.FreeChunks(batch)
				return
			}
			r.bulk.SendRetrieval(r.parent, batch, func(int, []*flash.Chunk) {
				flash.FreeChunks(batch)
			})
		})
	}
	return true
}

// Mule is the in-field collector: a basestation-class device brought to
// the deployment (or the researcher's lab bench) that issues a one-hop
// query and gathers the replies.
type Mule struct {
	ID    int
	stack *netstack.Stack
	bulk  *netstack.Bulk
	sched *sim.Scheduler
	tr    *obs.Tracer

	// Collected accumulates received chunks, deduplicated on arrival.
	Collected []*flash.Chunk
	seen      map[chunkKey]bool
}

type chunkKey struct {
	file   flash.FileID
	origin int32
	seq    uint32
}

// NewMule joins the radio network at the given position. The mule's ID
// must be unique in the network (use a value above all mote IDs).
func NewMule(id int, pos geometry.Point, net *radio.Network, sched *sim.Scheduler) *Mule {
	ep := net.Join(id, pos)
	st := netstack.NewStack(ep, sched)
	m := &Mule{
		ID:    id,
		stack: st,
		bulk:  netstack.NewBulk(st, sched),
		sched: sched,
		seen:  make(map[chunkKey]bool),
	}
	m.bulk.SetRetrievalAccept(func(from int, c *flash.Chunk) bool {
		k := chunkKey{c.File, c.Origin, c.Seq}
		if m.seen[k] {
			return true // accept but drop silently: already have it
		}
		m.seen[k] = true
		m.Collected = append(m.Collected, c)
		return true
	})
	return m
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (m *Mule) SetTracer(tr *obs.Tracer) { m.tr = tr }

// Ask broadcasts a one-hop query; replies accumulate in Collected.
func (m *Mule) Ask(q Query) {
	m.tr.Emit(m.sched.Now(), evAsk, int32(m.ID), obs.NoPeer, 0, int64(len(q.Files)), 0)
	m.stack.SendUrgent(radio.Broadcast, QueryMsg{Q: q, ReplyTo: m.ID})
}

// Flood launches a spanning-tree retrieval round rooted at the mule.
func (m *Mule) Flood(q Query, round uint32) {
	m.tr.Emit(m.sched.Now(), evFloodSend, int32(m.ID), obs.NoPeer, 0, int64(round), 0)
	m.stack.SendUrgent(radio.Broadcast, FloodMsg{Q: q, Round: round, Sink: m.ID, Depth: 0})
}

// MissingFiles inspects the collection and returns, for files with gaps
// larger than tolerance, the gap re-request query the paper describes
// ("if gaps are observed in retrieved files, their IDs are flooded until
// all parts are retrieved").
func (m *Mule) MissingFiles(tolerance time.Duration) Query {
	files := Reassemble(map[int][]*flash.Chunk{0: m.Collected}, Query{All: true})
	ids := make(map[flash.FileID]bool)
	for id, f := range files {
		if len(f.Gaps(tolerance)) > 0 {
			ids[id] = true
		}
	}
	if m.tr.Enabled() {
		// Sorted emission: map iteration order must not leak into the
		// trace (byte-identical traces per seed are a determinism
		// guarantee, DESIGN.md §11).
		gapped := make([]flash.FileID, 0, len(ids))
		for id := range ids {
			gapped = append(gapped, id)
		}
		sort.Slice(gapped, func(i, j int) bool { return gapped[i] < gapped[j] })
		for _, id := range gapped {
			f := files[id]
			m.tr.Emit(m.sched.Now(), evGap, int32(m.ID), obs.NoPeer, uint32(id), int64(len(f.Gaps(tolerance))), int64(len(f.Chunks)))
		}
		m.tr.Emit(m.sched.Now(), evRerequest, int32(m.ID), obs.NoPeer, 0, int64(len(ids)), 0)
	}
	return Query{Files: ids}
}

// Files reassembles everything collected so far.
func (m *Mule) Files() map[flash.FileID]*File {
	files := Reassemble(map[int][]*flash.Chunk{0: m.Collected}, Query{All: true})
	m.tr.Emit(m.sched.Now(), evReassemble, int32(m.ID), obs.NoPeer, 0, int64(len(files)), int64(len(m.Collected)))
	return files
}

// Tour drives the mule along waypoints, issuing a one-hop query at each
// stop and dwelling there to collect replies — the paper's "occasionally
// sending data mules into the field" retrieval mode. It returns the
// number of chunks newly collected during the tour.
func (m *Mule) Tour(sched *sim.Scheduler, stops []geometry.Point, dwell time.Duration, q Query) int {
	if dwell <= 0 {
		panic("retrieval: non-positive dwell time")
	}
	before := len(m.Collected)
	for _, stop := range stops {
		m.moveTo(stop)
		m.Ask(q)
		sched.Run(sched.Now().Add(dwell))
	}
	return len(m.Collected) - before
}

// moveTo relocates the mule's radio endpoint. The radio model keys range
// checks on endpoint positions at delivery time, so re-joining under a
// fresh ID is unnecessary — but endpoints are fixed-position by design,
// so the mule carries its own position and rejoins the medium.
func (m *Mule) moveTo(p geometry.Point) {
	m.stack.Endpoint().SetPos(p)
}
