// Fragment-aware reassembly for the storage dispersal mode
// (storage.ModeDisperse). Dispersed recordings leave two kinds of
// chunks in the network: the original data chunks (scattered one
// erasure fragment per neighbor) and parity carrier chunks whose file
// ID has erasure.ParityFileBit set. ReassembleErasure reassembles both,
// reconstructs any data chunks that fewer than n−k fragment losses took
// out, and returns plain data files — parity never surfaces to the
// caller. Runs with no parity present degrade to exactly Reassemble.
package retrieval

import (
	"sort"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
)

// WithParity widens a query so that the parity siblings of every
// requested file match too. Time-range and origin restrictions already
// cover parity naturally (carriers inherit the recorder origin and the
// group's time span); only explicit file lists need the widening. Gap
// re-queries use this so a mule's second pass collects the parity that
// can fill the gap.
func WithParity(q Query) Query {
	if q.All || len(q.Files) == 0 {
		return q
	}
	files := make(map[flash.FileID]bool, 2*len(q.Files))
	for f := range q.Files {
		files[f] = true
		files[f|erasure.ParityFileBit] = true
	}
	q.Files = files
	return q
}

// DecodeReport summarizes what the erasure decode pass did.
type DecodeReport struct {
	// Groups is the number of dispersal groups with at least one
	// complete, valid parity fragment among the holdings.
	Groups int
	// RecoveredChunks counts data chunks reconstructed from parity.
	RecoveredChunks int
	// MissingChunks counts group cells still absent after decoding —
	// more than n−k fragments of their group are gone.
	MissingChunks int
	// Errors counts groups whose decode failed partway (corrupt
	// reconstruction output; should be zero).
	Errors int
	// Stats is the carrier/fragment collection census.
	Stats erasure.CollectStats
}

// ReassembleErasure is Reassemble plus erasure decoding: it reassembles
// the query's data files and their parity fragments, reconstructs
// whatever data chunks the surviving k-of-n fragment sets can restore,
// and merges them in. Reconstruction uses every data chunk in holdings
// as a potential shard (not just query-matched ones), but only chunks
// matching the query appear in the result. Recovered chunks come from
// the chunk pool and are owned by the returned files, like any other
// reassembled chunk.
func ReassembleErasure(holdings map[int][]*flash.Chunk, q Query) (map[flash.FileID]*File, DecodeReport) {
	var rep DecodeReport
	all := Reassemble(holdings, WithParity(q))
	ids := make([]flash.FileID, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[flash.FileID]*File, len(all))
	var parityChunks []*flash.Chunk
	for _, id := range ids {
		if id&erasure.ParityFileBit != 0 {
			parityChunks = append(parityChunks, all[id].Chunks...)
		} else {
			out[id] = all[id]
		}
	}
	if len(parityChunks) == 0 {
		return out, rep
	}
	groups, stats := erasure.CollectFragments(parityChunks)
	rep.Stats = stats
	if len(groups) == 0 {
		return out, rep
	}
	// Index every data chunk in holdings as a decode shard, first copy
	// wins in ascending node order (the Reassemble determinism rule).
	type originKey struct {
		file   flash.FileID
		origin int32
	}
	nodeIDs := make([]int, 0, len(holdings))
	for id := range holdings {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Ints(nodeIDs)
	shards := make(map[originKey]map[uint32]*flash.Chunk)
	for _, nid := range nodeIDs {
		for _, c := range holdings[nid] {
			if c == nil || c.File&erasure.ParityFileBit != 0 {
				continue
			}
			k := originKey{c.File, c.Origin}
			m := shards[k]
			if m == nil {
				m = make(map[uint32]*flash.Chunk)
				shards[k] = m
			}
			if m[c.Seq] == nil {
				m[c.Seq] = c
			}
		}
	}
	keys := make([]erasure.GroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.FirstSeq < b.FirstSeq
	})
	resort := make(map[flash.FileID]bool)
	for _, gk := range keys {
		frags := groups[gk]
		g := frags[0].Group
		rep.Groups++
		cells := shards[originKey{gk.File, gk.Origin}]
		if cells == nil {
			cells = make(map[uint32]*flash.Chunk)
		}
		recovered, err := erasure.ReconstructGroup(g, cells, frags)
		if err != nil {
			rep.Errors++
		}
		recoveredSeqs := make(map[uint32]bool, len(recovered))
		for _, c := range recovered {
			recoveredSeqs[c.Seq] = true
			if !q.Matches(c) {
				flash.FreeChunk(c)
				continue
			}
			f := out[g.File]
			if f == nil {
				f = &File{ID: g.File}
				out[g.File] = f
			}
			f.Chunks = append(f.Chunks, c)
			resort[g.File] = true
			rep.RecoveredChunks++
		}
		for i := uint32(0); i < g.Count; i++ {
			seq := g.FirstSeq + i
			if cells[seq] == nil && !recoveredSeqs[seq] {
				rep.MissingChunks++
			}
		}
	}
	for id := range resort {
		sortChunks(out[id].Chunks)
	}
	return out, rep
}
