package acoustics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

func testSource() *Source {
	return StaticSource(1, geometry.Point{X: 5, Y: 5}, sim.At(time.Second), 4*time.Second, 10, VoiceTone)
}

func TestSourceActiveInterval(t *testing.T) {
	s := testSource()
	tests := []struct {
		at   sim.Time
		want bool
	}{
		{0, false},
		{sim.At(time.Second), true},
		{sim.At(3 * time.Second), true},
		{sim.At(5 * time.Second), false}, // End is exclusive
		{sim.At(6 * time.Second), false},
	}
	for _, tt := range tests {
		if got := s.ActiveAt(tt.at); got != tt.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestAmplitudeInverseDistance(t *testing.T) {
	s := testSource()
	at := sim.At(2 * time.Second)
	a1 := s.AmplitudeAt(geometry.Point{X: 6, Y: 5}, at) // distance 1
	a2 := s.AmplitudeAt(geometry.Point{X: 7, Y: 5}, at) // distance 2
	if math.Abs(a1-10) > 1e-9 {
		t.Errorf("amplitude at d=1: %v, want 10", a1)
	}
	if math.Abs(a2-5) > 1e-9 {
		t.Errorf("amplitude at d=2: %v, want 5", a2)
	}
	if got := s.AmplitudeAt(geometry.Point{X: 6, Y: 5}, 0); got != 0 {
		t.Errorf("inactive source amplitude = %v, want 0", got)
	}
}

func TestAmplitudeClampsNearSource(t *testing.T) {
	s := testSource()
	at := sim.At(2 * time.Second)
	atSrc := s.AmplitudeAt(geometry.Point{X: 5, Y: 5}, at)
	near := s.AmplitudeAt(geometry.Point{X: 5.01, Y: 5}, at)
	if math.IsInf(atSrc, 1) || atSrc != near {
		t.Errorf("amplitude should clamp at refDist: at-source %v, near %v", atSrc, near)
	}
}

func TestSensingRangeInvertsLoudnessForRange(t *testing.T) {
	const threshold = 2.5
	for _, r := range []float64{0.5, 1, 2, 7.3} {
		l := LoudnessForRange(r, threshold)
		s := StaticSource(1, geometry.Point{}, 0, time.Second, l, VoiceTone)
		if got := s.SensingRange(threshold); math.Abs(got-r) > 1e-9 {
			t.Errorf("SensingRange(LoudnessForRange(%v)) = %v", r, got)
		}
	}
}

func TestMobileSourcePosition(t *testing.T) {
	s := MobileSource(2, geometry.Point{X: 0, Y: 0}, geometry.Point{X: 9, Y: 0},
		sim.At(time.Second), 9*time.Second, 5, VoiceRumble)
	tests := []struct {
		at    sim.Time
		wantX float64
	}{
		{sim.At(time.Second), 0},
		{sim.At(5500 * time.Millisecond), 4.5},
		{sim.At(10 * time.Second), 9},
	}
	for _, tt := range tests {
		got := s.PositionAt(tt.at)
		if math.Abs(got.X-tt.wantX) > 1e-9 || got.Y != 0 {
			t.Errorf("PositionAt(%v) = %v, want X=%v", tt.at, got, tt.wantX)
		}
	}
}

func TestFieldAudibility(t *testing.T) {
	f := NewField(2.0)
	f.AddSource(testSource()) // loudness 10 at (5,5) → audible within d=5
	at := sim.At(2 * time.Second)
	if !f.Audible(0, geometry.Point{X: 5, Y: 9}, at) { // d=4
		t.Error("listener at d=4 should hear (range 5)")
	}
	if f.Audible(0, geometry.Point{X: 5, Y: 11}, at) { // d=6
		t.Error("listener at d=6 should not hear (range 5)")
	}
	if f.Audible(0, geometry.Point{X: 5, Y: 9}, sim.At(10*time.Second)) {
		t.Error("inactive source should not be audible")
	}
}

func TestFieldWhitelistRestrictsAudibility(t *testing.T) {
	f := NewField(2.0)
	s := testSource()
	s.Whitelist = map[int]bool{3: true, 7: true}
	f.AddSource(s)
	at := sim.At(2 * time.Second)
	p := geometry.Point{X: 5, Y: 6} // well within range
	if !f.Audible(3, p, at) || !f.Audible(7, p, at) {
		t.Error("whitelisted listeners should hear")
	}
	if f.Audible(0, p, at) {
		t.Error("non-whitelisted listener should not hear")
	}
	if got := f.SignalAt(0, p, at); got != 0 {
		t.Errorf("non-whitelisted listener signal = %v, want 0", got)
	}
}

func TestLoudestSource(t *testing.T) {
	f := NewField(1.0)
	quiet := StaticSource(1, geometry.Point{X: 0, Y: 0}, 0, time.Second, 3, VoiceTone)
	loud := StaticSource(2, geometry.Point{X: 0, Y: 1}, 0, time.Second, 8, VoiceTone)
	f.AddSource(quiet)
	f.AddSource(loud)
	got := f.LoudestSource(0, geometry.Point{X: 0, Y: 0.5}, sim.At(time.Millisecond))
	if got == nil || got.ID != 2 {
		t.Fatalf("LoudestSource = %v, want source 2", got)
	}
	if f.LoudestSource(0, geometry.Point{X: 100, Y: 100}, sim.At(time.Millisecond)) != nil {
		t.Error("distant listener should hear nothing")
	}
}

func TestAudibleSourcesReturnsAll(t *testing.T) {
	f := NewField(1.0)
	f.AddSource(StaticSource(1, geometry.Point{X: 0, Y: 0}, 0, time.Second, 5, VoiceTone))
	f.AddSource(StaticSource(2, geometry.Point{X: 1, Y: 0}, 0, time.Second, 5, VoiceTone))
	f.AddSource(StaticSource(3, geometry.Point{X: 50, Y: 0}, 0, time.Second, 5, VoiceTone))
	got := f.AudibleSources(0, geometry.Point{X: 0.5, Y: 0}, sim.At(time.Millisecond))
	if len(got) != 2 {
		t.Fatalf("AudibleSources = %d sources, want 2", len(got))
	}
}

func TestFieldValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewField(0) },
		func() { NewField(1).AddSource(&Source{Path: nil, End: 1, Loudness: 1}) },
		func() {
			NewField(1).AddSource(&Source{
				Path: geometry.NewPath(geometry.PathPoint{}), Start: 5, End: 5, Loudness: 1,
			})
		},
		func() {
			NewField(1).AddSource(&Source{
				Path: geometry.NewPath(geometry.PathPoint{}), End: 5, Loudness: 0,
			})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid field construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestWaveformDeterministicAndBounded(t *testing.T) {
	for _, voice := range []VoiceKind{VoiceTone, VoiceRumble, VoiceSpeech} {
		s := &Source{ID: 4, Voice: voice}
		s2 := &Source{ID: 4, Voice: voice}
		for i := 0; i < 1000; i++ {
			tt := float64(i) / 997.0
			a, b := s.Waveform(tt), s2.Waveform(tt)
			if a != b {
				t.Fatalf("%v waveform not deterministic at t=%v", voice, tt)
			}
			if a < -1.0001 || a > 1.0001 {
				t.Fatalf("%v waveform out of range at t=%v: %v", voice, tt, a)
			}
		}
		if s.Waveform(-1) != 0 {
			t.Errorf("%v waveform before start should be 0", voice)
		}
	}
}

func TestWaveformDiffersAcrossSources(t *testing.T) {
	a := &Source{ID: 1, Voice: VoiceTone}
	b := &Source{ID: 2, Voice: VoiceTone}
	same := true
	for i := 1; i < 100; i++ {
		tt := float64(i) / 101
		if math.Abs(a.Waveform(tt)-b.Waveform(tt)) > 1e-6 {
			same = false
			break
		}
	}
	if same {
		t.Error("different source IDs produced identical waveforms")
	}
}

func TestSignalAtMixesSources(t *testing.T) {
	f := NewField(0.5)
	f.AddSource(testSource())
	at := sim.At(2 * time.Second)
	p := geometry.Point{X: 6, Y: 5}
	// Signal should equal amplitude × waveform with no noise configured.
	want := 10 * f.sources[0].Waveform(1.0)
	if got := f.SignalAt(0, p, at); math.Abs(got-want) > 1e-9 {
		t.Errorf("SignalAt = %v, want %v", got, want)
	}
}

func TestSignalNoiseDeterministicPerListener(t *testing.T) {
	f := NewField(0.5)
	f.NoiseAmp = 0.2
	at := sim.At(time.Second)
	p := geometry.Point{}
	a1 := f.SignalAt(1, p, at)
	a2 := f.SignalAt(1, p, at)
	b := f.SignalAt(2, p, at)
	if a1 != a2 {
		t.Error("noise not deterministic for same (listener, t)")
	}
	if a1 == b {
		t.Error("noise identical across listeners (suspicious)")
	}
	if math.Abs(a1) > 0.2 {
		t.Errorf("noise-only signal %v exceeds NoiseAmp", a1)
	}
}

func TestQuantize(t *testing.T) {
	tests := []struct {
		sig  float64
		want uint8
	}{
		{0, 128},
		{1, 255},
		{-1, 1},
		{2, 255},   // saturates high
		{-2, 0},    // saturates low
		{0.5, 192}, // 128 + 63.5 rounds to 192
	}
	for _, tt := range tests {
		if got := Quantize(tt.sig, 1); got != tt.want {
			t.Errorf("Quantize(%v) = %d, want %d", tt.sig, got, tt.want)
		}
	}
}

func TestDetectorTriggersOnLoudSound(t *testing.T) {
	d := NewDetector(0.05, 3)
	// Feed ambient ~1.0 to establish background.
	for i := 0; i < 100; i++ {
		if d.Observe(1.0) && i > 0 {
			t.Fatal("ambient level triggered detection")
		}
	}
	if math.Abs(d.Background()-1.0) > 1e-6 {
		t.Errorf("background = %v, want ~1", d.Background())
	}
	if !d.Observe(5.0) {
		t.Error("5x background did not trigger")
	}
	// Loud observation must not raise the background.
	if math.Abs(d.Background()-1.0) > 1e-6 {
		t.Errorf("background rose on detection: %v", d.Background())
	}
	if d.Observe(2.0) {
		t.Error("2x background should be below margin 3")
	}
}

func TestDetectorTracksSlowBackgroundShift(t *testing.T) {
	d := NewDetector(0.2, 3)
	for i := 0; i < 200; i++ {
		d.Observe(1.0)
	}
	// Background creeps up toward a louder but sub-margin ambient.
	for i := 0; i < 200; i++ {
		d.Observe(2.5)
	}
	if d.Background() < 2.0 {
		t.Errorf("background did not track shift: %v", d.Background())
	}
	if d.Observe(5.0) {
		t.Error("5.0 should be under margin with background ~2.5")
	}
	if !d.Observe(9.0) {
		t.Error("9.0 should trigger with background ~2.5")
	}
}

func TestDetectorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDetector(0, 3) },
		func() { NewDetector(1.5, 3) },
		func() { NewDetector(0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid detector did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestVoiceKindString(t *testing.T) {
	if VoiceTone.String() != "tone" || VoiceRumble.String() != "rumble" ||
		VoiceSpeech.String() != "speech" {
		t.Error("VoiceKind.String mismatch")
	}
	if VoiceKind(99).String() != "VoiceKind(99)" {
		t.Error("unknown VoiceKind string")
	}
}

// Property: amplitude is monotonically non-increasing with distance.
func TestQuickAmplitudeMonotone(t *testing.T) {
	s := testSource()
	at := sim.At(2 * time.Second)
	f := func(d1, d2 uint8) bool {
		a, b := float64(d1)/4, float64(d2)/4
		if a > b {
			a, b = b, a
		}
		pa := geometry.Point{X: 5 + a, Y: 5}
		pb := geometry.Point{X: 5 + b, Y: 5}
		return s.AmplitudeAt(pa, at) >= s.AmplitudeAt(pb, at)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Quantize always lands in [0,255] and is monotone in the signal.
func TestQuickQuantizeMonotone(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := float64(a)/8192, float64(b)/8192
		qa, qb := Quantize(x, 1), Quantize(y, 1)
		if x <= y && qa > qb {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrozenIndexMatchesScan checks that every query answered through the
// interval index agrees with the brute-force scan over the full source
// list, across a dense time sweep that covers empty buckets, bucket
// boundaries, overlapping sources, and times past the last source.
func TestFrozenIndexMatchesScan(t *testing.T) {
	build := func() *Field {
		rng := sim.NewScheduler(7).Rand()
		f := NewField(1.0)
		for i := 0; i < 40; i++ {
			start := sim.At(time.Duration(rng.Int63n(int64(5 * time.Minute))))
			dur := time.Second + time.Duration(rng.Int63n(int64(45*time.Second)))
			p := geometry.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
			src := StaticSource(SourceID(i+1), p, start, dur, 5+rng.Float64()*20, VoiceTone)
			if i%5 == 0 {
				src.Whitelist = map[int]bool{1: true, 3: true}
			}
			f.AddSource(src)
		}
		return f
	}
	plain, frozen := build(), build()
	frozen.Freeze()
	if !frozen.Frozen() || plain.Frozen() {
		t.Fatal("Frozen() state wrong")
	}
	listeners := []geometry.Point{{X: 10, Y: 10}, {X: 25, Y: 40}, {X: 48, Y: 3}}
	for tick := -2 * time.Second; tick < 7*time.Minute; tick += 777 * time.Millisecond {
		at := sim.At(tick)
		for li, p := range listeners {
			if a, b := plain.Audible(li, p, at), frozen.Audible(li, p, at); a != b {
				t.Fatalf("Audible(%d, %v, %v): scan=%v index=%v", li, p, at, a, b)
			}
			if a, b := plain.SignalAt(li, p, at), frozen.SignalAt(li, p, at); a != b {
				t.Fatalf("SignalAt(%d, %v, %v): scan=%v index=%v", li, p, at, a, b)
			}
			as, bs := plain.LoudestSource(li, p, at), frozen.LoudestSource(li, p, at)
			switch {
			case as == nil != (bs == nil):
				t.Fatalf("LoudestSource(%d, %v, %v): scan=%v index=%v", li, p, at, as, bs)
			case as != nil && as.ID != bs.ID:
				t.Fatalf("LoudestSource(%d, %v, %v): scan=%d index=%d", li, p, at, as.ID, bs.ID)
			}
			al, bl := plain.AudibleSources(li, p, at), frozen.AudibleSources(li, p, at)
			if len(al) != len(bl) {
				t.Fatalf("AudibleSources(%d, %v, %v): scan=%d index=%d sources", li, p, at, len(al), len(bl))
			}
			for i := range al {
				if al[i].ID != bl[i].ID {
					t.Fatalf("AudibleSources(%d, %v, %v)[%d]: scan=%d index=%d", li, p, at, i, al[i].ID, bl[i].ID)
				}
			}
		}
	}
}

func TestAddSourceAfterFreezePanics(t *testing.T) {
	f := NewField(1.0)
	f.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("AddSource after Freeze did not panic")
		}
	}()
	f.AddSource(StaticSource(1, geometry.Point{}, 0, time.Second, 10, VoiceTone))
}
