// Package acoustics models the sound environment EnviroMic records:
// point acoustic sources (static or mobile), inverse-distance propagation,
// a background-noise floor, sound-activated detection with a running
// background average (paper §II), and deterministic waveform synthesis so
// recordings can be stitched and compared against ground truth (Fig 8).
//
// The paper used real sound (voice, vehicles, bird song). We substitute a
// synthetic field because group formation and storage behaviour depend only
// on *who can hear what, when* and on a reconstructable sample stream —
// both of which the synthetic field provides deterministically.
package acoustics

import (
	"fmt"
	"math"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// SourceID identifies an acoustic source within a scenario. It is distinct
// from the event/file IDs that EnviroMic assigns at run time: sources are
// ground truth, file IDs are what the protocol manages to infer.
type SourceID int

// Source is one acoustic emitter: a bird, a vehicle, a walking speaker, a
// laptop playing clips in the testbed. A source is active on [Start, End)
// and moves along Path (a single-waypoint path models a static source).
type Source struct {
	ID    SourceID
	Path  *geometry.Path
	Start sim.Time
	End   sim.Time
	// Loudness is the signal amplitude at distance 1 (in deployment
	// units). Amplitude decays as Loudness/d.
	Loudness float64
	// Voice selects the synthesized waveform family; see Waveform.
	Voice VoiceKind
	// Whitelist, when non-nil, restricts audibility to the listed
	// listener IDs regardless of distance. The paper's §IV-B experiment
	// restricts each event to exactly four hearers; this knob reproduces
	// that control without distorting the propagation model.
	Whitelist map[int]bool
}

// VoiceKind selects a synthesized waveform family.
type VoiceKind int

// Voice kinds cover the paper's workloads: tonal bird song, broadband
// vehicle rumble, and speech-like syllabic bursts.
const (
	VoiceTone VoiceKind = iota + 1
	VoiceRumble
	VoiceSpeech
)

// String implements fmt.Stringer.
func (v VoiceKind) String() string {
	switch v {
	case VoiceTone:
		return "tone"
	case VoiceRumble:
		return "rumble"
	case VoiceSpeech:
		return "speech"
	default:
		return fmt.Sprintf("VoiceKind(%d)", int(v))
	}
}

// ActiveAt reports whether the source is emitting at time t.
func (s *Source) ActiveAt(t sim.Time) bool { return t >= s.Start && t < s.End }

// PositionAt returns the source position at time t. The path's own clock
// starts at the source's Start time.
func (s *Source) PositionAt(t sim.Time) geometry.Point {
	return s.Path.At(t.Sub(s.Start).Seconds())
}

// refDist prevents the 1/d law from diverging at the source itself.
const refDist = 0.25

// AmplitudeAt returns the signal envelope amplitude this source produces
// at listener position p at time t (zero when inactive).
func (s *Source) AmplitudeAt(p geometry.Point, t sim.Time) float64 {
	if !s.ActiveAt(t) {
		return 0
	}
	d := s.PositionAt(t).Dist(p)
	if d < refDist {
		d = refDist
	}
	return s.Loudness / d
}

// SensingRange returns the distance at which the source's amplitude falls
// to threshold: the effective acoustic range of a microphone with that
// detection threshold.
func (s *Source) SensingRange(threshold float64) float64 {
	if threshold <= 0 {
		panic("acoustics: non-positive threshold")
	}
	return s.Loudness / threshold
}

// LoudnessForRange returns the Loudness that makes a source audible out to
// exactly r at the given detection threshold. The indoor experiments tune
// volume so the sensing range is about one grid length (§IV-A); this is
// the corresponding inverse.
func LoudnessForRange(r, threshold float64) float64 {
	if r <= 0 || threshold <= 0 {
		panic("acoustics: non-positive range or threshold")
	}
	return r * threshold
}

// Waveform returns the source's normalized instantaneous signal in [-1, 1]
// at time t seconds *into the source's activity*. It is deterministic in
// (SourceID, Voice, t) so that a recording stitched from chunks made by
// different motes reproduces the same waveform the reference mote heard.
func (s *Source) Waveform(t float64) float64 {
	if t < 0 {
		return 0
	}
	// Per-source detuning so two sources never produce identical signals.
	det := 1 + 0.07*float64(s.ID%13)
	switch s.Voice {
	case VoiceRumble:
		// Low-frequency beating pair plus a slow growl envelope.
		env := 0.75 + 0.25*math.Sin(2*math.Pi*1.3*t*det)
		return env * 0.5 * (math.Sin(2*math.Pi*38*det*t) + math.Sin(2*math.Pi*47*det*t))
	case VoiceSpeech:
		// Syllabic bursts: a ~4 Hz on/off envelope over a formant-ish sum.
		syll := math.Sin(2 * math.Pi * 3.7 * t * det)
		env := 0.0
		if syll > -0.2 {
			env = 0.6 + 0.4*syll
		}
		carrier := 0.6*math.Sin(2*math.Pi*210*det*t) + 0.4*math.Sin(2*math.Pi*640*det*t)
		return env * carrier
	default: // VoiceTone and unset
		// Chirp-like tonal call with vibrato, typical of bird song.
		vib := 1 + 0.01*math.Sin(2*math.Pi*6*t)
		return 0.9 * math.Sin(2*math.Pi*520*det*t*vib)
	}
}

// Field is the complete sound environment for one scenario: a set of
// sources plus an ambient noise floor.
type Field struct {
	// Threshold is the detection amplitude: a source is audible where its
	// envelope exceeds it. It doubles as the "sufficient margin over
	// background noise" from §II.
	Threshold float64
	// NoiseAmp is the RMS amplitude of ambient noise mixed into samples.
	NoiseAmp float64
	// DetectProb is the per-poll probability that an audible source is
	// actually noticed by a listener. The paper observes that "individual
	// nodes may not detect the event reliably" (the baseline redundancy
	// ratio stabilizes near 0.5 rather than the ideal 0.75 for this
	// reason), so imperfect detection is part of the model. 0 means 1.0.
	DetectProb float64

	sources []*Source
	idx     *sourceIndex
}

// sourceIndex buckets sources by active interval so the per-poll queries
// (Audible, SignalAt, ...) scan only the handful of sources that overlap
// the query bucket instead of the whole scenario. Every bucket lists its
// sources in registration order — the order the un-indexed scan used —
// so tie-breaking (LoudestSource keeps the first maximum) and
// floating-point summation (SignalAt adds in slice order) are exactly
// preserved; inactive sources in a bucket contribute nothing, just as
// they did in the full scan. At 10k-mote city scale the full scan is the
// dominant cost: every node polls every 100 ms against hundreds of
// street events.
type sourceIndex struct {
	bucket  time.Duration
	buckets [][]*Source
}

// indexBucket is the index's time granularity. Street events last
// seconds to tens of seconds; 10 s keeps per-source replication low
// (1-2 buckets each) while keeping bucket membership small.
const indexBucket = 10 * time.Second

// Freeze builds the interval index and closes the field to further
// AddSource calls. The sharded engine requires a frozen field — shard
// goroutines read it concurrently and an index rebuild mid-window would
// race — and serial runs benefit from the same query speedup. Freeze is
// idempotent.
func (f *Field) Freeze() {
	if f.idx != nil {
		return
	}
	idx := &sourceIndex{bucket: indexBucket}
	var maxEnd sim.Time
	for _, s := range f.sources {
		if s.End > maxEnd {
			maxEnd = s.End
		}
	}
	if maxEnd > 0 {
		idx.buckets = make([][]*Source, int(maxEnd.Duration()/indexBucket)+1)
		for _, s := range f.sources {
			lo := int(s.Start.Duration() / indexBucket)
			hi := int((s.End - 1).Duration() / indexBucket)
			if lo < 0 {
				lo = 0
			}
			for i := lo; i <= hi && i < len(idx.buckets); i++ {
				idx.buckets[i] = append(idx.buckets[i], s)
			}
		}
	}
	f.idx = idx
}

// Frozen reports whether the field's source set is sealed.
func (f *Field) Frozen() bool { return f.idx != nil }

// activeSlice returns the sources worth testing at time t: the full
// registration list before Freeze, the (registration-ordered) bucket
// overlap afterwards.
func (f *Field) activeSlice(t sim.Time) []*Source {
	if f.idx == nil {
		return f.sources
	}
	if t < 0 {
		return nil
	}
	i := int(t.Duration() / f.idx.bucket)
	if i >= len(f.idx.buckets) {
		return nil
	}
	return f.idx.buckets[i]
}

// NewField returns a field with the given detection threshold and no
// sources.
func NewField(threshold float64) *Field {
	if threshold <= 0 {
		panic("acoustics: non-positive detection threshold")
	}
	return &Field{Threshold: threshold}
}

// AddSource registers a source. Sources may overlap in time and space.
// Adding to a frozen field panics (see Freeze).
func (f *Field) AddSource(s *Source) {
	if f.idx != nil {
		panic("acoustics: AddSource after Freeze")
	}
	if s.Path == nil {
		panic("acoustics: source without a path")
	}
	if s.End <= s.Start {
		panic(fmt.Sprintf("acoustics: source %d has empty active interval", s.ID))
	}
	if s.Loudness <= 0 {
		panic(fmt.Sprintf("acoustics: source %d has non-positive loudness", s.ID))
	}
	f.sources = append(f.sources, s)
}

// Sources returns all registered sources (shared slice; callers must not
// mutate).
func (f *Field) Sources() []*Source { return f.sources }

// audibleTo reports whether src is audible to listener at p,t ignoring
// detection probability.
func (f *Field) audibleTo(listener int, src *Source, p geometry.Point, t sim.Time) bool {
	if src.Whitelist != nil && !src.Whitelist[listener] {
		return false
	}
	return src.AmplitudeAt(p, t) >= f.Threshold
}

// AudibleSources returns the sources whose signal reaches the listener at
// position p above the detection threshold at time t.
func (f *Field) AudibleSources(listener int, p geometry.Point, t sim.Time) []*Source {
	var out []*Source
	for _, s := range f.activeSlice(t) {
		if f.audibleTo(listener, s, p, t) {
			out = append(out, s)
		}
	}
	return out
}

// Audible reports whether any source is audible to the listener.
func (f *Field) Audible(listener int, p geometry.Point, t sim.Time) bool {
	for _, s := range f.activeSlice(t) {
		if f.audibleTo(listener, s, p, t) {
			return true
		}
	}
	return false
}

// LoudestSource returns the audible source with the highest amplitude at
// the listener, or nil when silent. Group management uses it to associate
// detections with a dominant event.
func (f *Field) LoudestSource(listener int, p geometry.Point, t sim.Time) *Source {
	var best *Source
	bestAmp := 0.0
	for _, s := range f.activeSlice(t) {
		if !f.audibleTo(listener, s, p, t) {
			continue
		}
		if a := s.AmplitudeAt(p, t); a > bestAmp {
			best, bestAmp = s, a
		}
	}
	return best
}

// SignalAt returns the mixed, attenuated instantaneous signal (plus
// deterministic ambient noise) at listener position p at time t. The
// result is in arbitrary pressure units; Quantize converts it to the
// 8-bit ADC scale used by the motes.
func (f *Field) SignalAt(listener int, p geometry.Point, t sim.Time) float64 {
	sig := 0.0
	for _, s := range f.activeSlice(t) {
		if s.Whitelist != nil && !s.Whitelist[listener] {
			continue
		}
		amp := s.AmplitudeAt(p, t)
		if amp <= 0 {
			continue
		}
		sig += amp * s.Waveform(t.Sub(s.Start).Seconds())
	}
	if f.NoiseAmp > 0 {
		sig += f.NoiseAmp * noise(uint64(listener), uint64(t))
	}
	return sig
}

// Quantize maps a pressure-unit signal to the mote's 8-bit unsigned ADC
// scale (0..255, silence at 128), saturating at full scale. fullScale is
// the amplitude mapped to ±127 counts.
func Quantize(sig, fullScale float64) uint8 {
	if fullScale <= 0 {
		panic("acoustics: non-positive full scale")
	}
	v := 128 + 127*sig/fullScale
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(math.Round(v))
}

// noise returns a deterministic pseudo-random value in [-1, 1] keyed by
// (listener, time). Using a hash instead of the run's rand.Rand keeps
// sample values independent of protocol event ordering.
func noise(listener, t uint64) float64 {
	x := listener*0x9E3779B97F4A7C15 + t
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x)/float64(math.MaxUint64)*2 - 1
}

// Detector implements sound-activated recording (§II): it keeps a slow
// exponentially-weighted running average of background level and reports a
// detection when the observed level exceeds that average by Margin. The
// background estimate is only updated from quiet observations so loud
// events do not drag the floor upward.
type Detector struct {
	// Alpha is the EWMA weight for background updates (0 < Alpha <= 1).
	Alpha float64
	// Margin is the detection factor over background (e.g. 3.0).
	Margin float64

	background  float64
	initialized bool
}

// NewDetector returns a detector with the given EWMA weight and margin.
func NewDetector(alpha, margin float64) *Detector {
	if alpha <= 0 || alpha > 1 {
		panic("acoustics: detector alpha outside (0,1]")
	}
	if margin <= 1 {
		panic("acoustics: detector margin must exceed 1")
	}
	return &Detector{Alpha: alpha, Margin: margin}
}

// Observe feeds one envelope measurement and reports whether it
// constitutes a detection.
func (d *Detector) Observe(level float64) bool {
	if level < 0 {
		level = -level
	}
	if !d.initialized {
		d.background = level
		d.initialized = true
		return false
	}
	if level > d.background*d.Margin {
		return true
	}
	d.background = d.background*(1-d.Alpha) + level*d.Alpha
	return false
}

// Background returns the current background estimate.
func (d *Detector) Background() float64 { return d.background }

// SourceBuilder helpers ------------------------------------------------

// StaticSource builds a source that stays at p for the given interval.
func StaticSource(id SourceID, p geometry.Point, start sim.Time, dur time.Duration, loudness float64, voice VoiceKind) *Source {
	return &Source{
		ID:       id,
		Path:     geometry.NewPath(geometry.PathPoint{T: 0, P: p}),
		Start:    start,
		End:      start.Add(dur),
		Loudness: loudness,
		Voice:    voice,
	}
}

// MobileSource builds a source that moves from a to b at constant speed
// over the active interval.
func MobileSource(id SourceID, a, b geometry.Point, start sim.Time, dur time.Duration, loudness float64, voice VoiceKind) *Source {
	return &Source{
		ID:       id,
		Path:     geometry.LinePath(a, b, dur.Seconds()),
		Start:    start,
		End:      start.Add(dur),
		Loudness: loudness,
		Voice:    voice,
	}
}
