package sim

import (
	"testing"
	"time"
)

// TestEventRecycling verifies the free list actually reuses event structs
// between schedulings (the allocation win the radio hot path depends on).
func TestEventRecycling(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	for i := 0; i < 100; i++ {
		s.After(time.Millisecond, "tick", func() { fired++ })
		s.RunAll()
	}
	if fired != 100 {
		t.Fatalf("fired %d, want 100", fired)
	}
	if len(s.free) == 0 {
		t.Fatal("free list empty after 100 fire/release cycles")
	}
	if len(s.free) > 2 {
		t.Errorf("free list grew to %d for a one-event-at-a-time workload", len(s.free))
	}
}

// TestStaleTimerCannotCancelRecycledEvent is the safety property of the
// free list: a Timer whose event has fired and been reused must be inert,
// not cancel the new occupant.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	s := NewScheduler(1)
	first := s.After(time.Millisecond, "first", func() {})
	s.RunAll()
	if first.Pending() {
		t.Fatal("fired timer still pending")
	}

	secondFired := false
	second := s.After(time.Millisecond, "second", func() { secondFired = true })
	// The scheduler recycled the struct; the stale handle must be a no-op.
	if first.Cancel() {
		t.Fatal("stale timer claimed to cancel something")
	}
	if !second.Pending() {
		t.Fatal("new event lost its pending state to a stale handle")
	}
	s.RunAll()
	if !secondFired {
		t.Fatal("recycled event did not fire")
	}
}

// TestCancelledEventsAreReaped verifies cancelled events return to the
// free list when popped, and their timers stay consistent.
func TestCancelledEventsAreReaped(t *testing.T) {
	s := NewScheduler(1)
	var fired int
	tm := s.After(time.Millisecond, "doomed", func() { fired++ })
	keep := s.After(2*time.Millisecond, "kept", func() { fired += 10 })
	if !tm.Cancel() {
		t.Fatal("cancel failed while pending")
	}
	if tm.Cancel() {
		t.Fatal("double cancel succeeded")
	}
	s.RunAll()
	if fired != 10 {
		t.Fatalf("fired = %d, want only the kept event", fired)
	}
	if keep.Pending() || tm.Pending() {
		t.Error("timers still pending after drain")
	}
	if len(s.free) != 2 {
		t.Errorf("free list has %d events, want 2 (one fired, one reaped)", len(s.free))
	}
}

// TestRecyclingPreservesOrdering schedules interleaved recycled events
// and checks strict (time, seq) execution order survives reuse.
func TestRecyclingPreservesOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	// Warm the free list.
	for i := 0; i < 8; i++ {
		s.After(time.Microsecond, "warm", func() {})
	}
	s.RunAll()
	for i := 0; i < 8; i++ {
		i := i
		s.At(At(time.Duration(8-i)*time.Millisecond), "ordered", func() { order = append(order, 8-i) })
	}
	s.RunAll()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("execution order %v not time-sorted", order)
		}
	}
	if len(order) != 8 {
		t.Fatalf("executed %d events, want 8", len(order))
	}
}
