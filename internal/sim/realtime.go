package sim

import (
	"time"
)

// RealtimeClock abstracts the wall clock for RunRealtime. Now must be
// monotonic (time since an arbitrary origin); Sleep blocks for
// approximately d. Injectable for tests and for clocks that oversleep.
type RealtimeClock interface {
	Now() time.Duration
	Sleep(d time.Duration)
}

// wallClock is the production clock: monotonic reads via time.Since and
// real sleeps.
type wallClock struct{ origin time.Time }

func (c wallClock) Now() time.Duration    { return time.Since(c.origin) }
func (c wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// sleeperClock adapts a bare sleep func to RealtimeClock by assuming every
// sleep is exact. Under that assumption deadline pacing emits exactly the
// per-gap sleeps of the naive pacer, which keeps the injectable-sleep API
// (and its tests) meaningful: callers observe the *requested* schedule.
type sleeperClock struct {
	sleep func(time.Duration)
	now   time.Duration
}

func (c *sleeperClock) Now() time.Duration { return c.now }
func (c *sleeperClock) Sleep(d time.Duration) {
	c.now += d
	c.sleep(d)
}

// RunRealtime executes events like Run but paces them against the wall
// clock so a human can watch the protocol unfold: with scale = 1 virtual
// time tracks real time; scale = 60 runs a virtual minute per real second.
// sleep is injectable for tests; pass nil for the real wall clock.
//
// Pacing is deadline-based: each event instant has an absolute wall-clock
// deadline origin + (t − start)/scale, and the pacer sleeps only the
// remainder to that deadline. Sleep overshoot and callback execution time
// therefore do not accumulate — a run that falls behind (slow callbacks,
// coarse OS timers) sheds the error at the next gap instead of drifting
// further forever, which is what the per-event `sleep(gap)` form did.
//
// The simulation stays exactly as deterministic as Run — pacing changes
// when callbacks execute in the real world, never their virtual order or
// timing — so a live demo and a batch run of the same seed produce
// identical traces.
func (s *Scheduler) RunRealtime(until Time, scale float64, sleep func(time.Duration)) uint64 {
	var clock RealtimeClock
	if sleep == nil {
		clock = wallClock{origin: time.Now()}
	} else {
		clock = &sleeperClock{sleep: sleep}
	}
	return s.RunRealtimeClock(until, scale, clock)
}

// RunRealtimeClock is RunRealtime with an explicit clock.
func (s *Scheduler) RunRealtimeClock(until Time, scale float64, clock RealtimeClock) uint64 {
	if scale <= 0 {
		panic("sim: RunRealtime scale must be positive")
	}
	start := s.now
	origin := clock.Now()
	// deadline maps a virtual instant to its absolute wall-clock target.
	deadline := func(t Time) time.Duration {
		return origin + time.Duration(float64(t.Sub(start))/scale)
	}
	s.stopped = false
	var n uint64
	for !s.stopped {
		next, ok := s.NextEventTime()
		if !ok || next > until {
			break
		}
		if next > s.now {
			if wait := deadline(next) - clock.Now(); wait > 0 {
				clock.Sleep(wait)
			}
		}
		// Execute every event at this instant before sleeping again.
		n += s.Run(next)
	}
	if s.now < until {
		if wait := deadline(until) - clock.Now(); wait > 0 {
			clock.Sleep(wait)
		}
		s.now = until
	}
	return n
}
