package sim

import (
	"time"
)

// RunRealtime executes events like Run but paces them against the wall
// clock so a human can watch the protocol unfold: with scale = 1 virtual
// time tracks real time; scale = 60 runs a virtual minute per real second.
// sleep is injectable for tests; pass nil for time.Sleep.
//
// The simulation stays exactly as deterministic as Run — pacing changes
// when callbacks execute in the real world, never their virtual order or
// timing — so a live demo and a batch run of the same seed produce
// identical traces.
func (s *Scheduler) RunRealtime(until Time, scale float64, sleep func(time.Duration)) uint64 {
	if scale <= 0 {
		panic("sim: RunRealtime scale must be positive")
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	s.stopped = false
	var n uint64
	for !s.stopped {
		next, ok := s.NextEventTime()
		if !ok || next > until {
			break
		}
		if wait := next.Sub(s.now); wait > 0 {
			sleep(time.Duration(float64(wait) / scale))
		}
		// Execute every event at this instant before sleeping again.
		n += s.Run(next)
	}
	if s.now < until {
		if wait := until.Sub(s.now); wait > 0 {
			sleep(time.Duration(float64(wait) / scale))
		}
		s.now = until
	}
	return n
}
