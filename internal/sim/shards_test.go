package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestShardsRunMatchesSerialSchedule drives one logical workload through
// the Shards coordinator with everything on a single shard and checks the
// firing order equals a serial Scheduler run of the same workload.
func TestShardsRunMatchesSerialSchedule(t *testing.T) {
	build := func(s *Scheduler) *[]string {
		var order []string
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			name := string(rune('a'+i%26)) + "/" + time.Duration(i).String()
			d := time.Duration(rng.Int63n(int64(2 * time.Second)))
			s.At(At(d), name, func() { order = append(order, name) })
		}
		return &order
	}
	serial := NewScheduler(1)
	want := build(serial)
	serial.Run(At(2 * time.Second))

	sh := NewShards(1, 1, 10*time.Millisecond)
	got := build(sh.Shard(0))
	sh.Run(At(2 * time.Second))

	if len(*want) != len(*got) {
		t.Fatalf("fired %d events sharded vs %d serial", len(*got), len(*want))
	}
	for i := range *want {
		if (*want)[i] != (*got)[i] {
			t.Fatalf("order diverged at %d: serial %q, sharded %q", i, (*want)[i], (*got)[i])
		}
	}
}

// Property: partitioning a run into bounded windows never reorders events
// relative to an unpartitioned run, for any set of event times and any
// window width. This is the per-shard half of the sharded engine's
// determinism argument (DESIGN.md §14): runBounded(w) executed window by
// window must replay exactly the serial schedule.
func TestQuickWindowPartitioningPreservesOrder(t *testing.T) {
	f := func(delaysMS []uint16, windowMS uint8) bool {
		if len(delaysMS) > 300 {
			delaysMS = delaysMS[:300]
		}
		window := time.Duration(windowMS%50+1) * time.Millisecond
		horizon := At(70 * time.Second) // past the largest uint16 ms delay

		run := func(windowed bool) []Time {
			s := NewScheduler(5)
			var fired []Time
			for _, d := range delaysMS {
				s.After(time.Duration(d)*time.Millisecond, "q", func() {
					fired = append(fired, s.Now())
				})
			}
			if !windowed {
				s.Run(horizon)
				return fired
			}
			for w := Time(0); w <= horizon; w = w.Add(window) {
				end := w.Add(window)
				if end > horizon {
					end = horizon + 1
				}
				s.runBounded(end, 0, end)
			}
			return fired
		}

		want, got := run(false), run(true)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestShardsCrossShardDepositOrdering checks the barrier merge: deposits
// for one destination arriving from several source lanes are injected in
// (at, sentAt, sender, txSeq) order regardless of lane.
func TestShardsCrossShardDepositOrdering(t *testing.T) {
	sh := NewShards(9, 3, 10*time.Millisecond)
	var order []int
	mk := func(tag int) func() { return func() { order = append(order, tag) } }
	at := At(5 * time.Millisecond)
	// Deposit out of order across lanes; expected execution order is by
	// sender then txSeq at equal (at, sentAt).
	sh.Deposit(2, 0, at, 0, 7, 2, "d", mk(72))
	sh.Deposit(1, 0, at, 0, 3, 1, "d", mk(31))
	sh.Deposit(2, 0, at, 0, 3, 2, "d", mk(32))
	sh.Deposit(0, 0, at, 0, 7, 1, "d", mk(71))
	sh.Run(At(10 * time.Millisecond))
	want := []int{31, 32, 71, 72}
	if len(order) != len(want) {
		t.Fatalf("executed %d deposits, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("deposit order %v, want %v", order, want)
		}
	}
}

// TestShardsGlobalLaneExclusive checks that a global event observes every
// shard parked at its instant.
func TestShardsGlobalLaneExclusive(t *testing.T) {
	sh := NewShards(4, 2, 20*time.Millisecond)
	var at0, at1 Time
	sh.Shard(0).At(At(time.Millisecond), "s0", func() {})
	sh.Shard(1).At(At(3*time.Millisecond), "s1", func() {})
	sh.Global().At(At(2*time.Millisecond), "g", func() {
		at0, at1 = sh.Shard(0).Now(), sh.Shard(1).Now()
	})
	sh.Run(At(time.Second))
	if at0 != At(2*time.Millisecond) || at1 != At(2*time.Millisecond) {
		t.Fatalf("global event saw shard clocks %v, %v; want both at 2ms", at0, at1)
	}
}
