package sim

import "math/rand"

// splitSource is a SplitMix64 rand.Source64: 8 bytes of state per stream,
// so a 10k-node deployment can afford one independent stream per node
// (the default math/rand source carries ~5 KB of lagged-Fibonacci state,
// which at city scale would cost ~50 MB for RNG state alone).
type splitSource struct{ s uint64 }

func (p *splitSource) Seed(seed int64) { p.s = uint64(seed) }

func (p *splitSource) Uint64() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *splitSource) Int63() int64 { return int64(p.Uint64() >> 1) }

// NewNodeRand returns node id's private random stream for the given run
// seed. Streams are pairwise independent (seeded through two rounds of
// SplitMix64 mixing) and each node consumes its own stream in its own
// event order, which is invariant under sharding — the keystone of the
// sharded/serial bit-identity guarantee.
func NewNodeRand(seed int64, id int) *rand.Rand {
	return rand.New(&splitSource{s: uint64(NodeSeed(seed, id))})
}
