package sim

import (
	"testing"
	"time"
)

func TestRunRealtimePacesSleeps(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	for _, at := range []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, 350 * time.Millisecond} {
		at := at
		s.At(At(at), "e", func() { fired = append(fired, s.Now()) })
	}
	var slept []time.Duration
	n := s.RunRealtime(At(500*time.Millisecond), 10, func(d time.Duration) {
		slept = append(slept, d)
	})
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	// Virtual gaps 100,200,50,150ms at scale 10 → sleeps 10,20,5,15ms.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		5 * time.Millisecond, 15 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
	if s.Now() != At(500*time.Millisecond) {
		t.Errorf("clock at %v, want 500ms", s.Now())
	}
}

func TestRunRealtimeMatchesBatchTrace(t *testing.T) {
	run := func(realtime bool) []Time {
		s := NewScheduler(9)
		var fired []Time
		var loop func()
		n := 0
		loop = func() {
			fired = append(fired, s.Now())
			n++
			if n < 50 {
				d := time.Duration(s.Rand().Intn(900)+100) * time.Microsecond
				s.After(d, "loop", loop)
			}
		}
		s.After(time.Millisecond, "loop", loop)
		if realtime {
			s.RunRealtime(At(time.Second), 1000, func(time.Duration) {})
		} else {
			s.Run(At(time.Second))
		}
		return fired
	}
	batch, live := run(false), run(true)
	if len(batch) != len(live) {
		t.Fatalf("trace lengths differ: %d vs %d", len(batch), len(live))
	}
	for i := range batch {
		if batch[i] != live[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, batch[i], live[i])
		}
	}
}

func TestRunRealtimeSimultaneousEventsOneSleep(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 0; i < 5; i++ {
		s.At(At(time.Millisecond), "same", func() { count++ })
	}
	sleeps := 0
	s.RunRealtime(At(2*time.Millisecond), 1, func(time.Duration) { sleeps++ })
	if count != 5 {
		t.Errorf("executed %d, want 5", count)
	}
	// One sleep to reach the instant, one to reach `until`.
	if sleeps != 2 {
		t.Errorf("slept %d times, want 2", sleeps)
	}
}

func TestRunRealtimeInvalidScalePanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Error("zero scale did not panic")
		}
	}()
	s.RunRealtime(At(time.Second), 0, func(time.Duration) {})
}

func TestRunRealtimeWallClockSmoke(t *testing.T) {
	// With the default sleeper at a huge scale, a short virtual run
	// finishes quickly in real time.
	s := NewScheduler(1)
	done := false
	s.At(At(10*time.Second), "end", func() { done = true })
	start := time.Now()
	s.RunRealtime(At(10*time.Second), 1e6, nil)
	if !done {
		t.Error("event did not run")
	}
	if time.Since(start) > time.Second {
		t.Error("realtime run took too long at scale 1e6")
	}
}
