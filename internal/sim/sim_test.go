package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(At(30*time.Millisecond), "c", func() { got = append(got, 3) })
	s.At(At(10*time.Millisecond), "a", func() { got = append(got, 1) })
	s.At(At(20*time.Millisecond), "b", func() { got = append(got, 2) })
	s.Run(At(time.Second))
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSchedulerTieBreaksBySequence(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	at := At(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, "tie", func() { got = append(got, i) })
	}
	s.Run(At(time.Second))
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order incorrect at %d: got %v", i, got)
		}
	}
}

func TestSchedulerClockAdvancesToUntil(t *testing.T) {
	s := NewScheduler(1)
	s.Run(At(3 * time.Second))
	if got := s.Now(); got != At(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", got)
	}
}

func TestSchedulerDoesNotRunFutureEvents(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.At(At(2*time.Second), "late", func() { ran = true })
	s.Run(At(time.Second))
	if ran {
		t.Error("event after `until` ran")
	}
	s.Run(At(3 * time.Second))
	if !ran {
		t.Error("event did not run on second Run")
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler(1)
	s.At(At(time.Second), "advance", func() {})
	s.Run(At(time.Second))
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(At(time.Millisecond), "past", func() {})
}

func TestSchedulerNegativeAfterPanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-time.Millisecond, "neg", func() {})
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.After(10*time.Millisecond, "x", func() { ran = true })
	if !tm.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	s.Run(At(time.Second))
	if ran {
		t.Error("cancelled timer fired")
	}
	if tm.Pending() {
		t.Error("cancelled timer should not be pending")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, "x", func() {})
	s.Run(At(time.Second))
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(At(time.Duration(i)*time.Millisecond), "n", func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run(At(time.Second))
	if count != 2 {
		t.Errorf("Stop did not halt the loop: ran %d events", count)
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	s.After(time.Millisecond, "outer", func() {
		order = append(order, "outer")
		s.After(time.Millisecond, "inner", func() {
			order = append(order, "inner")
		})
	})
	s.Run(At(time.Second))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("nested scheduling order = %v", order)
	}
}

func TestSchedulerEventLimit(t *testing.T) {
	s := NewScheduler(1)
	s.SetEventLimit(10)
	var loop func()
	loop = func() { s.After(time.Microsecond, "loop", loop) }
	s.After(time.Microsecond, "loop", loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip the event limit")
		}
	}()
	s.Run(At(time.Hour))
}

func TestSchedulerDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var fired []int64
		var schedule func()
		n := 0
		schedule = func() {
			n++
			if n > 200 {
				return
			}
			d := time.Duration(s.Rand().Intn(1000)+1) * time.Microsecond
			s.After(d, "rnd", func() {
				fired = append(fired, int64(s.Now()))
				schedule()
			})
		}
		schedule()
		s.Run(At(time.Second))
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts for same seed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

func TestRunAllDrainsQueue(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.At(At(time.Hour), "far", func() { count++ })
	s.At(At(time.Minute), "near", func() { count++ })
	if n := s.RunAll(); n != 2 {
		t.Errorf("RunAll executed %d, want 2", n)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after RunAll", s.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	s := NewScheduler(1)
	if _, ok := s.NextEventTime(); ok {
		t.Error("empty queue should report no next event")
	}
	tm := s.At(At(time.Minute), "a", func() {})
	s.At(At(time.Hour), "b", func() {})
	if at, ok := s.NextEventTime(); !ok || at != At(time.Minute) {
		t.Errorf("NextEventTime = %v,%v; want 60s,true", at, ok)
	}
	tm.Cancel()
	if at, ok := s.NextEventTime(); !ok || at != At(time.Hour) {
		t.Errorf("after cancel NextEventTime = %v,%v; want 3600s,true", at, ok)
	}
}

func TestTickerFiresAtPeriod(t *testing.T) {
	s := NewScheduler(1)
	var at []Time
	tk := NewTicker(s, 100*time.Millisecond, "tick", func() {
		at = append(at, s.Now())
	})
	s.Run(At(550 * time.Millisecond))
	tk.Stop()
	if len(at) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(at))
	}
	for i, got := range at {
		want := At(time.Duration(i+1) * 100 * time.Millisecond)
		if got != want {
			t.Errorf("tick %d at %v, want %v", i, got, want)
		}
	}
}

func TestTickerStopPreventsFurtherTicks(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(s, 10*time.Millisecond, "tick", func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.Run(At(time.Second))
	if n != 3 {
		t.Errorf("ticker fired %d times after Stop, want 3", n)
	}
	if !tk.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	tk.Stop() // idempotent
}

func TestTickerReset(t *testing.T) {
	s := NewScheduler(1)
	var at []Time
	tk := NewTicker(s, time.Second, "tick", func() { at = append(at, s.Now()) })
	s.Run(At(500 * time.Millisecond))
	tk.Reset(100 * time.Millisecond)
	s.Run(At(750 * time.Millisecond))
	tk.Stop()
	if len(at) != 2 {
		t.Fatalf("after reset ticker fired %d times, want 2: %v", len(at), at)
	}
	if at[0] != At(600*time.Millisecond) || at[1] != At(700*time.Millisecond) {
		t.Errorf("reset tick times = %v", at)
	}
}

func TestTickerNonPositivePeriodPanics(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(s, 0, "bad", func() {})
}

func TestTimeHelpers(t *testing.T) {
	tm := At(1500 * time.Millisecond)
	if got := tm.Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := tm.Add(500 * time.Millisecond); got != At(2*time.Second) {
		t.Errorf("Add = %v, want 2s", got)
	}
	if got := tm.Sub(At(time.Second)); got != 500*time.Millisecond {
		t.Errorf("Sub = %v, want 500ms", got)
	}
	if got := tm.String(); got != "1.500s" {
		t.Errorf("String() = %q", got)
	}
	if Jiffy != time.Second/32768 {
		t.Errorf("Jiffy = %v", Jiffy)
	}
}

// Property: for any set of delays, events fire in non-decreasing time order
// and every non-cancelled event fires exactly once.
func TestQuickSchedulerOrdering(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		if len(delaysMS) == 0 {
			return true
		}
		if len(delaysMS) > 300 {
			delaysMS = delaysMS[:300]
		}
		s := NewScheduler(7)
		var fired []Time
		for _, d := range delaysMS {
			s.After(time.Duration(d)*time.Millisecond, "q", func() {
				fired = append(fired, s.Now())
			})
		}
		s.RunAll()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
