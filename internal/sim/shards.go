package sim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"enviromic/internal/telemetry"
)

// Shards coordinates conservative parallel execution of one simulation
// across several Schedulers. Each shard owns a disjoint set of nodes and
// runs their events on its own goroutine; a separate "global" scheduler
// carries run-level events (samplers, fault injection, anything that
// reads or mutates cross-shard state) and executes them exclusively, with
// every shard parked at the same instant.
//
// Correctness rests on a lookahead bound L: every cross-shard interaction
// in the model is a radio delivery, and every delivery is scheduled at
// least L after its send (turnaround delay plus minimum frame air time).
// Events are therefore executed in windows [W, W+L): no event inside a
// window can affect another shard *within* that window, so shards may run
// a window concurrently without looking at each other. Cross-shard
// deliveries produced during a window are deposited into per-(src,dst)
// lanes — single writer each, no locks — and merged into the destination
// heaps at the next barrier, sorted by a shard-count-invariant key
// (at, sentAt, sender, txSeq). Together with per-node randomness and the
// (at, schedAt, pri, seq) event key this makes a sharded run bit-identical
// to the serial run for any shard count; DESIGN.md §14 gives the full
// argument.
type Shards struct {
	global *Scheduler
	shards []*Scheduler
	look   time.Duration
	// lanes[src][dst] buffers deposits made by shard src for shard dst
	// during a window. Only goroutine src writes lanes[src][*]; the
	// barrier (coordinator goroutine) reads and clears them.
	lanes [][][]deposit
	// globalLane buffers deposits made from the global lane (retrieval
	// drivers, fault handlers) — single-threaded, so one slice per dst.
	globalLane [][]deposit
	// hooks run at every barrier, after deposits merge and before the
	// next window is chosen: per-shard tracer flushes, staged metric
	// flushes, radio index maintenance.
	hooks []func()
	// scratch for the per-barrier merge sort.
	mergeBuf []deposit
	workers  []shardWorker
	running  bool
	// metrics is the optional telemetry hookup (SetMetrics). All updates
	// happen on the coordinator goroutine, outside the deterministic event
	// stream; workers only time their own windows.
	metrics *shardsMetrics
}

// shardsMetrics holds the coordinator's telemetry series. It observes the
// run — it never schedules events or draws randomness — so attaching it
// cannot perturb a fixed-seed result.
type shardsMetrics struct {
	windows      *telemetry.Counter
	barriers     *telemetry.Counter
	globalParks  *telemetry.Counter
	globalEvents *telemetry.Counter
	deposits     *telemetry.Counter
	laneDepth    *telemetry.Histogram
	barrierWait  *telemetry.Histogram
	shardEvents  []*telemetry.Counter
	simTime      *telemetry.Gauge
	progress     *telemetry.Gauge

	// heartbeat state, touched only by the coordinator goroutine.
	lastWall time.Time
	lastSim  Time
}

// SetMetrics attaches a telemetry registry to the coordinator; call it
// before Run. Workers begin timing their windows at the next start(), and
// the coordinator publishes per-shard event counts, straggler skew,
// deposit-lane depth, window/park counters and a run-progress heartbeat.
// A nil registry leaves the coordinator untouched.
func (sh *Shards) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &shardsMetrics{
		windows: reg.Counter("enviromic_sim_windows_total",
			"Lookahead windows executed by the shard coordinator."),
		barriers: reg.Counter("enviromic_sim_barriers_total",
			"Window barriers (deposit merge plus hooks) run."),
		globalParks: reg.Counter("enviromic_sim_global_parks_total",
			"Exclusive global-lane steps, every shard parked."),
		globalEvents: reg.Counter("enviromic_sim_global_events_total",
			"Events executed on the exclusive global lane."),
		deposits: reg.Counter("enviromic_sim_deposits_merged_total",
			"Cross-shard deposits merged into destination heaps at barriers."),
		laneDepth: reg.Histogram("enviromic_sim_deposit_lane_depth",
			"Cross-shard deposits merged per non-empty barrier.",
			telemetry.ExpBuckets(1, 2, 12)),
		barrierWait: reg.Histogram("enviromic_sim_barrier_wait_seconds",
			"Straggler skew per window: slowest minus fastest shard wall time.",
			telemetry.ExpBuckets(1e-6, 4, 10)),
		simTime: reg.Gauge("enviromic_sim_time_seconds",
			"Simulated time reached by the run."),
		progress: reg.Gauge("enviromic_sim_progress",
			"Simulated seconds advanced per wall-clock second, sampled at barriers."),
	}
	m.shardEvents = make([]*telemetry.Counter, len(sh.shards))
	for i := range sh.shards {
		m.shardEvents[i] = reg.Counter("enviromic_sim_shard_events_total",
			"Events executed per shard.", telemetry.L("shard", strconv.Itoa(i)))
	}
	sh.metrics = m
}

// heartbeat refreshes the run-progress gauges at most every 250ms of wall
// time: simulated time reached, and simulated seconds advanced per wall
// second since the previous beat.
func (m *shardsMetrics) heartbeat(now Time) {
	wall := time.Now()
	if m.lastWall.IsZero() {
		m.lastWall, m.lastSim = wall, now
		m.simTime.Set(now.Seconds())
		return
	}
	dt := wall.Sub(m.lastWall)
	if dt < 250*time.Millisecond {
		return
	}
	m.simTime.Set(now.Seconds())
	m.progress.Set(now.Sub(m.lastSim).Seconds() / dt.Seconds())
	m.lastWall, m.lastSim = wall, now
}

// deposit is a cross-shard event awaiting injection into its destination
// shard: a radio delivery (or any other cross-shard callback) tagged with
// enough sender identity to order deposits deterministically regardless
// of which shard produced them or when its goroutine was scheduled.
type deposit struct {
	at     Time
	sentAt Time
	sender int
	txSeq  uint64
	name   string
	fn     func()
}

type shardWorker struct {
	req  chan windowReq
	done chan windowResult
}

// windowResult reports one shard's window: events executed and, when the
// coordinator has metrics attached, wall nanoseconds spent.
type windowResult struct {
	n  uint64
	ns int64
}

type windowReq struct {
	end      Time
	tieSched Time
	clock    Time
}

// NewShards builds a coordinator with n shard schedulers plus the global
// lane. lookahead must be a positive lower bound on every cross-shard
// latency in the model. Seeds: the global scheduler owns the run's
// build-time stream (identical to the serial scheduler's), shard
// schedulers get derived streams (they exist for API compatibility; all
// runtime protocol randomness should be per-node).
func NewShards(seed int64, n int, lookahead time.Duration) *Shards {
	if n <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard count %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	sh := &Shards{
		global: NewScheduler(seed),
		shards: make([]*Scheduler, n),
		look:   lookahead,
	}
	for i := range sh.shards {
		sh.shards[i] = NewScheduler(NodeSeed(seed, -1-i))
	}
	sh.lanes = make([][][]deposit, n)
	for i := range sh.lanes {
		sh.lanes[i] = make([][]deposit, n)
	}
	sh.globalLane = make([][]deposit, n)
	return sh
}

// N returns the shard count.
func (sh *Shards) N() int { return len(sh.shards) }

// Lookahead returns the window width.
func (sh *Shards) Lookahead() time.Duration { return sh.look }

// Global returns the run-level scheduler. Samplers, fault injectors and
// anything that touches more than one shard's state must schedule here:
// global events execute exclusively, with all shard clocks synchronized
// to the event's instant.
func (sh *Shards) Global() *Scheduler { return sh.global }

// Shard returns shard i's scheduler.
func (sh *Shards) Shard(i int) *Scheduler { return sh.shards[i] }

// OnBarrier registers fn to run at every window barrier (and once before
// the first window and after the last). Barrier hooks run on the
// coordinator goroutine with all shards parked.
func (sh *Shards) OnBarrier(fn func()) { sh.hooks = append(sh.hooks, fn) }

// Deposit buffers a cross-shard event produced by shard src (or by the
// global lane when src < 0) for destination shard dst. at is the fire
// time, sentAt the sender's current time; (sender, txSeq) disambiguate
// same-instant deposits deterministically — callers must make the pair
// unique per (at, sentAt). Must only be called from src's goroutine
// during a window, or from the coordinator (global events, barriers).
func (sh *Shards) Deposit(src, dst int, at, sentAt Time, sender int, txSeq uint64, name string, fn func()) {
	d := deposit{at: at, sentAt: sentAt, sender: sender, txSeq: txSeq, name: name, fn: fn}
	if src < 0 {
		sh.globalLane[dst] = append(sh.globalLane[dst], d)
		return
	}
	sh.lanes[src][dst] = append(sh.lanes[src][dst], d)
}

// merge drains all deposit lanes into the destination heaps in a
// deterministic order. The sort key (at, sentAt, sender, txSeq) does not
// reference shard identity, so the injection order — and therefore the
// seq numbers handed out by the destination scheduler — is identical for
// every shard count.
func (sh *Shards) merge() {
	var merged int64
	for dst := range sh.shards {
		buf := sh.mergeBuf[:0]
		for src := range sh.lanes {
			lane := sh.lanes[src][dst]
			if len(lane) == 0 {
				continue
			}
			buf = append(buf, lane...)
			sh.lanes[src][dst] = lane[:0]
		}
		if lane := sh.globalLane[dst]; len(lane) > 0 {
			buf = append(buf, lane...)
			sh.globalLane[dst] = lane[:0]
		}
		if len(buf) == 0 {
			continue
		}
		merged += int64(len(buf))
		sort.Slice(buf, func(i, j int) bool {
			a, b := &buf[i], &buf[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.sentAt != b.sentAt {
				return a.sentAt < b.sentAt
			}
			if a.sender != b.sender {
				return a.sender < b.sender
			}
			return a.txSeq < b.txSeq
		})
		dest := sh.shards[dst]
		for i := range buf {
			d := &buf[i]
			dest.inject(d.at, d.sentAt, d.sender, d.txSeq, d.name, d.fn)
			buf[i].fn = nil
		}
		sh.mergeBuf = buf[:0]
	}
	if m := sh.metrics; m != nil && merged > 0 {
		m.deposits.Add(merged)
		m.laneDepth.Observe(float64(merged))
	}
}

// barrier runs the merge and all registered hooks.
func (sh *Shards) barrier() {
	sh.merge()
	for _, h := range sh.hooks {
		h()
	}
	if m := sh.metrics; m != nil {
		m.barriers.Inc()
		m.heartbeat(sh.global.Now())
	}
}

// minNext returns the earliest pending event time across all shards and
// the global lane.
func (sh *Shards) minNext() (Time, bool) {
	var best Time
	found := false
	for _, s := range sh.shards {
		if t, ok := s.NextEventTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	if t, ok := sh.global.NextEventTime(); ok && (!found || t < best) {
		best, found = t, true
	}
	return best, found
}

// start launches one goroutine per shard (idempotent).
func (sh *Shards) start() {
	if sh.running {
		return
	}
	sh.workers = make([]shardWorker, len(sh.shards))
	timed := sh.metrics != nil
	for i := range sh.shards {
		w := shardWorker{req: make(chan windowReq), done: make(chan windowResult)}
		sh.workers[i] = w
		s := sh.shards[i]
		go func() {
			for r := range w.req {
				if timed {
					start := time.Now()
					n := s.runBounded(r.end, r.tieSched, r.clock)
					w.done <- windowResult{n: n, ns: time.Since(start).Nanoseconds()}
					continue
				}
				w.done <- windowResult{n: s.runBounded(r.end, r.tieSched, r.clock)}
			}
		}()
	}
	sh.running = true
}

// stopWorkers shuts the shard goroutines down (idempotent).
func (sh *Shards) stopWorkers() {
	if !sh.running {
		return
	}
	for _, w := range sh.workers {
		close(w.req)
	}
	sh.workers = nil
	sh.running = false
}

// runShards executes one bounded window on every shard concurrently and
// waits for all of them. The channel round-trip is the happens-before
// edge that lets the coordinator (and the next window's owners) observe
// everything a shard wrote. With one shard the window runs inline.
func (sh *Shards) runShards(r windowReq) uint64 {
	m := sh.metrics
	if len(sh.shards) == 1 {
		n := sh.shards[0].runBounded(r.end, r.tieSched, r.clock)
		if m != nil {
			m.shardEvents[0].Add(int64(n))
		}
		return n
	}
	for _, w := range sh.workers {
		w.req <- r
	}
	var n uint64
	var minNS, maxNS int64 = math.MaxInt64, 0
	for i, w := range sh.workers {
		res := <-w.done
		n += res.n
		if m != nil {
			m.shardEvents[i].Add(int64(res.n))
			if res.ns < minNS {
				minNS = res.ns
			}
			if res.ns > maxNS {
				maxNS = res.ns
			}
		}
	}
	if m != nil && maxNS > minNS {
		m.barrierWait.Observe(float64(maxNS-minNS) / 1e9)
	}
	return n
}

// Run executes the simulation up to and including `until`, alternating
// lookahead windows (shards in parallel) with exclusive global-lane
// steps. All clocks are left at `until`. Returns callbacks executed.
func (sh *Shards) Run(until Time) uint64 {
	sh.start()
	defer sh.stopWorkers()
	var n uint64
	for {
		sh.barrier()
		w, ok := sh.minNext()
		if !ok || w > until {
			break
		}
		gAt, gSched, gok := sh.global.peekKey()
		if gok && gAt == w {
			// A global event is (among) the earliest. Run each shard's
			// events at instant w that were scheduled strictly before
			// the global event was (they precede it in the serial
			// order), then — after an extra barrier, so the global event
			// observes flushed traces and staged metrics from everything
			// that logically preceded it — the global events of that
			// schedule instant, exclusively. Loop re-entry picks up
			// later-scheduled global events at w, then the window
			// resumes.
			n += sh.runShards(windowReq{end: w, tieSched: gSched, clock: w})
			sh.barrier()
			g := sh.global.runBounded(w, gSched+1, w)
			n += g
			if m := sh.metrics; m != nil {
				m.globalParks.Inc()
				m.globalEvents.Add(int64(g))
			}
			continue
		}
		wend := w.Add(sh.look)
		if gok && gAt < wend {
			// The window may not cross a global event: it must execute
			// with all shards parked at its instant.
			wend = gAt
		}
		clock := wend
		if wend > until {
			// Final partial window: include events at exactly `until`
			// (Run's contract is inclusive) but leave clocks at until.
			wend, clock = until+1, until
		}
		n += sh.runShards(windowReq{end: wend, tieSched: 0, clock: clock})
		sh.global.advanceTo(clock)
		if m := sh.metrics; m != nil {
			m.windows.Inc()
		}
	}
	// Park every clock at until (covers the no-events-at-all case).
	for _, s := range sh.shards {
		s.advanceTo(until)
	}
	sh.global.advanceTo(until)
	sh.barrier()
	return n
}

// Executed returns total callbacks run across the global lane and all
// shards.
func (sh *Shards) Executed() uint64 {
	n := sh.global.Executed()
	for _, s := range sh.shards {
		n += s.Executed()
	}
	return n
}

// Pending returns queued events across the global lane and all shards.
func (sh *Shards) Pending() int {
	n := sh.global.Pending()
	for _, s := range sh.shards {
		n += s.Pending()
	}
	return n
}

// SetEventLimit spreads a total event budget across the global lane and
// shards (each gets the full budget; the guard is per-scheduler).
func (sh *Shards) SetEventLimit(n uint64) {
	sh.global.SetEventLimit(n)
	for _, s := range sh.shards {
		s.SetEventLimit(n)
	}
}
