// Package sim provides a deterministic discrete-event simulation kernel.
//
// All EnviroMic protocol logic runs on top of a Scheduler: modules schedule
// callbacks at virtual times, and the scheduler executes them in strict
// (time, sequence) order. Determinism is a design requirement — every
// experiment in the paper reproduction is a pure function of (scenario,
// seed) — so the kernel never consults wall-clock time and all randomness
// flows from a single seeded source owned by the run.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute virtual time, in nanoseconds since simulation start.
type Time int64

// Jiffy is the MicaZ clock granularity used throughout the paper:
// 1 jiffy = 1/32768 s.
const Jiffy = time.Second / 32768

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration converts t to the duration elapsed since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// At constructs a Time from a duration since simulation start.
func At(d time.Duration) Time { return Time(d) }

// Timer is a handle to a scheduled callback. The zero value is not useful;
// timers are produced by Scheduler.At and Scheduler.After.
//
// Event structs are recycled through a free list once they fire or are
// reaped, so the handle carries the generation it was issued for; a stale
// Timer whose event has been reused becomes an inert no-op instead of
// cancelling the new occupant.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the callback from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the callback has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

type event struct {
	at        Time
	seq       uint64
	gen       uint64
	name      string
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is the discrete-event executor. It is not safe for concurrent
// use: the simulation is single-threaded by design so that runs are
// reproducible.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
	// executed counts callbacks run, for diagnostics and runaway detection.
	executed uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64
	// free recycles event structs between schedulings. Per-event heap
	// allocation dominated the radio hot path before this list existed.
	free []*event
}

// alloc takes an event from the free list (or the heap allocator) and
// initialises it for scheduling.
func (s *Scheduler) alloc(at Time, name string, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.cancelled = false
		ev.fired = false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.seq
	ev.name = name
	ev.fn = fn
	s.seq++
	return ev
}

// release returns a popped event to the free list. Bumping the generation
// invalidates any Timer handles still pointing at it.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	s.free = append(s.free, ev)
}

// NewScheduler returns a scheduler whose randomness is derived entirely
// from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand exposes the run's random source. All protocol randomness (election
// back-offs, packet loss draws, workload sampling) must come from here.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed returns the number of callbacks run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// SetEventLimit aborts Run with a panic after n callbacks, as a guard
// against protocol livelock in tests. n = 0 disables the limit.
func (s *Scheduler) SetEventLimit(n uint64) { s.maxEvents = n }

// At schedules fn at absolute time t. Scheduling in the past is an error
// that panics: protocol code that computes a past deadline is buggy, and
// silently clamping would mask it.
func (s *Scheduler) At(t Time, name string, fn func()) *Timer {
	tm := s.AtTimer(t, name, fn)
	return &tm
}

// AtTimer is At returning the handle by value, for callers that keep the
// handle in a struct field (or discard it) and want to avoid the per-call
// heap allocation of a *Timer.
func (s *Scheduler) AtTimer(t Time, name string, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, s.now))
	}
	ev := s.alloc(t, name, fn)
	heap.Push(&s.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn d after the current time. Negative d panics.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Timer {
	tm := s.AfterTimer(d, name, fn)
	return &tm
}

// AfterTimer is After returning the handle by value (see AtTimer).
func (s *Scheduler) AfterTimer(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.AtTimer(s.now.Add(d), name, fn)
}

// Post schedules fn d after the current time without issuing a cancel
// handle at all: the fire-and-forget form used by hot paths (the radio's
// delivery events) where even a by-value Timer is dead weight.
func (s *Scheduler) Post(d time.Duration, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	t := s.now.Add(d)
	ev := s.alloc(t, name, fn)
	heap.Push(&s.queue, ev)
}

// Stop makes the current Run return after the in-flight callback.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue is exhausted or the next
// event would fire after `until`. The clock is left at `until` (or at the
// last event time if that is later than the clock but the queue drained
// early). It returns the number of callbacks executed by this call.
func (s *Scheduler) Run(until Time) uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		if next.cancelled {
			s.release(next)
			continue
		}
		s.now = next.at
		next.fired = true
		next.fn()
		s.executed++
		n++
		if s.maxEvents > 0 && s.executed > s.maxEvents {
			panic(fmt.Sprintf("sim: event limit %d exceeded (last event %q at %v)",
				s.maxEvents, next.name, next.at))
		}
		s.release(next)
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes every pending event regardless of time. It is intended
// for draining a simulation at the end of a scenario.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		next := heap.Pop(&s.queue).(*event)
		if next.cancelled {
			s.release(next)
			continue
		}
		s.now = next.at
		next.fired = true
		next.fn()
		s.executed++
		n++
		if s.maxEvents > 0 && s.executed > s.maxEvents {
			panic(fmt.Sprintf("sim: event limit %d exceeded (last event %q at %v)",
				s.maxEvents, next.name, next.at))
		}
		s.release(next)
	}
	return n
}

// Pending returns the number of queued (non-cancelled) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// NextEventTime returns the time of the earliest pending event, and false
// if the queue is empty. Cancelled events may occupy the heap root, so a
// single linear pass over the queue finds the minimum among live events.
func (s *Scheduler) NextEventTime() (Time, bool) {
	var best Time
	found := false
	for _, ev := range s.queue {
		if !ev.cancelled && (!found || ev.at < best) {
			best, found = ev.at, true
		}
	}
	return best, found
}
