// Package sim provides a deterministic discrete-event simulation kernel.
//
// All EnviroMic protocol logic runs on top of a Scheduler: modules schedule
// callbacks at virtual times, and the scheduler executes them in strict
// (time, schedule-time, sequence) order. Determinism is a design
// requirement — every experiment in the paper reproduction is a pure
// function of (scenario, seed) — so the kernel never consults wall-clock
// time and all randomness flows from seeded sources owned by the run.
//
// The kernel has two execution modes. The serial mode (Scheduler.Run)
// drains one heap on one goroutine. The sharded mode (Shards.Run, see
// shards.go) partitions the node population across several Schedulers and
// executes them concurrently in conservative lookahead windows; the event
// ordering key is designed so both modes replay the same schedule (§14 of
// DESIGN.md gives the argument).
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute virtual time, in nanoseconds since simulation start.
type Time int64

// Jiffy is the MicaZ clock granularity used throughout the paper:
// 1 jiffy = 1/32768 s.
const Jiffy = time.Second / 32768

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration converts t to the duration elapsed since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// At constructs a Time from a duration since simulation start.
func At(d time.Duration) Time { return Time(d) }

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mixer used to derive independent per-node seeds
// from (run seed, node id) without any cross-correlation between streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NodeSeed derives the seed of a per-node random stream from the run seed
// and the node identity. Per-node streams are what make sharded execution
// bit-identical to serial execution: each node draws from its own stream
// in its own event order, which is invariant under any shard count,
// whereas interleaving draws on one shared stream would depend on the
// global event interleaving.
func NodeSeed(seed int64, id int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ splitmix64(uint64(id)+0x5851f42d4c957f2d)))
}

// Timer is a handle to a scheduled callback. The zero value is not useful;
// timers are produced by Scheduler.At and Scheduler.After.
//
// Event structs are recycled through a free list once they fire or are
// reaped, so the handle carries the generation it was issued for; a stale
// Timer whose event has been reused becomes an inert no-op instead of
// cancelling the new occupant.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the callback from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	if t.ev.owner != nil {
		t.ev.owner.live--
	}
	return true
}

// Pending reports whether the callback has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

// event ordering: (at, schedAt, pri, seq).
//
//   - at is the fire time.
//   - schedAt is the virtual time at which the event was scheduled. In
//     serial execution seq alone already encodes this order (seq is
//     assigned in scheduling order and the clock never runs backwards), so
//     adding schedAt does not change the serial schedule. It exists for
//     the sharded mode: a cross-shard radio delivery is re-enqueued on the
//     destination shard with the *sender's* schedule time, which lets it
//     take the same position relative to the destination's same-instant
//     events as it would have in the serial run.
//   - pri separates ordinary events (pri 0) from radio deliveries
//     (pri 1): deliveries sort after same-(at, schedAt) local events in
//     both engines.
//   - (sender, txSeq) order same-(at, schedAt) deliveries. Serial
//     execution would order them by Post call order (seq), which is the
//     senders' execution order at the send instant — a quantity the
//     sharded merge cannot reconstruct. Keying on the sender identity
//     instead is deterministic, shard-count-invariant, and available to
//     both engines, so they replay the same schedule. Ordinary events
//     leave the pair zero and fall through to seq as before.
type event struct {
	at        Time
	schedAt   Time
	seq       uint64
	txSeq     uint64
	gen       uint64
	name      string
	fn        func()
	owner     *Scheduler
	sender    int32
	pri       uint8
	cancelled bool
	fired     bool
}

// heapEntry is one queued event plus a copy of its ordering key. The key
// lives in the heap slice itself so sift comparisons touch contiguous
// memory: with tens of thousands of pending events (a 10k-mote city keeps
// one ticker per mote queued at all times) the pointer-chasing comparison
// against scattered event structs was the hottest line in the whole
// simulator profile. The event key is a strict total order (seq is unique
// per scheduler, and deliveries are unique in (sender, txSeq) before seq),
// so the pop sequence — and therefore the simulation — is independent of
// the heap's internal arrangement.
type heapEntry struct {
	at      Time
	schedAt Time
	txSeq   uint64
	seq     uint64
	ev      *event
	sender  int32
	pri     uint8
}

// less orders entries by (at, schedAt, pri, sender, txSeq, seq); see the
// event doc comment for why each component exists.
func (a *heapEntry) less(b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	if a.sender != b.sender {
		return a.sender < b.sender
	}
	if a.txSeq != b.txSeq {
		return a.txSeq < b.txSeq
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled 4-ary min-heap of keyed entries. Four-way
// branching halves the sift depth relative to a binary heap, and the
// extra sibling comparisons per level are nearly free because the keyed
// entries sit contiguously in the slice; together with the by-value keys
// this cut city-scale event dispatch cost by ~40%. Cancelled events are
// not removed eagerly; they are dropped when they reach the root
// (pruneRoot), so no back-indices need maintaining on swaps.
type eventHeap []heapEntry

const heapArity = 4

func (h *eventHeap) push(ev *event) {
	q := append(*h, heapEntry{
		at: ev.at, schedAt: ev.schedAt, txSeq: ev.txSeq, seq: ev.seq,
		ev: ev, sender: ev.sender, pri: ev.pri,
	})
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q[i].less(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event. Caller must check Len.
func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	root := q[0].ev
	q[0] = q[n]
	q[n] = heapEntry{}
	q = q[:n]
	*h = q
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if q[c].less(&q[m]) {
				m = c
			}
		}
		if !q[m].less(&q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return root
}

// Scheduler is the discrete-event executor. It is not safe for concurrent
// use: each scheduler runs single-threaded by design so that runs are
// reproducible. Sharded execution uses one Scheduler per shard, each on
// its own goroutine, with all cross-scheduler traffic funnelled through
// Shards' barrier (see shards.go).
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
	// live counts queued non-cancelled events so Pending is O(1).
	live int
	// executed counts callbacks run, for diagnostics and runaway detection.
	executed uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64
	// free recycles event structs between schedulings. Per-event heap
	// allocation dominated the radio hot path before this list existed.
	// The list persists across Run/RunAll invocations, so repeated
	// windows (the sharded mode runs tens of thousands of them) reuse
	// the same arena.
	free []*event
}

// alloc takes an event from the free list (or the heap allocator) and
// initialises it for scheduling.
func (s *Scheduler) alloc(at Time, name string, fn func()) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.cancelled = false
		ev.fired = false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.schedAt = s.now
	ev.seq = s.seq
	ev.txSeq = 0
	ev.name = name
	ev.fn = fn
	ev.owner = s
	ev.sender = 0
	ev.pri = 0
	s.seq++
	s.live++
	return ev
}

// release returns a popped event to the free list. Bumping the generation
// invalidates any Timer handles still pointing at it.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	s.free = append(s.free, ev)
}

// NewScheduler returns a scheduler whose randomness is derived entirely
// from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand exposes the run's build-time random source: topology jitter, clock
// drift and other draws made while the network is constructed (before any
// events execute) come from here, so they are identical for every shard
// count. Runtime protocol randomness (election back-offs, loss draws,
// listen jitter) must come from per-node streams seeded via NodeSeed —
// a shared runtime stream would make results depend on the global event
// interleaving, which sharded execution does not preserve.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed returns the number of callbacks run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// SetEventLimit aborts Run with a panic after n callbacks, as a guard
// against protocol livelock in tests. n = 0 disables the limit.
func (s *Scheduler) SetEventLimit(n uint64) { s.maxEvents = n }

// At schedules fn at absolute time t. Scheduling in the past is an error
// that panics: protocol code that computes a past deadline is buggy, and
// silently clamping would mask it.
func (s *Scheduler) At(t Time, name string, fn func()) *Timer {
	tm := s.AtTimer(t, name, fn)
	return &tm
}

// AtTimer is At returning the handle by value, for callers that keep the
// handle in a struct field (or discard it) and want to avoid the per-call
// heap allocation of a *Timer.
func (s *Scheduler) AtTimer(t Time, name string, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, s.now))
	}
	ev := s.alloc(t, name, fn)
	s.queue.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn d after the current time. Negative d panics.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Timer {
	tm := s.AfterTimer(d, name, fn)
	return &tm
}

// AfterTimer is After returning the handle by value (see AtTimer).
func (s *Scheduler) AfterTimer(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return s.AtTimer(s.now.Add(d), name, fn)
}

// Post schedules fn d after the current time without issuing a cancel
// handle at all: the fire-and-forget form used by hot paths (the radio's
// delivery events) where even a by-value Timer is dead weight.
func (s *Scheduler) Post(d time.Duration, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	t := s.now.Add(d)
	ev := s.alloc(t, name, fn)
	s.queue.push(ev)
}

// PostDelivery schedules a radio delivery d after now. Deliveries carry
// the full delivery ordering key — pri 1 plus (sender, txSeq) — so that
// same-instant deliveries from different senders execute in the same
// order under serial and sharded execution (the sharded merge sorts its
// deposits by exactly this key; see the event doc comment).
func (s *Scheduler) PostDelivery(d time.Duration, sender int, txSeq uint64, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	ev := s.alloc(s.now.Add(d), name, fn)
	ev.sender = int32(sender)
	ev.txSeq = txSeq
	ev.pri = 1
	s.queue.push(ev)
}

// inject enqueues a cross-shard delivery carrying the sender's schedule
// time and identity. Injected events sort after same-(at, schedAt) local
// events (pri 1) and among themselves by (sender, txSeq), matching the
// serial PostDelivery order.
func (s *Scheduler) inject(at, schedAt Time, sender int, txSeq uint64, name string, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: injecting %q at %v before now %v", name, at, s.now))
	}
	ev := s.alloc(at, name, fn)
	ev.schedAt = schedAt
	ev.sender = int32(sender)
	ev.txSeq = txSeq
	ev.pri = 1
	s.queue.push(ev)
}

// Stop makes the current Run return after the in-flight callback.
func (s *Scheduler) Stop() { s.stopped = true }

// popNext removes and returns the heap root, releasing cancelled events
// along the way. Returns nil when the queue is empty.
func (s *Scheduler) popNext() *event {
	for len(s.queue) > 0 {
		ev := s.queue.pop()
		if ev.cancelled {
			s.release(ev)
			continue
		}
		return ev
	}
	return nil
}

// fire executes a popped live event and recycles it.
func (s *Scheduler) fire(ev *event) {
	s.now = ev.at
	ev.fired = true
	s.live--
	ev.fn()
	s.executed++
	if s.maxEvents > 0 && s.executed > s.maxEvents {
		panic(fmt.Sprintf("sim: event limit %d exceeded (last event %q at %v)",
			s.maxEvents, ev.name, ev.at))
	}
	s.release(ev)
}

// Run executes events in order until the queue is exhausted or the next
// event would fire after `until`. The clock is left at `until` (or at the
// last event time if that is later than the clock but the queue drained
// early). It returns the number of callbacks executed by this call.
func (s *Scheduler) Run(until Time) uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		if s.pruneRoot(); len(s.queue) == 0 || s.queue[0].at > until {
			break
		}
		s.fire(s.queue.pop())
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes every pending event regardless of time. It is intended
// for draining a simulation at the end of a scenario.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		ev := s.popNext()
		if ev == nil {
			break
		}
		s.fire(ev)
		n++
	}
	return n
}

// runBounded executes events with at < end, plus — when tieSched > 0 —
// events at exactly `end` whose schedAt precedes tieSched. The clock is
// advanced to `clock` when the bound is reached. This is the sharded
// window primitive: a window [W, W+L) runs runBounded(W+L, 0, W+L) on
// each shard; the global-lane interleaving step at instant W runs
// runBounded(W, gSchedAt, W) so shard events scheduled before a pending
// global event execute first, matching the serial order.
func (s *Scheduler) runBounded(end Time, tieSched Time, clock Time) uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		if s.pruneRoot(); len(s.queue) == 0 {
			break
		}
		root := &s.queue[0]
		if root.at >= end && !(root.at == end && tieSched > 0 && root.schedAt < tieSched) {
			break
		}
		s.fire(s.queue.pop())
		n++
	}
	if s.now < clock {
		s.now = clock
	}
	return n
}

// pruneRoot pops cancelled events off the heap root so queue[0], when it
// exists, is live. Amortised O(1): each cancelled event is popped once.
func (s *Scheduler) pruneRoot() {
	for len(s.queue) > 0 && s.queue[0].ev.cancelled {
		s.release(s.queue.pop())
	}
}

// advanceTo moves the clock forward to t without executing anything. It
// panics if a live event earlier than t is still queued — the sharded
// coordinator only advances a scheduler it has proven idle below t.
func (s *Scheduler) advanceTo(t Time) {
	if s.pruneRoot(); len(s.queue) > 0 && s.queue[0].at < t {
		panic(fmt.Sprintf("sim: advanceTo %v over pending event %q at %v",
			t, s.queue[0].ev.name, s.queue[0].at))
	}
	if s.now < t {
		s.now = t
	}
}

// peekKey returns the (at, schedAt) key of the earliest pending event.
func (s *Scheduler) peekKey() (at, schedAt Time, ok bool) {
	if s.pruneRoot(); len(s.queue) == 0 {
		return 0, 0, false
	}
	return s.queue[0].at, s.queue[0].schedAt, true
}

// Pending returns the number of queued (non-cancelled) events. O(1): the
// count is maintained at schedule/cancel/fire time rather than by
// rescanning the heap (the realtime loop and the sharded coordinator call
// this between every window).
func (s *Scheduler) Pending() int { return s.live }

// NextEventTime returns the time of the earliest pending event, and false
// if the queue is empty. Cancelled events are lazily popped off the heap
// root, so the call is O(1) amortised rather than a linear scan.
func (s *Scheduler) NextEventTime() (Time, bool) {
	if s.pruneRoot(); len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}
