package sim

import (
	"fmt"
	"time"
)

// Ticker repeatedly invokes a callback at a fixed virtual-time period.
// Unlike time.Ticker there is no channel: the callback runs inline in the
// event loop. The zero value is not useful; use NewTicker.
type Ticker struct {
	sched   *Scheduler
	period  time.Duration
	name    string
	fn      func()
	timer   *Timer
	stopped bool
}

// NewTicker schedules fn every period, with the first invocation one
// period from now. A non-positive period panics.
func NewTicker(s *Scheduler, period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v for %q", period, name))
	}
	t := &Ticker{sched: s, period: period, name: name, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.sched.After(t.period, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future invocations. The callback never runs after Stop
// returns. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}

// Reset changes the period and restarts the ticker relative to now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v for %q", period, t.name))
	}
	if t.timer != nil {
		t.timer.Cancel()
	}
	t.period = period
	t.stopped = false
	t.arm()
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
