package sim

import (
	"fmt"
	"time"
)

// Ticker repeatedly invokes a callback at a fixed virtual-time period.
// Unlike time.Ticker there is no channel: the callback runs inline in the
// event loop. The zero value is not useful; use NewTicker.
//
// Rescheduling reuses one closure and a by-value timer handle, so a
// running ticker performs no per-tick allocation (tickers are the
// densest event source in a full figure run).
type Ticker struct {
	sched   *Scheduler
	period  time.Duration
	name    string
	fn      func()
	tick    func()
	timer   Timer
	stopped bool
}

// NewTicker schedules fn every period, with the first invocation one
// period from now. A non-positive period panics.
func NewTicker(s *Scheduler, period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v for %q", period, name))
	}
	t := &Ticker{sched: s, period: period, name: name, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.sched.AfterTimer(t.period, t.name, t.tick)
}

// Stop cancels future invocations. The callback never runs after Stop
// returns. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Cancel()
}

// Reset changes the period and restarts the ticker relative to now.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v for %q", period, t.name))
	}
	t.timer.Cancel()
	t.period = period
	t.stopped = false
	t.arm()
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
