package netstack

import (
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Interned kinds for the test payloads.
var (
	kindSensing = radio.RegisterKind("sensing")
	kindTask    = radio.RegisterKind("task")
	kindUnknown = radio.RegisterKind("unknown")
	kindX       = radio.RegisterKind("x")
	kindTTL     = radio.RegisterKind("ttl")
)

type testPayload struct {
	kind radio.KindID
	size int
	tag  int
}

func (p testPayload) Kind() radio.KindID { return p.kind }
func (p testPayload) Size() int          { return p.size }

func rig(seed int64, loss float64) (*sim.Scheduler, *radio.Network) {
	s := sim.NewScheduler(seed)
	cfg := radio.DefaultConfig(5)
	cfg.LossProb = loss
	cfg.Seed = seed
	return s, radio.NewNetwork(s, cfg)
}

type recvLog struct {
	got []struct {
		from, to int
		p        radio.Payload
	}
}

func (r *recvLog) handler() Handler {
	return func(from, to int, p radio.Payload) {
		r.got = append(r.got, struct {
			from, to int
			p        radio.Payload
		}{from, to, p})
	}
}

func TestStackDispatchByKind(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	var sensing, task recvLog
	b.Register(kindSensing, sensing.handler())
	b.Register(kindTask, task.handler())
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindSensing, size: 4})
	a.SendUrgent(1, testPayload{kind: kindTask, size: 8})
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindUnknown, size: 1})
	s.RunAll()
	if len(sensing.got) != 1 || len(task.got) != 1 {
		t.Fatalf("dispatch counts sensing=%d task=%d", len(sensing.got), len(task.got))
	}
	if task.got[0].to != 1 || task.got[0].from != 0 {
		t.Errorf("task from/to = %d/%d", task.got[0].from, task.got[0].to)
	}
}

func TestStackDuplicateRegisterPanics(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	a.Register(kindX, func(int, int, radio.Payload) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	a.Register(kindX, func(int, int, radio.Payload) {})
}

func TestPiggybackRidesOnUrgentSend(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	var ttl recvLog
	b.Register(kindTTL, ttl.handler())
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6})
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(100 * time.Millisecond)) // well before FlushAfter
	if len(ttl.got) != 1 {
		t.Fatalf("piggybacked payload not delivered: got %d", len(ttl.got))
	}
	if net.Stats().TotalFrames != 1 {
		t.Errorf("TotalFrames = %d, want 1 (piggyback must not add a frame)",
			net.Stats().TotalFrames)
	}
	if a.PendingDelayTolerant() != 0 {
		t.Error("pending queue not drained")
	}
}

func TestDelayTolerantFlushesAloneAfterTimeout(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	var ttl recvLog
	b.Register(kindTTL, ttl.handler())
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6})
	s.Run(sim.At(a.FlushAfter + 50*time.Millisecond))
	if len(ttl.got) != 1 {
		t.Fatalf("standalone flush did not deliver: got %d", len(ttl.got))
	}
}

func TestPiggybackRespectsByteBudget(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	a.MaxPiggyback = 10
	var ttl recvLog
	b.Register(kindTTL, ttl.handler())
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6, tag: 1})
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6, tag: 2}) // exceeds budget
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(50 * time.Millisecond))
	if len(ttl.got) != 1 {
		t.Fatalf("delivered %d ttl payloads early, want 1 (budget)", len(ttl.got))
	}
	if a.PendingDelayTolerant() != 1 {
		t.Errorf("pending = %d, want 1", a.PendingDelayTolerant())
	}
	// The leftover flushes by itself later.
	s.Run(sim.At(5 * time.Second))
	if len(ttl.got) != 2 {
		t.Errorf("leftover payload never flushed: got %d", len(ttl.got))
	}
}

func TestHeldUrgentSendsOnRadioRestore(t *testing.T) {
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	var task recvLog
	b.Register(kindTask, task.handler())
	a.Endpoint().SetRadio(false)
	a.SendUrgent(1, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(time.Second))
	if len(task.got) != 0 {
		t.Fatal("send leaked while radio off")
	}
	a.Endpoint().SetRadio(true)
	a.RadioRestored()
	s.Run(sim.At(2 * time.Second))
	if len(task.got) != 1 {
		t.Errorf("held send not released: got %d", len(task.got))
	}
}

// bulkRig builds two nodes with bulk transfer and a store on the receiver.
func bulkRig(t *testing.T, seed int64, loss float64, recvBlocks int) (*sim.Scheduler, *Bulk, *Bulk, *flash.Store, *radio.Network) {
	t.Helper()
	s, net := rig(seed, loss)
	sa := NewStack(net.Join(0, geometry.Point{}), s)
	sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	ba := NewBulk(sa, s)
	bb := NewBulk(sb, s)
	store := flash.NewStore(recvBlocks)
	bb.SetAccept(func(from int, c *flash.Chunk) bool {
		return store.Enqueue(c) == nil
	})
	return s, ba, bb, store, net
}

func mkChunks(n int) []*flash.Chunk {
	out := make([]*flash.Chunk, n)
	for i := range out {
		out[i] = &flash.Chunk{
			File: 1, Origin: 0, Seq: uint32(i),
			Start: sim.At(time.Duration(i) * time.Second),
			End:   sim.At(time.Duration(i+1) * time.Second),
			Data:  []byte{byte(i)},
		}
	}
	return out
}

func TestBulkTransferLossless(t *testing.T) {
	s, ba, _, store, _ := bulkRig(t, 1, 0, 16)
	var acked int
	var failed []*flash.Chunk
	ba.SendChunks(1, mkChunks(5), func(a int, f []*flash.Chunk) {
		acked, failed = a, f
	})
	s.RunAll()
	if acked != 5 || len(failed) != 0 {
		t.Fatalf("acked=%d failed=%d, want 5/0", acked, len(failed))
	}
	if store.Len() != 5 {
		t.Errorf("receiver stored %d chunks, want 5", store.Len())
	}
	for i, c := range store.Chunks() {
		if c.Seq != uint32(i) {
			t.Errorf("chunk order broken at %d: seq %d", i, c.Seq)
		}
	}
	if ba.InFlight() != 0 {
		t.Error("session not closed")
	}
}

func TestBulkTransferEmptySession(t *testing.T) {
	s, ba, _, _, _ := bulkRig(t, 1, 0, 4)
	called := false
	ba.SendChunks(1, nil, func(a int, f []*flash.Chunk) {
		called = a == 0 && f == nil
	})
	s.RunAll()
	if !called {
		t.Error("empty session did not complete immediately")
	}
}

func TestBulkTransferSurvivesPacketLoss(t *testing.T) {
	// 20% loss: retransmissions must still deliver everything.
	s, ba, _, store, _ := bulkRig(t, 2, 0.20, 64)
	var acked int
	var failed []*flash.Chunk
	ba.SendChunks(1, mkChunks(20), func(a int, f []*flash.Chunk) {
		acked, failed = a, f
	})
	s.RunAll()
	if acked+len(failed) != 20 {
		t.Fatalf("accounting broken: acked=%d failed=%d", acked, len(failed))
	}
	// With 3 retries at 20% loss, per-chunk failure odds are tiny; the
	// overwhelming majority must arrive.
	if acked < 18 {
		t.Errorf("only %d/20 chunks delivered under 20%% loss", acked)
	}
	if store.Len() < acked {
		t.Errorf("store has %d chunks but %d were acked", store.Len(), acked)
	}
}

func TestBulkTransferNoDuplicateStoresOnAckLoss(t *testing.T) {
	// Even when ACKs are lost and data is retransmitted, the receiver
	// dedupes by (session, seq): every stored chunk is unique.
	s, ba, _, store, _ := bulkRig(t, 11, 0.30, 128)
	done := false
	ba.SendChunks(1, mkChunks(30), func(a int, f []*flash.Chunk) { done = true })
	s.RunAll()
	if !done {
		t.Fatal("session never finished")
	}
	seen := map[uint32]int{}
	for _, c := range store.Chunks() {
		seen[c.Seq]++
	}
	for seq, n := range seen {
		if n > 1 {
			t.Errorf("chunk %d stored %d times", seq, n)
		}
	}
}

func TestBulkTransferReceiverRefusal(t *testing.T) {
	// Receiver flash holds 3 blocks; a 10-chunk session must deliver 3
	// and return the rest as failed.
	s, ba, _, store, _ := bulkRig(t, 1, 0, 3)
	var acked int
	var failed []*flash.Chunk
	ba.SendChunks(1, mkChunks(10), func(a int, f []*flash.Chunk) {
		acked, failed = a, f
	})
	s.RunAll()
	if acked != 3 {
		t.Errorf("acked = %d, want 3", acked)
	}
	if len(failed) != 7 {
		t.Errorf("failed = %d, want 7", len(failed))
	}
	if store.Len() != 3 {
		t.Errorf("store = %d, want 3", store.Len())
	}
}

func TestBulkTransferAbortsWhenReceiverSilent(t *testing.T) {
	s, net := rig(1, 0)
	sa := NewStack(net.Join(0, geometry.Point{}), s)
	sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	ba := NewBulk(sa, s)
	_ = NewBulk(sb, s) // receiver exists but its radio is off (recording)
	sb.Endpoint().SetRadio(false)
	var acked int
	var failed []*flash.Chunk
	ba.SendChunks(1, mkChunks(4), func(a int, f []*flash.Chunk) {
		acked, failed = a, f
	})
	s.RunAll()
	if acked != 0 || len(failed) != 4 {
		t.Errorf("acked=%d failed=%d, want 0/4", acked, len(failed))
	}
	if ba.InFlight() != 0 {
		t.Error("aborted session still open")
	}
}

func TestBulkThirdPartyDoesNotStoreOverheardChunks(t *testing.T) {
	s, net := rig(1, 0)
	sa := NewStack(net.Join(0, geometry.Point{}), s)
	sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	sc := NewStack(net.Join(2, geometry.Point{X: 2}), s)
	ba := NewBulk(sa, s)
	bb := NewBulk(sb, s)
	bc := NewBulk(sc, s)
	storeB := flash.NewStore(16)
	storeC := flash.NewStore(16)
	bb.SetAccept(func(int, *flash.Chunk) bool { return storeB.Enqueue(mkChunks(1)[0]) == nil })
	bc.SetAccept(func(int, *flash.Chunk) bool { return storeC.Enqueue(mkChunks(1)[0]) == nil })
	ba.SendChunks(1, mkChunks(3), nil)
	s.RunAll()
	if storeB.Len() != 3 {
		t.Errorf("addressee stored %d, want 3", storeB.Len())
	}
	if storeC.Len() != 0 {
		t.Errorf("bystander stored %d overheard chunks, want 0", storeC.Len())
	}
}

func TestBulkSenderChunksAreCloned(t *testing.T) {
	// The sender transmits clones: mutating the original after send must
	// not corrupt what the receiver stores.
	s, ba, _, store, _ := bulkRig(t, 1, 0, 4)
	chunks := mkChunks(1)
	ba.SendChunks(1, chunks, nil)
	chunks[0].Data[0] = 0xFF
	s.RunAll()
	if got := store.Chunks()[0].Data[0]; got == 0xFF {
		t.Error("receiver stored aliased payload")
	}
}

func TestBulkCompressionReducesAirBytes(t *testing.T) {
	run := func(compressOn bool) uint64 {
		s, net := rig(1, 0)
		sa := NewStack(net.Join(0, geometry.Point{}), s)
		sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
		ba := NewBulk(sa, s)
		ba.Compress = compressOn
		bb := NewBulk(sb, s)
		store := flash.NewStore(64)
		bb.SetAccept(func(from int, c *flash.Chunk) bool { return store.Enqueue(c) == nil })
		// Compressible payloads: silence with a brief click.
		chunks := make([]*flash.Chunk, 8)
		for i := range chunks {
			data := make([]byte, flash.PayloadSize)
			for j := range data {
				data[j] = 128
			}
			data[10] = 140
			chunks[i] = &flash.Chunk{File: 1, Seq: uint32(i), Data: data}
		}
		var acked int
		ba.SendChunks(1, chunks, func(a int, f []*flash.Chunk) { acked = a })
		s.RunAll()
		if acked != 8 {
			t.Fatalf("acked %d, want 8", acked)
		}
		// The receiver must hold the ORIGINAL payloads.
		for _, c := range store.Chunks() {
			if len(c.Data) != flash.PayloadSize || c.Data[10] != 140 || c.Data[11] != 128 {
				t.Fatal("decompressed payload corrupted")
			}
		}
		return net.Stats().TotalBytes
	}
	plain, compressed := run(false), run(true)
	if compressed >= plain {
		t.Errorf("compression did not reduce air bytes: %d vs %d", compressed, plain)
	}
	if compressed > plain/2 {
		t.Errorf("near-silence should compress > 2x: %d vs %d", compressed, plain)
	}
}

func TestBulkCompressionSkipsIncompressible(t *testing.T) {
	s, net := rig(9, 0)
	sa := NewStack(net.Join(0, geometry.Point{}), s)
	sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	ba := NewBulk(sa, s)
	ba.Compress = true
	bb := NewBulk(sb, s)
	store := flash.NewStore(8)
	bb.SetAccept(func(from int, c *flash.Chunk) bool { return store.Enqueue(c) == nil })
	data := make([]byte, flash.PayloadSize)
	for j := range data {
		data[j] = byte(j*7919 + j*j*31) // noisy
	}
	var acked int
	ba.SendChunks(1, []*flash.Chunk{{File: 1, Data: data}}, func(a int, f []*flash.Chunk) { acked = a })
	s.RunAll()
	if acked != 1 {
		t.Fatalf("acked %d", acked)
	}
	got := store.Chunks()[0].Data
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("incompressible payload corrupted")
		}
	}
	_ = net
}

func TestBulkClassRouting(t *testing.T) {
	// Balance-class chunks go to the balance acceptor; retrieval-class to
	// the retrieval acceptor; a missing acceptor refuses its class.
	s, net := rig(1, 0)
	sa := NewStack(net.Join(0, geometry.Point{}), s)
	sb := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	ba := NewBulk(sa, s)
	bb := NewBulk(sb, s)
	var balance, retrieval int
	bb.SetAccept(func(int, *flash.Chunk) bool { balance++; return true })
	bb.SetRetrievalAccept(func(int, *flash.Chunk) bool { retrieval++; return true })

	var balAcked, retAcked int
	ba.SendChunks(1, mkChunks(2), func(a int, _ []*flash.Chunk) { balAcked = a })
	ba.SendRetrieval(1, mkChunks(3), func(a int, _ []*flash.Chunk) { retAcked = a })
	s.RunAll()
	if balance != 2 || retrieval != 3 {
		t.Errorf("acceptor routing: balance=%d retrieval=%d, want 2/3", balance, retrieval)
	}
	if balAcked != 2 || retAcked != 3 {
		t.Errorf("acks: balance=%d retrieval=%d", balAcked, retAcked)
	}

	// No retrieval acceptor → retrieval chunks refused, balance unaffected.
	bb.SetRetrievalAccept(nil)
	var failed []*flash.Chunk
	ba.SendRetrieval(1, mkChunks(2), func(a int, f []*flash.Chunk) { failed = f })
	s.RunAll()
	if len(failed) != 2 {
		t.Errorf("retrieval without acceptor: %d failed, want 2", len(failed))
	}
}

func TestPiggybackPayloadCapAndOversized(t *testing.T) {
	// Pins takePiggyback's two limits: at most maxPiggybackPayloads ride
	// one frame regardless of byte budget, and a payload larger than the
	// whole budget is skipped (left queued) rather than sent or dropped.
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	a.MaxPiggyback = 1000 // byte budget far above the payload-count cap
	var ttl recvLog
	b.Register(kindTTL, ttl.handler())
	for i := 1; i <= maxPiggybackPayloads+2; i++ {
		a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6, tag: i})
	}
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(50 * time.Millisecond))
	if len(ttl.got) != maxPiggybackPayloads {
		t.Fatalf("rode %d payloads, want %d (count cap)", len(ttl.got), maxPiggybackPayloads)
	}
	for i, g := range ttl.got {
		if g.p.(testPayload).tag != i+1 {
			t.Errorf("ride %d has tag %d, want FIFO order", i, g.p.(testPayload).tag)
		}
	}
	if a.PendingDelayTolerant() != 2 {
		t.Errorf("pending = %d, want 2", a.PendingDelayTolerant())
	}

	// Oversized payload: bigger than the entire byte budget. It must stay
	// queued while a smaller queued payload still rides. With budget 10
	// only one of the two 6-byte leftovers fits alongside nothing else.
	a.MaxPiggyback = 10
	ttl.got = nil
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 64, tag: 100}) // > whole budget
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(100 * time.Millisecond))
	if len(ttl.got) != 1 || ttl.got[0].p.(testPayload).tag != maxPiggybackPayloads+1 {
		t.Fatalf("rode %d payloads (want 1: the oldest leftover): %+v", len(ttl.got), ttl.got)
	}
	for _, g := range ttl.got {
		if g.p.(testPayload).tag == 100 {
			t.Error("oversized payload rode despite exceeding the whole budget")
		}
	}
	if a.PendingDelayTolerant() != 2 {
		t.Errorf("pending = %d, want 2 (one leftover + the oversized payload)", a.PendingDelayTolerant())
	}
}

func TestPiggybackRideBufferReused(t *testing.T) {
	// The ride slice handed to the radio is the stack's reusable buffer;
	// payloads already sent must still deliver intact because the radio
	// copies them into frame-owned storage at Send.
	s, net := rig(1, 0)
	a := NewStack(net.Join(0, geometry.Point{}), s)
	b := NewStack(net.Join(1, geometry.Point{X: 1}), s)
	var ttl recvLog
	b.Register(kindTTL, ttl.handler())
	// Two urgent sends back-to-back, each taking one rider, before any
	// delivery runs: the second takePiggyback overwrites the ride buffer
	// while the first frame is still in flight.
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6, tag: 1})
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	a.SendDelayTolerant(testPayload{kind: kindTTL, size: 6, tag: 2})
	a.SendUrgent(radio.Broadcast, testPayload{kind: kindTask, size: 8})
	s.RunAll()
	if len(ttl.got) != 2 {
		t.Fatalf("delivered %d riders, want 2", len(ttl.got))
	}
	tags := map[int]bool{}
	for _, g := range ttl.got {
		tags[g.p.(testPayload).tag] = true
	}
	if !tags[1] || !tags[2] {
		t.Errorf("rider tags corrupted by buffer reuse: %v", tags)
	}
}
