package netstack

import (
	"fmt"
	"time"

	"enviromic/internal/compress"
	"enviromic/internal/flash"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Bulk payload kinds, visible in the control-message accounting.
var (
	KindBulkData = radio.RegisterKind("bulk.data")
	KindBulkAck  = radio.RegisterKind("bulk.ack")
)

// Trace event kinds (see DESIGN.md §11): dup is the receiver-side
// duplicate suppression (our ACK was lost; Peer = sender, V1 = session,
// V2 = seq); abort is a sender-side session giving up after MaxRetries
// (Peer = receiver, V1 = session, V2 = chunks returned to the caller).
var (
	evBulkDup   = obs.RegisterEvent("bulk.dup")
	evBulkAbort = obs.RegisterEvent("bulk.abort")
)

// Class distinguishes what a bulk session carries: storage-balancing
// migrations are *moves* (the receiver keeps the chunk), retrieval
// convergecasts are *reads* (the receiver forwards toward the sink).
// Without the distinction a retrieval relay would swallow concurrent
// balancing traffic and delete it from the network.
type Class uint8

// Bulk traffic classes.
const (
	ClassBalance Class = iota
	ClassRetrieval
)

// BulkData carries one flash chunk of a transfer session.
type BulkData struct {
	Session uint32
	Seq     uint32
	Last    bool
	Class   Class
	// Compressed marks the chunk payload as delta/RLE-compressed for
	// transit (§V's compression integration); the receiver restores it
	// before storing.
	Compressed bool
	Chunk      *flash.Chunk
}

// Kind implements radio.Payload.
func (BulkData) Kind() radio.KindID { return KindBulkData }

// Size implements radio.Payload: session/seq/flags/class + the chunk
// header and its (possibly compressed) payload. On-air size shrinks with
// compression, which is the point — radio bytes are the energy cost of
// load balancing.
func (d BulkData) Size() int {
	n := 11 + 30 // framing + chunk metadata header
	if d.Chunk != nil {
		n += len(d.Chunk.Data)
	}
	return n
}

// BulkAck acknowledges (or refuses) one BulkData.
type BulkAck struct {
	Session uint32
	Seq     uint32
	Accept  bool
}

// Kind implements radio.Payload.
func (BulkAck) Kind() radio.KindID { return KindBulkAck }

// Size implements radio.Payload.
func (BulkAck) Size() int { return 9 }

// AcceptFunc decides whether this node stores an incoming chunk; it
// returns false when local flash cannot take it (the sender keeps the
// chunk). The storage layer supplies it.
type AcceptFunc func(from int, c *flash.Chunk) bool

// DoneFunc reports a finished send session: acked chunks were delivered,
// failed chunks were not acknowledged and remain the sender's
// responsibility. Note the paper's caveat (§IV-B): an acked chunk whose
// ACK was lost is retried and may end up stored twice — duplication is a
// property of the medium the redundancy metric will observe.
type DoneFunc func(acked int, failed []*flash.Chunk)

// Bulk is the reliable local bulk-transfer component (§III-A). One
// instance per node; sessions run sequentially per destination.
type Bulk struct {
	stack *Stack
	sched *sim.Scheduler

	// AckTimeout is the per-chunk retransmission timeout.
	AckTimeout time.Duration
	// MaxRetries bounds retransmissions per chunk before the session
	// aborts.
	MaxRetries int
	// Compress applies in-transit delta/RLE compression to chunk
	// payloads, trading a little CPU for radio bytes (§V).
	Compress bool

	accept          AcceptFunc
	acceptRetrieval AcceptFunc
	nextSession     uint32
	sessions        map[uint32]*sendSession
	seenRecv        map[recvKey]bool
	tr              *obs.Tracer
}

type recvKey struct {
	from    int
	session uint32
	seq     uint32
}

type sendSession struct {
	id      uint32
	to      int
	class   Class
	chunks  []*flash.Chunk
	next    int
	retries int
	acked   int
	failed  []*flash.Chunk
	done    DoneFunc
	timer   sim.Timer
	// timeoutName caches the session's timeout-event label so per-chunk
	// (re)transmissions do not re-format it.
	timeoutName string
}

// NewBulk attaches a bulk-transfer service to a stack. accept may be nil
// until SetAccept is called; receiving data with no acceptor refuses it.
func NewBulk(stack *Stack, sched *sim.Scheduler) *Bulk {
	b := &Bulk{
		stack:      stack,
		sched:      sched,
		AckTimeout: 150 * time.Millisecond,
		MaxRetries: 3,
		sessions:   make(map[uint32]*sendSession),
		seenRecv:   make(map[recvKey]bool),
	}
	stack.Register(KindBulkData, b.handleData)
	stack.Register(KindBulkAck, b.handleAck)
	return b
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (b *Bulk) SetTracer(tr *obs.Tracer) { b.tr = tr }

// SetAccept installs the receiver-side acceptor for balancing-class
// chunks (the storage balancer's "keep this").
func (b *Bulk) SetAccept(fn AcceptFunc) { b.accept = fn }

// SetRetrievalAccept installs the acceptor for retrieval-class chunks
// (the retrieval responder's "relay toward the sink" / the mule's
// "collect").
func (b *Bulk) SetRetrievalAccept(fn AcceptFunc) { b.acceptRetrieval = fn }

// InFlight reports the number of open send sessions.
func (b *Bulk) InFlight() int { return len(b.sessions) }

// SendChunks transfers balancing-class chunks to neighbor `to`, invoking
// done when the session completes or aborts. An empty chunk list
// completes immediately.
func (b *Bulk) SendChunks(to int, chunks []*flash.Chunk, done DoneFunc) {
	b.send(to, ClassBalance, chunks, done)
}

// SendRetrieval transfers retrieval-class chunks (query responses and
// convergecast relays).
func (b *Bulk) SendRetrieval(to int, chunks []*flash.Chunk, done DoneFunc) {
	b.send(to, ClassRetrieval, chunks, done)
}

func (b *Bulk) send(to int, class Class, chunks []*flash.Chunk, done DoneFunc) {
	if len(chunks) == 0 {
		if done != nil {
			done(0, nil)
		}
		return
	}
	b.nextSession++
	ss := &sendSession{
		id: b.nextSession, to: to, class: class, chunks: chunks, done: done,
		timeoutName: fmt.Sprintf("bulk.timeout.%d", b.nextSession),
	}
	b.sessions[ss.id] = ss
	b.sendCurrent(ss)
}

func (b *Bulk) sendCurrent(ss *sendSession) {
	c := ss.chunks[ss.next].Clone()
	compressed := false
	if b.Compress {
		if enc := compress.Encode(c.Data); len(enc) < len(c.Data) {
			c.Data = enc
			compressed = true
		}
	}
	b.stack.SendUrgent(ss.to, BulkData{
		Session:    ss.id,
		Seq:        uint32(ss.next),
		Last:       ss.next == len(ss.chunks)-1,
		Class:      ss.class,
		Compressed: compressed,
		Chunk:      c,
	})
	ss.timer = b.sched.AfterTimer(b.AckTimeout, ss.timeoutName, func() {
		b.onTimeout(ss)
	})
}

func (b *Bulk) onTimeout(ss *sendSession) {
	if _, open := b.sessions[ss.id]; !open {
		return
	}
	ss.retries++
	if ss.retries <= b.MaxRetries {
		b.sendCurrent(ss)
		return
	}
	// Chunk undeliverable: abort the session, returning this and all
	// remaining chunks to the caller.
	ss.failed = append(ss.failed, ss.chunks[ss.next:]...)
	b.tr.Emit(b.sched.Now(), evBulkAbort, int32(b.stack.ep.ID()), int32(ss.to), 0, int64(ss.id), int64(len(ss.failed)))
	b.finish(ss)
}

func (b *Bulk) finish(ss *sendSession) {
	ss.timer.Cancel()
	delete(b.sessions, ss.id)
	if ss.done != nil {
		ss.done(ss.acked, ss.failed)
	}
}

func (b *Bulk) handleAck(from, to int, p radio.Payload) {
	if to != b.stack.ep.ID() {
		return // overheard someone else's ack
	}
	ack, ok := p.(BulkAck)
	if !ok {
		return
	}
	ss, open := b.sessions[ack.Session]
	if !open || from != ss.to || ack.Seq != uint32(ss.next) {
		return
	}
	ss.timer.Cancel()
	if !ack.Accept {
		// Receiver refused (flash full): keep the rest locally.
		ss.failed = append(ss.failed, ss.chunks[ss.next:]...)
		b.finish(ss)
		return
	}
	ss.acked++
	ss.retries = 0
	ss.next++
	if ss.next == len(ss.chunks) {
		b.finish(ss)
		return
	}
	b.sendCurrent(ss)
}

func (b *Bulk) handleData(from, to int, p radio.Payload) {
	if to != b.stack.ep.ID() {
		return // overheard a transfer between other nodes
	}
	d, ok := p.(BulkData)
	if !ok {
		return
	}
	key := recvKey{from: from, session: d.Session, seq: d.Seq}
	if b.seenRecv[key] {
		// Duplicate (our ACK was lost): re-ack without re-storing.
		b.tr.Emit(b.sched.Now(), evBulkDup, int32(b.stack.ep.ID()), int32(from), 0, int64(d.Session), int64(d.Seq))
		b.stack.SendUrgent(from, BulkAck{Session: d.Session, Seq: d.Seq, Accept: true})
		return
	}
	chunk := d.Chunk
	if d.Compressed {
		data, err := compress.Decode(chunk.Data)
		if err != nil {
			// Undecodable payload: refuse so the sender keeps the chunk.
			b.stack.SendUrgent(from, BulkAck{Session: d.Session, Seq: d.Seq, Accept: false})
			return
		}
		chunk = chunk.Clone()
		chunk.Data = data
	}
	acceptor := b.accept
	if d.Class == ClassRetrieval {
		acceptor = b.acceptRetrieval
	}
	accepted := acceptor != nil && acceptor(from, chunk)
	if accepted {
		b.seenRecv[key] = true
	}
	b.stack.SendUrgent(from, BulkAck{Session: d.Session, Seq: d.Seq, Accept: accepted})
}
