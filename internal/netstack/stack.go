// Package netstack implements the communication services of §III-A: a
// neighborhood broadcast module that piggybacks delay-tolerant payloads
// (time-sync beacons, TTL state) onto delay-sensitive control traffic
// (task management), and a reliable local bulk-transfer component used by
// the storage balancer to move recorded chunks between neighbors.
package netstack

import (
	"fmt"
	"time"

	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Handler consumes one payload delivered to this node. from is the
// sender; to is the frame's addressee (a node ID or radio.Broadcast), so
// modules can implement overhearing logic.
type Handler func(from, to int, p radio.Payload)

// Stack is one node's neighborhood broadcast service. It multiplexes
// module payloads onto radio frames, piggybacks queued delay-tolerant
// payloads onto outgoing traffic, and dispatches received payloads
// (primary and piggybacked alike) to per-kind handlers.
type Stack struct {
	ep    *radio.Endpoint
	sched *sim.Scheduler

	// MaxPiggyback caps extra payload bytes bundled per frame.
	MaxPiggyback int
	// FlushAfter bounds how long a delay-tolerant payload may wait for a
	// ride before being sent in its own frame.
	FlushAfter time.Duration

	// handlers is a dense dispatch table indexed by radio.KindID; a nil
	// entry means no module registered that kind on this node.
	handlers   []Handler
	pending    []radio.Payload
	flushTimer sim.Timer
	// rideBuf is the reusable piggyback buffer handed to the radio; the
	// radio copies it into frame-owned storage, so one buffer per stack
	// suffices for any number of in-flight frames.
	rideBuf []radio.Payload
	// heldUrgent queues urgent sends issued while the radio is off
	// (e.g. a module timer firing during a recording task); they are
	// transmitted when RadioRestored is called.
	heldUrgent []held
}

type held struct {
	to int
	p  radio.Payload
}

// NewStack wires a stack onto a radio endpoint, installing itself as the
// endpoint's frame handler.
func NewStack(ep *radio.Endpoint, sched *sim.Scheduler) *Stack {
	s := &Stack{
		ep:           ep,
		sched:        sched,
		MaxPiggyback: 64,
		FlushAfter:   2 * time.Second,
		handlers:     make([]Handler, radio.NumKinds()),
	}
	ep.SetHandler(radio.HandlerFunc(s.handleFrame))
	return s
}

// Endpoint returns the underlying radio endpoint.
func (s *Stack) Endpoint() *radio.Endpoint { return s.ep }

// Register installs the handler for a payload kind. Registering a kind
// twice panics: module wiring is static and a duplicate indicates a bug.
func (s *Stack) Register(kind radio.KindID, h Handler) {
	if kind < 0 || int(kind) >= radio.NumKinds() {
		panic(fmt.Sprintf("netstack: unregistered KindID %d", kind))
	}
	for int(kind) >= len(s.handlers) {
		s.handlers = append(s.handlers, nil)
	}
	if s.handlers[kind] != nil {
		panic(fmt.Sprintf("netstack: duplicate handler for kind %q", radio.KindName(kind)))
	}
	s.handlers[kind] = h
}

func (s *Stack) handleFrame(f *radio.Frame) {
	s.dispatch(f.From, f.To, f.Payload)
	for _, p := range f.Piggyback {
		// Piggybacked payloads are logically broadcast regardless of the
		// carrier frame's addressee.
		s.dispatch(f.From, radio.Broadcast, p)
	}
}

func (s *Stack) dispatch(from, to int, p radio.Payload) {
	if k := p.Kind(); int(k) < len(s.handlers) {
		if h := s.handlers[k]; h != nil {
			h(from, to, p)
		}
	}
}

// SendUrgent transmits p immediately (to a node ID or radio.Broadcast),
// bundling as many queued delay-tolerant payloads as fit. If the radio is
// off, the send is held and goes out at RadioRestored.
func (s *Stack) SendUrgent(to int, p radio.Payload) {
	if !s.ep.RadioOn() {
		s.heldUrgent = append(s.heldUrgent, held{to: to, p: p})
		return
	}
	ride := s.takePiggyback()
	s.ep.Send(to, p, ride...)
}

// SendDelayTolerant queues p to ride on the next outgoing frame, or to be
// flushed on its own after FlushAfter.
func (s *Stack) SendDelayTolerant(p radio.Payload) {
	s.pending = append(s.pending, p)
	if !s.flushTimer.Pending() {
		s.flushTimer = s.sched.AfterTimer(s.FlushAfter, "netstack.flush", s.Flush)
	}
}

// Flush transmits all queued delay-tolerant payloads now (no-op when the
// queue is empty or the radio is off — they will flush on restore).
func (s *Stack) Flush() {
	if len(s.pending) == 0 || !s.ep.RadioOn() {
		return
	}
	first := s.pending[0]
	s.pending = s.pending[1:]
	ride := s.takePiggyback()
	s.ep.Send(radio.Broadcast, first, ride...)
	if len(s.pending) > 0 {
		// More than fits in one frame: keep flushing.
		s.flushTimer = s.sched.AfterTimer(time.Millisecond, "netstack.flush", s.Flush)
	}
}

// maxPiggybackPayloads caps how many delay-tolerant payloads ride on one
// frame, independent of the byte budget.
const maxPiggybackPayloads = 4

// takePiggyback removes queued payloads up to the byte budget (at most
// maxPiggybackPayloads of them). The returned slice is the stack's
// reusable ride buffer: it is valid until the next takePiggyback call,
// which is safe because the radio copies piggyback payloads into
// frame-owned storage at Send.
func (s *Stack) takePiggyback() []radio.Payload {
	if len(s.pending) == 0 {
		return nil
	}
	ride := s.rideBuf[:0]
	budget := s.MaxPiggyback
	rest := s.pending[:0]
	for _, p := range s.pending {
		if p.Size() <= budget && len(ride) < maxPiggybackPayloads {
			ride = append(ride, p)
			budget -= p.Size()
		} else {
			rest = append(rest, p)
		}
	}
	s.pending = rest
	s.rideBuf = ride
	return ride
}

// PendingDelayTolerant returns the queue length (for tests and metrics).
func (s *Stack) PendingDelayTolerant() int { return len(s.pending) }

// DropHeld discards every queued payload — held urgent sends and the
// delay-tolerant ride queue. A reboot calls it: RAM does not survive a
// crash, so messages waiting in it are gone.
func (s *Stack) DropHeld() {
	s.heldUrgent = nil
	s.pending = s.pending[:0]
}

// RadioRestored releases held urgent sends and flushes the queue. The
// node layer calls it after turning the radio back on post-recording.
func (s *Stack) RadioRestored() {
	heldSends := s.heldUrgent
	s.heldUrgent = nil
	for _, h := range heldSends {
		s.SendUrgent(h.to, h.p)
	}
	s.Flush()
}
