package flash

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/sim"
)

func mkChunk(file FileID, seq uint32, n int) *Chunk {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(seq + uint32(i))
	}
	return &Chunk{
		File: file, Origin: 7, Seq: seq,
		Start: sim.At(time.Duration(seq) * time.Second),
		End:   sim.At(time.Duration(seq+1) * time.Second),
		Data:  data,
	}
}

func TestChunkMarshalRoundTrip(t *testing.T) {
	c := mkChunk(42, 3, 100)
	buf, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != BlockSize {
		t.Fatalf("marshalled size %d, want %d", len(buf), BlockSize)
	}
	got, err := UnmarshalChunk(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.File != c.File || got.Origin != c.Origin || got.Seq != c.Seq ||
		got.Start != c.Start || got.End != c.End {
		t.Errorf("metadata mismatch: %+v vs %+v", got, c)
	}
	if string(got.Data) != string(c.Data) {
		t.Error("payload mismatch")
	}
}

func TestChunkMarshalFullPayload(t *testing.T) {
	c := mkChunk(1, 1, PayloadSize)
	buf, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalChunk(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != PayloadSize {
		t.Errorf("payload length %d, want %d", len(got.Data), PayloadSize)
	}
}

func TestChunkMarshalOversizedFails(t *testing.T) {
	c := mkChunk(1, 1, PayloadSize+1)
	if _, err := c.Marshal(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("got %v, want ErrPayloadTooLarge", err)
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalChunk(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	buf := make([]byte, BlockSize)
	buf[28] = 0xFF // payload length 0xFF00 > PayloadSize
	buf[29] = 0x00
	if _, err := UnmarshalChunk(buf); err == nil {
		t.Error("corrupt length accepted")
	}
}

func TestChunkClone(t *testing.T) {
	c := mkChunk(1, 1, 8)
	cp := c.Clone()
	cp.Data[0] = 0xEE
	if c.Data[0] == 0xEE {
		t.Error("Clone shares payload")
	}
}

func TestStoreFIFO(t *testing.T) {
	s := NewStore(4)
	for i := uint32(0); i < 3; i++ {
		if err := s.Enqueue(mkChunk(1, i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || s.Free() != 1 {
		t.Fatalf("Len/Free = %d/%d", s.Len(), s.Free())
	}
	for i := uint32(0); i < 3; i++ {
		c, err := s.DequeueHead()
		if err != nil {
			t.Fatal(err)
		}
		if c.Seq != i {
			t.Errorf("dequeue order: got seq %d, want %d", c.Seq, i)
		}
	}
	if _, err := s.DequeueHead(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dequeue: %v", err)
	}
}

func TestStoreFullRejects(t *testing.T) {
	s := NewStore(2)
	if err := s.Enqueue(mkChunk(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(mkChunk(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(mkChunk(1, 2, 1)); !errors.Is(err, ErrFull) {
		t.Errorf("overfull enqueue: %v", err)
	}
	if s.Len() != 2 {
		t.Errorf("failed enqueue mutated store: Len=%d", s.Len())
	}
}

func TestStoreEnqueueOversizedRejected(t *testing.T) {
	s := NewStore(2)
	if err := s.Enqueue(mkChunk(1, 0, PayloadSize+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized enqueue: %v", err)
	}
	if s.Len() != 0 {
		t.Error("failed enqueue consumed a block")
	}
}

func TestStoreWrapAround(t *testing.T) {
	s := NewStore(3)
	seq := uint32(0)
	// Fill, drain one, refill — several laps around the ring.
	for lap := 0; lap < 5; lap++ {
		for s.Free() > 0 {
			if err := s.Enqueue(mkChunk(1, seq, 5)); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		c, err := s.DequeueHead()
		if err != nil {
			t.Fatal(err)
		}
		want := seq - 3
		if c.Seq != want {
			t.Fatalf("lap %d: head seq %d, want %d", lap, c.Seq, want)
		}
	}
}

func TestStoreWearLevelling(t *testing.T) {
	s := NewStore(8)
	for i := uint32(0); i < 100; i++ {
		if err := s.Enqueue(mkChunk(1, i, 4)); err != nil {
			t.Fatal(err)
		}
		if s.Free() == 0 {
			if _, err := s.DequeueHead(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if spread := s.WearSpread(); spread > 1 {
		t.Errorf("wear spread = %d, want <= 1", spread)
	}
	if s.TotalWrites() != 100 {
		t.Errorf("TotalWrites = %d, want 100", s.TotalWrites())
	}
}

func TestStoreChunksOrder(t *testing.T) {
	s := NewStore(4)
	// Wrap the ring so head != 0.
	for i := uint32(0); i < 4; i++ {
		_ = s.Enqueue(mkChunk(1, i, 2))
	}
	_, _ = s.DequeueHead()
	_, _ = s.DequeueHead()
	_ = s.Enqueue(mkChunk(1, 4, 2))
	got := s.Chunks()
	want := []uint32{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Chunks len %d, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Seq != want[i] {
			t.Errorf("Chunks[%d].Seq = %d, want %d", i, c.Seq, want[i])
		}
	}
}

func TestStoreBytesAccounting(t *testing.T) {
	s := NewStore(10)
	_ = s.Enqueue(mkChunk(1, 0, 1)) // even a 1-byte payload takes a block
	if s.BytesUsed() != BlockSize {
		t.Errorf("BytesUsed = %d, want %d", s.BytesUsed(), BlockSize)
	}
	if s.BytesFree() != 9*BlockSize {
		t.Errorf("BytesFree = %d, want %d", s.BytesFree(), 9*BlockSize)
	}
}

func TestStorePeekHead(t *testing.T) {
	s := NewStore(2)
	if _, err := s.PeekHead(); !errors.Is(err, ErrEmpty) {
		t.Errorf("peek empty: %v", err)
	}
	_ = s.Enqueue(mkChunk(1, 9, 2))
	c, err := s.PeekHead()
	if err != nil || c.Seq != 9 {
		t.Errorf("PeekHead = %v, %v", c, err)
	}
	if s.Len() != 1 {
		t.Error("PeekHead removed the chunk")
	}
}

func TestCrashRecoverAtCheckpoint(t *testing.T) {
	s := NewStore(16)
	s.CheckpointEvery = 4
	for i := uint32(0); i < 8; i++ { // exactly two checkpoint periods
		_ = s.Enqueue(mkChunk(1, i, 2))
	}
	s.Crash()
	if s.Len() != 0 {
		t.Fatal("crash did not clear volatile state")
	}
	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("recovered %d chunks, want 8", n)
	}
	got := s.Chunks()
	for i, c := range got {
		if c.Seq != uint32(i) {
			t.Errorf("recovered order broken at %d: seq %d", i, c.Seq)
		}
	}
}

func TestCrashLosesPostCheckpointWrites(t *testing.T) {
	s := NewStore(16)
	s.CheckpointEvery = 100 // only the initial (empty) checkpoint exists
	for i := uint32(0); i < 5; i++ {
		_ = s.Enqueue(mkChunk(1, i, 2))
	}
	s.Checkpoint() // explicit save at 5 chunks
	for i := uint32(5); i < 8; i++ {
		_ = s.Enqueue(mkChunk(1, i, 2))
	}
	s.Crash()
	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The three post-checkpoint chunks are outside the recovered window.
	if n != 5 {
		t.Errorf("recovered %d chunks, want 5", n)
	}
}

func TestRecoverCompactsDequeuedSlots(t *testing.T) {
	s := NewStore(8)
	s.CheckpointEvery = 1000
	for i := uint32(0); i < 4; i++ {
		_ = s.Enqueue(mkChunk(1, i, 2))
	}
	s.Checkpoint()
	// Dequeue two after the checkpoint: their slots are nil but the
	// checkpointed window still covers them.
	_, _ = s.DequeueHead()
	_, _ = s.DequeueHead()
	s.Crash()
	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("recovered %d chunks, want 2 surviving", n)
	}
	for _, c := range s.Chunks() {
		if c == nil {
			t.Fatal("nil chunk in recovered queue")
		}
	}
}

func TestSplitSamplesSegmentsAndTimestamps(t *testing.T) {
	total := PayloadSize*2 + 50
	samples := make([]byte, total)
	for i := range samples {
		samples[i] = byte(i)
	}
	start, end := sim.At(10*time.Second), sim.At(12*time.Second)
	chunks := SplitSamples(7, 3, 100, start, end, samples)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if chunks[0].Seq != 100 || chunks[2].Seq != 102 {
		t.Errorf("sequence numbers: %d..%d", chunks[0].Seq, chunks[2].Seq)
	}
	if chunks[0].Start != start {
		t.Errorf("first chunk starts at %v, want %v", chunks[0].Start, start)
	}
	if chunks[2].End != end {
		t.Errorf("last chunk ends at %v, want %v", chunks[2].End, end)
	}
	// Contiguity: each chunk starts where the previous ended.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Start != chunks[i-1].End {
			t.Errorf("gap between chunk %d and %d: %v vs %v",
				i-1, i, chunks[i-1].End, chunks[i].Start)
		}
	}
	// Payload reassembly matches the input.
	var joined []byte
	for _, c := range chunks {
		joined = append(joined, c.Data...)
	}
	if string(joined) != string(samples) {
		t.Error("reassembled payload differs from input")
	}
}

func TestSplitSamplesEmpty(t *testing.T) {
	if got := SplitSamples(1, 1, 0, 0, 0, nil); got != nil {
		t.Errorf("empty input produced %d chunks", len(got))
	}
}

func TestNewStoreValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-block store did not panic")
		}
	}()
	NewStore(0)
}

// Property: any sequence of enqueue/dequeue operations preserves FIFO
// order and exact occupancy accounting.
func TestQuickStoreFIFOInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewStore(8)
		var model []uint32
		seq := uint32(0)
		for _, enq := range ops {
			if enq {
				err := s.Enqueue(mkChunk(1, seq, 1))
				if len(model) == 8 {
					if !errors.Is(err, ErrFull) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model = append(model, seq)
				}
				seq++
			} else {
				c, err := s.DequeueHead()
				if len(model) == 0 {
					if !errors.Is(err, ErrEmpty) {
						return false
					}
				} else {
					if err != nil || c.Seq != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if s.Len() != len(model) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: marshal/unmarshal is the identity on valid chunks.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(file uint32, origin int32, seq uint32, start, end int64, data []byte) bool {
		if len(data) > PayloadSize {
			data = data[:PayloadSize]
		}
		c := &Chunk{
			File: FileID(file), Origin: origin, Seq: seq,
			Start: sim.Time(start), End: sim.Time(end),
			Data: data,
		}
		buf, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalChunk(buf)
		if err != nil {
			return false
		}
		if got.File != c.File || got.Origin != c.Origin || got.Seq != c.Seq ||
			got.Start != c.Start || got.End != c.End || len(got.Data) != len(data) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(33))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestChunkPoolRoundTrip(t *testing.T) {
	c := NewChunk()
	if len(c.Data) != 0 || cap(c.Data) < PayloadSize {
		t.Fatalf("NewChunk Data len=%d cap=%d, want 0/%d", len(c.Data), cap(c.Data), PayloadSize)
	}
	c.File, c.Origin, c.Seq, c.Start, c.End = 7, 3, 9, 100, 200
	c.Data = append(c.Data, 1, 2, 3)
	FreeChunk(c)
	// The pool may or may not hand the same chunk back, but any chunk it
	// returns must be fully reset.
	got := NewChunk()
	if got.File != 0 || got.Origin != 0 || got.Seq != 0 || got.Start != 0 || got.End != 0 || len(got.Data) != 0 {
		t.Errorf("pooled chunk not reset: %+v", got)
	}
	FreeChunk(got)
	FreeChunk(nil) // must be a no-op
	FreeChunks([]*Chunk{nil, NewChunk()})
}

func TestCloneIsPooledDeepCopy(t *testing.T) {
	orig := NewChunk()
	orig.File, orig.Origin, orig.Seq, orig.Start, orig.End = 1, 2, 3, 4, 5
	orig.Data = append(orig.Data, []byte{9, 8, 7}...)
	cp := orig.Clone()
	if cp == orig {
		t.Fatal("Clone returned the receiver")
	}
	if cp.File != 1 || cp.Origin != 2 || cp.Seq != 3 || cp.Start != 4 || cp.End != 5 {
		t.Errorf("metadata not copied: %+v", cp)
	}
	cp.Data[0] = 42
	if orig.Data[0] != 9 {
		t.Error("Clone aliases the receiver's Data")
	}
}

func TestSplitSamplesChunksAreRecyclable(t *testing.T) {
	samples := make([]byte, 3*PayloadSize+10)
	for i := range samples {
		samples[i] = byte(i)
	}
	chunks := SplitSamples(5, 1, 0, 0, sim.At(time.Second), samples)
	if len(chunks) != 4 {
		t.Fatalf("len(chunks) = %d, want 4", len(chunks))
	}
	for i, c := range chunks {
		if c.Seq != uint32(i) || c.File != 5 {
			t.Errorf("chunk %d: seq=%d file=%d", i, c.Seq, c.File)
		}
	}
	FreeChunks(chunks)
	// Split again after recycling: contents must be rebuilt from scratch.
	again := SplitSamples(5, 1, 0, 0, sim.At(time.Second), samples)
	off := 0
	for _, c := range again {
		for j, b := range c.Data {
			if b != samples[off+j] {
				t.Fatalf("recycled chunk data corrupt at %d", off+j)
			}
		}
		off += len(c.Data)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	c := &Chunk{
		File: 9, Origin: -3, Seq: 41,
		Start: sim.Time(5 * int64(time.Second)),
		End:   sim.Time(6 * int64(time.Second)),
		Data:  []byte("compact record payload"),
	}
	buf, err := c.AppendRecord(nil)
	if err != nil {
		t.Fatalf("AppendRecord: %v", err)
	}
	if len(buf) != c.RecordSize() {
		t.Fatalf("record is %d bytes, RecordSize says %d", len(buf), c.RecordSize())
	}
	if len(buf) >= BlockSize {
		t.Fatalf("compact record (%d bytes) not smaller than a padded block", len(buf))
	}
	got, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if got.File != c.File || got.Origin != c.Origin || got.Seq != c.Seq ||
		got.Start != c.Start || got.End != c.End || !bytes.Equal(got.Data, c.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestRecordRoundTripEmptyAndFull(t *testing.T) {
	for _, n := range []int{0, 1, PayloadSize} {
		c := &Chunk{File: 1, Origin: 2, Seq: 3, Data: bytes.Repeat([]byte{7}, n)}
		buf, err := c.AppendRecord(nil)
		if err != nil {
			t.Fatalf("payload %d: %v", n, err)
		}
		got, consumed, err := DecodeRecord(buf)
		if err != nil || consumed != MinRecordSize+n {
			t.Fatalf("payload %d: decode %d bytes, err %v", n, consumed, err)
		}
		if !bytes.Equal(got.Data, c.Data) {
			t.Fatalf("payload %d: data mismatch", n)
		}
	}
}

func TestRecordAppendsInPlace(t *testing.T) {
	// Records concatenate: two appends into one buffer decode in order.
	a := &Chunk{File: 1, Seq: 1, Data: []byte("aa")}
	b := &Chunk{File: 2, Seq: 2, Data: []byte("bbbb")}
	buf, _ := a.AppendRecord(nil)
	buf, _ = b.AppendRecord(buf)
	gotA, n, err := DecodeRecord(buf)
	if err != nil || gotA.File != 1 {
		t.Fatalf("first record: %v %v", gotA, err)
	}
	gotB, _, err := DecodeRecord(buf[n:])
	if err != nil || gotB.File != 2 || !bytes.Equal(gotB.Data, []byte("bbbb")) {
		t.Fatalf("second record: %v %v", gotB, err)
	}
}

func TestRecordRejectsBadInput(t *testing.T) {
	c := &Chunk{File: 1, Data: make([]byte, PayloadSize+1)}
	if _, err := c.AppendRecord(nil); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize append err = %v", err)
	}
	good, _ := (&Chunk{File: 1, Data: []byte("xyz")}).AppendRecord(nil)
	if _, _, err := DecodeRecord(good[:10]); err == nil {
		t.Fatalf("short header decoded")
	}
	if _, _, err := DecodeRecord(good[:len(good)-1]); err == nil {
		t.Fatalf("truncated payload decoded")
	}
	bad := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(bad[28:], PayloadSize+1)
	if _, _, err := DecodeRecord(bad); err == nil {
		t.Fatalf("oversize declared length decoded")
	}
}
