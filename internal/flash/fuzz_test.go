package flash

import "testing"

// FuzzUnmarshalChunk feeds arbitrary block images to the decoder: it must
// never panic, and accepted blocks must re-marshal losslessly.
func FuzzUnmarshalChunk(f *testing.F) {
	valid, _ := (&Chunk{File: 3, Origin: 2, Seq: 1, Start: 10, End: 20, Data: []byte{1, 2, 3}}).Marshal()
	f.Add(valid)
	f.Add(make([]byte, BlockSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, buf []byte) {
		c, err := UnmarshalChunk(buf)
		if err != nil {
			return
		}
		out, err := c.Marshal()
		if err != nil {
			t.Fatalf("accepted chunk fails to marshal: %v", err)
		}
		back, err := UnmarshalChunk(out)
		if err != nil {
			t.Fatalf("remarshalled block rejected: %v", err)
		}
		if back.File != c.File || back.Seq != c.Seq || len(back.Data) != len(c.Data) {
			t.Fatal("round trip mismatch")
		}
	})
}
