package flash

import (
	"errors"
	"testing"
)

// TestWriteFaultLeavesStoreUnchanged: a firing write fault returns ErrIO
// and the store looks exactly as it did before the attempt — no wear, no
// occupancy, no write count.
func TestWriteFaultLeavesStoreUnchanged(t *testing.T) {
	s := NewStore(4)
	if err := s.Enqueue(mkChunk(1, 0, 8)); err != nil {
		t.Fatal(err)
	}
	wantLen, wantBytes, wantWrites := s.Len(), s.BytesUsed(), s.TotalWrites()

	s.SetWriteFault(func() bool { return true })
	if err := s.Enqueue(mkChunk(1, 1, 8)); !errors.Is(err, ErrIO) {
		t.Fatalf("Enqueue under write fault = %v, want ErrIO", err)
	}
	if s.Len() != wantLen || s.BytesUsed() != wantBytes || s.TotalWrites() != wantWrites {
		t.Fatalf("store mutated by failed write: len %d→%d bytes %d→%d writes %d→%d",
			wantLen, s.Len(), wantBytes, s.BytesUsed(), wantWrites, s.TotalWrites())
	}

	// Clearing the hook restores normal service on the same store.
	s.SetWriteFault(nil)
	if err := s.Enqueue(mkChunk(1, 1, 8)); err != nil {
		t.Fatalf("Enqueue after clearing fault: %v", err)
	}
	if s.Len() != wantLen+1 {
		t.Fatalf("Len = %d after recovery write, want %d", s.Len(), wantLen+1)
	}
}

// TestReadFaultLeavesStoreUnchanged: a firing read fault returns ErrIO
// without consuming the head chunk; clearing the hook hands the same
// chunk back.
func TestReadFaultLeavesStoreUnchanged(t *testing.T) {
	s := NewStore(4)
	want := mkChunk(2, 5, 8)
	if err := s.Enqueue(want); err != nil {
		t.Fatal(err)
	}

	s.SetReadFault(func() bool { return true })
	if _, err := s.DequeueHead(); !errors.Is(err, ErrIO) {
		t.Fatalf("DequeueHead under read fault = %v, want ErrIO", err)
	}
	if s.Len() != 1 {
		t.Fatalf("failed read consumed the head: Len = %d, want 1", s.Len())
	}

	s.SetReadFault(nil)
	got, err := s.DequeueHead()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered read returned %+v, want the original head", got)
	}
}

// TestFaultOrderingAfterCapacityChecks: capacity conditions are reported
// before fault hooks fire, so ErrFull/ErrEmpty (retryable-by-migration
// states) are never masked as ErrIO — and the hooks never even run.
func TestFaultOrderingAfterCapacityChecks(t *testing.T) {
	s := NewStore(1)
	fired := 0
	s.SetWriteFault(func() bool { fired++; return true })
	s.SetReadFault(func() bool { fired++; return true })

	// Empty store: read reports ErrEmpty, not ErrIO.
	if _, err := s.DequeueHead(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("DequeueHead on empty store = %v, want ErrEmpty", err)
	}

	// Fill it past the fault (hook off for the setup write).
	s.SetWriteFault(nil)
	if err := s.Enqueue(mkChunk(1, 0, 8)); err != nil {
		t.Fatal(err)
	}
	s.SetWriteFault(func() bool { fired++; return true })

	// Full store: write reports ErrFull, not ErrIO.
	if err := s.Enqueue(mkChunk(1, 1, 8)); !errors.Is(err, ErrFull) {
		t.Fatalf("Enqueue on full store = %v, want ErrFull", err)
	}
	if fired != 0 {
		t.Fatalf("fault hooks ran %d time(s) on capacity errors, want 0", fired)
	}
}

// TestIntermittentWriteFaultDropsOnlyFaultedWrites: a deterministic
// every-other-write fault loses exactly the faulted chunks and the
// survivors keep arrival order — the failure mode the chaos "flash"
// scenario kind relies on.
func TestIntermittentWriteFaultDropsOnlyFaultedWrites(t *testing.T) {
	s := NewStore(8)
	n := 0
	s.SetWriteFault(func() bool { n++; return n%2 == 1 })

	var kept []uint32
	for seq := uint32(0); seq < 6; seq++ {
		err := s.Enqueue(mkChunk(3, seq, 8))
		switch {
		case err == nil:
			kept = append(kept, seq)
		case errors.Is(err, ErrIO):
		default:
			t.Fatalf("Enqueue(seq=%d): %v", seq, err)
		}
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d chunks, want 3 (every other write faulted)", len(kept))
	}
	if spread := s.WearSpread(); spread > 1 {
		t.Fatalf("wear spread %d after faulted writes, want <= 1", spread)
	}
	for i, seq := range kept {
		c, err := s.DequeueHead()
		if err != nil {
			t.Fatal(err)
		}
		if c.Seq != seq {
			t.Fatalf("dequeue %d: Seq = %d, want %d (order broken)", i, c.Seq, seq)
		}
	}
}
