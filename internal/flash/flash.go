// Package flash models the mote's local data organization (§III-B.3):
// flash is divided into fixed 256-byte blocks organized as a circular
// queue of recorded chunks. New chunks are enqueued at the tail; chunks
// migrated to neighbors for storage balancing are dequeued from the head,
// so every block receives almost the same number of writes (wear
// levelling, differing by at most one). The queue's head and tail pointers
// are periodically checkpointed to an in-chip EEPROM so that data survives
// node failure and can be retrieved after physical collection.
package flash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"enviromic/internal/sim"
)

// Block geometry, matching the MicaZ implementation in the paper.
const (
	// BlockSize is the fixed physical block length in bytes.
	BlockSize = 256
	// headerSize is the metadata prefix inside each block: file ID (4),
	// origin (4), sequence (4), start (8), end (8), payload length (2).
	headerSize = 30
	// PayloadSize is the audio payload capacity of one block.
	PayloadSize = BlockSize - headerSize
	// DefaultBlocks is the 0.5 MB MicaZ flash expressed in blocks.
	DefaultBlocks = 512 * 1024 / BlockSize
)

// Sentinel errors.
var (
	// ErrFull is returned by Enqueue when no free block remains.
	ErrFull = errors.New("flash: store full")
	// ErrEmpty is returned by DequeueHead on an empty store.
	ErrEmpty = errors.New("flash: store empty")
	// ErrPayloadTooLarge is returned when a chunk payload exceeds the
	// block payload capacity.
	ErrPayloadTooLarge = errors.New("flash: payload exceeds block capacity")
	// ErrIO is returned when an injected fault (SetWriteFault /
	// SetReadFault) fails the operation; the store is unchanged.
	ErrIO = errors.New("flash: injected I/O error")
)

// FileID identifies one continuous acoustic event's distributed file. IDs
// are assigned by group leaders; ID 0 is reserved for "no file".
type FileID uint32

// Chunk is one recorded block of audio: the unit of storage, migration,
// and retrieval. Each chunk carries the metadata the paper requires for
// post-hoc reassembly: timestamps, the recording node, and the event
// (file) ID (§III-B.3).
type Chunk struct {
	File   FileID
	Origin int32 // recording node ID (maps to a location after collection)
	Seq    uint32
	Start  sim.Time
	End    sim.Time
	Data   []byte
}

// Clone returns a deep copy. Chunks cross node boundaries during
// migration, and the radio model must not alias payloads between motes.
// The copy is drawn from the chunk pool; callers that know the clone's
// lifetime may return it with FreeChunk.
func (c *Chunk) Clone() *Chunk {
	cp := NewChunk()
	cp.File = c.File
	cp.Origin = c.Origin
	cp.Seq = c.Seq
	cp.Start = c.Start
	cp.End = c.End
	cp.Data = append(cp.Data[:0], c.Data...)
	return cp
}

// Marshal encodes the chunk into a fixed 256-byte block image.
func (c *Chunk) Marshal() ([]byte, error) {
	if len(c.Data) > PayloadSize {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(c.Data), PayloadSize)
	}
	buf := make([]byte, BlockSize)
	binary.BigEndian.PutUint32(buf[0:], uint32(c.File))
	binary.BigEndian.PutUint32(buf[4:], uint32(c.Origin))
	binary.BigEndian.PutUint32(buf[8:], c.Seq)
	binary.BigEndian.PutUint64(buf[12:], uint64(c.Start))
	binary.BigEndian.PutUint64(buf[20:], uint64(c.End))
	binary.BigEndian.PutUint16(buf[28:], uint16(len(c.Data)))
	copy(buf[headerSize:], c.Data)
	return buf, nil
}

// UnmarshalChunk decodes a 256-byte block image produced by Marshal.
func UnmarshalChunk(buf []byte) (*Chunk, error) {
	if len(buf) != BlockSize {
		return nil, fmt.Errorf("flash: block image is %d bytes, want %d", len(buf), BlockSize)
	}
	n := binary.BigEndian.Uint16(buf[28:])
	if int(n) > PayloadSize {
		return nil, fmt.Errorf("flash: corrupt block: payload length %d", n)
	}
	c := NewChunk()
	c.File = FileID(binary.BigEndian.Uint32(buf[0:]))
	c.Origin = int32(binary.BigEndian.Uint32(buf[4:]))
	c.Seq = binary.BigEndian.Uint32(buf[8:])
	c.Start = sim.Time(binary.BigEndian.Uint64(buf[12:]))
	c.End = sim.Time(binary.BigEndian.Uint64(buf[20:]))
	c.Data = append(c.Data[:0], buf[headerSize:headerSize+int(n)]...)
	return c, nil
}

// RecordSize returns the compact wire/disk size of the chunk: the 30-byte
// metadata header plus the actual payload, with none of the block padding
// Marshal adds. The basestation archive stores chunks in this form.
func (c *Chunk) RecordSize() int { return headerSize + len(c.Data) }

// MinRecordSize is the smallest valid compact record (empty payload).
const MinRecordSize = headerSize

// MaxRecordSize is the largest valid compact record (full payload).
const MaxRecordSize = headerSize + PayloadSize

// AppendRecord appends the chunk's compact encoding — the Marshal header
// layout followed by exactly len(Data) payload bytes, no padding — to dst
// and returns the extended slice. It is the archive's segment-log codec;
// DecodeRecord reverses it.
func (c *Chunk) AppendRecord(dst []byte) ([]byte, error) {
	if len(c.Data) > PayloadSize {
		return dst, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(c.Data), PayloadSize)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(c.File))
	binary.BigEndian.PutUint32(hdr[4:], uint32(c.Origin))
	binary.BigEndian.PutUint32(hdr[8:], c.Seq)
	binary.BigEndian.PutUint64(hdr[12:], uint64(c.Start))
	binary.BigEndian.PutUint64(hdr[20:], uint64(c.End))
	binary.BigEndian.PutUint16(hdr[28:], uint16(len(c.Data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, c.Data...)
	return dst, nil
}

// DecodeRecord decodes one compact record from the front of buf, returning
// the chunk and the number of bytes consumed. The chunk is drawn from the
// chunk pool. A buffer that is too short for the declared payload is an
// error (a truncated record), as is a payload length over PayloadSize.
func DecodeRecord(buf []byte) (*Chunk, int, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("flash: short record: %d bytes", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[28:]))
	if n > PayloadSize {
		return nil, 0, fmt.Errorf("flash: corrupt record: payload length %d", n)
	}
	if len(buf) < headerSize+n {
		return nil, 0, fmt.Errorf("flash: truncated record: %d of %d bytes", len(buf), headerSize+n)
	}
	c := NewChunk()
	c.File = FileID(binary.BigEndian.Uint32(buf[0:]))
	c.Origin = int32(binary.BigEndian.Uint32(buf[4:]))
	c.Seq = binary.BigEndian.Uint32(buf[8:])
	c.Start = sim.Time(binary.BigEndian.Uint64(buf[12:]))
	c.End = sim.Time(binary.BigEndian.Uint64(buf[20:]))
	c.Data = append(c.Data[:0], buf[headerSize:headerSize+n]...)
	return c, headerSize + n, nil
}

// Store is the circular block queue. The zero value is unusable; use
// NewStore. Store is not safe for concurrent use (the simulation is
// single-threaded).
type Store struct {
	// blocks is the physical flash array: one chunk slot per block.
	blocks []*Chunk
	// head is the physical index of the oldest chunk; tail the next
	// write position. count disambiguates full from empty.
	head, tail, count int
	// wear counts writes per physical block.
	wear []uint64
	// CheckpointEvery saves head/tail to EEPROM after this many writes
	// or dequeues; 1 checkpoints on every mutation.
	CheckpointEvery int
	mutsSinceCkpt   int
	eeprom          checkpoint
	totalWrites     uint64

	// writeFault/readFault, when non-nil, are consulted before each
	// Enqueue/DequeueHead; returning true fails the operation with ErrIO
	// (chaos flash-error injection). Nil hooks cost one branch.
	writeFault func() bool
	readFault  func() bool
}

// checkpoint is the EEPROM image: queue pointers only (the chunk data
// itself lives in flash and survives a crash).
type checkpoint struct {
	head, tail, count int
	valid             bool
}

// NewStore returns a store with the given number of 256-byte blocks.
func NewStore(numBlocks int) *Store {
	if numBlocks <= 0 {
		panic("flash: store needs at least one block")
	}
	s := &Store{
		blocks:          make([]*Chunk, numBlocks),
		wear:            make([]uint64, numBlocks),
		CheckpointEvery: 16,
	}
	s.saveCheckpoint()
	return s
}

// Cap returns capacity in blocks.
func (s *Store) Cap() int { return len(s.blocks) }

// Len returns the number of stored chunks.
func (s *Store) Len() int { return s.count }

// Free returns the number of free blocks.
func (s *Store) Free() int { return len(s.blocks) - s.count }

// BytesUsed returns occupied bytes at block granularity (what the TTL
// metric consumes).
func (s *Store) BytesUsed() int { return s.count * BlockSize }

// BytesFree returns free bytes at block granularity.
func (s *Store) BytesFree() int { return s.Free() * BlockSize }

// TotalWrites returns the number of block writes ever performed.
func (s *Store) TotalWrites() uint64 { return s.totalWrites }

// SetWriteFault installs (or, with nil, removes) a hook consulted before
// every Enqueue; returning true fails the write with ErrIO. The hook owns
// its randomness — the store never draws from the simulation RNG.
func (s *Store) SetWriteFault(f func() bool) { s.writeFault = f }

// SetReadFault installs (or, with nil, removes) the DequeueHead
// counterpart of SetWriteFault.
func (s *Store) SetReadFault(f func() bool) { s.readFault = f }

// Enqueue appends a chunk at the tail. It returns ErrFull when flash is
// saturated, ErrPayloadTooLarge for oversized payloads, and ErrIO when an
// injected write fault fires; the store is unchanged in all three cases.
func (s *Store) Enqueue(c *Chunk) error {
	if len(c.Data) > PayloadSize {
		return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(c.Data), PayloadSize)
	}
	if s.count == len(s.blocks) {
		return ErrFull
	}
	if s.writeFault != nil && s.writeFault() {
		return ErrIO
	}
	s.blocks[s.tail] = c
	s.wear[s.tail]++
	s.totalWrites++
	s.tail = (s.tail + 1) % len(s.blocks)
	s.count++
	s.mutated()
	return nil
}

// DequeueHead removes and returns the oldest chunk (the migration source
// position, so all blocks wear evenly).
func (s *Store) DequeueHead() (*Chunk, error) {
	if s.count == 0 {
		return nil, ErrEmpty
	}
	if s.readFault != nil && s.readFault() {
		return nil, ErrIO
	}
	c := s.blocks[s.head]
	s.blocks[s.head] = nil
	s.head = (s.head + 1) % len(s.blocks)
	s.count--
	s.mutated()
	return c, nil
}

// PeekHead returns the oldest chunk without removing it.
func (s *Store) PeekHead() (*Chunk, error) {
	if s.count == 0 {
		return nil, ErrEmpty
	}
	return s.blocks[s.head], nil
}

// Chunks returns the stored chunks in queue order (oldest first). The
// returned slice is freshly allocated; the chunks themselves are shared.
func (s *Store) Chunks() []*Chunk {
	return s.AppendChunks(make([]*Chunk, 0, s.count))
}

// AppendChunks appends the store's contents, head first, to dst and
// returns the extended slice. Callers on hot sampling paths pass a
// reused scratch slice (dst[:0]) to avoid the per-call allocation of
// Chunks.
func (s *Store) AppendChunks(dst []*Chunk) []*Chunk {
	for i := 0; i < s.count; i++ {
		dst = append(dst, s.blocks[(s.head+i)%len(s.blocks)])
	}
	return dst
}

// WearSpread returns max−min of per-block write counts. The circular
// layout guarantees it never exceeds 1 plus the spread introduced by the
// initial empty state.
func (s *Store) WearSpread() uint64 {
	if len(s.wear) == 0 {
		return 0
	}
	min, max := s.wear[0], s.wear[0]
	for _, w := range s.wear[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return max - min
}

func (s *Store) mutated() {
	s.mutsSinceCkpt++
	if s.mutsSinceCkpt >= s.CheckpointEvery {
		s.saveCheckpoint()
	}
}

// saveCheckpoint writes the queue pointers to the EEPROM image.
func (s *Store) saveCheckpoint() {
	s.eeprom = checkpoint{head: s.head, tail: s.tail, count: s.count, valid: true}
	s.mutsSinceCkpt = 0
}

// Checkpoint forces an immediate EEPROM save (used at controlled
// shutdown).
func (s *Store) Checkpoint() { s.saveCheckpoint() }

// Crash simulates abrupt power loss: the volatile head/tail/count are
// discarded and must be restored from the last EEPROM checkpoint. The
// flash array itself (the chunks) survives. Recover returns the number of
// chunks recovered; chunks enqueued after the last checkpoint may be lost
// (their blocks are physically present but outside the recovered window),
// matching the paper's "we can still correctly retrieve its locally stored
// data after the node is collected" guarantee.
func (s *Store) Crash() {
	s.head, s.tail, s.count = 0, 0, 0
}

// Recover restores the queue pointers from EEPROM after Crash.
func (s *Store) Recover() (int, error) {
	if !s.eeprom.valid {
		return 0, errors.New("flash: no valid EEPROM checkpoint")
	}
	s.head, s.tail, s.count = s.eeprom.head, s.eeprom.tail, s.eeprom.count
	// Drop slots that the checkpointed window claims but that were
	// dequeued after the checkpoint (nil entries): compact the window to
	// the chunks that really exist.
	live := 0
	for i := 0; i < s.count; i++ {
		if s.blocks[(s.head+i)%len(s.blocks)] != nil {
			live++
		}
	}
	if live != s.count {
		// Rebuild a dense queue of surviving chunks.
		var kept []*Chunk
		for i := 0; i < s.count; i++ {
			if c := s.blocks[(s.head+i)%len(s.blocks)]; c != nil {
				kept = append(kept, c)
			}
		}
		for i := range s.blocks {
			s.blocks[i] = nil
		}
		s.head, s.tail, s.count = 0, 0, 0
		for _, c := range kept {
			s.blocks[s.tail] = c
			s.tail = (s.tail + 1) % len(s.blocks)
			s.count++
		}
	}
	s.saveCheckpoint()
	return s.count, nil
}

// Remove deletes every stored chunk for which match returns true and
// returns the removed chunks in queue order (callers typically recycle
// them). Survivors are compacted into a dense queue ENDING at the
// current tail, so tail keeps advancing monotonically mod N across
// removals and the circular log's wear-leveling guarantee (spread <= 1)
// survives; removal only rewrites the RAM block map and the EEPROM
// checkpoint, never the flash blocks, so no wear is charged. The
// dispersal mode uses it to drop a fragment's originals once a neighbor
// has acknowledged the whole fragment.
func (s *Store) Remove(match func(*Chunk) bool) []*Chunk {
	if s.count == 0 {
		return nil
	}
	var removed, kept []*Chunk
	for i := 0; i < s.count; i++ {
		c := s.blocks[(s.head+i)%len(s.blocks)]
		if c != nil && match(c) {
			removed = append(removed, c)
		} else if c != nil {
			kept = append(kept, c)
		}
	}
	if len(removed) == 0 {
		return nil
	}
	for i := range s.blocks {
		s.blocks[i] = nil
	}
	n := len(s.blocks)
	s.count = len(kept)
	s.head = ((s.tail-s.count)%n + n) % n
	pos := s.head
	for _, c := range kept {
		s.blocks[pos] = c
		pos = (pos + 1) % n
	}
	s.saveCheckpoint()
	return removed
}

// SplitSamples segments a recorded sample stream into chunk payloads of at
// most PayloadSize bytes, assigning sequence numbers from firstSeq and
// proportional timestamp ranges across [start, end). It is the bridge
// between the sampler and the store.
func SplitSamples(file FileID, origin int32, firstSeq uint32, start, end sim.Time, samples []byte) []*Chunk {
	if len(samples) == 0 {
		return nil
	}
	if end < start {
		panic("flash: SplitSamples with end before start")
	}
	total := len(samples)
	span := end.Sub(start)
	var chunks []*Chunk
	for off := 0; off < total; off += PayloadSize {
		hi := off + PayloadSize
		if hi > total {
			hi = total
		}
		cs := start.Add(time.Duration(int64(span) * int64(off) / int64(total)))
		ce := start.Add(time.Duration(int64(span) * int64(hi) / int64(total)))
		c := NewChunk()
		c.File = file
		c.Origin = origin
		c.Seq = firstSeq + uint32(len(chunks))
		c.Start = cs
		c.End = ce
		c.Data = append(c.Data[:0], samples[off:hi]...)
		chunks = append(chunks, c)
	}
	return chunks
}
