package flash

import "sync"

// chunkPool recycles Chunk structs together with their Data backing
// arrays. Chunks are the highest-churn heap objects in a run (every
// recording splits into chunks, every migration and retrieval clones
// them for the wire), and almost all of them carry exactly PayloadSize
// bytes, so pooling the pair removes two allocations per chunk on the
// hot paths. sync.Pool keeps the simulation's parallel experiment
// harness race-free without a lock on the single-run path.
var chunkPool = sync.Pool{
	New: func() any {
		return &Chunk{Data: make([]byte, 0, PayloadSize)}
	},
}

// NewChunk returns a zeroed chunk whose Data slice is empty with
// capacity PayloadSize. Callers fill the metadata fields and append
// payload bytes into Data.
func NewChunk() *Chunk {
	return chunkPool.Get().(*Chunk)
}

// FreeChunk returns c to the chunk pool. Ownership rules: only free a
// chunk that no store, session, or in-flight frame can still reference —
// see DESIGN.md §10 for the sanctioned free points. Freeing nil is a
// no-op. The chunk's metadata is cleared and its Data length reset (the
// backing array is retained for reuse).
func FreeChunk(c *Chunk) {
	if c == nil {
		return
	}
	c.File = 0
	c.Origin = 0
	c.Seq = 0
	c.Start = 0
	c.End = 0
	c.Data = c.Data[:0]
	chunkPool.Put(c)
}

// FreeChunks frees every chunk in cs. The slice itself stays with the
// caller.
func FreeChunks(cs []*Chunk) {
	for _, c := range cs {
		FreeChunk(c)
	}
}
