// Package wav writes minimal RIFF/WAVE files (8-bit unsigned mono PCM),
// enough for the examples to export stitched EnviroMic recordings for
// listening — the paper published its indoor voice clips the same way.
package wav

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Write emits samples as an 8-bit unsigned mono PCM WAV at the given
// sample rate.
func Write(w io.Writer, samples []byte, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("wav: invalid sample rate %d", sampleRate)
	}
	if len(samples) == 0 {
		return errors.New("wav: no samples")
	}
	dataLen := uint32(len(samples))
	var hdr [44]byte
	copy(hdr[0:], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:], 36+dataLen)
	copy(hdr[8:], "WAVE")
	copy(hdr[12:], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:], 1)  // PCM
	binary.LittleEndian.PutUint16(hdr[22:], 1)  // mono
	binary.LittleEndian.PutUint32(hdr[24:], uint32(sampleRate))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(sampleRate)) // byte rate (8-bit mono)
	binary.LittleEndian.PutUint16(hdr[32:], 1)                  // block align
	binary.LittleEndian.PutUint16(hdr[34:], 8)                  // bits per sample
	copy(hdr[36:], "data")
	binary.LittleEndian.PutUint32(hdr[40:], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wav: writing header: %w", err)
	}
	if _, err := w.Write(samples); err != nil {
		return fmt.Errorf("wav: writing samples: %w", err)
	}
	return nil
}

// Read parses a WAV produced by Write (8-bit unsigned mono PCM only),
// returning the samples and sample rate. It exists mainly so tests can
// round-trip.
func Read(r io.Reader) (samples []byte, sampleRate int, err error) {
	var hdr [44]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("wav: reading header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" || string(hdr[12:16]) != "fmt " {
		return nil, 0, errors.New("wav: not a RIFF/WAVE file")
	}
	if binary.LittleEndian.Uint16(hdr[20:]) != 1 {
		return nil, 0, errors.New("wav: not PCM")
	}
	if binary.LittleEndian.Uint16(hdr[22:]) != 1 || binary.LittleEndian.Uint16(hdr[34:]) != 8 {
		return nil, 0, errors.New("wav: not 8-bit mono")
	}
	rate := int(binary.LittleEndian.Uint32(hdr[24:]))
	n := binary.LittleEndian.Uint32(hdr[40:])
	samples = make([]byte, n)
	if _, err := io.ReadFull(r, samples); err != nil {
		return nil, 0, fmt.Errorf("wav: reading samples: %w", err)
	}
	return samples, rate, nil
}
