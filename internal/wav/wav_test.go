package wav

import (
	"bytes"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	samples := make([]byte, 1000)
	for i := range samples {
		samples[i] = byte(i % 256)
	}
	var buf bytes.Buffer
	if err := Write(&buf, samples, 2730); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44+len(samples) {
		t.Errorf("file size %d, want %d", buf.Len(), 44+len(samples))
	}
	got, rate, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 2730 {
		t.Errorf("rate = %d", rate)
	}
	if !bytes.Equal(got, samples) {
		t.Error("samples mismatch after round trip")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, 2730); err == nil {
		t.Error("empty samples accepted")
	}
	if err := Write(&buf, []byte{1}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("not a wav file at all............................"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []byte{128, 128}, 8000); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[0:4]) != "RIFF" || string(b[8:12]) != "WAVE" || string(b[36:40]) != "data" {
		t.Error("header markers wrong")
	}
}
