package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// one HELP/TYPE header, series in registration order. Safe to call
// concurrently with metric updates — counters and histogram buckets are
// read atomically, so a scrape mid-update sees a slightly torn but
// monotonic view, which is the normal Prometheus contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		// Copy the entry slice so rendering (which calls user GaugeFuncs)
		// runs outside the registry lock: a GaugeFunc that registers a
		// metric must not deadlock.
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, typ: f.typ,
			entries: append([]entry(nil), f.entries...)}
		fams = append(fams, cp)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, e := range f.entries {
			e.m.write(&b, renderSeries(e.name, e.labels))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as text/plain for a Prometheus scraper.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// renderSeries renders `name` or `name{k="v",...}`.
func renderSeries(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(escapeLabel(l.Value)))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// strconv.Quote handles \ and "; strip raw newlines the format forbids.
	return strings.ReplaceAll(s, "\n", " ")
}

// writeFloat appends a float in exposition form: integers render without
// a decimal point, everything else via the shortest round-trip form.
func writeFloat(b *strings.Builder, v float64) {
	b.WriteString(formatFloat(v))
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line — the client-side half used by
// the load harness to cross-check server-side histograms and by the
// format tests to round-trip what WritePrometheus emits.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseText parses Prometheus text exposition lines (comments skipped)
// into samples. It rejects lines that do not scan, which is what the
// smoke script and the load harness rely on to call an exposition valid.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := labelBlockEnd(rest)
		if close < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; we only emit value-only lines but
	// accept a trailing timestamp for generality.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing the label block that
// opens at rest[0], skipping any '}' inside a quoted label value (route
// patterns like endpoint="/files/{id}" carry literal braces). -1 if the
// block never closes.
func labelBlockEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		if inQuote {
			if c == '\\' {
				i++
				continue
			}
			if c == '"' {
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '}':
			return i
		}
	}
	return -1
}

func parseLabels(inner string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(inner[:eq])
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		// Walk the quoted value respecting escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value")
		}
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value %s", rest[:i+1])
		}
		labels[key] = val
		inner = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		inner = strings.TrimSpace(inner)
	}
	return labels, nil
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// HistogramQuantile estimates quantile q (in [0,1]) from parsed _bucket
// samples of one histogram family — cumulative counts keyed by the "le"
// label, in any order. It returns the upper bound of the bucket holding
// the quantile (linearly interpolated inside the bucket, the same
// estimate Prometheus's histogram_quantile gives), and false when the
// histogram is empty. Samples from several series (different endpoints)
// may be mixed; their buckets are merged, so the answer is the quantile
// of the union.
func HistogramQuantile(q float64, buckets []Sample) (float64, bool) {
	merged := make(map[float64]float64)
	for _, s := range buckets {
		le := s.Label("le")
		if le == "" {
			continue
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		merged[bound] += s.Value
	}
	if len(merged) == 0 {
		return 0, false
	}
	bounds := make([]float64, 0, len(merged))
	for b := range merged {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	total := merged[bounds[len(bounds)-1]]
	if total == 0 {
		return 0, false
	}
	rank := q * total
	var prevBound, prevCum float64
	for i, b := range bounds {
		cum := merged[b]
		if cum >= rank {
			if i == len(bounds)-1 {
				// The quantile lives in the +Inf bucket: the best bound we
				// have is the last finite one.
				if len(bounds) >= 2 {
					return bounds[len(bounds)-2], true
				}
				return 0, true
			}
			if cum == prevCum {
				return b, true
			}
			if i == 0 {
				prevBound = 0
			}
			return prevBound + (b-prevBound)*(rank-prevCum)/(cum-prevCum), true
		}
		prevBound, prevCum = b, cum
	}
	return bounds[len(bounds)-1], true
}
