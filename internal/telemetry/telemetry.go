// Package telemetry is the runtime metrics layer: a registry of named
// counters, gauges, and fixed-boundary histograms exposed in the
// Prometheus text format (expose.go) and fed by the PDES core, the
// radio, the archive pipeline, and the HTTP middleware (http.go).
//
// Two disciplines govern the design, both inherited from the tracer in
// internal/obs:
//
//   - Zero cost when disabled. Every metric method is defined on a
//     possibly-nil receiver and returns immediately when the receiver is
//     nil — a single branch, zero allocations (guarded by
//     BenchmarkTelemetryDisabled at the repo root). A nil *Registry
//     hands out nil metrics, so "telemetry off" is just "never build a
//     registry": instrumented modules hold nil pointers and pay one
//     predictable branch per site.
//
//   - Pure observation. Metrics draw no randomness, schedule no
//     simulation events, and are only ever written from goroutines that
//     already exist — so a run with telemetry enabled is byte-identical
//     to one without (regression-tested in internal/core).
//
// Counters are sharded: a counter created with lanes > 1 keeps one
// cache-line-padded atomic per lane so writers that already own a shard
// identity (radio endpoints, PDES shard workers) never contend; lanes
// are summed only at scrape time. Histograms have fixed boundaries set
// at registration (ExpBuckets builds log-scale ladders), so Observe is
// a linear scan over a handful of floats plus one atomic add.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric series. Series with
// the same name and different labels belong to one family and share a
// single HELP/TYPE header in the exposition.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is what every concrete type provides to the exposition writer.
type metric interface {
	// write appends the series' exposition lines for the given
	// name+label prefix.
	write(b *strings.Builder, series string)
}

// entry is one registered series.
type entry struct {
	name   string
	labels []Label
	m      metric
}

// family groups every series sharing a metric name.
type family struct {
	name, help, typ string
	entries         []entry
}

// Registry holds named metrics and renders them as Prometheus text. A
// nil *Registry is valid and means "telemetry disabled": every
// constructor returns nil and every metric method on nil is a no-op.
// Registration is idempotent — asking for an existing (name, labels)
// series returns the same metric, which is what lets the HTTP middleware
// intern per-endpoint series lazily — and panics if the same series is
// re-registered as a different type or a histogram with different
// boundaries.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	byKey    map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		byKey:    make(map[string]entry),
	}
}

// seriesKey renders the identity of one series: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register interns one series, creating it with mk on first sight.
func (r *Registry) register(name, help, typ string, labels []Label, mk func() metric) metric {
	if len(labels) > 1 {
		labels = append([]Label(nil), labels...)
		sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		fam := r.families[name]
		if fam.typ != typ {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, typ, fam.typ))
		}
		return e.m
	}
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ}
		r.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, typ, fam.typ))
	}
	e := entry{name: name, labels: labels, m: mk()}
	fam.entries = append(fam.entries, e)
	r.byKey[key] = e
	return e.m
}

// Counter returns the named single-lane counter, registering it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.CounterN(name, help, 1, labels...)
}

// CounterN returns the named counter with `lanes` cache-line-padded
// atomic lanes. Callers that own a stable shard identity should use
// AddLane to write contention-free; Value sums the lanes. Returns nil on
// a nil registry.
func (r *Registry) CounterN(name, help string, lanes int, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	if lanes < 1 {
		lanes = 1
	}
	m := r.register(name, help, "counter", labels, func() metric {
		return &Counter{lanes: make([]lane, lanes)}
	})
	return m.(*Counter)
}

// Gauge returns the named gauge, registering it on first use. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, "gauge", labels, func() metric { return &Gauge{} })
	return m.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn must be safe to call from the scrape goroutine at any moment.
// No-op on a nil registry. If the series already exists the existing
// function is kept.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", labels, func() metric { return gaugeFunc(fn) })
}

// Histogram returns the named histogram with the given ascending bucket
// upper bounds (a final +Inf bucket is implicit), registering it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s bucket bounds not ascending at %d", name, i))
		}
	}
	m := r.register(name, help, "histogram", labels, func() metric {
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	})
	h := m.(*Histogram)
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: %s re-registered with different bucket count", name))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("telemetry: %s re-registered with different bucket bounds", name))
		}
	}
	return h
}

// ExpBuckets builds n log-scale bucket upper bounds starting at start
// and multiplying by factor: start, start*factor, ... — the fixed
// boundary ladders used for latencies and batch sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the standard latency ladder: 50µs to ~26s in
// doublings — wide enough for fsyncs at the bottom and a saturated
// 1000-client query storm at the top.
func DurationBuckets() []float64 { return ExpBuckets(50e-6, 2, 20) }

// lane is one cache-line-padded counter lane. The padding keeps lanes
// written by different shard goroutines off shared cache lines, the same
// idiom as radio.shardState and obs.shardBuf.
type lane struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing value, optionally striped across
// lanes. All methods are safe on a nil receiver (no-ops).
type Counter struct {
	lanes []lane
}

// Inc adds 1 to lane 0.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.lanes[0].v.Add(1)
}

// Add adds n to lane 0.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.lanes[0].v.Add(n)
}

// AddLane adds n to the given lane (mod lane count) — contention-free
// when each writer owns its lane.
func (c *Counter) AddLane(laneIdx int, n int64) {
	if c == nil {
		return
	}
	c.lanes[laneIdx%len(c.lanes)].v.Add(n)
}

// Value sums all lanes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.lanes {
		t += c.lanes[i].v.Load()
	}
	return t
}

func (c *Counter) write(b *strings.Builder, series string) {
	b.WriteString(series)
	b.WriteByte(' ')
	writeFloat(b, float64(c.Value()))
	b.WriteByte('\n')
}

// Gauge is a value that can go up and down, stored as float64 bits. All
// methods are safe on a nil receiver (no-ops).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d (CAS loop; gauges are low-rate).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(b *strings.Builder, series string) {
	b.WriteString(series)
	b.WriteByte(' ')
	writeFloat(b, g.Value())
	b.WriteByte('\n')
}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc func() float64

func (f gaugeFunc) write(b *strings.Builder, series string) {
	b.WriteString(series)
	b.WriteByte(' ')
	writeFloat(b, f())
	b.WriteByte('\n')
}

// Histogram is a fixed-boundary histogram: per-bucket atomic counts plus
// a float sum. Observe is lock-free. All methods are safe on a nil
// receiver (no-ops).
type Histogram struct {
	bounds  []float64       // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64 // len(bounds)+1
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns total observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) write(b *strings.Builder, series string) {
	// series is `name{labels}` or bare `name`; bucket lines splice the
	// cumulative le label into the label set, sum/count suffix the name.
	name, inner, suffix := series, "", ""
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
		inner = series[i+1 : len(series)-1]
		suffix = "{" + inner + "}"
		inner += ","
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, inner, le, cum)
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(suffix)
	b.WriteByte(' ')
	writeFloat(b, h.Sum())
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, cum)
}
