package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 4))
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil metrics")
	}
	c.Inc()
	c.Add(5)
	c.AddLane(3, 7)
	g.Set(1)
	g.SetInt(2)
	g.Add(3)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics reported non-zero values")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "other help ignored", L("k", "v"))
	if a != b {
		t.Fatalf("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "", L("k", "w"))
	if c == a {
		t.Fatalf("different label value returned the same counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("y", "", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("y", "", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatalf("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramRejectsChangedBounds(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2, 4})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 2, 8})
}

func TestCounterLanes(t *testing.T) {
	r := NewRegistry()
	c := r.CounterN("lanes_total", "", 4)
	c.AddLane(0, 1)
	c.AddLane(1, 10)
	c.AddLane(3, 100)
	c.AddLane(5, 1000) // wraps to lane 1
	c.Inc()            // lane 0
	if got := c.Value(); got != 1112 {
		t.Fatalf("Value = %d, want 1112", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	// A value equal to an upper bound belongs to that bucket (le is
	// inclusive); the first strictly greater bound otherwise.
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v) // bucket le=1
	}
	h.Observe(1.5) // le=2
	h.Observe(2.0) // le=2
	h.Observe(4.0) // le=4
	h.Observe(4.1) // +Inf
	h.Observe(99)  // +Inf
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-112.1) > 1e-9 {
		t.Fatalf("Sum = %v, want 112.1", h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	db := DurationBuckets()
	if db[0] != 50e-6 || len(db) != 20 {
		t.Fatalf("DurationBuckets = %v", db)
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines
// at once; run under -race (make check does) it is the registry's
// thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interning races: every worker asks for the same series.
			c := r.CounterN("conc_total", "", 4)
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_seconds", "", ExpBuckets(0.001, 4, 6))
			lbl := r.Counter("conc_labeled_total", "", L("w", "shared"))
			for i := 0; i < perWorker; i++ {
				c.AddLane(w, 1)
				g.Add(1)
				h.Observe(float64(i%7) * 0.01)
				lbl.Inc()
				if i%500 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb) // scrape concurrently with writes
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("conc_labeled_total", "", L("w", "shared")).Value(); got != workers*perWorker {
		t.Fatalf("labeled counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("conc_seconds", "", ExpBuckets(0.001, 4, 6)).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(3)
	r.Counter("a_total", "ants", L("kind", "fire")).Add(2)
	r.Counter("a_total", "ants", L("kind", "army")).Add(5)
	r.Gauge("g_ratio", "a ratio").Set(0.25)
	r.GaugeFunc("f_now", "computed", func() float64 { return 42 })
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1}, L("endpoint", "/files"))
	// Exact binary fractions, so the _sum line renders without float fuzz.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Families are name-sorted, with one TYPE header each.
	wantLines := []string{
		"# HELP a_total ants",
		"# TYPE a_total counter",
		`a_total{kind="fire"} 2`,
		`a_total{kind="army"} 5`,
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE f_now gauge",
		"f_now 42",
		"# TYPE g_ratio gauge",
		"g_ratio 0.25",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{endpoint="/files",le="0.1"} 1`,
		`h_seconds_bucket{endpoint="/files",le="1"} 2`,
		`h_seconds_bucket{endpoint="/files",le="+Inf"} 3`,
		`h_seconds_sum{endpoint="/files"} 5.5625`,
		`h_seconds_count{endpoint="/files"} 3`,
	}
	pos := 0
	for _, want := range wantLines {
		i := strings.Index(text[pos:], want+"\n")
		if i < 0 {
			t.Fatalf("exposition missing (or out of order) %q\nfull text:\n%s", want, text)
		}
		pos += i + len(want)
	}
	if strings.Count(text, "# TYPE a_total counter") != 1 {
		t.Fatalf("family header emitted more than once:\n%s", text)
	}

	// Round-trip: the text we emit must parse as a valid exposition.
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("our own exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if len(s.Labels) == 0 {
			byName[s.Name] = s.Value
		}
	}
	if byName["b_total"] != 3 || byName["g_ratio"] != 0.25 || byName["f_now"] != 42 {
		t.Fatalf("round-trip lost values: %v", byName)
	}
	var inf float64
	for _, s := range samples {
		if s.Name == "h_seconds_bucket" && s.Label("le") == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", inf)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"1leading_digit 3",
		`unterminated{a="b 1`,
		"name notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

// TestParseTextBracesInLabelValue pins that a '}' inside a quoted label
// value (route patterns like /files/{id}) does not terminate the label
// block early — the load harness scrapes exactly such series.
func TestParseTextBracesInLabelValue(t *testing.T) {
	line := `enviromic_http_request_seconds_bucket{endpoint="/files/{id}",le="5e-05"} 15`
	samples, err := ParseText(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Label("endpoint") != "/files/{id}" || s.Label("le") != "5e-05" || s.Value != 15 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations: 50 in (0,1], 40 in (1,2], 10 in (2,+Inf).
	buckets := []Sample{
		{Name: "x_bucket", Labels: map[string]string{"le": "1"}, Value: 50},
		{Name: "x_bucket", Labels: map[string]string{"le": "2"}, Value: 90},
		{Name: "x_bucket", Labels: map[string]string{"le": "+Inf"}, Value: 100},
	}
	p50, ok := HistogramQuantile(0.5, buckets)
	if !ok || p50 > 1.0001 {
		t.Fatalf("p50 = %v ok=%v, want <= 1", p50, ok)
	}
	p95, ok := HistogramQuantile(0.95, buckets)
	if !ok || p95 < 1 || p95 > 2 {
		t.Fatalf("p95 = %v ok=%v, want in (1,2]", p95, ok)
	}
	p999, ok := HistogramQuantile(0.999, buckets)
	if !ok || p999 != 2 {
		t.Fatalf("p99.9 = %v ok=%v, want last finite bound 2", p999, ok)
	}
	if _, ok := HistogramQuantile(0.5, nil); ok {
		t.Fatalf("empty buckets reported a quantile")
	}
	// Merging two endpoints' buckets gives the union's quantile.
	both := append(append([]Sample{}, buckets...),
		Sample{Labels: map[string]string{"le": "1"}, Value: 100},
		Sample{Labels: map[string]string{"le": "2"}, Value: 100},
		Sample{Labels: map[string]string{"le": "+Inf"}, Value: 100},
	)
	p50u, ok := HistogramQuantile(0.5, both)
	if !ok || p50u > 1 {
		t.Fatalf("union p50 = %v, want <= 1", p50u)
	}
}

func TestDisabledPathAllocsFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		c.AddLane(1, 3)
		g.Set(1.5)
		h.Observe(0.01)
		h.ObserveDuration(time.Millisecond)
	}); avg != 0 {
		t.Fatalf("disabled metric ops allocate %v/op, want 0", avg)
	}
}
