package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("hello"))
	})
	endpointOf := func(r *http.Request) string {
		if strings.HasPrefix(r.URL.Path, "/missing") {
			return "/missing"
		}
		return "/hello"
	}
	h := Middleware(reg, endpointOf, inner)

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/hello", nil))
		if rec.Code != 200 || rec.Body.String() != "hello" {
			t.Fatalf("unexpected response %d %q", rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}

	if got := reg.Counter("enviromic_http_requests_total", "", L("endpoint", "/hello"), L("code", "200")).Value(); got != 3 {
		t.Fatalf("requests{/hello,200} = %d, want 3", got)
	}
	if got := reg.Counter("enviromic_http_requests_total", "", L("endpoint", "/missing"), L("code", "404")).Value(); got != 1 {
		t.Fatalf("requests{/missing,404} = %d, want 1", got)
	}
	if got := reg.Counter("enviromic_http_response_bytes_total", "", L("endpoint", "/hello")).Value(); got != 15 {
		t.Fatalf("bytes{/hello} = %d, want 15", got)
	}
	hist := reg.Histogram("enviromic_http_request_seconds", "", DurationBuckets(), L("endpoint", "/hello"))
	if hist.Count() != 3 {
		t.Fatalf("latency count = %d, want 3", hist.Count())
	}
	if got := reg.Gauge("enviromic_http_in_flight", "").Value(); got != 0 {
		t.Fatalf("in-flight after quiesce = %v, want 0", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`enviromic_http_requests_total{code="200",endpoint="/hello"} 3`,
		`enviromic_http_request_seconds_count{endpoint="/hello"} 3`,
		"enviromic_http_in_flight 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestMiddlewareNilRegistryPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	h := Middleware(nil, nil, inner)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Body.String() != "ok" {
		t.Fatalf("pass-through broke the handler")
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	h := AccessLog(logger, inner)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/ingest?x=1", nil))

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON line: %v (%q)", err, buf.String())
	}
	if line["method"] != "POST" || line["path"] != "/ingest?x=1" || line["status"] != float64(201) {
		t.Fatalf("access log fields wrong: %v", line)
	}
	if _, ok := line["duration_ms"]; !ok {
		t.Fatalf("access log missing duration_ms: %v", line)
	}
}
