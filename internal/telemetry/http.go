package telemetry

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Middleware wraps an HTTP handler with per-endpoint metrics:
//
//	enviromic_http_request_seconds{endpoint}        latency histogram
//	enviromic_http_requests_total{endpoint,code}    status-code counters
//	enviromic_http_response_bytes_total{endpoint}   body bytes written
//	enviromic_http_in_flight                        gauge
//
// endpointOf maps a request to its route pattern ("/files/{id}/wav", not
// the concrete path) so series stay low-cardinality; nil uses the raw
// URL path. With a nil registry the handler is returned unwrapped —
// telemetry off costs nothing per request.
func Middleware(reg *Registry, endpointOf func(*http.Request) string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	if endpointOf == nil {
		endpointOf = func(r *http.Request) string { return r.URL.Path }
	}
	mw := &httpMetrics{
		reg:       reg,
		inFlight:  reg.Gauge("enviromic_http_in_flight", "HTTP requests currently being served."),
		endpoints: make(map[string]*endpointMetrics),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := mw.endpoint(endpointOf(r))
		mw.inFlight.Add(1)
		rec := statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(&rec, r)
		elapsed := time.Since(start)
		mw.inFlight.Add(-1)
		ep.latency.ObserveDuration(elapsed)
		ep.bytes.Add(rec.bytes)
		ep.code(mw.reg, rec.status).Inc()
	})
}

type httpMetrics struct {
	reg      *Registry
	inFlight *Gauge

	mu        sync.RWMutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	name    string
	latency *Histogram
	bytes   *Counter

	mu    sync.RWMutex
	codes map[int]*Counter
}

// endpoint interns the per-endpoint series, so the per-request cost
// after the first hit is one read-locked map lookup.
func (m *httpMetrics) endpoint(name string) *endpointMetrics {
	m.mu.RLock()
	ep := m.endpoints[name]
	m.mu.RUnlock()
	if ep != nil {
		return ep
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ep = m.endpoints[name]; ep != nil {
		return ep
	}
	ep = &endpointMetrics{
		name: name,
		latency: m.reg.Histogram("enviromic_http_request_seconds",
			"HTTP request handling latency by endpoint.", DurationBuckets(), L("endpoint", name)),
		bytes: m.reg.Counter("enviromic_http_response_bytes_total",
			"HTTP response body bytes by endpoint.", L("endpoint", name)),
		codes: make(map[int]*Counter),
	}
	m.endpoints[name] = ep
	return ep
}

// code interns the per-status counter for this endpoint.
func (ep *endpointMetrics) code(reg *Registry, status int) *Counter {
	ep.mu.RLock()
	c := ep.codes[status]
	ep.mu.RUnlock()
	if c != nil {
		return c
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if c = ep.codes[status]; c != nil {
		return c
	}
	c = reg.Counter("enviromic_http_requests_total", "HTTP requests by endpoint and status code.",
		L("endpoint", ep.name), L("code", strconv.Itoa(status)))
	ep.codes[status] = c
	return c
}

// statusRecorder captures the status code and body bytes of a response.
// It deliberately implements only http.ResponseWriter plus Flush: the
// archive's endpoints stream JSON and WAV bodies, neither of which needs
// hijacking or server push.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps a handler with one structured log line per request —
// method, path, status, response bytes, latency — via log/slog. Used by
// enviromic-archive's -access-log flag; a nil logger returns the handler
// unwrapped.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(&rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.RequestURI(),
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1000.0,
			"remote", r.RemoteAddr,
		)
	})
}
