package geometry

import (
	"math/rand"
	"sort"
	"testing"
)

// deployments returns named point sets exercising the index's edge cases:
// uniform random spread, tight clusters with empty space between them
// (many points per cell), and collinear layouts sitting exactly on cell
// boundaries.
func deployments(r float64) map[string][]Point {
	rng := rand.New(rand.NewSource(7))
	random := make([]Point, 120)
	for i := range random {
		random[i] = Point{X: rng.Float64()*40 - 20, Y: rng.Float64()*40 - 20}
	}
	var clustered []Point
	for _, c := range []Point{{X: -15, Y: -15}, {X: 12, Y: 3}, {X: 0, Y: 18}} {
		for i := 0; i < 40; i++ {
			clustered = append(clustered, Point{
				X: c.X + rng.Float64()*r - r/2,
				Y: c.Y + rng.Float64()*r - r/2,
			})
		}
	}
	collinear := make([]Point, 60)
	for i := range collinear {
		// Spacing of exactly r/2 puts many pairs exactly at distance r
		// and every point on or near a cell boundary.
		collinear[i] = Point{X: float64(i) * r / 2, Y: 0}
	}
	return map[string][]Point{"random": random, "clustered": clustered, "collinear": collinear}
}

func bruteWithin(pts []Point, p Point, r float64, self int) []int {
	var out []int
	for i, q := range pts {
		if i != self && p.Dist(q) <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestCellIndexMatchesBruteForce(t *testing.T) {
	const r = 3.5
	for name, pts := range deployments(r) {
		idx := BuildCellIndex(pts, r)
		for i, p := range pts {
			got := idx.Within(p, r, i, nil)
			sort.Ints(got)
			want := bruteWithin(pts, p, r, i)
			if len(got) != len(want) {
				t.Fatalf("%s: point %d: index found %d neighbors, brute force %d",
					name, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s: point %d: neighbor sets diverge: %v vs %v", name, i, got, want)
				}
			}
		}
	}
}

func TestCellIndexQueryFromArbitraryPoint(t *testing.T) {
	const r = 2.0
	pts := deployments(r)["random"]
	idx := BuildCellIndex(pts, r)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		q := Point{X: rng.Float64()*50 - 25, Y: rng.Float64()*50 - 25}
		got := idx.Within(q, r, -1, nil)
		sort.Ints(got)
		want := bruteWithin(pts, q, r, -1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d neighbors", trial, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("trial %d: %v vs %v", trial, got, want)
			}
		}
	}
}

func TestCellIndexNegativeCoordinates(t *testing.T) {
	// floorDiv must bin negative coordinates consistently: -0.1 and +0.1
	// are in different cells but still within radius of each other.
	pts := []Point{{X: -0.1}, {X: 0.1}}
	idx := BuildCellIndex(pts, 1)
	got := idx.Within(pts[0], 1, 0, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within across the origin boundary = %v, want [1]", got)
	}
}

func TestCellIndexValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { BuildCellIndex(nil, 0) },
		func() { BuildCellIndex([]Point{{}}, 1).Within(Point{}, 2, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid cell index use did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestCellIndexReusesDst(t *testing.T) {
	pts := []Point{{X: 0}, {X: 1}, {X: 2}}
	idx := BuildCellIndex(pts, 1.5)
	buf := make([]int, 0, 8)
	got := idx.Within(pts[1], 1.5, 1, buf)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("Within did not append into the provided buffer")
	}
}
