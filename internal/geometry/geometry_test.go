package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEq(got, tt.want) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2}, Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := p.String(); got != "(1.00, 2.00)" {
		t.Errorf("String = %q", got)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestGridLayout(t *testing.T) {
	g := Grid{Cols: 8, Rows: 6, Pitch: 2}
	if g.NumNodes() != 48 {
		t.Fatalf("NumNodes = %d, want 48", g.NumNodes())
	}
	if got := g.PointAt(0, 0); got != (Point{0, 0}) {
		t.Errorf("PointAt(0,0) = %v", got)
	}
	if got := g.PointAt(7, 5); got != (Point{14, 10}) {
		t.Errorf("PointAt(7,5) = %v", got)
	}
	if got := g.Index(7, 5); got != 47 {
		t.Errorf("Index(7,5) = %d", got)
	}
	col, row := g.Cell(47)
	if col != 7 || row != 5 {
		t.Errorf("Cell(47) = (%d,%d)", col, row)
	}
	pts := g.Points()
	if len(pts) != 48 {
		t.Fatalf("Points() len = %d", len(pts))
	}
	if pts[g.Index(3, 2)] != g.PointAt(3, 2) {
		t.Error("Points() order disagrees with Index()")
	}
}

func TestGridIndexCellRoundTrip(t *testing.T) {
	g := Grid{Cols: 7, Rows: 4, Pitch: 1}
	for i := 0; i < g.NumNodes(); i++ {
		col, row := g.Cell(i)
		if g.Index(col, row) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestGridPanicsOutOfRange(t *testing.T) {
	g := Grid{Cols: 2, Rows: 2, Pitch: 1}
	for _, fn := range []func(){
		func() { g.PointAt(2, 0) },
		func() { g.PointAt(0, -1) },
		func() { g.Index(-1, 0) },
		func() { g.Cell(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGridWithOrigin(t *testing.T) {
	g := Grid{Cols: 2, Rows: 2, Pitch: 3, Origin: Point{10, 20}}
	if got := g.PointAt(1, 1); got != (Point{13, 23}) {
		t.Errorf("PointAt with origin = %v", got)
	}
}

func TestPathInterpolation(t *testing.T) {
	p := NewPath(
		PathPoint{0, Point{0, 0}},
		PathPoint{10, Point{10, 0}},
		PathPoint{20, Point{10, 10}},
	)
	tests := []struct {
		t    float64
		want Point
	}{
		{-5, Point{0, 0}}, // pinned before start
		{0, Point{0, 0}},
		{5, Point{5, 0}},   // mid first leg
		{10, Point{10, 0}}, // waypoint
		{15, Point{10, 5}}, // mid second leg
		{20, Point{10, 10}},
		{99, Point{10, 10}}, // pinned after end
	}
	for _, tt := range tests {
		got := p.At(tt.t)
		if !almostEq(got.X, tt.want.X) || !almostEq(got.Y, tt.want.Y) {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if p.Start() != 0 || p.End() != 20 {
		t.Errorf("Start/End = %v/%v", p.Start(), p.End())
	}
}

func TestLinePathConstantSpeed(t *testing.T) {
	p := LinePath(Point{0, 0}, Point{9, 0}, 9)
	for i := 0; i <= 9; i++ {
		got := p.At(float64(i))
		if !almostEq(got.X, float64(i)) {
			t.Errorf("At(%d).X = %v", i, got.X)
		}
	}
}

func TestPathValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPath() },
		func() { NewPath(PathPoint{1, Point{}}, PathPoint{1, Point{}}) },
		func() { NewPath(PathPoint{2, Point{}}, PathPoint{1, Point{}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid path did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHeatmapAccumulation(t *testing.T) {
	h := NewHeatmap(0, 0, 10, 10, 2, 2)
	h.Add(Point{2, 2}, 5) // cell (0,0)
	h.Add(Point{7, 2}, 3) // cell (1,0)
	h.Add(Point{2, 8}, 1) // cell (0,1)
	h.Add(Point{2, 2}, 5) // cell (0,0) again
	if got := h.Cell(0, 0); got != 10 {
		t.Errorf("Cell(0,0) = %v, want 10", got)
	}
	if got := h.Cell(1, 0); got != 3 {
		t.Errorf("Cell(1,0) = %v, want 3", got)
	}
	if got := h.Max(); got != 10 {
		t.Errorf("Max = %v", got)
	}
	if got := h.Total(); got != 14 {
		t.Errorf("Total = %v", got)
	}
}

func TestHeatmapClampsBoundary(t *testing.T) {
	h := NewHeatmap(0, 0, 10, 10, 2, 2)
	h.Add(Point{-5, -5}, 1) // clamps to (0,0)
	h.Add(Point{15, 15}, 2) // clamps to (1,1)
	h.Add(Point{10, 10}, 4) // exactly max corner clamps to (1,1)
	if got := h.Cell(0, 0); got != 1 {
		t.Errorf("underflow clamp: Cell(0,0) = %v", got)
	}
	if got := h.Cell(1, 1); got != 6 {
		t.Errorf("overflow clamp: Cell(1,1) = %v", got)
	}
}

func TestHeatmapValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHeatmap(0, 0, 10, 10, 0, 2) },
		func() { NewHeatmap(0, 0, 0, 10, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid heatmap did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestQuickDistMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if !almostEq(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Path.At always returns a point within the bounding box of its
// waypoints (linear interpolation cannot overshoot).
func TestQuickPathStaysInBounds(t *testing.T) {
	f := func(xs [4]int8, queries [8]uint8) bool {
		pts := make([]PathPoint, len(xs))
		minX, maxX := math.Inf(1), math.Inf(-1)
		for i, x := range xs {
			p := Point{float64(x), float64(-x)}
			pts[i] = PathPoint{float64(i * 10), p}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
		}
		path := NewPath(pts...)
		for _, q := range queries {
			p := path.At(float64(q) / 4)
			if p.X < minX-1e-9 || p.X > maxX+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
