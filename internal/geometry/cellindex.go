package geometry

import "fmt"

// CellIndex is a uniform-grid spatial index over a fixed set of points,
// built for radius queries whose radius equals the cell size. It exists
// for the radio layer's neighbor lookups: motes are static, so the index
// is built once per topology change and then answers "who is within
// communication range of p" by scanning at most the 3×3 block of cells
// around p instead of every deployed node.
//
// The index stores caller-provided integer handles (the radio layer uses
// positions in its ID-sorted endpoint slice) and never interprets them.
type CellIndex struct {
	cell  float64
	pts   []Point
	cells map[cellCoord][]int32
}

type cellCoord struct{ cx, cy int32 }

// BuildCellIndex indexes pts with the given cell size. The query radius
// passed to Within must not exceed cellSize, which is enforced there.
// Handles are the indices into pts.
func BuildCellIndex(pts []Point, cellSize float64) *CellIndex {
	if cellSize <= 0 {
		panic(fmt.Sprintf("geometry: non-positive cell size %v", cellSize))
	}
	idx := &CellIndex{
		cell:  cellSize,
		pts:   pts,
		cells: make(map[cellCoord][]int32, len(pts)),
	}
	for i, p := range pts {
		c := idx.coord(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

func (idx *CellIndex) coord(p Point) cellCoord {
	return cellCoord{cx: floorDiv(p.X, idx.cell), cy: floorDiv(p.Y, idx.cell)}
}

func floorDiv(v, cell float64) int32 {
	q := v / cell
	i := int32(q)
	if q < 0 && float64(i) != q {
		i--
	}
	return i
}

// Len returns the number of indexed points.
func (idx *CellIndex) Len() int { return len(idx.pts) }

// Within appends to dst the handles of every indexed point q with
// p.Dist(q) <= r, excluding the handle `self` (pass a negative value to
// keep all). The output order is unspecified; callers needing determinism
// sort it. r must not exceed the cell size — a larger radius could reach
// beyond the 3×3 scan block.
func (idx *CellIndex) Within(p Point, r float64, self int, dst []int) []int {
	if r > idx.cell {
		panic(fmt.Sprintf("geometry: query radius %v exceeds cell size %v", r, idx.cell))
	}
	center := idx.coord(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			bucket := idx.cells[cellCoord{cx: center.cx + dx, cy: center.cy + dy}]
			for _, h := range bucket {
				if int(h) == self {
					continue
				}
				if p.Dist(idx.pts[h]) <= r {
					dst = append(dst, int(h))
				}
			}
		}
	}
	return dst
}
