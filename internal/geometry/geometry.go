// Package geometry provides the small amount of 2-D spatial math EnviroMic
// needs: points, distances, piecewise-linear motion paths, grid
// deployments, and spatial binning used to render the paper's contour
// figures (Figs 13, 14, 17).
package geometry

import (
	"fmt"
	"math"
)

// Point is a position in the deployment plane. Units are whatever the
// scenario chooses (the indoor testbed uses feet with a 2 ft grid pitch).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Norm returns the distance from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates from p to q; f=0 gives p, f=1 gives q.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// String formats the point with two decimals.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Grid describes a regular Cols×Rows deployment with a fixed pitch,
// matching the paper's 8×6 indoor testbed with 2 ft spacing.
type Grid struct {
	Cols, Rows int
	Pitch      float64
	Origin     Point
}

// NumNodes returns Cols*Rows.
func (g Grid) NumNodes() int { return g.Cols * g.Rows }

// PointAt returns the position of grid cell (col, row). It panics on
// out-of-range indices: deployments are constructed once and an index bug
// should fail loudly.
func (g Grid) PointAt(col, row int) Point {
	if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
		panic(fmt.Sprintf("geometry: grid index (%d,%d) outside %dx%d", col, row, g.Cols, g.Rows))
	}
	return Point{g.Origin.X + float64(col)*g.Pitch, g.Origin.Y + float64(row)*g.Pitch}
}

// Index maps (col, row) to a linear node index in row-major order.
func (g Grid) Index(col, row int) int {
	if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
		panic(fmt.Sprintf("geometry: grid index (%d,%d) outside %dx%d", col, row, g.Cols, g.Rows))
	}
	return row*g.Cols + col
}

// Cell inverts Index.
func (g Grid) Cell(index int) (col, row int) {
	if index < 0 || index >= g.NumNodes() {
		panic(fmt.Sprintf("geometry: linear index %d outside %dx%d", index, g.Cols, g.Rows))
	}
	return index % g.Cols, index / g.Cols
}

// Points returns all node positions in row-major order.
func (g Grid) Points() []Point {
	pts := make([]Point, 0, g.NumNodes())
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			pts = append(pts, g.PointAt(col, row))
		}
	}
	return pts
}

// Path is a piecewise-linear trajectory through waypoints at given times.
// It models the paper's mobile acoustic sources (the cart in Fig 6-7, the
// walking speaker in Fig 8).
type Path struct {
	waypoints []PathPoint
}

// PathPoint is one waypoint of a Path: be at P at time T (seconds from the
// path's own epoch).
type PathPoint struct {
	T float64
	P Point
}

// NewPath builds a path from waypoints. Waypoints must be in strictly
// increasing time order and there must be at least one.
func NewPath(pts ...PathPoint) *Path {
	if len(pts) == 0 {
		panic("geometry: path needs at least one waypoint")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			panic(fmt.Sprintf("geometry: path waypoints out of order at %d (%v then %v)",
				i, pts[i-1].T, pts[i].T))
		}
	}
	cp := make([]PathPoint, len(pts))
	copy(cp, pts)
	return &Path{waypoints: cp}
}

// LinePath builds a constant-speed path from a to b over dur seconds.
func LinePath(a, b Point, dur float64) *Path {
	return NewPath(PathPoint{0, a}, PathPoint{dur, b})
}

// At returns the position at time t (seconds). Before the first waypoint
// the path is pinned at its start; after the last, at its end.
func (p *Path) At(t float64) Point {
	w := p.waypoints
	if t <= w[0].T {
		return w[0].P
	}
	last := w[len(w)-1]
	if t >= last.T {
		return last.P
	}
	// Linear scan: paths have a handful of waypoints.
	for i := 1; i < len(w); i++ {
		if t <= w[i].T {
			f := (t - w[i-1].T) / (w[i].T - w[i-1].T)
			return w[i-1].P.Lerp(w[i].P, f)
		}
	}
	return last.P
}

// Start and End return the path's temporal extent in seconds.
func (p *Path) Start() float64 { return p.waypoints[0].T }

// End returns the time of the final waypoint.
func (p *Path) End() float64 { return p.waypoints[len(p.waypoints)-1].T }

// Heatmap accumulates per-cell scalar totals over a bounding box, used to
// produce the spatial-distribution contour figures.
type Heatmap struct {
	MinX, MinY   float64
	CellW, CellH float64
	Cols, Rows   int
	cells        []float64
}

// NewHeatmap covers [minX,maxX]×[minY,maxY] with cols×rows cells.
func NewHeatmap(minX, minY, maxX, maxY float64, cols, rows int) *Heatmap {
	if cols <= 0 || rows <= 0 {
		panic("geometry: heatmap needs positive dimensions")
	}
	if maxX <= minX || maxY <= minY {
		panic("geometry: heatmap needs a non-empty bounding box")
	}
	return &Heatmap{
		MinX: minX, MinY: minY,
		CellW: (maxX - minX) / float64(cols),
		CellH: (maxY - minY) / float64(rows),
		Cols:  cols, Rows: rows,
		cells: make([]float64, cols*rows),
	}
}

// Add accumulates v at position p. Points outside the box clamp to the
// border cell, which is the right behaviour for nodes sitting exactly on
// the deployment boundary.
func (h *Heatmap) Add(p Point, v float64) {
	col := int((p.X - h.MinX) / h.CellW)
	row := int((p.Y - h.MinY) / h.CellH)
	if col < 0 {
		col = 0
	}
	if col >= h.Cols {
		col = h.Cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= h.Rows {
		row = h.Rows - 1
	}
	h.cells[row*h.Cols+col] += v
}

// Cell returns the accumulated value of cell (col, row).
func (h *Heatmap) Cell(col, row int) float64 {
	if col < 0 || col >= h.Cols || row < 0 || row >= h.Rows {
		panic(fmt.Sprintf("geometry: heatmap cell (%d,%d) outside %dx%d", col, row, h.Cols, h.Rows))
	}
	return h.cells[row*h.Cols+col]
}

// Max returns the largest cell value (0 for an empty map).
func (h *Heatmap) Max() float64 {
	m := 0.0
	for _, v := range h.cells {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the sum over all cells.
func (h *Heatmap) Total() float64 {
	t := 0.0
	for _, v := range h.cells {
		t += v
	}
	return t
}
