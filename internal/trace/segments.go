package trace

import (
	"time"
)

// Segment is one detected sound event inside a sample stream: the
// basestation-side analysis the paper defers to the back end (§II —
// "counting bird populations and inferring social communication patterns
// from isolated vocalizations").
type Segment struct {
	// Start/End are sample indices (half-open).
	Start, End int
	// Peak is the maximum envelope value inside the segment.
	Peak float64
}

// Duration converts the segment length to time at the given sample rate.
func (s Segment) Duration(rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(s.End-s.Start) / rate * float64(time.Second))
}

// SegmentConfig tunes the detector.
type SegmentConfig struct {
	// Window is the envelope window in samples (default 256).
	Window int
	// Threshold is the envelope level that starts a segment (default 8 —
	// comfortably above quantization noise on the 0..127 envelope scale).
	Threshold float64
	// HangoverWindows keeps a segment open across this many sub-threshold
	// windows, merging syllables of one vocalization (default 4).
	HangoverWindows int
	// MinWindows drops segments shorter than this many windows (default 2).
	MinWindows int
}

func (c *SegmentConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.HangoverWindows <= 0 {
		c.HangoverWindows = 4
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 2
	}
}

// Segments detects sound events in an 8-bit sample stream by envelope
// thresholding with hangover. It is deliberately simple — the same class
// of analysis the paper expects a basestation to run offline over
// retrieved files.
func Segments(samples []byte, cfg SegmentConfig) []Segment {
	cfg.defaults()
	env := Envelope(samples, cfg.Window)
	var out []Segment
	var cur *Segment
	silentRun := 0
	for w, level := range env {
		switch {
		case level >= cfg.Threshold:
			if cur == nil {
				cur = &Segment{Start: w * cfg.Window, Peak: level}
			}
			if level > cur.Peak {
				cur.Peak = level
			}
			cur.End = (w + 1) * cfg.Window
			silentRun = 0
		case cur != nil:
			silentRun++
			if silentRun > cfg.HangoverWindows {
				out = appendIfLongEnough(out, *cur, cfg)
				cur = nil
				silentRun = 0
			}
		}
	}
	if cur != nil {
		out = appendIfLongEnough(out, *cur, cfg)
	}
	// Clamp the final segment end to the stream length.
	for i := range out {
		if out[i].End > len(samples) {
			out[i].End = len(samples)
		}
	}
	return out
}

func appendIfLongEnough(out []Segment, s Segment, cfg SegmentConfig) []Segment {
	if s.End-s.Start >= cfg.MinWindows*cfg.Window {
		return append(out, s)
	}
	return out
}
