// Package trace post-processes retrieved recordings the way the paper's
// Fig 8 does: chunks of a distributed file are stitched together on their
// timestamps into a continuous sample stream, and the result is compared
// against a reference ("ground truth") recording via envelope extraction
// and normalized cross-correlation.
package trace

import (
	"math"

	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

// Silence is the 8-bit ADC mid-scale value written into gaps.
const Silence = 128

// Stitch renders a reassembled file into one continuous sample stream at
// the given sample rate. Chunks are placed at their timestamp offsets;
// gaps are filled with silence; where chunks overlap (duplicate coverage
// by two recorders) the earlier-starting chunk wins, matching how a
// human analyst would splice takes.
func Stitch(f *retrieval.File, rate float64) []byte {
	out, _ := StitchWithMask(f, rate)
	return out
}

// StitchWithMask is Stitch plus a per-sample coverage mask: true where a
// chunk supplied the sample, false where silence was filled in. Analyses
// that compare against ground truth use the mask to score only what was
// actually recorded (the paper's Fig 8 comparison is of recorded
// segments, not of gaps).
func StitchWithMask(f *retrieval.File, rate float64) ([]byte, []bool) {
	if f == nil || len(f.Chunks) == 0 || rate <= 0 {
		return nil, nil
	}
	start := f.Start()
	n := sampleIndex(start, f.End(), rate)
	if n <= 0 {
		return nil, nil
	}
	out := make([]byte, n)
	written := make([]bool, n)
	for i := range out {
		out[i] = Silence
	}
	for _, c := range f.Chunks {
		off := sampleIndex(start, c.Start, rate)
		for i, b := range c.Data {
			idx := off + i
			if idx < 0 || idx >= n || written[idx] {
				continue
			}
			out[idx] = b
			written[idx] = true
		}
	}
	return out, written
}

// MaskedEnvelopeCorrelation is EnvelopeCorrelation restricted to windows
// that are at least 80% covered in the mask.
func MaskedEnvelopeCorrelation(a, b []byte, mask []bool, window int) float64 {
	if window <= 0 {
		return 0
	}
	ea, eb := Envelope(a, window), Envelope(b, window)
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	var xs, ys []float64
	for w := 0; w < n; w++ {
		lo, hi := w*window, (w+1)*window
		if hi > len(mask) {
			hi = len(mask)
		}
		covered := 0
		for i := lo; i < hi && i < len(mask); i++ {
			if mask[i] {
				covered++
			}
		}
		if hi > lo && float64(covered) >= 0.8*float64(hi-lo) {
			xs = append(xs, ea[w])
			ys = append(ys, eb[w])
		}
	}
	if len(xs) < 2 {
		return 0
	}
	var meanX, meanY float64
	for i := range xs {
		meanX += xs[i]
		meanY += ys[i]
	}
	meanX /= float64(len(xs))
	meanY /= float64(len(xs))
	var num, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		num += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return num / math.Sqrt(vx*vy)
}

func sampleIndex(epoch, at sim.Time, rate float64) int {
	return int(at.Sub(epoch).Seconds() * rate)
}

// Coverage returns the fraction of the stitched stream that carries real
// data (vs silence filler).
func Coverage(f *retrieval.File, rate float64) float64 {
	if f == nil || len(f.Chunks) == 0 {
		return 0
	}
	n := sampleIndex(f.Start(), f.End(), rate)
	if n <= 0 {
		return 0
	}
	data := 0
	for _, c := range f.Chunks {
		data += len(c.Data)
	}
	cov := float64(data) / float64(n)
	if cov > 1 {
		cov = 1
	}
	return cov
}

// Envelope computes the RMS envelope of an 8-bit unsigned stream over
// non-overlapping windows, producing the kind of series plotted in
// Fig 8.
func Envelope(samples []byte, window int) []float64 {
	if window <= 0 || len(samples) == 0 {
		return nil
	}
	n := (len(samples) + window - 1) / window
	out := make([]float64, n)
	for w := 0; w < n; w++ {
		lo := w * window
		hi := lo + window
		if hi > len(samples) {
			hi = len(samples)
		}
		var acc float64
		for _, b := range samples[lo:hi] {
			d := float64(b) - Silence
			acc += d * d
		}
		out[w] = math.Sqrt(acc / float64(hi-lo))
	}
	return out
}

// Correlation returns the Pearson correlation coefficient between two
// sample streams over their common prefix, in [−1, 1]. It quantifies the
// paper's "visual similarity is obvious" claim about the EnviroMic
// stitched recording versus the reference mote's.
func Correlation(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += float64(a[i])
		meanB += float64(b[i])
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var num, varA, varB float64
	for i := 0; i < n; i++ {
		da := float64(a[i]) - meanA
		db := float64(b[i]) - meanB
		num += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return num / math.Sqrt(varA*varB)
}

// EnvelopeCorrelation compares two streams at envelope granularity: more
// robust than raw-sample correlation when the two recordings have small
// timestamp misalignments (the stitched stream's chunk boundaries carry
// sync error).
func EnvelopeCorrelation(a, b []byte, window int) float64 {
	ea, eb := Envelope(a, window), Envelope(b, window)
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	if n < 2 {
		return 0
	}
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += ea[i]
		meanB += eb[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var num, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := ea[i]-meanA, eb[i]-meanB
		num += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return num / math.Sqrt(varA*varB)
}
