package trace

import (
	"math"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

func at(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

// mkFile builds a file whose chunks carry recognizable byte patterns.
func mkFile(rate float64, spans [][2]float64, fill byte) *retrieval.File {
	f := &retrieval.File{ID: 1}
	for i, sp := range spans {
		n := int((sp[1] - sp[0]) * rate)
		data := make([]byte, n)
		for j := range data {
			data[j] = fill + byte(i)
		}
		f.Chunks = append(f.Chunks, &flash.Chunk{
			File: 1, Origin: int32(i), Seq: 0,
			Start: at(sp[0]), End: at(sp[1]), Data: data,
		})
	}
	return f
}

func TestStitchContiguous(t *testing.T) {
	const rate = 100
	f := mkFile(rate, [][2]float64{{10, 11}, {11, 12}}, 200)
	out := Stitch(f, rate)
	if len(out) != 200 {
		t.Fatalf("stitched %d samples, want 200", len(out))
	}
	if out[0] != 200 || out[50] != 200 {
		t.Error("first chunk data misplaced")
	}
	if out[100] != 201 || out[199] != 201 {
		t.Error("second chunk data misplaced")
	}
}

func TestStitchFillsGapsWithSilence(t *testing.T) {
	const rate = 100
	f := mkFile(rate, [][2]float64{{10, 11}, {13, 14}}, 50)
	out := Stitch(f, rate)
	if len(out) != 400 {
		t.Fatalf("stitched %d samples, want 400", len(out))
	}
	if out[150] != Silence || out[250] != Silence {
		t.Error("gap not silence-filled")
	}
	if out[50] != 50 || out[350] != 51 {
		t.Error("chunk data misplaced around gap")
	}
	cov := Coverage(f, rate)
	if math.Abs(cov-0.5) > 0.01 {
		t.Errorf("coverage = %v, want ~0.5", cov)
	}
}

func TestStitchOverlapEarlierWins(t *testing.T) {
	const rate = 100
	f := mkFile(rate, [][2]float64{{10, 12}, {11, 13}}, 10)
	out := Stitch(f, rate)
	if out[150] != 10 {
		t.Errorf("overlap sample = %d, want earlier chunk's 10", out[150])
	}
	if out[250] != 11 {
		t.Errorf("tail sample = %d, want later chunk's 11", out[250])
	}
}

func TestStitchDegenerateInputs(t *testing.T) {
	if Stitch(nil, 100) != nil {
		t.Error("nil file stitched")
	}
	if Stitch(&retrieval.File{}, 100) != nil {
		t.Error("empty file stitched")
	}
	f := mkFile(100, [][2]float64{{1, 2}}, 9)
	if Stitch(f, 0) != nil {
		t.Error("zero rate stitched")
	}
}

func TestEnvelope(t *testing.T) {
	// 100 silence samples then 100 loud samples.
	samples := make([]byte, 200)
	for i := 0; i < 100; i++ {
		samples[i] = Silence
	}
	for i := 100; i < 200; i++ {
		samples[i] = Silence + 100
	}
	env := Envelope(samples, 100)
	if len(env) != 2 {
		t.Fatalf("envelope windows = %d", len(env))
	}
	if env[0] != 0 {
		t.Errorf("silent window RMS = %v", env[0])
	}
	if math.Abs(env[1]-100) > 1e-9 {
		t.Errorf("loud window RMS = %v, want 100", env[1])
	}
	if Envelope(nil, 10) != nil || Envelope(samples, 0) != nil {
		t.Error("degenerate envelope input accepted")
	}
}

func TestCorrelationIdenticalAndInverted(t *testing.T) {
	a := make([]byte, 1000)
	for i := range a {
		a[i] = byte(128 + 100*math.Sin(float64(i)/10))
	}
	if got := Correlation(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("self-correlation = %v", got)
	}
	inv := make([]byte, len(a))
	for i := range a {
		inv[i] = 255 - a[i]
	}
	if got := Correlation(a, inv); got > -0.99 {
		t.Errorf("inverted correlation = %v, want ~ -1", got)
	}
	noise := make([]byte, len(a))
	for i := range noise {
		noise[i] = byte(i * 7919 % 251)
	}
	if got := math.Abs(Correlation(a, noise)); got > 0.3 {
		t.Errorf("noise correlation = %v, want near 0", got)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if Correlation(nil, nil) != 0 {
		t.Error("nil correlation nonzero")
	}
	flat := []byte{5, 5, 5, 5}
	if Correlation(flat, []byte{1, 2, 3, 4}) != 0 {
		t.Error("zero-variance correlation nonzero")
	}
}

func TestEnvelopeCorrelationToleratesShift(t *testing.T) {
	// Two identical signals, one shifted by 3 samples: raw correlation of
	// a fast sine collapses, envelope correlation survives.
	n := 4000
	a := make([]byte, n)
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		// Burst pattern: 400 on, 400 off.
		amp := 0.0
		if (i/400)%2 == 0 {
			amp = 100
		}
		a[i] = byte(128 + amp*math.Sin(float64(i)*2.9))
		b[i] = byte(128 + amp*math.Sin(float64(i+3)*2.9))
	}
	raw := Correlation(a, b)
	env := EnvelopeCorrelation(a, b, 100)
	if env < 0.95 {
		t.Errorf("envelope correlation = %v, want > 0.95", env)
	}
	if env <= raw {
		t.Errorf("envelope correlation (%v) should beat raw (%v) under shift", env, raw)
	}
}
