package trace

import (
	"math"
	"testing"
	"time"
)

// synth builds a stream with sound bursts at the given window spans.
func synth(totalWindows, window int, bursts [][2]int) []byte {
	out := make([]byte, totalWindows*window)
	for i := range out {
		out[i] = Silence
	}
	for _, b := range bursts {
		for i := b[0] * window; i < b[1]*window && i < len(out); i++ {
			out[i] = byte(128 + 60*math.Sin(float64(i)*0.8))
		}
	}
	return out
}

func TestSegmentsDetectsBursts(t *testing.T) {
	const w = 256
	samples := synth(40, w, [][2]int{{5, 10}, {20, 28}})
	segs := Segments(samples, SegmentConfig{Window: w})
	if len(segs) != 2 {
		t.Fatalf("detected %d segments, want 2: %+v", len(segs), segs)
	}
	if segs[0].Start != 5*w || segs[0].End != 10*w {
		t.Errorf("segment 0 = [%d,%d), want [%d,%d)", segs[0].Start, segs[0].End, 5*w, 10*w)
	}
	if segs[1].Start != 20*w {
		t.Errorf("segment 1 starts at %d, want %d", segs[1].Start, 20*w)
	}
	if segs[0].Peak <= 0 {
		t.Error("zero peak")
	}
}

func TestSegmentsHangoverMergesSyllables(t *testing.T) {
	const w = 256
	// Two bursts separated by a 3-window pause: merged under the default
	// 4-window hangover.
	samples := synth(30, w, [][2]int{{5, 8}, {11, 14}})
	segs := Segments(samples, SegmentConfig{Window: w})
	if len(segs) != 1 {
		t.Fatalf("syllables not merged: %d segments", len(segs))
	}
	// Separated by 6 windows: two segments.
	samples = synth(30, w, [][2]int{{5, 8}, {14, 17}})
	segs = Segments(samples, SegmentConfig{Window: w})
	if len(segs) != 2 {
		t.Fatalf("distant bursts merged: %d segments", len(segs))
	}
}

func TestSegmentsDropsShortBlips(t *testing.T) {
	const w = 256
	samples := synth(30, w, [][2]int{{5, 6}}) // one window only
	segs := Segments(samples, SegmentConfig{Window: w, MinWindows: 2})
	if len(segs) != 0 {
		t.Errorf("one-window blip kept: %+v", segs)
	}
}

func TestSegmentsSilence(t *testing.T) {
	samples := synth(20, 256, nil)
	if segs := Segments(samples, SegmentConfig{}); len(segs) != 0 {
		t.Errorf("silence produced %d segments", len(segs))
	}
	if segs := Segments(nil, SegmentConfig{}); segs != nil {
		t.Error("nil input produced segments")
	}
}

func TestSegmentDuration(t *testing.T) {
	s := Segment{Start: 0, End: 2730}
	if got := s.Duration(2730); got != time.Second {
		t.Errorf("Duration = %v, want 1s", got)
	}
	if got := s.Duration(0); got != 0 {
		t.Errorf("zero-rate duration = %v", got)
	}
}

func TestSegmentsTrailingBurstClamped(t *testing.T) {
	const w = 256
	samples := synth(10, w, [][2]int{{7, 10}}) // runs to stream end
	segs := Segments(samples, SegmentConfig{Window: w})
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].End > len(samples) {
		t.Errorf("segment end %d beyond stream %d", segs[0].End, len(samples))
	}
}
