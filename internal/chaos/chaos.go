package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/core"
	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// Injector executes a Scenario against a running network. Create it with
// Install before the simulation runs (or mid-run from a scheduler
// callback); every fault fires as an ordinary scheduler event, so fault
// timing interleaves deterministically with protocol events.
type Injector struct {
	net *core.Network
	sc  *Scenario
	// rng seeds the injector's private randomness. Fault draws must not
	// perturb the protocol's random stream (the faulted run would diverge
	// from the fault-free run for unrelated reasons), and flash draws are
	// additionally per node — see flashRand — so draws made on different
	// shards never interleave on one stream.
	rng      *rand.Rand
	baseLoss float64
	log      []string
	// inv, when set, receives fault attributions (NoteCrash,
	// NotePartition, ...) as faults fire. Nil leaves faults unattributed.
	inv *Invariants
	// partEvents remembers each partition fault's chaos event ID so the
	// healing boundary can clear the stranding it caused.
	partEvents map[*Fault]int
}

// SetInvariants attaches the invariant checker for fault attribution:
// crashes report their flash-loss diff and mark the victim dead,
// reboots revive it, and partition windows strand side A — so the
// end-of-run checks (CheckSurvivability, Losses) can name the chaos
// event responsible for each loss. Call right after Install, before the
// run starts. The checker is only notified, never consulted: attribution
// changes no fault behavior and keeps runs byte-identical.
func (inj *Injector) SetInvariants(v *Invariants) { inj.inv = v }

// Install validates the scenario against the deployment and schedules
// every fault. The returned Injector is only for reporting (Log); the
// faults run on their own.
func Install(net *core.Network, sc *Scenario) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	n := len(net.Nodes)
	checkID := func(id int) error {
		if id < 0 || id >= n {
			return fmt.Errorf("chaos: node %d outside deployment [0,%d)", id, n)
		}
		return nil
	}
	for i := range sc.Faults {
		f := &sc.Faults[i]
		if f.Node >= 0 {
			if err := checkID(f.Node); err != nil {
				return nil, err
			}
		}
		for _, id := range f.A {
			if err := checkID(id); err != nil {
				return nil, err
			}
		}
		for _, id := range f.B {
			if err := checkID(id); err != nil {
				return nil, err
			}
		}
	}
	inj := &Injector{
		net:        net,
		sc:         sc,
		rng:        rand.New(rand.NewSource(sc.Seed ^ 0x63686173)), // "chas"
		baseLoss:   net.Radio.Config().LossProb,
		partEvents: make(map[*Fault]int),
	}
	for i := range sc.Faults {
		inj.schedule(&sc.Faults[i])
	}
	return inj, nil
}

// Log returns the applied-fault log: one line per fault boundary that
// fired, in fire order, with sim timestamps. Deterministic for a fixed
// (scenario, seed).
func (inj *Injector) Log() []string { return inj.log }

func (inj *Injector) logf(format string, args ...any) {
	inj.log = append(inj.log, fmt.Sprintf("%v %s", inj.net.Sched.Now(), fmt.Sprintf(format, args...)))
}

func (inj *Injector) schedule(f *Fault) {
	s := inj.net.Sched
	switch f.Kind {
	case KindCrash:
		s.At(sim.At(f.At), "chaos.crash", func() { inj.crash(f) })
	case KindReboot:
		s.At(sim.At(f.At), "chaos.reboot", func() { inj.reboot(f.Node) })
	case KindLoss:
		s.At(sim.At(f.From), "chaos.loss", func() {
			inj.net.Radio.SetLossProb(f.Prob)
			inj.logf("loss burst: prob=%v", f.Prob)
		})
		if f.To != 0 {
			s.At(sim.At(f.To), "chaos.loss.end", func() {
				inj.net.Radio.SetLossProb(inj.baseLoss)
				inj.logf("loss burst over: prob=%v", inj.baseLoss)
			})
		}
	case KindPartition:
		s.At(sim.At(f.From), "chaos.partition", func() { inj.setPartition(f, true) })
		if f.To != 0 {
			s.At(sim.At(f.To), "chaos.partition.end", func() { inj.setPartition(f, false) })
		}
	case KindFlash:
		s.At(sim.At(f.From), "chaos.flash", func() { inj.setFlashFaults(f, true) })
		if f.To != 0 {
			s.At(sim.At(f.To), "chaos.flash.end", func() { inj.setFlashFaults(f, false) })
		}
	case KindClockSkew:
		s.At(sim.At(f.At), "chaos.clockskew", func() {
			inj.net.Nodes[f.Node].Clock.Step(f.Step)
			inj.logf("clock skew: node=%d step=%v", f.Node, f.Step)
		})
	}
}

// crash kills the target node and simulates the flash power-loss path:
// the volatile queue pointers are lost and restored from the last EEPROM
// checkpoint, dropping chunks written since (deterministically — no
// randomness in what survives). The flash array itself survives for
// post-collection retrieval, per the paper's recoverability claim.
func (inj *Injector) crash(f *Fault) {
	id := f.Node
	if f.Target == TargetLeader {
		id = inj.findLeader()
		if id < 0 {
			// Leaders only exist while a group records, so "crash the
			// leader" arms at f.At and fires at the next instant one
			// exists. The poll rides the scheduler, so it is exactly as
			// deterministic as an immediate hit.
			if inj.net.Sched.Now() == sim.At(f.At) {
				inj.logf("crash leader: no active leader, polling")
			}
			inj.net.Sched.After(50*time.Millisecond, "chaos.crash.wait", func() { inj.crash(f) })
			return
		}
	}
	node := inj.net.Nodes[id]
	if !node.Mote.Alive() {
		inj.logf("crash node=%d: already dead, skipped", id)
		return
	}
	// Snapshot the holdings before the power loss so the attribution diff
	// can name exactly which chunks the checkpoint window dropped.
	var before []*flash.Chunk
	if inj.inv != nil {
		before = node.Mote.Store.Chunks()
	}
	inj.net.Kill(id)
	node.Mote.Store.Crash()
	recovered, err := node.Mote.Store.Recover()
	if err != nil {
		// NewStore checkpoints at construction, so this cannot happen.
		inj.logf("crash node=%d: flash recover failed: %v", id, err)
		return
	}
	if inj.inv != nil {
		kept := make(map[*flash.Chunk]bool, recovered)
		for _, c := range node.Mote.Store.Chunks() {
			kept[c] = true
		}
		var lost []*flash.Chunk
		for _, c := range before {
			if !kept[c] {
				lost = append(lost, c)
			}
		}
		inj.inv.NoteCrash(inj.net.Sched.Now(), id, lost)
	}
	inj.logf("crash: node=%d flash_recovered=%d", id, recovered)
}

func (inj *Injector) reboot(id int) {
	node := inj.net.Nodes[id]
	if node.Mote.Endpoint.Alive() {
		inj.logf("reboot node=%d: not dead, skipped", id)
		return
	}
	inj.net.Reboot(id)
	if inj.inv != nil {
		inj.inv.NoteRevive(id)
	}
	inj.logf("reboot: node=%d", id)
}

// findLeader returns the lowest-ID live node that currently leads a
// group, or -1.
func (inj *Injector) findLeader() int {
	for _, node := range inj.net.Nodes {
		if node.Group != nil && node.Mote.Alive() && node.Group.LeaderID() == node.ID {
			return node.ID
		}
	}
	return -1
}

func (inj *Injector) setPartition(f *Fault, on bool) {
	b := f.B
	if len(b) == 0 {
		inA := make(map[int]bool, len(f.A))
		for _, id := range f.A {
			inA[id] = true
		}
		for _, node := range inj.net.Nodes {
			if !inA[node.ID] {
				b = append(b, node.ID)
			}
		}
	}
	for _, a := range f.A {
		for _, bb := range b {
			inj.net.Radio.SetLinkBlocked(a, bb, on)
			if !f.OneWay {
				inj.net.Radio.SetLinkBlocked(bb, a, on)
			}
		}
	}
	if inj.inv != nil {
		if on {
			inj.partEvents[f] = inj.inv.NotePartition(inj.net.Sched.Now(), f.A)
		} else if ev, ok := inj.partEvents[f]; ok {
			inj.inv.NotePartitionHealed(ev)
			delete(inj.partEvents, f)
		}
	}
	verb := "partition"
	if !on {
		verb = "partition healed"
	}
	dir := "sym"
	if f.OneWay {
		dir = "a->b"
	}
	inj.logf("%s: a=%v b=%v dir=%s", verb, f.A, b, dir)
}

// flashRand derives the per-node stream backing one node's flash fault
// draws. A single injector-wide stream would make concurrent faults on
// nodes owned by different shards order-dependent; per-node streams keep
// every draw sequence a function of that node's own event order, which
// both engines replay identically.
func (inj *Injector) flashRand(node int) *rand.Rand {
	return rand.New(rand.NewSource(sim.NodeSeed(inj.sc.Seed^0x63686173, node)))
}

func (inj *Injector) setFlashFaults(f *Fault, on bool) {
	store := inj.net.Nodes[f.Node].Mote.Store
	if !on {
		store.SetWriteFault(nil)
		store.SetReadFault(nil)
		inj.logf("flash faults cleared: node=%d", f.Node)
		return
	}
	rng := inj.flashRand(f.Node)
	if f.WriteProb > 0 {
		p := f.WriteProb
		store.SetWriteFault(func() bool { return rng.Float64() < p })
	}
	if f.ReadProb > 0 {
		p := f.ReadProb
		store.SetReadFault(func() bool { return rng.Float64() < p })
	}
	inj.logf("flash faults: node=%d write=%v read=%v", f.Node, f.WriteProb, f.ReadProb)
}

// Leaders returns the IDs of live nodes currently leading groups, in
// ascending order (diagnostics for scenario authoring and tests).
func (inj *Injector) Leaders() []int {
	var out []int
	for _, node := range inj.net.Nodes {
		if node.Group != nil && node.Mote.Alive() && node.Group.LeaderID() == node.ID {
			out = append(out, node.ID)
		}
	}
	return out
}

// WindowCovers reports whether t falls inside the fault's active window
// ([From, To), or [From, ∞) when To is zero). Helper for tests asserting
// that induced effects stay inside fault windows.
func (f *Fault) WindowCovers(t sim.Time) bool {
	if t < sim.At(f.From) {
		return false
	}
	return f.To == 0 || t < sim.At(f.To)
}
