package chaos

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
)

// ev builds a synthetic trace event. Registration is idempotent, so the
// kind IDs match the ones the checker interned at construction.
func ev(kind string, at time.Duration, node, peer int32, file uint32, v1, v2 int64) obs.Event {
	return obs.Event{
		At: sim.At(at), Kind: obs.RegisterEvent(kind),
		Node: node, Peer: peer, File: file, V1: v1, V2: v2,
	}
}

func feed(inv *Invariants, events ...obs.Event) {
	for _, e := range events {
		inv.Emit(e)
	}
}

// wantOne asserts exactly one violation of the given rule with the given
// attribution and returns it.
func wantOne(t *testing.T, inv *Invariants, rule string, node int32, file uint32) Violation {
	t.Helper()
	vs := inv.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (%s): %v", len(vs), rule, vs)
	}
	v := vs[0]
	if v.Rule != rule {
		t.Fatalf("rule = %q, want %q", v.Rule, rule)
	}
	if v.Node != node {
		t.Fatalf("node = %d, want %d (%s)", v.Node, node, v.Detail)
	}
	if v.File != file {
		t.Fatalf("file = %#x, want %#x (%s)", v.File, file, v.Detail)
	}
	return v
}

func TestExclusiveRecorderSameLeaderOverlap(t *testing.T) {
	inv := NewInvariants(InvariantsConfig{})
	trc := int64(time.Second)
	feed(inv,
		ev("task.confirm", 0, 1, 2, 0x10, trc, 0),
		// Same leader confirms a second member 200 ms in: 800 ms of
		// double-booking, far beyond the 150 ms seamless-overlap excuse.
		ev("task.confirm", 200*time.Millisecond, 1, 3, 0x10, trc, 0),
	)
	wantOne(t, inv, RuleExclusiveRecorder, 3, 0x10)
}

func TestExclusiveRecorderLeaderChurnIsLegal(t *testing.T) {
	inv := NewInvariants(InvariantsConfig{})
	trc := int64(time.Second)
	feed(inv,
		ev("task.confirm", 0, 1, 2, 0x10, trc, 0),
		// A different leader (re-elected after lost beacons) overlapping
		// the old assignment is the paper's redundancy, not a violation.
		ev("task.confirm", 200*time.Millisecond, 9, 3, 0x10, trc, 0),
		// Different file from the same leader is likewise independent.
		ev("task.confirm", 300*time.Millisecond, 1, 4, 0x20, trc, 0),
	)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("leader churn / distinct files flagged: %v", vs)
	}
}

// TestExclusiveRecorderOverlapProperty: for any overlap between two
// same-leader confirms of one file, the checker flags exactly the cases
// beyond MaxOverlap, attributing the newly confirmed member.
func TestExclusiveRecorderOverlapProperty(t *testing.T) {
	maxOv := 150 * time.Millisecond
	prop := func(overlapMS uint16, member uint8) bool {
		overlap := time.Duration(overlapMS%400) * time.Millisecond
		inv := NewInvariants(InvariantsConfig{MaxOverlap: maxOv})
		trc := time.Second
		feed(inv,
			ev("task.confirm", 0, 1, 2, 0x10, int64(trc), 0),
			ev("task.confirm", trc-overlap, 1, int32(member)+3, 0x10, int64(trc), 0),
		)
		vs := inv.Violations()
		if overlap <= maxOv {
			return len(vs) == 0
		}
		return len(vs) == 1 &&
			vs[0].Rule == RuleExclusiveRecorder &&
			vs[0].Node == int32(member)+3 &&
			vs[0].File == 0x10
	}
	if err := quick.Check(prop, &quick.Config{
		Rand: rand.New(rand.NewSource(7)), MaxCount: 300,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderBusySelfOverlap(t *testing.T) {
	inv := NewInvariants(InvariantsConfig{})
	trc := int64(time.Second)
	feed(inv,
		ev("task.record.start", 0, 5, obs.NoPeer, 0xa, trc, 0),
		ev("task.record.start", 500*time.Millisecond, 5, obs.NoPeer, 0xb, trc, 0),
	)
	wantOne(t, inv, RuleRecorderBusy, 5, 0xb)
}

// TestRecorderBusyProperty: a node restarting after its previous task
// ended is clean; restarting while the previous task still runs is the
// ADC double-booking bug. Two distinct nodes never conflict.
func TestRecorderBusyProperty(t *testing.T) {
	prop := func(gapMS uint16, otherNode bool) bool {
		gap := time.Duration(gapMS%1500) * time.Millisecond
		inv := NewInvariants(InvariantsConfig{})
		trc := time.Second
		second := int32(5)
		if otherNode {
			second = 6
		}
		feed(inv,
			ev("task.record.start", 0, 5, obs.NoPeer, 0xa, int64(trc), 0),
			ev("task.record.end", trc, 5, obs.NoPeer, 0xa, 0, 0),
			ev("task.record.start", trc+gap, second, obs.NoPeer, 0xb, int64(trc), 0),
		)
		return len(inv.Violations()) == 0
	}
	if err := quick.Check(prop, &quick.Config{
		Rand: rand.New(rand.NewSource(11)), MaxCount: 300,
	}); err != nil {
		t.Fatal(err)
	}

	// Without the record.end the same restart inside the span must fire,
	// and on the recorded node.
	inv := NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("task.record.start", 0, 5, obs.NoPeer, 0xa, int64(time.Second), 0),
		ev("task.record.start", 900*time.Millisecond, 5, obs.NoPeer, 0xb, int64(time.Second), 0),
	)
	wantOne(t, inv, RuleRecorderBusy, 5, 0xb)
}

func TestFileContinuityAcrossHandoff(t *testing.T) {
	// Takeover election carrying file 0x30 must be won with 0x30.
	inv := NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("group.elect.backoff", 0, 4, obs.NoPeer, 0x30, 0, 0),
		ev("group.elect.won", 100*time.Millisecond, 4, obs.NoPeer, 0x31, 0, 0),
	)
	v := wantOne(t, inv, RuleFileContinuity, 4, 0x30)
	if !strings.Contains(v.Detail, "0x31") {
		t.Fatalf("detail misses the winning file: %s", v.Detail)
	}

	// Winning with the carried file is the contract.
	inv = NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("group.elect.backoff", 0, 4, obs.NoPeer, 0x30, 0, 0),
		ev("group.elect.won", 100*time.Millisecond, 4, obs.NoPeer, 0x30, 0, 0),
	)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("continuous handoff flagged: %v", vs)
	}

	// A lost election clears the carried file: the next, fresh election
	// may mint any ID.
	inv = NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("group.elect.backoff", 0, 4, obs.NoPeer, 0x30, 0, 0),
		ev("group.elect.lost", 50*time.Millisecond, 4, obs.NoPeer, 0x30, 0, 0),
		ev("group.elect.won", 10*time.Second, 4, obs.NoPeer, 0x99, 0, 0),
	)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("fresh election after a loss flagged: %v", vs)
	}

	// A fresh election (backoff with file 0) never constrains the winner.
	inv = NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("group.elect.won", time.Second, 4, obs.NoPeer, 0x77, 0, 0),
	)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("unconstrained win flagged: %v", vs)
	}
}

func TestMigrationConservation(t *testing.T) {
	migrate := func(sent, accepted, acked, failed int64) *Invariants {
		inv := NewInvariants(InvariantsConfig{})
		inv.Emit(ev("storage.migrate.start", 0, 1, 2, 0, sent, 0))
		for i := int64(0); i < accepted; i++ {
			inv.Emit(ev("storage.migrate.in", time.Duration(i)*time.Millisecond, 2, 1, 0x10, 1, i))
		}
		inv.Emit(ev("storage.migrate.out", time.Second, 1, 2, 0, acked, failed))
		return inv
	}

	if vs := migrate(5, 5, 5, 0).Violations(); len(vs) != 0 {
		t.Fatalf("clean session flagged: %v", vs)
	}
	// ACK lost after the receiver stored: accepted > acked duplicates the
	// chunk, which retrieval dedups — legal.
	if vs := migrate(5, 5, 4, 1).Violations(); len(vs) != 0 {
		t.Fatalf("ACK-loss duplication flagged: %v", vs)
	}
	// Data vanished: sender deleted 5, receiver stored 3.
	wantOne(t, migrate(5, 3, 5, 0), RuleMigrationConservation, 1, 0)
	// Miscounted batch.
	wantOne(t, migrate(5, 5, 3, 1), RuleMigrationConservation, 1, 0)

	// Overlapping sessions per sender.
	inv := NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("storage.migrate.start", 0, 1, 2, 0, 4, 0),
		ev("storage.migrate.start", time.Second, 1, 3, 0, 4, 0),
	)
	wantOne(t, inv, RuleMigrationConservation, 1, 0)

	// Abort returns the full batch — or it leaked chunks.
	inv = NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("storage.migrate.start", 0, 1, 2, 0, 4, 0),
		ev("storage.migrate.fail", time.Second, 1, 2, 0, 4, 0),
	)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("full-batch abort flagged: %v", vs)
	}
	inv = NewInvariants(InvariantsConfig{})
	feed(inv,
		ev("storage.migrate.start", 0, 1, 2, 0, 4, 0),
		ev("storage.migrate.fail", time.Second, 1, 2, 0, 3, 0),
	)
	wantOne(t, inv, RuleMigrationConservation, 1, 0)

	// A late bulk retransmission landing after the session closed is
	// ignored, not treated as a phantom session.
	inv = NewInvariants(InvariantsConfig{})
	inv.Emit(ev("storage.migrate.in", time.Second, 2, 1, 0x10, 1, 0))
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("late migrate.in flagged: %v", vs)
	}
}

// mkChunk builds a metadata-only chunk for holdings checks.
func mkChunk(file flash.FileID, origin int32, seq uint32, start, end time.Duration) *flash.Chunk {
	c := flash.NewChunk()
	c.File, c.Origin, c.Seq = file, origin, seq
	c.Start, c.End = sim.At(start), sim.At(end)
	return c
}

// TestCheckHoldingsProperty: retrieval over any consistent holdings —
// random files, random replication across holders, random recording
// holes — reassembles the exact deduplicated union with truthful gaps,
// so the completeness rule stays silent. (It exists to catch retrieval
// regressions; there is no way to fabricate a violating stream through
// the public API, which is the point.)
func TestCheckHoldingsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		holdings := make(map[int][]*flash.Chunk)
		for f := 1; f <= 3; f++ {
			origin := int32(rng.Intn(4))
			for seq := uint32(0); seq < 20; seq++ {
				if rng.Intn(5) == 0 {
					continue // recording hole -> a real, declared gap
				}
				start := time.Duration(seq) * 100 * time.Millisecond
				c := mkChunk(flash.FileID(f)<<16, origin, seq, start, start+100*time.Millisecond)
				holder := rng.Intn(4)
				holdings[holder] = append(holdings[holder], c)
				if rng.Intn(4) == 0 { // replicated copy on another holder
					holdings[(holder+1)%4] = append(holdings[(holder+1)%4], c.Clone())
				}
			}
		}
		inv := NewInvariants(InvariantsConfig{})
		inv.CheckHoldings(sim.At(time.Hour), holdings, 150*time.Millisecond)
		return len(inv.Violations()) == 0
	}
	if err := quick.Check(prop, &quick.Config{
		Rand: rand.New(rand.NewSource(23)), MaxCount: 50,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReportIsDeterministic(t *testing.T) {
	run := func() string {
		inv := NewInvariants(InvariantsConfig{})
		feed(inv,
			ev("task.confirm", 0, 1, 2, 0x10, int64(time.Second), 0),
			ev("task.confirm", 200*time.Millisecond, 1, 3, 0x10, int64(time.Second), 0),
			ev("group.elect.backoff", time.Second, 4, obs.NoPeer, 0x30, 0, 0),
			ev("group.elect.won", 2*time.Second, 4, obs.NoPeer, 0x31, 0, 0),
		)
		return inv.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("reports diverge:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "2 violation(s)") {
		t.Fatalf("report misses the violation count:\n%s", a)
	}
}

func TestViolationCapCounts(t *testing.T) {
	inv := NewInvariants(InvariantsConfig{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		feed(inv,
			ev("group.elect.backoff", time.Duration(i)*time.Second, int32(i), obs.NoPeer, 0x30, 0, 0),
			ev("group.elect.won", time.Duration(i)*time.Second+time.Millisecond, int32(i), obs.NoPeer, 0x31, 0, 0),
		)
	}
	if got := len(inv.Violations()); got != 2 {
		t.Fatalf("recorded %d violations, cap is 2", got)
	}
	if !strings.Contains(inv.Report(), "5 violation(s)") {
		t.Fatalf("report lost the dropped count:\n%s", inv.Report())
	}
}
