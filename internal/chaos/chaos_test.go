package chaos_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/experiments"
	"enviromic/internal/mote"
	"enviromic/internal/sim"
)

var lbSetting = experiments.IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2}

// netSignature folds a run's observable outcome — headline metrics,
// radio accounting, and per-node flash occupancy — into one comparison
// string. Two byte-identical runs produce equal signatures.
func netSignature(net *core.Network, duration time.Duration) string {
	end := sim.At(duration)
	var b strings.Builder
	st := net.Radio.Stats()
	fmt.Fprintf(&b, "miss=%v red=%v stored=%d frames=%d kinds=%v part=%d\n",
		net.Collector.MissRatioAt(end),
		net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate),
		net.TotalStoredBytes(),
		st.TotalFrames,
		st.TxByKind,
		st.DroppedPartition)
	for _, node := range net.Nodes {
		fmt.Fprintf(&b, "n%d=%d ", node.ID, node.Mote.Store.BytesUsed())
	}
	return b.String()
}

// chaosSignature additionally covers the fault log and invariant report,
// which the determinism criterion requires to be bit-reproducible too.
func chaosSignature(res experiments.ChaosIndoorResult, duration time.Duration) string {
	sig := netSignature(res.Net, duration)
	if res.Injector != nil {
		sig += "\n" + strings.Join(res.Injector.Log(), "\n")
	}
	return sig + "\n" + res.Checker.Report()
}

// TestLeaderCrashMidFilePreservesContinuity is the acceptance scenario:
// crash the active leader mid-file; the takeover election must keep the
// file ID continuous and no invariant may break.
func TestLeaderCrashMidFilePreservesContinuity(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "leader-crash",
		Seed: 7,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 45 * time.Second, Node: -1, Target: chaos.TargetLeader},
		},
	}
	opts := experiments.QuickIndoorOpts()
	res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	log := strings.Join(res.Injector.Log(), "\n")
	if !strings.Contains(log, "crash: node=") {
		t.Fatalf("the leader crash never fired:\n%s", log)
	}
	if res.Checker.Events() == 0 {
		t.Fatal("invariant checker saw no events; the run is vacuous")
	}
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("leader crash broke invariants:\n%s", res.Checker.Report())
	}
	// Exactly one node must be down, and it must be the crashed one.
	var dead []int
	for _, node := range res.Net.Nodes {
		if !node.Mote.Alive() {
			dead = append(dead, node.ID)
		}
	}
	if len(dead) != 1 {
		t.Fatalf("dead nodes after one crash: %v", dead)
	}
	if want := fmt.Sprintf("crash: node=%d", dead[0]); !strings.Contains(log, want) {
		t.Fatalf("dead node %d does not match the log:\n%s", dead[0], log)
	}
}

// TestPermanentPartitionReportsOnlyInducedGaps: a permanent partition
// may cost coverage (the declared retrieval gaps), but it must not break
// any protocol invariant — migration conservation and file continuity
// hold on both sides of the cut.
func TestPermanentPartitionReportsOnlyInducedGaps(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "split",
		Seed: 7,
		Faults: []chaos.Fault{
			{Kind: chaos.KindPartition, From: 2 * time.Minute, Node: -1,
				A: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		},
	}
	opts := experiments.QuickIndoorOpts()
	res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Net.Radio.Stats().DroppedPartition; got == 0 {
		t.Fatal("the partition cut no frames; scenario is vacuous")
	}
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("partition produced violations beyond its induced gaps:\n%s", res.Checker.Report())
	}
}

// TestChaosRunsAreDeterministic: the same (scenario, seed) pair replayed
// twice yields a byte-identical outcome — metrics, fault log, and
// invariant report.
func TestChaosRunsAreDeterministic(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "mixed",
		Seed: 3,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 90 * time.Second, Node: 10},
			{Kind: chaos.KindReboot, At: 4 * time.Minute, Node: 10},
			{Kind: chaos.KindLoss, From: 2 * time.Minute, To: 3 * time.Minute, Prob: 0.2, Node: -1},
			{Kind: chaos.KindFlash, From: time.Minute, To: 5 * time.Minute, Node: 3, WriteProb: 0.3},
			{Kind: chaos.KindClockSkew, At: 2 * time.Minute, Node: 5, Step: 40 * time.Millisecond},
		},
	}
	opts := experiments.QuickIndoorOpts()
	run := func() string {
		res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return chaosSignature(res, opts.Duration)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("chaos runs diverge under a fixed (scenario, seed):\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestChaosOffIsByteIdenticalToPlainRun mirrors the tracing guarantee:
// attaching the invariant checker with no scenario installed changes
// nothing about the run.
func TestChaosOffIsByteIdenticalToPlainRun(t *testing.T) {
	opts := experiments.QuickIndoorOpts()
	plain := experiments.RunIndoor(lbSetting, opts)

	res, err := experiments.RunIndoorChaos(lbSetting, experiments.QuickIndoorOpts(), nil, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checker.Events() == 0 {
		t.Fatal("checker attached but saw no events")
	}
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("fault-free run violates invariants:\n%s", res.Checker.Report())
	}
	a, b := netSignature(plain, opts.Duration), netSignature(res.Net, opts.Duration)
	if a != b {
		t.Fatalf("checker-attached run diverged from the plain run:\n--- plain ---\n%s\n--- checked ---\n%s", a, b)
	}
}

// TestChaosUnderShardsMatchesSerial extends the determinism criterion to
// the sharded engine: with faults firing on nodes that land in different
// shards, the network outcome must equal the serial run's, a sharded
// replay must be fully byte-identical (fault log and invariant report
// included), and no invariant may break.
//
// The serial-vs-sharded comparison uses netSignature rather than the full
// chaosSignature: the network state is bit-identical by contract, but
// same-instant log lines from different nodes may interleave differently
// between the two engines (see core.Config.Shards).
func TestChaosUnderShardsMatchesSerial(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "sharded-mixed",
		Seed: 3,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 90 * time.Second, Node: 10},
			{Kind: chaos.KindReboot, At: 4 * time.Minute, Node: 10},
			{Kind: chaos.KindLoss, From: 2 * time.Minute, To: 3 * time.Minute, Prob: 0.2, Node: -1},
			{Kind: chaos.KindFlash, From: time.Minute, To: 5 * time.Minute, Node: 3, WriteProb: 0.3},
			{Kind: chaos.KindFlash, From: time.Minute, To: 5 * time.Minute, Node: 27, WriteProb: 0.3},
			{Kind: chaos.KindClockSkew, At: 2 * time.Minute, Node: 5, Step: 40 * time.Millisecond},
		},
	}
	run := func(shards int) experiments.ChaosIndoorResult {
		opts := experiments.QuickIndoorOpts()
		opts.Shards = shards
		res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	duration := experiments.QuickIndoorOpts().Duration

	serial := netSignature(run(1).Net, duration)
	shardedA, shardedB := run(4), run(4)
	if vs := shardedA.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("sharded chaos run violates invariants:\n%s", shardedA.Checker.Report())
	}
	if got := netSignature(shardedA.Net, duration); got != serial {
		t.Fatalf("sharded chaos outcome diverged from serial:\n--- serial ---\n%s\n--- shards=4 ---\n%s", serial, got)
	}
	a, b := chaosSignature(shardedA, duration), chaosSignature(shardedB, duration)
	if a != b {
		t.Fatalf("sharded chaos replay is not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestCrashRebootRoundTrip: a crashed node rejoins on reboot with its
// flash contents intact (modulo the checkpoint window) and the network
// keeps all invariants through both transitions.
func TestCrashRebootRoundTrip(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "bounce",
		Seed: 1,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 2 * time.Minute, Node: 20},
			{Kind: chaos.KindReboot, At: 5 * time.Minute, Node: 20},
		},
	}
	opts := experiments.QuickIndoorOpts()
	res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("crash/reboot broke invariants:\n%s", res.Checker.Report())
	}
	if !res.Net.Nodes[20].Mote.Alive() {
		t.Fatal("node 20 still dead after its scheduled reboot")
	}
	log := strings.Join(res.Injector.Log(), "\n")
	for _, want := range []string{"crash: node=20", "reboot: node=20"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log misses %q:\n%s", want, log)
		}
	}
}
