package chaos_test

import (
	"strings"
	"testing"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/erasure"
	"enviromic/internal/experiments"
	"enviromic/internal/flash"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
)

// disperseEvents replays a synthetic storage.disperse.* stream into a
// fresh checker: one (n=4, k=2) group recorded by node 1, fragment 1
// dispersed to node 5, parity fragment 2 to node 6, fragment 0 still at
// the recorder and parity fragment 3 never dispersed.
func disperseChecker(t *testing.T) *chaos.Invariants {
	t.Helper()
	inv := chaos.NewInvariants(chaos.InvariantsConfig{})
	start := obs.RegisterEvent("storage.disperse.start")
	out := obs.RegisterEvent("storage.disperse.out")
	const file, firstSeq, count, n, k = 2, 8, 4, 4, 2
	inv.Emit(obs.Event{At: sim.At(time.Second), Kind: start, Node: 1, Peer: obs.NoPeer,
		File: file, V1: firstSeq, V2: count<<16 | n<<8 | k})
	inv.Emit(obs.Event{At: sim.At(2 * time.Second), Kind: out, Node: 1, Peer: 5,
		File: file, V1: firstSeq, V2: 1})
	inv.Emit(obs.Event{At: sim.At(3 * time.Second), Kind: out, Node: 1, Peer: 6,
		File: file, V1: firstSeq, V2: 2})
	return inv
}

func alwaysAlive(int) bool { return true }

// TestSurvivabilityCleanWhileKFragmentsLive: with holders {1, 5, 6} all
// up, the k-of-n rule must stay silent, and it must keep staying silent
// while at most n−k fragments are unreachable.
func TestSurvivabilityCleanWhileKFragmentsLive(t *testing.T) {
	inv := disperseChecker(t)
	inv.CheckSurvivability(sim.At(time.Minute), alwaysAlive)
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("healthy group flagged: %v", vs)
	}

	// One crashed holder still leaves k=2 fragments (nodes 1 and 6).
	inv = disperseChecker(t)
	inv.NoteCrash(sim.At(30*time.Second), 5, nil)
	inv.CheckSurvivability(sim.At(time.Minute), func(id int) bool { return id != 5 })
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("n-k tolerable loss flagged: %v", vs)
	}
}

// TestSurvivabilityAttributesCrashes: losing both dispersed holders
// drops the group below k; the violation must name both crash events in
// fire order.
func TestSurvivabilityAttributesCrashes(t *testing.T) {
	inv := disperseChecker(t)
	if ev := inv.NoteCrash(sim.At(20*time.Second), 5, nil); ev != 1 {
		t.Fatalf("first chaos event id = %d, want 1", ev)
	}
	if ev := inv.NoteCrash(sim.At(40*time.Second), 6, nil); ev != 2 {
		t.Fatalf("second chaos event id = %d, want 2", ev)
	}
	dead := map[int]bool{5: true, 6: true}
	inv.CheckSurvivability(sim.At(time.Minute), func(id int) bool { return !dead[id] })
	vs := inv.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	v := vs[0]
	if v.Rule != chaos.RuleSurvivability || v.Node != 1 || v.File != 2 {
		t.Fatalf("violation misidentifies the group: %+v", v)
	}
	for _, want := range []string{"crash#1(node 5)", "crash#2(node 6)", "1/4 fragment(s) live", "need k=2"} {
		if !strings.Contains(v.Detail, want) {
			t.Fatalf("violation detail misses %q: %s", want, v.Detail)
		}
	}
}

// TestSurvivabilityAttributesPartitions: holders stranded behind an
// active partition are unreachable; the violation names the partition
// event, and healing the partition clears the stranding.
func TestSurvivabilityAttributesPartitions(t *testing.T) {
	inv := disperseChecker(t)
	ev := inv.NotePartition(sim.At(10*time.Second), []int{1, 5})
	inv.CheckSurvivability(sim.At(time.Minute), alwaysAlive)
	vs := inv.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	want := "partition#1(node 1), partition#1(node 5)"
	if ev != 1 || !strings.Contains(vs[0].Detail, want) {
		t.Fatalf("partition attribution (event %d) missing %q: %s", ev, want, vs[0].Detail)
	}

	healed := disperseChecker(t)
	healed.NotePartitionHealed(healed.NotePartition(sim.At(10*time.Second), []int{1, 5}))
	healed.CheckSurvivability(sim.At(time.Minute), alwaysAlive)
	if vs := healed.Violations(); len(vs) != 0 {
		t.Fatalf("healed partition still strands holders: %v", vs)
	}
}

// TestNoteCrashAttributesLosses: checkpoint-window chunks handed to
// NoteCrash become per-file Loss records carrying the event id, sorted
// by file within the event, and surface in the report without turning
// into violations.
func TestNoteCrashAttributesLosses(t *testing.T) {
	inv := chaos.NewInvariants(chaos.InvariantsConfig{})
	lost := []*flash.Chunk{
		{File: 3, Origin: 7, Seq: 0},
		{File: 1, Origin: 7, Seq: 4},
		{File: 3, Origin: 7, Seq: 1},
		{File: 1 | erasure.ParityFileBit, Origin: 7, Seq: 300},
	}
	ev := inv.NoteCrash(sim.At(90*time.Second), 7, lost)
	losses := inv.Losses()
	if len(losses) != 3 {
		t.Fatalf("losses = %v, want 3 per-file records", losses)
	}
	wantFiles := []flash.FileID{1, 3, 1 | erasure.ParityFileBit}
	wantChunks := []int{1, 2, 1}
	for i, l := range losses {
		if l.Event != ev || l.Kind != chaos.KindCrash || l.Node != 7 ||
			l.File != wantFiles[i] || l.Chunks != wantChunks[i] {
			t.Fatalf("loss %d = %+v, want event=%d file=%#x chunks=%d",
				i, l, ev, wantFiles[i], wantChunks[i])
		}
	}
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("checkpoint-window loss is modeled hardware behavior, not a violation: %v", vs)
	}
	rep := inv.Report()
	for _, want := range []string{"invariants: OK", "chaos losses: 3 attributed record(s)", "crash#1 node=7 file=0x3: 2 chunk(s) lost"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report misses %q:\n%s", want, rep)
		}
	}
}

// TestRevivedHolderCountsLiveAgain: a crash followed by a reboot
// restores the holder (flash survives power loss), so the group regains
// its fragment.
func TestRevivedHolderCountsLiveAgain(t *testing.T) {
	inv := disperseChecker(t)
	inv.NoteCrash(sim.At(20*time.Second), 5, nil)
	inv.NoteCrash(sim.At(30*time.Second), 6, nil)
	inv.NoteRevive(5)
	inv.CheckSurvivability(sim.At(time.Minute), func(id int) bool { return id != 6 })
	if vs := inv.Violations(); len(vs) != 0 {
		t.Fatalf("revived holder not counted live: %v", vs)
	}
}

// TestInjectorAttributesCrashLosses runs a real crash scenario and
// checks the injector-side wiring: every flash chunk the power loss
// dropped shows up as a Loss attributed to a crash event, matching the
// victim named in the fault log.
func TestInjectorAttributesCrashLosses(t *testing.T) {
	sc := &chaos.Scenario{
		Name: "loss-attribution",
		Seed: 7,
		Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 45 * time.Second, Node: -1, Target: chaos.TargetLeader},
			{Kind: chaos.KindCrash, At: 2 * time.Minute, Node: -1, Target: chaos.TargetLeader},
		},
	}
	opts := experiments.QuickIndoorOpts()
	res, err := experiments.RunIndoorChaos(lbSetting, opts, sc, chaos.InvariantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := res.Checker.Violations(); len(vs) != 0 {
		t.Fatalf("crash scenario broke invariants:\n%s", res.Checker.Report())
	}
	var victims []int
	for _, node := range res.Net.Nodes {
		if !node.Mote.Alive() {
			victims = append(victims, node.ID)
		}
	}
	if len(victims) == 0 {
		t.Fatal("no crash landed; scenario is vacuous")
	}
	allowed := make(map[int32]bool)
	for _, id := range victims {
		allowed[int32(id)] = true
	}
	for _, l := range res.Checker.Losses() {
		if l.Kind != chaos.KindCrash || l.Event < 1 || l.Event > len(victims) {
			t.Fatalf("loss with bad attribution: %+v", l)
		}
		if !allowed[l.Node] {
			t.Fatalf("loss attributed to node %d, which never crashed (victims %v)", l.Node, victims)
		}
		if l.Chunks <= 0 {
			t.Fatalf("empty loss record: %+v", l)
		}
	}
}
