package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/obs"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

// Invariant rule names (Violation.Rule).
const (
	// RuleExclusiveRecorder: at any instant, one leader keeps at most
	// Copies members holding a confirmed recording task for one file
	// (§II-A.2). The designed Dta overlap between consecutive tasks of
	// one file (Fig 4's seamless recording) is excused up to MaxOverlap.
	// Confirms from *different* leaders may overlap: lost leader beacons
	// force a re-election whose new leader assigns while the old task
	// still runs — the paper counts that as redundancy, not a bug.
	RuleExclusiveRecorder = "exclusive-recorder"
	// RuleRecorderBusy: one node never records two tasks at once — the
	// ADC cannot sample two streams (§III-B.1).
	RuleRecorderBusy = "recorder-busy"
	// RuleFileContinuity: a node that enters an election carrying a
	// handoff file ID (RESIGN, or leader-death takeover) must win with
	// exactly that ID — file IDs stay continuous across handoff (§II-A.3).
	RuleFileContinuity = "file-continuity"
	// RuleMigrationConservation: a migration session's chunks are neither
	// silently lost (acked beyond what the receiver accepted) nor
	// miscounted (acked + failed ≠ sent); sessions never overlap per
	// sender (§II-B). ACK-loss duplication is legal and not flagged —
	// the paper observes it as incidental redundancy.
	RuleMigrationConservation = "migration-conservation"
	// RuleRetrievalComplete: reassembled retrieval output equals the
	// union of surviving stored chunks — nothing lost, nothing invented,
	// and declared gaps really are uncovered (§II-C).
	RuleRetrievalComplete = "retrieval-complete"
	// RuleSurvivability: every dispersal group announced by a
	// storage.disperse.start event (storage.ModeDisperse) must keep at
	// least k of its n erasure fragments on holders that are alive and
	// not stranded behind an active partition — k is the decode
	// threshold, so fewer means the group is unrecoverable over the
	// radio. Checked on demand by CheckSurvivability; the violation
	// names the chaos events (crash/partition) responsible for the
	// missing holders.
	RuleSurvivability = "k-of-n-survivability"
)

// Loss is data destroyed or stranded by a chaos fault, attributed to the
// sequential chaos event that caused it. Crash losses are the chunks the
// victim's flash dropped on power loss (written after the last EEPROM
// checkpoint); they are recorded as attributed losses rather than
// violations because losing that window is the modeled hardware
// behavior, not a protocol bug.
type Loss struct {
	At sim.Time
	// Event is the sequential chaos event ID assigned in fire order
	// (shared across fault kinds, starting at 1).
	Event int
	// Kind is the fault kind (KindCrash, KindPartition).
	Kind string
	// Node is the fault's victim (the crashed holder).
	Node int32
	// File is the affected file; parity carrier files keep their
	// erasure.ParityFileBit so fragment losses are distinguishable.
	File flash.FileID
	// Chunks is how many of the file's chunks this event destroyed.
	Chunks int
}

// String implements fmt.Stringer.
func (l Loss) String() string {
	return fmt.Sprintf("%v %s#%d node=%d file=%#x: %d chunk(s) lost",
		l.At, l.Kind, l.Event, l.Node, l.File, l.Chunks)
}

// Violation is one detected invariant breach.
type Violation struct {
	At     sim.Time
	Rule   string
	Node   int32
	File   uint32
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%v %s node=%d file=%#x: %s", v.At, v.Rule, v.Node, v.File, v.Detail)
}

// InvariantsConfig tunes the checker's tolerances.
type InvariantsConfig struct {
	// Copies is the task layer's controlled-redundancy degree: how many
	// members may legitimately hold a confirmed task for one file at
	// once. Defaults to 1 (the paper's base protocol).
	Copies int
	// MaxOverlap excuses the designed overlap between consecutive
	// confirmed tasks of one file: the next task is assigned ~Dta before
	// the current one ends so recording is seamless (Fig 4). Defaults to
	// 150 ms (Dta is 70 ms, confirm timeout 60 ms).
	MaxOverlap time.Duration
	// MaxViolations caps the recorded list; further breaches only bump a
	// counter. Defaults to 256.
	MaxViolations int
}

// Invariants is an obs.Sink that checks protocol invariants on the live
// event stream. It is a pure observer: wiring it into a run's tracer
// changes no protocol behavior, draws no randomness, and schedules no
// events — the run stays byte-identical (asserted by tests).
//
// The checker needs the task.*, group.elect.*, group.handoff, and
// storage.migrate.* event kinds to reach it; a tracer filter that drops
// them blinds the corresponding rules.
type Invariants struct {
	mu  sync.Mutex
	cfg InvariantsConfig

	violations []Violation
	dropped    int
	events     uint64

	// confirmed holds, per file, the currently confirmed recording spans.
	confirmed map[uint32][]confirmSpan
	// recording holds, per node, the active recording span.
	recording map[int32]recordSpan
	// pending holds, per node, the file ID the node carried into its
	// current election (0 = none).
	pending map[int32]uint32
	// sessions holds, per sender, the open migration session.
	sessions map[int32]*migSession
	// groups tracks dispersal groups from storage.disperse.* events:
	// which node currently holds each of a group's n fragments.
	groups map[disperseKey]*disperseGroup
	// deadBy maps a node ID to the chaos crash event that killed it
	// (cleared by NoteRevive).
	deadBy map[int]int
	// strandedBy maps a node ID to the active partition event isolating
	// it (cleared by NotePartitionHealed).
	strandedBy map[int]int
	// losses are the attributed chaos losses, in fire order.
	losses []Loss
	// nextEvent is the sequential chaos event counter.
	nextEvent int

	// Interned event IDs, resolved once at construction (registration is
	// idempotent, so these match the emitting modules' IDs).
	idConfirm, idRecStart, idRecEnd          obs.EventID
	idBackoff, idWon, idLost                 obs.EventID
	idMigStart, idMigOut, idMigFail, idMigIn obs.EventID
	idDispStart, idDispOut                   obs.EventID
}

// disperseKey identifies one dispersal group network-wide: groups are
// unique per (recorder, file, first sequence number).
type disperseKey struct {
	node     int32
	file     uint32
	firstSeq uint32
}

// disperseGroup is the tracked fragment-holder state of one group.
// holders[i] is the node currently holding fragment i, or -1 for a
// parity fragment that was never dispersed (it exists nowhere: parity is
// materialized only for the wire). Data fragments [0,k) start at the
// recorder and move to their target on disperse.out; a disperse.fail
// leaves them at the recorder, which keeps the originals.
type disperseGroup struct {
	count   uint32
	n, k    int
	holders []int
}

type confirmSpan struct {
	leader     int32
	member     int32
	start, end sim.Time
}

type recordSpan struct {
	file uint32
	end  sim.Time
}

type migSession struct {
	at       sim.Time
	to       int32
	sent     int64
	accepted int64
}

// NewInvariants builds a checker. Use obs.New(inv) (or tee it with other
// sinks) to wire it into a network's tracer.
func NewInvariants(cfg InvariantsConfig) *Invariants {
	if cfg.Copies <= 0 {
		cfg.Copies = 1
	}
	if cfg.MaxOverlap == 0 {
		cfg.MaxOverlap = 150 * time.Millisecond
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 256
	}
	return &Invariants{
		cfg:         cfg,
		confirmed:   make(map[uint32][]confirmSpan),
		recording:   make(map[int32]recordSpan),
		pending:     make(map[int32]uint32),
		sessions:    make(map[int32]*migSession),
		groups:      make(map[disperseKey]*disperseGroup),
		deadBy:      make(map[int]int),
		strandedBy:  make(map[int]int),
		idConfirm:   obs.RegisterEvent("task.confirm"),
		idRecStart:  obs.RegisterEvent("task.record.start"),
		idRecEnd:    obs.RegisterEvent("task.record.end"),
		idBackoff:   obs.RegisterEvent("group.elect.backoff"),
		idWon:       obs.RegisterEvent("group.elect.won"),
		idLost:      obs.RegisterEvent("group.elect.lost"),
		idMigStart:  obs.RegisterEvent("storage.migrate.start"),
		idMigOut:    obs.RegisterEvent("storage.migrate.out"),
		idMigFail:   obs.RegisterEvent("storage.migrate.fail"),
		idMigIn:     obs.RegisterEvent("storage.migrate.in"),
		idDispStart: obs.RegisterEvent("storage.disperse.start"),
		idDispOut:   obs.RegisterEvent("storage.disperse.out"),
	}
}

func (v *Invariants) violate(at sim.Time, rule string, node int32, file uint32, format string, args ...any) {
	if len(v.violations) >= v.cfg.MaxViolations {
		v.dropped++
		return
	}
	v.violations = append(v.violations, Violation{
		At: at, Rule: rule, Node: node, File: file, Detail: fmt.Sprintf(format, args...),
	})
}

// Emit implements obs.Sink.
func (v *Invariants) Emit(e obs.Event) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.events++
	switch e.Kind {
	case v.idConfirm:
		v.onConfirm(e)
	case v.idRecStart:
		v.onRecordStart(e)
	case v.idRecEnd:
		delete(v.recording, e.Node)
	case v.idBackoff:
		if e.File != 0 {
			v.pending[e.Node] = e.File
		}
	case v.idWon:
		if want := v.pending[e.Node]; want != 0 && want != e.File {
			v.violate(e.At, RuleFileContinuity, e.Node, want,
				"election won with file %#x, handoff carried %#x", e.File, want)
		}
		delete(v.pending, e.Node)
	case v.idLost:
		delete(v.pending, e.Node)
	case v.idMigStart:
		v.onMigrateStart(e)
	case v.idMigIn:
		if s := v.sessions[e.Peer]; s != nil && s.to == e.Node {
			s.accepted++
		}
		// A migrate.in outside any open session is a late bulk
		// retransmission landing after the sender closed — legal.
	case v.idMigOut:
		v.onMigrateOut(e)
	case v.idMigFail:
		if s := v.sessions[e.Node]; s != nil {
			if e.V1 != s.sent {
				v.violate(e.At, RuleMigrationConservation, e.Node, 0,
					"aborted session to %d returned %d chunks, sent %d", s.to, e.V1, s.sent)
			}
			delete(v.sessions, e.Node)
		}
	case v.idDispStart:
		v.onDisperseStart(e)
	case v.idDispOut:
		// A full-fragment ack moved fragment V2 to the target; the sender
		// dropped its originals (data) or never kept any (parity).
		if g := v.groups[disperseKey{e.Node, e.File, uint32(e.V1)}]; g != nil {
			if idx := int(e.V2); idx >= 0 && idx < len(g.holders) {
				g.holders[idx] = int(e.Peer)
			}
		}
		// disperse.fail needs no handling: data fragments stay at the
		// recorder (the start default) and parity stays nowhere.
	}
}

// onDisperseStart registers a dispersal group. V1 carries the first
// sequence number; V2 packs count<<16 | n<<8 | k (the storage package's
// wire encoding for the start event).
func (v *Invariants) onDisperseStart(e obs.Event) {
	n := int(e.V2>>8) & 0xff
	k := int(e.V2) & 0xff
	if n <= 0 || k <= 0 || k > n {
		return
	}
	g := &disperseGroup{count: uint32(e.V2 >> 16), n: n, k: k, holders: make([]int, n)}
	for i := range g.holders {
		if i < k {
			g.holders[i] = int(e.Node)
		} else {
			g.holders[i] = -1
		}
	}
	v.groups[disperseKey{e.Node, e.File, uint32(e.V1)}] = g
}

// onConfirm checks recorder exclusivity (§II-A.2): a leader structures
// assignment as one confirmed member per round, so at any instant at most
// Copies of *its* confirmed spans may cover one file — beyond the
// designed Dta overlap that makes consecutive tasks seamless (Fig 4).
// Spans confirmed by other leaders are ignored: leader churn (lost
// beacons, handoff) legitimately overlaps old and new assignments.
func (v *Invariants) onConfirm(e obs.Event) {
	spans := v.confirmed[e.File]
	// Prune spans that ended before the new task starts (keeps the list
	// at O(Copies) entries per file).
	live := spans[:0]
	overlapping := 0
	for _, s := range spans {
		if s.end <= e.At {
			continue
		}
		live = append(live, s)
		if s.leader == e.Node && s.end.Sub(e.At) > v.cfg.MaxOverlap {
			overlapping++
		}
	}
	if overlapping >= v.cfg.Copies {
		v.violate(e.At, RuleExclusiveRecorder, e.Peer, e.File,
			"confirm for member %d overlaps %d task(s) confirmed by the same leader %d beyond %v",
			e.Peer, overlapping, e.Node, v.cfg.MaxOverlap)
	}
	v.confirmed[e.File] = append(live, confirmSpan{
		leader: e.Node, member: e.Peer, start: e.At, end: e.At.Add(time.Duration(e.V1)),
	})
}

// onRecordStart checks per-node recording exclusivity: the mote's ADC
// records one stream at a time (§III-B.1). Unlike cross-node duplicate
// recording — which lost CONFIRMs legitimately cause and the paper counts
// as redundancy — one node overlapping itself is a protocol bug.
func (v *Invariants) onRecordStart(e obs.Event) {
	if r, ok := v.recording[e.Node]; ok && r.end > e.At {
		v.violate(e.At, RuleRecorderBusy, e.Node, e.File,
			"record.start while still recording file %#x until %v", r.file, r.end)
	}
	v.recording[e.Node] = recordSpan{file: e.File, end: e.At.Add(time.Duration(e.V1))}
}

func (v *Invariants) onMigrateStart(e obs.Event) {
	if s := v.sessions[e.Node]; s != nil {
		v.violate(e.At, RuleMigrationConservation, e.Node, 0,
			"migration to %d starts while session to %d (opened %v) is in flight", e.Peer, s.to, s.at)
		// Adopt the new session; the stale one can no longer be checked.
	}
	v.sessions[e.Node] = &migSession{at: e.At, to: e.Peer, sent: e.V1}
}

// onMigrateOut closes a session and checks conservation: every chunk the
// sender deletes (acked) must have been accepted by the receiver —
// acked > accepted means data vanished in flight — and acked + failed
// must equal the batch size. The inverse (accepted > acked, an ACK lost
// after the receiver stored) duplicates the chunk, which the paper
// tolerates and retrieval dedups.
func (v *Invariants) onMigrateOut(e obs.Event) {
	s := v.sessions[e.Node]
	if s == nil {
		return
	}
	acked, failed := e.V1, e.V2
	if acked+failed != s.sent {
		v.violate(e.At, RuleMigrationConservation, e.Node, 0,
			"session to %d: acked %d + failed %d != sent %d", s.to, acked, failed, s.sent)
	}
	if acked > s.accepted {
		v.violate(e.At, RuleMigrationConservation, e.Node, 0,
			"session to %d: %d chunks acked but only %d accepted by receiver (loss)",
			s.to, acked, s.accepted)
	}
	delete(v.sessions, e.Node)
}

// Close implements obs.Sink (no buffered state).
func (v *Invariants) Close() error { return nil }

// NoteCrash records a chaos crash: the node counts as dead for the
// survivability check until NoteRevive, and the chunks its flash dropped
// in the power-loss window (the pre-crash/post-recover holdings diff)
// become losses attributed to this event. Returns the sequential chaos
// event ID. The Injector calls this when wired via SetInvariants.
func (v *Invariants) NoteCrash(at sim.Time, node int, lost []*flash.Chunk) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nextEvent++
	id := v.nextEvent
	v.deadBy[node] = id
	perFile := make(map[flash.FileID]int)
	for _, c := range lost {
		if c != nil {
			perFile[c.File]++
		}
	}
	files := make([]flash.FileID, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, f := range files {
		v.losses = append(v.losses, Loss{
			At: at, Event: id, Kind: KindCrash, Node: int32(node), File: f, Chunks: perFile[f],
		})
	}
	return id
}

// NoteRevive clears a node's crash attribution after a chaos reboot: its
// surviving fragments count as live again. Losses already attributed
// stay — the checkpoint-window chunks are gone for good.
func (v *Invariants) NoteRevive(node int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.deadBy, node)
}

// NotePartition records an active partition stranding the nodes of side
// A (by scenario convention the isolated minority — the side listed
// explicitly in the fault). While the partition is active their
// fragments count as unreachable for the survivability check. Returns
// the sequential chaos event ID; pass it to NotePartitionHealed when the
// window closes. A node already stranded keeps its first attribution.
func (v *Invariants) NotePartition(at sim.Time, a []int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nextEvent++
	id := v.nextEvent
	for _, n := range a {
		if _, ok := v.strandedBy[n]; !ok {
			v.strandedBy[n] = id
		}
	}
	return id
}

// NotePartitionHealed clears the stranding of every node attributed to
// the given partition event.
func (v *Invariants) NotePartitionHealed(event int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for n, e := range v.strandedBy {
		if e == event {
			delete(v.strandedBy, n)
		}
	}
}

// CheckSurvivability runs the end-of-run k-of-n dispersal check: every
// group announced by storage.disperse.start must still have at least k
// of its n fragments on holders that are alive and not stranded behind
// an active partition — fewer and the group's un-archived chunks cannot
// be decoded over the radio. alive reports radio liveness (e.g. the
// network's Endpoint.Alive per node); the crash/partition notes supply
// the attribution named in the violation. Call once after the run,
// before Report. In migration mode no disperse events exist, so the
// check is vacuously clean.
func (v *Invariants) CheckSurvivability(at sim.Time, alive func(node int) bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]disperseKey, 0, len(v.groups))
	for k := range v.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.file != b.file {
			return a.file < b.file
		}
		return a.firstSeq < b.firstSeq
	})
	for _, gk := range keys {
		g := v.groups[gk]
		live := 0
		var why []string
		seen := make(map[string]bool)
		blame := func(tag string) {
			if !seen[tag] {
				seen[tag] = true
				why = append(why, tag)
			}
		}
		for _, h := range g.holders {
			if h < 0 {
				continue // parity never dispersed: nothing to lose
			}
			if !alive(h) {
				if ev, ok := v.deadBy[h]; ok {
					blame(fmt.Sprintf("crash#%d(node %d)", ev, h))
				} else {
					blame(fmt.Sprintf("node %d dead (unattributed)", h))
				}
				continue
			}
			if ev, ok := v.strandedBy[h]; ok {
				blame(fmt.Sprintf("partition#%d(node %d)", ev, h))
				continue
			}
			live++
		}
		if live < g.k {
			v.violate(at, RuleSurvivability, gk.node, gk.file,
				"dispersal group seq[%d,+%d): %d/%d fragment(s) live, need k=%d; lost to %s",
				gk.firstSeq, g.count, live, g.n, g.k, strings.Join(why, ", "))
		}
	}
}

// Losses returns the attributed chaos losses in fire order.
func (v *Invariants) Losses() []Loss {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Loss, len(v.losses))
	copy(out, v.losses)
	return out
}

// chunkKey is the network-wide chunk identity: retrieval dedups on it.
type chunkKey struct {
	file   flash.FileID
	origin int32
	seq    uint32
}

// CheckHoldings runs the end-of-run retrieval-completeness check
// (§II-C): Reassemble over the surviving holdings must return exactly
// the identity-deduplicated union of what the nodes store, and every
// declared gap must really be uncovered by data. Call it once after the
// run, before Report.
func (v *Invariants) CheckHoldings(at sim.Time, holdings map[int][]*flash.Chunk, tolerance time.Duration) {
	files := retrieval.Reassemble(holdings, retrieval.Query{All: true})

	union := make(map[chunkKey]*flash.Chunk)
	for _, chunks := range holdings {
		for _, c := range chunks {
			if c == nil {
				continue
			}
			k := chunkKey{c.File, c.Origin, c.Seq}
			if _, ok := union[k]; !ok {
				union[k] = c
			}
		}
	}
	got := make(map[chunkKey]bool)
	for id, f := range files {
		for _, c := range f.Chunks {
			k := chunkKey{c.File, c.Origin, c.Seq}
			if c.File != id {
				v.mu.Lock()
				v.violate(at, RuleRetrievalComplete, c.Origin, uint32(c.File),
					"chunk filed under %#x", id)
				v.mu.Unlock()
			}
			got[k] = true
		}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	// Missing: stored but absent from the reassembly. Aggregate per file
	// so a lost file yields one violation, not thousands.
	missing := make(map[flash.FileID]int)
	var missingNode map[flash.FileID]int32
	for k := range union {
		if !got[k] {
			if missingNode == nil {
				missingNode = make(map[flash.FileID]int32)
			}
			if _, ok := missing[k.file]; !ok {
				missingNode[k.file] = k.origin
			}
			missing[k.file]++
		}
	}
	for file, n := range missing {
		v.violate(at, RuleRetrievalComplete, missingNode[file], uint32(file),
			"%d stored chunk(s) missing from reassembly", n)
	}
	// Invented: reassembled but stored nowhere.
	for k := range got {
		if _, ok := union[k]; !ok {
			v.violate(at, RuleRetrievalComplete, k.origin, uint32(k.file),
				"reassembled chunk (origin %d, seq %d) exists in no holding", k.origin, k.seq)
		}
	}
	// Declared gaps must be uncovered: no chunk's span may intersect a
	// gap's interior.
	for id, f := range files {
		for _, g := range f.Gaps(tolerance) {
			for _, c := range f.Chunks {
				if c.Start < g.End && c.End > g.Start {
					v.violate(at, RuleRetrievalComplete, c.Origin, uint32(id),
						"declared gap [%v,%v) overlaps chunk [%v,%v)", g.Start, g.End, c.Start, c.End)
					break
				}
			}
		}
	}
}

// Violations returns the recorded breaches in detection order.
func (v *Invariants) Violations() []Violation {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Violation, len(v.violations))
	copy(out, v.violations)
	return out
}

// Events returns the number of trace events examined.
func (v *Invariants) Events() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.events
}

// Report renders a deterministic multi-line summary: the same run
// produces byte-identical output (asserted by the determinism regression
// test).
func (v *Invariants) Report() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var b strings.Builder
	if len(v.violations) == 0 {
		fmt.Fprintf(&b, "invariants: OK (%d events checked)\n", v.events)
	} else {
		fmt.Fprintf(&b, "invariants: %d violation(s) in %d events\n", len(v.violations)+v.dropped, v.events)
		for _, viol := range v.violations {
			fmt.Fprintf(&b, "  %s\n", viol.String())
		}
		if v.dropped > 0 {
			fmt.Fprintf(&b, "  ... and %d more (cap %d)\n", v.dropped, v.cfg.MaxViolations)
		}
	}
	if len(v.losses) > 0 {
		fmt.Fprintf(&b, "chaos losses: %d attributed record(s)\n", len(v.losses))
		for _, l := range v.losses {
			fmt.Fprintf(&b, "  %s\n", l.String())
		}
	}
	return b.String()
}
