package chaos

import (
	"testing"
)

// FuzzParseScenario asserts the scenario parser's contract under
// arbitrary input: it never panics, and anything it accepts passes
// Validate (a scenario that parses must also install cleanly modulo
// node-ID range checks, which need a deployment).
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"name":"x","seed":7,"faults":[{"kind":"crash","at":"90s","target":"leader"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"crash","at":"1s","node":3}]}`))
	f.Add([]byte(`{"faults":[{"kind":"reboot","at":"2m","node":3}]}`))
	f.Add([]byte(`{"faults":[{"kind":"loss","from":"1m","to":"2m","prob":0.25}]}`))
	f.Add([]byte(`{"faults":[{"kind":"partition","from":"30s","a":[0,1],"b":[2],"oneway":true}]}`))
	f.Add([]byte(`{"faults":[{"kind":"flash","from":"1s","node":0,"write_prob":0.5,"read_prob":1}]}`))
	f.Add([]byte(`{"faults":[{"kind":"clockskew","at":"10s","node":1,"step":"-40ms"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"loss","from":"-1s","prob":2}]}`))
	f.Add([]byte(`{"faults":[{"kind":"bogus"}]}`))
	f.Add([]byte(`{"name":"x"} {"name":"trailing"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			if sc != nil {
				t.Fatalf("error %v returned alongside a scenario", err)
			}
			return
		}
		if sc == nil {
			t.Fatal("nil scenario with nil error")
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails validation: %v", err)
		}
	})
}
