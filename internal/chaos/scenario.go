// Package chaos is the deterministic fault-injection harness and runtime
// protocol invariant checker (DESIGN.md §12). Faults are scripted as a
// Scenario — node crash/reboot, radio loss bursts, asymmetric partitions,
// flash I/O errors, clock-skew steps — and scheduled through the
// simulation scheduler, so a (scenario, seed) pair replays
// bit-identically. The Invariants observer subscribes to the obs tracer
// stream and checks the paper-level properties the protocols claim to
// preserve under exactly these faults: recorder exclusivity (§II-A.2),
// file-ID continuity across leader handoff (§II-A.3), chunk conservation
// across storage migrations (§II-B), and retrieval completeness (§II-C).
//
// Determinism contract: installing a scenario schedules its fault events
// up front and draws fault probabilities from a private RNG seeded by the
// scenario, never from the simulation's RNG stream — so two runs of the
// same scenario are byte-identical, and a run with no scenario installed
// is byte-identical to a run without the chaos package at all.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Fault kinds accepted in scenario files.
const (
	KindCrash     = "crash"
	KindReboot    = "reboot"
	KindLoss      = "loss"
	KindPartition = "partition"
	KindFlash     = "flash"
	KindClockSkew = "clockskew"
)

// TargetLeader is the Fault.Target value that resolves, at fire time, to
// the lowest-ID live node currently leading a recording group. Leaders
// only exist while a group records, so the fault arms at At and fires at
// the next instant a leader exists (polled on the scheduler, 50 ms).
const TargetLeader = "leader"

// Fault is one scripted fault. Which fields apply depends on Kind:
//
//   - crash: At, and Node or Target ("leader"). The node is killed and
//     its flash loses writes made after the last EEPROM checkpoint
//     (Store.Crash/Recover), like a real power failure.
//   - reboot: At, Node. Restores a previously crashed node with RAM
//     state lost (core.Network.Reboot).
//   - loss: From, To, Prob. Raises the network loss probability to Prob
//     for the window; To zero means permanent. Bursts do not stack — the
//     last boundary crossed wins, and the pre-scenario base probability
//     is restored at To.
//   - partition: From, To, A, B, OneWay. Blocks delivery from every node
//     in A to every node in B (and B→A unless OneWay). Empty B means
//     "every node not in A". To zero means permanent.
//   - flash: From, To, Node, WriteProb, ReadProb. Fails the node's flash
//     enqueues/dequeues with the given probabilities for the window.
//   - clockskew: At, Node, Step. Jumps the node's hardware clock phase.
type Fault struct {
	Kind string
	// At is the fire time for instantaneous faults (crash, reboot,
	// clockskew).
	At time.Duration
	// From/To bound windowed faults (loss, partition, flash); To == 0
	// means the fault lasts to the end of the run.
	From, To time.Duration
	// Node is the target node ID; -1 when unset.
	Node int
	// Target is a symbolic target resolved at fire time (TargetLeader).
	Target string
	// Prob is the loss-burst probability.
	Prob float64
	// A and B are the partition sides.
	A, B []int
	// OneWay makes a partition asymmetric (A→B blocked only).
	OneWay bool
	// WriteProb/ReadProb are flash fault probabilities.
	WriteProb, ReadProb float64
	// Step is the clock-skew jump (may be negative).
	Step time.Duration
}

// Scenario is a parsed, validated fault script.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives the injector's private RNG (flash fault draws). The
	// simulation's own RNG stream is never touched.
	Seed int64
	// Faults in file order. Validate sorts nothing: fire order is decided
	// by the scheduler from the At/From times.
	Faults []Fault
}

// Wire format: durations are Go duration strings ("90s", "2m30s") so
// scenario files stay readable. Unknown fields are rejected.
type wireScenario struct {
	Name   string      `json:"name"`
	Seed   int64       `json:"seed,omitempty"`
	Faults []wireFault `json:"faults"`
}

type wireFault struct {
	Kind      string  `json:"kind"`
	At        string  `json:"at,omitempty"`
	From      string  `json:"from,omitempty"`
	To        string  `json:"to,omitempty"`
	Node      *int    `json:"node,omitempty"`
	Target    string  `json:"target,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
	A         []int   `json:"a,omitempty"`
	B         []int   `json:"b,omitempty"`
	OneWay    bool    `json:"oneway,omitempty"`
	WriteProb float64 `json:"write_prob,omitempty"`
	ReadProb  float64 `json:"read_prob,omitempty"`
	Step      string  `json:"step,omitempty"`
}

func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("chaos: bad %s duration %q: %v", field, s, err)
	}
	return d, nil
}

// ParseScenario decodes and validates a scenario JSON document. It never
// panics on malformed input (fuzzed); every reject comes back as an
// error.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireScenario
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("chaos: %v", err)
	}
	// A second document in the same file is a mistake, not trailing data
	// to ignore.
	if dec.More() {
		return nil, fmt.Errorf("chaos: trailing data after scenario object")
	}
	sc := &Scenario{Name: w.Name, Seed: w.Seed}
	for i, wf := range w.Faults {
		f := Fault{
			Kind:      wf.Kind,
			Target:    wf.Target,
			Prob:      wf.Prob,
			A:         wf.A,
			B:         wf.B,
			OneWay:    wf.OneWay,
			WriteProb: wf.WriteProb,
			ReadProb:  wf.ReadProb,
			Node:      -1,
		}
		if wf.Node != nil {
			f.Node = *wf.Node
		}
		var err error
		if f.At, err = parseDur("at", wf.At); err != nil {
			return nil, fmt.Errorf("fault %d: %v", i, err)
		}
		if f.From, err = parseDur("from", wf.From); err != nil {
			return nil, fmt.Errorf("fault %d: %v", i, err)
		}
		if f.To, err = parseDur("to", wf.To); err != nil {
			return nil, fmt.Errorf("fault %d: %v", i, err)
		}
		if f.Step, err = parseDur("step", wf.Step); err != nil {
			return nil, fmt.Errorf("fault %d: %v", i, err)
		}
		sc.Faults = append(sc.Faults, f)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Validate checks the scenario's internal consistency: fault-kind field
// requirements, probability ranges, and time windows. Node IDs are
// checked against the deployment at Install time, not here.
func (sc *Scenario) Validate() error {
	for i := range sc.Faults {
		f := &sc.Faults[i]
		if err := f.validate(); err != nil {
			return fmt.Errorf("chaos: fault %d (%s): %v", i, f.Kind, err)
		}
	}
	return nil
}

func (f *Fault) validate() error {
	needNode := func() error {
		if f.Node < 0 {
			return fmt.Errorf("node required")
		}
		return nil
	}
	window := func() error {
		if f.From < 0 {
			return fmt.Errorf("negative from")
		}
		if f.To != 0 && f.To <= f.From {
			return fmt.Errorf("to %v not after from %v", f.To, f.From)
		}
		return nil
	}
	switch f.Kind {
	case KindCrash:
		if f.At <= 0 {
			return fmt.Errorf("at required")
		}
		hasNode, hasTarget := f.Node >= 0, f.Target != ""
		if hasNode == hasTarget {
			return fmt.Errorf("exactly one of node and target required")
		}
		if hasTarget && f.Target != TargetLeader {
			return fmt.Errorf("unknown target %q", f.Target)
		}
	case KindReboot:
		if f.At <= 0 {
			return fmt.Errorf("at required")
		}
		return needNode()
	case KindLoss:
		if f.Prob < 0 || f.Prob >= 1 {
			return fmt.Errorf("prob %v outside [0,1)", f.Prob)
		}
		return window()
	case KindPartition:
		if len(f.A) == 0 {
			return fmt.Errorf("side a is empty")
		}
		return window()
	case KindFlash:
		if err := needNode(); err != nil {
			return err
		}
		if f.WriteProb < 0 || f.WriteProb > 1 || f.ReadProb < 0 || f.ReadProb > 1 {
			return fmt.Errorf("fault probabilities outside [0,1]")
		}
		if f.WriteProb == 0 && f.ReadProb == 0 {
			return fmt.Errorf("both write_prob and read_prob are zero")
		}
		return window()
	case KindClockSkew:
		if f.At <= 0 {
			return fmt.Errorf("at required")
		}
		if f.Step == 0 {
			return fmt.Errorf("zero step")
		}
		return needNode()
	case "":
		return fmt.Errorf("missing kind")
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}
