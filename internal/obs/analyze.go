package obs

import (
	"math"
	"sort"
	"time"
)

// KindCount is one row of a per-kind event census.
type KindCount struct {
	Name  string
	Count int
}

// CountByKind tallies events per kind name, sorted by descending count
// then name.
func CountByKind(evs []Event) []KindCount {
	counts := map[string]int{}
	for _, e := range evs {
		counts[EventName(e.Kind)]++
	}
	out := make([]KindCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, KindCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NodeTimeline is one node's events in time order.
type NodeTimeline struct {
	Node   int32
	Events []Event
}

// Timelines splits a trace into per-node timelines, nodes ascending,
// each timeline in time order.
func Timelines(evs []Event) []NodeTimeline {
	byNode := map[int32][]Event{}
	for _, e := range evs {
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	out := make([]NodeTimeline, 0, len(byNode))
	for n, list := range byNode {
		sort.SliceStable(list, func(i, j int) bool { return list[i].At < list[j].At })
		out = append(out, NodeTimeline{Node: n, Events: list})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// LatencyStats summarizes the durations of one paired protocol exchange
// (e.g. request→confirm). Histogram buckets are powers of two of
// BucketBase.
type LatencyStats struct {
	Name            string
	Count           int
	P50, P90, P99   time.Duration
	Min, Max        time.Duration
	Buckets         []int // Buckets[i] counts d < BucketBase<<i (last bucket: rest)
	BucketBase      time.Duration
	UnmatchedStarts int
}

// latencyRule names a start kind and the end kinds that complete it;
// scope follows the exporter's span rules.
type latencyRule struct {
	name    string
	start   string
	ends    []string
	perPeer bool
}

var latencyRules = []latencyRule{
	{name: "request->confirm", start: "task.request", ends: []string{"task.confirm"}, perPeer: true},
	{name: "migrate->ack", start: "storage.migrate.start", ends: []string{"storage.migrate.out"}, perPeer: true},
	{name: "election", start: "group.elect.backoff", ends: []string{"group.elect.won", "group.elect.lost"}},
	{name: "record", start: "task.record.start", ends: []string{"task.record.end"}},
}

const nBuckets = 12

// Latencies pairs start/end events per latencyRules and returns one
// LatencyStats per rule (rules with zero pairs included, Count 0).
func Latencies(evs []Event) []LatencyStats {
	sorted := append([]Event(nil), evs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	type key struct {
		rule int
		node int32
		peer int32
	}
	open := map[key]Event{}
	durs := make([][]time.Duration, len(latencyRules))
	unmatched := make([]int, len(latencyRules))

	starts := map[string]int{}
	endsTo := map[string][]int{}
	for i, r := range latencyRules {
		starts[r.start] = i
		for _, e := range r.ends {
			endsTo[e] = append(endsTo[e], i)
		}
	}
	mk := func(ri int, e Event) key {
		k := key{rule: ri, node: e.Node, peer: NoPeer}
		if latencyRules[ri].perPeer {
			k.peer = e.Peer
		}
		return k
	}

	for _, e := range sorted {
		name := EventName(e.Kind)
		if ri, ok := starts[name]; ok {
			k := mk(ri, e)
			if _, dangling := open[k]; dangling {
				unmatched[ri]++
			}
			open[k] = e
		}
		for _, ri := range endsTo[name] {
			k := mk(ri, e)
			if s, ok := open[k]; ok {
				delete(open, k)
				durs[ri] = append(durs[ri], e.At.Sub(s.At))
			}
		}
	}
	for k := range open {
		unmatched[k.rule]++
	}

	out := make([]LatencyStats, len(latencyRules))
	for i, r := range latencyRules {
		out[i] = summarizeDurations(r.name, durs[i])
		out[i].UnmatchedStarts = unmatched[i]
	}
	return out
}

func summarizeDurations(name string, ds []time.Duration) LatencyStats {
	st := LatencyStats{Name: name, BucketBase: time.Millisecond, Buckets: make([]int, nBuckets)}
	if len(ds) == 0 {
		return st
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	st.Count = len(ds)
	st.Min, st.Max = ds[0], ds[len(ds)-1]
	// Nearest-rank percentiles: the smallest sample such that at least
	// p·n samples are ≤ it.
	pct := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(ds)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ds[i]
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	for _, d := range ds {
		b := 0
		for b < nBuckets-1 && d >= st.BucketBase<<b {
			b++
		}
		st.Buckets[b]++
	}
	return st
}
