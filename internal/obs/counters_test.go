package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterGroup(t *testing.T) {
	g := NewCounterGroup()
	c := g.Counter("ingest.chunks")
	if again := g.Counter("ingest.chunks"); again != c {
		t.Fatal("Counter is not an idempotent intern")
	}
	c.Inc()
	c.Add(4)
	g.Counter("query.count").Add(2)
	want := map[string]int64{"ingest.chunks": 5, "query.count": 2}
	if got := g.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	if got := g.Names(); !reflect.DeepEqual(got, []string{"ingest.chunks", "query.count"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestCounterGroupEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty counter name did not panic")
		}
	}()
	NewCounterGroup().Counter("")
}

func TestCounterConcurrent(t *testing.T) {
	g := NewCounterGroup()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := g.Counter("hits").Load(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}
