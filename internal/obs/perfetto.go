package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Perfetto is a sink that buffers the whole trace in memory and renders
// it as Chrome trace-event JSON (the legacy format ui.perfetto.dev and
// chrome://tracing both open) on Close. Nodes become tracks; elections,
// recording tasks, leader→member assignments, and migrations become
// spans; everything else renders as instants.
type Perfetto struct {
	mu     sync.Mutex
	events []Event
	w      io.Writer
	closed bool
}

// NewPerfetto returns a Perfetto sink that writes the rendered trace to
// w on Close. If w is an io.Closer it is closed afterwards.
func NewPerfetto(w io.Writer) *Perfetto { return &Perfetto{w: w} }

// Emit implements Sink.
func (p *Perfetto) Emit(e Event) {
	p.mu.Lock()
	if !p.closed {
		p.events = append(p.events, e)
	}
	p.mu.Unlock()
}

// Close renders the buffered events and closes the underlying writer if
// it is an io.Closer. Further Emit calls are dropped.
func (p *Perfetto) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := WriteChromeTrace(p.w, p.events)
	if c, ok := p.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// spanRule pairs a starting event kind with the kinds that terminate it.
// Key selects the matching scope: some protocols have one outstanding
// span per node (a node runs one election at a time), others one per
// (node, peer) pair (a leader has concurrent outstanding TASK_REQUESTs
// to different members).
type spanRule struct {
	name    string // span name in the trace viewer
	cat     string
	start   string
	ends    []string
	perPeer bool
}

// spanRules drive the exporter. They reference kinds by name so the
// exporter also works on parsed traces whose kinds were interned at load
// time rather than by the emitting modules' init functions.
var spanRules = []spanRule{
	{name: "election", cat: "group", start: "group.elect.backoff", ends: []string{"group.elect.won", "group.elect.lost"}},
	{name: "record", cat: "task", start: "task.record.start", ends: []string{"task.record.end"}},
	{name: "assign", cat: "task", start: "task.request", ends: []string{"task.confirm", "task.reject", "task.timeout"}, perPeer: true},
	{name: "migrate", cat: "storage", start: "storage.migrate.start", ends: []string{"storage.migrate.out", "storage.migrate.fail"}, perPeer: true},
}

// WriteChromeTrace renders events as a Chrome trace-event JSON document:
// one track (pid 0, tid = node ID) per node, spans per spanRules, and
// instant events for every other kind. Timestamps are microseconds with
// nanosecond fractions preserved.
func WriteChromeTrace(w io.Writer, evs []Event) error {
	// Emission order already is sim-time order for a serial run; a stable
	// sort makes the exporter robust to interleaved parallel workers too.
	sorted := append([]Event(nil), evs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	type ruleID int
	starts := map[string]ruleID{}
	endsTo := map[string]ruleID{}
	for i, r := range spanRules {
		starts[r.start] = ruleID(i)
		for _, e := range r.ends {
			endsTo[e] = ruleID(i)
		}
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprint(bw, `{"traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
	}

	nodes := map[int32]bool{}
	for _, e := range sorted {
		nodes[e.Node] = true
	}
	ids := make([]int32, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sep()
	fmt.Fprint(bw, `{"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"enviromic"}}`)
	for _, n := range ids {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"node %d"}}`, n, n)
	}

	us := func(e Event) float64 { return float64(e.At) / 1e3 }
	args := func(e Event) string {
		return fmt.Sprintf(`{"peer":%d,"file":%d,"v1":%d,"v2":%d}`, e.Peer, e.File, e.V1, e.V2)
	}
	instant := func(e Event, name, cat string) {
		sep()
		fmt.Fprintf(bw, `{"ph":"i","name":%q,"cat":%q,"pid":0,"tid":%d,"ts":%.3f,"s":"t","args":%s}`,
			name, cat, e.Node, us(e), args(e))
	}

	type spanKey struct {
		rule ruleID
		node int32
		peer int32 // NoPeer for per-node rules
	}
	open := map[spanKey]Event{}
	key := func(r ruleID, e Event) spanKey {
		k := spanKey{rule: r, node: e.Node, peer: NoPeer}
		if spanRules[r].perPeer {
			k.peer = e.Peer
		}
		return k
	}

	for _, e := range sorted {
		name := EventName(e.Kind)
		cat := name
		if i := strings.IndexByte(cat, '.'); i > 0 {
			cat = cat[:i]
		}
		if r, ok := starts[name]; ok {
			k := key(r, e)
			if prev, dangling := open[k]; dangling {
				// A start with no matching end (e.g. an election
				// abandoned without a won/lost event) degrades to an
				// instant rather than swallowing the new span.
				instant(prev, spanRules[r].start, spanRules[r].cat)
			}
			open[k] = e
			continue
		}
		if r, ok := endsTo[name]; ok {
			k := key(r, e)
			if start, ok := open[k]; ok {
				delete(open, k)
				sep()
				fmt.Fprintf(bw, `{"ph":"X","name":%q,"cat":%q,"pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"end":%q,"peer":%d,"file":%d,"v1":%d,"v2":%d}}`,
					spanRules[r].name, spanRules[r].cat, e.Node, us(start), us(e)-us(start),
					name, e.Peer, e.File, e.V1, e.V2)
				continue
			}
			// End without a start (trace began mid-span): instant.
		}
		instant(e, name, cat)
	}

	// Spans still open at the end of the trace render as instants at
	// their start time, in deterministic key order.
	dangling := make([]spanKey, 0, len(open))
	for k := range open {
		dangling = append(dangling, k)
	}
	sort.Slice(dangling, func(i, j int) bool {
		a, b := dangling[i], dangling[j]
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.peer < b.peer
	})
	for _, k := range dangling {
		instant(open[k], spanRules[k.rule].start, spanRules[k.rule].cat)
	}

	fmt.Fprint(bw, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}
