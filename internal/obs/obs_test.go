package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"enviromic/internal/sim"
)

var (
	testKindA = RegisterEvent("obstest.a")
	testKindB = RegisterEvent("obstest.b")
)

func TestRegistryIdempotent(t *testing.T) {
	if again := RegisterEvent("obstest.a"); again != testKindA {
		t.Fatalf("re-registering returned %d, want %d", again, testKindA)
	}
	if testKindA == testKindB {
		t.Fatalf("distinct names got the same ID %d", testKindA)
	}
	if EventName(testKindA) != "obstest.a" {
		t.Fatalf("EventName = %q", EventName(testKindA))
	}
	if id, ok := LookupEvent("obstest.b"); !ok || id != testKindB {
		t.Fatalf("LookupEvent = %d, %v", id, ok)
	}
	if _, ok := LookupEvent("obstest.never-registered"); ok {
		t.Fatal("LookupEvent found an unregistered name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterEvent(\"\") did not panic")
		}
	}()
	RegisterEvent("")
}

func TestNilTracerEmitZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(sim.At(time.Second), testKindA, 1, 2, 3, 4, 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v per call, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.SetFilter([]string{"x"}) != nil {
		t.Fatal("SetFilter on nil tracer must stay nil")
	}
	if New(nil) != nil {
		t.Fatal("New(nil) must return the nil (disabled) tracer")
	}
}

func TestTracerFilter(t *testing.T) {
	ring := NewRing(16)
	tr := New(ring).SetFilter([]string{"obstest.a"})
	tr.Emit(1, testKindA, 0, NoPeer, 0, 0, 0)
	tr.Emit(2, testKindB, 0, NoPeer, 0, 0, 0)
	if got := ring.Total(); got != 1 {
		t.Fatalf("filtered tracer passed %d events, want 1", got)
	}
	tr.SetFilter(nil)
	tr.Emit(3, testKindB, 0, NoPeer, 0, 0, 0)
	if got := ring.Total(); got != 2 {
		t.Fatalf("cleared filter passed %d events, want 2", got)
	}
	if got := ParseFilter(" task , ,group.elect "); len(got) != 2 || got[0] != "task" || got[1] != "group.elect" {
		t.Fatalf("ParseFilter = %q", got)
	}
	if got := ParseFilter("task.*,group*,*"); len(got) != 2 || got[0] != "task." || got[1] != "group" {
		t.Fatalf("ParseFilter glob form = %q", got)
	}
}

func TestRingWrapsAndTails(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{At: sim.Time(i), Kind: testKindA})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 || snap[0].At != 6 || snap[3].At != 9 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].At != 8 || tail[1].At != 9 {
		t.Fatalf("Tail(2) = %+v", tail)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{At: 0, Kind: testKindA, Node: 0, Peer: NoPeer, File: 0, V1: 0, V2: 0},
		{At: 123456789, Kind: testKindB, Node: 7, Peer: 3, File: 42, V1: -5, V2: 1 << 40},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range in {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		for _, k := range []string{"t", "k", "n", "p", "f", "v1", "v2"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %q missing field %q", line, k)
			}
		}
	}
	out, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestParseJSONLRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`{"t":1,"k":"x","n":0,"p":0,"f":0,"v1":0}`,           // missing v2
		`{"t":1,"k":"","n":0,"p":0,"f":0,"v1":0,"v2":0}`,     // empty kind
		`{"k":"x","t":1,"n":0,"p":0,"f":0,"v1":0,"v2":0}`,    // wrong order
		`{"t":1,"k":"x","n":0,"p":0,"f":0,"v1":0,"v2":0}x`,   // trailing junk
		`{"t":oops,"k":"x","n":0,"p":0,"f":0,"v1":0,"v2":0}`, // bad number
	} {
		if _, err := ParseJSONL(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseJSONL accepted malformed line %q", bad)
		}
	}
	if evs, err := ParseJSONL(strings.NewReader("\n\n")); err != nil || len(evs) != 0 {
		t.Fatalf("blank lines: %v, %v", evs, err)
	}
}

func TestTeeAndCounting(t *testing.T) {
	r1, r2 := NewRing(8), NewRing(8)
	c := NewCounting(Tee{r1, r2})
	c.Emit(Event{Kind: testKindA})
	c.Emit(Event{Kind: testKindA})
	c.Emit(Event{Kind: testKindB})
	if c.Total() != 3 {
		t.Fatalf("Total = %d", c.Total())
	}
	counts := c.Counts()
	if counts["obstest.a"] != 2 || counts["obstest.b"] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if r1.Total() != 3 || r2.Total() != 3 {
		t.Fatalf("tee fan-out: %d, %d", r1.Total(), r2.Total())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// perfetto-exporter tests drive the real protocol kind names so the span
// rules are exercised end to end.
var (
	pkBackoff = RegisterEvent("group.elect.backoff")
	pkWon     = RegisterEvent("group.elect.won")
	pkRequest = RegisterEvent("task.request")
	pkConfirm = RegisterEvent("task.confirm")
	pkSuppr   = RegisterEvent("task.suppress")
)

func TestWriteChromeTraceSpans(t *testing.T) {
	evs := []Event{
		{At: sim.At(10 * time.Millisecond), Kind: pkBackoff, Node: 1, Peer: NoPeer},
		{At: sim.At(15 * time.Millisecond), Kind: pkRequest, Node: 1, Peer: 2, File: 9},
		{At: sim.At(20 * time.Millisecond), Kind: pkWon, Node: 1, Peer: NoPeer},
		{At: sim.At(30 * time.Millisecond), Kind: pkConfirm, Node: 1, Peer: 2, File: 9},
		{At: sim.At(40 * time.Millisecond), Kind: pkSuppr, Node: 2, Peer: 1},
		{At: sim.At(50 * time.Millisecond), Kind: pkRequest, Node: 1, Peer: 3}, // dangling
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)] = true
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Errorf("span %v has non-positive dur", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 2 {
		t.Errorf("got %d spans, want 2 (election + assign): %s", spans, buf.String())
	}
	if !names["election"] || !names["assign"] {
		t.Errorf("span names missing: %v", names)
	}
	// The suppress instant plus the dangling request degraded to an instant.
	if instants != 2 {
		t.Errorf("got %d instants, want 2", instants)
	}
	// process_name + thread_name for nodes 1 and 2.
	if meta != 3 {
		t.Errorf("got %d metadata events, want 3", meta)
	}
}

func TestLatencies(t *testing.T) {
	evs := []Event{
		{At: sim.At(0), Kind: pkRequest, Node: 1, Peer: 2},
		{At: sim.At(10 * time.Millisecond), Kind: pkConfirm, Node: 1, Peer: 2},
		{At: sim.At(20 * time.Millisecond), Kind: pkRequest, Node: 1, Peer: 3},
		{At: sim.At(50 * time.Millisecond), Kind: pkConfirm, Node: 1, Peer: 3},
		{At: sim.At(60 * time.Millisecond), Kind: pkRequest, Node: 1, Peer: 4}, // never confirmed
	}
	var rc *LatencyStats
	for i, st := range Latencies(evs) {
		if st.Name == "request->confirm" {
			s := Latencies(evs)[i]
			rc = &s
		}
	}
	if rc == nil {
		t.Fatal("no request->confirm stats")
	}
	if rc.Count != 2 {
		t.Fatalf("Count = %d, want 2", rc.Count)
	}
	if rc.Min != 10*time.Millisecond || rc.Max != 30*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", rc.Min, rc.Max)
	}
	if rc.P50 != 10*time.Millisecond || rc.P99 != 30*time.Millisecond {
		t.Fatalf("P50/P99 = %v/%v", rc.P50, rc.P99)
	}
	if rc.UnmatchedStarts != 1 {
		t.Fatalf("UnmatchedStarts = %d, want 1", rc.UnmatchedStarts)
	}
	var total int
	for _, b := range rc.Buckets {
		total += b
	}
	if total != rc.Count {
		t.Fatalf("bucket sum %d != count %d", total, rc.Count)
	}
}

func TestCountByKindAndTimelines(t *testing.T) {
	evs := []Event{
		{At: 3, Kind: testKindA, Node: 2},
		{At: 1, Kind: testKindB, Node: 1},
		{At: 2, Kind: testKindB, Node: 2},
	}
	counts := CountByKind(evs)
	if len(counts) != 2 || counts[0].Name != "obstest.b" || counts[0].Count != 2 {
		t.Fatalf("CountByKind = %+v", counts)
	}
	tl := Timelines(evs)
	if len(tl) != 2 || tl[0].Node != 1 || tl[1].Node != 2 {
		t.Fatalf("Timelines nodes = %+v", tl)
	}
	if tl[1].Events[0].At != 2 || tl[1].Events[1].At != 3 {
		t.Fatalf("node 2 timeline not time-sorted: %+v", tl[1].Events)
	}
}
