package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"enviromic/internal/sim"
)

// Ring is a bounded in-memory sink keeping the most recent events. It is
// the live-introspection sink: the -http debug endpoint tails it while a
// run is in flight, so all access is mutex-guarded.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring retaining the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Close implements Sink; the ring has nothing to flush.
func (r *Ring) Close() error { return nil }

// Total returns the number of events ever emitted (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained events in emission order.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Tail returns the last n retained events in emission order.
func (r *Ring) Tail(n int) []Event {
	s := r.Snapshot()
	if n < len(s) {
		s = s[len(s)-n:]
	}
	return s
}

// JSONL streams events as one JSON object per line:
//
//	{"t":<sim ns>,"k":"<kind>","n":<node>,"p":<peer>,"f":<file>,"v1":…,"v2":…}
//
// Every field is always present, in that order, so the schema can be
// validated with a line regexp (scripts/trace_smoke.sh does). Lines are
// hand-formatted with strconv — no reflection, one buffered write per
// event — and the mutex makes one file shareable by parallel experiment
// workers (lines interleave whole).
type JSONL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	under   io.Writer
	scratch []byte
	err     error
}

// NewJSONL returns a JSONL sink writing to w. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16), under: w, scratch: make([]byte, 0, 128)}
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.scratch = AppendJSONL(j.scratch[:0], e)
		_, j.err = j.w.Write(j.scratch)
	}
	j.mu.Unlock()
}

// Close flushes and, when the underlying writer is an io.Closer, closes
// it. The first write error (if any) is returned.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.w.Flush(); j.err == nil {
		j.err = ferr
	}
	if c, ok := j.under.(io.Closer); ok {
		if cerr := c.Close(); j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// AppendJSONL appends e's JSONL line (newline included) to dst.
func AppendJSONL(dst []byte, e Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(e.At), 10)
	dst = append(dst, `,"k":"`...)
	dst = append(dst, EventName(e.Kind)...)
	dst = append(dst, `","n":`...)
	dst = strconv.AppendInt(dst, int64(e.Node), 10)
	dst = append(dst, `,"p":`...)
	dst = strconv.AppendInt(dst, int64(e.Peer), 10)
	dst = append(dst, `,"f":`...)
	dst = strconv.AppendUint(dst, uint64(e.File), 10)
	dst = append(dst, `,"v1":`...)
	dst = strconv.AppendInt(dst, e.V1, 10)
	dst = append(dst, `,"v2":`...)
	dst = strconv.AppendInt(dst, e.V2, 10)
	return append(dst, '}', '\n')
}

// ParseJSONL reads a JSONL trace back into events, interning kind names
// it has not seen (traces are readable by binaries that never registered
// the emitting module's kinds). It validates the fixed schema strictly —
// every field present, correct types — and fails with the 1-based line
// number of the first malformed line.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		e, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine decodes one fixed-schema JSONL line. A hand parser keeps the
// schema strict (encoding/json would silently ignore unknown or missing
// fields) and the loader fast on multi-million-event traces.
func parseLine(s string) (Event, error) {
	var e Event
	rest := s
	take := func(prefix string) error {
		if !strings.HasPrefix(rest, prefix) {
			return fmt.Errorf("expected %q at %q", prefix, rest)
		}
		rest = rest[len(prefix):]
		return nil
	}
	num := func() (int64, error) {
		i := 0
		for i < len(rest) && (rest[i] == '-' || (rest[i] >= '0' && rest[i] <= '9')) {
			i++
		}
		v, err := strconv.ParseInt(rest[:i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number at %q", rest)
		}
		rest = rest[i:]
		return v, nil
	}
	if err := take(`{"t":`); err != nil {
		return e, err
	}
	t, err := num()
	if err != nil {
		return e, err
	}
	e.At = sim.Time(t)
	if err := take(`,"k":"`); err != nil {
		return e, err
	}
	q := strings.IndexByte(rest, '"')
	if q < 0 {
		return e, fmt.Errorf("unterminated kind at %q", rest)
	}
	kind := rest[:q]
	if kind == "" || strings.ContainsAny(kind, `\{}`) {
		return e, fmt.Errorf("bad kind %q", kind)
	}
	e.Kind = RegisterEvent(kind)
	rest = rest[q+1:]
	fields := []struct {
		prefix string
		set    func(int64)
	}{
		{`,"n":`, func(v int64) { e.Node = int32(v) }},
		{`,"p":`, func(v int64) { e.Peer = int32(v) }},
		{`,"f":`, func(v int64) { e.File = uint32(v) }},
		{`,"v1":`, func(v int64) { e.V1 = v }},
		{`,"v2":`, func(v int64) { e.V2 = v }},
	}
	for _, f := range fields {
		if err := take(f.prefix); err != nil {
			return e, err
		}
		v, err := num()
		if err != nil {
			return e, err
		}
		f.set(v)
	}
	if rest != "}" {
		return e, fmt.Errorf("trailing content %q", rest)
	}
	return e, nil
}

// Tee duplicates events to several sinks (e.g. a JSONL file plus the
// live ring behind -http). Close closes every sink, returning the first
// error.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Close implements Sink.
func (t Tee) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Counting wraps a sink with lock-free per-kind counters, published as
// expvar by the -http endpoint. Counter slots are sized at construction,
// so construct it after all module inits have registered their kinds
// (any later-registered kind counts into the overflow total only).
type Counting struct {
	next    Sink
	total   atomic.Uint64
	perKind []atomic.Uint64
}

// NewCounting returns a counting wrapper around next (which may be nil
// to only count).
func NewCounting(next Sink) *Counting {
	return &Counting{next: next, perKind: make([]atomic.Uint64, NumEvents())}
}

// Emit implements Sink.
func (c *Counting) Emit(e Event) {
	c.total.Add(1)
	if int(e.Kind) < len(c.perKind) {
		c.perKind[e.Kind].Add(1)
	}
	if c.next != nil {
		c.next.Emit(e)
	}
}

// Close implements Sink.
func (c *Counting) Close() error {
	if c.next != nil {
		return c.next.Close()
	}
	return nil
}

// Total returns the number of events seen.
func (c *Counting) Total() uint64 { return c.total.Load() }

// Counts returns a name→count map of the non-zero per-kind counters.
func (c *Counting) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for id := range c.perKind {
		if n := c.perKind[id].Load(); n > 0 {
			out[EventName(EventID(id))] = n
		}
	}
	return out
}
