// Package obs is the sim-time protocol tracer: a structured event log that
// every protocol layer (group election, task assignment, storage balancing,
// retrieval, radio, bulk transfer) emits into.
//
// Design goals, in order:
//
//  1. Zero cost when disabled. Modules hold a *Tracer that is nil by
//     default; Tracer.Emit on a nil receiver is a single branch and zero
//     allocations, so instrumentation can live on hot paths (guarded by an
//     allocs/op assertion in bench_test.go).
//  2. Determinism. Events are stamped with the sim clock, never the wall
//     clock, and emission order follows scheduler execution order — the
//     same (scenario, seed) yields a byte-identical JSONL trace, and
//     enabling tracing does not perturb the run (the tracer only observes;
//     it draws no randomness and schedules no events).
//  3. Fixed shape. An Event is a small value struct with no pointers and
//     no per-kind variance, so sinks can buffer, ring, and serialize it
//     without reflection or allocation per event.
//
// Event kinds are interned exactly like radio payload kinds
// (radio.KindID): each module registers its kind names in package init
// functions and keeps the dense EventID, so Emit never touches a string.
package obs

import (
	"fmt"
	"strings"
	"sync"

	"enviromic/internal/sim"
)

// EventID is an interned event-kind identifier, dense from 0.
type EventID int32

// eventRegistry is the process-wide event-kind table. Registration
// normally happens in package init functions; the lock exists for kinds
// interned at runtime (e.g. when parsing a trace written by a newer
// binary) and for parallel experiment workers.
type eventRegistry struct {
	mu     sync.RWMutex
	names  []string
	byName map[string]EventID
}

var events = eventRegistry{byName: make(map[string]EventID)}

// RegisterEvent interns an event-kind name and returns its EventID.
// Registration is idempotent: the same name always yields the same ID;
// distinct names always yield distinct IDs. The empty name panics.
func RegisterEvent(name string) EventID {
	if name == "" {
		panic("obs: empty event kind name")
	}
	events.mu.Lock()
	defer events.mu.Unlock()
	if id, ok := events.byName[name]; ok {
		return id
	}
	id := EventID(len(events.names))
	events.names = append(events.names, name)
	events.byName[name] = id
	return id
}

// EventName returns the name an EventID was registered under.
// Unregistered IDs panic: an EventID that did not come from RegisterEvent
// is a bug.
func EventName(id EventID) string {
	events.mu.RLock()
	defer events.mu.RUnlock()
	if id < 0 || int(id) >= len(events.names) {
		panic(fmt.Sprintf("obs: unregistered EventID %d", id))
	}
	return events.names[id]
}

// LookupEvent returns the EventID registered for name, and false if name
// was never registered. It does not intern.
func LookupEvent(name string) (EventID, bool) {
	events.mu.RLock()
	defer events.mu.RUnlock()
	id, ok := events.byName[name]
	return id, ok
}

// NumEvents returns the number of registered event kinds; valid EventIDs
// are exactly [0, NumEvents). Filter and counter arrays size from it.
func NumEvents() int {
	events.mu.RLock()
	defer events.mu.RUnlock()
	return len(events.names)
}

// RegisteredEvents returns a snapshot of every registered event-kind
// name, indexed by EventID (for guard tests and diagnostics).
func RegisteredEvents() []string {
	events.mu.RLock()
	defer events.mu.RUnlock()
	out := make([]string, len(events.names))
	copy(out, events.names)
	return out
}

// Event is one protocol decision, stamped with the sim clock. The payload
// is deliberately fixed-shape: Node is the emitting node, Peer the other
// party (-1 when there is none), File an audio file ID (0 when not
// file-scoped), and V1/V2 two kind-specific integers (durations in
// nanoseconds, chunk counts, TTLs in seconds — the kind's documentation
// in the emitting module says which).
type Event struct {
	At   sim.Time
	Kind EventID
	Node int32
	Peer int32
	File uint32
	V1   int64
	V2   int64
}

// NoPeer is the Peer value for events with no counterparty.
const NoPeer int32 = -1

// Sink receives events from a Tracer. Implementations must be safe for
// concurrent Emit calls: parallel experiment workers may share one sink.
// The party that constructed a sink owns it and must Close it once — the
// Tracer never closes sinks (several Tracers may share one).
type Sink interface {
	Emit(Event)
	// Close flushes any buffered state. Sinks must tolerate events
	// emitted after Close (they may be dropped).
	Close() error
}

// Tracer stamps and forwards events to its sink. A nil *Tracer is the
// disabled tracer: Emit returns immediately, costing one branch and zero
// allocations. Modules therefore store a plain *Tracer field, defaulting
// to nil, and call Emit unconditionally.
type Tracer struct {
	sink Sink
	// filter is indexed by EventID; nil means "all kinds pass". Sized at
	// SetFilter time, so kinds registered later default to dropped —
	// acceptable because all module kinds register during package init.
	filter []bool
}

// New returns a Tracer forwarding to sink. A nil sink yields a nil
// Tracer, i.e. tracing disabled.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// SetFilter restricts the tracer to event kinds matching at least one of
// the given name prefixes (e.g. "task," matches "task.request"). An empty
// list clears the filter. Returns the receiver for chaining.
func (t *Tracer) SetFilter(prefixes []string) *Tracer {
	if t == nil {
		return nil
	}
	if len(prefixes) == 0 {
		t.filter = nil
		return t
	}
	names := RegisteredEvents()
	f := make([]bool, len(names))
	for id, name := range names {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				f[id] = true
				break
			}
		}
	}
	t.filter = f
	return t
}

// ParseFilter splits a comma-separated prefix list ("task,group.elect")
// into the form SetFilter takes, dropping empty elements. A trailing "*"
// is tolerated and stripped, so the glob-flavored "task.*" means the
// prefix "task.".
func ParseFilter(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "*")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Emit records one event. Safe (and free) on a nil receiver.
func (t *Tracer) Emit(at sim.Time, kind EventID, node, peer int32, file uint32, v1, v2 int64) {
	if t == nil {
		return
	}
	if t.filter != nil && (int(kind) >= len(t.filter) || !t.filter[kind]) {
		return
	}
	t.sink.Emit(Event{At: at, Kind: kind, Node: node, Peer: peer, File: file, V1: v1, V2: v2})
}

// Enabled reports whether the tracer is live. Use it only to skip
// expensive argument computation; plain Emit calls need no guard.
func (t *Tracer) Enabled() bool { return t != nil }
