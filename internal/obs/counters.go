package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operation counter, safe for
// concurrent use. Unlike the sim-time tracer, counters are wall-side
// observability for the long-running services (the basestation archive's
// ingest and query paths) where per-event tracing would be overkill: a
// counter costs one atomic add and is snapshotted on demand for /stats
// and expvar.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// CounterGroup is a named set of counters. Counter interning is idempotent
// (the same name always returns the same *Counter), so modules can resolve
// counters once at construction and bump them lock-free afterwards.
type CounterGroup struct {
	mu     sync.Mutex
	byName map[string]*Counter
}

// NewCounterGroup returns an empty group.
func NewCounterGroup() *CounterGroup {
	return &CounterGroup{byName: make(map[string]*Counter)}
}

// Counter interns name and returns its counter. The empty name panics.
func (g *CounterGroup) Counter(name string) *Counter {
	if name == "" {
		panic("obs: empty counter name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.byName[name]
	if !ok {
		c = &Counter{}
		g.byName[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter, keyed by name. The
// map is freshly allocated; values are read atomically but the snapshot as
// a whole is not a consistent cut (fine for monitoring).
func (g *CounterGroup) Snapshot() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.byName))
	for name, c := range g.byName {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (g *CounterGroup) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.byName))
	for name := range g.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
