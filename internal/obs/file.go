package obs

import (
	"fmt"
	"os"
	"strings"
)

// NewFileSink opens path and returns a sink chosen by extension:
// ".jsonl" streams one event per line as it is emitted; ".json" buffers
// the run and renders Chrome trace-event JSON (open it in
// ui.perfetto.dev or chrome://tracing) on Close. Close the sink to
// flush and close the file.
func NewFileSink(path string) (Sink, error) {
	var mk func(f *os.File) Sink
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		mk = func(f *os.File) Sink { return NewJSONL(f) }
	case strings.HasSuffix(path, ".json"):
		mk = func(f *os.File) Sink { return NewPerfetto(f) }
	default:
		return nil, fmt.Errorf("obs: trace output %q must end in .jsonl (event log) or .json (Chrome trace)", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return mk(f), nil
}
