package obs

import "sort"

// Sharded adapts one Tracer for sharded execution. Emitting into a
// shared sink from concurrent shard goroutines would interleave events
// nondeterministically (goroutine schedule order would leak into the
// trace), so each shard gets a private Tracer that buffers into a local
// slice, and Flush — called at every window barrier, on the coordinator
// goroutine — merges the buffers into the base tracer in a
// shard-count-invariant order.
//
// The merge key is (At, Node, per-buffer emission order). Every node
// lives on exactly one shard, so all of a node's events sit in one
// buffer already in that node's emission order; a stable sort by
// (At, Node) therefore totally orders the window. Events from different
// nodes at the same instant are ordered by node ID, which can differ
// from serial execution order for same-instant cross-node ties — the
// trace is bit-identical across shard counts >= 2, and semantically
// identical (same events, same stamps) to the serial trace.
type Sharded struct {
	base *Tracer
	bufs []shardBuf
	trs  []*Tracer
}

// shardBuf pads each shard's buffer header onto its own cache line:
// shard goroutines append concurrently during a window.
type shardBuf struct {
	events []Event
	_      [64]byte
}

// bufSink appends into a shard buffer. Closing is a no-op: the buffers
// are owned by Sharded and drained by Flush.
type bufSink struct{ b *shardBuf }

func (s bufSink) Emit(e Event) { s.b.events = append(s.b.events, e) }
func (s bufSink) Close() error { return nil }

// NewSharded wraps base with n per-shard buffering tracers. A nil base
// returns nil: tracing stays disabled everywhere.
func NewSharded(base *Tracer, n int) *Sharded {
	if base == nil {
		return nil
	}
	sh := &Sharded{base: base, bufs: make([]shardBuf, n), trs: make([]*Tracer, n)}
	for i := range sh.trs {
		// Per-shard tracers inherit the base filter so filtering cost is
		// paid on the shard goroutine, not at the merge.
		sh.trs[i] = &Tracer{sink: bufSink{b: &sh.bufs[i]}, filter: base.filter}
	}
	return sh
}

// Tracers returns the per-shard tracers, indexed by shard. Safe on a
// nil receiver (returns nil: all shards trace into the nil tracer).
func (sh *Sharded) Tracers() []*Tracer {
	if sh == nil {
		return nil
	}
	return sh.trs
}

// Shard returns shard i's tracer; nil when tracing is disabled.
func (sh *Sharded) Shard(i int) *Tracer {
	if sh == nil {
		return nil
	}
	return sh.trs[i]
}

// Flush merges all shard buffers into the base tracer. Must run with
// shards parked (a window barrier). Safe on a nil receiver.
func (sh *Sharded) Flush() {
	if sh == nil {
		return
	}
	var merged []Event
	single := -1
	n := 0
	for i := range sh.bufs {
		if len(sh.bufs[i].events) == 0 {
			continue
		}
		n += len(sh.bufs[i].events)
		if single == -1 {
			single = i
		} else {
			single = -2
		}
	}
	if n == 0 {
		return
	}
	if single >= 0 {
		// One shard emitted this window: its buffer is already ordered.
		merged = sh.bufs[single].events
	} else {
		merged = make([]Event, 0, n)
		for i := range sh.bufs {
			merged = append(merged, sh.bufs[i].events...)
		}
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].At != merged[j].At {
				return merged[i].At < merged[j].At
			}
			return merged[i].Node < merged[j].Node
		})
	}
	for i := range merged {
		e := &merged[i]
		// Re-emit through the base tracer's sink directly: filtering
		// already happened on the shard side.
		sh.base.sink.Emit(*e)
	}
	for i := range sh.bufs {
		sh.bufs[i].events = sh.bufs[i].events[:0]
	}
}
