package radio

import (
	"fmt"
	"sync"
)

// KindID is an interned payload-kind identifier. Payload kinds used to be
// raw strings, which put a map lookup (and, for delivery-event naming, a
// string concatenation) on every Send and every dispatch; interning them
// as small dense integers lets the network stack dispatch through a slice
// and keep per-kind statistics in flat arrays. String names still exist —
// RegisterKind assigns them and KindName recovers them — but only at the
// registration and snapshot boundaries, never per message.
type KindID int32

// kindRegistry is the process-wide kind table. Registration normally
// happens in package init functions (each protocol module interns its
// kinds into package-level vars); the lock exists for test payloads
// registered at runtime and for parallel experiment workers.
type kindRegistry struct {
	mu     sync.RWMutex
	names  []string
	byName map[string]KindID
	// deliverNames pre-computes "radio.deliver:<name>" so the per-Send
	// delivery event needs no string concatenation.
	deliverNames []string
}

var kinds = kindRegistry{byName: make(map[string]KindID)}

// RegisterKind interns a payload kind name and returns its KindID.
// Registration is idempotent: the same name always yields the same ID, so
// independent packages (or repeated test setups) may intern the same kind
// without conflict. Distinct names always yield distinct IDs. The empty
// name panics.
func RegisterKind(name string) KindID {
	if name == "" {
		panic("radio: empty payload kind name")
	}
	kinds.mu.Lock()
	defer kinds.mu.Unlock()
	if id, ok := kinds.byName[name]; ok {
		return id
	}
	id := KindID(len(kinds.names))
	kinds.names = append(kinds.names, name)
	kinds.deliverNames = append(kinds.deliverNames, "radio.deliver:"+name)
	kinds.byName[name] = id
	return id
}

// KindName returns the name a KindID was registered under. Unregistered
// IDs panic: a KindID that did not come from RegisterKind is a bug.
func KindName(id KindID) string {
	kinds.mu.RLock()
	defer kinds.mu.RUnlock()
	if id < 0 || int(id) >= len(kinds.names) {
		panic(fmt.Sprintf("radio: unregistered KindID %d", id))
	}
	return kinds.names[id]
}

// LookupKind returns the KindID registered for name, and false if name
// was never registered. It does not intern.
func LookupKind(name string) (KindID, bool) {
	kinds.mu.RLock()
	defer kinds.mu.RUnlock()
	id, ok := kinds.byName[name]
	return id, ok
}

// NumKinds returns the number of registered kinds; valid KindIDs are
// exactly [0, NumKinds). Stats arrays and dispatch tables size from it.
func NumKinds() int {
	kinds.mu.RLock()
	defer kinds.mu.RUnlock()
	return len(kinds.names)
}

// RegisteredKinds returns a snapshot of every registered kind name,
// indexed by KindID (for guard tests and diagnostics).
func RegisteredKinds() []string {
	kinds.mu.RLock()
	defer kinds.mu.RUnlock()
	out := make([]string, len(kinds.names))
	copy(out, kinds.names)
	return out
}

// deliverName returns the interned "radio.deliver:<kind>" event label.
func deliverName(id KindID) string {
	kinds.mu.RLock()
	defer kinds.mu.RUnlock()
	if id < 0 || int(id) >= len(kinds.deliverNames) {
		panic(fmt.Sprintf("radio: unregistered KindID %d", id))
	}
	return kinds.deliverNames[id]
}
