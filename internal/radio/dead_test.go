package radio

import (
	"reflect"
	"testing"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// TestDeadEndpointsPrunedFromBothPaths is the regression test for the
// cell-index receiver scan: killed endpoints must be skipped by the
// indexed enumeration exactly as the brute-force scan skips them, so a
// dead node receives nothing, consumes no loss draws, and both paths
// stay bit-identical. Revive restores delivery.
func TestDeadEndpointsPrunedFromBothPaths(t *testing.T) {
	for _, brute := range []bool{false, true} {
		name := "indexed"
		if brute {
			name = "brute"
		}
		t.Run(name, func(t *testing.T) {
			s := sim.NewScheduler(1)
			cfg := lossless(5)
			cfg.BruteForce = brute
			n := NewNetwork(s, cfg)
			a := n.Join(0, geometry.Point{})
			b := n.Join(1, geometry.Point{X: 1})
			c := n.Join(2, geometry.Point{X: 2})
			var rb, rc capture
			b.SetHandler(&rb)
			c.SetHandler(&rc)

			b.Kill()
			a.Send(Broadcast, testPayload{kind: kindX, size: 1})
			s.Run(sim.At(time.Second))
			if len(rb.frames) != 0 {
				t.Fatal("dead endpoint received a frame")
			}
			if len(rc.frames) != 1 {
				t.Fatalf("live endpoint got %d frames, want 1", len(rc.frames))
			}
			if got := n.Neighbors(0); !reflect.DeepEqual(got, []int{2}) {
				t.Fatalf("Neighbors(0) = %v with node 1 dead, want [2]", got)
			}

			b.Revive()
			a.Send(Broadcast, testPayload{kind: kindX, size: 1})
			s.Run(sim.At(2 * time.Second))
			if len(rb.frames) != 1 {
				t.Fatalf("revived endpoint got %d frames, want 1", len(rb.frames))
			}
			if got := n.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
				t.Fatalf("Neighbors(0) = %v after revive, want [1 2]", got)
			}
		})
	}
}

// TestDeadSkipKeepsLossDrawsAligned: under loss, the per-receiver draws
// are made in ascending-ID order over the enumerated (live) receivers.
// If one path enumerated a dead node and the other did not, the draw
// streams would shear apart — so an identical delivery log across paths
// with a mid-run kill proves the enumerations match. (The full scripted
// scenario lives in TestIndexedSendBitIdentical; this is the minimal
// loss-sensitive reproduction.)
func TestDeadSkipKeepsLossDrawsAligned(t *testing.T) {
	run := func(brute bool) [][4]int64 {
		s := sim.NewScheduler(99)
		cfg := DefaultConfig(10)
		cfg.LossProb = 0.4
		cfg.BruteForce = brute
		n := NewNetwork(s, cfg)
		d := &deliveryLog{s: s}
		eps := make([]*Endpoint, 6)
		for i := range eps {
			eps[i] = n.Join(i, geometry.Point{X: float64(i)})
			eps[i].SetHandler(d.handlerFor(i))
		}
		s.At(sim.At(300*time.Millisecond), "kill", func() { eps[2].Kill() })
		s.At(sim.At(600*time.Millisecond), "revive", func() { eps[2].Revive() })
		tag := 0
		tick := sim.NewTicker(s, 50*time.Millisecond, "tx", func() {
			tag++
			eps[tag%2].Send(Broadcast, testPayload{kind: kindChatter, size: 4, tag: tag})
		})
		defer tick.Stop()
		s.Run(sim.At(time.Second))
		return d.log
	}
	idx, brute := run(false), run(true)
	if len(idx) == 0 {
		t.Fatal("no deliveries; scenario is vacuous")
	}
	if !reflect.DeepEqual(idx, brute) {
		t.Fatalf("delivery logs diverge with a dead node present:\nindexed: %v\nbrute:   %v", idx, brute)
	}
	// The dead window must show no deliveries to node 2.
	for _, e := range idx {
		if e[1] == 2 && e[0] >= int64(sim.At(300*time.Millisecond)) && e[0] < int64(sim.At(600*time.Millisecond)) {
			t.Fatalf("delivery to dead node 2 at %v", sim.Time(e[0]))
		}
	}
}

// TestPartitionBlocksOnlyScriptedDirection covers the asymmetric-link
// fault: A→B blocked leaves B→A working, healing restores both, and the
// DroppedPartition counter accounts for every cut frame.
func TestPartitionBlocksOnlyScriptedDirection(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var ra, rb capture
	a.SetHandler(&ra)
	b.SetHandler(&rb)

	n.SetLinkBlocked(0, 1, true)
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	b.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 0 {
		t.Fatal("blocked direction delivered")
	}
	if len(ra.frames) != 1 {
		t.Fatalf("reverse direction got %d frames, want 1", len(ra.frames))
	}
	if got := n.Stats().DroppedPartition; got != 1 {
		t.Fatalf("DroppedPartition = %d, want 1", got)
	}

	n.SetLinkBlocked(0, 1, false)
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.Run(sim.At(2 * time.Second))
	if len(rb.frames) != 1 {
		t.Fatal("healed link did not deliver")
	}
}
