// Package radio models the motes' broadcast radio at the fidelity the
// EnviroMic protocols observe: single-hop broadcast within a communication
// range, independent per-receiver packet loss, transmission delay
// proportional to frame size, promiscuous overhearing (every frame in
// range is delivered to every powered-on radio regardless of addressee),
// and an explicit power switch — recorders turn the radio off entirely
// during a recording task because packet processing corrupts high-rate
// sampling (§III-B.1).
//
// The radio is also the only cross-node coupling in the model, which
// makes it the seam for sharded parallel execution (DESIGN.md §14): every
// delivery is scheduled at least Config.Lookahead() after its send, so
// shards can run that far ahead without synchronizing, and Send routes
// deliveries whose receivers live on another shard through the
// coordinator's deposit lanes.
package radio

import (
	"fmt"
	"math/rand"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
)

// Broadcast is the addressee value meaning "all neighbors".
const Broadcast = -1

// Trace event kinds (see DESIGN.md §11): per-receiver delivery failures.
// Node = the receiver that missed the frame, Peer = sender, V1 = the
// payload's KindID (resolve with KindName).
var (
	evDropOff       = obs.RegisterEvent("radio.drop.off")
	evDropLoss      = obs.RegisterEvent("radio.drop.loss")
	evDropPartition = obs.RegisterEvent("radio.drop.partition")
)

// Payload is a protocol message body. Kind discriminates message types
// for the control-overhead accounting in Figs 12/14 — it returns the
// interned KindID obtained from RegisterKind, so per-message accounting
// and dispatch never touch the kind's string name; Size is the payload's
// on-air length in bytes, used for delay and energy.
type Payload interface {
	Kind() KindID
	Size() int
}

// maxInlinePiggyback is the piggyback count a Frame stores inline. The
// neighborhood broadcast layer bundles at most 4 payloads per frame, so
// the inline array covers every frame it emits without allocating.
const maxInlinePiggyback = 4

// Frame is one on-air transmission as seen by a receiver.
type Frame struct {
	From int
	// To is a node ID or Broadcast. Frames are delivered to every
	// powered-on radio in range regardless of To: upper layers use
	// overhearing deliberately (§II-A.2).
	To      int
	Payload Payload
	// Piggyback carries extra delay-tolerant payloads bundled by the
	// neighborhood broadcast layer (§III-A). Send copies the caller's
	// slice into frame-owned storage (inline up to 4 payloads), so
	// callers may reuse their ride buffers immediately.
	Piggyback []Payload
	pb        [maxInlinePiggyback]Payload
	// SentAt is the transmission start time.
	SentAt sim.Time
}

// TotalSize returns the frame's on-air size including piggybacked
// payloads and a fixed MAC header.
func (f *Frame) TotalSize() int {
	n := macHeader + f.Payload.Size()
	for _, p := range f.Piggyback {
		n += p.Size()
	}
	return n
}

// macHeader is the fixed per-frame overhead (802.15.4-ish), and therefore
// the minimum on-air size of any frame — part of the lookahead bound.
const macHeader = 11

// Handler receives frames delivered to an endpoint.
type Handler interface {
	HandleFrame(f *Frame)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(f *Frame)

// HandleFrame implements Handler.
func (fn HandlerFunc) HandleFrame(f *Frame) { fn(f) }

// ActivityListener is notified of radio activity on an endpoint. The mote
// model uses it to inject CPU-contention jitter into the ADC sampler
// (Fig 3): both transmitting and receiving steal cycles, and reception
// steals them even when the application layer ignores the packet.
type ActivityListener interface {
	RadioActivity(kind ActivityKind, dur time.Duration)
}

// ActivityKind distinguishes transmit from receive work.
type ActivityKind int

// Radio activity kinds.
const (
	ActivityTx ActivityKind = iota + 1
	ActivityRx
)

// Config holds network-wide radio parameters.
type Config struct {
	// CommRange is the broadcast radius in deployment units. The paper
	// recommends a communication range larger than the sensing range so
	// one-hop election suppresses most redundancy (§II-A.1).
	CommRange float64
	// LossProb is the independent per-receiver frame loss probability.
	LossProb float64
	// ByteTime is the on-air time per byte (250 kbps 802.15.4 ≈ 32 µs).
	ByteTime time.Duration
	// TurnaroundDelay is fixed per-frame MAC/backoff latency.
	TurnaroundDelay time.Duration
	// Seed derives the per-node random streams (loss draws, and — via
	// Endpoint.Rand — every protocol layer's backoffs and jitter). Two
	// networks with the same Seed draw identically regardless of shard
	// count.
	Seed int64
	// BruteForce disables the spatial neighbor index and re-scans every
	// endpoint on each transmission, as the model originally did. The two
	// paths are bit-identical for a fixed seed (asserted by tests); this
	// switch exists as the reference implementation for those tests and
	// as an escape hatch for debugging the index. Incompatible with
	// sharded execution.
	BruteForce bool
}

// Lookahead returns the minimum latency of any cross-node interaction:
// the fixed turnaround plus the air time of an empty frame. Every
// delivery event fires at least this long after its send, which is the
// conservative-synchronization bound sharded execution runs under.
func (c Config) Lookahead() time.Duration {
	return c.TurnaroundDelay + macHeader*c.ByteTime
}

// DefaultConfig mirrors a MicaZ-class mote running the 2006-era TinyOS
// stack. The 25 ms turnaround is OS/MAC queueing plus CSMA back-off, not
// raw CC2420 latency; it is calibrated so a TASK_REQUEST/TASK_CONFIRM
// exchange costs ~50 ms — the reason the paper's expected task assignment
// delay Dta needs to be ~70 ms (Fig 6).
func DefaultConfig(commRange float64) Config {
	return Config{
		CommRange:       commRange,
		LossProb:        0.05,
		ByteTime:        32 * time.Microsecond,
		TurnaroundDelay: 25 * time.Millisecond,
	}
}

// shardState is the per-shard slice of the network's mutable counters and
// scratch space. During a window each shard goroutine touches only its
// own entry; snapshots (Stats) merge the slices at a barrier. In serial
// mode there is exactly one.
type shardState struct {
	stats Stats
	// Per-kind and per-node transmission counters live in flat arrays
	// indexed by KindID and node ID — the per-Send increment is a bounds
	// check and an add, no map hashing. They are converted to the
	// name-keyed maps of Stats only at snapshot time.
	txByKind     []uint64   // [KindID]count
	txByNode     []uint64   // [nodeID]frames
	txByNodeKind [][]uint64 // [nodeID][KindID]count
	// scratch is the reusable candidate buffer for neighbor rebuilds.
	scratch []int
	// pad spaces adjacent shardStates apart so the per-Send counter
	// increments of different shards do not share a cache line.
	_ [64]byte
}

// countTx records one transmitted payload of the given kind from node.
// The caller has already ensured txByNode/txByNodeKind cover node.
func (st *shardState) countTx(node int, kind KindID) {
	st.txByKind = growKind(st.txByKind, kind)
	st.txByKind[kind]++
	nk := growKind(st.txByNodeKind[node], kind)
	nk[kind]++
	st.txByNodeKind[node] = nk
}

// Network is the shared medium connecting all endpoints of one scenario.
type Network struct {
	cfg   Config
	sched *sim.Scheduler
	eps   map[int]*Endpoint
	// byID holds every endpoint in ascending node-ID order; it backs both
	// the spatial index and the deterministic receiver iteration.
	byID []*Endpoint

	// sh holds the per-shard counters and scratch (one entry in serial
	// mode). shards/shardOf are nil unless SetSharding was called.
	sh      []shardState
	shards  *sim.Shards
	shardOf func(id int) int

	// epoch counts topology changes (Join, SetPos, Kill). Cached neighbor
	// lists and the cell grid are tagged with the epoch they were built at
	// and rebuilt lazily when it moves on — this is what keeps the data
	// mule's relocations correct. Under sharded execution topology may
	// only change on the global lane, and EnsureIndex runs at every
	// barrier, so shard goroutines never observe a stale grid.
	epoch     uint64
	grid      *geometry.CellIndex
	gridEpoch uint64

	// blocked holds directed (sender, receiver) pairs suppressed by a
	// chaos partition overlay, keyed sender<<32|receiver. Nil when no
	// partition is active, so the delivery hot path pays one nil check.
	blocked map[uint64]struct{}

	// tr, when non-nil, receives per-receiver drop events (serial mode).
	// trs, when non-nil, is the per-shard tracer set (sharded mode).
	tr  *obs.Tracer
	trs []*obs.Tracer

	// metrics, when non-nil, holds lane-sharded telemetry counters; each
	// shard bumps its own cache line (SetMetrics).
	metrics *radioMetrics
}

// radioMetrics is the network's telemetry hookup. Counters are
// lane-sharded to the shard count, so the Send/deliver hot paths pay one
// uncontended atomic add when telemetry is on and a nil check when off.
type radioMetrics struct {
	txFrames      *telemetry.Counter
	txBytes       *telemetry.Counter
	delivered     *telemetry.Counter
	dropOff       *telemetry.Counter
	dropLoss      *telemetry.Counter
	dropPartition *telemetry.Counter
}

// SetMetrics attaches telemetry counters to the network. Call it after
// SetSharding so the counter lanes match the shard count; a nil registry
// leaves the network untouched.
func (n *Network) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	lanes := len(n.sh)
	drop := func(cause string) *telemetry.Counter {
		return reg.CounterN("enviromic_radio_drops_total",
			"Frame receptions dropped, by cause.", lanes, telemetry.L("cause", cause))
	}
	n.metrics = &radioMetrics{
		txFrames: reg.CounterN("enviromic_radio_tx_frames_total",
			"Frames transmitted.", lanes),
		txBytes: reg.CounterN("enviromic_radio_tx_bytes_total",
			"Frame bytes transmitted, headers included.", lanes),
		delivered: reg.CounterN("enviromic_radio_rx_delivered_total",
			"Frame receptions delivered to a listening radio.", lanes),
		dropOff:       drop("radio_off"),
		dropLoss:      drop("loss"),
		dropPartition: drop("partition"),
	}
}

// Stats aggregates transmission counts for the overhead figures. The
// maps are the external, name-keyed view; internally the network counts
// into KindID-indexed arrays and materializes these maps in Stats().
type Stats struct {
	// TxByKind counts transmitted frames by payload kind (piggybacked
	// payloads count as their own kind but not as frames).
	TxByKind map[string]uint64
	// TxByNode counts transmitted frames per sender.
	TxByNode map[int]uint64
	// TxByNodeKind counts (sender, kind) pairs, including piggybacked
	// payloads.
	TxByNodeKind map[int]map[string]uint64
	// Delivered and Lost count per-receiver delivery outcomes.
	Delivered, Lost uint64
	// DroppedRadioOff counts frames that found the receiver's radio off.
	DroppedRadioOff uint64
	// DroppedPartition counts frames suppressed by a chaos partition
	// overlay (SetLinkBlocked).
	DroppedPartition uint64
	// TotalFrames counts physical transmissions.
	TotalFrames uint64
	// TotalBytes counts on-air bytes.
	TotalBytes uint64
}

// NewNetwork creates an empty network on the given scheduler.
func NewNetwork(s *sim.Scheduler, cfg Config) *Network {
	if cfg.CommRange <= 0 {
		panic("radio: non-positive communication range")
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		panic(fmt.Sprintf("radio: loss probability %v outside [0,1)", cfg.LossProb))
	}
	return &Network{
		cfg:   cfg,
		sched: s,
		eps:   make(map[int]*Endpoint),
		sh:    make([]shardState, 1),
		epoch: 1,
	}
}

// SetSharding switches the network to sharded delivery: endpoints attach
// to the shard scheduler chosen by shardOf, per-shard counters replace
// the single set, and deliveries crossing shards go through the
// coordinator's deposit lanes. Must be called before any Join, and is
// incompatible with BruteForce (whose full rescan has no spatial
// locality to shard by).
func (n *Network) SetSharding(sh *sim.Shards, shardOf func(id int) int) {
	if len(n.eps) > 0 {
		panic("radio: SetSharding after Join")
	}
	if n.cfg.BruteForce {
		panic("radio: BruteForce is incompatible with sharded execution")
	}
	if sh.Lookahead() > n.cfg.Lookahead() {
		panic(fmt.Sprintf("radio: coordinator lookahead %v exceeds radio minimum latency %v",
			sh.Lookahead(), n.cfg.Lookahead()))
	}
	n.shards = sh
	n.shardOf = shardOf
	n.sh = make([]shardState, sh.N())
}

// growKind ensures the per-kind counter array covers id.
func growKind(a []uint64, id KindID) []uint64 {
	for int(id) >= len(a) {
		a = append(a, 0)
	}
	return a
}

// Stats returns a deep-copied snapshot of the accumulated counters,
// merging the per-shard slices and materializing the internal
// KindID/node-indexed arrays into the name-keyed maps external consumers
// (figures, EXPERIMENTS.md tables) render. Only kinds and nodes with
// non-zero counts appear. Under sharded execution this must run at a
// barrier (global lane or post-run) — it reads every shard's counters.
// The returned struct and its maps are owned by the caller.
func (n *Network) Stats() *Stats {
	var cp Stats
	var txByKind, txByNode []uint64
	var txByNodeKind [][]uint64
	for si := range n.sh {
		st := &n.sh[si]
		cp.Delivered += st.stats.Delivered
		cp.Lost += st.stats.Lost
		cp.DroppedRadioOff += st.stats.DroppedRadioOff
		cp.DroppedPartition += st.stats.DroppedPartition
		cp.TotalFrames += st.stats.TotalFrames
		cp.TotalBytes += st.stats.TotalBytes
	}
	if len(n.sh) == 1 {
		// Serial fast path: with one shard the internal arrays can be
		// read in place. Stats runs on every metrics sample, so skipping
		// the merge copies keeps the serial alloc profile unchanged.
		st := &n.sh[0]
		txByKind, txByNode, txByNodeKind = st.txByKind, st.txByNode, st.txByNodeKind
	} else {
		for si := range n.sh {
			st := &n.sh[si]
			txByKind = mergeCounts(txByKind, st.txByKind)
			txByNode = mergeCounts(txByNode, st.txByNode)
			for node, counts := range st.txByNodeKind {
				if counts == nil {
					continue
				}
				for node >= len(txByNodeKind) {
					txByNodeKind = append(txByNodeKind, nil)
				}
				txByNodeKind[node] = mergeCounts(txByNodeKind[node], counts)
			}
		}
	}
	nkinds := 0
	for _, v := range txByKind {
		if v != 0 {
			nkinds++
		}
	}
	cp.TxByKind = make(map[string]uint64, nkinds)
	for id, v := range txByKind {
		if v != 0 {
			cp.TxByKind[KindName(KindID(id))] = v
		}
	}
	nnodes := 0
	for _, v := range txByNode {
		if v != 0 {
			nnodes++
		}
	}
	cp.TxByNode = make(map[int]uint64, nnodes)
	cp.TxByNodeKind = make(map[int]map[string]uint64, nnodes)
	for node, v := range txByNode {
		if v == 0 {
			continue
		}
		cp.TxByNode[node] = v
		var counts []uint64
		if node < len(txByNodeKind) {
			counts = txByNodeKind[node]
		}
		size := 0
		for _, c := range counts {
			if c != 0 {
				size++
			}
		}
		nk := make(map[string]uint64, size)
		for id, c := range counts {
			if c != 0 {
				nk[KindName(KindID(id))] = c
			}
		}
		cp.TxByNodeKind[node] = nk
	}
	return &cp
}

// mergeCounts element-wise adds src into dst, growing dst as needed.
func mergeCounts(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		grown := make([]uint64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetLossProb changes the per-receiver frame loss probability at runtime
// (chaos loss bursts). The new probability applies to frames sent from
// now on; frames already in flight carry the loss draws made when they
// were transmitted. Under sharded execution this must run on the global
// lane.
func (n *Network) SetLossProb(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: loss probability %v outside [0,1)", p))
	}
	n.cfg.LossProb = p
}

// SetLinkBlocked installs or removes a directed partition edge: while
// blocked, frames from sender `from` are not delivered to receiver `to`
// (they count as DroppedPartition). Blocking is evaluated at delivery
// time, so frames in flight when the partition forms are also cut —
// an RF barrier, not a queue drop. Symmetric partitions block both
// directions with two calls. Under sharded execution this must run on
// the global lane.
func (n *Network) SetLinkBlocked(from, to int, blocked bool) {
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	if blocked {
		if n.blocked == nil {
			n.blocked = make(map[uint64]struct{})
		}
		n.blocked[key] = struct{}{}
		return
	}
	delete(n.blocked, key)
	if len(n.blocked) == 0 {
		n.blocked = nil // restore the nil-check fast path
	}
}

// linkBlocked reports whether the directed pair is partitioned. Callers
// check n.blocked != nil first.
func (n *Network) linkBlocked(from, to int) bool {
	_, ok := n.blocked[uint64(uint32(from))<<32|uint64(uint32(to))]
	return ok
}

// SetTracer installs the protocol tracer (nil disables tracing). Serial
// mode only — sharded runs install one tracer per shard.
func (n *Network) SetTracer(tr *obs.Tracer) { n.tr = tr }

// SetShardTracers installs one tracer per shard for sharded runs; drop
// events are emitted on the receiver's shard tracer.
func (n *Network) SetShardTracers(trs []*obs.Tracer) {
	if n.shards == nil || len(trs) != n.shards.N() {
		panic("radio: SetShardTracers requires sharding with matching count")
	}
	n.trs = trs
}

// trFor returns the tracer drop events on `shard` should go to.
func (n *Network) trFor(shard int) *obs.Tracer {
	if n.trs != nil {
		return n.trs[shard]
	}
	return n.tr
}

// Join registers a new endpoint at a fixed position. Node IDs must be
// unique and non-negative (Broadcast is reserved).
func (n *Network) Join(id int, pos geometry.Point) *Endpoint {
	if id < 0 {
		panic(fmt.Sprintf("radio: invalid node ID %d", id))
	}
	if _, dup := n.eps[id]; dup {
		panic(fmt.Sprintf("radio: duplicate node ID %d", id))
	}
	ep := &Endpoint{id: id, pos: pos, net: n, on: true, sched: n.sched}
	if n.shardOf != nil {
		ep.shard = n.shardOf(id)
		ep.sched = n.shards.Shard(ep.shard)
	}
	ep.rng = sim.NewNodeRand(n.cfg.Seed, id)
	n.eps[id] = ep
	// Insert in ascending ID order (deployments usually join in order, so
	// this is an append in practice).
	at := len(n.byID)
	for at > 0 && n.byID[at-1].id > id {
		at--
	}
	n.byID = append(n.byID, nil)
	copy(n.byID[at+1:], n.byID[at:])
	n.byID[at] = ep
	for i := at; i < len(n.byID); i++ {
		n.byID[i].ord = i
	}
	n.invalidate()
	return ep
}

// invalidate marks every cached neighbor list and the cell grid stale.
func (n *Network) invalidate() { n.epoch++ }

// buildGrid rebuilds the spatial index from current positions.
func (n *Network) buildGrid() {
	pts := make([]geometry.Point, len(n.byID))
	for i, ep := range n.byID {
		pts[i] = ep.pos
	}
	n.grid = geometry.BuildCellIndex(pts, n.cfg.CommRange)
	n.gridEpoch = n.epoch
}

// EnsureIndex rebuilds the spatial index if a topology change left it
// stale. The sharded coordinator calls this at every barrier so that
// shard goroutines — which may rebuild their endpoints' neighbor caches
// concurrently — only ever read an up-to-date, immutable grid.
func (n *Network) EnsureIndex() {
	if !n.cfg.BruteForce && n.gridEpoch != n.epoch && len(n.byID) > 0 {
		n.buildGrid()
	}
}

// neighborsOf returns the live endpoints within communication range of e
// in ascending ID order, excluding e itself and dead endpoints but
// including radio-off ones (power state is checked at delivery time,
// exactly like the original full scan; death is permanent, so dead nodes
// are pruned at enumeration and never drawn loss bits). The list is
// cached on the endpoint and rebuilt from the cell grid after a topology
// change — Kill and Revive both bump the epoch — and rebuilds allocate a
// fresh slice so in-flight delivery closures keep the receiver set that
// was in range when their frame was sent.
func (n *Network) neighborsOf(e *Endpoint) []*Endpoint {
	if e.nbEpoch == n.epoch {
		return e.neighbors
	}
	if n.gridEpoch != n.epoch {
		// Serial mode rebuilds lazily; under sharding EnsureIndex has
		// already run at the barrier (topology only changes there).
		n.buildGrid()
	}
	st := &n.sh[e.shard]
	cand := n.grid.Within(e.pos, n.cfg.CommRange, e.ord, st.scratch[:0])
	st.scratch = cand
	sortInts(cand) // byID positions ascending == node IDs ascending
	nb := make([]*Endpoint, 0, len(cand))
	for _, h := range cand {
		if ep := n.byID[h]; !ep.dead {
			nb = append(nb, ep)
		}
	}
	e.neighbors = nb
	e.nbEpoch = n.epoch
	return nb
}

// bruteReceivers is the pre-index receiver enumeration, kept as the
// reference path for Config.BruteForce and the equivalence tests.
func (n *Network) bruteReceivers(e *Endpoint) []*Endpoint {
	ids := make([]int, 0, len(n.eps))
	for id := range n.eps {
		if id != e.id {
			ids = append(ids, id)
		}
	}
	sortInts(ids)
	var out []*Endpoint
	for _, id := range ids {
		if rx := n.eps[id]; !rx.dead && e.pos.Dist(rx.pos) <= n.cfg.CommRange {
			out = append(out, rx)
		}
	}
	return out
}

// Neighbors returns the IDs of nodes within communication range of id
// (excluding itself), regardless of power state, in ascending order.
func (n *Network) Neighbors(id int) []int {
	self, ok := n.eps[id]
	if !ok {
		panic(fmt.Sprintf("radio: unknown node %d", id))
	}
	nbs := n.neighborsOf(self)
	out := make([]int, len(nbs))
	for i, ep := range nbs {
		out[i] = ep.id
	}
	return out
}

// Endpoint is one node's attachment to the medium.
type Endpoint struct {
	id       int
	pos      geometry.Point
	net      *Network
	on       bool
	handler  Handler
	listener ActivityListener
	dead     bool

	// sched is the scheduler this node's events run on: the network
	// scheduler in serial mode, the owning shard's in sharded mode.
	sched *sim.Scheduler
	// rng is the node's private random stream (see sim.NewNodeRand).
	rng *rand.Rand
	// shard is the owning shard index (0 in serial mode).
	shard int
	// txSeq counts this endpoint's transmissions; with the sender ID it
	// orders same-instant cross-shard deposits deterministically.
	txSeq uint64

	// ord is the endpoint's position in net.byID.
	ord int
	// neighbors caches the in-range receiver list (ascending ID), valid
	// while nbEpoch matches the network epoch.
	neighbors []*Endpoint
	nbEpoch   uint64
}

// ID returns the node ID.
func (e *Endpoint) ID() int { return e.id }

// Pos returns the node position.
func (e *Endpoint) Pos() geometry.Point { return e.pos }

// Sched returns the scheduler this node's events run on. Protocol layers
// above the radio must schedule their per-node timers here so that, under
// sharded execution, a node's entire event stream stays on its shard.
func (e *Endpoint) Sched() *sim.Scheduler { return e.sched }

// Rand returns the node's private random stream. All runtime protocol
// randomness for this node (election backoffs, listen jitter, detection
// draws) must come from here rather than the run scheduler's stream —
// per-node streams are consumed in per-node event order, which is what
// keeps sharded runs bit-identical to serial ones.
func (e *Endpoint) Rand() *rand.Rand { return e.rng }

// Shard returns the owning shard index (0 in serial mode).
func (e *Endpoint) Shard() int { return e.shard }

// SetPos relocates the endpoint. Motes are fixed after deployment; this
// exists for the data mule, which physically moves between query stops.
// Moving invalidates the network's cached neighbor lists. Under sharded
// execution this must run on the global lane.
func (e *Endpoint) SetPos(p geometry.Point) {
	e.pos = p
	e.net.invalidate()
}

// SetHandler installs the frame receiver. Installing nil silences the
// endpoint (frames still consume RX activity — the radio hardware
// processes them either way).
func (e *Endpoint) SetHandler(h Handler) { e.handler = h }

// SetActivityListener installs the CPU-contention hook.
func (e *Endpoint) SetActivityListener(l ActivityListener) { e.listener = l }

// SetRadio switches the transceiver. While off, the endpoint neither
// receives nor may transmit.
func (e *Endpoint) SetRadio(on bool) { e.on = on }

// RadioOn reports the power state.
func (e *Endpoint) RadioOn() bool { return e.on && !e.dead }

// Kill disables the endpoint (node failure injection). Dead endpoints
// are pruned from receiver enumeration — both the cell-index and
// brute-force paths skip them identically, so the seeded loss draws stay
// bit-identical between paths — and frames already in flight find them
// via the RadioOn check at delivery. Reversible with Revive. Under
// sharded execution this must run on the global lane.
func (e *Endpoint) Kill() {
	e.dead = true
	e.net.invalidate()
}

// Revive re-enables a killed endpoint (chaos reboot). The node rejoins
// receiver enumeration for frames sent from now on; frames in flight
// when it was dead were addressed to the old receiver set and stay lost.
func (e *Endpoint) Revive() {
	e.dead = false
	e.net.invalidate()
}

// Alive reports whether the endpoint is functional.
func (e *Endpoint) Alive() bool { return !e.dead }

// Send transmits a frame. to is a node ID or Broadcast; the frame is
// physically delivered to every powered-on endpoint in range either way.
// Sending with the radio off or from a dead node panics — that is a
// protocol-layer bug, not an environmental condition.
func (e *Endpoint) Send(to int, payload Payload, piggyback ...Payload) {
	if e.dead {
		panic(fmt.Sprintf("radio: node %d is dead and cannot transmit", e.id))
	}
	if !e.on {
		panic(fmt.Sprintf("radio: node %d transmitting with radio off", e.id))
	}
	n := e.net
	f := &Frame{From: e.id, To: to, Payload: payload, SentAt: e.sched.Now()}
	if len(piggyback) > 0 {
		// Copy into frame-owned storage (inline for the broadcast layer's
		// ≤4-payload bundles) so callers may reuse their ride buffers
		// while this frame is still in flight.
		f.Piggyback = append(f.pb[:0], piggyback...)
	}
	airTime := n.cfg.TurnaroundDelay + time.Duration(f.TotalSize())*n.cfg.ByteTime

	st := &n.sh[e.shard]
	st.stats.TotalFrames++
	st.stats.TotalBytes += uint64(f.TotalSize())
	if m := n.metrics; m != nil {
		m.txFrames.AddLane(e.shard, 1)
		m.txBytes.AddLane(e.shard, int64(f.TotalSize()))
	}
	for e.id >= len(st.txByNode) {
		st.txByNode = append(st.txByNode, 0)
		st.txByNodeKind = append(st.txByNodeKind, nil)
	}
	st.txByNode[e.id]++
	kind := payload.Kind()
	st.countTx(e.id, kind)
	for _, p := range f.Piggyback {
		st.countTx(e.id, p.Kind())
	}

	if e.listener != nil {
		e.listener.RadioActivity(ActivityTx, airTime)
	}

	// Receiver enumeration. Both paths yield the in-range endpoints in
	// ascending ID order — the order the original full scan used — so the
	// per-receiver RNG draws below consume the sender's random stream
	// identically whichever path is active.
	var receivers []*Endpoint
	if n.cfg.BruteForce {
		receivers = n.bruteReceivers(e)
	} else {
		receivers = n.neighborsOf(e)
	}

	// Loss is drawn per receiver at transmission time (ascending ID
	// order, from the sender's stream — invariant under sharding), then
	// carried to the delivery event as a bitmap. Receiver sets above 64
	// spill into an allocated slice; typical densities fit the single
	// word. Draws happen even for an empty receiver set's length-0 loop
	// trivially, keeping the stream aligned across topologies with and
	// without neighbors.
	if len(receivers) == 0 {
		return
	}
	var lossWord uint64
	var lossBits []uint64
	if n.cfg.LossProb > 0 {
		if len(receivers) > 64 {
			lossBits = make([]uint64, (len(receivers)+63)/64)
		}
		for i := range receivers {
			if e.rng.Float64() < n.cfg.LossProb {
				if lossBits != nil {
					lossBits[i/64] |= 1 << (i % 64)
				} else {
					lossWord |= 1 << i
				}
			}
		}
	}

	rxTime := time.Duration(f.TotalSize()) * n.cfg.ByteTime
	name := deliverName(kind)
	e.txSeq++
	txSeq := e.txSeq

	if n.shards == nil {
		// Serial: one delivery event for the whole receiver list, walking
		// ascending ID order. PostDelivery keys the event by
		// (sender, txSeq) so same-instant deliveries from different
		// senders fire in the same order a sharded run's merge produces.
		e.sched.PostDelivery(airTime, e.id, txSeq, name, func() {
			n.deliver(receivers, f, lossWord, lossBits, rxTime, kind)
		})
		return
	}

	// Sharded: route every destination shard's receiver subset through
	// the coordinator's deposit lanes — including the sender's own shard,
	// so that all deliveries arriving at one instant sort by the same
	// shard-count-invariant (at, sentAt, sender, txSeq) key no matter how
	// the nodes are partitioned. The delivery fires at least
	// Config.Lookahead() from now, i.e. beyond the current window, so
	// merging at the next barrier always precedes it.
	sentAt := f.SentAt
	at := sentAt.Add(airTime)

	sameShard := true
	for _, rx := range receivers {
		if rx.shard != receivers[0].shard {
			sameShard = false
			break
		}
	}
	if sameShard {
		n.shards.Deposit(e.shard, receivers[0].shard, at, sentAt, e.id, txSeq, name, func() {
			n.deliver(receivers, f, lossWord, lossBits, rxTime, kind)
		})
		return
	}

	// Boundary transmission: split receivers (and their loss bits) by
	// destination shard, preserving ascending ID order within each
	// subset. Shards are visited in order of first appearance in the
	// receiver list, which is deterministic.
	var order []int
	subsets := make(map[int][]int)
	for i, rx := range receivers {
		g := rx.shard
		if _, seen := subsets[g]; !seen {
			order = append(order, g)
		}
		subsets[g] = append(subsets[g], i)
	}
	for _, g := range order {
		idxs := subsets[g]
		subset := make([]*Endpoint, len(idxs))
		var subWord uint64
		var subBits []uint64
		if len(idxs) > 64 {
			subBits = make([]uint64, (len(idxs)+63)/64)
		}
		for j, i := range idxs {
			subset[j] = receivers[i]
			lost := lossWord&(1<<i) != 0
			if lossBits != nil {
				lost = lossBits[i/64]&(1<<(i%64)) != 0
			}
			if lost {
				if subBits != nil {
					subBits[j/64] |= 1 << (j % 64)
				} else {
					subWord |= 1 << j
				}
			}
		}
		n.shards.Deposit(e.shard, g, at, sentAt, e.id, txSeq, name, func() {
			n.deliver(subset, f, subWord, subBits, rxTime, kind)
		})
	}
}

// deliver walks one shard's receiver subset in ascending ID order. It
// runs on the receivers' scheduler (all entries share a shard), so the
// per-shard counters and tracer it touches are single-threaded.
func (n *Network) deliver(rxs []*Endpoint, f *Frame, lossWord uint64, lossBits []uint64, rxTime time.Duration, kind KindID) {
	shard := rxs[0].shard
	st := &n.sh[shard]
	tr := n.trFor(shard)
	m := n.metrics
	now := rxs[0].sched.Now()
	for i, rx := range rxs {
		if !rx.RadioOn() {
			st.stats.DroppedRadioOff++
			if m != nil {
				m.dropOff.AddLane(shard, 1)
			}
			tr.Emit(now, evDropOff, int32(rx.id), int32(f.From), 0, int64(kind), 0)
			continue
		}
		if n.blocked != nil && n.linkBlocked(f.From, rx.id) {
			st.stats.DroppedPartition++
			if m != nil {
				m.dropPartition.AddLane(shard, 1)
			}
			tr.Emit(now, evDropPartition, int32(rx.id), int32(f.From), 0, int64(kind), 0)
			continue
		}
		lost := lossWord&(1<<i) != 0
		if lossBits != nil {
			lost = lossBits[i/64]&(1<<(i%64)) != 0
		}
		if lost {
			st.stats.Lost++
			if m != nil {
				m.dropLoss.AddLane(shard, 1)
			}
			tr.Emit(now, evDropLoss, int32(rx.id), int32(f.From), 0, int64(kind), 0)
			continue
		}
		st.stats.Delivered++
		if m != nil {
			m.delivered.AddLane(shard, 1)
		}
		if rx.listener != nil {
			rx.listener.RadioActivity(ActivityRx, rxTime)
		}
		if rx.handler != nil {
			rx.handler.HandleFrame(f)
		}
	}
}

func sortInts(a []int) {
	// Insertion sort: neighbor lists are small and this avoids pulling in
	// sort for a hot path with 5-20 entries.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
