package radio

import (
	"testing"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// Interned kinds for the test payloads (shared with index_test.go).
var (
	kindHello   = RegisterKind("hello")
	kindTask    = RegisterKind("task")
	kindX       = RegisterKind("x")
	kindSensing = RegisterKind("sensing")
	kindTTL     = RegisterKind("ttl")
	kindChatter = RegisterKind("chatter")
	kindQuery   = RegisterKind("query")
)

// testPayload is a minimal payload for exercising the medium.
type testPayload struct {
	kind KindID
	size int
	tag  int
}

func (p testPayload) Kind() KindID { return p.kind }
func (p testPayload) Size() int    { return p.size }

func lossless(commRange float64) Config {
	cfg := DefaultConfig(commRange)
	cfg.LossProb = 0
	return cfg
}

type capture struct {
	frames []*Frame
}

func (c *capture) HandleFrame(f *Frame) { c.frames = append(c.frames, f) }

func TestBroadcastReachesNodesInRange(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(2.0))
	a := n.Join(0, geometry.Point{X: 0, Y: 0})
	b := n.Join(1, geometry.Point{X: 1, Y: 0}) // in range
	c := n.Join(2, geometry.Point{X: 5, Y: 0}) // out of range
	var rb, rc capture
	b.SetHandler(&rb)
	c.SetHandler(&rc)
	a.Send(Broadcast, testPayload{kind: kindHello, size: 4})
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 1 {
		t.Fatalf("in-range node got %d frames, want 1", len(rb.frames))
	}
	if len(rc.frames) != 0 {
		t.Fatalf("out-of-range node got %d frames, want 0", len(rc.frames))
	}
	f := rb.frames[0]
	if f.From != 0 || f.To != Broadcast || f.Payload.Kind() != kindHello {
		t.Errorf("frame = %+v", f)
	}
}

func TestUnicastIsOverheard(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	c := n.Join(2, geometry.Point{X: 2})
	var rb, rc capture
	b.SetHandler(&rb)
	c.SetHandler(&rc)
	a.Send(1, testPayload{kind: kindTask, size: 8})
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 1 {
		t.Error("addressee did not receive")
	}
	// Overhearing is load-bearing for the TASK_CONFIRM optimization.
	if len(rc.frames) != 1 {
		t.Error("third party did not overhear the unicast")
	}
	if rc.frames[0].To != 1 {
		t.Error("overheard frame lost its addressee")
	}
}

func TestRadioOffDropsFrames(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var rb capture
	b.SetHandler(&rb)
	b.SetRadio(false)
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 0 {
		t.Error("radio-off node received a frame")
	}
	if n.Stats().DroppedRadioOff != 1 {
		t.Errorf("DroppedRadioOff = %d, want 1", n.Stats().DroppedRadioOff)
	}
	// Radio back on: deliveries resume.
	b.SetRadio(true)
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.Run(sim.At(2 * time.Second))
	if len(rb.frames) != 1 {
		t.Error("delivery did not resume after radio on")
	}
}

func TestRadioOffAtDeliveryTimeDrops(t *testing.T) {
	// The receiver is on at send time but powers off before the frame's
	// air time elapses — the frame must be lost.
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var rb capture
	b.SetHandler(&rb)
	a.Send(Broadcast, testPayload{kind: kindX, size: 100})
	s.After(time.Microsecond, "off", func() { b.SetRadio(false) })
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 0 {
		t.Error("frame delivered to a radio that powered off mid-flight")
	}
}

func TestSendWithRadioOffPanics(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	a.SetRadio(false)
	defer func() {
		if recover() == nil {
			t.Error("transmit with radio off did not panic")
		}
	}()
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
}

func TestDeadNodeNeitherSendsNorReceives(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var rb capture
	b.SetHandler(&rb)
	b.Kill()
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.Run(sim.At(time.Second))
	if len(rb.frames) != 0 {
		t.Error("dead node received a frame")
	}
	if b.Alive() {
		t.Error("Alive() after Kill()")
	}
	defer func() {
		if recover() == nil {
			t.Error("dead node transmit did not panic")
		}
	}()
	b.Send(Broadcast, testPayload{kind: kindX, size: 1})
}

func TestPacketLossIsApplied(t *testing.T) {
	s := sim.NewScheduler(42)
	cfg := lossless(5)
	cfg.LossProb = 0.5
	n := NewNetwork(s, cfg)
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var rb capture
	b.SetHandler(&rb)
	const trials = 400
	for i := 0; i < trials; i++ {
		a.Send(Broadcast, testPayload{kind: kindX, size: 1, tag: i})
	}
	s.RunAll()
	got := len(rb.frames)
	if got < trials/4 || got > trials*3/4 {
		t.Errorf("with 50%% loss, delivered %d of %d (expected near half)", got, trials)
	}
	st := n.Stats()
	if st.Delivered+st.Lost != trials {
		t.Errorf("Delivered+Lost = %d, want %d", st.Delivered+st.Lost, trials)
	}
}

func TestTransmissionDelayScalesWithSize(t *testing.T) {
	s := sim.NewScheduler(1)
	cfg := lossless(5)
	cfg.ByteTime = time.Millisecond
	cfg.TurnaroundDelay = 10 * time.Millisecond
	n := NewNetwork(s, cfg)
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var deliveredAt sim.Time
	b.SetHandler(HandlerFunc(func(f *Frame) { deliveredAt = s.Now() }))
	a.Send(Broadcast, testPayload{kind: kindX, size: 20})
	s.RunAll()
	// 10ms turnaround + (11 MAC + 20 payload) bytes × 1ms.
	want := sim.At(41 * time.Millisecond)
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestPiggybackCountsAndSize(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var rb capture
	b.SetHandler(&rb)
	a.Send(Broadcast, testPayload{kind: kindSensing, size: 10},
		testPayload{kind: kindTTL, size: 6})
	s.RunAll()
	if len(rb.frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(rb.frames))
	}
	f := rb.frames[0]
	if len(f.Piggyback) != 1 || f.Piggyback[0].Kind() != kindTTL {
		t.Fatalf("piggyback = %+v", f.Piggyback)
	}
	if f.TotalSize() != 11+10+6 {
		t.Errorf("TotalSize = %d, want 27", f.TotalSize())
	}
	st := n.Stats()
	if st.TotalFrames != 1 {
		t.Errorf("TotalFrames = %d, want 1 (piggyback must not add frames)", st.TotalFrames)
	}
	if st.TxByKind["sensing"] != 1 || st.TxByKind["ttl"] != 1 {
		t.Errorf("TxByKind = %v", st.TxByKind)
	}
	if st.TxByNodeKind[0]["ttl"] != 1 {
		t.Errorf("TxByNodeKind = %v", st.TxByNodeKind)
	}
}

func TestNeighbors(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(2.5))
	n.Join(0, geometry.Point{X: 0})
	n.Join(1, geometry.Point{X: 2})
	n.Join(2, geometry.Point{X: 4})
	n.Join(3, geometry.Point{X: 9})
	got := n.Neighbors(1)
	if len(got) != 2 {
		t.Fatalf("Neighbors(1) = %v, want 2 nodes", got)
	}
	seen := map[int]bool{}
	for _, id := range got {
		seen[id] = true
	}
	if !seen[0] || !seen[2] {
		t.Errorf("Neighbors(1) = %v, want {0,2}", got)
	}
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []int {
		s := sim.NewScheduler(9)
		cfg := lossless(100)
		cfg.LossProb = 0.3
		n := NewNetwork(s, cfg)
		tx := n.Join(0, geometry.Point{})
		var order []int
		for id := 1; id <= 20; id++ {
			ep := n.Join(id, geometry.Point{X: float64(id % 5)})
			rxID := id
			ep.SetHandler(HandlerFunc(func(f *Frame) { order = append(order, rxID) }))
		}
		for i := 0; i < 10; i++ {
			tx.Send(Broadcast, testPayload{kind: kindX, size: 3, tag: i})
		}
		s.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverges at %d", i)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(1))
	n.Join(0, geometry.Point{})
	for _, fn := range []func(){
		func() { n.Join(0, geometry.Point{}) },  // duplicate
		func() { n.Join(-1, geometry.Point{}) }, // negative
		func() { n.Neighbors(99) },              // unknown
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid operation did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	for _, cfg := range []Config{
		{CommRange: 0},
		{CommRange: 1, LossProb: -0.1},
		{CommRange: 1, LossProb: 1.0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewNetwork(s, cfg)
		}()
	}
}

type activityRecorder struct {
	tx, rx int
}

func (a *activityRecorder) RadioActivity(kind ActivityKind, dur time.Duration) {
	switch kind {
	case ActivityTx:
		a.tx++
	case ActivityRx:
		a.rx++
	}
}

func TestActivityListenerSeesTxAndRx(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	b := n.Join(1, geometry.Point{X: 1})
	var la, lb activityRecorder
	a.SetActivityListener(&la)
	b.SetActivityListener(&lb)
	// No handler installed on b: the radio still burns CPU on reception.
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.RunAll()
	if la.tx != 1 || la.rx != 0 {
		t.Errorf("sender activity tx/rx = %d/%d, want 1/0", la.tx, la.rx)
	}
	if lb.rx != 1 {
		t.Errorf("receiver activity rx = %d, want 1 (even without handler)", lb.rx)
	}
}
