package radio

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// testDeployments mirrors the geometry package's index stress layouts:
// uniform random, clustered (many nodes per cell), and collinear with
// pairs exactly at the communication range.
func testDeployments(r float64) map[string][]geometry.Point {
	rng := rand.New(rand.NewSource(11))
	random := make([]geometry.Point, 80)
	for i := range random {
		random[i] = geometry.Point{X: rng.Float64()*30 - 15, Y: rng.Float64()*30 - 15}
	}
	var clustered []geometry.Point
	for _, c := range []geometry.Point{{X: -10, Y: -10}, {X: 8, Y: 2}, {X: 0, Y: 12}} {
		for i := 0; i < 25; i++ {
			clustered = append(clustered, geometry.Point{
				X: c.X + rng.Float64()*r - r/2,
				Y: c.Y + rng.Float64()*r - r/2,
			})
		}
	}
	collinear := make([]geometry.Point, 40)
	for i := range collinear {
		collinear[i] = geometry.Point{X: float64(i) * r / 2, Y: 0}
	}
	return map[string][]geometry.Point{
		"random": random, "clustered": clustered, "collinear": collinear,
	}
}

func TestNeighborsIndexMatchesBruteForce(t *testing.T) {
	const r = 3.5
	for name, pts := range testDeployments(r) {
		s := sim.NewScheduler(1)
		n := NewNetwork(s, lossless(r))
		for i, p := range pts {
			n.Join(i, p)
		}
		for id := range pts {
			got := n.Neighbors(id)
			var want []int
			for other, q := range pts {
				if other != id && pts[id].Dist(q) <= r {
					want = append(want, other)
				}
			}
			sort.Ints(want)
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("%s: Neighbors(%d) = %v, want %v", name, id, got, want)
			}
		}
	}
}

// TestNeighborCacheInvalidation moves an endpoint (the data-mule case)
// and verifies both its own and other nodes' neighbor lists track the
// move.
func TestNeighborCacheInvalidation(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(2))
	a := n.Join(0, geometry.Point{X: 0})
	n.Join(1, geometry.Point{X: 1})
	mule := n.Join(2, geometry.Point{X: 50})

	if got := n.Neighbors(0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("initial Neighbors(0) = %v, want [1]", got)
	}
	if got := n.Neighbors(2); len(got) != 0 {
		t.Fatalf("initial Neighbors(2) = %v, want none", got)
	}

	mule.SetPos(geometry.Point{X: 0.5})
	if got := n.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("post-move Neighbors(0) = %v, want [1 2]", got)
	}
	if got := n.Neighbors(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("post-move Neighbors(2) = %v, want [0 1]", got)
	}

	// Frames sent after the move must reach the mule.
	var rx capture
	mule.SetHandler(&rx)
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.RunAll()
	if len(rx.frames) != 1 {
		t.Fatalf("mule received %d frames after relocating into range", len(rx.frames))
	}
}

// deliveryLog records every frame delivery as (virtual time, receiver,
// sender, payload tag) so two runs can be compared event-for-event.
type deliveryLog struct {
	s   *sim.Scheduler
	log [][4]int64
}

func (d *deliveryLog) handlerFor(id int) Handler {
	return HandlerFunc(func(f *Frame) {
		d.log = append(d.log, [4]int64{int64(d.s.Now()), int64(id), int64(f.From), int64(f.Payload.(testPayload).tag)})
	})
}

// driveScriptedTraffic runs a fixed scenario — random senders under loss,
// a relocating mule, a node failure, radio power toggles — and returns
// the delivery log and final stats.
func driveScriptedTraffic(bruteForce bool) (*deliveryLog, *Stats) {
	const r = 3.0
	s := sim.NewScheduler(42)
	cfg := DefaultConfig(r)
	cfg.LossProb = 0.15
	cfg.BruteForce = bruteForce
	n := NewNetwork(s, cfg)
	d := &deliveryLog{s: s}

	pts := testDeployments(r)["random"]
	eps := make([]*Endpoint, len(pts))
	for i, p := range pts {
		eps[i] = n.Join(i, p)
		eps[i].SetHandler(d.handlerFor(i))
	}
	mule := n.Join(len(pts), geometry.Point{X: 100, Y: 100})
	mule.SetHandler(d.handlerFor(len(pts)))

	tag := 0
	tick := sim.NewTicker(s, 40*time.Millisecond, "traffic", func() {
		from := eps[s.Rand().Intn(len(eps))]
		if !from.Alive() || !from.RadioOn() {
			return
		}
		tag++
		from.Send(Broadcast, testPayload{kind: kindChatter, size: 12, tag: tag})
	})
	defer tick.Stop()

	// Mule tour: relocate every 300 ms and query.
	stops := []geometry.Point{{X: -10, Y: -10}, {X: 0, Y: 0}, {X: 10, Y: 10}, {X: 100, Y: 100}}
	for i, stop := range stops {
		stop := stop
		s.At(sim.At(time.Duration(i+1)*300*time.Millisecond), "mule.move", func() {
			mule.SetPos(stop)
			mule.Send(Broadcast, testPayload{kind: kindQuery, size: 6, tag: -1})
		})
	}
	// A node dies mid-run; another power-cycles its radio.
	s.At(sim.At(700*time.Millisecond), "kill", func() { eps[7].Kill() })
	s.At(sim.At(500*time.Millisecond), "radio-off", func() { eps[3].SetRadio(false) })
	s.At(sim.At(900*time.Millisecond), "radio-on", func() { eps[3].SetRadio(true) })

	s.Run(sim.At(2 * time.Second))
	return d, n.Stats()
}

// TestIndexedSendBitIdentical asserts the acceptance criterion: for a
// fixed seed, the spatial-index fast path and the brute-force scan
// produce identical delivery sequences and identical radio statistics.
func TestIndexedSendBitIdentical(t *testing.T) {
	logIdx, statsIdx := driveScriptedTraffic(false)
	logBrute, statsBrute := driveScriptedTraffic(true)
	if len(logIdx.log) == 0 {
		t.Fatal("scripted traffic delivered nothing; scenario is vacuous")
	}
	if len(logIdx.log) != len(logBrute.log) {
		t.Fatalf("delivery counts diverge: indexed %d, brute %d", len(logIdx.log), len(logBrute.log))
	}
	for i := range logIdx.log {
		if logIdx.log[i] != logBrute.log[i] {
			t.Fatalf("delivery %d diverges: indexed %v, brute %v", i, logIdx.log[i], logBrute.log[i])
		}
	}
	if !reflect.DeepEqual(statsIdx, statsBrute) {
		t.Fatalf("stats diverge:\nindexed: %+v\nbrute:   %+v", statsIdx, statsBrute)
	}
}

// TestStatsSnapshot asserts the Stats() maps are deep copies: mutating a
// snapshot must not corrupt the network's counters, and a snapshot must
// not track later traffic.
func TestStatsSnapshot(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(5))
	a := n.Join(0, geometry.Point{})
	n.Join(1, geometry.Point{X: 1})
	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.RunAll()

	snap := n.Stats()
	snap.TxByKind["x"] = 999
	snap.TxByNode[0] = 999
	snap.TxByNodeKind[0]["x"] = 999
	snap.TotalFrames = 999

	fresh := n.Stats()
	if fresh.TxByKind["x"] != 1 || fresh.TxByNode[0] != 1 || fresh.TxByNodeKind[0]["x"] != 1 {
		t.Errorf("mutating a snapshot leaked into the network: %+v", fresh)
	}
	if fresh.TotalFrames != 1 {
		t.Errorf("TotalFrames = %d, want 1", fresh.TotalFrames)
	}

	a.Send(Broadcast, testPayload{kind: kindX, size: 1})
	s.RunAll()
	if fresh.TxByKind["x"] != 1 {
		t.Error("old snapshot tracked traffic sent after it was taken")
	}
}

// TestJoinOutOfOrder verifies the ID-sorted endpoint slice handles
// non-monotonic joins (the mule joins last with a high ID in practice,
// but nothing requires that).
func TestJoinOutOfOrder(t *testing.T) {
	s := sim.NewScheduler(1)
	n := NewNetwork(s, lossless(10))
	for _, id := range []int{5, 1, 9, 0, 3} {
		n.Join(id, geometry.Point{X: float64(id)})
	}
	want := []int{0, 1, 3, 9}
	if got := n.Neighbors(5); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(5) = %v, want %v", got, want)
	}
}
