package timesync

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// loopback delivers every node's delay-tolerant sends to all other nodes
// after a small delay, emulating a fully-connected lossless neighborhood.
type loopback struct {
	sched *sim.Scheduler
	nodes []*Sync
	delay time.Duration
	from  int
	sent  int
}

func (l *loopback) forNode(id int) Transport {
	cp := *l
	cp.from = id
	return &nodeTransport{l: l, from: id}
}

type nodeTransport struct {
	l    *loopback
	from int
}

func (t *nodeTransport) SendDelayTolerant(p radio.Payload) {
	b, ok := p.(Beacon)
	if !ok {
		return
	}
	t.l.sent++
	for _, n := range t.l.nodes {
		if n.id == t.from {
			continue
		}
		n := n
		t.l.sched.After(t.l.delay, "test.deliver", func() { n.HandleBeacon(b) })
	}
}

func buildNetwork(t *testing.T, sched *sim.Scheduler, drifts []float64) ([]*Sync, []*Clock, *loopback) {
	t.Helper()
	lb := &loopback{sched: sched, delay: 5 * time.Millisecond}
	clocks := make([]*Clock, len(drifts))
	nodes := make([]*Sync, len(drifts))
	for i, d := range drifts {
		clocks[i] = &Clock{DriftPPM: d, Offset: time.Duration(i) * 137 * time.Millisecond}
		nodes[i] = New(i, clocks[i], sched, nil, DefaultConfig())
	}
	lb.nodes = nodes
	for i, n := range nodes {
		n.tr = lb.forNode(i)
	}
	return nodes, clocks, lb
}

func TestClockDistortion(t *testing.T) {
	c := &Clock{DriftPPM: 100, Offset: time.Second}
	g := sim.At(1000 * time.Second)
	want := sim.Time(float64(g)*1.0001) + sim.Time(time.Second)
	if got := c.Local(g); got != want {
		t.Errorf("Local = %v, want %v", got, want)
	}
}

func TestRootElectionConvergesToLowestID(t *testing.T) {
	sched := sim.NewScheduler(1)
	nodes, _, _ := buildNetwork(t, sched, []float64{10, -20, 35, 50})
	for _, n := range nodes {
		n.Start()
	}
	sched.Run(sim.At(5 * time.Minute))
	for i, n := range nodes {
		if n.Root() != 0 {
			t.Errorf("node %d root = %d, want 0", i, n.Root())
		}
	}
}

func TestNodesSynchronizeToRoot(t *testing.T) {
	sched := sim.NewScheduler(1)
	nodes, clocks, _ := buildNetwork(t, sched, []float64{0, 40, -60, 25})
	for _, n := range nodes {
		n.Start()
	}
	sched.Run(sim.At(10 * time.Minute))
	for i := 1; i < len(nodes); i++ {
		if !nodes[i].Synchronized() {
			t.Fatalf("node %d never synchronized", i)
		}
		err := nodes[i].ErrorVsRoot(clocks[0])
		if math.Abs(err.Seconds()) > 0.010 {
			t.Errorf("node %d sync error %v, want < 10ms", i, err)
		}
	}
}

func TestSkewEstimationBeatsOffsetOnly(t *testing.T) {
	// With 500 ppm drift and 10 s beacons, offset-only correction would
	// err by ~5 ms between beacons; the regression should do much better
	// at the instant right before a new beacon. Delivery delay emulates
	// MAC-layer timestamping (FTSP's trick), so it is set to ~100 µs —
	// a slower path would appear as a constant offset bias instead.
	sched := sim.NewScheduler(1)
	nodes, clocks, lb := buildNetwork(t, sched, []float64{0, 500})
	lb.delay = 100 * time.Microsecond
	for _, n := range nodes {
		n.Start()
	}
	sched.Run(sim.At(5 * time.Minute))
	// Advance to just before the next beacon.
	sched.Run(sim.At(5*time.Minute + 9*time.Second))
	err := nodes[1].ErrorVsRoot(clocks[0])
	if math.Abs(err.Seconds()) > 0.002 {
		t.Errorf("sync error with skew fit = %v, want < 2ms", err)
	}
}

func TestAdaptiveRateReducesBeacons(t *testing.T) {
	run := func(active bool) int {
		sched := sim.NewScheduler(1)
		lb := &loopback{sched: sched, delay: time.Millisecond}
		n := New(0, &Clock{}, sched, nil, DefaultConfig())
		lb.nodes = []*Sync{n}
		n.tr = lb.forNode(0)
		n.SetActive(active)
		n.Start()
		sched.Run(sim.At(10 * time.Minute))
		return lb.sent
	}
	activeSent, idleSent := run(true), run(false)
	if activeSent <= idleSent {
		t.Errorf("active rate (%d beacons) not higher than idle rate (%d)", activeSent, idleSent)
	}
	if idleSent == 0 {
		t.Error("idle mode stopped beaconing entirely")
	}
}

func TestSetActiveMidRunAdjustsPeriod(t *testing.T) {
	sched := sim.NewScheduler(1)
	lb := &loopback{sched: sched, delay: time.Millisecond}
	n := New(0, &Clock{}, sched, nil, DefaultConfig())
	lb.nodes = []*Sync{n}
	n.tr = lb.forNode(0)
	n.Start()
	sched.Run(sim.At(2 * time.Minute))
	idlePhase := lb.sent
	n.SetActive(true)
	sched.Run(sim.At(4 * time.Minute))
	activePhase := lb.sent - idlePhase
	if activePhase <= idlePhase {
		t.Errorf("active phase sent %d <= idle phase %d over equal spans", activePhase, idlePhase)
	}
}

func TestRootFailoverAndReclaim(t *testing.T) {
	sched := sim.NewScheduler(1)
	nodes, _, lb := buildNetwork(t, sched, []float64{0, 10, 20})
	for _, n := range nodes {
		n.Start()
	}
	sched.Run(sim.At(2 * time.Minute))
	// Kill the root: stop its beaconing and remove it from delivery.
	nodes[0].Stop()
	lb.nodes = nodes[1:]
	sched.Run(sim.At(10 * time.Minute))
	for _, n := range nodes[1:] {
		if n.Root() != 1 {
			t.Errorf("node %d root after failover = %d, want 1", n.id, n.Root())
		}
	}
}

func TestAddReferenceSynchronizesDirectly(t *testing.T) {
	// A recorder that missed beacons gets synchronized by task-assignment
	// references alone.
	sched := sim.NewScheduler(1)
	clock := &Clock{DriftPPM: 80, Offset: 3 * time.Second}
	n := New(5, clock, sched, nil, Config{
		BasePeriod: time.Second, IdlePeriod: time.Minute,
		MaxReferences: 4, RootTimeout: time.Minute,
	})
	n.root = 0 // pretend election already happened
	sched.Run(sim.At(10 * time.Second))
	n.AddReference(n.LocalNow(), sched.Now())
	sched.Run(sim.At(20 * time.Second))
	n.AddReference(n.LocalNow(), sched.Now())
	sched.Run(sim.At(25 * time.Second))
	err := n.ErrorVsRoot(&Clock{})
	if math.Abs(err.Seconds()) > 0.001 {
		t.Errorf("direct-reference sync error = %v", err)
	}
}

func TestHandleBeaconIgnoresStaleRoundsAndRoots(t *testing.T) {
	sched := sim.NewScheduler(1)
	n := New(3, &Clock{}, sched, nil, DefaultConfig())
	n.HandleBeacon(Beacon{Root: 1, Seq: 5, Global: sched.Now()})
	if n.Root() != 1 || n.seq != 5 {
		t.Fatalf("root/seq = %d/%d", n.Root(), n.seq)
	}
	refs := len(n.refs)
	n.HandleBeacon(Beacon{Root: 2, Seq: 9, Global: sched.Now()}) // worse root
	if n.Root() != 1 {
		t.Error("worse root adopted")
	}
	n.HandleBeacon(Beacon{Root: 1, Seq: 5, Global: sched.Now()}) // duplicate round
	if len(n.refs) != refs {
		t.Error("duplicate round added a reference")
	}
	n.HandleBeacon(Beacon{Root: 1, Seq: 6, Global: sched.Now()}) // new round
	if len(n.refs) != refs+1 {
		t.Error("new round did not add a reference")
	}
}

func TestReferenceTableBounded(t *testing.T) {
	sched := sim.NewScheduler(1)
	cfg := DefaultConfig()
	cfg.MaxReferences = 4
	n := New(3, &Clock{}, sched, nil, cfg)
	for i := 0; i < 20; i++ {
		sched.Run(sim.At(time.Duration(i+1) * time.Second))
		n.AddReference(n.LocalNow(), sched.Now())
	}
	if len(n.refs) != 4 {
		t.Errorf("reference table = %d entries, want 4", len(n.refs))
	}
}

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	for _, cfg := range []Config{
		{BasePeriod: 0, IdlePeriod: time.Minute, MaxReferences: 4},
		{BasePeriod: time.Minute, IdlePeriod: time.Second, MaxReferences: 4},
		{BasePeriod: time.Second, IdlePeriod: time.Minute, MaxReferences: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(0, &Clock{}, sched, nil, cfg)
		}()
	}
}

func TestDoubleStartPanics(t *testing.T) {
	sched := sim.NewScheduler(1)
	lb := &loopback{sched: sched, delay: time.Millisecond}
	n := New(0, &Clock{}, sched, nil, DefaultConfig())
	lb.nodes = []*Sync{n}
	n.tr = lb.forNode(0)
	n.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	n.Start()
}

func TestBeaconPayloadContract(t *testing.T) {
	var b Beacon
	if b.Kind() != KindBeacon {
		t.Errorf("Kind = %q", radio.KindName(b.Kind()))
	}
	if b.Size() != 14 {
		t.Errorf("Size = %d", b.Size())
	}
}

// Property: the regression recovers an exact affine clock from noiseless
// references — GlobalTime equals true time for any drift/offset.
func TestQuickRegressionRecoversAffineClock(t *testing.T) {
	f := func(driftPPM int16, offsetMS uint16, anchors [5]uint8) bool {
		sched := sim.NewScheduler(1)
		clock := &Clock{
			DriftPPM: float64(driftPPM) / 4, // up to ±8192 ppm
			Offset:   time.Duration(offsetMS) * time.Millisecond,
		}
		n := New(7, clock, sched, nil, DefaultConfig())
		n.root = 0
		at := time.Duration(0)
		for _, a := range anchors {
			at += time.Duration(a+1) * time.Second
			sched.Run(sim.At(at))
			n.AddReference(n.LocalNow(), sched.Now())
		}
		sched.Run(sim.At(at + 30*time.Second))
		err := n.GlobalTime() - sched.Now()
		if err < 0 {
			err = -err
		}
		// Noiseless affine fit: sub-millisecond recovery.
		return time.Duration(err) < time.Millisecond
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
