// Package timesync implements the paper's time-stamping module: an
// FTSP-adapted flooding time synchronization protocol (§III-A). Each mote
// has a drifting hardware clock; a root (the lowest node ID heard) floods
// periodic beacons carrying the global time estimate; receivers collect
// (local, global) reference pairs and fit offset and skew by linear
// regression. Two power optimizations from the paper are included: the
// beacon rate is reduced when acoustic events are rare, and recorders are
// further synchronized by the references embedded in the leader's task
// assignment messages (AddReference).
package timesync

import (
	"fmt"
	"time"

	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// Clock is a mote's hardware oscillator: a linear distortion of global
// time. Real motes never see global time; in the simulation the
// distortion is computed from it.
type Clock struct {
	// DriftPPM is the frequency error in parts per million.
	DriftPPM float64
	// Offset is the power-on phase error.
	Offset time.Duration
}

// Local converts true global time to this clock's reading.
func (c *Clock) Local(global sim.Time) sim.Time {
	return sim.Time(float64(global)*(1+c.DriftPPM*1e-6)) + sim.Time(c.Offset)
}

// Step shifts the clock phase by d (chaos clock-skew injection: a
// brown-out or oscillator glitch that jumps the hardware clock). The sync
// regression sees the jump as reference outliers and refits toward the
// new phase as fresh beacons arrive.
func (c *Clock) Step(d time.Duration) { c.Offset += d }

// Beacon is the sync flood payload.
type Beacon struct {
	Root int
	Seq  uint32
	// Global is the sender's estimate of global time at transmission.
	Global sim.Time
}

// KindBeacon is the sync beacon payload kind, interned at package init.
var KindBeacon = radio.RegisterKind("timesync")

// Kind implements radio.Payload.
func (Beacon) Kind() radio.KindID { return KindBeacon }

// Size implements radio.Payload: root (2) + seq (4) + global (8).
func (Beacon) Size() int { return 14 }

// Transport lets the sync module send beacons without owning the radio;
// the node layer wires it into the neighborhood broadcaster so beacons
// piggyback on other traffic when possible.
type Transport interface {
	SendDelayTolerant(p radio.Payload)
}

// Config holds protocol timing parameters.
type Config struct {
	// BasePeriod is the beacon period while the network is active.
	BasePeriod time.Duration
	// IdlePeriod is the stretched period when events are rare (the
	// paper's power optimization).
	IdlePeriod time.Duration
	// MaxReferences bounds the regression table per node.
	MaxReferences int
	// RootTimeout declares the root dead when no beacon with its ID has
	// arrived for this long, restarting election.
	RootTimeout time.Duration
}

// DefaultConfig mirrors typical FTSP deployments scaled to the testbed.
func DefaultConfig() Config {
	return Config{
		BasePeriod:    10 * time.Second,
		IdlePeriod:    60 * time.Second,
		MaxReferences: 8,
		RootTimeout:   45 * time.Second,
	}
}

// Sync is one node's synchronization state machine.
type Sync struct {
	id    int
	clock *Clock
	sched *sim.Scheduler
	tr    Transport
	cfg   Config

	root        int
	seq         uint32 // highest sequence seen (or issued, when root)
	lastRootMsg sim.Time
	refs        []refPoint
	a, b        float64 // global ≈ a·local + b
	haveFit     bool
	active      bool
	ticker      *sim.Ticker
}

type refPoint struct {
	local, global sim.Time
}

// New creates a sync instance. Every node initially considers itself
// root; lower IDs win as beacons propagate (FTSP election).
func New(id int, clock *Clock, sched *sim.Scheduler, tr Transport, cfg Config) *Sync {
	if cfg.BasePeriod <= 0 || cfg.IdlePeriod < cfg.BasePeriod {
		panic("timesync: invalid beacon periods")
	}
	if cfg.MaxReferences < 2 {
		panic("timesync: need at least 2 reference slots")
	}
	s := &Sync{id: id, clock: clock, sched: sched, tr: tr, cfg: cfg, root: id}
	return s
}

// Start begins beaconing.
func (s *Sync) Start() {
	if s.ticker != nil {
		panic("timesync: already started")
	}
	s.ticker = sim.NewTicker(s.sched, s.period(), fmt.Sprintf("timesync.beacon.%d", s.id), s.tick)
}

// Stop halts beaconing.
func (s *Sync) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// SetActive switches between the base and idle beacon rates. The node
// layer calls it when acoustic activity starts and ends.
func (s *Sync) SetActive(active bool) {
	if s.active == active {
		return
	}
	s.active = active
	if s.ticker != nil {
		s.ticker.Reset(s.period())
	}
}

func (s *Sync) period() time.Duration {
	if s.active {
		return s.cfg.BasePeriod
	}
	return s.cfg.IdlePeriod
}

func (s *Sync) tick() {
	now := s.sched.Now()
	// The root is presumed dead only after several silent rounds of the
	// *current* beacon period: a fixed timeout shorter than the idle
	// period would declare a healthy root dead every idle tick.
	timeout := s.cfg.RootTimeout
	if min := 3 * s.period(); timeout < min {
		timeout = min
	}
	if s.root != s.id && now.Sub(s.lastRootMsg) > timeout {
		// Root presumed dead: claim the role (a surviving lower ID will
		// reclaim it on its next beacon).
		s.root = s.id
	}
	if s.root == s.id {
		s.seq++
		s.tr.SendDelayTolerant(Beacon{Root: s.id, Seq: s.seq, Global: s.GlobalTime()})
		return
	}
	if s.haveFit {
		// Re-flood the newest round with our own estimate so deeper nodes
		// synchronize too.
		s.tr.SendDelayTolerant(Beacon{Root: s.root, Seq: s.seq, Global: s.GlobalTime()})
	}
}

// HandleBeacon processes a received beacon. The node layer calls it from
// its frame dispatcher.
func (s *Sync) HandleBeacon(b Beacon) {
	now := s.sched.Now()
	switch {
	case b.Root < s.root:
		// Better root: adopt and reset references (they described a
		// different timebase only if we were our own root; keep them
		// otherwise — the global timebase is the same network-wide).
		if s.root == s.id {
			s.refs = nil
			s.haveFit = false
		}
		s.root = b.Root
		s.seq = b.Seq
	case b.Root > s.root:
		return // stale root, ignore
	case b.Seq <= s.seq && b.Seq != 0:
		// Already seen this round. Refloods by peers do not prove the
		// root is alive — only fresh sequence numbers do — so this must
		// not refresh the liveness clock.
		return
	default:
		s.seq = b.Seq
	}
	s.lastRootMsg = now
	s.AddReference(s.clock.Local(now), b.Global)
}

// AddReference inserts a (local clock, global time) pair and refits the
// regression. Task-assignment messages carry the leader's global estimate,
// so the task layer also calls this on recorders (§III-A).
func (s *Sync) AddReference(local, global sim.Time) {
	s.refs = append(s.refs, refPoint{local: local, global: global})
	if len(s.refs) > s.cfg.MaxReferences {
		s.refs = s.refs[len(s.refs)-s.cfg.MaxReferences:]
	}
	s.refit()
}

func (s *Sync) refit() {
	n := len(s.refs)
	if n == 0 {
		return
	}
	if n == 1 {
		s.a = 1
		s.b = float64(s.refs[0].global - s.refs[0].local)
		s.haveFit = true
		return
	}
	// Least squares with centering for numeric stability on ns scales.
	var meanL, meanG float64
	for _, r := range s.refs {
		meanL += float64(r.local)
		meanG += float64(r.global)
	}
	meanL /= float64(n)
	meanG /= float64(n)
	var sxx, sxy float64
	for _, r := range s.refs {
		dl := float64(r.local) - meanL
		dg := float64(r.global) - meanG
		sxx += dl * dl
		sxy += dl * dg
	}
	if sxx == 0 {
		s.a = 1
		s.b = meanG - meanL
	} else {
		s.a = sxy / sxx
		s.b = meanG - s.a*meanL
	}
	s.haveFit = true
}

// LocalNow returns the hardware clock reading.
func (s *Sync) LocalNow() sim.Time { return s.clock.Local(s.sched.Now()) }

// GlobalTime returns the node's estimate of the current global time. The
// root's own estimate is its hardware clock (it *defines* the timebase);
// before any fit a non-root node falls back to its raw clock too.
func (s *Sync) GlobalTime() sim.Time {
	local := s.LocalNow()
	if s.root == s.id || !s.haveFit {
		return local
	}
	return sim.Time(s.a*float64(local) + s.b)
}

// Synchronized reports whether the node has at least one reference fit
// (or is the root).
func (s *Sync) Synchronized() bool { return s.root == s.id || s.haveFit }

// Root returns the current root ID.
func (s *Sync) Root() int { return s.root }

// ErrorVsRoot returns the difference between this node's global estimate
// and the root clock's reading of the same instant, given the root's
// hardware clock. Evaluation helper: the protocol cannot compute this.
func (s *Sync) ErrorVsRoot(rootClock *Clock) time.Duration {
	now := s.sched.Now()
	return time.Duration(s.GlobalTime() - rootClock.Local(now))
}
