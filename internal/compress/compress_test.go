package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{128},
		{128, 128},
		{1, 2, 3, 4, 5},
		bytes.Repeat([]byte{128}, 1000), // silence
		{10, 250, 3, 0, 255, 128},
	}
	for i, in := range cases {
		enc := Encode(in)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, in) {
			t.Errorf("case %d: round trip mismatch", i)
		}
	}
}

func TestSilenceCompressesHard(t *testing.T) {
	silence := bytes.Repeat([]byte{128}, 226)
	if r := Ratio(silence); r > 0.05 {
		t.Errorf("silence ratio = %.3f, want < 0.05", r)
	}
}

func TestToneCompresses(t *testing.T) {
	// A quantized sine: small deltas, many short runs.
	tone := make([]byte, 2048)
	for i := range tone {
		tone[i] = byte(128 + 100*math.Sin(float64(i)*0.05))
	}
	if r := Ratio(tone); r > 0.8 {
		t.Errorf("slow tone ratio = %.3f, want < 0.8", r)
	}
}

func TestNoiseBoundedExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	noise := make([]byte, 4096)
	rng.Read(noise)
	if r := Ratio(noise); r > 1.05 {
		t.Errorf("noise ratio = %.3f, want <= ~1.05 (bounded expansion)", r)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	bad := [][]byte{
		{128, 0x00},          // truncated op
		{128, 0x00, 5},       // run missing delta
		{128, 0x01, 4, 1, 2}, // literal too short
		{128, 0x03, 1, 1},    // unknown op
		{128, 0x02, 4, 1},    // truncated packed segment
		{128, 0x01, 0},       // zero-length op
	}
	for i, s := range bad {
		if _, err := Decode(s); err == nil {
			t.Errorf("corrupt stream %d accepted", i)
		}
	}
}

// Property: Decode(Encode(x)) == x for arbitrary input.
func TestQuickRoundTrip(t *testing.T) {
	f := func(in []byte) bool {
		dec, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, in)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: expansion is bounded (never more than ~2 bytes overhead per
// 255-byte literal segment plus the header).
func TestQuickBoundedSize(t *testing.T) {
	f := func(in []byte) bool {
		enc := Encode(in)
		bound := len(in) + 2*(len(in)/255+2)
		return len(enc) <= bound
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
