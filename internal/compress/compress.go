// Package compress implements the lightweight audio compression the paper
// points to as an easy integration (§V, citing Sadler & Martonosi's
// energy-constrained compression): delta encoding of the 8-bit sample
// stream followed by run-length encoding of small-delta runs. Acoustic
// samples are strongly correlated sample-to-sample, so deltas concentrate
// near zero; silence and steady tones collapse dramatically, while
// white-noise-like input degrades gracefully (bounded expansion).
//
// The storage balancer can apply it to chunks in transit, cutting on-air
// bytes — the dominant energy cost of load balancing.
package compress

import (
	"errors"
	"fmt"
)

// Encoding format: a stream of ops.
//
//	0x00 n d   — run: n (1-255) repetitions of delta d
//	0x01 n ... — literal: n (1-255) raw delta bytes follow
//	0x02 n ... — packed: n (1-255) deltas in [−8, 7], two per byte
//	             (delta+8 in each nibble, high nibble first)
//
// Deltas are sample[i] − sample[i−1] (mod 256); the first sample is
// emitted verbatim as the stream header.

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("compress: corrupt stream")

// Encode compresses an 8-bit sample stream. Empty input encodes to an
// empty stream.
func Encode(samples []byte) []byte {
	if len(samples) == 0 {
		return nil
	}
	// Delta transform.
	deltas := make([]byte, len(samples)-1)
	prev := samples[0]
	for i := 1; i < len(samples); i++ {
		deltas[i-1] = samples[i] - prev
		prev = samples[i]
	}
	out := []byte{samples[0]}
	i := 0
	small := func(d byte) bool { return d <= 7 || d >= 248 } // [−8, 7] mod 256
	runLen := func(at int) int {
		run := 1
		for at+run < len(deltas) && deltas[at+run] == deltas[at] && run < 255 {
			run++
		}
		return run
	}
	for i < len(deltas) {
		if run := runLen(i); run >= 3 {
			out = append(out, 0x00, byte(run), deltas[i])
			i += run
			continue
		}
		// Small-delta segment: pack two deltas per byte. Worth it from 4
		// deltas (2 bytes payload + 2 header vs 4 literal + 2 header).
		if small(deltas[i]) {
			start := i
			for i < len(deltas) && i-start < 255 && small(deltas[i]) && runLen(i) < 8 {
				i++
			}
			if i-start >= 4 {
				seg := deltas[start:i]
				out = append(out, 0x02, byte(len(seg)))
				for j := 0; j < len(seg); j += 2 {
					b := (seg[j] + 8) << 4
					if j+1 < len(seg) {
						b |= (seg[j+1] + 8) & 0x0F
					}
					out = append(out, b)
				}
				continue
			}
			i = start // too short to be worth packing; fall through
		}
		// Literal segment up to the next worthwhile run or packable span.
		start := i
		for i < len(deltas) && i-start < 255 {
			if runLen(i) >= 3 {
				break
			}
			if small(deltas[i]) {
				// Probe whether a packable span starts here.
				k := i
				for k < len(deltas) && k-i < 255 && small(deltas[k]) && runLen(k) < 8 {
					k++
				}
				if k-i >= 4 {
					break
				}
			}
			i++
		}
		if i == start {
			i++ // guarantee progress
		}
		seg := deltas[start:i]
		out = append(out, 0x01, byte(len(seg)))
		out = append(out, seg...)
	}
	return out
}

// Decode reverses Encode.
func Decode(stream []byte) ([]byte, error) {
	if len(stream) == 0 {
		return nil, nil
	}
	out := []byte{stream[0]}
	prev := stream[0]
	i := 1
	for i < len(stream) {
		if i+1 >= len(stream) {
			return nil, fmt.Errorf("%w: truncated op at %d", ErrCorrupt, i)
		}
		op, n := stream[i], int(stream[i+1])
		i += 2
		if n == 0 {
			return nil, fmt.Errorf("%w: zero-length op at %d", ErrCorrupt, i-2)
		}
		switch op {
		case 0x00:
			if i >= len(stream) {
				return nil, fmt.Errorf("%w: truncated run at %d", ErrCorrupt, i)
			}
			d := stream[i]
			i++
			for j := 0; j < n; j++ {
				prev += d
				out = append(out, prev)
			}
		case 0x01:
			if i+n > len(stream) {
				return nil, fmt.Errorf("%w: truncated literal at %d", ErrCorrupt, i)
			}
			for _, d := range stream[i : i+n] {
				prev += d
				out = append(out, prev)
			}
			i += n
		case 0x02:
			nb := (n + 1) / 2
			if i+nb > len(stream) {
				return nil, fmt.Errorf("%w: truncated packed segment at %d", ErrCorrupt, i)
			}
			for j := 0; j < n; j++ {
				b := stream[i+j/2]
				var nib byte
				if j%2 == 0 {
					nib = b >> 4
				} else {
					nib = b & 0x0F
				}
				prev += nib - 8
				out = append(out, prev)
			}
			i += nb
		default:
			return nil, fmt.Errorf("%w: unknown op 0x%02x at %d", ErrCorrupt, op, i-2)
		}
	}
	return out, nil
}

// Ratio returns compressed/original size for a sample stream (1.0 means
// no gain; values slightly above 1.0 are possible on incompressible
// input).
func Ratio(samples []byte) float64 {
	if len(samples) == 0 {
		return 1
	}
	return float64(len(Encode(samples))) / float64(len(samples))
}
