package compress

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary streams to the decoder: it must never panic
// and must reject or decode deterministically.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{128})
	f.Add([]byte{128, 0x00, 5, 1})
	f.Add([]byte{128, 0x01, 2, 7, 9})
	f.Add([]byte{128, 0x02, 4, 0x18, 0x7F})
	f.Add(Encode([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	f.Fuzz(func(t *testing.T, stream []byte) {
		out, err := Decode(stream)
		if err != nil {
			return
		}
		// A valid stream must re-encode to something that decodes to the
		// same samples (canonical round trip through the data).
		back, err2 := Decode(Encode(out))
		if err2 != nil {
			t.Fatalf("re-encode of decoded data failed: %v", err2)
		}
		if !bytes.Equal(back, out) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}

// FuzzEncodeRoundTrip checks Decode(Encode(x)) == x for arbitrary inputs.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{128, 128, 128, 128})
	f.Add([]byte{0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, in []byte) {
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("round trip error: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatal("round trip mismatch")
		}
	})
}
