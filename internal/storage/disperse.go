// Dispersal mode (storage.ModeDisperse): instead of migrating whole
// chunks toward the richest neighbor, a recorder erasure-codes each
// finished recording — one dispersal group — into n fragments (any k
// reconstruct it, see internal/erasure) and pushes one fragment to each
// of its n least-loaded audible neighbors over the same bulk-transfer
// plane migration uses. The k data fragments are the recording's own
// chunks (the code is systematic), sent as store-resident originals and
// removed from local flash only once the receiving neighbor has
// acknowledged the whole fragment; the n−k parity fragments are
// packetized into carrier chunks (erasure.Carriers) materialized at
// send time. A node death then costs at most the fragments that node
// held, and retrieval reconstructs the group from any k survivors —
// the persistent-storage-node dispersal line of Aly et al.
package storage

import (
	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
)

// Trace event kinds for dispersal. disperse.start fires once per group
// when the recorder finishes encoding (File = data file, V1 = first
// sequence number, V2 = count<<16 | n<<8 | k); disperse.out fires when a
// fragment is fully acknowledged by its target (Peer = target, V1 =
// first seq, V2 = fragment index); disperse.fail when a fragment's
// session ends short of a full ack (same shape). The chaos k-of-n
// survivability invariant replays exactly these events to track where
// every fragment lives.
var (
	evDisperseStart = obs.RegisterEvent("storage.disperse.start")
	evDisperseOut   = obs.RegisterEvent("storage.disperse.out")
	evDisperseFail  = obs.RegisterEvent("storage.disperse.fail")
)

// DisperseConfig parameterizes the erasure geometry.
type DisperseConfig struct {
	// N is the fragment count per group, K the number needed to
	// reconstruct. The zero value means the shipped default (6,4).
	N, K int
}

// DefaultDisperseConfig is the geometry the survivability matrix ships:
// tolerate any two fragment losses at 50% storage overhead.
func DefaultDisperseConfig() DisperseConfig { return DisperseConfig{N: 6, K: 4} }

// withDefaults resolves the zero value.
func (c DisperseConfig) withDefaults() DisperseConfig {
	if c.N == 0 && c.K == 0 {
		return DefaultDisperseConfig()
	}
	return c
}

// fragJob is one queued fragment send.
type fragJob struct {
	g      erasure.Group
	index  int
	target int
	gen    uint64
	cells  []*flash.Chunk // data fragment: store-resident originals
	blob   []byte         // parity fragment: encoded blob, packetized at send time
}

// Disperser is one node's dispersal module. It shares the balancer's
// bulk plane and neighbor TTL table; fragments go out sequentially (one
// bulk session at a time, like migration batches).
type Disperser struct {
	id    int
	bulk  *netstack.Bulk
	sched *sim.Scheduler
	store *flash.Store
	bal   *Balancer
	code  *erasure.Code
	tr    *obs.Tracer

	queue []fragJob
	busy  bool
	// gen orphans in-flight session completions across Stop, exactly
	// like Balancer.gen: a callback from before a node death must not
	// touch the store. Parity carriers it holds are recycled; data
	// originals are left to crash recovery (the store owns them).
	gen uint64

	// Counters for metrics.
	Groups, DispersedFragments, FailedFragments uint64
}

// NewDisperser wires a disperser next to an existing (ModeDisperse)
// balancer. The geometry is validated eagerly — a bad (n,k) is a
// configuration error, not a runtime one.
func NewDisperser(id int, bulk *netstack.Bulk, sched *sim.Scheduler, store *flash.Store, bal *Balancer, cfg DisperseConfig) (*Disperser, error) {
	cfg = cfg.withDefaults()
	code, err := erasure.Cached(cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	return &Disperser{
		id:    id,
		bulk:  bulk,
		sched: sched,
		store: store,
		bal:   bal,
		code:  code,
	}, nil
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (d *Disperser) SetTracer(tr *obs.Tracer) { d.tr = tr }

// N and K expose the geometry.
func (d *Disperser) N() int { return d.code.N() }
func (d *Disperser) K() int { return d.code.K() }

// Stop orphans in-flight and queued fragment sends (node death). Queued
// parity blobs are plain memory; queued data cells stay store-owned, so
// dropping the queue leaks nothing.
func (d *Disperser) Stop() {
	d.gen++
	d.busy = false
	d.queue = nil
}

// OnRecorded disperses one finished recording. chunks must be the
// store-resident chunks the recording just enqueued, in sequence order —
// the core's device wrapper hands them over right after StoreChunks.
// Parity is encoded immediately (while every original is guaranteed
// present); the fragment sends then drain sequentially. With no audible
// neighbor the group simply stays whole on the recorder: its k data
// fragments are the local chunks, and the survivability invariant
// accounts for them exactly that way.
func (d *Disperser) OnRecorded(chunks []*flash.Chunk) {
	if len(chunks) == 0 {
		return
	}
	now := d.sched.Now()
	first, last := chunks[0], chunks[len(chunks)-1]
	g := erasure.Group{
		File:     first.File,
		Origin:   first.Origin,
		FirstSeq: first.Seq,
		Count:    uint32(len(chunks)),
		Start:    first.Start,
		End:      last.End,
		N:        d.code.N(),
		K:        d.code.K(),
	}
	blobs, err := erasure.EncodeParity(d.code, g, chunks)
	if err != nil {
		// Only reachable if the device handed over a non-contiguous or
		// foreign batch; refuse to disperse rather than corrupt a group.
		return
	}
	d.Groups++
	d.tr.Emit(now, evDisperseStart, int32(d.id), 0, uint32(g.File),
		int64(g.FirstSeq), int64(g.Count)<<16|int64(g.N)<<8|int64(g.K))
	targets := d.bal.RankedNeighbors(now, g.N)
	if len(targets) == 0 {
		return
	}
	gen := d.gen
	for j := 0; j < g.N; j++ {
		job := fragJob{g: g, index: j, target: targets[j%len(targets)], gen: gen}
		if j < g.K {
			for s := 0; s*g.K+j < len(chunks); s++ {
				job.cells = append(job.cells, chunks[s*g.K+j])
			}
		} else {
			job.blob = blobs[j-g.K]
		}
		d.queue = append(d.queue, job)
	}
	d.sendNext()
}

// sendNext starts the next queued fragment session if none is in
// flight.
func (d *Disperser) sendNext() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	job := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	if job.blob != nil {
		d.sendParity(job)
	} else {
		d.sendData(job)
	}
}

// sendData ships a data fragment: the originals stay in local flash
// until the target acknowledges every cell, then they are removed (no
// wear cost — Remove is a pointer-table rebuild) and recycled. A short
// ack leaves everything local: the fragment has no remote holder, which
// disperse.fail records, but the data itself is still safe at home.
func (d *Disperser) sendData(job fragJob) {
	cells := job.cells
	d.bulk.SendChunks(job.target, cells, func(acked int, failed []*flash.Chunk) {
		if job.gen != d.gen {
			return // node died mid-session; crash recovery owns the cells
		}
		d.busy = false
		now := d.sched.Now()
		if acked == len(cells) {
			d.DispersedFragments++
			d.tr.Emit(now, evDisperseOut, int32(d.id), int32(job.target), uint32(job.g.File),
				int64(job.g.FirstSeq), int64(job.index))
			set := make(map[*flash.Chunk]bool, len(cells))
			for _, c := range cells {
				set[c] = true
			}
			removed := d.store.Remove(func(c *flash.Chunk) bool { return set[c] })
			flash.FreeChunks(removed)
		} else {
			d.FailedFragments++
			d.tr.Emit(now, evDisperseFail, int32(d.id), int32(job.target), uint32(job.g.File),
				int64(job.g.FirstSeq), int64(job.index))
		}
		d.sendNext()
	})
}

// sendParity ships a parity fragment, materializing its carrier chunks
// only now — queued jobs hold just the blob bytes, so a Stop between
// enqueue and send leaks nothing from the chunk pool. The carriers are
// ours alone (acked ones traveled as wire clones) and recycle when the
// session ends, whatever its outcome.
func (d *Disperser) sendParity(job fragJob) {
	carriers := erasure.Carriers(job.g, job.index, job.blob)
	d.bulk.SendChunks(job.target, carriers, func(acked int, failed []*flash.Chunk) {
		if job.gen != d.gen {
			flash.FreeChunks(carriers)
			return
		}
		d.busy = false
		now := d.sched.Now()
		if acked == len(carriers) {
			d.DispersedFragments++
			d.tr.Emit(now, evDisperseOut, int32(d.id), int32(job.target), uint32(job.g.File),
				int64(job.g.FirstSeq), int64(job.index))
		} else {
			d.FailedFragments++
			d.tr.Emit(now, evDisperseFail, int32(d.id), int32(job.target), uint32(job.g.File),
				int64(job.g.FirstSeq), int64(job.index))
		}
		flash.FreeChunks(carriers)
		d.sendNext()
	})
}
