// Package storage implements EnviroMic's distributed storage balancing
// (§II-B). Each node tracks a time-to-live: TTLstorage = C(t)/R(t), the
// time until local flash saturates at the EWMA data acquisition rate, and
// TTLenergy = E(t)/D(R(t)), the time until the battery dies if data keeps
// being moved out at that rate. Nodes advertise their TTL to neighbors
// (piggybacked on other traffic); when a neighbor's TTL exceeds the local
// TTL by a factor βi — which varies linearly between 1 and βmax with the
// local TTL, so nodes grow more sensitive to imbalance as they fill up —
// and storage (not energy) is the bottleneck, chunks migrate from the
// head of the local circular queue to that neighbor over the reliable
// bulk transfer. Received data counts into the receiver's acquisition
// rate, so hot-spot data cascades outward hop by hop (Fig 18).
package storage

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/netstack"
	"enviromic/internal/obs"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// KindTTL is the TTL advertisement payload kind, interned at package
// init.
var KindTTL = radio.RegisterKind("storage.ttl")

// Trace event kinds (see DESIGN.md §11). ttl.compare fires on every
// migration check with a live richest neighbor (Peer = neighbor, V1/V2 =
// local/neighbor TTL in seconds); beta fires when the imbalance ratio
// crosses βi (V1 = βi·1000, V2 = ratio·1000); migrate.start/out/fail
// carry Peer = transfer target and V1 = chunk counts (out V2 = chunks
// that failed in the same batch); migrate.in carries the accepted
// chunk's provenance (Peer = sender, File, V1 = recording origin node —
// which after multiple hops differs from Peer — and V2 = sequence).
var (
	evTTLCompare   = obs.RegisterEvent("storage.ttl.compare")
	evBetaCross    = obs.RegisterEvent("storage.beta")
	evMigrateStart = obs.RegisterEvent("storage.migrate.start")
	evMigrateOut   = obs.RegisterEvent("storage.migrate.out")
	evMigrateFail  = obs.RegisterEvent("storage.migrate.fail")
	evMigrateIn    = obs.RegisterEvent("storage.migrate.in")
)

// TTLUpdate advertises a node's storage TTL to its neighborhood.
type TTLUpdate struct {
	// Seconds is the advertised TTLstorage, saturated at MaxTTLSeconds.
	Seconds uint32
}

// Kind implements radio.Payload.
func (TTLUpdate) Kind() radio.KindID { return KindTTL }

// Size implements radio.Payload.
func (TTLUpdate) Size() int { return 4 }

// MaxTTLSeconds caps advertised TTLs; a node with a (near-)zero data rate
// has an effectively infinite TTL.
const MaxTTLSeconds = math.MaxUint32 / 4

// EnergyView abstracts the battery model for the TTLenergy computation.
type EnergyView interface {
	// TTLEnergy returns the time until energy death if the node moves
	// data out at the given rate (bytes/s) from now on.
	TTLEnergy(now sim.Time, rate float64) time.Duration
}

// Probe carries optional observer callbacks.
type Probe struct {
	// OnMigrateOut fires when a batch of chunks is acknowledged by a
	// neighbor (bytes counts payload at block granularity).
	OnMigrateOut func(from, to int, chunks int, at sim.Time)
	// OnMigrateIn fires when a chunk is accepted from a neighbor.
	OnMigrateIn func(from, to int, c *flash.Chunk, at sim.Time)
	// OnOverflow fires when recorded data had to be dropped upstream
	// (reported by the node layer, counted here for convenience).
	OnOverflow func(node int, at sim.Time)
}

// Mode selects the redundancy strategy layered on the bulk plane.
type Mode int

const (
	// ModeMigrate is the paper's balancer: whole chunks migrate to the
	// richest neighbor when the TTL imbalance crosses βi.
	ModeMigrate Mode = iota
	// ModeDisperse replaces migration with Reed-Solomon dispersal: the
	// recorder erasure-codes each finished recording into n fragments
	// and scatters them across its least-loaded audible neighbors (see
	// disperse.go). TTL advertisements keep flowing — they are how the
	// disperser ranks targets — but the βi migration check never runs.
	ModeDisperse
)

// String implements flag.Value-style printing for the CLIs.
func (m Mode) String() string {
	switch m {
	case ModeMigrate:
		return "migrate"
	case ModeDisperse:
		return "disperse"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -storage-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "migrate":
		return ModeMigrate, nil
	case "disperse":
		return ModeDisperse, nil
	}
	return 0, fmt.Errorf("storage: unknown mode %q (want migrate or disperse)", s)
}

// ParseRS parses an "n,k" erasure-geometry flag value ("6,4") into a
// DisperseConfig, validating it against the GF(2^8) code limits.
func ParseRS(s string) (DisperseConfig, error) {
	n, k, ok := 0, 0, false
	if i := strings.IndexByte(s, ','); i > 0 {
		a, errA := strconv.Atoi(strings.TrimSpace(s[:i]))
		b, errB := strconv.Atoi(strings.TrimSpace(s[i+1:]))
		n, k, ok = a, b, errA == nil && errB == nil
	}
	if !ok {
		return DisperseConfig{}, fmt.Errorf("storage: bad -rs geometry %q (want \"n,k\", e.g. \"6,4\")", s)
	}
	if _, err := erasure.New(n, k); err != nil {
		return DisperseConfig{}, err
	}
	return DisperseConfig{N: n, K: k}, nil
}

// Config holds balancer parameters.
type Config struct {
	// Alpha is the EWMA weight for the acquisition-rate estimate (§II-B).
	Alpha float64
	// BetaMax is the imbalance threshold ceiling; βi varies linearly
	// between 1 and BetaMax with the current TTL (§II-B). The paper
	// evaluates 2, 3 and 4.
	BetaMax float64
	// BetaRefTTL is the TTL at (or above) which βi reaches BetaMax; at
	// TTL 0, βi is 1 (maximally sensitive).
	BetaRefTTL time.Duration
	// UpdatePeriod is how often the rate estimate is refreshed and the
	// TTL advertised.
	UpdatePeriod time.Duration
	// CheckPeriod is how often the migration condition is evaluated.
	CheckPeriod time.Duration
	// NeighborTimeout expires stale neighbor TTL entries.
	NeighborTimeout time.Duration
	// BatchChunks bounds chunks per bulk-transfer session.
	BatchChunks int
	// InitialRate seeds R(0); the paper notes it can be zero or
	// Exp(R_event)/N and matters little in the long run.
	InitialRate float64
	// Mode selects migration (the zero value, the paper's behavior) or
	// Reed-Solomon dispersal.
	Mode Mode
}

// DefaultConfig mirrors the paper's indoor evaluation scale.
func DefaultConfig(betaMax float64) Config {
	return Config{
		Alpha:           0.25,
		BetaMax:         betaMax,
		BetaRefTTL:      10 * time.Minute,
		UpdatePeriod:    5 * time.Second,
		CheckPeriod:     2 * time.Second,
		NeighborTimeout: 30 * time.Second,
		BatchChunks:     32,
		InitialRate:     0,
	}
}

func (c Config) validate() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		panic("storage: Alpha outside (0,1]")
	}
	if c.BetaMax < 1 {
		panic("storage: BetaMax must be >= 1")
	}
	if c.BetaRefTTL <= 0 || c.UpdatePeriod <= 0 || c.CheckPeriod <= 0 || c.NeighborTimeout <= 0 {
		panic("storage: non-positive period")
	}
	if c.BatchChunks <= 0 {
		panic("storage: BatchChunks must be positive")
	}
	if c.InitialRate < 0 {
		panic("storage: negative InitialRate")
	}
}

type neighborTTL struct {
	seconds  uint32
	lastSeen sim.Time
}

// Balancer is one node's storage-balancing module.
type Balancer struct {
	cfg    Config
	id     int
	stack  *netstack.Stack
	bulk   *netstack.Bulk
	sched  *sim.Scheduler
	store  *flash.Store
	energy EnergyView
	probe  Probe
	tr     *obs.Tracer

	rate         float64 // EWMA bytes/s
	bytesAcq     int     // bytes acquired since last update
	lastUpdateAt sim.Time
	neighbors    map[int]neighborTTL
	transferring bool
	started      bool
	// gen orphans in-flight session completions across Stop: a bulk
	// callback from before the last Stop (node death) must not touch the
	// store — the MCU that would run it is gone, and after a crash
	// recovery the flash pointers it assumed no longer hold.
	gen uint64

	updateTicker *sim.Ticker
	checkTicker  *sim.Ticker

	// Counters for metrics.
	MigratedOutChunks, MigratedInChunks uint64
	FailedChunks                        uint64
}

// NewBalancer wires a balancer onto the node's stack and bulk transfer.
// It installs itself as the bulk service's acceptor.
func NewBalancer(id int, stack *netstack.Stack, bulk *netstack.Bulk, sched *sim.Scheduler, store *flash.Store, energy EnergyView, cfg Config, probe Probe) *Balancer {
	cfg.validate()
	b := &Balancer{
		cfg:       cfg,
		id:        id,
		stack:     stack,
		bulk:      bulk,
		sched:     sched,
		store:     store,
		energy:    energy,
		probe:     probe,
		rate:      cfg.InitialRate,
		neighbors: make(map[int]neighborTTL),
	}
	stack.Register(KindTTL, b.handleTTL)
	bulk.SetAccept(b.Accept)
	return b
}

// SetTracer installs the protocol tracer (nil disables tracing).
func (b *Balancer) SetTracer(tr *obs.Tracer) { b.tr = tr }

// Start begins periodic rate updates and migration checks.
func (b *Balancer) Start() {
	if b.started {
		panic(fmt.Sprintf("storage: balancer %d already started", b.id))
	}
	b.started = true
	b.lastUpdateAt = b.sched.Now()
	b.updateTicker = sim.NewTicker(b.sched, b.cfg.UpdatePeriod, fmt.Sprintf("storage.update.%d", b.id), b.update)
	if b.cfg.Mode != ModeDisperse {
		b.checkTicker = sim.NewTicker(b.sched, b.cfg.CheckPeriod, fmt.Sprintf("storage.check.%d", b.id), b.check)
	}
}

// Stop halts the balancer. An outgoing migration session in flight is
// orphaned: its completion callback becomes a no-op, and the dequeued
// chunks it held are recycled when it fires.
func (b *Balancer) Stop() {
	if b.updateTicker != nil {
		b.updateTicker.Stop()
	}
	if b.checkTicker != nil {
		b.checkTicker.Stop()
	}
	b.started = false
	b.gen++
	b.transferring = false
}

// OnAcquired records locally-produced data (the node layer calls it after
// each recording task): it feeds the EWMA acquisition rate.
func (b *Balancer) OnAcquired(bytes int) { b.bytesAcq += bytes }

// Rate returns the current EWMA acquisition rate in bytes/s.
func (b *Balancer) Rate() float64 { return b.rate }

// TTLStorage returns C(t)/R(t) at now. The rate is floored at one byte
// per second: a node that records nothing still has a finite TTL that
// shrinks as migrated data fills it, which is what lets hot-spot data
// cascade outward through quiet regions (a full quiet node advertises a
// small TTL and pushes onward) without feeding received bytes back into
// the rate estimate — that feedback loop makes chunks circulate forever.
func (b *Balancer) TTLStorage(now sim.Time) time.Duration {
	free := float64(b.store.BytesFree())
	rate := b.rate
	if rate < 1 {
		rate = 1
	}
	secs := free / rate
	if secs > MaxTTLSeconds {
		secs = MaxTTLSeconds
	}
	return time.Duration(secs * float64(time.Second))
}

// TTLSeconds implements group.TTLSource: the bottleneck TTL in seconds,
// for SENSING-borne recorder selection.
func (b *Balancer) TTLSeconds(now sim.Time) uint32 {
	t := b.TTLStorage(now)
	if b.energy != nil {
		if te := b.energy.TTLEnergy(now, b.rate); te < t {
			t = te
		}
	}
	secs := t / time.Second
	if secs > MaxTTLSeconds {
		secs = MaxTTLSeconds
	}
	return uint32(secs)
}

// Beta returns βi for the current TTL: linear from 1 (TTL 0) to BetaMax
// (TTL >= BetaRefTTL).
func (b *Balancer) Beta(now sim.Time) float64 {
	ttl := b.TTLStorage(now)
	f := float64(ttl) / float64(b.cfg.BetaRefTTL)
	if f > 1 {
		f = 1
	}
	return 1 + (b.cfg.BetaMax-1)*f
}

// update refreshes the EWMA rate and advertises the TTL (delay-tolerant:
// it piggybacks on whatever control traffic flows next).
func (b *Balancer) update() {
	now := b.sched.Now()
	interval := now.Sub(b.lastUpdateAt).Seconds()
	if interval > 0 {
		r := float64(b.bytesAcq) / interval
		b.rate = b.rate*(1-b.cfg.Alpha) + r*b.cfg.Alpha
	}
	b.bytesAcq = 0
	b.lastUpdateAt = now
	if !b.stack.Endpoint().RadioOn() {
		return // recording; skip this round's advertisement
	}
	b.stack.SendDelayTolerant(TTLUpdate{Seconds: b.ttlAdvert(now)})
}

func (b *Balancer) ttlAdvert(now sim.Time) uint32 {
	secs := b.TTLStorage(now) / time.Second
	if secs > MaxTTLSeconds {
		secs = MaxTTLSeconds
	}
	return uint32(secs)
}

// RankedNeighbors returns up to max live neighbor IDs ordered from most
// to least storage headroom (advertised TTL descending, node ID
// ascending for determinism). The dispersal mode uses it to pick the n
// least-loaded audible neighbors as fragment targets.
func (b *Balancer) RankedNeighbors(now sim.Time, max int) []int {
	type cand struct {
		id  int
		ttl uint32
	}
	cands := make([]cand, 0, len(b.neighbors))
	for id, n := range b.neighbors {
		if now.Sub(n.lastSeen) > b.cfg.NeighborTimeout {
			continue
		}
		cands = append(cands, cand{id, n.seconds})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ttl != cands[j].ttl {
			return cands[i].ttl > cands[j].ttl
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

func (b *Balancer) handleTTL(from, to int, p radio.Payload) {
	u, ok := p.(TTLUpdate)
	if !ok {
		return
	}
	b.neighbors[from] = neighborTTL{seconds: u.Seconds, lastSeen: b.sched.Now()}
}

// check evaluates the migration condition (§II-B, condition (1)).
func (b *Balancer) check() {
	now := b.sched.Now()
	if b.transferring || b.store.Len() == 0 || !b.stack.Endpoint().RadioOn() {
		return
	}
	// Energy gate: balance only while storage is the bottleneck.
	ttlS := b.TTLStorage(now)
	if b.energy != nil && b.energy.TTLEnergy(now, b.rate) <= ttlS {
		return
	}
	// Richest live neighbor.
	target, targetTTL := -1, uint32(0)
	for id, n := range b.neighbors {
		if now.Sub(n.lastSeen) > b.cfg.NeighborTimeout {
			continue
		}
		if n.seconds > targetTTL || (n.seconds == targetTTL && (target < 0 || id < target)) {
			target, targetTTL = id, n.seconds
		}
	}
	if target < 0 {
		return
	}
	b.tr.Emit(now, evTTLCompare, int32(b.id), int32(target), 0, int64(ttlS/time.Second), int64(targetTTL))
	myTTL := float64(ttlS) / float64(time.Second)
	if myTTL <= 0 {
		myTTL = 0.001
	}
	ratio, beta := float64(targetTTL)/myTTL, b.Beta(now)
	if ratio <= beta {
		return
	}
	b.tr.Emit(now, evBetaCross, int32(b.id), int32(target), 0, int64(beta*1000), int64(ratio*1000))
	// Move a batch from the queue head (wear levelling, §III-B.3).
	n := b.cfg.BatchChunks
	if n > b.store.Len() {
		n = b.store.Len()
	}
	chunks := make([]*flash.Chunk, 0, n)
	for i := 0; i < n; i++ {
		c, err := b.store.DequeueHead()
		if err != nil {
			break
		}
		chunks = append(chunks, c)
	}
	if len(chunks) == 0 {
		return
	}
	b.transferring = true
	to := target
	gen := b.gen
	b.tr.Emit(now, evMigrateStart, int32(b.id), int32(to), 0, int64(len(chunks)), 0)
	b.bulk.SendChunks(to, chunks, func(acked int, failed []*flash.Chunk) {
		if gen != b.gen {
			// The balancer stopped (node death) while the session was in
			// flight. The originals are referenced only here — acked ones
			// were delivered as wire clones, failed ones never made it —
			// so the whole batch recycles.
			flash.FreeChunks(chunks)
			return
		}
		b.transferring = false
		if acked > 0 {
			b.tr.Emit(b.sched.Now(), evMigrateOut, int32(b.id), int32(to), 0, int64(acked), int64(len(failed)))
		} else {
			b.tr.Emit(b.sched.Now(), evMigrateFail, int32(b.id), int32(to), 0, int64(len(failed)), 0)
		}
		b.MigratedOutChunks += uint64(acked)
		// Acked originals were delivered via wire clones and are no
		// longer referenced by any store or session: recycle them. Bulk
		// acks advance in order, so the acked prefix is chunks[:acked].
		flash.FreeChunks(chunks[:acked])
		b.FailedChunks += uint64(len(failed))
		if len(failed) > 0 {
			// The neighbor refused or went silent: its advertised TTL is
			// stale. Zero the cached value so we stop pushing there until
			// it advertises again — without this, mutually-full nodes
			// thrash chunks back and forth on stale optimism.
			if n, ok := b.neighbors[to]; ok {
				n.seconds = 0
				b.neighbors[to] = n
			}
		}
		// Unacknowledged chunks return home (they may nevertheless have
		// been stored remotely if only the ACK was lost — the incidental
		// duplication the paper observes at low βmax).
		for _, c := range failed {
			if b.store.Enqueue(c) != nil {
				// Flash refilled meanwhile: the chunk is lost.
				flash.FreeChunk(c)
				if b.probe.OnOverflow != nil {
					b.probe.OnOverflow(b.id, b.sched.Now())
				}
			}
		}
		if acked > 0 && b.probe.OnMigrateOut != nil {
			b.probe.OnMigrateOut(b.id, to, acked, b.sched.Now())
		}
	})
}

// Accept is the bulk-transfer acceptor for balancing-class chunks.
// Received bytes deliberately do NOT feed the acquisition-rate estimate
// (the paper defines R(t) as *recorded* data): the receiving node's TTL
// still drops because its free space C(t) shrinks, which is what lets
// hot-spot data travel multiple hops (Fig 18).
func (b *Balancer) Accept(from int, c *flash.Chunk) bool {
	if b.transferring {
		// Our own outgoing session is in flight: its chunks may come back
		// if the transfer fails, and the space we freed for them must not
		// be given away to a crossing transfer — that is exactly how data
		// gets lost when two full nodes push at each other.
		return false
	}
	if err := b.store.Enqueue(c); err != nil {
		return false
	}
	b.MigratedInChunks++
	b.tr.Emit(b.sched.Now(), evMigrateIn, int32(b.id), int32(from), uint32(c.File), int64(c.Origin), int64(c.Seq))
	if b.probe.OnMigrateIn != nil {
		b.probe.OnMigrateIn(from, b.id, c, b.sched.Now())
	}
	return true
}
