package storage

import (
	"math"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// fixedEnergy reports a constant energy TTL.
type fixedEnergy struct{ ttl time.Duration }

func (f fixedEnergy) TTLEnergy(sim.Time, float64) time.Duration { return f.ttl }

type balNode struct {
	stack *netstack.Stack
	bulk  *netstack.Bulk
	store *flash.Store
	bal   *Balancer
}

func balRig(t *testing.T, n int, blocks int, cfg Config, energy EnergyView) (*sim.Scheduler, []*balNode) {
	t.Helper()
	s := sim.NewScheduler(17)
	rcfg := radio.DefaultConfig(2.5)
	rcfg.LossProb = 0
	net := radio.NewNetwork(s, rcfg)
	nodes := make([]*balNode, n)
	for i := 0; i < n; i++ {
		st := netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
		bu := netstack.NewBulk(st, s)
		store := flash.NewStore(blocks)
		bal := NewBalancer(i, st, bu, s, store, energy, cfg, Probe{})
		bal.Start()
		nodes[i] = &balNode{stack: st, bulk: bu, store: store, bal: bal}
	}
	return s, nodes
}

func fill(store *flash.Store, n int, origin int32) {
	for i := 0; i < n; i++ {
		_ = store.Enqueue(&flash.Chunk{
			File: 1, Origin: origin, Seq: uint32(i),
			Start: sim.At(time.Duration(i) * time.Second),
			End:   sim.At(time.Duration(i+1) * time.Second),
			Data:  []byte{1},
		})
	}
}

func TestEWMARateTracksAcquisition(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.Alpha = 0.5
	s, nodes := balRig(t, 1, 64, cfg, nil)
	// Feed a steady 1000 B/s.
	sim.NewTicker(s, time.Second, "feed", func() { nodes[0].bal.OnAcquired(1000) })
	s.Run(sim.At(20 * time.Second))
	if r := nodes[0].bal.Rate(); math.Abs(r-1000) > 50 {
		t.Errorf("EWMA rate = %v, want ~1000", r)
	}
}

func TestTTLStorageComputation(t *testing.T) {
	cfg := DefaultConfig(2)
	s, nodes := balRig(t, 1, 100, cfg, nil)
	b := nodes[0].bal
	// Zero rate floors at 1 B/s: TTL equals free bytes in seconds.
	if got := b.TTLStorage(s.Now()); got != time.Duration(100*flash.BlockSize)*time.Second {
		t.Errorf("zero-rate TTL = %v, want %v", got, 100*flash.BlockSize)
	}
	b.rate = float64(flash.BlockSize) // one block per second
	fill(nodes[0].store, 40, 0)       // 60 free blocks
	want := 60 * time.Second
	if got := b.TTLStorage(s.Now()); got != want {
		t.Errorf("TTL = %v, want %v", got, want)
	}
}

func TestBetaScalesLinearlyWithTTL(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.BetaRefTTL = 100 * time.Second
	s, nodes := balRig(t, 1, 100, cfg, nil)
	b := nodes[0].bal
	b.rate = float64(flash.BlockSize)
	// 100 free blocks → TTL 100 s ≥ ref → βmax.
	if got := b.Beta(s.Now()); got != 4 {
		t.Errorf("beta at full TTL = %v, want 4", got)
	}
	fill(nodes[0].store, 50, 0) // TTL 50 s → halfway
	if got := b.Beta(s.Now()); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("beta at half TTL = %v, want 2.5", got)
	}
	fill(nodes[0].store, 50, 0) // TTL 0 → β = 1
	if got := b.Beta(s.Now()); got != 1 {
		t.Errorf("beta at zero TTL = %v, want 1", got)
	}
}

func TestMigrationFromLoadedToEmptyNeighbor(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	s, nodes := balRig(t, 2, 128, cfg, nil)
	// Node 0 is nearly full and acquiring; node 1 idle and empty.
	fill(nodes[0].store, 120, 0)
	nodes[0].bal.OnAcquired(120 * flash.BlockSize)
	s.Run(sim.At(60 * time.Second))
	if nodes[1].store.Len() == 0 {
		t.Fatal("no chunks migrated to the empty neighbor")
	}
	if nodes[0].store.Len() >= 120 {
		t.Error("loaded node did not shed data")
	}
	if nodes[0].bal.MigratedOutChunks == 0 || nodes[1].bal.MigratedInChunks == 0 {
		t.Error("migration counters not updated")
	}
}

func TestNoMigrationWhenBalanced(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	s, nodes := balRig(t, 2, 128, cfg, nil)
	// Both nodes equally loaded with the same rate.
	for _, n := range nodes {
		fill(n.store, 60, 0)
		n.bal.OnAcquired(60 * flash.BlockSize)
	}
	s.Run(sim.At(60 * time.Second))
	if nodes[0].bal.MigratedOutChunks != 0 || nodes[1].bal.MigratedOutChunks != 0 {
		t.Errorf("balanced nodes migrated anyway: %d / %d",
			nodes[0].bal.MigratedOutChunks, nodes[1].bal.MigratedOutChunks)
	}
}

func TestEnergyBottleneckBlocksMigration(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	// Energy TTL of 1 s stays below the storage TTL (~ tens of seconds
	// at this load): never migrate.
	s, nodes := balRig(t, 2, 128, cfg, fixedEnergy{ttl: time.Second})
	fill(nodes[0].store, 40, 0)
	sim.NewTicker(s, time.Second, "feed", func() { nodes[0].bal.OnAcquired(flash.BlockSize) })
	s.Run(sim.At(60 * time.Second))
	if nodes[0].bal.MigratedOutChunks != 0 {
		t.Error("migration happened despite energy being the bottleneck")
	}
}

func TestLowerBetaMaxMigratesMore(t *testing.T) {
	// Deterministic threshold check: the neighbor's TTL exceeds ours by
	// 2.5×, sitting between βmax=2 (migrates) and βmax=4 (does not). The
	// tickers are stopped so the injected rate is not decayed away.
	run := func(betaMax float64) uint64 {
		cfg := DefaultConfig(betaMax)
		cfg.BetaRefTTL = 50 * time.Second // our TTL (100 s) ≥ ref → β = βmax
		s, nodes := balRig(t, 2, 256, cfg, nil)
		nodes[0].bal.Stop()
		nodes[1].bal.Stop()
		fill(nodes[0].store, 156, 0)                 // 100 free blocks
		nodes[0].bal.rate = float64(flash.BlockSize) // TTL = 100 s
		nodes[0].bal.neighbors[1] = neighborTTL{seconds: 250, lastSeen: s.Now()}
		nodes[0].bal.check()
		s.RunAll()
		return nodes[0].bal.MigratedOutChunks
	}
	low, high := run(2), run(4)
	if high != 0 {
		t.Errorf("βmax=4 migrated %d chunks at ratio 2.5, want 0", high)
	}
	if low == 0 {
		t.Error("βmax=2 did not migrate at ratio 2.5")
	}
}

func TestCascadingMigration(t *testing.T) {
	// A chain 0-1-2 with comm range 2.5 and pitch 1: all within range...
	// use a longer chain where 0 and 3 are out of range, so hot data from
	// 0 must cascade through 1/2.
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	cfg.BatchChunks = 16
	s := sim.NewScheduler(23)
	rcfg := radio.DefaultConfig(1.5) // only adjacent nodes connected
	rcfg.LossProb = 0
	net := radio.NewNetwork(s, rcfg)
	var nodes []*balNode
	for i := 0; i < 4; i++ {
		st := netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
		bu := netstack.NewBulk(st, s)
		store := flash.NewStore(128)
		bal := NewBalancer(i, st, bu, s, store, nil, cfg, Probe{})
		bal.Start()
		nodes = append(nodes, &balNode{stack: st, bulk: bu, store: store, bal: bal})
	}
	fill(nodes[0].store, 120, 0)
	nodes[0].bal.OnAcquired(120 * flash.BlockSize)
	s.Run(sim.At(10 * time.Minute))
	// Chunks originated at node 0 must have reached node 2 or 3 (beyond
	// node 0's radio range) via cascading.
	far := 0
	for _, n := range nodes[2:] {
		for _, c := range n.store.Chunks() {
			if c.Origin == 0 {
				far++
			}
		}
	}
	if far == 0 {
		t.Error("no chunks cascaded beyond the hot node's neighborhood")
	}
}

func TestRecordingNodeSkipsBalancing(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	s, nodes := balRig(t, 2, 128, cfg, nil)
	fill(nodes[0].store, 120, 0)
	nodes[0].bal.OnAcquired(120 * flash.BlockSize)
	nodes[0].stack.Endpoint().SetRadio(false) // recording
	s.Run(sim.At(30 * time.Second))
	if nodes[0].bal.MigratedOutChunks != 0 {
		t.Error("node migrated data while its radio was off")
	}
	nodes[0].stack.Endpoint().SetRadio(true)
	nodes[0].stack.RadioRestored()
	s.Run(sim.At(90 * time.Second))
	if nodes[0].bal.MigratedOutChunks == 0 {
		t.Error("migration did not resume after recording")
	}
}

func TestTTLSecondsUsesBottleneck(t *testing.T) {
	cfg := DefaultConfig(2)
	s, nodes := balRig(t, 1, 100, cfg, fixedEnergy{ttl: 42 * time.Second})
	b := nodes[0].bal
	b.rate = float64(flash.BlockSize) // storage TTL = 100 s > energy 42 s
	if got := b.TTLSeconds(s.Now()); got != 42 {
		t.Errorf("TTLSeconds = %d, want 42 (energy bottleneck)", got)
	}
}

func TestFailedTransferReturnsChunksHome(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdatePeriod = time.Second
	cfg.CheckPeriod = time.Second
	s, nodes := balRig(t, 2, 128, cfg, nil)
	fill(nodes[0].store, 100, 0)
	nodes[0].bal.OnAcquired(100 * flash.BlockSize)
	// Pretend node 1 advertised a huge TTL, then goes deaf before any
	// transfer: all chunks must come home.
	nodes[0].bal.neighbors[1] = neighborTTL{seconds: MaxTTLSeconds, lastSeen: s.Now()}
	nodes[1].stack.Endpoint().SetRadio(false)
	s.Run(sim.At(20 * time.Second))
	// Stop the tickers and drain the in-flight session before asserting.
	nodes[0].bal.Stop()
	nodes[1].bal.Stop()
	s.RunAll()
	if nodes[0].store.Len() != 100 {
		t.Errorf("store has %d chunks after failed transfers, want 100", nodes[0].store.Len())
	}
	if nodes[0].bal.FailedChunks == 0 {
		t.Error("failed transfer not counted")
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.BetaMax = 0.5 },
		func(c *Config) { c.BetaRefTTL = 0 },
		func(c *Config) { c.UpdatePeriod = 0 },
		func(c *Config) { c.CheckPeriod = 0 },
		func(c *Config) { c.NeighborTimeout = 0 },
		func(c *Config) { c.BatchChunks = 0 },
		func(c *Config) { c.InitialRate = -1 },
	}
	for i, m := range muts {
		cfg := DefaultConfig(2)
		m(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mutation %d accepted", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestTTLUpdatePayloadContract(t *testing.T) {
	var u TTLUpdate
	if u.Kind() != KindTTL || u.Size() != 4 {
		t.Errorf("TTLUpdate contract: kind %q size %d", u.Kind(), u.Size())
	}
}
