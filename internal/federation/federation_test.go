package federation

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// testStation is one in-process federation member: a real archive, a
// real Station, served over a real HTTP listener.
type testStation struct {
	name    string
	store   *archive.Store
	st      *Station
	srv     *httptest.Server
	handler atomic.Value // http.Handler, bound after New
}

// newCluster boots n stations that all know each other. Listeners come
// up first so every station's peer list carries real URLs; handlers are
// bound after construction. Background loops are NOT started — tests
// drive ProbeOnce/ReplicateOnce synchronously.
func newCluster(t *testing.T, n, factor int) []*testStation {
	t.Helper()
	stations := make([]*testStation, n)
	for i := range stations {
		ts := &testStation{name: fmt.Sprintf("s%d", i)}
		ts.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := ts.handler.Load().(http.Handler)
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		stations[i] = ts
	}
	for i, ts := range stations {
		store, err := archive.Open(filepath.Join(t.TempDir(), "arch"), archive.Options{Shards: 2})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		ts.store = store
		var peers []Peer
		for j, o := range stations {
			if j != i {
				peers = append(peers, Peer{Name: o.name, URL: o.srv.URL})
			}
		}
		st, err := New(store, Config{
			Self:              ts.name,
			Peers:             peers,
			ReplicationFactor: factor,
			CursorPath:        filepath.Join(t.TempDir(), "cursors.json"),
		})
		if err != nil {
			t.Fatalf("New(%s): %v", ts.name, err)
		}
		ts.st = st
		ts.handler.Store(st.Handler())
	}
	t.Cleanup(func() {
		for _, ts := range stations {
			ts.st.Close()
			ts.store.Close()
			ts.srv.Close()
		}
	})
	return stations
}

// refServer builds a single-station reference: one archive holding the
// union of chunks, served by the plain archive handler.
func refServer(t *testing.T, chunks []*flash.Chunk) *httptest.Server {
	t.Helper()
	store, err := archive.Open(filepath.Join(t.TempDir(), "ref"), archive.Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open ref: %v", err)
	}
	if _, err := store.Ingest(chunks); err != nil {
		t.Fatalf("ref Ingest: %v", err)
	}
	srv := httptest.NewServer(archive.NewHandler(store))
	t.Cleanup(func() { srv.Close(); store.Close() })
	return srv
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// assertSameResponse fails unless both URLs answer 200 with identical
// bodies.
func assertSameResponse(t *testing.T, fedURL, refURL, label string) {
	t.Helper()
	fs, _, fb := get(t, fedURL)
	rs, _, rb := get(t, refURL)
	if fs != http.StatusOK || rs != http.StatusOK {
		t.Fatalf("%s: status fed=%d ref=%d", label, fs, rs)
	}
	if string(fb) != string(rb) {
		t.Fatalf("%s: federated response differs from reference:\nfed: %s\nref: %s", label, fb, rb)
	}
}

func mkChunk(file flash.FileID, origin int32, seq uint32, startSec, endSec float64, extra int) *flash.Chunk {
	data := []byte{byte(file), byte(origin), byte(seq), 0xAB}
	for i := 0; i < extra; i++ {
		data = append(data, byte(i))
	}
	return &flash.Chunk{
		File: file, Origin: origin, Seq: seq,
		Start: sim.Time(startSec * float64(time.Second)),
		End:   sim.Time(endSec * float64(time.Second)),
		Data:  data,
	}
}

func mustIngest(t *testing.T, s *archive.Store, chunks []*flash.Chunk) {
	t.Helper()
	if _, err := s.Ingest(chunks); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
}

// TestOverlappingIntervalsAcrossStations holds two overlapping stripes
// of one file at two stations and queries through a third that holds
// nothing. Every federated read must match a single station holding the
// union — byte for byte — including a gap only the merged view shows.
func TestOverlappingIntervalsAcrossStations(t *testing.T) {
	cl := newCluster(t, 3, 0)

	var union []*flash.Chunk
	var a, b []*flash.Chunk
	for seq := uint32(0); seq < 5; seq++ {
		a = append(a, mkChunk(1, 1, seq, float64(seq), float64(seq+1), 0))
	}
	// Origin 2 overlaps [3,8), then a detached tail [10,12) that opens
	// a merged-view gap (8,10).
	for seq := uint32(0); seq < 5; seq++ {
		b = append(b, mkChunk(1, 2, seq, float64(seq+3), float64(seq+4), 0))
	}
	b = append(b, mkChunk(1, 2, 10, 10, 11, 0), mkChunk(1, 2, 11, 11, 12, 0))
	union = append(append(union, a...), b...)

	mustIngest(t, cl[0].store, a)
	mustIngest(t, cl[1].store, b)
	ref := refServer(t, union)

	for _, path := range []string{
		"/files",
		"/files/1",
		"/files/1/gaps",
		"/files/1/gaps?tolerance=250ms",
		"/files/1/wav",
		"/query",
		"/query?from=2s&to=6s",
		"/query?from=8.5s&to=9.5s", // falls in the merged gap — still the merged answer
		"/query?origins=2",
		"/query?origins=99",
	} {
		for _, ts := range cl {
			status, hdr, _ := get(t, ts.srv.URL+path)
			if status != http.StatusOK {
				t.Fatalf("%s via %s: HTTP %d", path, ts.name, status)
			}
			if hdr.Get(PartialHeader) != "" {
				t.Fatalf("%s via %s: unexpected partial marker %q", path, ts.name, hdr.Get(PartialHeader))
			}
			assertSameResponse(t, ts.srv.URL+path, ref.URL+path, path+" via "+ts.name)
		}
	}
}

// TestSameChunkAtThreeStations puts the same (origin, seq) chunk on
// every station — one copy longer — and checks the merge keeps exactly
// the longest, like ingest supersession would.
func TestSameChunkAtThreeStations(t *testing.T) {
	cl := newCluster(t, 3, 0)

	short1 := mkChunk(2, 7, 0, 0, 1, 0)
	long := mkChunk(2, 7, 0, 0, 1, 40)
	short2 := mkChunk(2, 7, 0, 0, 1, 2)
	mustIngest(t, cl[0].store, []*flash.Chunk{short1})
	mustIngest(t, cl[1].store, []*flash.Chunk{long})
	mustIngest(t, cl[2].store, []*flash.Chunk{short2})
	ref := refServer(t, []*flash.Chunk{short1, long, short2})

	for _, path := range []string{"/files", "/files/2", "/files/2/wav", "/query"} {
		assertSameResponse(t, cl[0].srv.URL+path, ref.URL+path, path)
	}
	// And explicitly: one chunk, the long copy's byte count.
	status, _, body := get(t, cl[2].srv.URL+"/files/2")
	if status != http.StatusOK {
		t.Fatalf("/files/2: HTTP %d", status)
	}
	want := fmt.Sprintf("\"bytes\": %d", len(long.Data))
	if !containsStr(string(body), "\"chunks\": 1") || !containsStr(string(body), want) {
		t.Fatalf("/files/2 did not keep the longest copy:\n%s", body)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestErasureFragmentsSplitAcrossPeers archives a dispersal group's
// surviving shares on three different stations — one data chunk on s0,
// one parity fragment each on s1 and s2 — so no single station can
// decode, but a federated /wav can: the pooled shares reach k and the
// missing data chunk is reconstructed verbatim.
func TestErasureFragmentsSplitAcrossPeers(t *testing.T) {
	cl := newCluster(t, 3, 0)

	g := erasure.Group{
		File: 5, Origin: 9, FirstSeq: 0, Count: 2,
		Start: 0, End: sim.Time(2 * time.Second),
		N: 4, K: 2,
	}
	d0 := mkChunk(5, 9, 0, 0, 1, 20)
	d1 := mkChunk(5, 9, 1, 1, 2, 33)
	code, err := erasure.Cached(g.N, g.K)
	if err != nil {
		t.Fatalf("Cached: %v", err)
	}
	blobs, err := erasure.EncodeParity(code, g, []*flash.Chunk{d0, d1})
	if err != nil {
		t.Fatalf("EncodeParity: %v", err)
	}

	mustIngest(t, cl[0].store, []*flash.Chunk{d0})
	mustIngest(t, cl[1].store, erasure.Carriers(g, g.K, blobs[0]))
	mustIngest(t, cl[2].store, erasure.Carriers(g, g.K+1, blobs[1]))
	ref := refServer(t, []*flash.Chunk{d0, d1}) // both data chunks, no parity

	// No station alone can produce d1: a local-only read of file 5 on
	// s1 has no data chunks at all.
	req, _ := http.NewRequest(http.MethodGet, cl[1].srv.URL+"/files/5/wav", nil)
	req.Header.Set(LocalHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("local wav: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("local-only wav on s1 = HTTP %d, want 404", resp.StatusCode)
	}

	// The federated read reconstructs d1 from d0 + either fragment and
	// renders the reference audio byte-identically, via any station.
	for _, ts := range cl {
		assertSameResponse(t, ts.srv.URL+"/files/5/wav", ref.URL+"/files/5/wav", "erasure wav via "+ts.name)
	}
}

// TestReplicationConvergence ingests a different file at every station,
// drains anti-entropy synchronously, and requires identical holdings
// everywhere — then again after more ingest, resuming from the cursors.
func TestReplicationConvergence(t *testing.T) {
	cl := newCluster(t, 3, 0)
	ctx := context.Background()

	for i, ts := range cl {
		var batch []*flash.Chunk
		for seq := uint32(0); seq < 10; seq++ {
			batch = append(batch, mkChunk(flash.FileID(i+1), int32(i*10), seq, float64(seq), float64(seq+1), i))
		}
		mustIngest(t, ts.store, batch)
	}
	for _, ts := range cl {
		if err := ts.st.ReplicateOnce(ctx); err != nil {
			t.Fatalf("ReplicateOnce(%s): %v", ts.name, err)
		}
	}
	want := cl[0].store.Manifest(0, 0, nil, nil)
	if len(want) != 3 {
		t.Fatalf("s0 has %d files after replication, want 3", len(want))
	}
	for _, ts := range cl[1:] {
		if got := ts.store.Manifest(0, 0, nil, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s holdings diverge after replication", ts.name)
		}
	}

	// Cursor catch-up: new ingest at s0 only; one more pull round gets
	// everyone level again, and the cursors show zero lag.
	mustIngest(t, cl[0].store, []*flash.Chunk{mkChunk(9, 90, 0, 50, 51, 5)})
	for _, ts := range cl[1:] {
		if err := ts.st.ReplicateOnce(ctx); err != nil {
			t.Fatalf("ReplicateOnce(%s): %v", ts.name, err)
		}
		if got := ts.store.Manifest(0, 0, nil, nil); len(got) != 4 {
			t.Fatalf("%s has %d files after catch-up, want 4", ts.name, len(got))
		}
	}
	for _, ts := range cl[1:] {
		cur := ts.st.repl.cursor("s0")
		if lag := cl[0].store.ReplStatus().Lag(cur); lag != 0 {
			t.Fatalf("%s cursor lags s0 by %d bytes after catch-up", ts.name, lag)
		}
	}
}

// TestPartialResults kills one station and checks the contract: before
// probes notice, federated answers carry X-Federation-Partial naming
// the dead peer and still merge the survivors; after a probe round the
// dead peer is excluded and the marker disappears.
func TestPartialResults(t *testing.T) {
	cl := newCluster(t, 3, 0)

	a := []*flash.Chunk{mkChunk(1, 1, 0, 0, 1, 0)}
	b := []*flash.Chunk{mkChunk(1, 2, 0, 1, 2, 0)}
	mustIngest(t, cl[0].store, a)
	mustIngest(t, cl[1].store, b)
	ref := refServer(t, append(append([]*flash.Chunk{}, a...), b...))

	cl[2].srv.Close() // s2 dies; s0 still believes it healthy

	status, hdr, body := get(t, cl[0].srv.URL+"/query")
	if status != http.StatusOK {
		t.Fatalf("/query: HTTP %d", status)
	}
	if got := hdr.Get(PartialHeader); got != "s2" {
		t.Fatalf("partial marker = %q, want \"s2\"", got)
	}
	_, _, refBody := get(t, ref.URL+"/query")
	if string(body) != string(refBody) {
		t.Fatalf("partial answer should still merge survivors:\nfed: %s\nref: %s", body, refBody)
	}
	if v := cl[0].st.cPartial.Value(); v == 0 {
		t.Fatalf("federation_partial_total = 0 after a partial response")
	}

	// A probe round marks s2 unhealthy; fan-out then skips it and the
	// answer is clean again.
	cl[0].st.ProbeOnce(context.Background())
	if cl[0].st.peers[1].healthy.Load() { // peers sorted by name: s1, s2
		t.Fatalf("s2 still marked healthy after failed probe")
	}
	status, hdr, body = get(t, cl[0].srv.URL+"/query")
	if status != http.StatusOK {
		t.Fatalf("/query after probe: HTTP %d", status)
	}
	if got := hdr.Get(PartialHeader); got != "" {
		t.Fatalf("partial marker survived peer exclusion: %q", got)
	}
	if string(body) != string(refBody) {
		t.Fatalf("post-probe answer diverged from reference")
	}
}

// TestReplicationFactorRing checks source selection: factor R makes
// each station pull from its R−1 ring predecessors, so each stripe
// lands on R stations total.
func TestReplicationFactorRing(t *testing.T) {
	mk := func(names ...string) []*peerState {
		out := make([]*peerState, len(names))
		for i, n := range names {
			out[i] = &peerState{Peer: Peer{Name: n}}
		}
		return out
	}
	names := func(ps []*peerState) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.Name
		}
		return out
	}
	peers := mk("s1", "s2", "s3") // self is s0; ring s0 s1 s2 s3
	cases := []struct {
		factor int
		want   []string
	}{
		{0, []string{"s1", "s2", "s3"}}, // full mesh
		{4, []string{"s1", "s2", "s3"}}, // R >= N: full mesh
		{1, nil},                        // no replication
		{2, []string{"s3"}},             // one predecessor
		{3, []string{"s2", "s3"}},       // two predecessors
	}
	for _, tc := range cases {
		got := names(replicationSources("s0", peers, tc.factor))
		if !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("factor %d: sources = %v, want %v", tc.factor, got, tc.want)
		}
	}
	// A middle station's predecessors wrap differently: s2 with factor 2
	// pulls from s1.
	peers2 := mk("s0", "s1", "s3")
	if got := names(replicationSources("s2", peers2, 2)); !reflect.DeepEqual(got, []string{"s1"}) {
		t.Errorf("s2 factor 2: sources = %v, want [s1]", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1, h2:2 ,,b=h3:3/")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	want := []Peer{
		{Name: "a", URL: "http://h1:1"},
		{Name: "h2:2", URL: "http://h2:2"},
		{Name: "b", URL: "http://h3:3"},
	}
	if !reflect.DeepEqual(peers, want) {
		t.Fatalf("ParsePeers = %+v, want %+v", peers, want)
	}
	if _, err := ParsePeers("x=h:1,x=h:2"); err == nil {
		t.Fatalf("duplicate peer name accepted")
	}
}

// TestCursorPersistence restarts a station and checks replication
// resumes from the persisted cursor instead of re-pulling everything.
func TestCursorPersistence(t *testing.T) {
	srcStore, err := archive.Open(filepath.Join(t.TempDir(), "src"), archive.Options{Shards: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer srcStore.Close()
	srcSrv := httptest.NewServer(archive.NewHandler(srcStore))
	defer srcSrv.Close()
	mustIngest(t, srcStore, []*flash.Chunk{mkChunk(1, 1, 0, 0, 1, 0)})

	dstDir := t.TempDir()
	dstStore, err := archive.Open(filepath.Join(dstDir, "dst"), archive.Options{Shards: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cursorPath := filepath.Join(dstDir, "cursors.json")
	cfg := Config{
		Self:       "dst",
		Peers:      []Peer{{Name: "src", URL: srcSrv.URL}},
		CursorPath: cursorPath,
	}
	st, err := New(dstStore, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := st.ReplicateOnce(context.Background()); err != nil {
		t.Fatalf("ReplicateOnce: %v", err)
	}
	st.Close()
	dstStore.Close()

	dstStore2, err := archive.Open(filepath.Join(dstDir, "dst"), archive.Options{Shards: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dstStore2.Close()
	st2, err := New(dstStore2, cfg)
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	defer st2.Close()
	cur := st2.repl.cursor("src")
	if len(cur) == 0 {
		t.Fatalf("cursor did not persist across restart")
	}
	if lag := srcStore.ReplStatus().Lag(cur); lag != 0 {
		t.Fatalf("persisted cursor lags by %d bytes, want 0", lag)
	}
	// A pull from the persisted cursor ships nothing new.
	n, lag, err := st2.repl.pullOnce(context.Background(), st2.peers[0])
	if err != nil || n != 0 || lag != 0 {
		t.Fatalf("pull after restart = (%d chunks, lag %d, %v), want (0, 0, nil)", n, lag, err)
	}
}
