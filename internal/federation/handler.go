package federation

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/trace"
	"enviromic/internal/wav"
)

// Handler returns the station's HTTP surface: the archive's full API
// with the read endpoints (/query, /files, /files/{id}, /gaps, /wav)
// lifted to federated fan-out versions, plus GET /federation for the
// peer/replication status. Requests carrying LocalHeader — fan-out
// requests from peers — bypass federation and hit the local store, as
// do all write and replication endpoints.
//
// Federated responses keep the single-station JSON shapes exactly; the
// only federation-visible artifact is the X-Federation-Partial header
// naming peers whose holdings are missing from the answer.
func (st *Station) Handler() http.Handler {
	local := archive.NewHandler(st.store)
	fed := http.NewServeMux()
	fed.HandleFunc("GET /files", st.fedFiles)
	fed.HandleFunc("GET /files/{id}", st.fedFile)
	fed.HandleFunc("GET /files/{id}/gaps", st.fedGaps)
	fed.HandleFunc("GET /files/{id}/wav", st.fedWav)
	fed.HandleFunc("GET /query", st.fedQuery)
	fed.HandleFunc("GET /federation", st.fedStatus)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(LocalHeader) != "" {
			local.ServeHTTP(w, r)
			return
		}
		if _, pattern := fed.Handler(r); pattern != "" {
			fed.ServeHTTP(w, r)
			return
		}
		local.ServeHTTP(w, r)
	})
}

// markPartial stamps the partial-result contract: when any peer's
// holdings are missing, the response carries PartialHeader with the
// sorted failed peer names and federation_partial_total increments.
// Must run before the body is written.
func (st *Station) markPartial(w http.ResponseWriter, failed []string) {
	if len(failed) == 0 {
		return
	}
	w.Header().Set(PartialHeader, strings.Join(failed, ","))
	st.cPartial.Inc()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func pathFileID(r *http.Request) (flash.FileID, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad file id %q", raw)
	}
	return flash.FileID(id), nil
}

func (st *Station) fedFiles(w http.ResponseWriter, r *http.Request) {
	merged, failed := st.mergedManifest(r.Context(), "/files", nil)
	infos := make([]archive.FileInfoJSON, 0, len(merged))
	for id, chunks := range merged {
		infos = append(infos, archive.InfoJSON(st.infoFor(id, chunks)))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	st.markPartial(w, failed)
	archive.WriteJSON(w, infos)
}

func (st *Station) fedQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := archive.ParseTime(q.Get("from"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "from: %v", err)
		return
	}
	to, err := archive.ParseTime(q.Get("to"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "to: %v", err)
		return
	}
	var origins map[int32]bool
	if s := q.Get("origins"); s != "" {
		origins = make(map[int32]bool)
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseInt(part, 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad origin %q", part)
				return
			}
			origins[int32(v)] = true
		}
	}
	// Merge the full manifests, then filter on the MERGED spans: a file
	// whose pieces individually miss the window can still overlap it
	// once the stations' holdings are combined, and only the merged
	// view matches what a fully-replicated station would answer.
	merged, failed := st.mergedManifest(r.Context(), "/query", nil)
	bounded := from != 0 || to != 0
	infos := make([]archive.FileInfoJSON, 0, len(merged))
	for id, chunks := range merged {
		fi := st.infoFor(id, chunks)
		if bounded && (fi.End <= from || (to != 0 && fi.Start >= to)) {
			continue
		}
		if len(origins) > 0 && !originsIntersect(fi.Origins, origins) {
			continue
		}
		infos = append(infos, archive.InfoJSON(fi))
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Start != infos[j].Start {
			return infos[i].Start < infos[j].Start
		}
		return infos[i].ID < infos[j].ID
	})
	st.markPartial(w, failed)
	archive.WriteJSON(w, infos)
}

func originsIntersect(have []int32, want map[int32]bool) bool {
	for _, o := range have {
		if want[o] {
			return true
		}
	}
	return false
}

func (st *Station) fedFile(w http.ResponseWriter, r *http.Request) {
	id, err := pathFileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	merged, failed := st.mergedManifest(r.Context(), "/files/{id}", map[flash.FileID]bool{id: true})
	chunks := merged[id]
	if len(chunks) == 0 {
		st.markPartial(w, failed)
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	// chunk_list is span-ordered like a reassembled file, not
	// manifest-ordered.
	sort.Slice(chunks, func(i, j int) bool {
		a, b := chunks[i], chunks[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	type chunkJSON struct {
		Origin   int32   `json:"origin"`
		Seq      uint32  `json:"seq"`
		StartSec float64 `json:"start_s"`
		EndSec   float64 `json:"end_s"`
		Bytes    int     `json:"bytes"`
	}
	list := make([]chunkJSON, 0, len(chunks))
	for _, c := range chunks {
		list = append(list, chunkJSON{
			Origin: c.Origin, Seq: c.Seq,
			StartSec: sim.Time(c.Start).Seconds(), EndSec: sim.Time(c.End).Seconds(),
			Bytes: int(c.Bytes),
		})
	}
	fi := st.infoFor(id, chunks)
	st.markPartial(w, failed)
	archive.WriteJSON(w, struct {
		archive.FileInfoJSON
		DurationSec float64     `json:"duration_s"`
		ChunkList   []chunkJSON `json:"chunk_list"`
	}{archive.InfoJSON(fi), fi.End.Sub(fi.Start).Seconds(), list})
}

func (st *Station) fedGaps(w http.ResponseWriter, r *http.Request) {
	id, err := pathFileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tolerance := st.store.GapTolerance()
	if s := r.URL.Query().Get("tolerance"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad tolerance %q", s)
			return
		}
		tolerance = d
	}
	merged, failed := st.mergedManifest(r.Context(), "/files/{id}/gaps", map[flash.FileID]bool{id: true})
	chunks := merged[id]
	if len(chunks) == 0 {
		st.markPartial(w, failed)
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	gaps := archive.GapsInSpans(chunks, tolerance)
	type gapJSON struct {
		StartSec float64 `json:"start_s"`
		EndSec   float64 `json:"end_s"`
		Seconds  float64 `json:"seconds"`
	}
	out := make([]gapJSON, 0, len(gaps))
	for _, g := range gaps {
		out = append(out, gapJSON{
			StartSec: g.Start.Seconds(),
			EndSec:   g.End.Seconds(),
			Seconds:  g.End.Sub(g.Start).Seconds(),
		})
	}
	requery := []flash.FileID{}
	if len(gaps) > 0 {
		requery = []flash.FileID{id, id | erasure.ParityFileBit}
	}
	st.markPartial(w, failed)
	archive.WriteJSON(w, struct {
		File         flash.FileID   `json:"file"`
		ToleranceSec float64        `json:"tolerance_s"`
		Gaps         []gapJSON      `json:"gaps"`
		RequeryFiles []flash.FileID `json:"requery_files"`
	}{id, tolerance.Seconds(), out, requery})
}

func (st *Station) fedWav(w http.ResponseWriter, r *http.Request) {
	id, err := pathFileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rate := mote.DefaultSampleRate
	if s := r.URL.Query().Get("rate"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad rate %q", s)
			return
		}
		rate = v
	}
	// Pool the file AND its parity sibling from every station, then
	// erasure-decode over the merged holdings: k surviving fragments
	// reconstruct a group even when no single station holds k of them.
	ids := []flash.FileID{id}
	if id&erasure.ParityFileBit == 0 {
		ids = append(ids, id|erasure.ParityFileBit)
	}
	pool, failed, err := st.federatedChunks(r.Context(), "/files/{id}/wav", ids)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(pool) == 0 {
		st.markPartial(w, failed)
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	files, _ := retrieval.ReassembleErasure(
		map[int][]*flash.Chunk{0: pool},
		retrieval.Query{Files: map[flash.FileID]bool{id: true}},
	)
	f := files[id]
	if f == nil {
		st.markPartial(w, failed)
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	samples := trace.Stitch(f, rate)
	if len(samples) == 0 {
		st.markPartial(w, failed)
		httpError(w, http.StatusUnprocessableEntity, "file %d renders no samples", id)
		return
	}
	st.markPartial(w, failed)
	w.Header().Set("Content-Type", "audio/wav")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=file-%d.wav", id))
	wav.Write(w, samples, int(rate))
}

// fedStatus serves GET /federation: self, replication sources, and the
// live per-peer view.
func (st *Station) fedStatus(w http.ResponseWriter, r *http.Request) {
	type peerJSON struct {
		Name     string `json:"name"`
		URL      string `json:"url"`
		Healthy  bool   `json:"healthy"`
		LagBytes int64  `json:"lag_bytes"`
		Cursor   string `json:"cursor"`
		LastErr  string `json:"last_error,omitempty"`
	}
	peers := make([]peerJSON, 0, len(st.peers))
	for _, p := range st.peers {
		p.mu.Lock()
		lastErr := p.lastErr
		state := p.lastState
		p.mu.Unlock()
		cur := st.repl.cursor(p.Name)
		peers = append(peers, peerJSON{
			Name: p.Name, URL: p.URL,
			Healthy:  p.healthy.Load(),
			LagBytes: state.Lag(cur),
			Cursor:   cur.String(),
			LastErr:  lastErr,
		})
	}
	archive.WriteJSON(w, struct {
		Self              string     `json:"self"`
		ReplicationFactor int        `json:"replication_factor"`
		Sources           []string   `json:"replication_sources"`
		Peers             []peerJSON `json:"peers"`
	}{st.cfg.Self, st.cfg.ReplicationFactor, st.ReplicationSources(), peers})
}
