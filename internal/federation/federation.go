// Package federation turns N independent archive stations into one
// logical archive. EnviroMic's mule tours terminate at whichever
// basestation is nearest, so each station holds only the stripe of the
// network its mules serviced; federation makes any station answer for
// all of them.
//
// Two mechanisms compose:
//
//   - Peer replication (replicate.go): every station pulls anti-entropy
//     deltas from its replication sources over GET /repl/delta, resuming
//     from a persisted per-peer cursor. Deltas are raw segment frames —
//     the same wire format as POST /ingest — and land through the
//     archive's normal (origin, seq) dedup path, so re-pulling any range
//     is idempotent and convergence after a partition needs no protocol
//     beyond "keep pulling". A configurable replication factor bounds
//     how many stations hold each stripe.
//
//   - Federated query fan-out (coordinator.go): /query, /files, /gaps,
//     and /wav fan out to every healthy peer in parallel, merge the
//     chunk-key manifests with keep-longest (origin, seq) dedup — the
//     exact supersession rule the archive applies on ingest — and
//     answer with the same JSON a single fully-replicated station
//     would. Peers that fail or time out degrade the answer to the
//     surviving holdings, marked by the X-Federation-Partial header.
//     Erasure groups whose k surviving fragments are scattered across
//     stations decode during /wav via retrieval.ReassembleErasure.
//
// A station trusts its own store plus whatever /repl endpoints say;
// there is no consensus, no leader, and no write forwarding — ingest
// stays local to whichever station a mule reached, and replication
// spreads it.
package federation

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/telemetry"
)

// LocalHeader marks a request that must be answered from the local
// store only. Fan-out requests carry it so a peer never re-fans-out
// (no recursion, no amplification).
const LocalHeader = "X-Enviromic-Local"

// PartialHeader names the peers a federated response is missing. Its
// absence means the answer covers every healthy station.
const PartialHeader = "X-Federation-Partial"

// Peer is one remote station.
type Peer struct {
	Name string
	URL  string // base URL, no trailing slash
}

// ParsePeers parses a comma-separated peer list. Each entry is
// "name=url" or a bare url; a url without a scheme gets http://. The
// default name is the host:port part.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, hasName := strings.Cut(part, "=")
		if !hasName {
			u, name = part, ""
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
		}
		if seen[name] {
			return nil, fmt.Errorf("federation: duplicate peer %q", name)
		}
		seen[name] = true
		peers = append(peers, Peer{Name: name, URL: u})
	}
	return peers, nil
}

// Config wires a Station. The zero value of every optional field has a
// usable default.
type Config struct {
	// Self is this station's name — its position in the replication
	// ring. Required when Peers is non-empty.
	Self string
	// Peers are the other stations.
	Peers []Peer
	// ReplicationFactor is how many stations hold each station's
	// stripe, counting the origin. 0 (or anything >= the station count)
	// replicates everywhere; 1 replicates nowhere.
	ReplicationFactor int
	// ReplInterval is the idle delay between anti-entropy pulls once a
	// source is caught up. Default 2s.
	ReplInterval time.Duration
	// ProbeInterval is the health-probe period. Default 1s.
	ProbeInterval time.Duration
	// FanoutTimeout bounds each per-peer fan-out request. Default 2s.
	FanoutTimeout time.Duration
	// MaxDeltaBytes is the per-pull replication batch budget. Default
	// archive.DefaultDeltaBytes.
	MaxDeltaBytes int64
	// CursorPath persists replication cursors (atomic JSON rewrite) so
	// a restarted station resumes instead of re-pulling everything.
	// Empty keeps cursors in memory only.
	CursorPath string
	// Client is the HTTP client for all peer traffic. Defaults to a
	// dedicated client; timeouts come from per-request contexts.
	Client *http.Client
	// Telemetry is the registry federation series are published into.
	// Nil gives the station a private registry.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.ReplInterval <= 0 {
		c.ReplInterval = 2 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.FanoutTimeout <= 0 {
		c.FanoutTimeout = 2 * time.Second
	}
	if c.MaxDeltaBytes <= 0 {
		c.MaxDeltaBytes = archive.DefaultDeltaBytes
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Station is one federation member: a local archive plus the peer
// registry, the anti-entropy puller, and the fan-out coordinator.
type Station struct {
	cfg    Config
	store  *archive.Store
	client *http.Client
	peers  []*peerState // sorted by name
	repl   *replicator
	reg    *telemetry.Registry

	cPartial  *telemetry.Counter
	cFanouts  *telemetry.Counter
	cPeerErrs *telemetry.Counter
	hFanout   map[string]*telemetry.Histogram // keyed by endpoint pattern

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed sync.Once
}

// New builds a Station over store. Start launches the background
// loops; a station used synchronously (tests) can skip Start and drive
// ProbeOnce/ReplicateOnce instead.
func New(store *archive.Store, cfg Config) (*Station, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) > 0 && cfg.Self == "" {
		return nil, fmt.Errorf("federation: Config.Self required with peers")
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	st := &Station{
		cfg:    cfg,
		store:  store,
		client: cfg.Client,
		reg:    reg,
	}
	st.ctx, st.cancel = context.WithCancel(context.Background())
	seen := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		if seen[p.Name] {
			return nil, fmt.Errorf("federation: duplicate station name %q", p.Name)
		}
		seen[p.Name] = true
		st.peers = append(st.peers, newPeerState(p, reg))
	}
	sort.Slice(st.peers, func(i, j int) bool { return st.peers[i].Name < st.peers[j].Name })

	st.cPartial = reg.Counter("enviromic_federation_partial_total",
		"Federated responses missing at least one peer's holdings.")
	st.cFanouts = reg.Counter("enviromic_federation_fanouts_total",
		"Federated fan-out rounds performed.")
	st.cPeerErrs = reg.Counter("enviromic_federation_fanout_peer_errors_total",
		"Per-peer fan-out requests that failed or timed out.")
	st.hFanout = make(map[string]*telemetry.Histogram)
	for _, ep := range []string{"/query", "/files", "/files/{id}", "/files/{id}/gaps", "/files/{id}/wav"} {
		st.hFanout[ep] = reg.Histogram("enviromic_federation_fanout_seconds",
			"Wall time of one federated fan-out round (all peers, in parallel).",
			telemetry.DurationBuckets(), telemetry.L("endpoint", ep))
	}

	repl, err := newReplicator(st)
	if err != nil {
		return nil, err
	}
	st.repl = repl
	return st, nil
}

// Store returns the station's local archive.
func (st *Station) Store() *archive.Store { return st.store }

// Metrics returns the registry the station publishes into.
func (st *Station) Metrics() *telemetry.Registry { return st.reg }

// Start launches the health-probe loop and one anti-entropy puller per
// replication source.
func (st *Station) Start() {
	if len(st.peers) > 0 {
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.probeLoop(st.ctx)
		}()
	}
	for _, src := range st.repl.sources {
		src := src
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.repl.run(st.ctx, src)
		}()
	}
}

// Close stops the background loops and persists the cursors. It does
// not close the underlying store.
func (st *Station) Close() {
	st.closed.Do(func() {
		st.cancel()
		st.wg.Wait()
		st.repl.save()
	})
}

// healthyPeers snapshots the peers currently considered healthy.
func (st *Station) healthyPeers() []*peerState {
	out := make([]*peerState, 0, len(st.peers))
	for _, p := range st.peers {
		if p.healthy.Load() {
			out = append(out, p)
		}
	}
	return out
}

// EndpointOf maps a federated request to its route pattern for the
// telemetry middleware — archive.EndpointOf plus the /federation
// status route.
func EndpointOf(r *http.Request) string {
	if r.URL.Path == "/federation" {
		return "/federation"
	}
	return archive.EndpointOf(r)
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
