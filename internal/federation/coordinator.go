package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"enviromic/internal/archive"
	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// The fan-out coordinator. Every federated read follows the same
// shape: ask the local store, ask every healthy peer's /repl endpoint
// in parallel (marked LocalHeader so peers answer from their own store
// only), merge with the archive's supersession rule — per (origin,
// seq), the longest copy wins, local first on ties — and answer in
// exactly the single-station JSON shape. Failed peers are dropped from
// the merge and named in the PartialHeader.

// peerResp is one peer's answer to one fan-out path.
type peerResp struct {
	peer   *peerState
	path   string
	status int
	body   []byte
	err    error
}

// fanout issues every path to every healthy peer in parallel and
// returns the responses plus the names of peers that failed (transport
// error or 5xx; a 404 is an answer, not a failure). The endpoint names
// the latency histogram series.
func (st *Station) fanout(ctx context.Context, endpoint string, paths []string) ([]peerResp, []string) {
	peers := st.healthyPeers()
	if len(peers) == 0 || len(paths) == 0 {
		return nil, nil
	}
	st.cFanouts.Inc()
	start := time.Now()
	out := make([]peerResp, len(peers)*len(paths))
	var wg sync.WaitGroup
	for i, p := range peers {
		for j, path := range paths {
			i, j, p, path := i, j, p, path
			wg.Add(1)
			go func() {
				defer wg.Done()
				out[i*len(paths)+j] = st.fetch(ctx, p, path)
			}()
		}
	}
	wg.Wait()
	if h := st.hFanout[endpoint]; h != nil {
		h.ObserveDuration(time.Since(start))
	}
	var failed []string
	seen := make(map[string]bool)
	for _, r := range out {
		if (r.err != nil || r.status >= 500) && !seen[r.peer.Name] {
			seen[r.peer.Name] = true
			failed = append(failed, r.peer.Name)
			st.cPeerErrs.Inc()
		}
	}
	sort.Strings(failed)
	return out, failed
}

// fetch performs one fan-out GET against one peer.
func (st *Station) fetch(ctx context.Context, p *peerState, path string) peerResp {
	ctx, cancel := context.WithTimeout(ctx, st.cfg.FanoutTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+path, nil)
	if err != nil {
		return peerResp{peer: p, path: path, err: err}
	}
	req.Header.Set(LocalHeader, "1")
	resp, err := st.client.Do(req)
	if err != nil {
		return peerResp{peer: p, path: path, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return peerResp{peer: p, path: path, err: err}
	}
	return peerResp{peer: p, path: path, status: resp.StatusCode, body: body}
}

// ckey identifies a chunk across stations.
type ckey struct {
	file   flash.FileID
	origin int32
	seq    uint32
}

// mergedManifest merges the local manifest with every healthy peer's
// into one keep-longest chunk-key view per file. A non-nil files set
// restricts the merge (and the peer requests) to those IDs.
func (st *Station) mergedManifest(ctx context.Context, endpoint string, files map[flash.FileID]bool) (map[flash.FileID][]archive.ChunkKey, []string) {
	path := "/repl/manifest"
	if len(files) > 0 {
		ids := make([]flash.FileID, 0, len(files))
		for id := range files {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		path += "?files="
		for i, id := range ids {
			if i > 0 {
				path += ","
			}
			path += fmt.Sprint(uint32(id))
		}
	}
	resps, failed := st.fanout(ctx, endpoint, []string{path})

	best := make(map[ckey]archive.ChunkKey)
	absorb := func(ms []archive.FileManifest) {
		for _, m := range ms {
			for _, c := range m.Chunks {
				k := ckey{m.ID, c.Origin, c.Seq}
				if cur, ok := best[k]; !ok || c.Bytes > cur.Bytes {
					best[k] = c
				}
			}
		}
	}
	absorb(st.store.Manifest(0, 0, nil, files))
	for _, r := range resps {
		if r.err != nil || r.status != http.StatusOK {
			continue
		}
		var ms []archive.FileManifest
		if err := json.Unmarshal(r.body, &ms); err != nil {
			continue // a garbled peer degrades to partial, not to corruption
		}
		absorb(ms)
	}
	out := make(map[flash.FileID][]archive.ChunkKey)
	for k, c := range best {
		out[k.file] = append(out[k.file], c)
	}
	for _, chunks := range out {
		sort.Slice(chunks, func(i, j int) bool {
			if chunks[i].Origin != chunks[j].Origin {
				return chunks[i].Origin < chunks[j].Origin
			}
			return chunks[i].Seq < chunks[j].Seq
		})
	}
	return out, failed
}

// infoFor summarizes one merged chunk set exactly the way a single
// station's index would (gap count at the local store's tolerance).
func (st *Station) infoFor(id flash.FileID, chunks []archive.ChunkKey) archive.FileInfo {
	fi := archive.FileInfo{ID: id, Chunks: len(chunks)}
	origins := make(map[int32]bool)
	for i, c := range chunks {
		if i == 0 || sim.Time(c.Start) < fi.Start {
			fi.Start = sim.Time(c.Start)
		}
		if sim.Time(c.End) > fi.End {
			fi.End = sim.Time(c.End)
		}
		fi.Bytes += c.Bytes
		origins[c.Origin] = true
	}
	fi.Origins = make([]int32, 0, len(origins))
	for o := range origins {
		fi.Origins = append(fi.Origins, o)
	}
	sort.Slice(fi.Origins, func(i, j int) bool { return fi.Origins[i] < fi.Origins[j] })
	fi.Gaps = len(archive.GapsInSpans(chunks, st.store.GapTolerance()))
	return fi
}

// federatedChunks pools the listed files' chunks from the local store
// and every healthy peer, deduplicated keep-longest. The returned
// chunks mix shared local cache entries with peer-decoded copies —
// callers must treat them as read-only.
func (st *Station) federatedChunks(ctx context.Context, endpoint string, ids []flash.FileID) ([]*flash.Chunk, []string, error) {
	best := make(map[ckey]*flash.Chunk)
	absorb := func(cs []*flash.Chunk) {
		for _, c := range cs {
			k := ckey{c.File, c.Origin, c.Seq}
			if cur, ok := best[k]; !ok || len(c.Data) > len(cur.Data) {
				best[k] = c
			}
		}
	}
	for _, id := range ids {
		f, err := st.store.File(id)
		if errors.Is(err, archive.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		absorb(f.Chunks)
	}
	paths := make([]string, len(ids))
	for i, id := range ids {
		paths[i] = fmt.Sprintf("/repl/file/%d", uint32(id))
	}
	resps, failed := st.fanout(ctx, endpoint, paths)
	for _, r := range resps {
		if r.err != nil || r.status != http.StatusOK {
			continue
		}
		chunks, err := archive.DecodeFrames(bytes.NewReader(r.body))
		if err != nil {
			continue // torn peer stream: use what the others have
		}
		absorb(chunks)
	}
	out := make([]*flash.Chunk, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	return out, failed, nil
}
