package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"enviromic/internal/archive"
	"enviromic/internal/telemetry"
)

// peerState is the station's live view of one peer: static identity,
// probed health, and per-peer telemetry. Peers start healthy so fan-out
// works before the first probe lands; the probe loop flips the bit as
// soon as reality disagrees.
type peerState struct {
	Peer
	healthy atomic.Bool

	gHealthy    *telemetry.Gauge
	gLag        *telemetry.Gauge
	cProbeFails *telemetry.Counter
	cPulls      *telemetry.Counter
	cPullChunks *telemetry.Counter
	cPullErrs   *telemetry.Counter

	mu        sync.Mutex
	lastErr   string
	lastState archive.ReplStatus
}

func newPeerState(p Peer, reg *telemetry.Registry) *peerState {
	l := telemetry.L("peer", p.Name)
	ps := &peerState{
		Peer: p,
		gHealthy: reg.Gauge("enviromic_federation_peer_healthy",
			"1 when the peer's last health probe succeeded.", l),
		gLag: reg.Gauge("enviromic_federation_repl_lag_bytes",
			"Segment bytes this station still has to pull from the peer.", l),
		cProbeFails: reg.Counter("enviromic_federation_probe_failures_total",
			"Failed health probes.", l),
		cPulls: reg.Counter("enviromic_federation_repl_pulls_total",
			"Anti-entropy delta pulls from the peer.", l),
		cPullChunks: reg.Counter("enviromic_federation_repl_chunks_total",
			"Chunks ingested from the peer's deltas (duplicates included).", l),
		cPullErrs: reg.Counter("enviromic_federation_repl_errors_total",
			"Failed anti-entropy pulls.", l),
	}
	ps.healthy.Store(true)
	ps.gHealthy.Set(1)
	return ps
}

func (p *peerState) setHealthy(ok bool, err error) {
	p.healthy.Store(ok)
	if ok {
		p.gHealthy.Set(1)
	} else {
		p.gHealthy.Set(0)
	}
	p.mu.Lock()
	if err != nil {
		p.lastErr = err.Error()
	} else {
		p.lastErr = ""
	}
	p.mu.Unlock()
}

// probeOne probes one peer's /repl/status, updating health and the
// replication lag gauge.
func (st *Station) probeOne(ctx context.Context, p *peerState) error {
	ctx, cancel := context.WithTimeout(ctx, st.cfg.FanoutTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/repl/status", nil)
	if err != nil {
		p.cProbeFails.Inc()
		p.setHealthy(false, err)
		return err
	}
	resp, err := st.client.Do(req)
	if err != nil {
		p.cProbeFails.Inc()
		p.setHealthy(false, err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("federation: probe of %s: HTTP %d", p.Name, resp.StatusCode)
		p.cProbeFails.Inc()
		p.setHealthy(false, err)
		return err
	}
	var status archive.ReplStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		p.cProbeFails.Inc()
		p.setHealthy(false, err)
		return err
	}
	p.mu.Lock()
	p.lastState = status
	p.mu.Unlock()
	p.setHealthy(true, nil)
	p.gLag.SetInt(status.Lag(st.repl.cursor(p.Name)))
	return nil
}

// ProbeOnce probes every peer in parallel and returns the first error
// (all peers are still probed). Deterministic test seam for the probe
// loop.
func (st *Station) ProbeOnce(ctx context.Context) error {
	errs := make([]error, len(st.peers))
	var wg sync.WaitGroup
	for i, p := range st.peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = st.probeOne(ctx, p)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (st *Station) probeLoop(ctx context.Context) {
	for {
		st.ProbeOnce(ctx)
		sleep(ctx, st.cfg.ProbeInterval)
		if ctx.Err() != nil {
			return
		}
	}
}
