package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"enviromic/internal/archive"
)

// pullTimeout bounds one delta pull (request + body). Generous next to
// FanoutTimeout: a pull moves up to MaxDeltaBytes of payload, a fan-out
// moves metadata.
const pullTimeout = 15 * time.Second

// replicator runs pull-based anti-entropy against this station's
// replication sources. Cursors advance only after the pulled frames are
// durably ingested, so a crash between pull and ingest merely re-pulls
// a range the dedup path absorbs.
type replicator struct {
	st      *Station
	sources []*peerState

	mu      sync.Mutex
	cursors map[string]archive.ReplCursor // by peer name
}

func newReplicator(st *Station) (*replicator, error) {
	r := &replicator{
		st:      st,
		sources: replicationSources(st.cfg.Self, st.peers, st.cfg.ReplicationFactor),
		cursors: make(map[string]archive.ReplCursor),
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	return r, nil
}

// replicationSources picks which peers this station pulls from. Factor
// R means every station's stripe ends up on R stations: all names
// (self included) are sorted into a ring, and each station pulls from
// its R−1 immediate ring predecessors — so a station's own data is
// held by itself and its R−1 successors. R <= 0 or R > station count
// pulls from everyone (full mesh); R == 1 pulls from no one.
func replicationSources(self string, peers []*peerState, factor int) []*peerState {
	n := len(peers) + 1
	if factor <= 0 || factor >= n {
		return peers
	}
	if factor == 1 {
		return nil
	}
	ring := make([]string, 0, n)
	ring = append(ring, self)
	byName := make(map[string]*peerState, len(peers))
	for _, p := range peers {
		ring = append(ring, p.Name)
		byName[p.Name] = p
	}
	sort.Strings(ring)
	selfIdx := sort.SearchStrings(ring, self)
	out := make([]*peerState, 0, factor-1)
	for k := 1; k < factor; k++ {
		name := ring[((selfIdx-k)%n+n)%n]
		out = append(out, byName[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *replicator) cursor(peer string) archive.ReplCursor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursors[peer]
}

func (r *replicator) setCursor(peer string, cur archive.ReplCursor) {
	r.mu.Lock()
	r.cursors[peer] = cur
	r.mu.Unlock()
}

// cursorFile is the persisted cursor store.
type cursorFile struct {
	Cursors map[string]string `json:"cursors"`
}

func (r *replicator) load() error {
	path := r.st.cfg.CursorPath
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var cf cursorFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return fmt.Errorf("federation: corrupt cursor store %s: %w", path, err)
	}
	for peer, s := range cf.Cursors {
		cur, err := archive.ParseReplCursor(s)
		if err != nil {
			// A bad cursor only costs a re-pull from zero; don't refuse
			// to start over it.
			continue
		}
		r.cursors[peer] = cur
	}
	return nil
}

// save persists the cursors atomically (temp + rename). Errors are
// dropped: a stale cursor store only means extra idempotent re-pulls.
func (r *replicator) save() {
	path := r.st.cfg.CursorPath
	if path == "" {
		return
	}
	r.mu.Lock()
	cf := cursorFile{Cursors: make(map[string]string, len(r.cursors))}
	for peer, cur := range r.cursors {
		cf.Cursors[peer] = cur.String()
	}
	r.mu.Unlock()
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, append(data, '\n'), 0o644) == nil {
		os.Rename(tmp, path)
	}
}

// pullOnce pulls one delta batch from p and ingests it. Returns how
// many chunks the batch carried and the lag still behind p after it.
func (r *replicator) pullOnce(ctx context.Context, p *peerState) (chunks int, lag int64, err error) {
	ctx, cancel := context.WithTimeout(ctx, pullTimeout)
	defer cancel()
	cur := r.cursor(p.Name)
	u := p.URL + "/repl/delta?cursor=" + url.QueryEscape(cur.String()) +
		"&max=" + strconv.FormatInt(r.st.cfg.MaxDeltaBytes, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := r.st.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, 0, fmt.Errorf("federation: delta from %s: HTTP %d: %s", p.Name, resp.StatusCode, bytes.TrimSpace(body))
	}
	next, err := archive.ParseReplCursor(resp.Header.Get(archive.ReplCursorHeader))
	if err != nil {
		return 0, 0, fmt.Errorf("federation: delta from %s: %w", p.Name, err)
	}
	lag, _ = strconv.ParseInt(resp.Header.Get(archive.ReplLagHeader), 10, 64)
	// Any decode error drops the whole batch without advancing the
	// cursor: the next pull re-fetches the same range and the dedup
	// path absorbs whatever half already landed.
	batch, err := archive.DecodeFrames(resp.Body)
	if err != nil {
		return 0, lag, fmt.Errorf("federation: delta from %s: %w", p.Name, err)
	}
	if len(batch) > 0 {
		if _, err := r.st.store.Ingest(batch); err != nil {
			return 0, lag, err
		}
	}
	r.setCursor(p.Name, next)
	r.save()
	p.cPulls.Inc()
	p.cPullChunks.Add(int64(len(batch)))
	p.gLag.SetInt(lag)
	return len(batch), lag, nil
}

// run is the per-source anti-entropy loop: pull until caught up, sleep
// ReplInterval, repeat; back off exponentially on errors.
func (r *replicator) run(ctx context.Context, p *peerState) {
	const (
		backoffBase = 250 * time.Millisecond
		backoffMax  = 30 * time.Second
	)
	backoff := backoffBase
	for ctx.Err() == nil {
		_, lag, err := r.pullOnce(ctx, p)
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			p.cPullErrs.Inc()
			sleep(ctx, backoff)
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		case lag > 0:
			backoff = backoffBase // keep draining immediately
		default:
			backoff = backoffBase
			sleep(ctx, r.st.cfg.ReplInterval)
		}
	}
}

// ReplicateOnce synchronously drains every replication source until
// its lag reaches zero. Deterministic test seam for the pull loops.
func (st *Station) ReplicateOnce(ctx context.Context) error {
	for _, p := range st.repl.sources {
		for {
			_, lag, err := st.repl.pullOnce(ctx, p)
			if err != nil {
				return err
			}
			if lag == 0 {
				break
			}
		}
	}
	return nil
}

// ReplicationSources lists the peer names this station pulls from —
// the replication-factor ring made inspectable for /federation and
// tests.
func (st *Station) ReplicationSources() []string {
	out := make([]string, len(st.repl.sources))
	for i, p := range st.repl.sources {
		out[i] = p.Name
	}
	return out
}
