package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

func at(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func TestIntervalSetUnionMergesOverlaps(t *testing.T) {
	var s IntervalSet
	s.Add(at(0), at(2))
	s.Add(at(1), at(3)) // overlaps
	s.Add(at(5), at(6)) // disjoint
	s.Add(at(3), at(4)) // adjacent to [0,3)
	if got := s.Union(); got != 5*time.Second {
		t.Errorf("Union = %v, want 5s", got)
	}
	if got := s.Total(); got != 6*time.Second {
		t.Errorf("Total = %v, want 6s", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestIntervalSetIgnoresEmpty(t *testing.T) {
	var s IntervalSet
	s.Add(at(2), at(2))
	s.Add(at(3), at(1))
	if s.Len() != 0 || s.Union() != 0 {
		t.Error("empty/inverted intervals were stored")
	}
}

func TestIntervalSetWithin(t *testing.T) {
	var s IntervalSet
	s.Add(at(0), at(10))
	s.Add(at(5), at(15))
	if got := s.UnionWithin(at(8), at(12)); got != 4*time.Second {
		t.Errorf("UnionWithin = %v, want 4s", got)
	}
	if got := s.TotalWithin(at(8), at(12)); got != 6*time.Second {
		t.Errorf("TotalWithin = %v, want 6s (both intervals clip to 2+4)", got)
	}
}

func TestIntervalSetGaps(t *testing.T) {
	var s IntervalSet
	s.Add(at(2), at(4))
	s.Add(at(6), at(8))
	gaps := s.Gaps(at(0), at(10))
	want := []Interval{{at(0), at(2)}, {at(4), at(6)}, {at(8), at(10)}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	var empty IntervalSet
	g := empty.Gaps(at(0), at(5))
	if len(g) != 1 || g[0].Dur() != 5*time.Second {
		t.Errorf("empty-set gaps = %v", g)
	}
}

// Property: Union <= Total, and Union <= span when all intervals clipped.
func TestQuickIntervalSetInvariants(t *testing.T) {
	f := func(pairs [][2]uint16) bool {
		var s IntervalSet
		for _, p := range pairs {
			a, b := sim.Time(p[0])*sim.Time(time.Millisecond), sim.Time(p[1])*sim.Time(time.Millisecond)
			if a > b {
				a, b = b, a
			}
			s.Add(a, b)
		}
		if s.Union() > s.Total() {
			return false
		}
		span := sim.Time(65536) * sim.Time(time.Millisecond)
		if s.UnionWithin(0, span) > span.Duration() {
			return false
		}
		// Gaps + union must tile the window exactly.
		var gapTotal time.Duration
		for _, g := range s.Gaps(0, span) {
			gapTotal += g.Dur()
		}
		return gapTotal+s.UnionWithin(0, span) == span.Duration()
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRecordingEffective(t *testing.T) {
	r := Recording{Node: 1, Start: at(10), End: at(12), StoredFrac: 0.5}
	eff := r.Effective()
	if eff.Start != at(10) || eff.End != at(11) {
		t.Errorf("Effective = %v", eff)
	}
}

// collectorRig builds a field with one whitelisted event heard by nodes
// 0 and 1.
func collectorRig() (*Collector, *acoustics.Source) {
	field := acoustics.NewField(1.0)
	src := acoustics.StaticSource(1, geometry.Point{X: 0.5}, at(10), 10*time.Second, 5, acoustics.VoiceTone)
	field.AddSource(src)
	pos := map[int]geometry.Point{
		0: {X: 0}, 1: {X: 1}, 2: {X: 100},
	}
	return NewCollector(field, pos), src
}

func TestMissRatioFullCoverage(t *testing.T) {
	c, _ := collectorRig()
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(10), End: at(20), StoredFrac: 1})
	if got := c.MissRatioAt(at(30)); got != 0 {
		t.Errorf("miss with full coverage = %v, want 0", got)
	}
}

func TestMissRatioPartialCoverage(t *testing.T) {
	c, _ := collectorRig()
	// Covers [12,17) of the 10 s event: 50% missed.
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(12), End: at(17), StoredFrac: 1})
	if got := c.MissRatioAt(at(30)); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("miss = %v, want 0.5", got)
	}
}

func TestMissRatioCountsOnlyStoredFraction(t *testing.T) {
	c, _ := collectorRig()
	// Recorded the whole event but only half fit in flash.
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(10), End: at(20), StoredFrac: 0.5})
	if got := c.MissRatioAt(at(30)); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("miss = %v, want 0.5", got)
	}
}

func TestMissRatioIgnoresUnattributedRecordings(t *testing.T) {
	c, _ := collectorRig()
	// Node 2 is far away: its "recording" cannot be of this event.
	c.AddRecording(Recording{Node: 2, File: 9, Start: at(10), End: at(20), StoredFrac: 1})
	if got := c.MissRatioAt(at(30)); got != 1 {
		t.Errorf("miss = %v, want 1 (no attributed coverage)", got)
	}
}

func TestMissRatioCumulativeOverTime(t *testing.T) {
	c, _ := collectorRig()
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(10), End: at(15), StoredFrac: 1})
	// At t=15, event ran 5 s, all covered.
	if got := c.MissRatioAt(at(15)); got != 0 {
		t.Errorf("miss at 15s = %v, want 0", got)
	}
	// At t=20, event ran 10 s, 5 covered.
	if got := c.MissRatioAt(at(20)); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("miss at 20s = %v, want 0.5", got)
	}
	// Before the event there is nothing to miss.
	if got := c.MissRatioAt(at(5)); got != 0 {
		t.Errorf("miss before event = %v, want 0", got)
	}
}

func TestRedundancyFromOverlap(t *testing.T) {
	c, _ := collectorRig()
	// Two nodes recorded the same 10 s event entirely: half the recorded
	// time is redundant.
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(10), End: at(20), StoredFrac: 1})
	c.AddRecording(Recording{Node: 1, File: 1, Start: at(10), End: at(20), StoredFrac: 1})
	if got := c.RedundancyRatioAt(at(30), 2730); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("redundancy = %v, want 0.5", got)
	}
}

func TestRedundancyIncludesDuplicateChunks(t *testing.T) {
	c, _ := collectorRig()
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(10), End: at(20), StoredFrac: 1})
	// 10 s × 2730 B/s = 27300 recorded bytes; 10 duplicated blocks.
	c.AddSample(Sample{At: at(25), DuplicateChunks: 10})
	want := float64(10*flash.BlockSize) / 27300.0
	if got := c.RedundancyRatioAt(at(30), 2730); math.Abs(got-want) > 1e-9 {
		t.Errorf("redundancy = %v, want %v", got, want)
	}
	// Before the sample, no duplicates known.
	if got := c.RedundancyRatioAt(at(20), 2730); got != 0 {
		t.Errorf("redundancy before sample = %v, want 0", got)
	}
}

func TestMessageCountFromSamples(t *testing.T) {
	c, _ := collectorRig()
	c.AddSample(Sample{At: at(10), TxByKind: map[string]uint64{"task.request": 5, "timesync": 99}})
	c.AddSample(Sample{At: at(20), TxByKind: map[string]uint64{"task.request": 9, "bulk.data": 3, "timesync": 200}})
	if got := c.MessageCountAt(at(15)); got != 5 {
		t.Errorf("count at 15s = %d, want 5 (timesync excluded)", got)
	}
	if got := c.MessageCountAt(at(25)); got != 12 {
		t.Errorf("count at 25s = %d, want 12", got)
	}
	if got := c.MessageCountAt(at(5)); got != 0 {
		t.Errorf("count before samples = %d, want 0", got)
	}
}

func TestStorageHeatmap(t *testing.T) {
	c, _ := collectorRig()
	c.AddSample(Sample{At: at(10), StoredBytes: map[int]int{0: 1000, 1: 500}})
	h := c.StorageHeatmapAt(at(15), 2, 1)
	if got := h.Total(); got != 1500 {
		t.Errorf("heatmap total = %v, want 1500", got)
	}
}

func TestOverheadHeatmap(t *testing.T) {
	c, _ := collectorRig()
	c.AddSample(Sample{At: at(10), TxByNode: map[int]uint64{0: 7, 1: 3}})
	h := c.OverheadHeatmapAt(at(15), 2, 1)
	if got := h.Total(); got != 10 {
		t.Errorf("overhead total = %v, want 10", got)
	}
}

func TestRecordedSecondsPerBucket(t *testing.T) {
	c, _ := collectorRig()
	c.AddRecording(Recording{Node: 0, Start: at(30), End: at(32), StoredFrac: 1})
	c.AddRecording(Recording{Node: 0, Start: at(31), End: at(33), StoredFrac: 0.5})
	c.AddRecording(Recording{Node: 0, Start: at(90), End: at(95), StoredFrac: 1})
	buckets := c.RecordedSecondsPerBucket(at(120), time.Minute)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if math.Abs(buckets[0]-3) > 1e-9 {
		t.Errorf("bucket 0 = %v, want 3", buckets[0])
	}
	if math.Abs(buckets[1]-5) > 1e-9 {
		t.Errorf("bucket 1 = %v, want 5", buckets[1])
	}
}

func TestRecordedBytesByNode(t *testing.T) {
	c, _ := collectorRig()
	c.AddRecording(Recording{Node: 0, Start: at(10), End: at(12), StoredFrac: 1})
	c.AddRecording(Recording{Node: 1, Start: at(10), End: at(11), StoredFrac: 1})
	got := c.RecordedBytesByNode(1000)
	if got[0] != 2000 || got[1] != 1000 {
		t.Errorf("bytes by node = %v", got)
	}
}

func TestMigratedFromNode(t *testing.T) {
	c, _ := collectorRig()
	c.AddMigration(Migration{From: 5, To: 6, Chunks: 10, At: at(10)})
	c.AddMigration(Migration{From: 5, To: 7, Chunks: 4, At: at(20)})
	c.AddMigration(Migration{From: 6, To: 7, Chunks: 2, At: at(30)})
	got := c.MigratedFromNode(5)
	if got[6] != 10 || got[7] != 4 || len(got) != 2 {
		t.Errorf("MigratedFromNode = %v", got)
	}
}

func TestCountDuplicates(t *testing.T) {
	mk := func(file flash.FileID, origin int32, seq uint32) *flash.Chunk {
		return &flash.Chunk{File: file, Origin: origin, Seq: seq}
	}
	holdings := map[int][]*flash.Chunk{
		0: {mk(1, 0, 0), mk(1, 0, 1)},
		1: {mk(1, 0, 1), mk(1, 0, 2)},              // seq 1 duplicated
		2: {mk(1, 0, 1), mk(2, 0, 1), mk(1, 5, 1)}, // seq 1 triplicated; others unique
	}
	if got := CountDuplicates(holdings); got != 2 {
		t.Errorf("duplicates = %d, want 2", got)
	}
	if got := CountDuplicates(nil); got != 0 {
		t.Errorf("duplicates of nil = %d", got)
	}
}

func TestMessageCountExcludesTimesyncPrefixedKinds(t *testing.T) {
	c, _ := collectorRig()
	// FTSP traffic registers sub-kinds like "timesync.reply"; the Fig 12
	// count must exclude the whole family, not just the bare "timesync".
	c.AddSample(Sample{At: at(10), TxByKind: map[string]uint64{
		"task.request":   5,
		"timesync":       99,
		"timesync.reply": 41,
	}})
	if got := c.MessageCountAt(at(15)); got != 5 {
		t.Errorf("count = %d, want 5 (every timesync* kind excluded)", got)
	}
}

func TestSampleAtBoundaries(t *testing.T) {
	c, _ := collectorRig()
	for _, s := range []float64{10, 20, 30} {
		c.AddSample(Sample{At: at(s), TxByKind: map[string]uint64{"task.request": uint64(s)}})
	}
	// "Latest sample at or before t" across every boundary case.
	cases := []struct {
		q    float64
		want uint64
	}{{5, 0}, {10, 10}, {15, 10}, {20, 20}, {29.9, 20}, {30, 30}, {99, 30}}
	for _, tc := range cases {
		if got := c.MessageCountAt(at(tc.q)); got != tc.want {
			t.Errorf("MessageCountAt(%vs) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestAttributionZeroLengthOverlap(t *testing.T) {
	c, _ := collectorRig() // event spans [10,20)
	// One recording ends exactly when the event starts, another starts
	// exactly at its end: both overlaps are empty, neither attributes.
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(0), End: at(10), StoredFrac: 1})
	c.AddRecording(Recording{Node: 0, File: 2, Start: at(20), End: at(30), StoredFrac: 1})
	if got := c.MissRatioAt(at(30)); got != 1 {
		t.Errorf("miss = %v, want 1 (zero-length overlaps must not attribute)", got)
	}
}

func TestAttributionUnknownRecorderPosition(t *testing.T) {
	c, _ := collectorRig()
	// Node 7 has no known position: its recording cannot be attributed
	// even though it fully overlaps the event in time.
	c.AddRecording(Recording{Node: 7, File: 1, Start: at(10), End: at(20), StoredFrac: 1})
	if got := c.MissRatioAt(at(30)); got != 1 {
		t.Errorf("miss = %v, want 1 (recorder without position)", got)
	}
}

func TestAttributionMobileAudibleOnlyAtFinalProbe(t *testing.T) {
	field := acoustics.NewField(1.0)
	// Source moves x=0→100 over 100 s; loudness 2 → audible range 2. The
	// listener at x=101.5 only hears it for t ≥ 99.5.
	src := acoustics.MobileSource(1, geometry.Point{X: 0}, geometry.Point{X: 100},
		at(0), 100*time.Second, 2, acoustics.VoiceTone)
	field.AddSource(src)
	c := NewCollector(field, map[int]geometry.Point{0: {X: 101.5}})
	// Recording [97.5,100): of the five probe instants only the last one
	// (t=100s, nudged inside the exclusive End) is within earshot — the
	// end-exclusive adjustment must still attribute the recording.
	c.AddRecording(Recording{Node: 0, File: 1, Start: at(97.5), End: at(100), StoredFrac: 1})
	if got := c.MissRatioAt(at(100)); got >= 1 {
		t.Errorf("final-instant attribution failed: miss = %v", got)
	}
}

func TestAttributionProbesMobileSources(t *testing.T) {
	field := acoustics.NewField(1.0)
	// Source moves from x=0 to x=100 over 100 s; loudness 2 → range 2.
	src := acoustics.MobileSource(1, geometry.Point{X: 0}, geometry.Point{X: 100},
		at(0), 100*time.Second, 2, acoustics.VoiceTone)
	field.AddSource(src)
	pos := map[int]geometry.Point{0: {X: 50}}
	c := NewCollector(field, pos)
	// Node 0 records [45,55): the source passes x=50 at t=50 — audible
	// only within [48,52] — the probe points must catch it.
	c.AddRecording(Recording{Node: 0, Start: at(45), End: at(55), StoredFrac: 1})
	if got := c.MissRatioAt(at(100)); got >= 1 {
		t.Errorf("mobile attribution failed: miss = %v", got)
	}
}
