package metrics

import (
	"sort"
	"strings"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/sim"
)

// Recording is one completed recording task as the metrics layer sees it:
// who recorded, under which file, over which (true) time span, and what
// fraction of the captured data actually fit into flash.
type Recording struct {
	Node       int
	File       flash.FileID
	Start, End sim.Time
	// StoredFrac is storedChunks/totalChunks for the task; data dropped
	// on a full flash shortens the *effective* recording from the tail.
	StoredFrac float64
}

// Effective returns the stored part of the recording (the tail is what
// gets dropped when flash fills mid-task).
func (r Recording) Effective() Interval {
	dur := time.Duration(float64(r.End.Sub(r.Start)) * r.StoredFrac)
	return Interval{r.Start, r.Start.Add(dur)}
}

// Migration is one acknowledged chunk batch moved between neighbors.
type Migration struct {
	From, To int
	Chunks   int
	At       sim.Time
}

// Sample is one periodic snapshot of network-wide state, taken by the
// node layer.
type Sample struct {
	At sim.Time
	// StoredBytes per node ID (flash occupancy at block granularity).
	StoredBytes map[int]int
	// DuplicateChunks counts chunks whose (file, origin, seq) identity is
	// stored on more than one node (each extra copy counts once).
	DuplicateChunks int
	// TxByKind is a cumulative copy of the radio's per-kind frame+payload
	// counts at the sample instant.
	TxByKind map[string]uint64
	// TxByNode is the cumulative per-node transmitted frame count.
	TxByNode map[int]uint64
}

// Collector accumulates ground truth and observations for one run.
type Collector struct {
	field     *acoustics.Field
	positions map[int]geometry.Point

	Recordings []Recording
	Migrations []Migration
	Samples    []Sample
	Overflows  []sim.Time
}

// NewCollector builds a collector with the run's ground truth: the
// acoustic field (for event attribution) and node positions (for spatial
// figures).
func NewCollector(field *acoustics.Field, positions map[int]geometry.Point) *Collector {
	return &Collector{field: field, positions: positions}
}

// AddRecording logs a completed recording task.
func (c *Collector) AddRecording(r Recording) { c.Recordings = append(c.Recordings, r) }

// AddMigration logs an acknowledged migration batch.
func (c *Collector) AddMigration(m Migration) { c.Migrations = append(c.Migrations, m) }

// AddSample logs a periodic snapshot.
func (c *Collector) AddSample(s Sample) { c.Samples = append(c.Samples, s) }

// AddOverflow logs a storage-overflow data drop.
func (c *Collector) AddOverflow(at sim.Time) { c.Overflows = append(c.Overflows, at) }

// attributed reports whether recording r plausibly captured event src:
// the recorder could hear the source at some probe instant within their
// temporal overlap.
func (c *Collector) attributed(r Recording, src *acoustics.Source) bool {
	lo, hi := r.Start, r.End
	if src.Start > lo {
		lo = src.Start
	}
	if src.End < hi {
		hi = src.End
	}
	if hi <= lo {
		return false
	}
	pos, ok := c.positions[r.Node]
	if !ok {
		return false
	}
	// Probe a few instants across the overlap: mobile sources may be
	// audible for only part of it.
	span := hi.Sub(lo)
	for i := 0; i <= 4; i++ {
		at := lo.Add(span * time.Duration(i) / 4)
		if at == src.End {
			at-- // End is exclusive
		}
		for _, s := range c.field.AudibleSources(r.Node, pos, at) {
			if s == src {
				return true
			}
		}
	}
	return false
}

// eventCoverage returns, for each source active before t, the union and
// total of effective attributed recording time clipped to the event's
// span (and to t).
func (c *Collector) eventCoverage(t sim.Time) (union, total, eventTime time.Duration) {
	for _, src := range c.field.Sources() {
		if src.Start >= t {
			continue
		}
		hi := src.End
		if hi > t {
			hi = t
		}
		eventTime += hi.Sub(src.Start)
		var set IntervalSet
		for _, r := range c.Recordings {
			if !c.attributed(r, src) {
				continue
			}
			eff := r.Effective().Clip(src.Start, hi)
			set.Add(eff.Start, eff.End)
		}
		union += set.Union()
		total += set.Total()
	}
	return union, total, eventTime
}

// MissRatioAt returns the cumulative recording miss ratio at time t: the
// fraction of event time (over all events so far) not covered by any
// stored recording (Figs 6 and 10).
func (c *Collector) MissRatioAt(t sim.Time) float64 {
	union, _, eventTime := c.eventCoverage(t)
	if eventTime <= 0 {
		return 0
	}
	return 1 - float64(union)/float64(eventTime)
}

// RedundancyRatioAt returns the cumulative recording redundancy ratio at
// time t: redundant recording time (overlapping coverage of the same
// event) plus duplicated migrated chunks, over all recording (Fig 11).
// dupBytes is taken from the latest sample at or before t.
func (c *Collector) RedundancyRatioAt(t sim.Time, bytesPerSecond float64) float64 {
	union, total, _ := c.eventCoverage(t)
	overlapBytes := (total - union).Seconds() * bytesPerSecond
	totalBytes := total.Seconds() * bytesPerSecond
	dupBytes := float64(c.duplicateChunksAt(t) * flash.BlockSize)
	denom := totalBytes
	if denom <= 0 {
		return 0
	}
	return (overlapBytes + dupBytes) / denom
}

// sampleAt returns the latest sample taken at or before t, or nil if
// none exists yet. Samples are appended in simulation-time order, so a
// binary search serves every time-series query point.
func (c *Collector) sampleAt(t sim.Time) *Sample {
	i := sort.Search(len(c.Samples), func(i int) bool { return c.Samples[i].At > t })
	if i == 0 {
		return nil
	}
	return &c.Samples[i-1]
}

func (c *Collector) duplicateChunksAt(t sim.Time) int {
	if s := c.sampleAt(t); s != nil {
		return s.DuplicateChunks
	}
	return 0
}

// MessageCountAt returns the cumulative control-message count at time t
// (task assignment + load transfer + group management payloads), from the
// latest sample at or before t (Fig 12). Kinds with prefix "timesync" are
// excluded: the paper's count covers task and load-balancing traffic.
func (c *Collector) MessageCountAt(t sim.Time) uint64 {
	best := c.sampleAt(t)
	if best == nil {
		return 0
	}
	var n uint64
	for kind, cnt := range best.TxByKind {
		if strings.HasPrefix(kind, "timesync") {
			continue
		}
		n += cnt
	}
	return n
}

// StorageHeatmapAt bins per-node stored bytes into a spatial heatmap from
// the latest sample at or before t (Fig 13 / Fig 17).
func (c *Collector) StorageHeatmapAt(t sim.Time, cols, rows int) *geometry.Heatmap {
	best := c.sampleAt(t)
	minX, minY, maxX, maxY := bounds(c.positions)
	h := geometry.NewHeatmap(minX, minY, maxX+1e-9, maxY+1e-9, cols, rows)
	if best == nil {
		return h
	}
	for id, bytes := range best.StoredBytes {
		if pos, ok := c.positions[id]; ok {
			h.Add(pos, float64(bytes))
		}
	}
	return h
}

// OverheadHeatmapAt bins per-node transmitted frame counts spatially from
// the latest sample at or before t (Fig 14).
func (c *Collector) OverheadHeatmapAt(t sim.Time, cols, rows int) *geometry.Heatmap {
	best := c.sampleAt(t)
	minX, minY, maxX, maxY := bounds(c.positions)
	h := geometry.NewHeatmap(minX, minY, maxX+1e-9, maxY+1e-9, cols, rows)
	if best == nil {
		return h
	}
	for id, frames := range best.TxByNode {
		if pos, ok := c.positions[id]; ok {
			h.Add(pos, float64(frames))
		}
	}
	return h
}

// RecordedSecondsPerBucket returns, for consecutive buckets of length
// `bucket` starting at 0, the total effective recorded seconds whose
// recording started in that bucket (Fig 16's seconds-per-minute plot).
func (c *Collector) RecordedSecondsPerBucket(until sim.Time, bucket time.Duration) []float64 {
	n := int(until.Duration()/bucket) + 1
	out := make([]float64, n)
	for _, r := range c.Recordings {
		idx := int(r.Start.Duration() / bucket)
		if idx >= 0 && idx < n {
			out[idx] += r.Effective().Dur().Seconds()
		}
	}
	return out
}

// RecordedBytesByNode sums effective recorded bytes per recorder node
// (Fig 17's per-location data volume).
func (c *Collector) RecordedBytesByNode(bytesPerSecond float64) map[int]float64 {
	out := make(map[int]float64)
	for _, r := range c.Recordings {
		out[r.Node] += r.Effective().Dur().Seconds() * bytesPerSecond
	}
	return out
}

// MigratedFromNode returns, for the given origin node, the number of
// chunk-batches' chunks it pushed directly to each first-hop destination
// (Fig 18 uses final placement; see HoldersByOrigin for that).
func (c *Collector) MigratedFromNode(origin int) map[int]int {
	out := make(map[int]int)
	for _, m := range c.Migrations {
		if m.From == origin {
			out[m.To] += m.Chunks
		}
	}
	return out
}

func bounds(pos map[int]geometry.Point) (minX, minY, maxX, maxY float64) {
	first := true
	for _, p := range pos {
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			continue
		}
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if first {
		return 0, 0, 1, 1
	}
	if maxX == minX {
		maxX++
	}
	if maxY == minY {
		maxY++
	}
	return minX, minY, maxX, maxY
}

// CountDuplicates computes the duplicated-chunk count across the given
// per-node chunk holdings: for every (file, origin, seq) identity, each
// copy beyond the first counts once. Retrieval analysis uses this
// one-shot form; the node layer's periodic sampling goes through a
// reusable DupCounter instead.
func CountDuplicates(holdings map[int][]*flash.Chunk) int {
	var d DupCounter
	d.Begin(0)
	for _, chunks := range holdings {
		d.Add(chunks)
	}
	return d.Count()
}

type chunkIdent struct {
	file   flash.FileID
	origin int32
	seq    uint32
}

// DupCounter is the scratch-reusing form of CountDuplicates for hot
// sampling paths: the identity map is cleared and reused across samples
// instead of reallocated, and holdings are fed in per node without
// building an intermediate map.
type DupCounter struct {
	seen map[chunkIdent]int
}

// Begin resets the counter for a new pass. sizeHint sizes the identity
// map on first use (0 is fine).
func (d *DupCounter) Begin(sizeHint int) {
	if d.seen == nil {
		d.seen = make(map[chunkIdent]int, sizeHint)
		return
	}
	clear(d.seen)
}

// Add feeds one node's holdings into the current pass.
func (d *DupCounter) Add(chunks []*flash.Chunk) {
	for _, c := range chunks {
		d.seen[chunkIdent{c.File, c.Origin, c.Seq}]++
	}
}

// Count returns the duplicated-chunk count for the current pass.
func (d *DupCounter) Count() int {
	dups := 0
	for _, n := range d.seen {
		if n > 1 {
			dups += n - 1
		}
	}
	return dups
}
