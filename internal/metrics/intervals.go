// Package metrics computes the paper's evaluation metrics: recording miss
// ratio (Figs 6, 10), recording redundancy ratio (Fig 11), control-message
// counts (Figs 12, 14), and storage-occupancy distributions (Figs 13, 17,
// 18). It is pure bookkeeping over data reported by the protocol probes —
// it never touches the radio or the motes directly, so the same collector
// serves every operating mode including the uncoordinated baseline.
package metrics

import (
	"time"

	"enviromic/internal/sim"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start, End sim.Time
}

// Dur returns the interval length (0 for inverted intervals).
func (iv Interval) Dur() time.Duration {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Clip returns the intersection with [lo, hi).
func (iv Interval) Clip(lo, hi sim.Time) Interval {
	if iv.Start < lo {
		iv.Start = lo
	}
	if iv.End > hi {
		iv.End = hi
	}
	return iv
}

// IntervalSet maintains a set of intervals and answers union/total
// queries. The zero value is an empty set ready to use.
type IntervalSet struct {
	ivs []Interval
}

// Add inserts [start, end); empty or inverted input is ignored.
func (s *IntervalSet) Add(start, end sim.Time) {
	if end <= start {
		return
	}
	s.ivs = append(s.ivs, Interval{start, end})
}

// Len returns the number of raw (unmerged) intervals added.
func (s *IntervalSet) Len() int { return len(s.ivs) }

// Total returns the summed length of the raw intervals (overlap counted
// multiply).
func (s *IntervalSet) Total() time.Duration {
	var t time.Duration
	for _, iv := range s.ivs {
		t += iv.Dur()
	}
	return t
}

// merged returns the sorted union of the raw intervals.
func (s *IntervalSet) merged() []Interval {
	if len(s.ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(s.ivs))
	copy(sorted, s.ivs)
	// Insertion sort: sets in this codebase hold at most a few thousand
	// intervals and are merged rarely; avoid importing sort for a value
	// type comparator predating slices.SortFunc idioms.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Start < sorted[j-1].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Union returns the total length of the union of all intervals.
func (s *IntervalSet) Union() time.Duration {
	var t time.Duration
	for _, iv := range s.merged() {
		t += iv.Dur()
	}
	return t
}

// UnionWithin returns the length of the union intersected with [lo, hi).
func (s *IntervalSet) UnionWithin(lo, hi sim.Time) time.Duration {
	var t time.Duration
	for _, iv := range s.merged() {
		t += iv.Clip(lo, hi).Dur()
	}
	return t
}

// TotalWithin returns the raw (overlap-counted) length within [lo, hi).
func (s *IntervalSet) TotalWithin(lo, hi sim.Time) time.Duration {
	var t time.Duration
	for _, iv := range s.ivs {
		t += iv.Clip(lo, hi).Dur()
	}
	return t
}

// Gaps returns the maximal sub-intervals of [lo, hi) not covered by the
// set.
func (s *IntervalSet) Gaps(lo, hi sim.Time) []Interval {
	var gaps []Interval
	cursor := lo
	for _, iv := range s.merged() {
		c := iv.Clip(lo, hi)
		if c.Dur() == 0 {
			continue
		}
		if c.Start > cursor {
			gaps = append(gaps, Interval{cursor, c.Start})
		}
		if c.End > cursor {
			cursor = c.End
		}
	}
	if cursor < hi {
		gaps = append(gaps, Interval{cursor, hi})
	}
	return gaps
}
