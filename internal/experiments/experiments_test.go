package experiments

import (
	"testing"
	"time"

	"enviromic/internal/sim"
)

func TestFig3Shape(t *testing.T) {
	res := Fig3(1, 150)
	if len(res.Quiet) != 150 || len(res.Sending) != 150 || len(res.Receiving) != 150 {
		t.Fatalf("trace lengths %d/%d/%d", len(res.Quiet), len(res.Sending), len(res.Receiving))
	}
	for i, iv := range res.Quiet {
		if iv != 10 {
			t.Fatalf("quiet interval %d = %v, want exactly 10 jiffies", i, iv)
		}
	}
	// Radio-active traces jitter between 9 and 16 (with some nominal 10s
	// between packets), matching Fig 3(b)/(c).
	counts := map[float64]int{}
	for _, iv := range res.Sending {
		counts[iv]++
	}
	if counts[16] == 0 || counts[9] == 0 {
		t.Errorf("sending trace lacks the 9/16 jitter: %v", counts)
	}
	for iv := range counts {
		if iv != 9 && iv != 10 && iv != 16 {
			t.Errorf("unexpected interval %v jiffies", iv)
		}
	}
}

func TestFig6ShapeReduced(t *testing.T) {
	opts := Fig6Opts{
		Seed:    3,
		Runs:    4,
		DtaMS:   []int{10, 70, 130},
		TrcList: []time.Duration{time.Second},
	}
	res := Fig6(opts)
	if len(res.Mean) != 1 || len(res.Mean[0]) != 3 {
		t.Fatalf("result shape %dx%d", len(res.Mean), len(res.Mean[0]))
	}
	small, knee, large := res.Mean[0][0], res.Mean[0][1], res.Mean[0][2]
	// The curve decreases and levels: Dta=10ms suffers reassignment gaps;
	// by 70ms only the startup election miss remains (~0.7s/9s ≈ 8%).
	if small <= knee {
		t.Errorf("miss at Dta=10ms (%.3f) not above Dta=70ms (%.3f)", small, knee)
	}
	if knee < 0.02 || knee > 0.20 {
		t.Errorf("miss at Dta=70ms = %.3f, want startup-dominated ~0.08", knee)
	}
	if large > knee+0.05 {
		t.Errorf("miss at Dta=130ms (%.3f) should stay level vs 70ms (%.3f)", large, knee)
	}
}

func TestFig7TimelineRotatesSeamlessly(t *testing.T) {
	res := Fig7(5)
	if len(res.Tasks) < 6 {
		t.Fatalf("only %d tasks for a 9s event", len(res.Tasks))
	}
	nodes := map[int]bool{}
	for _, task := range res.Tasks {
		nodes[task.Node] = true
	}
	if len(nodes) < 3 {
		t.Errorf("recording rotated over only %d nodes", len(nodes))
	}
	// Not all 48 nodes record (Fig 7's point).
	if len(nodes) > 20 {
		t.Errorf("%d nodes recorded; cooperative assignment should use few", len(nodes))
	}
	// The initial election gap exists, then coverage is near-continuous.
	first := res.Tasks[0].Start
	for _, task := range res.Tasks {
		if task.Start < first {
			first = task.Start
		}
	}
	startupGap := first.Sub(res.EventStart)
	if startupGap <= 0 || startupGap > 1500*time.Millisecond {
		t.Errorf("startup gap = %v, want (0, 1.5s] (paper: ~0.7s)", startupGap)
	}
}

func TestFig8StitchedResemblesReference(t *testing.T) {
	res := Fig8(3)
	if len(res.Stitched) == 0 || len(res.Reference) == 0 {
		t.Fatal("empty streams")
	}
	if res.Coverage < 0.6 {
		t.Errorf("stitched coverage = %.2f, want > 0.6", res.Coverage)
	}
	// The stitched stream carries the recorders' 1/d amplitude modulation
	// that the handheld reference lacks (visible in the paper's own
	// Fig 8), so the correlation is strong but not near 1.
	if res.EnvelopeCorr < 0.4 {
		t.Errorf("envelope correlation = %.2f, want > 0.4 (Fig 8 visual similarity)", res.EnvelopeCorr)
	}
}

func TestIndoorOrderingsReduced(t *testing.T) {
	res := Indoor(QuickIndoorOpts())
	end := res.Miss.Times[len(res.Miss.Times)-1]
	_ = end
	last := func(s Series, name string) float64 {
		c := s.Curves[name]
		return c[len(c)-1]
	}
	// Fig 10 orderings: balancing beats cooperative-only beats nothing;
	// βmax=2 is the most aggressive and best.
	missBase := last(res.Miss, "baseline")
	missCoop := last(res.Miss, "coop-only")
	missB2 := last(res.Miss, "lb-beta2")
	missB4 := last(res.Miss, "lb-beta4")
	if missB2 >= missCoop {
		t.Errorf("lb-beta2 miss %.3f not below coop-only %.3f", missB2, missCoop)
	}
	if missB2 >= missBase {
		t.Errorf("lb-beta2 miss %.3f not below baseline %.3f", missB2, missBase)
	}
	if missB4 > missCoop {
		t.Errorf("lb-beta4 miss %.3f above coop-only %.3f", missB4, missCoop)
	}
	// Fig 11: the uncoordinated baseline has by far the highest
	// redundancy (paper: ~0.5).
	redBase := last(res.Redundancy, "baseline")
	redCoop := last(res.Redundancy, "coop-only")
	if redBase <= redCoop {
		t.Errorf("baseline redundancy %.3f not above coop-only %.3f", redBase, redCoop)
	}
	if redBase < 0.2 {
		t.Errorf("baseline redundancy %.3f implausibly low (paper ~0.5)", redBase)
	}
	// Fig 12: balancing costs control messages; baseline sends none.
	msgB2 := last(res.Messages, "lb-beta2")
	msgCoop := last(res.Messages, "coop-only")
	if msgB2 <= msgCoop {
		t.Errorf("lb-beta2 messages %.0f not above coop-only %.0f", msgB2, msgCoop)
	}
	if got := last(res.Messages, "baseline"); got != 0 {
		t.Errorf("baseline sent %v messages, want 0", got)
	}
	// Message growth is roughly monotone over time (Fig 12's linearity).
	msgs := res.Messages.Curves["lb-beta2"]
	for i := 1; i < len(msgs); i++ {
		if msgs[i] < msgs[i-1] {
			t.Errorf("cumulative message count decreased at %d", i)
		}
	}
}

func TestIndoorHeatmapsReduced(t *testing.T) {
	opts := QuickIndoorOpts()
	net := RunIndoor(IndoorSetting{Name: "lb-beta2", Mode: 3, BetaMax: 2}, opts)
	h := HeatmapAt(net, sim.At(opts.Duration), false)
	if h.Total() <= 0 {
		t.Error("storage heatmap empty")
	}
	ho := HeatmapAt(net, sim.At(opts.Duration), true)
	if ho.Total() <= 0 {
		t.Error("overhead heatmap empty")
	}
}

func TestForestReduced(t *testing.T) {
	res := Forest(QuickForestOpts())
	if len(res.PerMinute) < 19 {
		t.Fatalf("per-minute series has %d buckets", len(res.PerMinute))
	}
	total := 0.0
	for _, v := range res.PerMinute {
		total += v
	}
	if total <= 0 {
		t.Fatal("forest recorded nothing")
	}
	if res.HottestNode < 0 {
		t.Fatal("no hottest node identified")
	}
	if len(res.BytesByNode) == 0 {
		t.Error("no per-node volumes")
	}
}

func TestMeanCI90(t *testing.T) {
	m, ci := meanCI90([]float64{1, 1, 1, 1})
	if m != 1 || ci != 0 {
		t.Errorf("constant series: mean=%v ci=%v", m, ci)
	}
	m, ci = meanCI90(nil)
	if m != 0 || ci != 0 {
		t.Errorf("empty series: mean=%v ci=%v", m, ci)
	}
	m, ci = meanCI90([]float64{0, 2})
	if m != 1 || ci <= 0 {
		t.Errorf("spread series: mean=%v ci=%v", m, ci)
	}
}

func TestEnergyCostOfBalancingIsNegligible(t *testing.T) {
	res := EnergyCost(QuickIndoorOpts())
	if res.MeanDrainFull <= 0 || res.MeanDrainCoop <= 0 {
		t.Fatalf("drains = %+v", res)
	}
	// §IV-B: "the lifetime reduction due to such load balancing should be
	// below one hour" of a week — well under 1% of capacity.
	if res.LifetimeReductionFraction > 0.01 {
		t.Errorf("balancing consumed %.3f%% of battery capacity, want < 1%%",
			res.LifetimeReductionFraction*100)
	}
	if res.ExtraFraction < 0 {
		t.Errorf("full mode drained less than cooperative: %+v", res)
	}
}
