package experiments

import (
	"enviromic/internal/core"
)

// EnergyCostResult quantifies §IV-B's claim that the energy cost of load
// balancing "can be ignored for all practical purposes": uploading a full
// flash takes minutes against a lifetime of days, so migrating even many
// flash-fuls costs a negligible fraction of battery.
type EnergyCostResult struct {
	// MeanDrainCoop / MeanDrainFull are the mean per-node battery drains
	// (joules) over the run for cooperative-only and full (balancing)
	// modes.
	MeanDrainCoop, MeanDrainFull float64
	// ExtraFraction is the balancing overhead as a fraction of the
	// cooperative-mode drain.
	ExtraFraction float64
	// LifetimeReductionFraction is the fraction of total battery capacity
	// consumed by the balancing overhead — the paper argues this is far
	// below 1% per experiment.
	LifetimeReductionFraction float64
}

// EnergyCost runs the §IV-B workload in cooperative-only and full modes
// and compares battery drain.
func EnergyCost(opts IndoorOpts) EnergyCostResult {
	drain := func(setting IndoorSetting) (mean, capacity float64) {
		net := RunIndoor(setting, opts)
		now := net.Sched.Now()
		var total float64
		var cap0 float64
		for _, node := range net.Nodes {
			cap0 = node.Mote.Energy.CapacityJ
			total += cap0 - node.Mote.Energy.Remaining(now)
		}
		return total / float64(len(net.Nodes)), cap0
	}
	coop, capacity := drain(IndoorSetting{Name: "coop-only", Mode: core.ModeCooperative})
	full, _ := drain(IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2})
	res := EnergyCostResult{MeanDrainCoop: coop, MeanDrainFull: full}
	if coop > 0 {
		res.ExtraFraction = (full - coop) / coop
	}
	if capacity > 0 {
		res.LifetimeReductionFraction = (full - coop) / capacity
	}
	return res
}
