package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/geometry"
	"enviromic/internal/mote"
	"enviromic/internal/sim"
)

// figureFingerprint folds everything the figure pipeline reads out of a
// finished run into one string: the three §IV-B series plus radio
// counters and per-node holdings of each setting's network.
func indoorFingerprint(res IndoorResult) string {
	var b strings.Builder
	series := func(name string, s Series) {
		fmt.Fprintf(&b, "%s:\n", name)
		names := make([]string, 0, len(s.Curves))
		for n := range s.Curves {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %s %v\n", n, s.Curves[n])
		}
	}
	series("miss", res.Miss)
	series("redundancy", res.Redundancy)
	series("messages", res.Messages)
	names := make([]string, 0, len(res.Networks))
	for n := range res.Networks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		net := res.Networks[n]
		st := net.Radio.Stats()
		fmt.Fprintf(&b, "%s: stored=%d frames=%d bytes=%d lost=%d\n",
			n, net.TotalStoredBytes(), st.TotalFrames, st.TotalBytes, st.Lost)
		for _, node := range net.Nodes {
			fmt.Fprintf(&b, " %d", node.Mote.Store.BytesUsed())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestIndoorFigureShardMatrix is the acceptance regression: the quick
// indoor figure must be byte-identical between serial execution and
// every sharded configuration.
func TestIndoorFigureShardMatrix(t *testing.T) {
	opts := QuickIndoorOpts()
	opts.Shards = 1 // the documented serial default of the -shards flag
	want := indoorFingerprint(Indoor(opts))
	for _, shards := range []int{2, 4, 8} {
		o := QuickIndoorOpts()
		o.Shards = shards
		if got := indoorFingerprint(Indoor(o)); got != want {
			t.Errorf("indoor figure diverged at shards=%d", shards)
		}
	}
}

// TestForestFigureShardMatrix covers the irregular-topology scenario:
// Fig 16/17/18 inputs must not depend on the shard count.
func TestForestFigureShardMatrix(t *testing.T) {
	fp := func(shards int) string {
		opts := QuickForestOpts()
		opts.Shards = shards
		res := Forest(opts)
		var b strings.Builder
		fmt.Fprintf(&b, "perMinute=%v hottest=%d\n", res.PerMinute, res.HottestNode)
		ids := make([]int, 0, len(res.BytesByNode))
		for id := range res.BytesByNode {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%d=%.0f ", id, res.BytesByNode[id])
		}
		fmt.Fprintf(&b, "\nmigrated=%v frames=%d",
			len(res.MigratedFromHottest), res.Net.Radio.Stats().TotalFrames)
		return b.String()
	}
	want := fp(1)
	for _, shards := range []int{2, 4} {
		if got := fp(shards); got != want {
			t.Errorf("forest figure diverged at shards=%d:\nserial:  %.200s\nsharded: %.200s", shards, want, got)
		}
	}
}

// TestCitySmoke runs the reduced city end to end on both engines and
// checks they agree and actually record street activity.
func TestCitySmoke(t *testing.T) {
	fp := func(shards int) (CityResult, string) {
		opts := QuickCityOpts()
		opts.Shards = shards
		res := City(opts)
		st := res.Net.Radio.Stats()
		return res, fmt.Sprintf("recs=%d migs=%d frames=%d stored=%d files=%d chunks=%d",
			len(res.Net.Collector.Recordings), len(res.Net.Collector.Migrations),
			st.TotalFrames, res.Net.TotalStoredBytes(),
			res.Retrieval.Files, res.Retrieval.Chunks)
	}
	serial, want := fp(0)
	if len(serial.Net.Collector.Recordings) == 0 {
		t.Fatal("quick city recorded nothing")
	}
	if serial.Retrieval.Files == 0 {
		t.Fatal("quick city retrieval reassembled no files")
	}
	if _, got := fp(4); got != want {
		t.Errorf("city run diverged:\nserial:  %s\nsharded: %s", want, got)
	}
}

// TestCityMiniMatchesAcrossShardCounts pins the city workload's
// determinism across several shard counts on a tiny town, including the
// sample series the benchmark reports.
func TestCityMiniMatchesAcrossShardCounts(t *testing.T) {
	run := func(shards int) string {
		opts := QuickCityOpts()
		opts.Shards = shards
		res := City(opts)
		var b strings.Builder
		end := sim.At(opts.City.Duration)
		fmt.Fprintf(&b, "miss=%v red=%v\n",
			res.Net.Collector.MissRatioAt(end),
			res.Net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate))
		for _, node := range res.Net.Nodes {
			if u := node.Mote.Store.BytesUsed(); u > 0 {
				fmt.Fprintf(&b, "%d=%d ", node.ID, u)
			}
		}
		return b.String()
	}
	want := run(1)
	for _, shards := range []int{2, 3, 8} {
		if got := run(shards); got != want {
			t.Errorf("city diverged at shards=%d", shards)
		}
	}
}

// TestShardCountValidation pins the Config.Shards contract.
func TestShardCountValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Shards did not panic")
		}
	}()
	bad := core.Config{Seed: 1, Shards: -1, CommRange: 5}
	core.NewGridNetwork(bad, acoustics.NewField(1), geometry.Grid{Cols: 2, Rows: 2, Pitch: 1})
}
