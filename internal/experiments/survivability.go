// The survivability matrix: migration vs. erasure-coded dispersal under
// the chaos harness's crash/partition/loss scenarios. Each cell runs the
// same §IV-B indoor workload with the same faults and measures retrieval
// completeness — the fraction of every stored data chunk that a mule
// restricted to live, reachable nodes can still reassemble (after
// erasure decoding). Dispersal spends n/k storage overhead to keep that
// fraction high when nodes die; migration concentrates data and loses
// whatever the dead node held.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
	"enviromic/internal/storage"
)

// SurvivabilityCell is one (scenario, storage mode) run of the matrix.
type SurvivabilityCell struct {
	Scenario string
	Mode     storage.Mode
	// LiveChunks counts distinct data chunks reassembled (erasure-decoded)
	// from live nodes only; TotalChunks from every node's flash including
	// dead ones (the physical-collection ground truth). Completeness is
	// their ratio (1.0 when nothing was stored).
	LiveChunks, TotalChunks int
	Completeness            float64
	// LostGroups counts k-of-n survivability violations: dispersal groups
	// with fewer than k live fragments, each attributed to the chaos
	// events that took its holders (always 0 under migration — the rule
	// sees no disperse events).
	LostGroups int
	// OtherViolations counts every non-survivability invariant breach
	// (must be 0: faults may cost data, never protocol correctness).
	OtherViolations int
	// Losses counts attributed chaos loss records (crash checkpoint
	// windows).
	Losses int
}

// SurvivabilityResult is the full matrix.
type SurvivabilityResult struct {
	Opts     IndoorOpts
	Disperse storage.DisperseConfig
	// Cells are scenario-major: for each scenario, migrate then disperse.
	Cells []SurvivabilityCell
}

// SurvivabilityScenarios returns the matrix's fault scripts — the chaos
// harness's staple crash/partition/loss mix, scaled to the quick indoor
// run. Each script mixes an early leader-targeted crash (hits a recorder
// mid-file, exercising the checkpoint-window attribution) with late
// fixed-node crashes: by then load balancing has spread chunks across
// the grid, so every late victim dies holding data and the comparison
// measures data survival rather than luck of the draw.
func SurvivabilityScenarios() []*chaos.Scenario {
	return []*chaos.Scenario{
		{Name: "crashes", Seed: 7, Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 45 * time.Second, Node: -1, Target: chaos.TargetLeader},
			{Kind: chaos.KindCrash, At: 4 * time.Minute, Node: -1, Target: chaos.TargetLeader},
			{Kind: chaos.KindCrash, At: 6 * time.Minute, Node: 10},
			{Kind: chaos.KindCrash, At: 6*time.Minute + 30*time.Second, Node: 33},
		}},
		{Name: "crash-loss-burst", Seed: 7, Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 45 * time.Second, Node: -1, Target: chaos.TargetLeader},
			{Kind: chaos.KindLoss, From: time.Minute, To: 3 * time.Minute, Prob: 0.15, Node: -1},
			{Kind: chaos.KindCrash, At: 5 * time.Minute, Node: 21},
			{Kind: chaos.KindCrash, At: 6 * time.Minute, Node: 40},
		}},
		{Name: "crash-partition", Seed: 7, Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, At: 45 * time.Second, Node: -1, Target: chaos.TargetLeader},
			{Kind: chaos.KindPartition, From: 2 * time.Minute, To: 5 * time.Minute, Node: -1,
				A: []int{0, 1, 2, 3, 4, 5, 6, 7}},
			{Kind: chaos.KindCrash, At: 5*time.Minute + 30*time.Second, Node: 17},
			{Kind: chaos.KindCrash, At: 6*time.Minute + 15*time.Second, Node: 38},
		}},
	}
}

// Survivability runs the matrix: every scenario under both storage
// modes, one full chaos-checked indoor run per cell.
func Survivability(opts IndoorOpts, dcfg storage.DisperseConfig, scenarios []*chaos.Scenario) (SurvivabilityResult, error) {
	setting := IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2}
	res := SurvivabilityResult{Opts: opts, Disperse: dcfg}
	for _, sc := range scenarios {
		for _, mode := range []storage.Mode{storage.ModeMigrate, storage.ModeDisperse} {
			o := opts
			o.StorageMode = mode
			if mode == storage.ModeDisperse {
				o.Disperse = dcfg
			}
			run, err := RunIndoorChaos(setting, o, sc, chaos.InvariantsConfig{})
			if err != nil {
				return res, fmt.Errorf("survivability %s/%s: %w", sc.Name, mode, err)
			}
			cell := SurvivabilityCell{Scenario: sc.Name, Mode: mode}
			cell.LiveChunks = distinctDataChunks(run.Net.LiveHoldings())
			cell.TotalChunks = distinctDataChunks(run.Net.Holdings())
			cell.Completeness = 1
			if cell.TotalChunks > 0 {
				cell.Completeness = float64(cell.LiveChunks) / float64(cell.TotalChunks)
			}
			for _, v := range run.Checker.Violations() {
				if v.Rule == chaos.RuleSurvivability {
					cell.LostGroups++
				} else {
					cell.OtherViolations++
				}
			}
			cell.Losses = len(run.Checker.Losses())
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// distinctDataChunks erasure-decodes the holdings and counts distinct
// data-chunk identities. The same decode path serves both modes — under
// migration there is no parity, so it degrades to plain reassembly and
// the comparison stays fair.
func distinctDataChunks(holdings map[int][]*flash.Chunk) int {
	files, _ := retrieval.ReassembleErasure(holdings, retrieval.Query{All: true})
	type key struct {
		file   flash.FileID
		origin int32
		seq    uint32
	}
	seen := make(map[key]bool)
	for _, f := range files {
		for _, c := range f.Chunks {
			seen[key{c.File, c.Origin, c.Seq}] = true
		}
	}
	// Most decoded chunks are the stores' own (still referenced by the
	// simulated flash), so none may go back to the pool; the few
	// parity-recovered ones are left to the garbage collector.
	return len(seen)
}

// CrashAdvantage returns dispersal completeness minus migration
// completeness, summed over the crash-bearing scenarios — the matrix's
// headline number (positive means dispersal survives crashes better).
func (r SurvivabilityResult) CrashAdvantage() float64 {
	byMode := map[string]map[storage.Mode]float64{}
	for _, c := range r.Cells {
		if byMode[c.Scenario] == nil {
			byMode[c.Scenario] = map[storage.Mode]float64{}
		}
		byMode[c.Scenario][c.Mode] = c.Completeness
	}
	var adv float64
	for _, m := range byMode {
		adv += m[storage.ModeDisperse] - m[storage.ModeMigrate]
	}
	return adv
}

// FormatSurvivability renders the matrix as the fixed-width table the
// survivability smoke script greps. Deterministic for fixed inputs.
func FormatSurvivability(r SurvivabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "survivability matrix rs=%d,%d duration=%v seed=%d\n",
		r.Disperse.N, r.Disperse.K, r.Opts.Duration, r.Opts.Seed)
	fmt.Fprintf(&b, "%-22s %-9s %7s %7s %13s %11s %7s %11s\n",
		"scenario", "mode", "live", "total", "completeness", "lost-groups", "losses", "violations")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-22s %-9s %7d %7d %13.4f %11d %7d %11d\n",
			c.Scenario, c.Mode, c.LiveChunks, c.TotalChunks, c.Completeness,
			c.LostGroups, c.Losses, c.OtherViolations)
	}
	return b.String()
}
