package experiments

import (
	"fmt"
	"time"

	"enviromic/internal/chaos"
	"enviromic/internal/core"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
)

// ChaosIndoorResult is a §IV-B run executed under a fault scenario with
// the invariant checker attached.
type ChaosIndoorResult struct {
	Net      *core.Network
	Injector *chaos.Injector
	Checker  *chaos.Invariants
}

// RunIndoorChaos executes one indoor setting with the given fault
// scenario installed and the invariant checker subscribed to the trace
// stream. The end-of-run retrieval-completeness check has already been
// applied when this returns; read Checker.Violations / Checker.Report.
//
// opts.Tracer must be nil — the chaos run owns the network's tracer (the
// checker is its sink). sc may be nil to run fault-free with invariants
// only.
func RunIndoorChaos(setting IndoorSetting, opts IndoorOpts, sc *chaos.Scenario, icfg chaos.InvariantsConfig) (ChaosIndoorResult, error) {
	if opts.Tracer != nil {
		return ChaosIndoorResult{}, fmt.Errorf("experiments: RunIndoorChaos owns the tracer; opts.Tracer must be nil")
	}
	checker := chaos.NewInvariants(icfg)
	opts.Tracer = obs.New(checker)
	net := BuildIndoor(setting, opts)
	res := ChaosIndoorResult{Net: net, Checker: checker}
	if sc != nil {
		inj, err := chaos.Install(net, sc)
		if err != nil {
			return ChaosIndoorResult{}, err
		}
		inj.SetInvariants(checker)
		res.Injector = inj
	}
	net.Run(sim.At(opts.Duration))
	// Gap tolerance of one task period: chunk timestamps within a file
	// abut at Trc granularity, so anything larger is a real hole.
	checker.CheckHoldings(net.Sched.Now(), net.Holdings(), time.Second)
	// k-of-n fragment survivability (vacuous under migration: the rule
	// only sees storage.disperse.* events).
	checker.CheckSurvivability(net.Sched.Now(), func(id int) bool {
		return net.Nodes[id].Mote.Endpoint.Alive()
	})
	return res, nil
}
